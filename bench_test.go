package arkfs

// One testing.B benchmark per table/figure in the paper's evaluation (§IV).
// Each runs the corresponding harness experiment at a reduced scale and
// reports paper-shaped metrics (kIOPS, GiB/s, seconds) as custom benchmark
// metrics, so `go test -bench=. -benchmem` regenerates the full evaluation.
// cmd/arkbench runs the same experiments at the default (larger) scale.

import (
	"testing"

	"arkfs/internal/harness"
)

// benchRunner builds a quiet Runner at bench scale.
func benchRunner(b *testing.B) *harness.Runner {
	b.Helper()
	r := harness.NewRunner()
	r.Scale = harness.QuickScale()
	return r
}

// reportCells republishes experiment cells as benchmark metrics.
func reportCells(b *testing.B, exp *harness.Experiment) {
	for _, c := range exp.Cells {
		if c.Failed {
			continue
		}
		name := sanitize(c.System) + "/" + sanitize(c.Metric) + "_" + c.Unit
		b.ReportMetric(c.Value, name)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig1MDSScalability regenerates Figure 1: single-MDS creation
// throughput collapsing as the client count grows.
func BenchmarkFig1MDSScalability(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkFig4MdtestEasy regenerates Figure 4: mdtest-easy CREATE/STAT/
// DELETE throughput across ArkFS, CephFS-K (1/16 MDS), CephFS-F, and MarFS.
func BenchmarkFig4MdtestEasy(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkFig5MdtestHard regenerates Figure 5: mdtest-hard WRITE/STAT/READ/
// DELETE with small files in shared directories.
func BenchmarkFig5MdtestHard(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkFig6aRADOSBandwidth regenerates Figure 6(a): large-file
// sequential WRITE/READ bandwidth on the RADOS profile.
func BenchmarkFig6aRADOSBandwidth(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkFig6bS3Bandwidth regenerates Figure 6(b): bandwidth on the S3
// profile for ArkFS (8 MiB and 400 MiB read-ahead), S3FS, and goofys.
func BenchmarkFig6bS3Bandwidth(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkFig7Scalability regenerates Figure 7: normalized creation
// throughput vs client count for ArkFS with/without permission caching and
// CephFS-K with 1/16 MDSs.
func BenchmarkFig7Scalability(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkTable2Archiving regenerates Table II: tar archiving/unarchiving
// execution times on CephFS-F, CephFS-K, and ArkFS.
func BenchmarkTable2Archiving(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkAblationJournal isolates §III-E: per-directory journals with
// compound transactions vs a serialized journal path vs per-op commits.
func BenchmarkAblationJournal(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.AblationJournal()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkAblationReadahead sweeps the read-ahead window (§III-D).
func BenchmarkAblationReadahead(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.AblationReadahead()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}

// BenchmarkAblationEntrySize sweeps the cache entry / chunk size (§III-D).
func BenchmarkAblationEntrySize(b *testing.B) {
	r := benchRunner(b)
	for i := 0; i < b.N; i++ {
		exp, err := r.AblationEntrySize()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, exp)
		}
	}
}
