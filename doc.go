// Package arkfs is a from-scratch reproduction of "ArkFS: A Distributed
// File System on Object Storage for Archiving Data in HPC Environment"
// (Cho, Kang, Kim — IPDPS 2023).
//
// The public surface lives in the internal packages by design — this module
// is a research artifact whose entry points are the executables and the
// benchmark harness:
//
//   - cmd/arkbench regenerates every table and figure of the paper.
//   - cmd/arkfs is an interactive client; cmd/objstored and cmd/leasemgr
//     run the storage and lease-manager services for multi-process demos.
//   - examples/ holds runnable programs built on the client API.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package arkfs
