package harness

import (
	"strings"
	"testing"
)

// The repairing drill must detect every injected flip, act on it, and leave
// an image that re-checks clean modulo the tolerated crash leaks.
func TestFsckDrillRepairConverges(t *testing.T) {
	rep := RunFsck(FsckConfig{Seed: 3, Repair: true})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if len(rep.Corrupted) == 0 {
		t.Fatal("drill corrupted nothing")
	}
	if rep.Pre.Clean() {
		t.Fatal("corruption at rest went undetected")
	}
	if rep.Post == nil {
		t.Fatal("repair run produced no re-check")
	}
	if rep.Failed() {
		t.Fatalf("drill failed:\n%s", rep.Summary())
	}
}

// Without -repair the scrub only plans: the store is untouched, the planned
// actions still cover every corrupted object, and the drill passes on
// detection alone.
func TestFsckDrillDetectOnly(t *testing.T) {
	rep := RunFsck(FsckConfig{Seed: 5})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Scrub == nil || !rep.Scrub.Planned {
		t.Fatal("detect-only drill should plan, not repair")
	}
	if rep.Post != nil {
		t.Fatal("detect-only drill should not re-check")
	}
	if rep.Failed() {
		t.Fatalf("drill failed:\n%s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "scrub planned") {
		t.Fatalf("summary does not mention the plan:\n%s", rep.Summary())
	}
}

// The same seed corrupts the same objects: the drill is replayable.
func TestFsckDrillSameSeedSameTargets(t *testing.T) {
	a := RunFsck(FsckConfig{Seed: 11})
	b := RunFsck(FsckConfig{Seed: 11})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v, %v", a.Err, b.Err)
	}
	if strings.Join(a.Corrupted, ",") != strings.Join(b.Corrupted, ",") {
		t.Fatalf("same seed corrupted different objects:\n%v\n%v", a.Corrupted, b.Corrupted)
	}
}
