// Overload harness: seeded, deterministic multi-tenant overload runs against
// a full ArkFS deployment under the virtual clock.
//
// A run deploys one service client that leads a zipfian directory pool plus
// one client per tenant, then drives a paced burst where one hostile tenant
// offers several times its admitted rate while the polite tenants stay under
// theirs. The oracle asserts the overload-protection contract: no
// acknowledged op is ever lost, well-behaved tenants keep most of their
// isolated-run goodput, the hostile tenant is answered with typed retry-after
// pushback rather than timeouts, and once the burst ends the system converges
// (new polite work is admitted again). Because all timing flows through
// sim.VirtEnv and every random draw is precomputed from the seed, a replay of
// the same seed reproduces the run: OverloadReport.Fingerprint() is stable,
// including every qos.* counter in the metrics registry.
package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/workload"
)

// OverloadConfig parameterizes one seeded overload scenario. The zero value
// of any field is replaced by the default noted on it.
type OverloadConfig struct {
	Seed         int64
	Tenants      int     // polite tenants (default 3)
	OpsPerTenant int     // submissions per polite tenant (default 60)
	Dirs         int     // zipfian shared directory pool (default 4)
	Rate         float64 // per-tenant admitted ops/sec at each leader (default 400)
	Burst        float64 // token-bucket depth (default 8)
	// HostileStreams is the hostile tenant's concurrency: it offers
	// HostileStreams× a polite tenant's load (default 8 — with polite
	// pacing at half the admitted charge rate, ~4× its own admitted rate).
	HostileStreams int
	OpBudget       int // per-operation retry budget (default 8)
	// QoSOff builds the deployment without any overload protection — no
	// admission control, no brownout, no breaker, unbounded inboxes,
	// unlimited retries. The assertions are skipped; the run only reports,
	// for the bench's protection-on/off comparison.
	QoSOff bool
}

func (c *OverloadConfig) fill() {
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.OpsPerTenant <= 0 {
		c.OpsPerTenant = 60
	}
	if c.Dirs <= 0 {
		c.Dirs = 4
	}
	if c.Rate <= 0 {
		c.Rate = 400
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.HostileStreams <= 0 {
		c.HostileStreams = 8
	}
	if c.OpBudget == 0 {
		c.OpBudget = 8
	}
}

// OverloadReport is the outcome of one overload scenario: the contended run's
// per-tenant results, the polite-only isolated baseline they are judged
// against, and the oracle's verdicts.
type OverloadReport struct {
	Seed int64
	// Isolated holds the polite tenants' results from the baseline pass
	// (same seed, same pacing, no hostile tenant).
	Isolated []workload.BurstResult
	// Contended holds the contended pass's results; the last entry is the
	// hostile tenant.
	Contended []workload.BurstResult
	// Lost lists acknowledged creates the verifier could not find — any
	// entry is a violated durability promise.
	Lost []string
	// Errors are assertion failures; an empty slice is a pass.
	Errors []string
	// Metrics is the contended pass's deterministic metrics fingerprint
	// (every qos.* shed/pushback/breaker counter folds in).
	Metrics string
}

// Failed reports whether the run violated the overload-protection contract.
func (r *OverloadReport) Failed() bool { return len(r.Errors) > 0 }

// Goodput returns acked operations per second of virtual time for one result.
func Goodput(b workload.BurstResult) float64 {
	if b.Elapsed <= 0 {
		return 0
	}
	return float64(b.Acked) / b.Elapsed.Seconds()
}

// Fingerprint identifies the scenario outcome: both passes' per-tenant
// tallies plus the contended pass's metrics fingerprint. Two runs of the same
// seed and config must produce identical fingerprints.
func (r *OverloadReport) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload seed=%d\n", r.Seed)
	dump := func(name string, rs []workload.BurstResult) {
		for i, t := range rs {
			fmt.Fprintf(&b, "%s t%02d hostile=%v attempted=%d acked=%d pushback=%d timeout=%d other=%d\n",
				name, i, t.Hostile, t.Attempted, t.Acked, t.Pushback, t.Timeout, t.OtherErr)
		}
	}
	dump("isolated", r.Isolated)
	dump("contended", r.Contended)
	b.WriteString(r.Metrics)
	return b.String()
}

// Summary renders the report for humans; failures include the seed so the
// scenario can be replayed exactly (arkbench -chaos -overload -seed N).
func (r *OverloadReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload seed=%d: %d polite tenant(s) + 1 hostile\n", r.Seed, len(r.Isolated))
	for i, t := range r.Contended {
		role := "polite "
		if t.Hostile {
			role = "hostile"
		}
		fmt.Fprintf(&b, "  %s t%02d: %4d attempted, %4d acked, %4d pushback, %d timeout, %d other, p99=%v",
			role, i, t.Attempted, t.Acked, t.Pushback, t.Timeout, t.OtherErr, t.P99())
		if !t.Hostile && i < len(r.Isolated) {
			fmt.Fprintf(&b, ", goodput %.0f/s (isolated %.0f/s)", Goodput(t), Goodput(r.Isolated[i]))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "acked-op loss: %d\n", len(r.Lost))
	if r.Failed() {
		fmt.Fprintf(&b, "FAILED (replay with seed %d):\n", r.Seed)
		for _, e := range r.Errors {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	} else {
		b.WriteString("PASS\n")
	}
	return b.String()
}

// overloadPass is one deployment + burst execution under its own virtual
// clock: the isolated baseline (hostile=false) or the contended run.
type overloadPass struct {
	results  []workload.BurstResult
	lost     []string
	convErrs []string
	metrics  string
	err      error
}

func runOverloadPass(cfg OverloadConfig, hostile bool) *overloadPass {
	p := &overloadPass{}
	env := sim.NewVirtEnv()
	env.Run(func() {
		reg := obs.NewRegistry()
		n := 1 + cfg.Tenants // service mount + one per polite tenant
		if hostile {
			n++
		}
		// PermCache on (the production default): without it every create
		// charges its path-resolution lookups against the same admission
		// bucket as the create itself, and even polite pacing overdraws.
		o := ArkFSOptions{Obs: reg, Seed: cfg.Seed, OpBudget: cfg.OpBudget, PermCache: true}
		if !cfg.QoSOff {
			o.QoSRate = cfg.Rate
			o.QoSBurst = cfg.Burst
			o.Brownout = true
			o.Breaker = true
			o.MaxInbox = 256
			o.ShedWait = 2 * time.Millisecond
			o.LeaseQoSRate = 200
			o.LeaseQoSBurst = 16
		}
		d, err := BuildArkFS(env, DefaultCalibration(), objstore.TestProfile(), n, o)
		if err != nil {
			p.err = err
			return
		}
		defer d.Close()
		// Rate is admission charges per second, and one logical create costs
		// about three charged RPCs at the leader (create, open, write-lease).
		// Polite pacing of Rate/6 ops therefore offers half the admitted
		// charge rate — comfortably entitled, so any polite goodput lost
		// under contention is collateral damage from the hostile flood, which
		// is exactly what the protection must bound. The hostile tenant's 8
		// concurrent streams at the same pacing offer ~4x its admitted rate.
		interval := time.Duration(6 * float64(time.Second) / cfg.Rate)
		bc := workload.BurstConfig{
			OpsPerProc:     cfg.OpsPerTenant,
			Interval:       interval,
			Dirs:           cfg.Dirs,
			Seed:           cfg.Seed,
			HostileStreams: cfg.HostileStreams,
		}
		if hostile {
			bc.HostileProcs = 1
		}
		p.results, p.err = workload.MultiTenantBurst(env, d.Mounts, bc)
		if p.err != nil {
			return
		}
		env.Sleep(250 * time.Millisecond) // pressure drains, buckets refill

		// Oracle: every acknowledged create (hostile ones included) must
		// still exist, observed through a polite mount so the checks
		// themselves cross the admission gate after the burst.
		ctx := context.Background()
		verifier := d.Mounts[1]
		for _, t := range p.results {
			for _, path := range t.AckedPaths {
				if _, err := verifier.Stat(ctx, path); err != nil {
					if errors.Is(err, types.ErrNotExist) {
						p.lost = append(p.lost, path)
					} else {
						p.convErrs = append(p.convErrs, fmt.Sprintf("verify stat %s: %v", path, err))
					}
				}
			}
		}
		// Convergence: with the burst over, fresh polite work at the polite
		// pace must be admitted again on every tenant.
		for t := 0; t < cfg.Tenants; t++ {
			for dir := 0; dir < cfg.Dirs; dir++ {
				env.Sleep(interval)
				path := fmt.Sprintf("/overload/p%03d/conv-t%02d", dir, t)
				f, err := fsapi.Create(ctx, d.Mounts[1+t], path, 0644)
				if err != nil {
					p.convErrs = append(p.convErrs, fmt.Sprintf("convergence create %s: %v", path, err))
					continue
				}
				_ = f.Close()
			}
		}
		p.metrics = reg.Snapshot().Fingerprint()
	})
	return p
}

// RunOverload executes one seeded overload scenario — an isolated polite-only
// baseline pass followed by the contended pass with the hostile tenant — and
// returns its report. Invariant violations are collected in Errors, never
// panicked.
func RunOverload(cfg OverloadConfig) *OverloadReport {
	cfg.fill()
	rep := &OverloadReport{Seed: cfg.Seed}
	iso := runOverloadPass(cfg, false)
	if iso.err != nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf("isolated pass: %v", iso.err))
		return rep
	}
	con := runOverloadPass(cfg, true)
	if con.err != nil {
		rep.Errors = append(rep.Errors, fmt.Sprintf("contended pass: %v", con.err))
		return rep
	}
	rep.Isolated, rep.Contended = iso.results, con.results
	rep.Lost = con.lost
	rep.Metrics = con.metrics
	if cfg.QoSOff {
		return rep // report-only mode for the bench comparison
	}

	for _, path := range con.lost {
		rep.Errors = append(rep.Errors, fmt.Sprintf("lost acknowledged op: %s", path))
	}
	for _, e := range con.convErrs {
		rep.Errors = append(rep.Errors, e)
	}
	var hostileSeen bool
	for i, t := range rep.Contended {
		if t.Hostile {
			hostileSeen = true
			if t.Pushback == 0 {
				rep.Errors = append(rep.Errors, "hostile tenant saw no typed retry-after pushback")
			}
			if t.Timeout > 0 {
				rep.Errors = append(rep.Errors, fmt.Sprintf("hostile tenant hit %d timeout(s); overload must answer with pushback, not silence", t.Timeout))
			}
			continue
		}
		if t.Timeout > 0 || t.OtherErr > 0 {
			rep.Errors = append(rep.Errors, fmt.Sprintf("polite tenant %d: %d timeout(s), %d hard error(s) under contention", i, t.Timeout, t.OtherErr))
		}
		if i >= len(rep.Isolated) {
			continue
		}
		isoGP, conGP := Goodput(rep.Isolated[i]), Goodput(t)
		if conGP < 0.8*isoGP {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"polite tenant %d goodput collapsed under contention: %.1f/s vs %.1f/s isolated (< 80%%)",
				i, conGP, isoGP))
		}
	}
	if !hostileSeen {
		rep.Errors = append(rep.Errors, "contended pass ran without a hostile tenant")
	}
	return rep
}
