package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"arkfs/internal/fsapi"
	"arkfs/internal/fsck"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
)

// FsckConfig parameterizes a seeded corruption/scrub drill (arkbench -fsck):
// deploy ArkFS, populate it, shut down cleanly, bit-flip a few objects at
// rest, and run the offline checker — with Repair, the scrubber too, and a
// final re-check. The same seed yields the same population, the same flipped
// objects, and the same verdict.
type FsckConfig struct {
	Seed   int64
	Repair bool
	// Corrupt is how many objects to bit-flip at rest after the clean
	// shutdown (0: default 3; negative: none — the drill then checks a
	// healthy image).
	Corrupt int
	Clients int // default 2
	Dirs    int // default 3
	Files   int // files per directory, default 6
}

func (c *FsckConfig) fill() {
	if c.Corrupt == 0 {
		c.Corrupt = 3
	}
	if c.Corrupt < 0 {
		c.Corrupt = 0
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Dirs <= 0 {
		c.Dirs = 3
	}
	if c.Files <= 0 {
		c.Files = 6
	}
}

// FsckReport is the drill's outcome.
type FsckReport struct {
	Seed      int64
	Repair    bool
	Corrupted []string
	// Pre is the detection check over the corrupted image, Scrub the repair
	// (or, without Repair, planning) pass, Post the re-check after repairs
	// (nil without Repair).
	Pre   *fsck.Report
	Scrub *fsck.ScrubReport
	Post  *fsck.Report
	// Err records a harness-level failure (deploy or workload).
	Err error
}

// Failed reports whether the drill missed its guarantees: every flipped
// object must be detected and acted on, and a repaired image must re-check
// clean modulo the tolerated crash leaks.
func (r *FsckReport) Failed() bool {
	if r.Err != nil {
		return true
	}
	if len(r.Corrupted) > 0 && (r.Pre == nil || r.Pre.Clean()) {
		return true // corruption at rest went undetected
	}
	if r.Scrub != nil {
		acted := make(map[string]bool, len(r.Scrub.Actions))
		for _, a := range r.Scrub.Actions {
			acted[a.Key] = true
		}
		for _, key := range r.Corrupted {
			if !acted[key] {
				return true // scrub neither repaired nor quarantined it
			}
		}
	}
	if r.Post != nil {
		for _, p := range r.Post.Problems {
			if !toleratedLeaks[p.Kind] {
				return true
			}
		}
	}
	return false
}

// Summary renders the drill outcome for the CLI.
func (r *FsckReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck drill seed %d: %d object(s) bit-flipped at rest\n", r.Seed, len(r.Corrupted))
	for _, k := range r.Corrupted {
		fmt.Fprintf(&b, "  corrupted   %s\n", k)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, "error: %v\nRESULT: FAILED (seed %d)\n", r.Err, r.Seed)
		return b.String()
	}
	fmt.Fprintf(&b, "detect: %d problem(s)\n", len(r.Pre.Problems))
	for _, p := range r.Pre.Problems {
		fmt.Fprintf(&b, "  %s\n", p)
	}
	if r.Scrub != nil {
		verb := "planned"
		if r.Repair {
			verb = "performed"
		}
		fmt.Fprintf(&b, "scrub %s %d action(s)\n", verb, len(r.Scrub.Actions))
		for _, a := range r.Scrub.Actions {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	if r.Post != nil {
		fmt.Fprintf(&b, "re-check: %d problem(s) after repair\n", len(r.Post.Problems))
		for _, p := range r.Post.Problems {
			fmt.Fprintf(&b, "  %s\n", p)
		}
	}
	if r.Failed() {
		fmt.Fprintf(&b, "RESULT: FAILED (seed %d replays this drill)\n", r.Seed)
	} else {
		fmt.Fprintf(&b, "RESULT: ok\n")
	}
	return b.String()
}

// RunFsck executes one seeded corruption/scrub drill.
func RunFsck(cfg FsckConfig) *FsckReport {
	cfg.fill()
	rep := &FsckReport{Seed: cfg.Seed, Repair: cfg.Repair}
	env := sim.NewVirtEnv()
	env.Run(func() {
		prof := objstore.RADOSProfile()
		prof.SizeOnlyPrefix = "" // keep data payloads: the drill flips their bytes
		d, err := BuildArkFS(env, DefaultCalibration(), prof, cfg.Clients,
			ArkFSOptions{PermCache: true, Seed: cfg.Seed})
		if err != nil {
			rep.Err = fmt.Errorf("fsck drill: deploy: %w", err)
			return
		}
		defer d.Close()
		if err := fsckPopulate(env, d, cfg); err != nil {
			rep.Err = fmt.Errorf("fsck drill: populate: %w", err)
			return
		}
		// Clean shutdown: journals checkpointed, leases released — whatever
		// the checker finds afterwards was injected, not left behind.
		for _, m := range d.Mounts {
			if err := m.Close(); err != nil {
				rep.Err = fmt.Errorf("fsck drill: shutdown: %w", err)
				return
			}
		}
		rep.Corrupted, err = fsckCorrupt(d.Cluster, cfg)
		if err != nil {
			rep.Err = fmt.Errorf("fsck drill: corrupt: %w", err)
			return
		}
		rep.Pre, err = fsck.Check(d.Cluster)
		if err != nil {
			rep.Err = fmt.Errorf("fsck drill: check: %w", err)
			return
		}
		rep.Scrub, err = fsck.Scrub(d.Cluster, cfg.Repair)
		if err != nil {
			rep.Err = fmt.Errorf("fsck drill: scrub: %w", err)
			return
		}
		rep.Post = rep.Scrub.Post
	})
	return rep
}

// fsckPopulate builds a small deterministic namespace: Dirs directories of
// Files data-bearing files each, plus one cross-directory rename so 2PC
// records pass through the image.
func fsckPopulate(env sim.Env, d *Deployment, cfg FsckConfig) error {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 5))
	for di := 0; di < cfg.Dirs; di++ {
		m := d.Mounts[di%len(d.Mounts)]
		dir := fmt.Sprintf("/drill-%02d", di)
		if err := m.Mkdir(ctx, dir, 0o755); err != nil {
			return err
		}
		for fi := 0; fi < cfg.Files; fi++ {
			path := fmt.Sprintf("%s/f%03d", dir, fi)
			f, err := fsapi.Create(ctx, m, path, 0o644)
			if err != nil {
				return err
			}
			data := make([]byte, 512+rng.Intn(1536))
			rng.Read(data)
			if _, err := f.Write(data); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if cfg.Dirs >= 2 {
		if err := d.Mounts[0].Rename(ctx, "/drill-00/f000", "/drill-01/renamed"); err != nil {
			return err
		}
	}
	for _, m := range d.Mounts {
		if err := m.FlushAll(ctx); err != nil {
			return err
		}
	}
	// Let background lease/journal work quiesce before shutdown.
	env.Sleep(2 * DefaultCalibration().LeasePeriod)
	return nil
}

// fsckCorrupt bit-flips cfg.Corrupt deterministically chosen data and dentry
// objects at rest. Inodes are excluded for the same reason as the chaos
// epilogue: once checkpointed their journaled copies are gone, so the
// scrubber can only quarantine them, leaving a dangling dentry behind; the
// superblock is excluded because the drill formats with the default chunk
// size anyway, making its corruption trivially repairable noise.
func fsckCorrupt(store objstore.Store, cfg FsckConfig) ([]string, error) {
	if cfg.Corrupt == 0 {
		return nil, nil
	}
	var candidates []string
	for _, prefix := range []string{prt.PrefixData, prt.PrefixDentry} {
		keys, err := store.List(prefix)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, keys...)
	}
	sort.Strings(candidates)
	rng := rand.New(rand.NewSource(cfg.Seed*104729 + 29))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	n := cfg.Corrupt
	if n > len(candidates) {
		n = len(candidates)
	}
	picked := append([]string(nil), candidates[:n]...)
	sort.Strings(picked)
	for _, key := range picked {
		raw, err := store.Get(key)
		if err != nil {
			return nil, err
		}
		cp := append([]byte(nil), raw...)
		cp[rng.Intn(len(cp))] ^= 0x10
		if err := store.Put(key, cp); err != nil {
			return nil, err
		}
	}
	return picked, nil
}
