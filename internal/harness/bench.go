package harness

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/sim"
	"arkfs/internal/workload"
)

// BenchSchema identifies the BenchReport JSON layout. Bump the suffix on any
// field change: downstream tooling (CI artifact diffing, EXPERIMENTS.md
// tables) keys on it. v2 added the sharded lease-cluster scalability sweep;
// v3 added the tenant-isolation (overload protection on/off) comparison.
const BenchSchema = "arkfs-bench/v3"

// BenchConfig parameterizes one benchmark trajectory. The zero value runs the
// committed BENCH_seed.json configuration.
type BenchConfig struct {
	// Seed offsets every client's deterministic ID stream; it is recorded in
	// the report so a run can be replayed bit-exactly.
	Seed int64
	// Clients is the scalability sweep (default 1,2,4,8).
	Clients []int
	// FilesPerProc is the mdtest file count per process (default 200).
	FilesPerProc int
	// Procs is the mdtest/fio process count (default 4).
	Procs int
	// FioFileSize is the per-process sequential file size (default 32 MiB).
	FioFileSize int64
	// ShardedClients is the elastic lease-cluster sweep (default
	// 512,1024,2048,4096): each count runs against a Shards-member lease
	// ring, next to a single-manager point at ShardedClients[0] that anchors
	// the comparison. Negative Shards disables the sweep.
	ShardedClients []int
	// Shards is the lease-ring size for the sharded sweep (default 4).
	Shards int
	// ShardedDirs and ShardedFilesPerDir shape the per-client lease churn in
	// the sharded sweep (defaults 16 and 1): each client works through
	// ShardedDirs fresh directories — one lease acquire each — creating
	// ShardedFilesPerDir files per directory. Acquire-heavy on purpose: the
	// lease-acquire wave, not per-client create work, is the resource under
	// test.
	ShardedDirs        int
	ShardedFilesPerDir int
	// Obs, when non-nil, is the registry the instrumented mdtest phase
	// records into (live debug endpoints watch it mid-run). The fingerprint
	// still reflects only this run: it is computed from a snapshot taken
	// before any other phase reuses the registry.
	Obs *obs.Registry
}

func (c *BenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8}
	}
	if c.FilesPerProc <= 0 {
		c.FilesPerProc = 200
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.FioFileSize <= 0 {
		c.FioFileSize = 32 << 20
	}
	if len(c.ShardedClients) == 0 {
		c.ShardedClients = []int{512, 1024, 2048, 4096}
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.ShardedDirs <= 0 {
		c.ShardedDirs = 16
	}
	if c.ShardedFilesPerDir <= 0 {
		c.ShardedFilesPerDir = 1
	}
}

// BenchPhase is one mdtest phase in the report. Elapsed is virtual-clock
// nanoseconds: no wall time leaks into the schema.
type BenchPhase struct {
	Name      string  `json:"name"`
	Ops       int     `json:"ops"`
	Errors    int     `json:"errors"`
	ElapsedNS int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// BenchBandwidth is one fio pass.
type BenchBandwidth struct {
	Bytes     int64   `json:"bytes"`
	ElapsedNS int64   `json:"elapsed_ns"`
	GiBps     float64 `json:"gibps"`
}

// BenchScalePoint is one client count in the scalability sweep.
type BenchScalePoint struct {
	Clients      int     `json:"clients"`
	CreatePerSec float64 `json:"create_per_sec"`
}

// BenchShardPoint is one point in the sharded lease-cluster sweep: CREATE
// throughput at a client count against a Shards-member lease ring (Shards 1
// is the single-manager anchor).
type BenchShardPoint struct {
	Clients      int     `json:"clients"`
	Shards       int     `json:"shards"`
	CreatePerSec float64 `json:"create_per_sec"`
}

// BenchIsolationSide is one half of the tenant-isolation comparison: the
// polite tenants' aggregate outcome in the contended overload scenario, with
// overload protection either on or off.
type BenchIsolationSide struct {
	// PoliteGoodput is the polite tenants' summed acked ops/sec under
	// contention; PoliteIsolated is the same tenants' baseline without the
	// hostile tenant. Their ratio is the isolation headline.
	PoliteGoodput  float64 `json:"polite_goodput_ops_per_sec"`
	PoliteIsolated float64 `json:"polite_isolated_ops_per_sec"`
	// PoliteP99NS is the worst polite tenant's p99 submission latency under
	// contention, virtual-clock nanoseconds.
	PoliteP99NS    int64 `json:"polite_p99_ns"`
	PoliteTimeouts int   `json:"polite_timeouts"`
	// Hostile outcome: typed retry-after pushback vs timeouts vs acks. With
	// protection on, pushback dominates and timeouts are zero; off, the
	// flood is absorbed (or times out) instead of being refused.
	HostileAcked    int `json:"hostile_acked"`
	HostilePushback int `json:"hostile_pushback"`
	HostileTimeouts int `json:"hostile_timeouts"`
}

// BenchIsolation is the overload-protection comparison: the same seeded
// hostile-tenant burst run with the full protection stack and with none.
type BenchIsolation struct {
	QoSOn  BenchIsolationSide `json:"qos_on"`
	QoSOff BenchIsolationSide `json:"qos_off"`
}

// BenchReport is the stable -bench-json output. Every number derives from the
// virtual clock and seeded IDs, so the same (schema, seed, config) yields a
// byte-identical report.
type BenchReport struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Config struct {
		Clients            []int `json:"clients"`
		FilesPerProc       int   `json:"files_per_proc"`
		Procs              int   `json:"procs"`
		FioFileSize        int64 `json:"fio_file_size"`
		ShardedClients     []int `json:"sharded_clients"`
		Shards             int   `json:"shards"`
		ShardedDirs        int   `json:"sharded_dirs"`
		ShardedFilesPerDir int   `json:"sharded_files_per_dir"`
	} `json:"config"`
	MdtestEasy  []BenchPhase      `json:"mdtest_easy"`
	MdtestHard  []BenchPhase      `json:"mdtest_hard"`
	FioWrite    BenchBandwidth    `json:"fio_write"`
	FioRead     BenchBandwidth    `json:"fio_read"`
	Scalability []BenchScalePoint `json:"scalability"`
	// ShardedScalability is the elastic lease-cluster sweep: a single-manager
	// and a multi-shard point per client count. Unlike every other section,
	// these numbers are stable only to ~0.1% across process invocations: with
	// thousands of clients feeding several shard queues, same-virtual-instant
	// event ordering (which the host scheduler decides) feeds back into
	// queueing delays. CI compares them with a tolerance instead of
	// byte-diffing.
	ShardedScalability []BenchShardPoint `json:"sharded_scalability"`
	// Isolation is the tenant-isolation comparison from the seeded overload
	// scenario (see harness/overload.go): protection on vs off.
	Isolation BenchIsolation `json:"isolation"`
	// MetricsFingerprint is the instrumented mdtest deployment's
	// obs.Snapshot.Fingerprint() — the full sorted counter list.
	MetricsFingerprint string `json:"metrics_fingerprint"`
	// MetricsSHA256 is sha256(MetricsFingerprint), the short handle CI and
	// humans compare.
	MetricsSHA256 string `json:"metrics_sha256"`
}

// JSON renders the report with a trailing newline, suitable for committing.
func (r *BenchReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // no unmarshalable fields in BenchReport
	}
	return append(b, '\n')
}

func benchPhases(ps []workload.PhaseResult) []BenchPhase {
	out := make([]BenchPhase, 0, len(ps))
	for _, p := range ps {
		out = append(out, BenchPhase{
			Name: p.Name, Ops: p.Ops, Errors: p.Errors,
			ElapsedNS: p.Elapsed.Nanoseconds(), OpsPerSec: p.OpsPerSec(),
		})
	}
	return out
}

func benchBW(r workload.BandwidthResult) BenchBandwidth {
	return BenchBandwidth{Bytes: r.Bytes, ElapsedNS: r.Elapsed.Nanoseconds(), GiBps: r.GiBps()}
}

// RunBench runs the seeded benchmark trajectory: instrumented mdtest-easy and
// mdtest-hard (whose metrics registry yields the fingerprint), an fio
// bandwidth pass, and a scalability sweep — everything under the virtual
// clock. One invocation regenerates BENCH_<seed>.json.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg.fill()
	rep := &BenchReport{Schema: BenchSchema, Seed: cfg.Seed}
	rep.Config.Clients = cfg.Clients
	rep.Config.FilesPerProc = cfg.FilesPerProc
	rep.Config.Procs = cfg.Procs
	rep.Config.FioFileSize = cfg.FioFileSize
	rep.Config.ShardedClients = cfg.ShardedClients
	rep.Config.Shards = cfg.Shards
	rep.Config.ShardedDirs = cfg.ShardedDirs
	rep.Config.ShardedFilesPerDir = cfg.ShardedFilesPerDir

	cal := DefaultCalibration()
	rados := objstore.RADOSProfile()
	build := func(env sim.Env, n int, reg *obs.Registry) (*Deployment, error) {
		return BuildArkFS(env, cal, rados, n, ArkFSOptions{
			PermCache: true, Obs: reg, Seed: cfg.Seed,
		})
	}

	// Phase 1: instrumented mdtest. The registry from this deployment is the
	// report's fingerprint (a caller-supplied registry must be fresh, or its
	// prior counts fold into the fingerprint).
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var runErr error
	env := sim.NewVirtEnv()
	env.Run(func() {
		d, err := build(env, cfg.Procs, reg)
		if err != nil {
			runErr = fmt.Errorf("bench: deploy: %w", err)
			return
		}
		defer d.Close()
		easy, err := workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: cfg.FilesPerProc, Root: "/bench-easy",
		})
		if err != nil {
			runErr = fmt.Errorf("bench: mdtest-easy: %w", err)
			return
		}
		rep.MdtestEasy = benchPhases(easy)
		hard, err := workload.MdtestHard(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: cfg.FilesPerProc / 2, SharedDirs: cfg.Procs, Root: "/bench-hard",
		})
		if err != nil {
			runErr = fmt.Errorf("bench: mdtest-hard: %w", err)
			return
		}
		rep.MdtestHard = benchPhases(hard)
		env.Sleep(2 * cal.LeasePeriod) // let background work settle the gauges
	})
	if runErr != nil {
		return nil, runErr
	}
	fp := reg.Snapshot().Fingerprint()
	rep.MetricsFingerprint = fp
	rep.MetricsSHA256 = fmt.Sprintf("%x", sha256.Sum256([]byte(fp)))

	// Phase 2: fio bandwidth (uninstrumented: the fingerprint covers the
	// metadata trajectory; fio timing is its own result).
	env = sim.NewVirtEnv()
	env.Run(func() {
		d, err := build(env, cfg.Procs, nil)
		if err != nil {
			runErr = fmt.Errorf("bench: fio deploy: %w", err)
			return
		}
		defer d.Close()
		w, r, err := workload.Fio(env, d.Mounts, workload.FioConfig{
			FileSize: cfg.FioFileSize, ReqSize: 128 << 10, DropCaches: d.DropAllCaches,
		})
		if err != nil {
			runErr = fmt.Errorf("bench: fio: %w", err)
			return
		}
		rep.FioWrite, rep.FioRead = benchBW(w), benchBW(r)
	})
	if runErr != nil {
		return nil, runErr
	}

	// Phase 3: scalability sweep (CREATE throughput per client count).
	for _, n := range cfg.Clients {
		var thr float64
		env := sim.NewVirtEnv()
		env.Run(func() {
			d, err := build(env, n, nil)
			if err != nil {
				runErr = fmt.Errorf("bench: scale deploy %d: %w", n, err)
				return
			}
			defer d.Close()
			phases, err := workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
				FilesPerProc: 50, Root: "/bench-scale",
			})
			if err != nil {
				runErr = fmt.Errorf("bench: scale %d: %w", n, err)
				return
			}
			thr = phases[0].OpsPerSec()
		})
		if runErr != nil {
			return nil, runErr
		}
		rep.Scalability = append(rep.Scalability, BenchScalePoint{Clients: n, CreatePerSec: thr})
	}

	// Phase 4: sharded lease-cluster sweep (lease churn, not mdtest: every
	// fresh directory is a lease acquire, so the manager tier is the
	// contended resource). One single-manager anchor at the smallest client
	// count, then the elastic-ring points.
	if cfg.Shards > 1 {
		shardPoint := func(n, shards int) (float64, error) {
			var thr float64
			var perr error
			env := sim.NewVirtEnv()
			env.Run(func() {
				d, err := BuildArkFS(env, cal, rados, n, ArkFSOptions{
					PermCache: true, Seed: cfg.Seed, LeaseShards: shards,
				})
				if err != nil {
					perr = fmt.Errorf("bench: sharded deploy %d/%d: %w", n, shards, err)
					return
				}
				defer d.Close()
				res, err := workload.LeaseChurn(env, d.Mounts, workload.LeaseChurnConfig{
					Dirs: cfg.ShardedDirs, FilesPerDir: cfg.ShardedFilesPerDir,
					Root: "/bench-shard",
				})
				if err != nil {
					perr = fmt.Errorf("bench: sharded %d/%d: %w", n, shards, err)
					return
				}
				thr = res.OpsPerSec()
			})
			return thr, perr
		}
		for _, n := range cfg.ShardedClients {
			for _, shards := range []int{1, cfg.Shards} {
				thr, err := shardPoint(n, shards)
				if err != nil {
					return nil, err
				}
				rep.ShardedScalability = append(rep.ShardedScalability,
					BenchShardPoint{Clients: n, Shards: shards, CreatePerSec: thr})
			}
		}
	}

	// Phase 5: tenant isolation — the seeded overload scenario (hostile
	// tenant at ~4× its admitted rate) with the protection stack on, then the
	// identical burst with it off. The QoS-off side has no oracle (there is
	// no contract to hold without protection); it is the "what overload does
	// to the unprotected system" reference the on-side is compared against.
	for _, off := range []bool{false, true} {
		orep := RunOverload(OverloadConfig{Seed: cfg.Seed, QoSOff: off})
		if !off && orep.Failed() {
			return nil, fmt.Errorf("bench: isolation scenario violated its contract:\n%s", orep.Summary())
		}
		side := isolationSide(orep)
		if off {
			rep.Isolation.QoSOff = side
		} else {
			rep.Isolation.QoSOn = side
		}
	}
	return rep, nil
}

// isolationSide condenses an overload report into the bench schema's
// per-side summary.
func isolationSide(r *OverloadReport) BenchIsolationSide {
	var s BenchIsolationSide
	for _, t := range r.Isolated {
		s.PoliteIsolated += Goodput(t)
	}
	for _, t := range r.Contended {
		if t.Hostile {
			s.HostileAcked += t.Acked
			s.HostilePushback += t.Pushback
			s.HostileTimeouts += t.Timeout
			continue
		}
		s.PoliteGoodput += Goodput(t)
		if p99 := t.P99().Nanoseconds(); p99 > s.PoliteP99NS {
			s.PoliteP99NS = p99
		}
		s.PoliteTimeouts += t.Timeout
	}
	return s
}
