package harness

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/sim"
	"arkfs/internal/workload"
)

// BenchSchema identifies the BenchReport JSON layout. Bump the suffix on any
// field change: downstream tooling (CI artifact diffing, EXPERIMENTS.md
// tables) keys on it.
const BenchSchema = "arkfs-bench/v1"

// BenchConfig parameterizes one benchmark trajectory. The zero value runs the
// committed BENCH_seed.json configuration.
type BenchConfig struct {
	// Seed offsets every client's deterministic ID stream; it is recorded in
	// the report so a run can be replayed bit-exactly.
	Seed int64
	// Clients is the scalability sweep (default 1,2,4,8).
	Clients []int
	// FilesPerProc is the mdtest file count per process (default 200).
	FilesPerProc int
	// Procs is the mdtest/fio process count (default 4).
	Procs int
	// FioFileSize is the per-process sequential file size (default 32 MiB).
	FioFileSize int64
	// Obs, when non-nil, is the registry the instrumented mdtest phase
	// records into (live debug endpoints watch it mid-run). The fingerprint
	// still reflects only this run: it is computed from a snapshot taken
	// before any other phase reuses the registry.
	Obs *obs.Registry
}

func (c *BenchConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8}
	}
	if c.FilesPerProc <= 0 {
		c.FilesPerProc = 200
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.FioFileSize <= 0 {
		c.FioFileSize = 32 << 20
	}
}

// BenchPhase is one mdtest phase in the report. Elapsed is virtual-clock
// nanoseconds: no wall time leaks into the schema.
type BenchPhase struct {
	Name      string  `json:"name"`
	Ops       int     `json:"ops"`
	Errors    int     `json:"errors"`
	ElapsedNS int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// BenchBandwidth is one fio pass.
type BenchBandwidth struct {
	Bytes     int64   `json:"bytes"`
	ElapsedNS int64   `json:"elapsed_ns"`
	GiBps     float64 `json:"gibps"`
}

// BenchScalePoint is one client count in the scalability sweep.
type BenchScalePoint struct {
	Clients      int     `json:"clients"`
	CreatePerSec float64 `json:"create_per_sec"`
}

// BenchReport is the stable -bench-json output. Every number derives from the
// virtual clock and seeded IDs, so the same (schema, seed, config) yields a
// byte-identical report.
type BenchReport struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Config struct {
		Clients      []int `json:"clients"`
		FilesPerProc int   `json:"files_per_proc"`
		Procs        int   `json:"procs"`
		FioFileSize  int64 `json:"fio_file_size"`
	} `json:"config"`
	MdtestEasy  []BenchPhase      `json:"mdtest_easy"`
	MdtestHard  []BenchPhase      `json:"mdtest_hard"`
	FioWrite    BenchBandwidth    `json:"fio_write"`
	FioRead     BenchBandwidth    `json:"fio_read"`
	Scalability []BenchScalePoint `json:"scalability"`
	// MetricsFingerprint is the instrumented mdtest deployment's
	// obs.Snapshot.Fingerprint() — the full sorted counter list.
	MetricsFingerprint string `json:"metrics_fingerprint"`
	// MetricsSHA256 is sha256(MetricsFingerprint), the short handle CI and
	// humans compare.
	MetricsSHA256 string `json:"metrics_sha256"`
}

// JSON renders the report with a trailing newline, suitable for committing.
func (r *BenchReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // no unmarshalable fields in BenchReport
	}
	return append(b, '\n')
}

func benchPhases(ps []workload.PhaseResult) []BenchPhase {
	out := make([]BenchPhase, 0, len(ps))
	for _, p := range ps {
		out = append(out, BenchPhase{
			Name: p.Name, Ops: p.Ops, Errors: p.Errors,
			ElapsedNS: p.Elapsed.Nanoseconds(), OpsPerSec: p.OpsPerSec(),
		})
	}
	return out
}

func benchBW(r workload.BandwidthResult) BenchBandwidth {
	return BenchBandwidth{Bytes: r.Bytes, ElapsedNS: r.Elapsed.Nanoseconds(), GiBps: r.GiBps()}
}

// RunBench runs the seeded benchmark trajectory: instrumented mdtest-easy and
// mdtest-hard (whose metrics registry yields the fingerprint), an fio
// bandwidth pass, and a scalability sweep — everything under the virtual
// clock. One invocation regenerates BENCH_<seed>.json.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg.fill()
	rep := &BenchReport{Schema: BenchSchema, Seed: cfg.Seed}
	rep.Config.Clients = cfg.Clients
	rep.Config.FilesPerProc = cfg.FilesPerProc
	rep.Config.Procs = cfg.Procs
	rep.Config.FioFileSize = cfg.FioFileSize

	cal := DefaultCalibration()
	rados := objstore.RADOSProfile()
	build := func(env sim.Env, n int, reg *obs.Registry) (*Deployment, error) {
		return BuildArkFS(env, cal, rados, n, ArkFSOptions{
			PermCache: true, Obs: reg, Seed: cfg.Seed,
		})
	}

	// Phase 1: instrumented mdtest. The registry from this deployment is the
	// report's fingerprint (a caller-supplied registry must be fresh, or its
	// prior counts fold into the fingerprint).
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var runErr error
	env := sim.NewVirtEnv()
	env.Run(func() {
		d, err := build(env, cfg.Procs, reg)
		if err != nil {
			runErr = fmt.Errorf("bench: deploy: %w", err)
			return
		}
		defer d.Close()
		easy, err := workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: cfg.FilesPerProc, Root: "/bench-easy",
		})
		if err != nil {
			runErr = fmt.Errorf("bench: mdtest-easy: %w", err)
			return
		}
		rep.MdtestEasy = benchPhases(easy)
		hard, err := workload.MdtestHard(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: cfg.FilesPerProc / 2, SharedDirs: cfg.Procs, Root: "/bench-hard",
		})
		if err != nil {
			runErr = fmt.Errorf("bench: mdtest-hard: %w", err)
			return
		}
		rep.MdtestHard = benchPhases(hard)
		env.Sleep(2 * cal.LeasePeriod) // let background work settle the gauges
	})
	if runErr != nil {
		return nil, runErr
	}
	fp := reg.Snapshot().Fingerprint()
	rep.MetricsFingerprint = fp
	rep.MetricsSHA256 = fmt.Sprintf("%x", sha256.Sum256([]byte(fp)))

	// Phase 2: fio bandwidth (uninstrumented: the fingerprint covers the
	// metadata trajectory; fio timing is its own result).
	env = sim.NewVirtEnv()
	env.Run(func() {
		d, err := build(env, cfg.Procs, nil)
		if err != nil {
			runErr = fmt.Errorf("bench: fio deploy: %w", err)
			return
		}
		defer d.Close()
		w, r, err := workload.Fio(env, d.Mounts, workload.FioConfig{
			FileSize: cfg.FioFileSize, ReqSize: 128 << 10, DropCaches: d.DropAllCaches,
		})
		if err != nil {
			runErr = fmt.Errorf("bench: fio: %w", err)
			return
		}
		rep.FioWrite, rep.FioRead = benchBW(w), benchBW(r)
	})
	if runErr != nil {
		return nil, runErr
	}

	// Phase 3: scalability sweep (CREATE throughput per client count).
	for _, n := range cfg.Clients {
		var thr float64
		env := sim.NewVirtEnv()
		env.Run(func() {
			d, err := build(env, n, nil)
			if err != nil {
				runErr = fmt.Errorf("bench: scale deploy %d: %w", n, err)
				return
			}
			defer d.Close()
			phases, err := workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
				FilesPerProc: 50, Root: "/bench-scale",
			})
			if err != nil {
				runErr = fmt.Errorf("bench: scale %d: %w", n, err)
				return
			}
			thr = phases[0].OpsPerSec()
		})
		if runErr != nil {
			return nil, runErr
		}
		rep.Scalability = append(rep.Scalability, BenchScalePoint{Clients: n, CreatePerSec: thr})
	}
	return rep, nil
}
