package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

func quickBench() BenchConfig {
	return BenchConfig{
		Seed: 42, Clients: []int{1, 2}, FilesPerProc: 40, Procs: 2, FioFileSize: 8 << 20,
		// Tiny sharded sweep: enough to exercise the phase, small enough that
		// two full runs fit a unit test.
		ShardedClients: []int{8}, Shards: 2, ShardedDirs: 2, ShardedFilesPerDir: 1,
	}
}

// TestRunBenchSchemaStable: the report round-trips through its own JSON and
// carries the schema tag, seed, and a non-empty fingerprint.
func TestRunBenchSchemaStable(t *testing.T) {
	rep, err := RunBench(quickBench())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Seed != 42 {
		t.Fatalf("seed = %d", rep.Seed)
	}
	if len(rep.MdtestEasy) == 0 || len(rep.MdtestHard) == 0 || len(rep.Scalability) != 2 {
		t.Fatalf("incomplete report: %+v", rep)
	}
	for _, p := range append(rep.MdtestEasy, rep.MdtestHard...) {
		if p.Errors != 0 {
			t.Fatalf("phase %s had %d errors", p.Name, p.Errors)
		}
		if p.OpsPerSec <= 0 || p.ElapsedNS <= 0 {
			t.Fatalf("phase %s has empty timing: %+v", p.Name, p)
		}
	}
	if rep.FioWrite.GiBps <= 0 || rep.FioRead.GiBps <= 0 {
		t.Fatalf("fio empty: w=%+v r=%+v", rep.FioWrite, rep.FioRead)
	}
	if len(rep.ShardedScalability) != 2 {
		t.Fatalf("sharded sweep has %d points, want 2", len(rep.ShardedScalability))
	}
	for i, p := range rep.ShardedScalability {
		wantShards := []int{1, 2}[i]
		if p.Clients != 8 || p.Shards != wantShards || p.CreatePerSec <= 0 {
			t.Fatalf("sharded point %d = %+v, want 8 clients / %d shards / positive rate",
				i, p, wantShards)
		}
	}
	if rep.MetricsFingerprint == "" || len(rep.MetricsSHA256) != 64 {
		t.Fatalf("fingerprint missing: sha=%q", rep.MetricsSHA256)
	}
	// The isolation comparison: protection on answers the hostile flood with
	// typed pushback and no timeouts on either side of the table.
	on, off := rep.Isolation.QoSOn, rep.Isolation.QoSOff
	if on.PoliteGoodput <= 0 || on.PoliteIsolated <= 0 {
		t.Fatalf("isolation qos-on side empty: %+v", on)
	}
	if on.HostilePushback == 0 {
		t.Fatalf("qos-on hostile tenant saw no pushback: %+v", on)
	}
	if on.PoliteTimeouts != 0 || on.HostileTimeouts != 0 {
		t.Fatalf("qos-on run timed out: %+v", on)
	}
	if off.HostilePushback != 0 {
		t.Fatalf("qos-off run produced pushback with no admission control: %+v", off)
	}
	var back BenchReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.MetricsSHA256 != rep.MetricsSHA256 {
		t.Fatal("round-trip lost the fingerprint hash")
	}
}

// TestRunBenchDeterministic: the same seed and config yield byte-identical
// JSON apart from the sharded sweep rates, which are only stable to a small
// tolerance (multi-shard queueing makes same-virtual-instant event order —
// decided by the host scheduler — feed back into timings). This is the exact
// contract CI enforces when it regenerates BENCH_seed.json.
func TestRunBenchDeterministic(t *testing.T) {
	a, err := RunBench(quickBench())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(quickBench())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ShardedScalability) != len(b.ShardedScalability) {
		t.Fatalf("sharded sweep shape differs: %d vs %d points",
			len(a.ShardedScalability), len(b.ShardedScalability))
	}
	for i, pa := range a.ShardedScalability {
		pb := b.ShardedScalability[i]
		if pa.Clients != pb.Clients || pa.Shards != pb.Shards {
			t.Fatalf("sharded point %d keys differ: %+v vs %+v", i, pa, pb)
		}
		if diff := pa.CreatePerSec - pb.CreatePerSec; diff > pa.CreatePerSec*0.01 || -diff > pa.CreatePerSec*0.01 {
			t.Fatalf("sharded point %d rates differ beyond 1%%: %.1f vs %.1f",
				i, pa.CreatePerSec, pb.CreatePerSec)
		}
	}
	// Everything outside the sharded rates must be byte-identical.
	for i := range a.ShardedScalability {
		a.ShardedScalability[i].CreatePerSec = 0
		b.ShardedScalability[i].CreatePerSec = 0
	}
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("same-seed bench runs differ:\n--- a\n%s\n--- b\n%s", a.JSON(), b.JSON())
	}
}
