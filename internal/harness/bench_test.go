package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

func quickBench() BenchConfig {
	return BenchConfig{Seed: 42, Clients: []int{1, 2}, FilesPerProc: 40, Procs: 2, FioFileSize: 8 << 20}
}

// TestRunBenchSchemaStable: the report round-trips through its own JSON and
// carries the schema tag, seed, and a non-empty fingerprint.
func TestRunBenchSchemaStable(t *testing.T) {
	rep, err := RunBench(quickBench())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Seed != 42 {
		t.Fatalf("seed = %d", rep.Seed)
	}
	if len(rep.MdtestEasy) == 0 || len(rep.MdtestHard) == 0 || len(rep.Scalability) != 2 {
		t.Fatalf("incomplete report: %+v", rep)
	}
	for _, p := range append(rep.MdtestEasy, rep.MdtestHard...) {
		if p.Errors != 0 {
			t.Fatalf("phase %s had %d errors", p.Name, p.Errors)
		}
		if p.OpsPerSec <= 0 || p.ElapsedNS <= 0 {
			t.Fatalf("phase %s has empty timing: %+v", p.Name, p)
		}
	}
	if rep.FioWrite.GiBps <= 0 || rep.FioRead.GiBps <= 0 {
		t.Fatalf("fio empty: w=%+v r=%+v", rep.FioWrite, rep.FioRead)
	}
	if rep.MetricsFingerprint == "" || len(rep.MetricsSHA256) != 64 {
		t.Fatalf("fingerprint missing: sha=%q", rep.MetricsSHA256)
	}
	var back BenchReport
	if err := json.Unmarshal(rep.JSON(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.MetricsSHA256 != rep.MetricsSHA256 {
		t.Fatal("round-trip lost the fingerprint hash")
	}
}

// TestRunBenchDeterministic: the same seed and config yield byte-identical
// JSON — the property that lets CI diff BENCH_seed.json against a fresh run.
func TestRunBenchDeterministic(t *testing.T) {
	a, err := RunBench(quickBench())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(quickBench())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("same-seed bench runs differ:\n--- a\n%s\n--- b\n%s", a.JSON(), b.JSON())
	}
}
