package harness

import (
	"fmt"
	"strings"
)

// Render formats an experiment as an aligned text table (systems as rows,
// metrics as columns), matching the rows/series the paper reports.
func (e *Experiment) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", e.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(e.Title)))

	systems := e.SystemsOf()
	metrics := e.MetricsOf()

	unit := ""
	for _, c := range e.Cells {
		if c.Unit != "" {
			unit = c.Unit
			break
		}
	}

	// Column widths.
	sysW := len("system")
	for _, s := range systems {
		if len(s) > sysW {
			sysW = len(s)
		}
	}
	colW := make([]int, len(metrics))
	for i, m := range metrics {
		colW[i] = len(m)
		for _, s := range systems {
			if c, ok := e.Value(s, m); ok {
				if w := len(formatCell(c)); w > colW[i] {
					colW[i] = w
				}
			}
		}
	}

	fmt.Fprintf(&b, "%-*s", sysW, "system")
	for i, m := range metrics {
		fmt.Fprintf(&b, "  %*s", colW[i], m)
	}
	if unit != "" {
		fmt.Fprintf(&b, "   [%s]", unit)
	}
	b.WriteByte('\n')
	for _, s := range systems {
		fmt.Fprintf(&b, "%-*s", sysW, s)
		for i, m := range metrics {
			if c, ok := e.Value(s, m); ok {
				fmt.Fprintf(&b, "  %*s", colW[i], formatCell(c))
			} else {
				fmt.Fprintf(&b, "  %*s", colW[i], "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatCell(c Cell) string {
	if c.Failed {
		return "ERR"
	}
	switch {
	case c.Value >= 1000:
		return fmt.Sprintf("%.0f", c.Value)
	case c.Value >= 10:
		return fmt.Sprintf("%.1f", c.Value)
	default:
		return fmt.Sprintf("%.2f", c.Value)
	}
}

// RenderCSV emits the experiment as CSV for plotting.
func (e *Experiment) RenderCSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment,system,metric,value,unit,failed\n")
	for _, c := range e.Cells {
		fmt.Fprintf(&b, "%s,%q,%q,%g,%s,%v\n", e.ID, c.System, c.Metric, c.Value, c.Unit, c.Failed)
	}
	return b.String()
}
