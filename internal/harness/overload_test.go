package harness

import (
	"strings"
	"testing"
)

// TestOverloadProtection: the headline overload scenario. One hostile tenant
// floods a shared leader at several times its admitted rate while three
// polite tenants stay under theirs. The report's own oracle asserts the
// contract: zero acknowledged-op loss, polite goodput within 80% of the
// isolated baseline, typed pushback (not timeouts) for the hostile tenant,
// and convergence once the burst ends.
func TestOverloadProtection(t *testing.T) {
	rep := RunOverload(OverloadConfig{Seed: 1})
	if rep.Failed() {
		t.Fatalf("overload scenario failed:\n%s", rep.Summary())
	}
	var hostile, politeAcked int
	for _, r := range rep.Contended {
		if r.Hostile {
			hostile++
			if r.Pushback == 0 {
				t.Errorf("hostile tenant saw no pushback:\n%s", rep.Summary())
			}
		} else {
			politeAcked += r.Acked
		}
	}
	if hostile != 1 {
		t.Fatalf("expected exactly 1 hostile tenant, got %d", hostile)
	}
	if politeAcked == 0 {
		t.Fatalf("no polite work acknowledged — scenario too weak:\n%s", rep.Summary())
	}
	if !strings.Contains(rep.Metrics, "qos.") {
		t.Errorf("metrics fingerprint carries no qos.* counters:\n%s", rep.Metrics)
	}
}

// TestOverloadSeeds sweeps the protection contract across a few seeds, so the
// pass does not hinge on one lucky schedule.
func TestOverloadSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed overload sweep is not short")
	}
	for _, seed := range []int64{7, 42} {
		rep := RunOverload(OverloadConfig{Seed: seed})
		if rep.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, rep.Summary())
		}
	}
}

// TestOverloadSameSeedSameFingerprint: replaying a seed reproduces the exact
// per-tenant tallies and every qos.* counter — the property that makes an
// overload failure replayable with arkbench -chaos -overload -seed N.
func TestOverloadSameSeedSameFingerprint(t *testing.T) {
	if raceEnabled {
		t.Skip("fingerprints are seed-deterministic only without race instrumentation")
	}
	cfg := OverloadConfig{Seed: 99}
	a := RunOverload(cfg)
	b := RunOverload(cfg)
	if a.Failed() || b.Failed() {
		t.Fatalf("runs failed:\n%s\n%s", a.Summary(), b.Summary())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed, different fingerprints:\n--- run A\n%s\n--- run B\n%s",
			a.Fingerprint(), b.Fingerprint())
	}
}
