// Chaos harness: seeded, deterministic failure-injection runs against a full
// ArkFS deployment under the virtual clock.
//
// A run precomputes its entire fault script at t=0 from one seeded RNG —
// crash-points armed on directory leaders, lease-manager partitions and
// restarts, network drop windows, object-store flakiness flips — then drives
// a multi-client workload through it while tracking an oracle of what each
// acknowledgement promised. At drain time every fault heals, survivors shut
// down, and a fresh verifier walks the namespace (forcing lazy journal
// recovery of every crashed directory), checks the oracle, and runs
// fsck.Check over the raw store.
//
// Because the script is fixed before the first event fires and all timing
// goes through sim.VirtEnv, replaying a seed reproduces the same scenario:
// ChaosReport.Fingerprint() is stable across runs of the same seed.
package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"arkfs/internal/cache"
	"arkfs/internal/core"
	"arkfs/internal/crashpoint"
	"arkfs/internal/fsck"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// ChaosConfig parameterizes one chaos run. The zero value of any field is
// replaced by the default noted on it.
type ChaosConfig struct {
	Seed          int64
	Slots         int           // concurrent client slots (default 3)
	Rounds        int           // workload rounds per slot (default 6)
	FilesPerRound int           // files created per slot per round (default 4)
	LeasePeriod   time.Duration // directory lease duration (default 200ms)
	// DataWrites: write file contents too; durable files must read back
	// byte-exact through a fresh client after the run.
	DataWrites bool
	// Fault mix (counts of scripted events; defaults 3/1/2/1/1).
	Crashes     int
	MgrRestarts int
	Partitions  int
	DropWindows int
	FlakyFlips  int
	// LeaseShards > 1 runs the scenario against an elastic lease-manager
	// cluster (consistent-hash ring, grant-table persistence on) instead of
	// the single manager. Reshards scripted membership changes run
	// mid-workload: AddShard events grow the ring and hand live grants over;
	// RemoveShard events shrink it back, tombstoning the removed shard.
	// ShardRestarts kill-and-replace a ring member, which must resume from
	// its persisted grant table instead of stalling behind restart amnesia.
	// All three default when LeaseShards > 1 (2 reshards, 1 restart);
	// negative disables.
	LeaseShards   int
	Reshards      int
	ShardRestarts int
	// Corruption drill. CorruptWindows scripted windows flip bits on reads in
	// flight (transient: the stored object is untouched, a retry reads clean
	// bytes), exercising the verify-on-read paths live. After the oracle
	// verification, CorruptObjects live objects are bit-flipped at rest, the
	// scrubber must detect and repair every one, and the image must re-check
	// clean modulo the tolerated leak classes. Defaults 1 and 2; negative
	// disables.
	CorruptWindows int
	CorruptObjects int
}

func (c *ChaosConfig) fill() {
	if c.Slots <= 0 {
		c.Slots = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.FilesPerRound <= 0 {
		c.FilesPerRound = 4
	}
	if c.LeasePeriod <= 0 {
		c.LeasePeriod = 200 * time.Millisecond
	}
	if c.Crashes < 0 {
		c.Crashes = 0
	} else if c.Crashes == 0 {
		c.Crashes = 3
	}
	if c.MgrRestarts == 0 {
		c.MgrRestarts = 1
	}
	if c.Partitions == 0 {
		c.Partitions = 2
	}
	if c.DropWindows == 0 {
		c.DropWindows = 1
	}
	if c.FlakyFlips == 0 {
		c.FlakyFlips = 1
	}
	if c.CorruptWindows == 0 {
		c.CorruptWindows = 1
	}
	if c.CorruptObjects == 0 {
		c.CorruptObjects = 2
	}
	if c.LeaseShards > 1 {
		if c.Reshards == 0 {
			c.Reshards = 2
		}
		if c.ShardRestarts == 0 {
			c.ShardRestarts = 1
		}
	}
}

// ChaosEvent is one scripted fault, scheduled before the run starts.
type ChaosEvent struct {
	At   time.Duration
	What string
}

func (e ChaosEvent) String() string { return fmt.Sprintf("t=%-12v %s", e.At, e.What) }

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Seed   int64
	Script []ChaosEvent // the precomputed fault schedule, in time order
	Fired  []string     // crash sites that actually fired ("s0/post-journal-put"), sorted
	Log    []string     // human-readable run narration
	// Oracle verification tallies.
	DurableChecked, UncertainChecked int
	// Errors are assertion failures: lost acknowledged ops, resurrected
	// deletes, oracle content mismatches, and fsck findings.
	Errors []string
	Fsck   *fsck.Report
	// Corrupted lists the object keys the integrity epilogue bit-flipped at
	// rest after verification; Scrub is the repair pass that followed, whose
	// post-check must come back clean modulo tolerated leaks.
	Corrupted []string
	Scrub     *fsck.ScrubReport
	// Metrics is the deterministic metrics fingerprint of the run's shared
	// observability registry (counters and histogram counts; no latencies).
	Metrics string
	// Handoff tallies, meaningful when LeaseShards > 1: grants that moved
	// between shards intact during reshards, and grants whose transfer
	// failed (those directories fall back to the crash-grace stall).
	HandoffMoved, HandoffLost int64
}

// Failed reports whether the run violated any invariant.
func (r *ChaosReport) Failed() bool { return len(r.Errors) > 0 }

// Fingerprint identifies the scenario: the full scripted schedule plus the
// set of crash sites that fired. Two runs of the same seed and config must
// produce identical fingerprints.
func (r *ChaosReport) Fingerprint() string {
	var b strings.Builder
	for _, e := range r.Script {
		fmt.Fprintf(&b, "%v %s\n", e.At, e.What)
	}
	fired := append([]string(nil), r.Fired...)
	sort.Strings(fired)
	b.WriteString("fired: " + strings.Join(fired, ",") + "\n")
	if len(r.Corrupted) > 0 {
		b.WriteString("corrupted: " + strings.Join(r.Corrupted, ",") + "\n")
	}
	if r.Scrub != nil {
		// Sorted: scrub passes walk map-keyed groups, so raw action order is
		// not stable across runs even when the action set is.
		acts := make([]string, 0, len(r.Scrub.Actions))
		for _, a := range r.Scrub.Actions {
			acts = append(acts, a.Op+" "+a.Key)
		}
		sort.Strings(acts)
		b.WriteString("scrub: " + strings.Join(acts, ";") + "\n")
	}
	b.WriteString(r.Metrics)
	return b.String()
}

// Summary renders the report for humans; failures include the seed so the
// scenario can be replayed exactly (arkbench -chaos -seed N).
func (r *ChaosReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d: %d scripted events, %d crash sites fired\n",
		r.Seed, len(r.Script), len(r.Fired))
	for _, e := range r.Script {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	fmt.Fprintf(&b, "verified: %d durable, %d uncertain paths\n", r.DurableChecked, r.UncertainChecked)
	if r.Fsck != nil {
		fmt.Fprintf(&b, "fsck: %d dirs, %d files, %d problems, %d pending journal records\n",
			r.Fsck.Dirs, r.Fsck.Files, len(r.Fsck.Problems), r.Fsck.PendingJournalRecords)
	}
	if len(r.Corrupted) > 0 && r.Scrub != nil {
		post := 0
		if r.Scrub.Post != nil {
			post = len(r.Scrub.Post.Problems)
		}
		fmt.Fprintf(&b, "integrity: %d object(s) bit-flipped at rest, scrub took %d action(s), %d post-repair problem(s)\n",
			len(r.Corrupted), len(r.Scrub.Actions), post)
	}
	if r.Failed() {
		fmt.Fprintf(&b, "FAILED (replay with seed %d):\n", r.Seed)
		for _, e := range r.Errors {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	} else {
		b.WriteString("PASS\n")
	}
	return b.String()
}

// oracle state per path.
const (
	oMustExist = iota // acknowledged durable: must survive any crash
	oMayExist         // outcome unknown: may exist (with exact content) or not
	oMustNotExist
)

type chaosOracle struct {
	mu    sync.Mutex
	paths map[string]int
	// pairs are uncertain cross-directory renames: after convergence at
	// least one of the two paths must hold the file.
	pairs [][2]string
	// content maps a path to the path whose chaosContent it holds. A rename
	// moves the file, so the destination carries the *source* path's payload.
	content map[string]string
}

func (o *chaosOracle) set(path string, st int) {
	o.mu.Lock()
	o.paths[path] = st
	o.mu.Unlock()
}

func (o *chaosOracle) moved(src, dst string) {
	o.mu.Lock()
	key := src
	if k, ok := o.content[src]; ok {
		key = k
	}
	o.content[dst] = key
	o.mu.Unlock()
}

func (o *chaosOracle) contentKey(path string) string {
	o.mu.Lock()
	defer o.mu.Unlock()
	if k, ok := o.content[path]; ok {
		return k
	}
	return path
}

func (o *chaosOracle) pair(src, dst string) {
	o.mu.Lock()
	o.paths[src] = oMayExist
	o.paths[dst] = oMayExist
	o.pairs = append(o.pairs, [2]string{src, dst})
	o.mu.Unlock()
}

// chaosContent derives a file's expected payload from its path, so the
// verifier needs no side channel.
func chaosContent(path string) []byte {
	h := fnv.New64a()
	_, _ = h.Write([]byte(path))
	sum := h.Sum64()
	n := 256 + int(sum%1536) // 256..1791 bytes, always within one chunk
	buf := make([]byte, n)
	for i := range buf {
		sum = sum*6364136223846793005 + 1442695040888963407
		buf[i] = byte(sum >> 56)
	}
	return buf
}

// slotState is one client slot: a chain of client generations, each a fresh
// process. A crash kills the current generation; the driver spawns the next.
type slotState struct {
	mu    sync.Mutex
	c     *core.Client
	set   *crashpoint.Set
	gen   int
	path  string
	dirIn types.Ino
}

func (s *slotState) client() (*core.Client, *crashpoint.Set) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c, s.set
}

// chaosRun carries the live pieces of one run.
type chaosRun struct {
	cfg     ChaosConfig
	env     *sim.VirtEnv
	rep     *ChaosReport
	cluster *objstore.Cluster
	fault   *objstore.FaultStore
	net     *rpc.Network
	plan    *rpc.FaultPlan
	mgrMu   sync.Mutex
	mgr     *lease.Manager
	leases  *lease.Cluster
	addedMu sync.Mutex
	added   []rpc.Addr // shards added by reshard events, newest last
	reg     *obs.Registry
	slots   []*slotState
	oracle  *chaosOracle
	chunk   int64

	logMu sync.Mutex
	fires *sim.Chan[int] // slot indices whose client just crashed
}

// router mints a fresh per-client ring router in cluster mode (nil for the
// single manager; core then uses the static LeaseMgr address).
func (r *chaosRun) router() lease.Router {
	if r.leases == nil {
		return nil
	}
	return r.leases.Router()
}

func (r *chaosRun) logf(format string, args ...any) {
	r.logMu.Lock()
	r.rep.Log = append(r.rep.Log, fmt.Sprintf("t=%-12v %s", r.env.Now(), fmt.Sprintf(format, args...)))
	r.logMu.Unlock()
}

func (r *chaosRun) errf(format string, args ...any) {
	r.logMu.Lock()
	r.rep.Errors = append(r.rep.Errors, fmt.Sprintf(format, args...))
	r.logMu.Unlock()
}

// RunChaos executes one seeded chaos scenario under a fresh virtual-time
// environment and returns its report. It never panics on invariant
// violations; they are collected in the report's Errors.
func RunChaos(cfg ChaosConfig) *ChaosReport {
	cfg.fill()
	rep := &ChaosReport{Seed: cfg.Seed}
	env := sim.NewVirtEnv()
	env.Run(func() {
		r := &chaosRun{cfg: cfg, env: env, rep: rep,
			oracle: &chaosOracle{paths: map[string]int{}, content: map[string]string{}}, chunk: 4096}
		r.run()
	})
	sort.Strings(rep.Fired)
	return rep
}

func (r *chaosRun) newClient(slot *slotState, idx int) {
	set := crashpoint.NewSet()
	gen := slot.gen
	set.OnFire(func(site crashpoint.Site) {
		r.logMu.Lock()
		r.rep.Fired = append(r.rep.Fired, fmt.Sprintf("s%d/%s", idx, site))
		r.logMu.Unlock()
		r.logf("crash fired: slot %d gen %d at %s", idx, gen, site)
	})
	c := core.New(r.net, prt.New(r.fault, r.chunk), core.Options{
		ID:          fmt.Sprintf("s%d-g%d", idx, gen),
		Cred:        types.Cred{Uid: 1000, Gid: 1000},
		LeaseRouter: r.router(),
		LeasePeriod: r.cfg.LeasePeriod,
		Journal: journal.Config{
			CommitInterval: r.cfg.LeasePeriod / 4,
			CommitWorkers:  2, CheckpointWorkers: 2, CheckpointFanout: 8,
			PipelineDepth: 4,
		},
		Cache: cache.Config{
			EntrySize: r.chunk, MaxEntries: 32,
			FlushParallelism: 4, PrefetchParallelism: 2,
		},
		RPCWorkers:     4,
		AcquireRetries: 64,
		Obs:            r.reg,
		Crash:          set,
		Seed:           r.cfg.Seed*7919 + int64(idx)*1000 + int64(gen) + 1,
	})
	slot.mu.Lock()
	slot.c, slot.set = c, set
	slot.mu.Unlock()
}

func (r *chaosRun) run() {
	cfg := r.cfg
	env := r.env
	lp := cfg.LeasePeriod

	// --- Deployment: cluster, fault layers, lease manager, client slots.
	prof := objstore.TestProfile() // real payloads, so read-back verifies content
	r.cluster = objstore.NewCluster(env, prof)
	defer r.cluster.Close()
	if err := core.Format(prt.New(r.cluster, r.chunk)); err != nil {
		r.errf("format: %v", err)
		return
	}
	r.fault = objstore.NewFaultStore(r.cluster)
	r.reg = obs.NewRegistry()
	r.net = rpc.NewNetwork(env, sim.NetModel{Latency: 20 * time.Microsecond, Bandwidth: 1 << 30})
	r.net.SetObs(r.reg)
	r.plan = rpc.NewFaultPlan(env, cfg.Seed+1)
	r.plan.SetTimeout(lp / 16)
	r.net.SetFaultPlan(r.plan)
	if cfg.LeaseShards > 1 {
		// Elastic cluster mode: rendezvous ring over the shards, grant
		// tables persisted to the raw cluster (control-plane writes bypass
		// the scripted data-path faults; failover realism comes from the
		// shard kill/restart events).
		r.leases = lease.NewCluster(r.net, lease.ClusterOptions{
			Shards:  cfg.LeaseShards,
			Store:   r.cluster,
			Manager: lease.Options{Period: lp, Workers: 8, Obs: r.reg},
		})
	} else {
		r.mgr = lease.NewManager(r.net, lease.Options{Period: lp, Workers: 8, Obs: r.reg})
	}
	r.fires = sim.NewChan[int](env)

	// --- Setup phase: the working directories exist and are durable before
	// any fault fires; the root directory is never mutated again, so chaos
	// cannot lose a working directory itself.
	setup := core.New(r.net, prt.New(r.cluster, r.chunk), core.Options{
		ID: "setup", Cred: types.Cred{Uid: 1000, Gid: 1000}, LeaseRouter: r.router(), LeasePeriod: lp,
		Journal: journal.Config{CommitInterval: lp / 4, CommitWorkers: 2, CheckpointWorkers: 2},
	})
	r.slots = make([]*slotState, cfg.Slots)
	for i := range r.slots {
		s := &slotState{path: fmt.Sprintf("/w%d", i)}
		if err := setup.Mkdir(context.Background(), s.path, 0777); err != nil {
			r.errf("setup mkdir %s: %v", s.path, err)
			return
		}
		node, err := setup.Stat(context.Background(), s.path)
		if err != nil {
			r.errf("setup stat %s: %v", s.path, err)
			return
		}
		s.dirIn = node.Ino
		r.slots[i] = s
	}
	if err := setup.Close(); err != nil {
		r.errf("setup close: %v", err)
		return
	}
	for i, s := range r.slots {
		r.newClient(s, i)
	}

	// --- Precompute the fault script. Every random choice is drawn here,
	// before the first event can fire, in a fixed order: the schedule is a
	// pure function of the seed. Event times are relative to base (the end of
	// the setup phase, itself deterministic under the virtual clock).
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := env.Now()
	stepGap := lp / 8
	scriptStart := 2 * lp
	scriptEnd := scriptStart + time.Duration(cfg.Rounds*cfg.FilesPerRound)*stepGap
	window := scriptEnd - scriptStart
	at := func() time.Duration { return scriptStart + time.Duration(rng.Int63n(int64(window))) }
	addEvent := func(t time.Duration, what string, fire func()) {
		r.rep.Script = append(r.rep.Script, ChaosEvent{At: t, What: what})
		if fire != nil {
			env.After(t, fire) // scheduled at base, so this fires at base+t
		}
	}

	crashSites := []crashpoint.Site{
		crashpoint.PreJournalPut, crashpoint.PostJournalPut,
		crashpoint.MidCheckpoint, crashpoint.PostCheckpoint,
		crashpoint.TwoPCPostPrepare, crashpoint.TwoPCPostDecision,
	}
	for i := 0; i < cfg.Crashes; i++ {
		t := at()
		slot := rng.Intn(cfg.Slots)
		site := crashSites[rng.Intn(len(crashSites))]
		addEvent(t, fmt.Sprintf("arm-crash slot=%d site=%s", slot, site), func() {
			s := r.slots[slot]
			c, set := s.client()
			set.Arm(site, func() {
				c.Crash()
				r.fires.Send(slot)
			})
			r.logf("armed crash at %s on slot %d gen %d", site, slot, s.gen)
		})
	}
	for i := 0; i < cfg.Partitions; i++ {
		t := at()
		dur := lp/2 + time.Duration(rng.Int63n(int64(2*lp)))
		// One-way wildcard partition: nobody reaches the lease manager (or,
		// sharded, one ring member), so extends and acquires time out until
		// the heal.
		target := rpc.Addr("leasemgr")
		if r.leases != nil {
			members := r.leases.Ring().Members
			target = members[rng.Intn(len(members))]
		} else {
			target = r.mgr.Addr()
		}
		r.plan.PartitionFor(nil, []rpc.Addr{target}, base+t, base+t+dur)
		addEvent(t, fmt.Sprintf("partition *->%s for %v", target, dur), nil)
		addEvent(t+dur, fmt.Sprintf("heal *->%s", target), nil)
	}
	for i := 0; i < cfg.DropWindows; i++ {
		t := at()
		dur := lp/2 + time.Duration(rng.Int63n(int64(lp)))
		prob := 0.02 + rng.Float64()*0.08
		addEvent(t, fmt.Sprintf("drop-on p=%.3f", prob), func() { r.plan.SetDrop(prob) })
		addEvent(t+dur, "drop-off", func() { r.plan.SetDrop(0) })
	}
	for i := 0; i < cfg.FlakyFlips; i++ {
		t := at()
		dur := lp/2 + time.Duration(rng.Int63n(int64(lp)))
		prob := 0.01 + rng.Float64()*0.04
		seed := rng.Int63()
		addEvent(t, fmt.Sprintf("flaky-on p=%.3f", prob), func() { r.fault.SetFlaky(prob, seed) })
		addEvent(t+dur, "flaky-off", func() { r.fault.SetFlaky(0, 0) })
	}
	for i := 0; i < cfg.CorruptWindows; i++ {
		t := at()
		dur := lp/2 + time.Duration(rng.Int63n(int64(lp)))
		// Kept low: every verify-on-read path re-reads once before reacting
		// destructively, so only a double flip on the same object can do harm.
		prob := 0.005 + rng.Float64()*0.015
		seed := rng.Int63()
		addEvent(t, fmt.Sprintf("corrupt-reads-on p=%.3f", prob), func() { r.fault.SetCorruptReads("", prob, seed) })
		addEvent(t+dur, "corrupt-reads-off", func() { r.fault.SetCorruptReads("", 0, 0) })
	}
	var mgrDownUntil time.Duration
	if r.leases == nil {
		for i := 0; i < cfg.MgrRestarts; i++ {
			t := at()
			down := lp / 2
			if t+down > mgrDownUntil {
				mgrDownUntil = t + down
			}
			addEvent(t, "mgr-stop", func() {
				r.mgrMu.Lock()
				r.mgr.Close()
				r.mgrMu.Unlock()
			})
			addEvent(t+down, "mgr-restart (quiesce)", func() {
				r.mgrMu.Lock()
				r.mgr = lease.NewManager(r.net, lease.Options{Period: lp, Workers: 8, Restarted: true, Obs: r.reg})
				r.mgrMu.Unlock()
			})
		}
	} else {
		// Shard failover: kill a ring member mid-workload and replace it
		// half a period later. With the persisted grant table the
		// replacement resumes granting; its territory must not pay the full
		// restart-amnesia grace.
		initial := r.leases.Ring().Members
		for i := 0; i < cfg.ShardRestarts; i++ {
			t := at()
			down := lp / 2
			victim := initial[rng.Intn(len(initial))]
			if t+down > mgrDownUntil {
				mgrDownUntil = t + down
			}
			addEvent(t, fmt.Sprintf("shard-stop %s", victim), func() {
				if err := r.leases.KillShard(victim); err != nil {
					r.logf("shard-stop %s: %v", victim, err)
				}
			})
			addEvent(t+down, fmt.Sprintf("shard-restart %s (resume)", victim), func() {
				if err := r.leases.RestartShard(victim); err != nil {
					r.logf("shard-restart %s: %v", victim, err)
				}
			})
		}
		// Runtime resharding: grow the ring mid-workload (handing live
		// grants to the new shard), and shrink it back by removing the most
		// recently added shard (tombstoning it). A remove scheduled before
		// any add has landed is a no-op.
		for i := 0; i < cfg.Reshards; i++ {
			t := at()
			if i%2 == 0 {
				addEvent(t, "lease-addshard", func() {
					addr, err := r.leases.AddShard()
					if err != nil {
						r.logf("addshard: %v", err)
						return
					}
					r.addedMu.Lock()
					r.added = append(r.added, addr)
					r.addedMu.Unlock()
					r.logf("addshard %s, ring now %s", addr, r.leases.Ring())
				})
			} else {
				addEvent(t, "lease-removeshard", func() {
					r.addedMu.Lock()
					if len(r.added) == 0 {
						r.addedMu.Unlock()
						r.logf("removeshard: nothing added yet, skipping")
						return
					}
					victim := r.added[len(r.added)-1]
					r.added = r.added[:len(r.added)-1]
					r.addedMu.Unlock()
					if err := r.leases.RemoveShard(victim); err != nil {
						r.logf("removeshard %s: %v", victim, err)
						return
					}
					r.logf("removeshard %s, ring now %s", victim, r.leases.Ring())
				})
			}
		}
	}
	sort.Slice(r.rep.Script, func(i, j int) bool {
		if r.rep.Script[i].At != r.rep.Script[j].At {
			return r.rep.Script[i].At < r.rep.Script[j].At
		}
		return r.rep.Script[i].What < r.rep.Script[j].What
	})

	// --- Crash respawner: each kill is followed by the next generation of
	// that slot, a cold process that re-discovers everything.
	respawn := sim.NewGroup(env)
	respawn.Go(func() {
		for {
			slot, ok := r.fires.Recv()
			if !ok {
				return
			}
			s := r.slots[slot]
			s.mu.Lock()
			s.gen++
			s.mu.Unlock()
			r.newClient(s, slot)
			r.logf("respawned slot %d as gen %d", slot, s.gen)
		}
	})

	// --- Workload: every slot runs rounds of creates (plus deletes and
	// cross-directory renames), pacing itself on the virtual clock. Ops talk
	// to whatever generation currently owns the slot.
	wg := sim.NewGroup(env)
	for i := range r.slots {
		idx := i
		wrng := rand.New(rand.NewSource(cfg.Seed*31 + int64(idx)))
		wg.Go(func() { r.workload(idx, wrng, stepGap) })
	}
	wg.Wait()

	// --- Drain: let the script window lapse, lift every fault, stop the
	// survivors, and wait out lease grace so crashed directories become
	// recoverable.
	if now, until := env.Now(), base+mgrDownUntil; now < until {
		env.Sleep(until - now)
	}
	if now, until := env.Now(), base+scriptEnd; now < until {
		env.Sleep(until - now)
	}
	for _, s := range r.slots {
		_, set := s.client()
		for _, site := range crashSites {
			set.Disarm(site)
		}
	}
	r.fires.Close()
	respawn.Wait()
	r.plan.HealAll()
	r.plan.SetDrop(0)
	r.fault.SetFlaky(0, 0)
	r.fault.SetCorruptReads("", 0, 0)
	r.logf("drain: faults healed, closing survivors")
	for i, s := range r.slots {
		c, set := s.client()
		if set.Killed() {
			continue
		}
		if err := c.Close(); err != nil {
			// An unclean close: the manager re-gates the slot's directories
			// behind recovery; the verifier's walk will trigger it.
			r.logf("slot %d closed unclean: %v", i, err)
		}
	}
	env.Sleep(3 * cfg.LeasePeriod) // expiry + recovery grace for lapsed leases

	r.verify()
	r.integrityEpilogue()
	r.rep.HandoffMoved = r.reg.Counter("lease.handoff.moved").Value()
	r.rep.HandoffLost = r.reg.Counter("lease.handoff.lost").Value()
	r.rep.Metrics = r.reg.Snapshot().Fingerprint()
}

// workload runs one slot's rounds.
func (r *chaosRun) workload(idx int, rng *rand.Rand, stepGap time.Duration) {
	cfg := r.cfg
	s := r.slots[idx]
	var durable []string // own durable files, fodder for deletes and renames
	for round := 0; round < cfg.Rounds; round++ {
		for f := 0; f < cfg.FilesPerRound; f++ {
			r.env.Sleep(stepGap)
			// Mostly work in the slot's own directory; every few files hit a
			// neighbour's directory to exercise forwarding under faults.
			target := s
			cross := cfg.Slots > 1 && rng.Intn(4) == 0
			if cross {
				target = r.slots[(idx+1+rng.Intn(cfg.Slots-1))%cfg.Slots]
			}
			path := fmt.Sprintf("%s/s%d-r%02d-f%02d", target.path, idx, round, f)
			if r.createFile(s, path, target.dirIn) && !cross {
				durable = append(durable, path)
			}

			switch {
			case len(durable) > 2 && rng.Intn(6) == 0:
				// Delete an old durable file.
				victim := durable[0]
				durable = durable[1:]
				r.deleteFile(s, victim)
			case cfg.Slots > 1 && len(durable) > 2 && rng.Intn(6) == 0:
				// Cross-directory rename of a durable file (2PC).
				victim := durable[0]
				durable = durable[1:]
				other := r.slots[(idx+1+rng.Intn(cfg.Slots-1))%cfg.Slots]
				dst := fmt.Sprintf("%s/mv-s%d-r%02d-f%02d", other.path, idx, round, f)
				r.renameFile(s, victim, dst)
			}
		}
	}
}

// createFile creates path through the slot's current client and reports
// whether the oracle recorded it as durable.
func (r *chaosRun) createFile(s *slotState, path string, dirIn types.Ino) bool {
	c, _ := s.client()
	f, err := c.Create(context.Background(), path, 0644)
	if err != nil {
		r.oracle.set(path, oMayExist)
		return false
	}
	if r.cfg.DataWrites {
		if _, err := f.Write(chaosContent(path)); err != nil {
			_ = f.Close()
			r.oracle.set(path, oMayExist)
			return false
		}
		if err := f.Fsync(context.Background()); err != nil {
			_ = f.Close()
			r.oracle.set(path, oMayExist)
			return false
		}
	}
	if err := f.Close(); err != nil {
		r.oracle.set(path, oMayExist)
		return false
	}
	// Fsync flushes the parent's journal only if this client leads it; a
	// remote leader's ack promises nothing durable yet.
	if err := c.Fsync(context.Background(), path); err != nil || !c.Leads(dirIn) {
		r.oracle.set(path, oMayExist)
		return false
	}
	r.oracle.set(path, oMustExist)
	return true
}

func (r *chaosRun) deleteFile(s *slotState, path string) {
	c, _ := s.client()
	if err := c.Unlink(context.Background(), path); err != nil {
		r.oracle.set(path, oMayExist)
		return
	}
	if err := c.Fsync(context.Background(), path); err != nil || !c.Leads(s.dirIn) {
		r.oracle.set(path, oMayExist)
		return
	}
	r.oracle.set(path, oMustNotExist)
}

func (r *chaosRun) renameFile(s *slotState, src, dst string) {
	c, _ := s.client()
	r.oracle.moved(src, dst) // wherever the file lands, it carries src's payload
	err := c.Rename(context.Background(), src, dst)
	r.logf("rename %s -> %s: %v", src, dst, err)
	if err != nil {
		// Undecided (or aborted): after convergence exactly one side holds
		// the file; the oracle asserts at least one.
		r.oracle.pair(src, dst)
		return
	}
	// A cross-directory rename acknowledges only after its 2PC decision
	// record is durable, so a nil error is a durability barrier by itself.
	r.oracle.set(src, oMustNotExist)
	r.oracle.set(dst, oMustExist)
}

// toleratedLeaks are the fsck problem classes a kill can legitimately leave
// behind: a crash between the object puts of one logical operation leaks
// unreachable objects (an inode whose dentry-add record was never durable,
// chunks whose metadata flush never happened) — space for a GC pass, not
// corruption. Everything outside this set — dangling dentries, torn records,
// structural damage — fails the run.
var toleratedLeaks = map[string]bool{
	"orphan-inode": true, "orphan-dentries": true,
	"dangling-chunks": true, "orphan-chunks": true,
	"chunk-beyond-eof": true, "orphan-journal": true,
}

// verify walks the namespace with a fresh client (forcing journal recovery of
// every crashed directory), checks the oracle, and runs fsck.
func (r *chaosRun) verify() {
	v := core.New(r.net, prt.New(r.fault, r.chunk), core.Options{
		ID: "verify", Cred: types.Cred{Uid: 1000, Gid: 1000}, LeaseRouter: r.router(), LeasePeriod: r.cfg.LeasePeriod,
		Journal:        journal.Config{CommitInterval: r.cfg.LeasePeriod / 4, CommitWorkers: 2, CheckpointWorkers: 2},
		AcquireRetries: 64,
		Seed:           r.cfg.Seed*7919 + 999983,
	})
	// Force recovery of every working directory up front; retries ride out
	// residual lease grace.
	for _, s := range r.slots {
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if _, err = v.Readdir(context.Background(), s.path); err == nil {
				break
			}
			r.env.Sleep(r.cfg.LeasePeriod / 2)
		}
		if err != nil {
			r.errf("verifier cannot list %s: %v", s.path, err)
		}
	}

	r.oracle.mu.Lock()
	paths := make([]string, 0, len(r.oracle.paths))
	for p := range r.oracle.paths {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pairs := append([][2]string(nil), r.oracle.pairs...)
	states := make(map[string]int, len(paths))
	for p, st := range r.oracle.paths {
		states[p] = st
	}
	r.oracle.mu.Unlock()

	exists := func(p string) (bool, error) {
		_, err := v.Stat(context.Background(), p)
		if err == nil {
			return true, nil
		}
		if errors.Is(err, types.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	for _, p := range paths {
		ok, err := exists(p)
		if err != nil {
			r.errf("verify stat %s: %v", p, err)
			continue
		}
		switch states[p] {
		case oMustExist:
			r.rep.DurableChecked++
			if !ok {
				r.errf("lost acknowledged op: %s was durable but is gone", p)
				continue
			}
			if r.cfg.DataWrites {
				r.checkContent(v, p)
			}
		case oMustNotExist:
			r.rep.DurableChecked++
			if ok {
				r.errf("resurrected: %s was durably removed but exists", p)
			}
		default:
			r.rep.UncertainChecked++
		}
	}
	for _, pr := range pairs {
		srcOK, err1 := exists(pr[0])
		dstOK, err2 := exists(pr[1])
		if err1 != nil || err2 != nil {
			continue // already reported above
		}
		if !srcOK && !dstOK {
			r.errf("rename lost both sides: %s -> %s", pr[0], pr[1])
		}
	}
	if err := v.Close(); err != nil {
		r.errf("verifier close: %v", err)
	}
	r.env.Sleep(r.cfg.LeasePeriod / 4) // let released leases settle

	rep, err := fsck.Check(r.cluster)
	if err != nil {
		r.errf("fsck: %v", err)
		return
	}
	r.rep.Fsck = rep
	for _, p := range rep.Problems {
		if toleratedLeaks[p.Kind] {
			r.logf("fsck leak (tolerated): %s", p)
			continue
		}
		r.errf("fsck: %s", p)
	}
}

// checkContent reads p back through v and compares against the oracle.
func (r *chaosRun) checkContent(v *core.Client, p string) {
	want := chaosContent(r.oracle.contentKey(p))
	f, err := v.Open(context.Background(), p, types.ORdonly, 0)
	if err != nil {
		r.errf("verify open %s: %v", p, err)
		return
	}
	defer func() { _ = f.Close() }()
	if f.Size() != int64(len(want)) {
		r.errf("verify %s: size %d, want %d", p, f.Size(), len(want))
		return
	}
	got := make([]byte, len(want))
	n, err := f.ReadAt(got, 0)
	if err != nil || n != len(want) {
		r.errf("verify read %s: n=%d err=%v", p, n, err)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			r.errf("verify %s: content mismatch at byte %d", p, i)
			return
		}
	}
}

// integrityEpilogue is the at-rest corruption drill, run after the oracle
// verification so it cannot disturb those checks: flip one byte in
// CorruptObjects live objects chosen deterministically from the converged
// image, then demand the scrubber detect and act on every one, and that the
// repaired image re-checks clean modulo the tolerated leak classes.
func (r *chaosRun) integrityEpilogue() {
	if r.cfg.CorruptObjects <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed*104729 + 11))
	// Data chunks, dentry blocks, and journal records: every class the
	// scrubber repairs or quarantines without leaving structural damage.
	// Inode objects are excluded — quarantining one whose journaled copy was
	// checkpointed away leaves a dangling dentry, which is corruption-class.
	// The superblock is excluded because its rewrite assumes the default
	// chunk size and chaos runs format with a smaller one.
	var candidates []string
	for _, prefix := range []string{prt.PrefixData, prt.PrefixDentry, prt.PrefixJournal} {
		keys, err := r.cluster.List(prefix)
		if err != nil {
			r.errf("epilogue list %s: %v", prefix, err)
			return
		}
		candidates = append(candidates, keys...)
	}
	sort.Strings(candidates)
	if len(candidates) == 0 {
		return
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	n := r.cfg.CorruptObjects
	if n > len(candidates) {
		n = len(candidates)
	}
	picked := append([]string(nil), candidates[:n]...)
	sort.Strings(picked)
	for _, k := range picked {
		raw, err := r.cluster.Get(k)
		if err != nil {
			r.errf("epilogue read %s: %v", k, err)
			return
		}
		if len(raw) == 0 {
			continue
		}
		cp := append([]byte(nil), raw...)
		cp[rng.Intn(len(cp))] ^= 0x20
		if err := r.cluster.Put(k, cp); err != nil {
			r.errf("epilogue corrupt %s: %v", k, err)
			return
		}
		r.rep.Corrupted = append(r.rep.Corrupted, k)
		r.logf("epilogue: flipped one bit at rest in %s", k)
	}

	scrub, err := fsck.Scrub(r.cluster, true)
	r.rep.Scrub = scrub
	if err != nil {
		r.errf("epilogue scrub: %v", err)
		return
	}
	acted := map[string]bool{}
	for _, a := range scrub.Actions {
		acted[a.Key] = true
	}
	for _, k := range r.rep.Corrupted {
		if !acted[k] {
			r.errf("epilogue: scrub neither repaired nor quarantined corrupted object %s", k)
		}
	}
	if scrub.Post == nil {
		r.errf("epilogue: repair run produced no post-check")
		return
	}
	for _, p := range scrub.Post.Problems {
		if toleratedLeaks[p.Kind] {
			r.logf("epilogue fsck leak (tolerated): %s", p)
			continue
		}
		r.errf("epilogue post-repair fsck: %s", p)
	}
}
