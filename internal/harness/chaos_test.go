package harness

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"arkfs/internal/core"
	"arkfs/internal/crashpoint"
	"arkfs/internal/fsck"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// chaosSeeds returns the seed matrix: CHAOS_SEEDS (comma-separated) when set
// (the CI chaos job sweeps it), else a small default.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	raw := os.Getenv("CHAOS_SEEDS")
	if raw == "" {
		return []int64{1, 7, 42}
	}
	var seeds []int64
	for _, part := range strings.Split(raw, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestChaosMetadataSeeds: randomized metadata-only chaos across the seed
// matrix. Every acknowledged-durable op must survive, and fsck must find no
// corruption (kills legitimately leak unreachable objects; that residue is
// tolerated, dangling dentries and structural damage are not).
func TestChaosMetadataSeeds(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		rep := RunChaos(ChaosConfig{Seed: seed})
		if rep.Failed() {
			t.Errorf("seed %d failed:\n%s", seed, rep.Summary())
		}
		if rep.DurableChecked == 0 {
			t.Errorf("seed %d: no durable ops verified — workload too weak:\n%s", seed, rep.Summary())
		}
	}
}

// TestChaosDataWrites: chaos with file contents in play. Durable files must
// read back byte-exact — including files that moved in a cross-directory
// rename, which carry their source path's payload.
func TestChaosDataWrites(t *testing.T) {
	rep := RunChaos(ChaosConfig{Seed: 11, DataWrites: true})
	if rep.Failed() {
		t.Fatalf("data chaos failed:\n%s", rep.Summary())
	}
	if rep.DurableChecked == 0 {
		t.Fatalf("no durable ops verified:\n%s", rep.Summary())
	}
}

// TestChaosSameSeedSameFingerprint: replaying a seed reproduces the identical
// event sequence — the property that makes chaos failures debuggable.
func TestChaosSameSeedSameFingerprint(t *testing.T) {
	if raceEnabled {
		t.Skip("fingerprints are seed-deterministic only without race instrumentation")
	}
	cfg := ChaosConfig{Seed: 1234}
	a := RunChaos(cfg)
	b := RunChaos(cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged:\nrun A:\n%s\nrun B:\n%s", a.Fingerprint(), b.Fingerprint())
	}
	if a.Failed() || b.Failed() {
		t.Fatalf("replayed runs failed:\nA: %v\nB: %v", a.Errors, b.Errors)
	}
}

// TestChaosResharding: elastic-cluster chaos. The lease ring starts with
// multiple shards and the script grows it mid-workload (AddShard → grant-table
// handoff to the new member), shrinks it again (RemoveShard → tombstone), and
// kills/restarts a shard that resumes from its persisted grant table. The
// acknowledged-durable contract must hold across all of it, live grants must
// actually move (HandoffMoved > 0 — moved directories skip the crash-grace
// stall), no grant state may be abandoned to the grace path (HandoffLost == 0),
// and a same-seed replay must reproduce the identical fingerprint.
func TestChaosResharding(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, LeaseShards: 3, DataWrites: true}
	a := RunChaos(cfg)
	if a.Failed() {
		t.Fatalf("resharding chaos failed:\n%s", a.Summary())
	}
	if a.DurableChecked == 0 {
		t.Fatalf("no durable ops verified:\n%s", a.Summary())
	}
	if a.HandoffMoved == 0 {
		t.Fatalf("reshard moved no live grants — scenario too weak:\n%s", a.Summary())
	}
	if a.HandoffLost != 0 {
		t.Fatalf("%d grant batch(es) abandoned to the grace path:\n%s", a.HandoffLost, a.Summary())
	}
	if raceEnabled {
		// Race instrumentation perturbs fault-window timing; the safety
		// invariants above still hold, only replay equality is skipped.
		return
	}
	b := RunChaos(cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed diverged:\nrun A:\n%s\nrun B:\n%s", a.Fingerprint(), b.Fingerprint())
	}
}

// TestChaosDirectedLeaderCrashDuringPartition is the issue's acceptance
// scenario, scripted exactly: a directory leader is killed at
// post-journal-put — its last transaction durable but not checkpointed —
// while the whole network is partitioned from the lease manager. After the
// heal, a successor must recover the directory, the acknowledged transaction
// must be visible, and fsck must be clean.
func TestChaosDirectedLeaderCrashDuringPartition(t *testing.T) {
	const lp = 200 * time.Millisecond
	env := sim.NewVirtEnv()
	env.Run(func() {
		cluster := objstore.NewCluster(env, objstore.TestProfile())
		defer cluster.Close()
		if err := core.Format(prt.New(cluster, 4096)); err != nil {
			t.Fatal(err)
		}
		net := rpc.NewNetwork(env, sim.NetModel{Latency: 20 * time.Microsecond, Bandwidth: 1 << 30})
		plan := rpc.NewFaultPlan(env, 1)
		plan.SetTimeout(lp / 16)
		net.SetFaultPlan(plan)
		mgr := lease.NewManager(net, lease.Options{Period: lp, Workers: 8})
		defer mgr.Close()

		jcfg := journal.Config{CommitInterval: lp / 4, CommitWorkers: 2, CheckpointWorkers: 2}
		set := crashpoint.NewSet()
		leader := core.New(net, prt.New(cluster, 4096), core.Options{
			ID: "leader", Cred: types.Cred{Uid: 1, Gid: 1}, LeasePeriod: lp,
			Journal: jcfg, Crash: set, AcquireRetries: 64,
		})
		if err := leader.Mkdir(context.Background(), "/work", 0777); err != nil {
			t.Fatal(err)
		}
		if f, err := leader.Create(context.Background(), "/work/pre", 0644); err != nil {
			t.Fatal(err)
		} else if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		// Make the setup durable everywhere (the mkdir lives in the *root*
		// journal) before any fault is injected.
		if err := leader.FlushAll(context.Background()); err != nil {
			t.Fatal(err)
		}

		// Cut everyone off from the lease manager, then kill the leader the
		// moment its next journal record is durable (before its checkpoint).
		part := plan.Partition(nil, []rpc.Addr{mgr.Addr()})
		set.Arm(crashpoint.PostJournalPut, leader.Crash)
		if f, err := leader.Create(context.Background(), "/work/x", 0644); err != nil {
			t.Fatal(err)
		} else if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		err := leader.Fsync(context.Background(), "/work/x") // forces the commit; the PUT fires the kill
		fired := set.Fired()
		if len(fired) != 1 || fired[0] != crashpoint.PostJournalPut {
			t.Fatalf("crash site did not fire as scripted: %v (fsync err %v)", fired, err)
		}
		if !set.Killed() {
			t.Fatal("leader not killed")
		}

		// Heal only after the dead leader's lease has lapsed.
		env.Sleep(2 * lp)
		part.Heal()
		env.Sleep(2 * lp) // recovery grace: expiry + one period

		successor := core.New(net, prt.New(cluster, 4096), core.Options{
			ID: "successor", Cred: types.Cred{Uid: 1, Gid: 1}, LeasePeriod: lp,
			Journal: jcfg, AcquireRetries: 64,
		})
		var entries int
		for attempt := 0; attempt < 20; attempt++ {
			des, err := successor.Readdir(context.Background(), "/work")
			if err == nil {
				entries = len(des)
				break
			}
			env.Sleep(lp / 2)
		}
		if entries != 2 {
			t.Fatalf("successor sees %d entries in /work, want 2 (pre + x)", entries)
		}
		// Zero lost acknowledged ops: the durable record was replayed.
		if _, err := successor.Stat(context.Background(), "/work/x"); err != nil {
			t.Fatalf("acknowledged /work/x lost after recovery: %v", err)
		}
		if _, err := successor.Stat(context.Background(), "/work/pre"); err != nil {
			t.Fatalf("/work/pre lost: %v", err)
		}
		if err := successor.Close(); err != nil {
			t.Fatalf("successor close: %v", err)
		}

		rep, err := fsck.Check(cluster)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck not clean after recovery: %v", rep.Problems)
		}
	})
}

// TestChaosDirectedAsyncCommitCrash scripts the async commit pipeline's
// acknowledged-durable contract: a leader acknowledges a burst of creates
// spread over several commit ticks (multiple records in flight at once),
// fsyncs them, then dies the instant a later record lands — before any of
// its checkpoints. The successor's replay must surface every fsync'd file,
// and the run must be deterministic under the virtual clock: two identical
// runs fire the same crash site and recover the same directory listing.
func TestChaosDirectedAsyncCommitCrash(t *testing.T) {
	const lp = 200 * time.Millisecond
	run := func() (names []string, fired []crashpoint.Site) {
		env := sim.NewVirtEnv()
		env.Run(func() {
			cluster := objstore.NewCluster(env, objstore.TestProfile())
			defer cluster.Close()
			if err := core.Format(prt.New(cluster, 4096)); err != nil {
				t.Fatal(err)
			}
			net := rpc.NewNetwork(env, sim.NetModel{Latency: 20 * time.Microsecond, Bandwidth: 1 << 30})
			mgr := lease.NewManager(net, lease.Options{Period: lp, Workers: 8})
			defer mgr.Close()

			// A short interval and a deep window keep several journal PUTs of
			// the same directory in flight at once.
			jcfg := journal.Config{CommitInterval: lp / 16, CommitWorkers: 8,
				CheckpointWorkers: 4, PipelineDepth: 8}
			set := crashpoint.NewSet()
			leader := core.New(net, prt.New(cluster, 4096), core.Options{
				ID: "leader", Cred: types.Cred{Uid: 1, Gid: 1}, LeasePeriod: lp,
				Journal: jcfg, Crash: set, AcquireRetries: 64,
			})
			if err := leader.Mkdir(context.Background(), "/work", 0777); err != nil {
				t.Fatal(err)
			}
			if err := leader.FlushAll(context.Background()); err != nil {
				t.Fatal(err)
			}

			// Acknowledge a burst across commit ticks, then fsync: every one
			// of these is now promised to survive any crash.
			for i := 0; i < 8; i++ {
				f, err := leader.Create(context.Background(), fmt.Sprintf("/work/b%d", i), 0644)
				if err != nil {
					t.Fatal(err)
				}
				_ = f.Close()
				env.Sleep(lp / 8) // let the group-commit tick seal this record
			}
			if err := leader.Fsync(context.Background(), "/work/b0"); err != nil {
				t.Fatal(err)
			}

			// One more acknowledged create; the leader dies the moment its
			// record is durable, checkpoints still pending.
			f, err := leader.Create(context.Background(), "/work/tail", 0644)
			if err != nil {
				t.Fatal(err)
			}
			_ = f.Close()
			set.Arm(crashpoint.PostJournalPut, leader.Crash)
			_ = leader.Fsync(context.Background(), "/work/tail")
			fired = set.Fired()
			if !set.Killed() {
				t.Fatal("leader not killed")
			}

			env.Sleep(4 * lp) // lease lapse + recovery grace

			successor := core.New(net, prt.New(cluster, 4096), core.Options{
				ID: "successor", Cred: types.Cred{Uid: 1, Gid: 1}, LeasePeriod: lp,
				Journal: jcfg, AcquireRetries: 64,
			})
			var des []wire.Dentry
			for attempt := 0; attempt < 20; attempt++ {
				des, err = successor.Readdir(context.Background(), "/work")
				if err == nil {
					break
				}
				env.Sleep(lp / 2)
			}
			if err != nil {
				t.Fatalf("successor never served /work: %v", err)
			}
			for _, de := range des {
				names = append(names, de.Name)
			}
			sort.Strings(names)

			// The fsync'd burst is non-negotiable; tail's record was durable
			// when the crash fired, so replay must surface it too.
			want := map[string]bool{"tail": true}
			for i := 0; i < 8; i++ {
				want[fmt.Sprintf("b%d", i)] = true
			}
			got := map[string]bool{}
			for _, n := range names {
				got[n] = true
			}
			for n := range want {
				if !got[n] {
					t.Fatalf("acknowledged-durable /work/%s lost after recovery (have %v)", n, names)
				}
			}
			if err := successor.Close(); err != nil {
				t.Fatalf("successor close: %v", err)
			}
			rep, err := fsck.Check(cluster)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("fsck not clean after recovery: %v", rep.Problems)
			}
		})
		return names, fired
	}

	namesA, firedA := run()
	namesB, firedB := run()
	if fmt.Sprint(namesA) != fmt.Sprint(namesB) || fmt.Sprint(firedA) != fmt.Sprint(firedB) {
		t.Fatalf("same-seed replay diverged:\nA: %v %v\nB: %v %v", namesA, firedA, namesB, firedB)
	}
	if len(firedA) != 1 || firedA[0] != crashpoint.PostJournalPut {
		t.Fatalf("crash site did not fire as scripted: %v", firedA)
	}
}
