package harness

import (
	"strings"
	"testing"
)

// quickRunner runs experiments at smoke-test scale.
func quickRunner() *Runner {
	r := NewRunner()
	r.Scale = QuickScale()
	return r
}

// cell fetches a value or fails the test.
func cell(t *testing.T, e *Experiment, system, metric string) float64 {
	t.Helper()
	c, ok := e.Value(system, metric)
	if !ok {
		t.Fatalf("%s: missing cell %s/%s", e.ID, system, metric)
	}
	if c.Failed {
		t.Fatalf("%s: cell %s/%s failed", e.ID, system, metric)
	}
	return c.Value
}

func TestFig4Shapes(t *testing.T) {
	exp, err := quickRunner().Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"CREATE", "STAT", "DELETE"} {
		ark := cell(t, exp, "ArkFS", phase)
		k1 := cell(t, exp, "CephFS-K (1 MDS)", phase)
		f := cell(t, exp, "CephFS-F", phase)
		marfs := cell(t, exp, "MarFS", phase)
		if ark <= k1 {
			t.Errorf("%s: ArkFS (%f) must beat CephFS-K (%f)", phase, ark, k1)
		}
		if k1 <= f {
			t.Errorf("%s: CephFS-K (%f) must beat CephFS-F (%f)", phase, k1, f)
		}
		if f < marfs*0.8 {
			t.Errorf("%s: MarFS (%f) should not beat CephFS-F (%f) by much", phase, marfs, f)
		}
	}
	// The paper's headline: a large ArkFS advantage on metadata phases.
	if ratio := cell(t, exp, "ArkFS", "CREATE") / cell(t, exp, "CephFS-K (1 MDS)", "CREATE"); ratio < 3 {
		t.Errorf("ArkFS/CephFS-K CREATE ratio = %.1f, want >= 3", ratio)
	}
}

func TestFig5Shapes(t *testing.T) {
	exp, err := quickRunner().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// ArkFS leads every phase, by a reduced margin in the shared-dir WRITE.
	for _, phase := range []string{"WRITE", "STAT", "DELETE"} {
		ark := cell(t, exp, "ArkFS", phase)
		k1 := cell(t, exp, "CephFS-K (1 MDS)", phase)
		if ark <= k1 {
			t.Errorf("%s: ArkFS (%f) must beat CephFS-K (%f)", phase, ark, k1)
		}
	}
	// MarFS READ is reported as failed, as in the paper's environment.
	c, ok := exp.Value("MarFS", "READ")
	if !ok || !c.Failed {
		t.Errorf("MarFS READ should be marked failed: %+v", c)
	}
}

func TestFig6aShapes(t *testing.T) {
	exp, err := quickRunner().Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	arkW := cell(t, exp, "ArkFS", "WRITE")
	kW := cell(t, exp, "CephFS-K", "WRITE")
	arkR := cell(t, exp, "ArkFS", "READ")
	kR := cell(t, exp, "CephFS-K", "READ")
	fR := cell(t, exp, "CephFS-F", "READ")
	// WRITE within ~35% of each other (the paper: "little differences").
	if ratio := arkW / kW; ratio < 0.65 || ratio > 1.55 {
		t.Errorf("WRITE ArkFS/CephFS-K = %.2f, want near 1", ratio)
	}
	// READ: ArkFS ~ CephFS-K, both well above CephFS-F (128 KiB read-ahead).
	if ratio := arkR / kR; ratio < 0.6 || ratio > 1.8 {
		t.Errorf("READ ArkFS/CephFS-K = %.2f, want near 1", ratio)
	}
	if arkR < 1.5*fR {
		t.Errorf("READ: ArkFS (%f) must clearly beat CephFS-F (%f)", arkR, fR)
	}
}

func TestFig6bShapes(t *testing.T) {
	exp, err := quickRunner().Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	arkW := cell(t, exp, "ArkFS-ra8MB", "WRITE")
	s3fsW := cell(t, exp, "S3FS", "WRITE")
	arkR := cell(t, exp, "ArkFS-ra8MB", "READ")
	ark400R := cell(t, exp, "ArkFS-ra400MB", "READ")
	s3fsR := cell(t, exp, "S3FS", "READ")
	goofysR := cell(t, exp, "goofys", "READ")
	if arkW <= 1.5*s3fsW {
		t.Errorf("WRITE: ArkFS (%f) must clearly beat S3FS (%f)", arkW, s3fsW)
	}
	if arkR <= 1.5*s3fsR {
		t.Errorf("READ: ArkFS (%f) must clearly beat S3FS (%f)", arkR, s3fsR)
	}
	if goofysR <= arkR {
		t.Errorf("READ: goofys (%f) must beat ArkFS-ra8MB (%f)", goofysR, arkR)
	}
	// Raising the window closes the gap (the paper's ArkFS-ra400MB).
	if ratio := ark400R / goofysR; ratio < 0.5 {
		t.Errorf("READ: ArkFS-ra400MB (%f) should approach goofys (%f)", ark400R, goofysR)
	}
}

func TestFig7Shapes(t *testing.T) {
	r := quickRunner()
	r.Scale.ScaleClients = []int{1, 2, 8, 32}
	exp, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// ArkFS-pcache scales: 32 clients well above 8x the 1-client baseline
	// would be ideal; require clear growth.
	p1 := cell(t, exp, "ArkFS-pcache", "1")
	p32 := cell(t, exp, "ArkFS-pcache", "32")
	if p32 < 8*p1 {
		t.Errorf("ArkFS-pcache at 32 clients = %.1fx, want >= 8x", p32/p1)
	}
	// no-pcache drops when a second client appears (near-root hotspot).
	np1 := cell(t, exp, "ArkFS-no-pcache", "1")
	np2 := cell(t, exp, "ArkFS-no-pcache", "2")
	if np2 >= np1 {
		t.Errorf("ArkFS-no-pcache must drop from 1 (%f) to 2 (%f) clients", np1, np2)
	}
	// and stays far below pcache at scale.
	np32 := cell(t, exp, "ArkFS-no-pcache", "32")
	if np32 > p32/2 {
		t.Errorf("no-pcache at 32 (%f) should trail pcache (%f)", np32, p32)
	}
	// CephFS-K(1) saturates: no growth from 8 to 32 clients.
	k8 := cell(t, exp, "CephFS-K (1 MDS)", "8")
	k32 := cell(t, exp, "CephFS-K (1 MDS)", "32")
	if k32 > k8*1.3 {
		t.Errorf("CephFS-K(1) must saturate: 8 clients %f vs 32 clients %f", k8, k32)
	}
}

func TestTable2Shapes(t *testing.T) {
	exp, err := quickRunner().Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"Archiving", "Unarchiving"} {
		ark := cell(t, exp, "ArkFS", metric)
		k := cell(t, exp, "CephFS-K", metric)
		f := cell(t, exp, "CephFS-F", metric)
		if ark >= k {
			t.Errorf("%s: ArkFS (%.2fs) must be faster than CephFS-K (%.2fs)", metric, ark, k)
		}
		if k >= f {
			t.Errorf("%s: CephFS-K (%.2fs) must be faster than CephFS-F (%.2fs)", metric, k, f)
		}
	}
}

func TestRenderFormats(t *testing.T) {
	exp := &Experiment{
		ID:    "test",
		Title: "Test Table",
		Cells: []Cell{
			{System: "sysA", Metric: "M1", Value: 12.345, Unit: "kIOPS"},
			{System: "sysA", Metric: "M2", Value: 0.5, Unit: "kIOPS"},
			{System: "sysB", Metric: "M1", Value: 2000, Unit: "kIOPS", Failed: false},
			{System: "sysB", Metric: "M2", Value: 0, Unit: "kIOPS", Failed: true},
		},
		Notes: []string{"a note"},
	}
	out := exp.Render()
	for _, want := range []string{"Test Table", "sysA", "sysB", "12.3", "2000", "ERR", "note: a note", "[kIOPS]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := exp.RenderCSV()
	if !strings.Contains(csv, `test,"sysB","M2",0,kIOPS,true`) {
		t.Errorf("CSV missing failed row:\n%s", csv)
	}
	// Numeric metric ordering.
	series := &Experiment{Cells: []Cell{
		{System: "s", Metric: "16", Value: 1},
		{System: "s", Metric: "2", Value: 1},
		{System: "s", Metric: "1", Value: 1},
	}}
	m := series.MetricsOf()
	if m[0] != "1" || m[1] != "2" || m[2] != "16" {
		t.Errorf("numeric metrics unsorted: %v", m)
	}
}
