package harness

import (
	"fmt"
	"time"

	"arkfs/internal/cache"
	"arkfs/internal/core"
	"arkfs/internal/fsapi"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/workload"
)

// Ablation experiments isolate the design choices the paper credits for
// ArkFS's performance (DESIGN.md §5): per-directory journal parallelism,
// the 1-second compound-transaction window, the read-ahead window, and the
// cache entry size.

// buildArkFSJournal is BuildArkFS with an explicit journal configuration.
func buildArkFSJournal(env sim.Env, cal Calibration, prof objstore.Profile, n int,
	jc journal.Config, o ArkFSOptions) (*Deployment, error) {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 2 << 20
	}
	if o.Readahead <= 0 {
		o.Readahead = 8 << 20
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 40
	}
	prof.MaxObjectSize = maxI64(prof.MaxObjectSize, o.ChunkSize)
	cluster := objstore.NewCluster(env, prof)
	if err := core.Format(prt.New(cluster, o.ChunkSize)); err != nil {
		return nil, err
	}
	var store objstore.Store = cluster
	d := &Deployment{Cluster: cluster}
	if o.FlakyProb > 0 {
		d.Fault = objstore.NewFaultStore(cluster)
		d.Fault.SetFlaky(o.FlakyProb, o.FlakySeed)
		store = d.Fault
	}
	tr := prt.New(store, o.ChunkSize)
	net := rpc.NewNetwork(env, cal.ClientNet)
	mgr := lease.NewManager(net, lease.Options{Period: cal.LeasePeriod, Workers: 8})
	d.close = append(d.close, cluster.Close, mgr.Close)
	for i := 0; i < n; i++ {
		c := core.New(net, tr, core.Options{
			ID:           fmt.Sprintf("abl%04d", i),
			Cred:         types.Cred{Uid: 1000, Gid: 1000},
			PermCache:    true,
			FUSEOverhead: cal.FUSEOverhead,
			Cost: sim.CostModel{
				LocalMetaOp:    cal.ArkMetaOp,
				MemCopyPerByte: cal.MemCopyPerByte,
			},
			Journal: jc,
			Cache: cache.Config{
				EntrySize:        o.ChunkSize,
				MaxEntries:       o.CacheEntries,
				MaxReadahead:     o.Readahead,
				FlushParallelism: 16,
				Cost:             sim.CostModel{MemCopyPerByte: cal.MemCopyPerByte},
			},
			RPCWorkers:  cal.RPCWorkers,
			LeasePeriod: cal.LeasePeriod,
			Retry:       o.Retry,
			Seed:        int64(5000 + i),
		})
		d.Mounts = append(d.Mounts, fsapi.Adapt(c))
		d.Ark = append(d.Ark, c)
		cc := c
		d.close = append(d.close, func() { _ = cc.Close() })
	}
	return d, nil
}

// AblationJournal compares journaling configurations under the mdtest-easy
// CREATE workload: the paper's design (per-directory journals, parallel
// commit/checkpoint workers, 1 s compound transactions) against a serialized
// journal path (the "single journal area" bottleneck of §III-E) and against
// unbatched per-operation commits.
func (h *Runner) AblationJournal() (*Experiment, error) {
	exp := &Experiment{ID: "ablate-journal", Title: "Ablation: per-directory journaling (CREATE kIOPS)"}
	cal := h.Cal
	rados := objstore.RADOSProfile()
	configs := []struct {
		name string
		jc   journal.Config
	}{
		{"per-dir journals, 1s batching (paper)", journal.Config{
			CommitInterval: time.Second, CommitWorkers: 4, CheckpointWorkers: 4, CheckpointFanout: 64,
			PipelineDepth: 8}},
		{"serialized journal path", journal.Config{
			CommitInterval: time.Second, CommitWorkers: 1, CheckpointWorkers: 1, CheckpointFanout: 1,
			PipelineDepth: 1}},
		{"no batching (commit per op)", journal.Config{
			CommitInterval: time.Nanosecond, CommitWorkers: 4, CheckpointWorkers: 4, CheckpointFanout: 64,
			PipelineDepth: 8}},
		{"no commit pipelining (depth 1)", journal.Config{
			CommitInterval: time.Second, CommitWorkers: 4, CheckpointWorkers: 4, CheckpointFanout: 64,
			PipelineDepth: 1}},
	}
	for _, cfg := range configs {
		h.logf("ablate-journal: %s", cfg.name)
		var phases []workload.PhaseResult
		var err error
		env := sim.NewVirtEnv()
		env.Run(func() {
			var d *Deployment
			d, err = buildArkFSJournal(env, cal, rados, h.Scale.MdtestProcs, cfg.jc, h.ark(ArkFSOptions{PermCache: true}))
			if err != nil {
				return
			}
			defer d.Close()
			phases, err = workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
				FilesPerProc: h.Scale.MdtestFilesPerProc,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("ablate-journal %s: %w", cfg.name, err)
		}
		exp.Cells = append(exp.Cells, Cell{
			System: cfg.name, Metric: "CREATE",
			Value: phases[0].OpsPerSec() / 1000, Unit: "kIOPS",
		})
	}
	exp.Notes = append(exp.Notes,
		"isolates §III-E: parallel per-directory journals + compound transactions vs a serialized journal and per-op commits")
	return exp, nil
}

// AblationReadahead sweeps the max read-ahead window (the Fig. 6(b)
// ArkFS-ra8MB vs ArkFS-ra400MB axis, in more points) on the S3 profile.
func (h *Runner) AblationReadahead() (*Experiment, error) {
	exp := &Experiment{ID: "ablate-readahead", Title: "Ablation: read-ahead window vs sequential READ (GiB/s)"}
	cal := h.Cal
	s3 := objstore.S3Profile()
	for _, ra := range []int64{0, 2 << 20, 8 << 20, 32 << 20, 400 << 20} {
		ra := ra
		name := fmt.Sprintf("ra=%dMiB", ra>>20)
		if ra == 0 {
			name = "ra=off"
		}
		h.logf("ablate-readahead: %s", name)
		entries := 40
		if ra > 32<<20 {
			entries = 250
		}
		_, read, err := h.fioRun(name, func(env sim.Env, n int) (*Deployment, error) {
			o := h.ark(ArkFSOptions{PermCache: true, Readahead: ra, CacheEntries: entries})
			if ra == 0 {
				o.Readahead = -1 // forces the "disabled" path (below entry size)
			}
			return BuildArkFS(env, cal, s3, n, o)
		})
		if err != nil {
			return nil, fmt.Errorf("ablate-readahead %s: %w", name, err)
		}
		exp.Cells = append(exp.Cells, Cell{System: "ArkFS", Metric: name, Value: read.GiBps(), Unit: "GiB/s"})
	}
	exp.Notes = append(exp.Notes, "S3 profile; the window is the only variable (paper §III-D / Fig. 6(b))")
	return exp, nil
}

// AblationLeaseManager compares the single lease manager against a sharded
// cluster (the paper's future work) at the largest client count of the
// scalability sweep — validating the paper's observation that the manager is
// not a bottleneck in the controlled environment.
func (h *Runner) AblationLeaseManager() (*Experiment, error) {
	exp := &Experiment{ID: "ablate-leasemgr", Title: "Ablation: lease manager sharding (CREATE kIOPS)"}
	cal := h.Cal
	rados := objstore.RADOSProfile()
	clients := h.Scale.ScaleClients[len(h.Scale.ScaleClients)-1]
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		name := "1 manager (paper)"
		if shards > 1 {
			name = fmt.Sprintf("%d sharded managers", shards)
		}
		h.logf("ablate-leasemgr: %s @ %d clients", name, clients)
		thr, err := h.scaleCreate(func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{PermCache: true, LeaseShards: shards}))
		}, clients)
		if err != nil {
			return nil, fmt.Errorf("ablate-leasemgr %s: %w", name, err)
		}
		exp.Cells = append(exp.Cells, Cell{
			System: name, Metric: fmt.Sprintf("%d clients", clients),
			Value: thr / 1000, Unit: "kIOPS",
		})
	}
	exp.Notes = append(exp.Notes,
		"the paper reports no degradation from the single manager; sharding (its future work) should confirm that")
	return exp, nil
}

// AblationEntrySize sweeps the cache entry / data chunk size on the RADOS
// profile (paper §III-D: 2 MiB default, "large entries risk internal
// fragmentation but suit sequential archiving I/O").
func (h *Runner) AblationEntrySize() (*Experiment, error) {
	exp := &Experiment{ID: "ablate-entrysize", Title: "Ablation: cache entry size vs sequential bandwidth (GiB/s)"}
	cal := h.Cal
	rados := objstore.RADOSProfile()
	for _, es := range []int64{256 << 10, 1 << 20, 2 << 20, 4 << 20} {
		es := es
		name := fmt.Sprintf("entry=%dKiB", es>>10)
		h.logf("ablate-entrysize: %s", name)
		entries := int((80 << 20) / es) // hold the cache byte budget constant
		write, read, err := h.fioRun(name, func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{
				PermCache: true, ChunkSize: es, Readahead: 8 << 20, CacheEntries: entries,
			}))
		})
		if err != nil {
			return nil, fmt.Errorf("ablate-entrysize %s: %w", name, err)
		}
		exp.Cells = append(exp.Cells,
			Cell{System: "WRITE", Metric: name, Value: write.GiBps(), Unit: "GiB/s"},
			Cell{System: "READ", Metric: name, Value: read.GiBps(), Unit: "GiB/s"})
	}
	exp.Notes = append(exp.Notes, "RADOS profile; chunk size = cache entry size, cache byte budget constant")
	return exp, nil
}
