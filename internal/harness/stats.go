package harness

import (
	"fmt"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/sim"
	"arkfs/internal/workload"
)

// StatsConfig parameterizes an instrumented stats run. Zero fields take the
// defaults noted on them.
type StatsConfig struct {
	Clients      int // default 4
	FilesPerProc int // default 200
	SharedDirs   int // default 4 (mdtest-hard layout mixes in forwarded ops)
	// Flaky injects store failures with this probability (retried), so the
	// objstore.retries and faultstore.* series are non-zero in the output.
	Flaky     float64
	FlakySeed int64
	// Obs, when non-nil, is the registry the run records into — callers that
	// serve live debug endpoints pass theirs. Nil allocates a private one.
	Obs *obs.Registry
	// Tenants > 0 colors the clients with that many tenant IDs (round-robin)
	// and appends the zipfian multi-tenant workload, so the snapshot carries a
	// populated per-tenant table. Zero keeps one tenant per client and skips
	// that phase.
	Tenants int
	// TenantSeed feeds the multi-tenant workload's zipfian draws.
	TenantSeed int64
}

func (c *StatsConfig) fill() {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.FilesPerProc <= 0 {
		c.FilesPerProc = 200
	}
	if c.SharedDirs <= 0 {
		c.SharedDirs = 4
	}
}

// RunStats deploys an instrumented ArkFS cluster under the virtual clock,
// drives mdtest-easy plus mdtest-hard (the hard layout forces forwarded
// metadata ops and data I/O through the cache), and returns the
// deployment-wide metrics snapshot. Deterministic: the same config yields a
// byte-identical Fingerprint().
func RunStats(cfg StatsConfig) (obs.Snapshot, error) {
	cfg.fill()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var runErr error
	env := sim.NewVirtEnv()
	env.Run(func() {
		o := ArkFSOptions{PermCache: true, Obs: reg, Tenants: cfg.Tenants}
		if cfg.Flaky > 0 {
			o.FlakyProb, o.FlakySeed = cfg.Flaky, cfg.FlakySeed
			pol := objstore.DefaultRetryPolicy()
			o.Retry = &pol
		}
		d, err := BuildArkFS(env, DefaultCalibration(), objstore.RADOSProfile(), cfg.Clients, o)
		if err != nil {
			runErr = fmt.Errorf("stats: deploy: %w", err)
			return
		}
		defer d.Close()
		if _, err := workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: cfg.FilesPerProc, Root: "/stats-easy",
		}); err != nil {
			runErr = fmt.Errorf("stats: mdtest-easy: %w", err)
			return
		}
		if _, err := workload.MdtestHard(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: cfg.FilesPerProc / 2, SharedDirs: cfg.SharedDirs, Root: "/stats-hard",
		}); err != nil {
			runErr = fmt.Errorf("stats: mdtest-hard: %w", err)
			return
		}
		if cfg.Tenants > 0 {
			if _, err := workload.MultiTenant(env, d.Mounts, workload.MultiTenantConfig{
				OpsPerProc: cfg.FilesPerProc / 2, Dirs: cfg.SharedDirs,
				Seed: cfg.TenantSeed, Root: "/stats-tenants",
			}); err != nil {
				runErr = fmt.Errorf("stats: multitenant: %w", err)
				return
			}
		}
		// Let background lease/journal work quiesce so gauges settle.
		env.Sleep(2 * DefaultCalibration().LeasePeriod)
	})
	if runErr != nil {
		return obs.Snapshot{}, runErr
	}
	return reg.Snapshot(), nil
}
