//go:build !race

package harness

// raceEnabled reports whether the binary was built with the race detector.
const raceEnabled = false
