package harness

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"arkfs/internal/fsapi"
	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/workload"
)

// filePattern is the known content of file f on mount m (spans two chunks at
// the 64 KiB entry size, so writes cross cache-entry and PUT boundaries).
func filePattern(m, f int) []byte {
	data := make([]byte, 130<<10)
	for i := range data {
		data[i] = byte(m*131 + f*17 + i)
	}
	return data
}

// End-to-end fault injection: a full workload over a 10%-flaky store must
// complete with zero data loss when the retrying store path is enabled, and
// the retry counters must show the injected faults were actually absorbed.
func TestFlakyStoreWithRetriesLosesNothing(t *testing.T) {
	env := sim.NewVirtEnv()
	var d *Deployment
	var phases []workload.PhaseResult
	var buildErr, mdErr error
	pol := objstore.DefaultRetryPolicy()
	// The RADOS profile keeps file data by size only (reads return zeros);
	// this test verifies bytes, so payloads must be retained.
	prof := objstore.RADOSProfile()
	prof.SizeOnlyPrefix = ""
	env.Run(func() {
		d, buildErr = BuildArkFS(env, DefaultCalibration(), prof, 2, ArkFSOptions{
			FlakyProb: 0.10,
			FlakySeed: 7,
			Retry:     &pol,
			ChunkSize: 64 << 10,
			// A small cache keeps eviction write-backs flowing through the
			// flaky store too.
			CacheEntries: 4,
		})
		if buildErr != nil {
			return
		}
		defer d.Close()

		// Metadata workload: every phase must finish error-free.
		phases, mdErr = workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{FilesPerProc: 40})
		if mdErr != nil {
			return
		}

		// Data workload with known bytes: write, flush, drop caches, re-read.
		for mi, m := range d.Mounts {
			for fi := 0; fi < 3; fi++ {
				f, err := fsapi.Create(context.Background(), m, fmt.Sprintf("/data-%d-%d", mi, fi), 0644)
				if err != nil {
					t.Errorf("create %d/%d: %v", mi, fi, err)
					return
				}
				if _, err := f.Write(filePattern(mi, fi)); err != nil {
					t.Errorf("write %d/%d: %v", mi, fi, err)
					return
				}
				if err := f.Close(); err != nil {
					t.Errorf("close %d/%d: %v", mi, fi, err)
					return
				}
			}
			if err := m.FlushAll(context.Background()); err != nil {
				t.Errorf("FlushAll mount %d: %v", mi, err)
				return
			}
		}
		d.DropAllCaches() // force the re-reads through the flaky store
		for mi, m := range d.Mounts {
			for fi := 0; fi < 3; fi++ {
				want := filePattern(mi, fi)
				f, err := m.Open(context.Background(), fmt.Sprintf("/data-%d-%d", mi, fi), types.ORdonly, 0)
				if err != nil {
					t.Errorf("open %d/%d: %v", mi, fi, err)
					return
				}
				got, err := io.ReadAll(f)
				_ = f.Close()
				if err != nil {
					t.Errorf("read %d/%d: %v", mi, fi, err)
					return
				}
				if !bytes.Equal(got, want) {
					diff := -1
					for i := range want {
						if i >= len(got) || got[i] != want[i] {
							diff = i
							break
						}
					}
					t.Errorf("data loss on file %d/%d: got %d bytes, want %d, first diff at byte %d (got %#x want %#x)",
						mi, fi, len(got), len(want), diff, got[diff], want[diff])
					return
				}
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	if mdErr != nil {
		t.Fatalf("mdtest over flaky store: %v", mdErr)
	}
	for _, p := range phases {
		if p.Errors > 0 {
			t.Errorf("mdtest phase %s: %d errors over flaky store", p.Name, p.Errors)
		}
	}
	// The faults were real and the retry layer absorbed them.
	if d.Fault == nil || d.Fault.Injected() == 0 {
		t.Fatal("fault store injected no failures; the test exercised nothing")
	}
	if got := d.RetryCount(); got == 0 {
		t.Fatal("retry count = 0; injected faults were not retried")
	}
	t.Logf("injected %d faults, absorbed with %d retries", d.Fault.Injected(), d.RetryCount())
}

// Control: the same flaky store without retries must visibly fail, proving
// the e2e test above passes because of the retry layer rather than slack in
// the workload.
func TestFlakyStoreWithoutRetriesFails(t *testing.T) {
	env := sim.NewVirtEnv()
	failed := false
	env.Run(func() {
		d, err := BuildArkFS(env, DefaultCalibration(), objstore.RADOSProfile(), 1, ArkFSOptions{
			FlakyProb: 0.10,
			FlakySeed: 7,
			ChunkSize: 64 << 10,
		})
		if err != nil {
			failed = true
			return
		}
		defer d.Close()
		phases, err := workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{FilesPerProc: 40})
		if err != nil {
			failed = true
			return
		}
		for _, p := range phases {
			if p.Errors > 0 {
				failed = true
			}
		}
	})
	if !failed {
		t.Fatal("flaky store without retries completed cleanly; fault injection is not reaching the workload")
	}
}
