package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunStatsCoversEveryLayer: the instrumented deployment reports metrics
// from all five layers (core, lease, journal, rpc, objstore) plus the cache.
func TestRunStatsCoversEveryLayer(t *testing.T) {
	snap, err := RunStats(StatsConfig{Clients: 2, FilesPerProc: 40, SharedDirs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"core.", "lease.", "journal.", "rpc.", "objstore.", "cache."} {
		found := false
		for name, v := range snap.Counters {
			if strings.HasPrefix(name, prefix) && v > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no non-zero counter with prefix %q", prefix)
		}
	}
	if snap.Counters["journal.appends"] == 0 {
		t.Error("journal.appends = 0 after mdtest")
	}
	if snap.Histograms["core.op.stat"].Count == 0 {
		t.Error("core.op.stat histogram empty after mdtest STAT phase")
	}
	// The snapshot renders as valid JSON.
	var decoded map[string]any
	if err := json.Unmarshal(snap.JSON(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
}

// TestRunStatsDeterministic: the virtual clock makes the whole instrumented
// run reproducible — two runs of the same config produce byte-identical
// metrics fingerprints.
func TestRunStatsDeterministic(t *testing.T) {
	cfg := StatsConfig{Clients: 2, FilesPerProc: 30, SharedDirs: 2}
	a, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same config diverged:\nrun A:\n%s\nrun B:\n%s", a.Fingerprint(), b.Fingerprint())
	}
}

// TestRunStatsMultiTenantDeterministic: coloring the clients with tenant IDs
// and running the zipfian multi-tenant workload keeps the run reproducible —
// per-tenant accounting folds into the fingerprint as sorted "t ..." lines,
// byte-identical across same-config runs.
func TestRunStatsMultiTenantDeterministic(t *testing.T) {
	cfg := StatsConfig{Clients: 2, FilesPerProc: 30, SharedDirs: 2, Tenants: 2, TenantSeed: 42}
	a, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fpA, fpB := a.Fingerprint(), b.Fingerprint()
	if fpA != fpB {
		t.Fatalf("same multi-tenant config diverged:\nrun A:\n%s\nrun B:\n%s", fpA, fpB)
	}
	for _, tenant := range []string{"tenant-00", "tenant-01"} {
		if !strings.Contains(fpA, "t "+tenant+" ") {
			t.Errorf("fingerprint has no %s line:\n%s", tenant, fpA)
		}
		if a.Tenants[tenant].Ops == 0 {
			t.Errorf("snapshot has no ops for %s", tenant)
		}
	}
}
