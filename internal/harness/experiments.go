package harness

import (
	"fmt"
	"sort"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/workload"
)

// Cell is one reported measurement.
type Cell struct {
	System string
	Metric string // phase or series point
	Value  float64
	Unit   string
	Failed bool // the paper reports this cell as erroring (MarFS READ)
}

// Experiment is one regenerated figure/table.
type Experiment struct {
	ID    string // "fig4", "table2", ...
	Title string
	Cells []Cell
	Notes []string
}

// mdtestSystems lists the systems compared in Figs. 4 and 5.
type sysBuilder struct {
	name  string
	build func(env sim.Env, n int) (*Deployment, error)
}

func (h *Runner) mdtestSystems() []sysBuilder {
	cal := h.Cal
	rados := objstore.RADOSProfile()
	return []sysBuilder{
		{"ArkFS", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{PermCache: true}))
		}},
		{"CephFS-K (1 MDS)", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1})
		}},
		{"CephFS-K (16 MDS)", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 16})
		}},
		{"CephFS-F", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1, FUSE: true})
		}},
		{"MarFS", func(env sim.Env, n int) (*Deployment, error) {
			return BuildMarFS(env, cal, rados, n, h.MarFSReadFails)
		}},
	}
}

// Runner executes experiments.
type Runner struct {
	Cal   Calibration
	Scale Scale
	// MarFSReadFails reproduces the paper's failing MarFS READ phase.
	MarFSReadFails bool
	// Flaky/FlakySeed inject a probabilistic fault layer under every ArkFS
	// deployment; Retry enables the clients' retrying store path. Together
	// they turn any experiment into a fault-injection run.
	Flaky     float64
	FlakySeed int64
	Retry     *objstore.RetryPolicy
	// Log receives progress lines; nil discards them.
	Log func(string)
}

// ark merges the Runner-level fault/retry settings into per-experiment
// ArkFS options.
func (h *Runner) ark(o ArkFSOptions) ArkFSOptions {
	if h.Flaky > 0 {
		o.FlakyProb, o.FlakySeed = h.Flaky, h.FlakySeed
	}
	if o.Retry == nil {
		o.Retry = h.Retry
	}
	return o
}

// NewRunner builds a Runner with defaults.
func NewRunner() *Runner {
	return &Runner{Cal: DefaultCalibration(), Scale: DefaultScale(), MarFSReadFails: true}
}

func (h *Runner) logf(format string, args ...any) {
	if h.Log != nil {
		h.Log(fmt.Sprintf(format, args...))
	}
}

// Fig4 regenerates "Throughput of mdtest-easy" (kIOPS per phase per system).
func (h *Runner) Fig4() (*Experiment, error) {
	exp := &Experiment{ID: "fig4", Title: "Fig. 4: mdtest-easy throughput (kIOPS)"}
	for _, sys := range h.mdtestSystems() {
		h.logf("fig4: running %s", sys.name)
		var phases []workload.PhaseResult
		var err error
		env := sim.NewVirtEnv()
		env.Run(func() {
			var d *Deployment
			d, err = sys.build(env, h.Scale.MdtestProcs)
			if err != nil {
				return
			}
			defer d.Close()
			phases, err = workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
				FilesPerProc: h.Scale.MdtestFilesPerProc,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", sys.name, err)
		}
		for _, p := range phases {
			exp.Cells = append(exp.Cells, Cell{
				System: sys.name, Metric: p.Name,
				Value: p.OpsPerSec() / 1000, Unit: "kIOPS",
				Failed: p.Errors > 0,
			})
		}
	}
	exp.Notes = append(exp.Notes, fmt.Sprintf(
		"%d procs x %d empty files, own leaf dirs, fsync per phase (paper: 16 procs x 1M files)",
		h.Scale.MdtestProcs, h.Scale.MdtestFilesPerProc))
	return exp, nil
}

// Fig5 regenerates "Throughput of mdtest-hard".
func (h *Runner) Fig5() (*Experiment, error) {
	exp := &Experiment{ID: "fig5", Title: "Fig. 5: mdtest-hard throughput (kIOPS)"}
	for _, sys := range h.mdtestSystems() {
		h.logf("fig5: running %s", sys.name)
		var phases []workload.PhaseResult
		var err error
		env := sim.NewVirtEnv()
		env.Run(func() {
			var d *Deployment
			d, err = sys.build(env, h.Scale.MdtestProcs)
			if err != nil {
				return
			}
			defer d.Close()
			phases, err = workload.MdtestHard(env, d.Mounts, workload.MdtestConfig{
				FilesPerProc: h.Scale.MdtestFilesPerProc,
				FileSize:     3901,
				SharedDirs:   h.Scale.MdtestSharedDirs,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", sys.name, err)
		}
		for _, p := range phases {
			failed := p.Errors > 0
			exp.Cells = append(exp.Cells, Cell{
				System: sys.name, Metric: p.Name,
				Value: p.OpsPerSec() / 1000, Unit: "kIOPS",
				Failed: failed,
			})
		}
	}
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("%d procs x %d files of 3901 B across %d shared dirs (paper: 16 procs x 1M files)",
			h.Scale.MdtestProcs, h.Scale.MdtestFilesPerProc, h.Scale.MdtestSharedDirs),
		"MarFS READ reported as failed, matching the paper's environment")
	return exp, nil
}

// fioRun is a helper running the fio workload on one deployment builder.
func (h *Runner) fioRun(name string, build func(env sim.Env, n int) (*Deployment, error)) (w, r workload.BandwidthResult, err error) {
	h.logf("fio: running %s", name)
	env := sim.NewVirtEnv()
	env.Run(func() {
		var d *Deployment
		d, err = build(env, h.Scale.FioProcs)
		if err != nil {
			return
		}
		defer d.Close()
		w, r, err = workload.Fio(env, d.Mounts, workload.FioConfig{
			FileSize:   h.Scale.FioFileSize,
			ReqSize:    h.Scale.FioReqSize,
			DropCaches: d.DropAllCaches,
		})
	})
	return w, r, err
}

// Fig6a regenerates the RADOS half of "Large File I/O Bandwidth".
func (h *Runner) Fig6a() (*Experiment, error) {
	exp := &Experiment{ID: "fig6a", Title: "Fig. 6(a): large-file bandwidth on RADOS (GiB/s)"}
	cal := h.Cal
	rados := objstore.RADOSProfile()
	systems := []sysBuilder{
		{"ArkFS", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{PermCache: true}))
		}},
		{"CephFS-K", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1})
		}},
		{"CephFS-F", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1, FUSE: true})
		}},
	}
	for _, sys := range systems {
		w, r, err := h.fioRun(sys.name, sys.build)
		if err != nil {
			return nil, fmt.Errorf("fig6a %s: %w", sys.name, err)
		}
		exp.Cells = append(exp.Cells,
			Cell{System: sys.name, Metric: "WRITE", Value: w.GiBps(), Unit: "GiB/s"},
			Cell{System: sys.name, Metric: "READ", Value: r.GiBps(), Unit: "GiB/s"})
	}
	exp.Notes = append(exp.Notes, fmt.Sprintf(
		"%d procs x %d MiB sequential, %d KiB requests, fsync+drop-cache between passes (paper: 32 procs x 32 GiB)",
		h.Scale.FioProcs, h.Scale.FioFileSize>>20, h.Scale.FioReqSize>>10))
	return exp, nil
}

// Fig6b regenerates the S3 half of Fig. 6.
func (h *Runner) Fig6b() (*Experiment, error) {
	exp := &Experiment{ID: "fig6b", Title: "Fig. 6(b): large-file bandwidth on S3 (GiB/s)"}
	cal := h.Cal
	s3 := objstore.S3Profile()
	systems := []sysBuilder{
		{"ArkFS-ra8MB", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, s3, n, h.ark(ArkFSOptions{PermCache: true, Readahead: 8 << 20}))
		}},
		{"ArkFS-ra400MB", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, s3, n, h.ark(ArkFSOptions{PermCache: true, Readahead: 400 << 20, CacheEntries: 250}))
		}},
		{"S3FS", func(env sim.Env, n int) (*Deployment, error) {
			return BuildS3FS(env, cal, s3, n)
		}},
		{"goofys", func(env sim.Env, n int) (*Deployment, error) {
			return BuildGoofys(env, cal, s3, n)
		}},
	}
	for _, sys := range systems {
		w, r, err := h.fioRun(sys.name, sys.build)
		if err != nil {
			return nil, fmt.Errorf("fig6b %s: %w", sys.name, err)
		}
		exp.Cells = append(exp.Cells,
			Cell{System: sys.name, Metric: "WRITE", Value: w.GiBps(), Unit: "GiB/s"},
			Cell{System: sys.name, Metric: "READ", Value: r.GiBps(), Unit: "GiB/s"})
	}
	exp.Notes = append(exp.Notes,
		"ArkFS-ra400MB raises the max read-ahead to goofys's 400 MiB window")
	return exp, nil
}

// scaleCreate measures aggregate CREATE throughput at a given client count.
func (h *Runner) scaleCreate(build func(env sim.Env, n int) (*Deployment, error), clients int) (float64, error) {
	var thr float64
	var err error
	env := sim.NewVirtEnv()
	env.Run(func() {
		var d *Deployment
		d, err = build(env, clients)
		if err != nil {
			return
		}
		defer d.Close()
		var phases []workload.PhaseResult
		phases, err = workload.MdtestEasy(env, d.Mounts, workload.MdtestConfig{
			FilesPerProc: h.Scale.ScaleFilesPerProc,
			Root:         "/scale",
		})
		if err != nil {
			return
		}
		thr = phases[0].OpsPerSec() // CREATE
	})
	return thr, err
}

// Fig1 regenerates the motivation figure: CephFS-K(1 MDS) creation
// throughput vs client count, with the ideal linear line.
func (h *Runner) Fig1() (*Experiment, error) {
	exp := &Experiment{ID: "fig1", Title: "Fig. 1: single-MDS creation throughput vs clients (kIOPS)"}
	cal := h.Cal
	rados := objstore.RADOSProfile()
	build := func(env sim.Env, n int) (*Deployment, error) {
		return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1})
	}
	var base float64
	for _, n := range h.Scale.ScaleClients {
		h.logf("fig1: %d clients", n)
		thr, err := h.scaleCreate(build, n)
		if err != nil {
			return nil, fmt.Errorf("fig1 @%d: %w", n, err)
		}
		if base == 0 {
			base = thr
		}
		exp.Cells = append(exp.Cells,
			Cell{System: "CephFS-K (1 MDS)", Metric: fmt.Sprintf("%d", n), Value: thr / 1000, Unit: "kIOPS"},
			Cell{System: "ideal", Metric: fmt.Sprintf("%d", n), Value: base * float64(n) / 1000, Unit: "kIOPS"})
	}
	exp.Notes = append(exp.Notes, fmt.Sprintf(
		"massive file creation, %d files per client, own directories", h.Scale.ScaleFilesPerProc))
	return exp, nil
}

// Fig7 regenerates the scalability figure: normalized creation throughput
// vs clients for ArkFS-pcache, ArkFS-no-pcache, CephFS-K 1 and 16 MDS.
func (h *Runner) Fig7() (*Experiment, error) {
	exp := &Experiment{ID: "fig7", Title: "Fig. 7: normalized creation throughput vs clients"}
	cal := h.Cal
	rados := objstore.RADOSProfile()
	systems := []sysBuilder{
		{"ArkFS-pcache", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{PermCache: true}))
		}},
		{"ArkFS-no-pcache", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{PermCache: false}))
		}},
		{"CephFS-K (1 MDS)", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1})
		}},
		{"CephFS-K (16 MDS)", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 16})
		}},
	}
	// Normalize to ArkFS-pcache at 1 client, as the paper normalizes its
	// y-axis to a single-client baseline.
	var norm float64
	for _, sys := range systems {
		for _, n := range h.Scale.ScaleClients {
			h.logf("fig7: %s @ %d clients", sys.name, n)
			thr, err := h.scaleCreate(sys.build, n)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s @%d: %w", sys.name, n, err)
			}
			if norm == 0 {
				norm = thr
			}
			exp.Cells = append(exp.Cells, Cell{
				System: sys.name, Metric: fmt.Sprintf("%d", n),
				Value: thr / norm, Unit: "x",
			})
		}
	}
	exp.Notes = append(exp.Notes,
		"normalized to ArkFS-pcache at 1 client; log-scale in the paper",
		fmt.Sprintf("%d files per client, own directories", h.Scale.ScaleFilesPerProc))
	return exp, nil
}

// Table2 regenerates the archiving/unarchiving execution times.
func (h *Runner) Table2() (*Experiment, error) {
	exp := &Experiment{ID: "table2", Title: "Table II: archiving scenario execution times (s)"}
	cal := h.Cal
	// Real payloads are required (tar framing is parsed back), so the
	// cluster retains all object data in this experiment.
	rados := objstore.RADOSProfile()
	rados.SizeOnlyPrefix = ""

	dcfg := workload.DatasetConfig{
		Files: h.Scale.ArchiveFiles, MinSize: 2 << 10, MaxSize: 96 << 10,
		Categories: 16, Seed: 42,
	}
	dataset := workload.NewDataset(dcfg)
	tarImage, err := workload.BuildTarImage(dataset, 42)
	if err != nil {
		return nil, err
	}

	systems := []sysBuilder{
		{"CephFS-F", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1, FUSE: true})
		}},
		{"CephFS-K", func(env sim.Env, n int) (*Deployment, error) {
			return BuildCeph(env, cal, rados, n, CephOptions{NumMDS: 1})
		}},
		{"ArkFS", func(env sim.Env, n int) (*Deployment, error) {
			return BuildArkFS(env, cal, rados, n, h.ark(ArkFSOptions{PermCache: true}))
		}},
	}
	times := map[string][2]time.Duration{}
	for _, sys := range systems {
		h.logf("table2: running %s", sys.name)
		var arch, unarch time.Duration
		var err error
		env := sim.NewVirtEnv()
		env.Run(func() {
			var d *Deployment
			d, err = sys.build(env, h.Scale.ArchiveProcs)
			if err != nil {
				return
			}
			defer d.Close()
			ext := workload.NewExternalStore(env, cal.EBSBandwidth)
			start := env.Now()
			g := sim.NewGroup(env)
			errs := make([]error, len(d.Mounts))
			for i, m := range d.Mounts {
				i, m := i, m
				g.Go(func() {
					cfg := workload.ArchiveConfig{Root: fmt.Sprintf("/archive-%02d", i), External: ext}
					_, errs[i] = workload.Archive(env, m, dataset, tarImage, cfg)
				})
			}
			g.Wait()
			arch = env.Now() - start
			for _, e := range errs {
				if e != nil {
					err = e
					return
				}
			}
			d.DropAllCaches()
			start = env.Now()
			g = sim.NewGroup(env)
			for i, m := range d.Mounts {
				i, m := i, m
				g.Go(func() {
					cfg := workload.ArchiveConfig{Root: fmt.Sprintf("/archive-%02d", i), External: ext}
					_, errs[i] = workload.Unarchive(env, m, dataset, cfg)
				})
			}
			g.Wait()
			unarch = env.Now() - start
			for _, e := range errs {
				if e != nil {
					err = e
					return
				}
			}
		})
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", sys.name, err)
		}
		times[sys.name] = [2]time.Duration{arch, unarch}
		exp.Cells = append(exp.Cells,
			Cell{System: sys.name, Metric: "Archiving", Value: arch.Seconds(), Unit: "s"},
			Cell{System: sys.name, Metric: "Unarchiving", Value: unarch.Seconds(), Unit: "s"})
	}
	// Speed-up rows, as in the paper's table.
	if ark, ok := times["ArkFS"]; ok {
		for _, ref := range []string{"CephFS-F", "CephFS-K"} {
			if rt, ok := times[ref]; ok {
				exp.Cells = append(exp.Cells,
					Cell{System: "ArkFS speed-up vs " + ref, Metric: "Archiving",
						Value: rt[0].Seconds() / ark[0].Seconds(), Unit: "x"},
					Cell{System: "ArkFS speed-up vs " + ref, Metric: "Unarchiving",
						Value: rt[1].Seconds() / ark[1].Seconds(), Unit: "x"})
			}
		}
	}
	exp.Notes = append(exp.Notes, fmt.Sprintf(
		"%d procs, %d files/dataset (synthetic MS-COCO shape), EBS at 1 GB/s (paper: 32 procs x 41K files)",
		h.Scale.ArchiveProcs, h.Scale.ArchiveFiles))
	return exp, nil
}

// All runs every experiment in order.
func (h *Runner) All() ([]*Experiment, error) {
	runs := []func() (*Experiment, error){
		h.Fig1, h.Fig4, h.Fig5, h.Fig6a, h.Fig6b, h.Fig7, h.Table2,
	}
	var out []*Experiment
	for _, run := range runs {
		exp, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, exp)
	}
	return out, nil
}

// SystemsOf lists the distinct systems in an experiment, first-seen order.
func (e *Experiment) SystemsOf() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range e.Cells {
		if !seen[c.System] {
			seen[c.System] = true
			out = append(out, c.System)
		}
	}
	return out
}

// MetricsOf lists the distinct metrics, first-seen order (series points are
// numeric and sorted).
func (e *Experiment) MetricsOf() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range e.Cells {
		if !seen[c.Metric] {
			seen[c.Metric] = true
			out = append(out, c.Metric)
		}
	}
	numeric := true
	for _, m := range out {
		if _, err := fmt.Sscanf(m, "%d", new(int)); err != nil {
			numeric = false
			break
		}
	}
	if numeric {
		sort.Slice(out, func(i, j int) bool {
			var a, b int
			fmt.Sscanf(out[i], "%d", &a)
			fmt.Sscanf(out[j], "%d", &b)
			return a < b
		})
	}
	return out
}

// Value fetches one cell.
func (e *Experiment) Value(system, metric string) (Cell, bool) {
	for _, c := range e.Cells {
		if c.System == system && c.Metric == metric {
			return c, true
		}
	}
	return Cell{}, false
}
