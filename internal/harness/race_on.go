//go:build race

package harness

// raceEnabled reports whether the binary was built with the race detector.
// Race instrumentation slows the wall-clock scheduler enough that chaos fault
// windows land on different operations between runs, so seed-replay
// fingerprint equality only holds in uninstrumented builds.
const raceEnabled = true
