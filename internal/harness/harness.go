// Package harness builds complete simulated deployments of ArkFS and every
// baseline, runs the paper's workloads against them under the virtual clock,
// and renders the tables/series of each figure in the evaluation (§IV).
package harness

import (
	"fmt"
	"time"

	"arkfs/internal/baseline/cephsim"
	"arkfs/internal/baseline/goofyssim"
	"arkfs/internal/baseline/marfssim"
	"arkfs/internal/baseline/s3fssim"
	"arkfs/internal/cache"
	"arkfs/internal/core"
	"arkfs/internal/fsapi"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/qos"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Calibration holds the simulation cost constants that stand in for the
// paper's AWS testbed (Table I). They were tuned so the figures' shapes and
// headline ratios land near the paper's; EXPERIMENTS.md records the results.
type Calibration struct {
	// ClientNet is the client↔client / client↔lease-manager / client↔MDS
	// link (c5n 50 Gbit instances: low RTT, high bandwidth).
	ClientNet sim.NetModel
	// FUSEOverhead per application-visible request on FUSE mounts.
	FUSEOverhead time.Duration
	// ArkMetaOp is ArkFS's local metadata-table operation cost (hashing,
	// journal encoding, locking).
	ArkMetaOp time.Duration
	// LeaseOp is the lease manager's per-request service cost, serialized
	// over its worker pool: the knob that makes a single manager saturate
	// under an acquire wave the way a real lease server's CPU does.
	LeaseOp time.Duration
	// MemCopyPerByte charges cache memcpy work.
	MemCopyPerByte time.Duration
	// LeasePeriod is the directory lease duration (paper default 5 s).
	LeasePeriod time.Duration
	// RPCWorkers bounds a client's leader-side service concurrency (client
	// machines spend most cores on the application, not the FS daemon).
	RPCWorkers int
	// EBSBandwidth is the external/burst-buffer device (Table II: 1 GB/s).
	EBSBandwidth int64
}

// DefaultCalibration is used by every experiment.
func DefaultCalibration() Calibration {
	return Calibration{
		ClientNet:      sim.NetModel{Latency: 30 * time.Microsecond, Bandwidth: 6250 << 20},
		FUSEOverhead:   5 * time.Microsecond,
		ArkMetaOp:      6 * time.Microsecond,
		LeaseOp:        20 * time.Microsecond,
		MemCopyPerByte: time.Nanosecond / 8, // ~8 GB/s effective memcpy
		LeasePeriod:    5 * time.Second,
		RPCWorkers:     4,
		EBSBandwidth:   1 << 30,
	}
}

// Scale holds the scaled-down workload parameters (the paper's full sizes in
// comments); shapes, not absolute numbers, are the reproduction target.
type Scale struct {
	MdtestProcs        int   // paper: 16
	MdtestFilesPerProc int   // paper: 62500 (1M total)
	MdtestSharedDirs   int   // mdtest-hard directory count
	FioProcs           int   // paper: 32
	FioFileSize        int64 // paper: 32 GiB
	FioReqSize         int64 // paper: 128 KiB
	ScaleClients       []int // paper: 1..512
	ScaleFilesPerProc  int
	ArchiveProcs       int // paper: 32
	ArchiveFiles       int // paper: 41K per dataset
}

// DefaultScale finishes in minutes on a laptop.
func DefaultScale() Scale {
	return Scale{
		MdtestProcs:        16,
		MdtestFilesPerProc: 1500,
		MdtestSharedDirs:   16,
		FioProcs:           8,
		FioFileSize:        64 << 20,
		FioReqSize:         128 << 10,
		ScaleClients:       []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
		ScaleFilesPerProc:  150,
		ArchiveProcs:       4,
		ArchiveFiles:       3000,
	}
}

// QuickScale is for tests and smoke runs.
func QuickScale() Scale {
	return Scale{
		MdtestProcs:        4,
		MdtestFilesPerProc: 100,
		MdtestSharedDirs:   4,
		// Bandwidth shapes need files spanning several read-ahead windows,
		// so fio keeps realistic sizes even at smoke scale.
		FioProcs:          4,
		FioFileSize:       64 << 20,
		FioReqSize:        256 << 10,
		ScaleClients:      []int{1, 2, 8, 32},
		ScaleFilesPerProc: 40,
		ArchiveProcs:      2,
		ArchiveFiles:      200,
	}
}

// Deployment is one system instance under test: its mounts plus teardown.
type Deployment struct {
	Mounts  []fsapi.FileSystem
	Cluster *objstore.Cluster
	// Fault is the fault-injection layer between the clients and the
	// cluster, non-nil when ArkFSOptions.FlakyProb > 0.
	Fault *objstore.FaultStore
	// Ark holds the raw ArkFS clients behind Mounts (nil for baselines),
	// for retry/cache statistics.
	Ark []*core.Client
	// Leases is the elastic lease cluster, non-nil when the deployment was
	// built with ArkFSOptions.LeaseShards > 1. Chaos scenarios drive
	// AddShard/RemoveShard/KillShard through it mid-workload.
	Leases *lease.Cluster
	// Reg is the deployment-wide metrics registry (nil unless the deployment
	// was built with ArkFSOptions.Obs).
	Reg   *obs.Registry
	close []func()
}

// RetryCount sums the store-path retries across all ArkFS clients.
func (d *Deployment) RetryCount() int64 {
	var total int64
	for _, c := range d.Ark {
		if rs := c.RetryStats(); rs != nil {
			total += rs.Retries()
		}
	}
	return total
}

// Close tears the deployment down.
func (d *Deployment) Close() {
	for i := len(d.close) - 1; i >= 0; i-- {
		d.close[i]()
	}
}

// DropAllCaches invokes the cache-drop hook on every mount that has one.
func (d *Deployment) DropAllCaches() {
	type dropper interface{ DropAllCaches() }
	for _, m := range d.Mounts {
		if dr, ok := m.(dropper); ok {
			dr.DropAllCaches()
		}
	}
}

// ArkFSOptions selects ArkFS variants.
type ArkFSOptions struct {
	PermCache bool
	Readahead int64 // 0: the 8 MiB default
	ChunkSize int64 // 0: 2 MiB
	// CacheEntries bounds the data cache per client (memory control).
	CacheEntries int
	// LeaseShards > 1 deploys an elastic lease-manager cluster (the paper's
	// future work) instead of the single manager: directories route onto
	// shards by rendezvous hashing, and the deployment's Leases handle
	// reshards it at runtime.
	LeaseShards int
	// LeasePersist gives every lease shard grant-table persistence through
	// the object store (sealed snapshots under "lm:"), so a killed and
	// restarted shard resumes its grants instead of stalling a full grace
	// period. Only meaningful with LeaseShards > 1.
	LeasePersist bool
	// FlakyProb > 0 inserts a FaultStore between the clients and the
	// cluster that fails every store op with this probability (seeded by
	// FlakySeed), for fault-injection experiments. Formatting bypasses it.
	FlakyProb float64
	FlakySeed int64
	// Retry enables the clients' retrying store path with this policy.
	Retry *objstore.RetryPolicy
	// Obs attaches a shared metrics registry: every client, the RPC network,
	// and the lease manager(s) record into it, and the deployment folds
	// fault-layer tallies in. Nil disables instrumentation (zero overhead).
	Obs *obs.Registry
	// Seed offsets every client's deterministic ID seed (trace/span IDs
	// derive from it), so two same-config runs with different seeds produce
	// disjoint ID streams. Zero keeps the historical per-client seeds.
	Seed int64
	// Tenants > 0 colors the clients with that many tenant IDs round-robin
	// (client i becomes "tenant-<i mod Tenants>"), so per-tenant accounting
	// aggregates several clients per tenant. Zero keeps the per-client
	// default ("tenant-<ID>").
	Tenants int
	// QoSRate > 0 attaches per-tenant token-bucket admission control to
	// every client's leader serve path: each serving client admits at most
	// QoSRate forwarded operations per second per tenant, with QoSBurst
	// bucket depth (default 8). Refusals surface as typed retry-after
	// pushback. QoSTenants pins per-tenant overrides on every limiter.
	QoSRate    float64
	QoSBurst   float64
	QoSTenants map[string]qos.Limits
	// LeaseQoSRate > 0 applies the same per-tenant admission control to the
	// lease manager's Acquire path, answered through the existing
	// Wait/RetryAfter protocol.
	LeaseQoSRate  float64
	LeaseQoSBurst float64
	// Brownout enables the leader brownout ladder: under journal-pipeline
	// pressure expensive forwarded ops shed before cheap ones.
	Brownout bool
	// OpBudget caps one public operation's total internal retries across
	// all of its retry loops (0: core.DefaultOpBudget; negative: disabled).
	OpBudget int
	// MaxInbox / ShedWait bound every client's leader-side RPC service and
	// the lease manager(s): see rpc.ServerLimits.
	MaxInbox int
	ShedWait time.Duration
	// Breaker mounts a seeded circuit breaker under each client's store
	// retry path.
	Breaker bool
}

// BuildArkFS deploys ArkFS with n clients on the given storage profile.
// Must be called inside env.Run.
func BuildArkFS(env sim.Env, cal Calibration, prof objstore.Profile, n int, o ArkFSOptions) (*Deployment, error) {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 2 << 20
	}
	if o.Readahead == 0 {
		o.Readahead = 8 << 20
	}
	if o.Readahead < 0 {
		o.Readahead = 0 // read-ahead disabled (ablation)
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 40
	}
	prof.MaxObjectSize = maxI64(prof.MaxObjectSize, o.ChunkSize)
	cluster := objstore.NewCluster(env, prof)
	// Format through the raw cluster: fault injection targets the workload,
	// not deployment setup.
	if err := core.Format(prt.New(cluster, o.ChunkSize)); err != nil {
		return nil, err
	}
	var store objstore.Store = cluster
	d := &Deployment{Cluster: cluster, Reg: o.Obs}
	if o.FlakyProb > 0 {
		d.Fault = objstore.NewFaultStore(cluster)
		d.Fault.SetFlaky(o.FlakyProb, o.FlakySeed)
		store = d.Fault
		if o.Obs != nil {
			fs := d.Fault
			o.Obs.Func("faultstore.ops", func() int64 { return int64(fs.Ops()) })
			o.Obs.Func("faultstore.injected", func() int64 { return int64(fs.Injected()) })
		}
	}
	tr := prt.New(store, o.ChunkSize)
	net := rpc.NewNetwork(env, cal.ClientNet)
	if o.Obs != nil {
		net.SetObs(o.Obs)
	}
	d.close = append(d.close, cluster.Close)
	lo := lease.Options{Period: cal.LeasePeriod, Workers: 8, ServiceCost: cal.LeaseOp, Obs: o.Obs,
		Limits: rpc.ServerLimits{MaxInbox: o.MaxInbox, ShedWait: o.ShedWait}}
	if o.LeaseQoSRate > 0 {
		burst := o.LeaseQoSBurst
		if burst <= 0 {
			burst = 8
		}
		lo.QoS = qos.NewLimiter(qos.Limits{Rate: o.LeaseQoSRate, Burst: burst})
		for t, lim := range o.QoSTenants {
			lo.QoS.SetTenant(t, lim)
		}
	}
	if o.LeaseShards > 1 {
		co := lease.ClusterOptions{Shards: o.LeaseShards, Manager: lo}
		if o.LeasePersist {
			co.Store = store
		}
		d.Leases = lease.NewCluster(net, co)
		d.close = append(d.close, d.Leases.Close)
	} else {
		mgr := lease.NewManager(net, lo)
		d.close = append(d.close, mgr.Close)
	}
	for i := 0; i < n; i++ {
		var router lease.Router
		if d.Leases != nil {
			// Each client owns its router: the cached ring updates lazily
			// from StaleRing redirects, per client.
			router = d.Leases.Router()
		}
		var tenant string
		if o.Tenants > 0 {
			tenant = fmt.Sprintf("tenant-%02d", i%o.Tenants)
		}
		// Each serving client enforces admission on its own leader path, so a
		// tenant's allowance is per leader, matching how capacity is owned.
		var limiter *qos.Limiter
		if o.QoSRate > 0 {
			burst := o.QoSBurst
			if burst <= 0 {
				burst = 8
			}
			limiter = qos.NewLimiter(qos.Limits{Rate: o.QoSRate, Burst: burst})
			for t, lim := range o.QoSTenants {
				limiter.SetTenant(t, lim)
			}
		}
		var ladder *qos.BrownoutLadder
		if o.Brownout {
			ladder = &qos.BrownoutLadder{}
		}
		var breaker *qos.BreakerConfig
		if o.Breaker {
			breaker = &qos.BreakerConfig{Seed: o.Seed + int64(i)*104729}
		}
		c := core.New(net, tr, core.Options{
			ID:           fmt.Sprintf("%04d", i),
			Tenant:       tenant,
			Cred:         types.Cred{Uid: 1000, Gid: 1000},
			LeaseRouter:  router,
			PermCache:    o.PermCache,
			FUSEOverhead: cal.FUSEOverhead,
			Cost: sim.CostModel{
				LocalMetaOp:    cal.ArkMetaOp,
				MemCopyPerByte: cal.MemCopyPerByte,
			},
			Journal: journal.Config{
				CommitInterval: time.Second, CommitWorkers: 4,
				CheckpointWorkers: 4, CheckpointFanout: 64,
				PipelineDepth: 8,
			},
			Cache: cache.Config{
				EntrySize:        o.ChunkSize,
				MaxEntries:       o.CacheEntries,
				MaxReadahead:     o.Readahead,
				FlushParallelism: 16,
				// The FUSE daemon's read-ahead thread pool bounds in-flight
				// prefetches; goofys's giant window wins by deeper pipelining,
				// not by a faster pipe.
				PrefetchParallelism: 24,
				Cost:                sim.CostModel{MemCopyPerByte: cal.MemCopyPerByte},
			},
			RPCWorkers:   cal.RPCWorkers,
			LeasePeriod:  cal.LeasePeriod,
			Retry:        o.Retry,
			Obs:          o.Obs,
			Seed:         o.Seed + int64(1000+i),
			QoS:          limiter,
			Brownout:     ladder,
			OpBudget:     o.OpBudget,
			Breaker:      breaker,
			ServerLimits: rpc.ServerLimits{MaxInbox: o.MaxInbox, ShedWait: o.ShedWait},
		})
		d.Mounts = append(d.Mounts, fsapi.Adapt(c))
		d.Ark = append(d.Ark, c)
		cc := c
		d.close = append(d.close, func() { _ = cc.Close() })
	}
	return d, nil
}

// CephOptions selects CephFS variants.
type CephOptions struct {
	NumMDS    int
	FUSE      bool
	ChunkSize int64
	// CacheEntries bounds the page cache per client.
	CacheEntries int
}

// BuildCeph deploys the CephFS-like baseline.
func BuildCeph(env sim.Env, cal Calibration, prof objstore.Profile, n int, o CephOptions) (*Deployment, error) {
	if o.NumMDS <= 0 {
		o.NumMDS = 1
	}
	if o.ChunkSize <= 0 {
		if o.FUSE {
			o.ChunkSize = 128 << 10 // FUSE page-sized transfers + tiny RA
		} else {
			o.ChunkSize = 2 << 20
		}
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 40
		if o.FUSE {
			o.CacheEntries = 640 // same bytes, smaller entries
		}
	}
	prof.MaxObjectSize = maxI64(prof.MaxObjectSize, o.ChunkSize)
	cluster := objstore.NewCluster(env, prof)
	tr := prt.New(cluster, o.ChunkSize)
	net := rpc.NewNetwork(env, cal.ClientNet)
	co := cephsim.DefaultClusterOptions(fmt.Sprintf("ceph%d", o.NumMDS), o.NumMDS)
	c := cephsim.NewCluster(net, tr, co)
	d := &Deployment{Cluster: cluster}
	d.close = append(d.close, cluster.Close, c.Close)
	for i := 0; i < n; i++ {
		m := c.NewMount(cephsim.MountOptions{
			FUSE:         o.FUSE,
			FUSEOverhead: cal.FUSEOverhead,
			Net:          cal.ClientNet,
			Cred:         types.Cred{Uid: 1000, Gid: 1000},
			Cache: cache.Config{
				EntrySize:        o.ChunkSize,
				MaxEntries:       o.CacheEntries,
				FlushParallelism: 16, // same write-back pool as ArkFS
				Cost:             sim.CostModel{MemCopyPerByte: cal.MemCopyPerByte},
			},
		})
		d.Mounts = append(d.Mounts, m)
	}
	return d, nil
}

// BuildMarFS deploys the MarFS-like baseline.
func BuildMarFS(env sim.Env, cal Calibration, prof objstore.Profile, n int, readFails bool) (*Deployment, error) {
	cluster := objstore.NewCluster(env, prof)
	tr := prt.New(cluster, 1<<20)
	net := rpc.NewNetwork(env, cal.ClientNet)
	opts := marfssim.DefaultOptions("marfs")
	opts.Net = cal.ClientNet
	opts.FUSEOverhead = cal.FUSEOverhead
	opts.ReadFails = readFails
	c := marfssim.NewCluster(net, tr, opts)
	d := &Deployment{Cluster: cluster}
	d.close = append(d.close, cluster.Close, c.Close)
	for i := 0; i < n; i++ {
		d.Mounts = append(d.Mounts, c.NewMount(types.Cred{Uid: 1000, Gid: 1000}))
	}
	return d, nil
}

// BuildS3FS deploys the S3FS-like baseline on the S3 profile.
func BuildS3FS(env sim.Env, cal Calibration, prof objstore.Profile, n int) (*Deployment, error) {
	prof.SizeOnlyPrefix = "" // path-keyed objects carry the data
	prof.SizeOnly = true     // fio reads don't parse payloads
	cluster := objstore.NewCluster(env, prof)
	d := &Deployment{Cluster: cluster}
	d.close = append(d.close, cluster.Close)
	for i := 0; i < n; i++ {
		opts := s3fssim.DefaultOptions()
		opts.FUSEOverhead = cal.FUSEOverhead
		d.Mounts = append(d.Mounts, s3fssim.New(env, cluster, opts))
	}
	return d, nil
}

// BuildGoofys deploys the goofys-like baseline on the S3 profile.
func BuildGoofys(env sim.Env, cal Calibration, prof objstore.Profile, n int) (*Deployment, error) {
	prof.SizeOnlyPrefix = ""
	prof.SizeOnly = true
	cluster := objstore.NewCluster(env, prof)
	d := &Deployment{Cluster: cluster}
	d.close = append(d.close, cluster.Close)
	for i := 0; i < n; i++ {
		opts := goofyssim.DefaultOptions()
		opts.FUSEOverhead = cal.FUSEOverhead
		opts.Net = prof.ClientNet
		d.Mounts = append(d.Mounts, goofyssim.New(env, cluster, opts))
	}
	return d, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
