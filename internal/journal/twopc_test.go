package journal

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// renameFixture builds two directories, each containing one file, and
// returns the ops that move "src/f" to "dst/g".
type renameFixture struct {
	tr       *prt.Translator
	src, dst types.Ino
	file     *types.Inode
	srcOps   []wire.Op
	dstOps   []wire.Op
}

func newRenameFixture(t *testing.T, tr *prt.Translator) *renameFixture {
	t.Helper()
	isrc := types.NewInoSource(21)
	fx := &renameFixture{tr: tr, src: isrc.Next(), dst: isrc.Next()}
	fx.file = &types.Inode{Ino: isrc.Next(), Type: types.TypeRegular, Mode: 0644, Nlink: 1}
	if err := tr.SaveInode(fx.file); err != nil {
		t.Fatal(err)
	}
	if err := tr.SaveDentries(fx.src, []wire.Dentry{{Name: "f", Ino: fx.file.Ino, Type: types.TypeRegular}}); err != nil {
		t.Fatal(err)
	}
	fx.srcOps = []wire.Op{{Kind: wire.OpDelDentry, Name: "f"}}
	fx.dstOps = []wire.Op{{Kind: wire.OpAddDentry, Name: "g", Ino: fx.file.Ino, FType: types.TypeRegular}}
	return fx
}

func (fx *renameFixture) assertRenamed(t *testing.T) {
	t.Helper()
	srcEnts, _ := fx.tr.LoadDentries(fx.src)
	dstEnts, _ := fx.tr.LoadDentries(fx.dst)
	if len(srcEnts) != 0 {
		t.Fatalf("src still has %v", srcEnts)
	}
	if len(dstEnts) != 1 || dstEnts[0].Name != "g" || dstEnts[0].Ino != fx.file.Ino {
		t.Fatalf("dst has %v", dstEnts)
	}
}

func (fx *renameFixture) assertUnrenamed(t *testing.T) {
	t.Helper()
	srcEnts, _ := fx.tr.LoadDentries(fx.src)
	dstEnts, _ := fx.tr.LoadDentries(fx.dst)
	if len(srcEnts) != 1 || srcEnts[0].Name != "f" {
		t.Fatalf("src lost the file: %v", srcEnts)
	}
	if len(dstEnts) != 0 {
		t.Fatalf("dst gained %v", dstEnts)
	}
}

func twoPCSetup(t *testing.T) (*prt.Translator, *Journal, func()) {
	t.Helper()
	env := sim.NewRealEnv()
	tr := prt.New(objstore.NewMemStore(), 64)
	j := New(env, tr, Config{CommitInterval: time.Hour, CommitWorkers: 2, CheckpointWorkers: 2})
	return tr, j, func() { j.Close(); env.Shutdown() }
}

func TestTwoPCHappyPath(t *testing.T) {
	tr, j, stop := twoPCSetup(t)
	defer stop()
	fx := newRenameFixture(t, tr)
	txid := j.NewTxnID()

	if err := j.WritePrepare(context.Background(), fx.src, txid, fx.dst, fx.srcOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WritePrepare(context.Background(), fx.dst, txid, fx.src, fx.dstOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteDecision(context.Background(), fx.src, txid, fx.dst, true); err != nil {
		t.Fatal(err)
	}
	if err := j.ResolvePrepared(context.Background(), fx.src, txid, true); err != nil {
		t.Fatal(err)
	}
	if err := j.ResolvePrepared(context.Background(), fx.dst, txid, true); err != nil {
		t.Fatal(err)
	}
	if err := j.DeleteDecision(fx.src, txid); err != nil {
		t.Fatal(err)
	}
	fx.assertRenamed(t)
	// All journal records cleaned up, including the GC'd decision.
	srcKeys, _ := tr.Store().List(prt.JournalPrefix(fx.src))
	dstKeys, _ := tr.Store().List(prt.JournalPrefix(fx.dst))
	if len(srcKeys)+len(dstKeys) != 0 {
		t.Fatalf("journal residue: %v %v", srcKeys, dstKeys)
	}
}

func TestTwoPCAbortDiscardsOps(t *testing.T) {
	tr, j, stop := twoPCSetup(t)
	defer stop()
	fx := newRenameFixture(t, tr)
	txid := j.NewTxnID()
	if err := j.WritePrepare(context.Background(), fx.src, txid, fx.dst, fx.srcOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WritePrepare(context.Background(), fx.dst, txid, fx.src, fx.dstOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteDecision(context.Background(), fx.src, txid, fx.dst, false); err != nil {
		t.Fatal(err)
	}
	if err := j.ResolvePrepared(context.Background(), fx.src, txid, false); err != nil {
		t.Fatal(err)
	}
	if err := j.ResolvePrepared(context.Background(), fx.dst, txid, false); err != nil {
		t.Fatal(err)
	}
	if err := j.DeleteDecision(fx.src, txid); err != nil {
		t.Fatal(err)
	}
	fx.assertUnrenamed(t)
}

func TestTwoPCRecoveryCommitted(t *testing.T) {
	// Both sides prepared, decision=commit written, then both leaders crash
	// before applying. Recovery of both directories must complete the
	// rename regardless of order.
	for _, order := range [][2]string{{"src", "dst"}, {"dst", "src"}} {
		t.Run(order[0]+"-first", func(t *testing.T) {
			tr, j, stop := twoPCSetup(t)
			fx := newRenameFixture(t, tr)
			txid := j.NewTxnID()
			if err := j.WritePrepare(context.Background(), fx.src, txid, fx.dst, fx.srcOps); err != nil {
				t.Fatal(err)
			}
			if err := j.WritePrepare(context.Background(), fx.dst, txid, fx.src, fx.dstOps); err != nil {
				t.Fatal(err)
			}
			if err := j.WriteDecision(context.Background(), fx.src, txid, fx.dst, true); err != nil {
				t.Fatal(err)
			}
			stop() // crash: nothing applied

			dirs := map[string]types.Ino{"src": fx.src, "dst": fx.dst}
			var reports []Report
			for _, which := range order {
				rep, err := Recover(tr, dirs[which])
				if err != nil {
					t.Fatal(err)
				}
				reports = append(reports, rep)
			}
			if reports[0].Committed2PC+reports[1].Committed2PC != 2 {
				t.Fatalf("2PC commits = %d+%d, want 2 total: %+v",
					reports[0].Committed2PC, reports[1].Committed2PC, reports)
			}
			fx.assertRenamed(t)
		})
	}
}

func TestTwoPCRecoveryPresumedAbort(t *testing.T) {
	// Both sides prepared but the coordinator crashed before writing any
	// decision: recovery must abort on both sides.
	tr, j, stop := twoPCSetup(t)
	fx := newRenameFixture(t, tr)
	txid := j.NewTxnID()
	if err := j.WritePrepare(context.Background(), fx.src, txid, fx.dst, fx.srcOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WritePrepare(context.Background(), fx.dst, txid, fx.src, fx.dstOps); err != nil {
		t.Fatal(err)
	}
	stop()

	for _, dir := range []types.Ino{fx.dst, fx.src} {
		rep, err := Recover(tr, dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Aborted2PC != 1 {
			t.Fatalf("dir %s: %+v", dir.Short(), rep)
		}
	}
	fx.assertUnrenamed(t)
}

func TestTwoPCRecoveryOneSideApplied(t *testing.T) {
	// The coordinator applied and cleaned up; the participant crashed before
	// applying. Participant recovery must find the retained decision record
	// and commit.
	tr, j, stop := twoPCSetup(t)
	fx := newRenameFixture(t, tr)
	txid := j.NewTxnID()
	if err := j.WritePrepare(context.Background(), fx.src, txid, fx.dst, fx.srcOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WritePrepare(context.Background(), fx.dst, txid, fx.src, fx.dstOps); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteDecision(context.Background(), fx.src, txid, fx.dst, true); err != nil {
		t.Fatal(err)
	}
	if err := j.ResolvePrepared(context.Background(), fx.src, txid, true); err != nil {
		t.Fatal(err)
	}
	stop() // participant crashes before applying

	// Coordinator recovery first: it must retain the decision record
	// because the participant's prepare is still outstanding.
	if _, err := Recover(tr, fx.src); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(tr, fx.dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed2PC != 1 {
		t.Fatalf("participant recovery: %+v", rep)
	}
	fx.assertRenamed(t)
	// A final coordinator recovery sweep garbage-collects the decision.
	if _, err := Recover(tr, fx.src); err != nil {
		t.Fatal(err)
	}
	keys, _ := tr.Store().List(prt.JournalPrefix(fx.src))
	if len(keys) != 0 {
		t.Fatalf("decision record leaked: %v", keys)
	}
}

func TestPrepareFlushesRunningTxnFirst(t *testing.T) {
	// Ordering: a buffered create in src must land in the journal before the
	// prepare record, so crash replay preserves operation order.
	tr, j, stop := twoPCSetup(t)
	fx := newRenameFixture(t, tr)
	src := types.NewInoSource(33)
	extra := &types.Inode{Ino: src.Next(), Type: types.TypeRegular, Nlink: 1}
	j.Log(context.Background(), fx.src, []wire.Op{
		{Kind: wire.OpSetInode, Inode: extra},
		{Kind: wire.OpAddDentry, Name: "pending", Ino: extra.Ino, FType: types.TypeRegular},
	})
	txid := j.NewTxnID()
	if err := j.WritePrepare(context.Background(), fx.src, txid, fx.dst, fx.srcOps); err != nil {
		t.Fatal(err)
	}
	stop()
	// Crash now: replay must apply the create (it was flushed by the
	// prepare), then presume-abort the prepare.
	rep, err := Recover(tr, fx.src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aborted2PC != 1 {
		t.Fatalf("report: %+v", rep)
	}
	ents, _ := tr.LoadDentries(fx.src)
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = true
	}
	if !names["pending"] || !names["f"] {
		t.Fatalf("expected both pending and f present: %v", ents)
	}
}
