package journal

import (
	"context"
	"errors"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// A forced commit (Barrier/Flush) must cancel the armed group-commit timer
// and clear the scheduled flag; otherwise the stale timer fires later and
// enqueues a redundant empty commit for a batch that was already written.
func TestBarrierCancelsArmedCommitTimer(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fault := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fault, 64)
	reg := obs.NewRegistry()
	j := New(env, tr, Config{CommitInterval: 30 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2, Obs: reg})
	defer j.Close()
	src := types.NewInoSource(20)
	dir := src.Next()

	j.Log(context.Background(), dir, createOps(dir, "f", mkFileInode(src, 1)))
	if err := j.Flush(dir); err != nil { // forced commit before the timer fires
		t.Fatal(err)
	}
	j.mu.Lock()
	dj := j.dirs[dir]
	j.mu.Unlock()
	dj.mu.Lock()
	scheduled, cancel := dj.scheduled, dj.cancel
	dj.mu.Unlock()
	if scheduled || cancel != nil {
		t.Fatalf("forced commit left the timer armed: scheduled=%v cancel=%p", scheduled, cancel)
	}

	// Let the original interval elapse: the superseded tick must not touch
	// the store or count another commit.
	commits := reg.Counter("journal.commits").Value()
	ops := fault.Ops()
	time.Sleep(120 * time.Millisecond)
	if got := reg.Counter("journal.commits").Value(); got != commits {
		t.Fatalf("stale timer committed again: %d -> %d", commits, got)
	}
	if got := fault.Ops(); got != ops {
		t.Fatalf("stale timer touched the store: %d -> %d ops", ops, got)
	}
}

// The flush sweep must loop until the directory set is stable: a directory
// journaled while the sweep is in progress is flushed by a later pass, not
// silently skipped.
func TestFlushSweepPicksUpConcurrentlyJournaledDir(t *testing.T) {
	_, tr, j, stop := testSetup(t)
	defer stop()
	src := types.NewInoSource(21)
	dirA, dirB := src.Next(), src.Next()
	j.Log(context.Background(), dirA, createOps(dirA, "a", mkFileInode(src, 1)))

	// The first flush races a concurrent Log to a directory the sweep's
	// initial snapshot has never seen.
	logged := false
	err := j.sweep(func(d types.Ino) error {
		if !logged {
			logged = true
			j.Log(context.Background(), dirB, createOps(dirB, "b", mkFileInode(src, 1)))
		}
		return j.Flush(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []types.Ino{dirA, dirB} {
		ents, err := tr.LoadDentries(d)
		if err != nil || len(ents) != 1 {
			t.Fatalf("dir %s not flushed by the sweep: %v, %v", d.Short(), ents, err)
		}
		if keys, _ := tr.Store().List(prt.JournalPrefix(d)); len(keys) != 0 {
			t.Fatalf("dir %s journal not empty after sweep: %v", d.Short(), keys)
		}
	}
}

// Appends on a closed journal are dropped instead of wedging a record no
// worker will ever write; barriers on a closed journal report shutdown.
func TestLogAfterCloseIsDropped(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fault := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fault, 64)
	j := New(env, tr, Config{CommitInterval: time.Hour, CommitWorkers: 1, CheckpointWorkers: 1})
	j.Close()
	src := types.NewInoSource(22)
	dir := src.Next()

	j.Log(context.Background(), dir, createOps(dir, "late", mkFileInode(src, 1)))
	if got := fault.Ops(); got != 0 {
		t.Fatalf("Log after Close touched the store %d times", got)
	}
	if err := j.Barrier(dir); !errors.Is(err, types.ErrIO) {
		t.Fatalf("barrier on closed journal: %v, want shutdown error", err)
	}
}

// Barrier waits for durability only: a record that landed in the object
// store satisfies it even when the checkpoint behind it fails, because a
// durable record is recoverable by replay. Flush is the strong form and
// surfaces the checkpoint failure, leaving the record for recovery.
func TestBarrierIsDurabilityOnly(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		fault := objstore.NewFaultStore(objstore.NewMemStore())
		fault.InjectLatency(env, time.Millisecond)
		tr := prt.New(fault, 64)
		reg := obs.NewRegistry()
		j := New(env, tr, Config{CommitInterval: time.Hour, CommitWorkers: 2, CheckpointWorkers: 2, Obs: reg})
		defer j.Close()
		src := types.NewInoSource(23)
		dir := src.Next()

		fault.FailNext(prt.PrefixInode, 1000) // every checkpoint apply fails
		j.Log(context.Background(), dir, createOps(dir, "f", mkFileInode(src, 1)))
		if err := j.Barrier(dir); err != nil {
			t.Fatalf("barrier must succeed on a durable record: %v", err)
		}
		if keys, _ := tr.Store().List(prt.JournalPrefix(dir)); len(keys) != 1 {
			t.Fatalf("durable journal record missing: %v", keys)
		}
		if err := j.Flush(dir); !errors.Is(err, types.ErrIO) {
			t.Fatalf("flush must surface the checkpoint failure, got %v", err)
		}
		if v := reg.Counter("journal.checkpoint.errors").Value(); v == 0 {
			t.Fatal("checkpoint error not counted")
		}
		// The failed checkpoint leaves the record in place: recovery replays it.
		if keys, _ := tr.Store().List(prt.JournalPrefix(dir)); len(keys) != 1 {
			t.Fatalf("journal record lost despite failed checkpoint: %v", keys)
		}
	})
}

// With PipelineDepth > 1 the journal starts record N+1's PUT while N's is
// still in flight, so a burst of timed commits against a slow store finishes
// in a fraction of the serialized time.
func TestPipelineOverlapsJournalPuts(t *testing.T) {
	elapsed := func(depth int) time.Duration {
		env := sim.NewVirtEnv()
		var total time.Duration
		env.Run(func() {
			fault := objstore.NewFaultStore(objstore.NewMemStore())
			fault.InjectLatency(env, 50*time.Millisecond)
			tr := prt.New(fault, 64)
			j := New(env, tr, Config{CommitInterval: time.Millisecond, CommitWorkers: 8,
				CheckpointWorkers: 2, PipelineDepth: depth})
			defer j.Close()
			src := types.NewInoSource(24)
			dir := src.Next()
			start := env.Now()
			for i := 0; i < 8; i++ {
				child := mkFileInode(src, 1)
				j.Log(context.Background(), dir, createOps(dir, "f"+string(rune('a'+i)), child))
				env.Sleep(2 * time.Millisecond) // let the timed commit seal this record
			}
			if err := j.Barrier(dir); err != nil {
				t.Fatal(err)
			}
			total = env.Now() - start
		})
		return total
	}
	serial, piped := elapsed(1), elapsed(8)
	// 8 records x 50ms PUT latency: serialized is ~400ms, pipelined is bounded
	// by the last seal plus one PUT. Require at least a 2x gap so scheduler
	// noise can never flake the assertion.
	if piped*2 >= serial {
		t.Fatalf("pipelining gained nothing: depth=1 %v vs depth=8 %v", serial, piped)
	}
}

// Overlapping PUTs must not reorder a directory's checkpoints: records are
// applied in sequence order no matter which commit worker lands first.
func TestPipelinePreservesPerDirOrder(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		fault := objstore.NewFaultStore(objstore.NewMemStore())
		fault.InjectLatency(env, 10*time.Millisecond)
		tr := prt.New(fault, 64)
		j := New(env, tr, Config{CommitInterval: time.Millisecond, CommitWorkers: 8,
			CheckpointWorkers: 4, PipelineDepth: 8})
		defer j.Close()
		src := types.NewInoSource(25)
		dir := src.Next()

		// Each record replaces the same name with a fresh inode. Applying any
		// record out of order leaves the wrong inode (or nothing) behind.
		var last *types.Inode
		for i := 0; i < 8; i++ {
			child := mkFileInode(src, int64(i+1))
			ops := []wire.Op{}
			if last != nil {
				ops = append(ops,
					wire.Op{Kind: wire.OpDelDentry, Name: "f"},
					wire.Op{Kind: wire.OpDelInode, Ino: last.Ino})
			}
			ops = append(ops,
				wire.Op{Kind: wire.OpSetInode, Inode: child},
				wire.Op{Kind: wire.OpAddDentry, Name: "f", Ino: child.Ino, FType: child.Type})
			j.Log(context.Background(), dir, ops)
			last = child
			env.Sleep(2 * time.Millisecond) // one sealed record per iteration
		}
		if err := j.Flush(dir); err != nil {
			t.Fatal(err)
		}
		ents, err := tr.LoadDentries(dir)
		if err != nil || len(ents) != 1 || ents[0].Ino != last.Ino {
			t.Fatalf("out-of-order checkpoint: %v, %v (want f -> %s)", ents, err, last.Ino.Short())
		}
		got, err := tr.LoadInode(last.Ino)
		if err != nil || got.Size != 8 {
			t.Fatalf("final inode: %+v, %v", got, err)
		}
	})
}

// One expiring commit timer seals every dirty directory: independent
// directories share a wakeup instead of each paying its own interval.
func TestGroupCommitSealsAllDirtyDirs(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		tr := prt.New(objstore.NewMemStore(), 64)
		reg := obs.NewRegistry()
		j := New(env, tr, Config{CommitInterval: 50 * time.Millisecond, CommitWorkers: 4,
			CheckpointWorkers: 4, Obs: reg})
		defer j.Close()
		src := types.NewInoSource(26)
		dirs := []types.Ino{src.Next(), src.Next(), src.Next()}
		for i, d := range dirs {
			j.Log(context.Background(), d, createOps(d, "f"+string(rune('a'+i)), mkFileInode(src, 1)))
		}
		env.Sleep(60 * time.Millisecond) // one tick covers all three directories
		if v := reg.Counter("journal.commits").Value(); v != 3 {
			t.Fatalf("commits after one tick = %d, want 3", v)
		}
		if v := reg.Counter("journal.group.seals").Value(); v != 2 {
			t.Fatalf("group seals = %d, want 2 (three dirs sharing one tick)", v)
		}
		for _, d := range dirs {
			ents, err := tr.LoadDentries(d)
			if err != nil || len(ents) != 1 {
				t.Fatalf("dir %s not checkpointed by the shared tick: %v, %v", d.Short(), ents, err)
			}
		}
	})
}
