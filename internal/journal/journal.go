// Package journal implements ArkFS's per-directory journaling (paper §III-E)
// with an asynchronous, pipelined commit path.
//
// Each directory a client leads gets its own journal: a sequence of objects
// "j:<dir>:<seq>" holding CRC-protected compound transactions. Metadata
// mutations are acknowledged immediately from the in-memory metatable and
// accumulate in a running transaction for up to the commit interval (1 s by
// default). When the interval tick fires, every dirty directory is sealed in
// one pass (cross-directory group commit) and the sealed records feed a
// pipelined PUT stage: up to PipelineDepth records of the same directory may
// be in flight at once, each written by any put worker, so record N+1 is
// encoded and sent while record N is still on the wire.
//
// Sequence order is preserved not by serializing the PUTs but by the
// per-directory durability watermark: durableTo is the lowest sequence not
// yet known durable, and it only advances contiguously. Checkpoints — the
// application of a committed record to the original inode/dentry objects —
// are dispatched strictly in sequence order as the watermark passes each
// record, so the originals always reflect a prefix of the journal. An
// operation externalizes (becomes visible to another client via lease
// handoff, fsync, or 2PC) only once every record it depends on is under the
// watermark:
//
//   - Barrier waits for durability only (the fsync path): a durable record
//     is recoverable by the next leader's replay, which is all fsync
//     promises.
//   - Flush waits for durability and checkpoint (the lease-handoff path): a
//     cleanly released directory is loaded without journal replay, so its
//     journal must be empty.
//
// If a journal PUT fails permanently, the pipeline for that directory is
// poisoned: records that landed above the gap are deleted (the journal must
// stay a replayable prefix), queued records are dropped, and the error
// surfaces at the next barrier — acknowledgements are tentative until a
// barrier confirms them, exactly the contract fsync(2) has always had.
//
// Operations spanning two directories (RENAME) use a two-phase commit: both
// journals receive a prepare record, the coordinating directory's journal
// receives the decision record, and recovery resolves prepared-but-undecided
// transactions by consulting the coordinator's journal (presumed abort). The
// prepare is written only after a durability barrier on the directory, so a
// prepared transaction never depends on a record that could still be lost.
package journal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/crashpoint"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Config tunes a client's journaling machinery.
type Config struct {
	// CommitInterval is how long a running transaction buffers mutations
	// before being committed (paper: 1 second).
	CommitInterval time.Duration
	// CommitWorkers and CheckpointWorkers size the two thread pools.
	CommitWorkers     int
	CheckpointWorkers int
	// CheckpointFanout bounds the concurrent inode-object writes one
	// transaction's checkpoint issues (they are independent objects).
	CheckpointFanout int
	// PipelineDepth bounds how many journal PUTs of one directory may be in
	// flight at once. 1 serializes appends (the pre-async behavior); higher
	// values overlap record N+1's PUT with record N's.
	PipelineDepth int
	// Crash, when non-nil, announces the commit/checkpoint/2PC crash sites
	// this journal passes through; chaos scenarios arm it. Nil is inert.
	Crash *crashpoint.Set
	// Obs, when non-nil, receives journal metrics: append/commit/checkpoint
	// counters, commit and checkpoint latency histograms (environment clock),
	// running-transaction buffer occupancy, and 2PC outcomes. Nil is inert.
	Obs *obs.Registry
	// Trace, when non-nil, receives child spans for the asynchronous half of
	// every journaled mutation: commit, checkpoint, 2PC records, and the
	// object-store verbs underneath them, parented under the trace of the
	// operation that opened the transaction. Nil is inert.
	Trace *obs.Tracer
}

// DefaultConfig matches the paper's settings plus the async pipeline depth.
func DefaultConfig() Config {
	return Config{CommitInterval: time.Second, CommitWorkers: 4, CheckpointWorkers: 4, CheckpointFanout: 16, PipelineDepth: 4}
}

// Journal manages every per-directory journal owned by one client.
type Journal struct {
	env sim.Env
	tr  *prt.Translator
	cfg Config

	putQs  []*sim.Chan[*putItem]
	ckptQs []*sim.Chan[*ckptItem]

	// Metric sinks (nil-safe no-ops when cfg.Obs is nil).
	cAppends     *obs.Counter
	cOps         *obs.Counter
	gBuffer      *obs.Gauge
	cCommits     *obs.Counter
	cCommitErrs  *obs.Counter
	hCommit      *obs.Histogram
	hCommitWait  *obs.Histogram
	hWatermark   *obs.Histogram
	cCkpts       *obs.Counter
	cCkptErrs    *obs.Counter
	hCkpt        *obs.Histogram
	cGroupSeals  *obs.Counter
	cBarriers    *obs.Counter
	gInflight    *obs.Gauge
	c2pcPrepares *obs.Counter
	c2pcCommits  *obs.Counter
	c2pcAborts   *obs.Counter
	trace        *obs.Tracer // nil-safe span sink

	seqs   atomic.Uint64 // txn id counter
	idBase atomic.Uint64 // client-unique high bits for txn ids

	// backlog counts sealed records that are not yet durable (queued behind
	// the pipeline window plus in flight), across all directories. Unlike the
	// gauges above it is maintained even without a metrics registry: it is the
	// overload signal Pressure() feeds the leader's brownout ladder.
	backlog atomic.Int64

	mu     sync.Mutex
	closed bool
	dirs   map[types.Ino]*dirJournal
}

// dirJournal is the journal state of a single led directory.
type dirJournal struct {
	dir types.Ino

	mu        sync.Mutex
	running   []wire.Op       // the running compound transaction
	runSC     obs.SpanContext // trace of the op that opened the running txn
	runTenant string          // tenant of the op that opened the running txn
	scheduled bool            // a timed commit is already armed
	cancel    func() bool
	nextSeq   uint64

	// Pipeline state. Sequences in [durableTo, nextSeq) are sealed and either
	// queued, in flight, or landed out of order; durableTo advances only
	// contiguously, and checkpoints dispatch in sequence order as it does.
	gen       uint64             // bumped on failure; stale completions self-delete
	queued    []*record          // sealed, waiting for a pipeline slot
	inflight  int                // PUTs currently in flight
	landed    map[uint64]*record // durable out of order, awaiting the watermark
	durableTo uint64             // every seq < durableTo is durable (or a tolerated hole)
	waiters   []durWaiter

	prepared  map[uint64]uint64 // txid -> journal seq of the prepare record
	prepOps   map[uint64][]wire.Op
	decisions map[uint64]uint64 // txid -> journal seq of the decision record
	err       error             // first async commit/checkpoint error, surfaced at a barrier

	// ckptStuck is set when a checkpoint failed to apply its transaction.
	// Unlike err it is never consumed by a barrier: the unapplied record is
	// persistent state (it sits in the journal awaiting ordered replay), so
	// every Flush must keep failing — forcing an unclean release and a
	// NeedRecovery grant for the next leader — until recovery resets the
	// directory. Later records are left unapplied too (see ckptLoop): applying
	// around the gap could reorder same-name mutations.
	ckptStuck error
	// stale holds journal keys whose transactions applied but whose
	// invalidation failed. Replaying them is idempotent, so they are not an
	// error — but a clean release promises an empty journal, so Flush retries
	// the deletes and fails the flush if any survive.
	stale []string
}

// record is one sealed journal transaction moving through the PUT pipeline.
// A record with a nil txn is a sequence hole: a slot consumed by a
// synchronously written 2PC record or abandoned by a failed PUT, which the
// watermark passes without dispatching a checkpoint.
type record struct {
	seq    uint64
	gen    uint64
	key    string
	txn    *wire.Txn
	ops    []wire.Op
	sc     obs.SpanContext
	tenant string        // tenant of the op that opened the batch, for span attribution
	sealAt time.Duration // env clock at seal; decomposes commit latency into queue wait vs PUT
}

// durWaiter is a parked durability barrier: woken once durableTo >= target.
type durWaiter struct {
	target uint64
	ch     *sim.Chan[struct{}]
}

type putItem struct {
	dj  *dirJournal
	rec *record
}

type ckptItem struct {
	dj     *dirJournal
	txn    *wire.Txn
	seq    uint64
	ops    []wire.Op       // ops to apply (may differ from txn.Ops for 2PC applies)
	del    []string        // journal object keys to delete after applying
	sc     obs.SpanContext // trace the checkpoint span parents under
	tenant string          // tenant attribution inherited from the record
	done   *sim.Chan[error]
}

// New starts a client's journaling workers.
func New(env sim.Env, tr *prt.Translator, cfg Config) *Journal {
	if cfg.CommitInterval <= 0 {
		cfg.CommitInterval = time.Second
	}
	if cfg.CommitWorkers <= 0 {
		cfg.CommitWorkers = 1
	}
	if cfg.CheckpointWorkers <= 0 {
		cfg.CheckpointWorkers = 1
	}
	if cfg.CheckpointFanout <= 0 {
		cfg.CheckpointFanout = 16
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 4
	}
	j := &Journal{env: env, tr: tr, cfg: cfg, trace: cfg.Trace, dirs: make(map[types.Ino]*dirJournal)}
	j.cAppends = cfg.Obs.Counter("journal.appends")
	j.cOps = cfg.Obs.Counter("journal.ops")
	j.gBuffer = cfg.Obs.Gauge("journal.buffer.ops")
	j.cCommits = cfg.Obs.Counter("journal.commits")
	j.cCommitErrs = cfg.Obs.Counter("journal.commit.errors")
	j.hCommit = cfg.Obs.Histogram("journal.commit.latency")
	j.hCommitWait = cfg.Obs.Histogram("journal.commit.wait")
	j.hWatermark = cfg.Obs.Histogram("journal.watermark.latency")
	j.cCkpts = cfg.Obs.Counter("journal.checkpoints")
	j.cCkptErrs = cfg.Obs.Counter("journal.checkpoint.errors")
	j.hCkpt = cfg.Obs.Histogram("journal.checkpoint.latency")
	j.cGroupSeals = cfg.Obs.Counter("journal.group.seals")
	j.cBarriers = cfg.Obs.Counter("journal.barriers")
	j.gInflight = cfg.Obs.Gauge("journal.pipeline.inflight")
	j.c2pcPrepares = cfg.Obs.Counter("journal.2pc.prepares")
	j.c2pcCommits = cfg.Obs.Counter("journal.2pc.commits")
	j.c2pcAborts = cfg.Obs.Counter("journal.2pc.aborts")
	for i := 0; i < cfg.CommitWorkers; i++ {
		q := sim.NewChan[*putItem](env)
		j.putQs = append(j.putQs, q)
		env.Go(func() { j.putLoop(q) })
	}
	for i := 0; i < cfg.CheckpointWorkers; i++ {
		q := sim.NewChan[*ckptItem](env)
		j.ckptQs = append(j.ckptQs, q)
		env.Go(func() { j.ckptLoop(q) })
	}
	return j
}

// Close stops the workers. Buffered but uncommitted mutations are dropped and
// later Log calls are ignored — call FlushAll first for a clean shutdown.
// Parked barriers are woken with a shutdown error.
func (j *Journal) Close() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.closed = true
	djs := make([]*dirJournal, 0, len(j.dirs))
	for _, dj := range j.dirs {
		djs = append(djs, dj)
	}
	j.mu.Unlock()
	for _, q := range j.putQs {
		q.Close()
	}
	for _, q := range j.ckptQs {
		q.Close()
	}
	for _, dj := range djs {
		dj.mu.Lock()
		if dj.cancel != nil {
			dj.cancel()
			dj.scheduled, dj.cancel = false, nil
		}
		ws := dj.waiters
		dj.waiters = nil
		dj.mu.Unlock()
		for _, w := range ws {
			w.ch.Close() // Recv returns !ok: the barrier reports shutdown
		}
	}
}

// ckptQ returns the checkpoint queue statically assigned to dir: one
// directory's checkpoints always serialize through the same worker, which is
// what keeps them applied in sequence order.
func (j *Journal) ckptQ(dir types.Ino) *sim.Chan[*ckptItem] {
	return j.ckptQs[int(dir.Lo()%uint64(len(j.ckptQs)))]
}

// dirJournal returns (creating if needed) the journal of dir.
func (j *Journal) dirJournal(dir types.Ino) *dirJournal {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dirJournalLocked(dir)
}

func (j *Journal) dirJournalLocked(dir types.Ino) *dirJournal {
	dj := j.dirs[dir]
	if dj == nil {
		dj = &dirJournal{
			dir:      dir,
			landed:   make(map[uint64]*record),
			prepared: make(map[uint64]uint64),
			prepOps:  make(map[uint64][]wire.Op),
		}
		j.dirs[dir] = dj
	}
	return dj
}

// SetNextSeq primes the journal sequence for dir; the new leader calls this
// after recovery with one past the highest sequence it observed. Everything
// below that sequence was either replayed or discarded, so the durability
// watermark starts there too.
func (j *Journal) SetNextSeq(dir types.Ino, seq uint64) {
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	dj.nextSeq = seq
	dj.durableTo = seq
	// Recovery replayed (and invalidated) everything below seq, so any stuck
	// or stale pipeline state from the previous leadership is obsolete. The
	// generation bump makes in-flight completions of old PUTs self-delete.
	dj.ckptStuck = nil
	dj.stale = nil
	dj.err = nil
	dj.gen++
	j.backlog.Add(-int64(len(dj.queued)))
	dj.queued = nil
	for s := range dj.landed {
		delete(dj.landed, s)
	}
	dj.mu.Unlock()
}

// Pressure reports how far the commit pipeline is backed up: the number of
// sealed-but-not-yet-durable records (in flight plus parked behind full
// per-directory windows) relative to the aggregate pipeline capacity,
// CommitWorkers × PipelineDepth. 0 means idle, 1 means every pipeline slot
// the journal could use is occupied, and values above 1 mean records are
// queuing faster than the object store lands them — the overload signal the
// leader's brownout ladder sheds expensive operations on.
func (j *Journal) Pressure() float64 {
	window := j.cfg.CommitWorkers * j.cfg.PipelineDepth
	if window <= 0 {
		window = 1
	}
	return float64(j.backlog.Load()) / float64(window)
}

// NewTxnID returns a fresh transaction id for 2PC: the client-unique base
// (see SetTxnIDBase) plus a local counter, so ids never collide across the
// clients whose journals a recovery scan may compare.
func (j *Journal) NewTxnID() uint64 {
	return j.idBase.Load() | j.seqs.Add(1)
}

// SetTxnIDBase installs the client-unique high bits of transaction ids.
func (j *Journal) SetTxnIDBase(base uint64) {
	j.idBase.Store(base << 32)
}

// Log appends metadata mutations to dir's running transaction and arms the
// group-commit timer. It is the fast path: the op was already acknowledged
// from the metatable, and this is pure memory work. The trace identity in ctx
// is captured when this append opens a fresh running transaction, so the
// eventual commit/checkpoint spans link back to the operation that started
// the batch (later appends ride along untraced — a batch has one owner, the
// way a group commit has one leader). Appends on a closed journal are
// dropped: a directory journaled concurrently with Close would otherwise
// wedge a record that no worker will ever write.
func (j *Journal) Log(ctx context.Context, dir types.Ino, ops []wire.Op) {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	dj := j.dirJournalLocked(dir)
	j.mu.Unlock()
	j.cAppends.Inc()
	j.cOps.Add(int64(len(ops)))
	j.gBuffer.Add(int64(len(ops)))
	dj.mu.Lock()
	if len(dj.running) == 0 && ctx != nil {
		dj.runSC = obs.SpanContextFrom(ctx)
		dj.runTenant = obs.TenantFrom(ctx)
	}
	dj.running = append(dj.running, ops...)
	if !dj.scheduled {
		dj.scheduled = true
		dj.cancel = j.env.After(j.cfg.CommitInterval, j.groupCommit)
	}
	dj.mu.Unlock()
}

// groupCommit is the commit tick: the first directory whose interval expires
// seals every dirty directory in one deterministic pass, so independent
// directories share one wakeup and their records enter the PUT pipeline
// together (cross-directory group commit).
func (j *Journal) groupCommit() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	djs := make([]*dirJournal, 0, len(j.dirs))
	for _, dj := range j.dirs {
		djs = append(djs, dj)
	}
	j.mu.Unlock()
	// Map order is randomized; seal in inode order so virtual-clock runs of
	// the same seed schedule identically.
	sort.Slice(djs, func(a, b int) bool {
		return bytes.Compare(djs[a].dir[:], djs[b].dir[:]) < 0
	})
	sealed := 0
	for _, dj := range djs {
		dj.mu.Lock()
		if dj.scheduled {
			if dj.cancel != nil {
				dj.cancel()
			}
			dj.scheduled, dj.cancel = false, nil
			if j.sealLocked(dj) {
				sealed++
			}
		}
		dj.mu.Unlock()
	}
	if sealed > 1 {
		j.cGroupSeals.Add(int64(sealed - 1)) // records that rode a shared tick
	}
}

// sealLocked turns dir's running transaction into a sealed record, assigns
// its sequence, and feeds the PUT pipeline. Caller holds dj.mu. Reports
// whether a record was sealed (false for an empty running transaction).
func (j *Journal) sealLocked(dj *dirJournal) bool {
	if len(dj.running) == 0 {
		return false
	}
	ops, sc, tenant := dj.running, dj.runSC, dj.runTenant
	dj.running, dj.runSC, dj.runTenant = nil, obs.SpanContext{}, ""
	j.gBuffer.Add(-int64(len(ops)))
	seq := dj.nextSeq
	dj.nextSeq++
	rec := &record{
		seq:    seq,
		gen:    dj.gen,
		sealAt: j.env.Now(),
		key:    prt.JournalKey(dj.dir, seq),
		txn: &wire.Txn{
			ID:    j.NewTxnID(),
			Dir:   dj.dir,
			Kind:  wire.TxnNormal,
			Stamp: j.env.Now(),
			Ops:   ops,
		},
		ops:    ops,
		sc:     sc,
		tenant: tenant,
	}
	j.dispatchLocked(dj, rec)
	return true
}

// dispatchLocked hands a sealed record to a put worker, or parks it in the
// backlog when the directory's pipeline window is full. Caller holds dj.mu.
// Records of one directory spread over the put workers by sequence, which is
// what lets record N+1's PUT start while N's is still in flight.
func (j *Journal) dispatchLocked(dj *dirJournal, rec *record) {
	j.backlog.Add(1)
	if dj.inflight >= j.cfg.PipelineDepth {
		dj.queued = append(dj.queued, rec)
		return
	}
	dj.inflight++
	j.gInflight.Add(1)
	q := j.putQs[int((dj.dir.Lo()+rec.seq)%uint64(len(j.putQs)))]
	if !q.Send(&putItem{dj: dj, rec: rec}) {
		dj.inflight--
		j.gInflight.Add(-1)
		j.backlog.Add(-1)
		j.poisonLocked(dj, fmt.Errorf("journal: shut down during commit of %s: %w", rec.key, types.ErrIO))
	}
}

// putLoop is a put worker: it writes sealed records to the object store and
// reports their durability to the owning directory's watermark.
func (j *Journal) putLoop(q *sim.Chan[*putItem]) {
	for {
		it, ok := q.Recv()
		if !ok {
			return
		}
		dj, rec := it.dj, it.rec
		j.cfg.Crash.Hit(crashpoint.PreJournalPut)
		start := j.env.Now()
		// Queue wait: seal → PUT start. Separates time spent behind the
		// pipeline window / worker queues from the PUT itself.
		wait := start - rec.sealAt
		j.hCommitWait.ObserveTrace(wait, rec.sc.Trace)
		sp := j.trace.StartChild(rec.sc, "journal.commit", rec.key)
		sp.SetDir(dj.dir)
		sp.SetTenant(rec.tenant)
		sp.SetWait(wait)
		put := j.trace.StartChild(sp.Context(), "objstore.put", rec.key)
		put.SetTenant(rec.tenant)
		err := j.tr.Store().Put(rec.key, wire.EncodeTxn(rec.txn))
		put.End(err)
		sp.End(err)
		if err != nil {
			j.putFailed(dj, rec, err)
			continue
		}
		j.cCommits.Inc()
		j.hCommit.ObserveTrace(j.env.Now()-start, rec.sc.Trace)
		// The record is durable: from here on a crash must be recoverable by
		// the next leader's journal replay.
		j.cfg.Crash.Hit(crashpoint.PostJournalPut)
		j.putLanded(dj, rec)
	}
}

// putLanded marks one record durable, advances the contiguous watermark, and
// refills the pipeline window from the backlog. A record whose generation is
// stale landed after its pipeline was poisoned; its object is deleted so the
// journal stays a replayable prefix.
func (j *Journal) putLanded(dj *dirJournal, rec *record) {
	var doomed []string
	dj.mu.Lock()
	dj.inflight--
	j.gInflight.Add(-1)
	j.backlog.Add(-1)
	if rec.gen != dj.gen {
		doomed = append(doomed, rec.key)
	} else {
		dj.landed[rec.seq] = rec
		j.advanceLocked(dj)
		for len(dj.queued) > 0 && dj.inflight < j.cfg.PipelineDepth {
			next := dj.queued[0]
			dj.queued = dj.queued[1:]
			j.backlog.Add(-1) // re-counted by dispatchLocked
			j.dispatchLocked(dj, next)
		}
	}
	dj.mu.Unlock()
	for _, key := range doomed {
		_ = j.tr.Store().Delete(key)
	}
}

// putFailed poisons dir's pipeline after a permanent PUT failure.
func (j *Journal) putFailed(dj *dirJournal, rec *record, err error) {
	j.cCommitErrs.Inc()
	var doomed []string
	dj.mu.Lock()
	dj.inflight--
	j.gInflight.Add(-1)
	j.backlog.Add(-1)
	if rec.gen == dj.gen {
		doomed = j.poisonLocked(dj, fmt.Errorf("journal: commit %s: %w", rec.key, err))
	}
	dj.mu.Unlock()
	for _, key := range doomed {
		_ = j.tr.Store().Delete(key)
	}
}

// poisonLocked handles a lost record: the error is recorded for the next
// barrier, records landed above the gap are scheduled for deletion (returned
// for the caller to delete outside the lock — replaying them without their
// predecessor could apply ops whose prerequisites were lost), the backlog is
// dropped, in-flight PUTs are invalidated via the generation counter, and the
// watermark jumps over the wreckage so future records start clean. Caller
// holds dj.mu.
func (j *Journal) poisonLocked(dj *dirJournal, err error) (doomed []string) {
	if dj.err == nil {
		dj.err = err
	}
	dj.gen++
	for seq, r := range dj.landed {
		if r.txn != nil {
			doomed = append(doomed, r.key)
		}
		delete(dj.landed, seq)
	}
	j.backlog.Add(-int64(len(dj.queued)))
	dj.queued = nil
	dj.durableTo = dj.nextSeq
	j.wakeLocked(dj)
	return doomed
}

// advanceLocked walks the watermark over contiguously landed records,
// dispatching each one's checkpoint in sequence order, then wakes any
// barriers the new watermark satisfies. Caller holds dj.mu.
func (j *Journal) advanceLocked(dj *dirJournal) {
	for {
		r, ok := dj.landed[dj.durableTo]
		if !ok {
			break
		}
		delete(dj.landed, dj.durableTo)
		dj.durableTo++
		if r.txn == nil {
			continue // sequence hole: nothing to checkpoint
		}
		// Time to watermark: seal → contiguous durability. This is what a
		// barrier waiting on this record actually experiences.
		j.hWatermark.ObserveTrace(j.env.Now()-r.sealAt, r.sc.Trace)
		if !j.ckptQ(dj.dir).Send(&ckptItem{
			dj: dj, txn: r.txn, seq: r.seq, ops: r.ops, del: []string{r.key},
			sc: r.sc, tenant: r.tenant,
		}) {
			if dj.err == nil {
				dj.err = fmt.Errorf("journal: shut down before checkpoint of %s: %w", r.key, types.ErrIO)
			}
		}
	}
	j.wakeLocked(dj)
}

// wakeLocked releases every barrier whose target the watermark has reached.
// Caller holds dj.mu.
func (j *Journal) wakeLocked(dj *dirJournal) {
	kept := dj.waiters[:0]
	for _, w := range dj.waiters {
		if dj.durableTo >= w.target {
			w.ch.Send(struct{}{})
		} else {
			kept = append(kept, w)
		}
	}
	dj.waiters = kept
}

// markSeqResolved records a sequence slot that was written (or abandoned)
// outside the pipeline — 2PC prepare and decision records are PUT
// synchronously — so the durability watermark can pass it.
func (j *Journal) markSeqResolved(dj *dirJournal, seq uint64) {
	dj.mu.Lock()
	if seq >= dj.durableTo {
		dj.landed[seq] = &record{seq: seq, gen: dj.gen}
		j.advanceLocked(dj)
	}
	dj.mu.Unlock()
}

// Barrier seals dir's running transaction — cancelling the armed commit
// timer under the directory lock, so a superseded tick cannot enqueue
// redundant work — and waits until every record this client sealed for dir
// is durable in the object store. It does not wait for checkpoints: a
// durable record is recoverable by the next leader's replay, which is all
// fsync promises. Any earlier async commit or checkpoint error is surfaced
// (and consumed) here.
func (j *Journal) Barrier(dir types.Ino) error {
	j.cBarriers.Inc()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: shut down during barrier: %w", types.ErrIO)
	}
	dj := j.dirJournalLocked(dir)
	j.mu.Unlock()

	dj.mu.Lock()
	if dj.scheduled {
		if dj.cancel != nil {
			dj.cancel() // the forced commit supersedes the timed one
		}
		dj.scheduled, dj.cancel = false, nil
	}
	j.sealLocked(dj)
	if dj.durableTo >= dj.nextSeq {
		err := dj.err
		dj.err = nil
		dj.mu.Unlock()
		return err
	}
	w := durWaiter{target: dj.nextSeq, ch: sim.NewChan[struct{}](j.env)}
	dj.waiters = append(dj.waiters, w)
	dj.mu.Unlock()
	if _, ok := w.ch.Recv(); !ok {
		return fmt.Errorf("journal: shut down during barrier: %w", types.ErrIO)
	}
	return dj.takeErr()
}

// Flush is the strong barrier: it commits dir's running transaction and
// waits until every record is durable and checkpointed into the original
// objects, leaving the journal empty. Lease handoff requires it — a cleanly
// released directory is loaded by the next leader without journal replay.
func (j *Journal) Flush(dir types.Ino) error {
	barrierErr := j.Barrier(dir)
	// Even after a commit failure the records that did land have checkpoints
	// in flight; drain them so the handoff invariant (empty journal) holds.
	dj := j.dirJournal(dir)
	done := sim.NewChan[error](j.env)
	if !j.ckptQ(dir).Send(&ckptItem{dj: dj, done: done}) {
		if barrierErr != nil {
			return barrierErr
		}
		return fmt.Errorf("journal: shut down during flush: %w", types.ErrIO)
	}
	err, ok := done.Recv()
	if !ok {
		if barrierErr != nil {
			return barrierErr
		}
		return fmt.Errorf("journal: shut down during flush: %w", types.ErrIO)
	}
	if barrierErr != nil {
		return barrierErr
	}
	return err
}

// FlushAll flushes every directory this client has journaled, looping until
// the directory set is stable: a directory journaled concurrently with the
// sweep is picked up by a later pass instead of being silently skipped.
func (j *Journal) FlushAll() error { return j.sweep(j.Flush) }

// BarrierAll is FlushAll's durability-only counterpart: every acknowledged
// mutation in every directory becomes durable, but checkpoints are left to
// the background workers. This is the fsync-per-phase barrier benchmarks and
// applications use.
func (j *Journal) BarrierAll() error { return j.sweep(j.Barrier) }

// sweep applies fn to every journaled directory, re-snapshotting the
// directory set until a pass finds nothing new.
func (j *Journal) sweep(fn func(types.Ino) error) error {
	var firstErr error
	seen := make(map[types.Ino]bool)
	for {
		j.mu.Lock()
		todo := make([]types.Ino, 0, len(j.dirs))
		for d := range j.dirs {
			if !seen[d] {
				todo = append(todo, d)
			}
		}
		j.mu.Unlock()
		if len(todo) == 0 {
			return firstErr
		}
		sort.Slice(todo, func(a, b int) bool {
			return bytes.Compare(todo[a][:], todo[b][:]) < 0
		})
		for _, d := range todo {
			seen[d] = true
			if err := fn(d); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
}

// DropDir forgets dir's journal state (after a clean flush + lease release).
func (j *Journal) DropDir(dir types.Ino) {
	j.mu.Lock()
	delete(j.dirs, dir)
	j.mu.Unlock()
}

// ckptLoop is a checkpoint worker: it applies committed transactions to the
// original objects and invalidates the journal entries.
func (j *Journal) ckptLoop(q *sim.Chan[*ckptItem]) {
	for {
		it, ok := q.Recv()
		if !ok {
			return
		}
		if it.ops != nil {
			it.dj.mu.Lock()
			stuck := it.dj.ckptStuck
			it.dj.mu.Unlock()
			if stuck != nil {
				// An earlier record of this directory failed to apply.
				// Applying this one around the gap could reorder same-name
				// mutations, so leave it (and its journal object) for the
				// ordered replay a NeedRecovery grant runs.
				j.cCkptErrs.Inc()
			} else {
				ckptStart := j.env.Now()
				sp := j.trace.StartChild(it.sc, "journal.checkpoint", "")
				sp.SetDir(it.dj.dir)
				sp.SetTenant(it.tenant)
				if err := applyOps(j.env, j.tr, it.dj.dir, it.ops, j.cfg.CheckpointFanout, j.cfg.Crash); err != nil {
					j.cCkptErrs.Inc()
					it.dj.mu.Lock()
					it.dj.ckptStuck = err
					it.dj.mu.Unlock()
					j.recordErr(it.dj, err)
					sp.End(err)
				} else {
					// Fully applied; the journal record still exists, so a crash
					// here makes recovery replay the transaction a second time.
					j.cfg.Crash.Hit(crashpoint.PostCheckpoint)
					for _, key := range it.del {
						del := j.trace.StartChild(sp.Context(), "objstore.delete", key)
						del.SetTenant(it.tenant)
						err := j.tr.Store().Delete(key)
						del.End(err)
						if err != nil {
							// Applied but not invalidated: replay is idempotent,
							// so this is not a barrier error — but the key must
							// go before a clean release (see drainErr).
							it.dj.mu.Lock()
							it.dj.stale = append(it.dj.stale, key)
							it.dj.mu.Unlock()
						}
					}
					j.cCkpts.Inc()
					j.hCkpt.Observe(j.env.Now() - ckptStart)
					sp.End(nil)
				}
			}
		}
		if it.done != nil {
			it.done.Send(j.drainErr(it.dj))
		}
	}
}

// drainErr computes the outcome of a flush drain: stale invalidations are
// retried (faults may have healed), and a stuck checkpoint is reported as a
// persistent error — unlike dj.err it cannot be consumed by an intermediate
// barrier, so a directory with an unapplied journal record can never be
// released clean. Only a recovery replay (SetNextSeq) clears it.
func (j *Journal) drainErr(dj *dirJournal) error {
	dj.mu.Lock()
	stale := dj.stale
	dj.stale = nil
	stuck := dj.ckptStuck
	dj.mu.Unlock()
	var kept []string
	var staleErr error
	for _, key := range stale {
		if err := j.tr.Store().Delete(key); err != nil && !errors.Is(err, types.ErrNotExist) {
			kept = append(kept, key)
			if staleErr == nil {
				staleErr = fmt.Errorf("journal: invalidate %s: %w", key, err)
			}
		}
	}
	if len(kept) > 0 {
		dj.mu.Lock()
		dj.stale = append(dj.stale, kept...)
		dj.mu.Unlock()
	}
	if stuck != nil {
		return fmt.Errorf("journal: unapplied record for %s awaits replay: %w", dj.dir.Short(), stuck)
	}
	if staleErr != nil {
		return staleErr
	}
	return dj.takeErr()
}

func (j *Journal) recordErr(dj *dirJournal, err error) {
	dj.mu.Lock()
	if dj.err == nil {
		dj.err = err
	}
	dj.mu.Unlock()
}

func (dj *dirJournal) takeErr() error {
	dj.mu.Lock()
	defer dj.mu.Unlock()
	err := dj.err
	dj.err = nil
	return err
}

// ApplyOps checkpoints a transaction's operations sequentially; recovery
// uses it. The checkpoint workers use applyOps with an environment, which
// fans independent inode writes out in parallel.
func ApplyOps(tr *prt.Translator, dir types.Ino, ops []wire.Op) error {
	return applyOps(nil, tr, dir, ops, 1, nil)
}

// applyOpsRepair is ApplyOps for recovery and scrub: when the directory's
// checkpointed dentry block fails verification, it is rebuilt from the
// journal operations instead of failing the replay — the journal is the
// authority the checkpoint is derived from. Entries present only in the lost
// block are not recoverable here; the scrubber reports the resulting orphan
// inodes. Rebuilds count against integrity.repaired on reg.
func applyOpsRepair(tr *prt.Translator, dir types.Ino, ops []wire.Op, reg *obs.Registry) error {
	err := applyOps(nil, tr, dir, ops, 1, nil)
	if err == nil || !errors.Is(err, types.ErrIntegrity) {
		return err
	}
	// One confirming retry before the destructive rebuild: a transient read
	// fault (a flip on the wire, not rot at rest) must not cost the directory
	// its checkpoint-only entries. Rot at rest fails the re-read identically.
	err = applyOps(nil, tr, dir, ops, 1, nil)
	if err == nil || !errors.Is(err, types.ErrIntegrity) {
		return err
	}
	// The corrupt block is unreadable regardless; replaying onto an empty
	// table recovers every journal-covered entry.
	if derr := tr.DeleteDentries(dir); derr != nil {
		return fmt.Errorf("journal: drop corrupt dentry block of %s: %w", dir.Short(), derr)
	}
	reg.Counter("integrity.repaired").Inc()
	return applyOps(nil, tr, dir, ops, 1, nil)
}

// applyOps checkpoints a transaction's operations onto the original objects:
// inode records are written/deleted individually (in parallel when env is
// non-nil — they are independent objects), dentry mutations are applied in
// one read-modify-write of the directory's dentry block, and deleting an
// inode also drops its data chunks (and dentry block, for directories).
// Replay is idempotent.
func applyOps(env sim.Env, tr *prt.Translator, dir types.Ino, ops []wire.Op, parallelism int, crash *crashpoint.Set) error {
	var dentryDirty bool
	for i := range ops {
		k := ops[i].Kind
		if k == wire.OpAddDentry || k == wire.OpDelDentry {
			dentryDirty = true
		}
	}
	var entries []wire.Dentry
	if dentryDirty {
		var err error
		entries, err = tr.LoadDentries(dir)
		if err != nil {
			return fmt.Errorf("journal: checkpoint load dentries: %w", err)
		}
	}
	byName := make(map[string]int, len(entries))
	for i, de := range entries {
		byName[de.Name] = i
	}

	// Inode-object work items, executed with bounded fan-out below.
	applyInodeOp := func(op *wire.Op) error {
		switch op.Kind {
		case wire.OpSetInode:
			if err := tr.SaveInode(op.Inode); err != nil {
				return fmt.Errorf("journal: checkpoint: %w", err)
			}
		case wire.OpDelInode:
			if err := tr.DeleteInode(op.Ino); err != nil {
				return fmt.Errorf("journal: checkpoint: %w", err)
			}
			if op.Size > 0 {
				if err := tr.DeleteData(op.Ino, op.Size); err != nil {
					return fmt.Errorf("journal: checkpoint: %w", err)
				}
			}
			if op.FType == wire.DirHint {
				// Directories leave a dentry block behind.
				if err := tr.DeleteDentries(op.Ino); err != nil {
					return fmt.Errorf("journal: checkpoint: %w", err)
				}
			}
		}
		return nil
	}

	// A compound transaction often updates the same inode many times (the
	// directory mtime changes on every create); only the final state needs
	// checkpointing. Later inode ops supersede earlier ones (inode numbers
	// are UUIDs and never reused).
	lastInodeOp := make(map[types.Ino]int)
	var inodeOps []*wire.Op
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case wire.OpSetInode, wire.OpDelInode:
			ino := op.Ino
			if op.Kind == wire.OpSetInode {
				ino = op.Inode.Ino
			}
			if j, seen := lastInodeOp[ino]; seen {
				inodeOps[j] = op
				continue
			}
			lastInodeOp[ino] = len(inodeOps)
			inodeOps = append(inodeOps, op)
		case wire.OpAddDentry:
			de := wire.Dentry{Name: op.Name, Ino: op.Ino, Type: op.FType}
			if idx, ok := byName[op.Name]; ok {
				entries[idx] = de
			} else {
				byName[op.Name] = len(entries)
				entries = append(entries, de)
			}
		case wire.OpDelDentry:
			if idx, ok := byName[op.Name]; ok {
				entries = append(entries[:idx], entries[idx+1:]...)
				delete(byName, op.Name)
				for n, j := range byName {
					if j > idx {
						byName[n] = j - 1
					}
				}
			}
		}
	}

	if env == nil || parallelism <= 1 || len(inodeOps) < 2 {
		for _, op := range inodeOps {
			if err := applyInodeOp(op); err != nil {
				return err
			}
		}
	} else {
		sem := sim.NewChan[struct{}](env)
		for i := 0; i < parallelism; i++ {
			sem.Send(struct{}{})
		}
		g := sim.NewGroup(env)
		errs := make([]error, len(inodeOps))
		for i, op := range inodeOps {
			i, op := i, op
			if _, ok := sem.Recv(); !ok {
				return fmt.Errorf("journal: shut down during checkpoint: %w", types.ErrIO)
			}
			g.Go(func() {
				defer sem.Send(struct{}{})
				errs[i] = applyInodeOp(op)
			})
		}
		g.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Inode objects are written, the dentry block is not: crashing here
	// leaves a half-applied transaction whose record recovery replays.
	crash.Hit(crashpoint.MidCheckpoint)

	if dentryDirty {
		sort.Slice(entries, func(a, b int) bool { return entries[a].Name < entries[b].Name })
		if err := tr.SaveDentries(dir, entries); err != nil {
			return fmt.Errorf("journal: checkpoint: %w", err)
		}
	}
	return nil
}
