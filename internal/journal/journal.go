// Package journal implements ArkFS's per-directory journaling (paper §III-E).
//
// Each directory a client leads gets its own journal: a sequence of objects
// "j:<dir>:<seq>" holding CRC-protected compound transactions. Metadata
// mutations accumulate in an in-memory running transaction for up to the
// commit interval (1 s by default); commit workers turn running transactions
// into committing transactions and write them to the journal; checkpoint
// workers then apply them to the original inode/dentry objects and invalidate
// (delete) the journal objects. Directories are statically mapped to commit
// and checkpoint workers by inode number, so independent directories journal
// in parallel while each directory stays strictly ordered.
//
// Operations spanning two directories (RENAME) use a two-phase commit: both
// journals receive a prepare record, the coordinating directory's journal
// receives the decision record, and recovery resolves prepared-but-undecided
// transactions by consulting the coordinator's journal (presumed abort).
package journal

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"arkfs/internal/crashpoint"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Config tunes a client's journaling machinery.
type Config struct {
	// CommitInterval is how long a running transaction buffers mutations
	// before being committed (paper: 1 second).
	CommitInterval time.Duration
	// CommitWorkers and CheckpointWorkers size the two thread pools.
	CommitWorkers     int
	CheckpointWorkers int
	// CheckpointFanout bounds the concurrent inode-object writes one
	// transaction's checkpoint issues (they are independent objects).
	CheckpointFanout int
	// Crash, when non-nil, announces the commit/checkpoint/2PC crash sites
	// this journal passes through; chaos scenarios arm it. Nil is inert.
	Crash *crashpoint.Set
	// Obs, when non-nil, receives journal metrics: append/commit/checkpoint
	// counters, commit and checkpoint latency histograms (environment clock),
	// running-transaction buffer occupancy, and 2PC outcomes. Nil is inert.
	Obs *obs.Registry
	// Trace, when non-nil, receives child spans for the asynchronous half of
	// every journaled mutation: commit, checkpoint, 2PC records, and the
	// object-store verbs underneath them, parented under the trace of the
	// operation that opened the transaction. Nil is inert.
	Trace *obs.Tracer
}

// DefaultConfig matches the paper's settings.
func DefaultConfig() Config {
	return Config{CommitInterval: time.Second, CommitWorkers: 4, CheckpointWorkers: 4, CheckpointFanout: 16}
}

// Journal manages every per-directory journal owned by one client.
type Journal struct {
	env sim.Env
	tr  *prt.Translator
	cfg Config

	commitQs []*sim.Chan[*commitItem]
	ckptQs   []*sim.Chan[*ckptItem]

	// Metric sinks (nil-safe no-ops when cfg.Obs is nil).
	cAppends     *obs.Counter
	cOps         *obs.Counter
	gBuffer      *obs.Gauge
	cCommits     *obs.Counter
	cCommitErrs  *obs.Counter
	hCommit      *obs.Histogram
	cCkpts       *obs.Counter
	cCkptErrs    *obs.Counter
	hCkpt        *obs.Histogram
	c2pcPrepares *obs.Counter
	c2pcCommits  *obs.Counter
	c2pcAborts   *obs.Counter
	trace        *obs.Tracer // nil-safe span sink

	mu     sync.Mutex
	dirs   map[types.Ino]*dirJournal
	seqs   uint64 // txn id counter
	idBase uint64 // client-unique high bits for txn ids
}

// dirJournal is the journal state of a single led directory.
type dirJournal struct {
	dir types.Ino

	mu        sync.Mutex
	running   []wire.Op       // the running compound transaction
	runSC     obs.SpanContext // trace of the op that opened the running txn
	scheduled bool            // a timed commit is already queued
	cancel    func() bool
	nextSeq   uint64
	prepared  map[uint64]uint64 // txid -> journal seq of the prepare record
	prepOps   map[uint64][]wire.Op
	decisions map[uint64]uint64 // txid -> journal seq of the decision record
	err       error             // first async commit/checkpoint error, surfaced at Flush
}

type commitItem struct {
	dj    *dirJournal
	force bool
	done  *sim.Chan[error] // non-nil: flush barrier, reply after checkpoint
}

type ckptItem struct {
	dj   *dirJournal
	txn  *wire.Txn
	seq  uint64
	ops  []wire.Op       // ops to apply (may differ from txn.Ops for 2PC applies)
	del  []string        // journal object keys to delete after applying
	sc   obs.SpanContext // trace the checkpoint span parents under
	done *sim.Chan[error]
}

// New starts a client's journaling workers.
func New(env sim.Env, tr *prt.Translator, cfg Config) *Journal {
	if cfg.CommitInterval <= 0 {
		cfg.CommitInterval = time.Second
	}
	if cfg.CommitWorkers <= 0 {
		cfg.CommitWorkers = 1
	}
	if cfg.CheckpointWorkers <= 0 {
		cfg.CheckpointWorkers = 1
	}
	if cfg.CheckpointFanout <= 0 {
		cfg.CheckpointFanout = 16
	}
	j := &Journal{env: env, tr: tr, cfg: cfg, trace: cfg.Trace, dirs: make(map[types.Ino]*dirJournal)}
	j.cAppends = cfg.Obs.Counter("journal.appends")
	j.cOps = cfg.Obs.Counter("journal.ops")
	j.gBuffer = cfg.Obs.Gauge("journal.buffer.ops")
	j.cCommits = cfg.Obs.Counter("journal.commits")
	j.cCommitErrs = cfg.Obs.Counter("journal.commit.errors")
	j.hCommit = cfg.Obs.Histogram("journal.commit.latency")
	j.cCkpts = cfg.Obs.Counter("journal.checkpoints")
	j.cCkptErrs = cfg.Obs.Counter("journal.checkpoint.errors")
	j.hCkpt = cfg.Obs.Histogram("journal.checkpoint.latency")
	j.c2pcPrepares = cfg.Obs.Counter("journal.2pc.prepares")
	j.c2pcCommits = cfg.Obs.Counter("journal.2pc.commits")
	j.c2pcAborts = cfg.Obs.Counter("journal.2pc.aborts")
	for i := 0; i < cfg.CommitWorkers; i++ {
		q := sim.NewChan[*commitItem](env)
		j.commitQs = append(j.commitQs, q)
		env.Go(func() { j.commitLoop(q) })
	}
	for i := 0; i < cfg.CheckpointWorkers; i++ {
		q := sim.NewChan[*ckptItem](env)
		j.ckptQs = append(j.ckptQs, q)
		env.Go(func() { j.ckptLoop(q) })
	}
	return j
}

// Close stops the workers. Buffered but uncommitted mutations are dropped —
// call FlushAll first for a clean shutdown.
func (j *Journal) Close() {
	for _, q := range j.commitQs {
		q.Close()
	}
	for _, q := range j.ckptQs {
		q.Close()
	}
}

// commitQ returns the commit queue statically assigned to dir.
func (j *Journal) commitQ(dir types.Ino) *sim.Chan[*commitItem] {
	return j.commitQs[int(dir.Lo()%uint64(len(j.commitQs)))]
}

// ckptQ returns the checkpoint queue statically assigned to dir.
func (j *Journal) ckptQ(dir types.Ino) *sim.Chan[*ckptItem] {
	return j.ckptQs[int(dir.Lo()%uint64(len(j.ckptQs)))]
}

// dirJournal returns (creating if needed) the journal of dir.
func (j *Journal) dirJournal(dir types.Ino) *dirJournal {
	j.mu.Lock()
	defer j.mu.Unlock()
	dj := j.dirs[dir]
	if dj == nil {
		dj = &dirJournal{
			dir:      dir,
			prepared: make(map[uint64]uint64),
			prepOps:  make(map[uint64][]wire.Op),
		}
		j.dirs[dir] = dj
	}
	return dj
}

// SetNextSeq primes the journal sequence for dir; the new leader calls this
// after recovery with one past the highest sequence it observed.
func (j *Journal) SetNextSeq(dir types.Ino, seq uint64) {
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	dj.nextSeq = seq
	dj.mu.Unlock()
}

// NewTxnID returns a fresh transaction id for 2PC: the client-unique base
// (see SetTxnIDBase) plus a local counter, so ids never collide across the
// clients whose journals a recovery scan may compare.
func (j *Journal) NewTxnID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seqs++
	return j.idBase | j.seqs
}

// SetTxnIDBase installs the client-unique high bits of transaction ids.
func (j *Journal) SetTxnIDBase(base uint64) {
	j.mu.Lock()
	j.idBase = base << 32
	j.mu.Unlock()
}

// Log appends metadata mutations to dir's running transaction and schedules
// a timed commit. It is the fast path: pure memory work. The trace identity
// in ctx is captured when this append opens a fresh running transaction, so
// the eventual commit/checkpoint spans link back to the operation that
// started the batch (later appends ride along untraced — a batch has one
// owner, the way a group commit has one leader).
func (j *Journal) Log(ctx context.Context, dir types.Ino, ops []wire.Op) {
	j.cAppends.Inc()
	j.cOps.Add(int64(len(ops)))
	j.gBuffer.Add(int64(len(ops)))
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	if len(dj.running) == 0 && ctx != nil {
		dj.runSC = obs.SpanContextFrom(ctx)
	}
	dj.running = append(dj.running, ops...)
	if !dj.scheduled {
		dj.scheduled = true
		dj.cancel = j.env.After(j.cfg.CommitInterval, func() {
			j.commitQ(dir).Send(&commitItem{dj: dj})
		})
	}
	dj.mu.Unlock()
}

// Flush commits dir's running transaction immediately and waits until it is
// checkpointed — the fsync path. It also surfaces any earlier async error.
func (j *Journal) Flush(dir types.Ino) error {
	dj := j.dirJournal(dir)
	done := sim.NewChan[error](j.env)
	if !j.commitQ(dir).Send(&commitItem{dj: dj, force: true, done: done}) {
		return fmt.Errorf("journal: shut down during flush: %w", types.ErrIO)
	}
	err, ok := done.Recv()
	if !ok {
		return fmt.Errorf("journal: shut down during flush: %w", types.ErrIO)
	}
	return err
}

// FlushAll flushes every directory this client has journaled.
func (j *Journal) FlushAll() error {
	j.mu.Lock()
	dirs := make([]types.Ino, 0, len(j.dirs))
	for d := range j.dirs {
		dirs = append(dirs, d)
	}
	j.mu.Unlock()
	var firstErr error
	for _, d := range dirs {
		if err := j.Flush(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DropDir forgets dir's journal state (after a clean flush + lease release).
func (j *Journal) DropDir(dir types.Ino) {
	j.mu.Lock()
	delete(j.dirs, dir)
	j.mu.Unlock()
}

// commitLoop is a commit worker: it turns running transactions into
// committing transactions and writes them to the journal.
func (j *Journal) commitLoop(q *sim.Chan[*commitItem]) {
	for {
		it, ok := q.Recv()
		if !ok {
			return
		}
		dj := it.dj
		dj.mu.Lock()
		ops := dj.running
		sc := dj.runSC
		dj.running = nil
		dj.runSC = obs.SpanContext{}
		if dj.scheduled && it.force && dj.cancel != nil {
			dj.cancel() // a flush superseded the timed commit
		}
		dj.scheduled = false
		dj.cancel = nil
		seq := dj.nextSeq
		if len(ops) > 0 {
			dj.nextSeq++
		}
		dj.mu.Unlock()
		j.gBuffer.Add(-int64(len(ops)))

		if len(ops) == 0 {
			if it.done != nil {
				// Barrier only: ride through the checkpoint queue so every
				// previously queued item for this dir completes first.
				if !j.ckptQ(dj.dir).Send(&ckptItem{dj: dj, done: it.done}) {
					it.done.Send(fmt.Errorf("journal: shut down during flush: %w", types.ErrIO))
				}
			}
			continue
		}
		txn := &wire.Txn{
			ID:    j.NewTxnID(),
			Dir:   dj.dir,
			Kind:  wire.TxnNormal,
			Stamp: j.env.Now(),
			Ops:   ops,
		}
		key := prt.JournalKey(dj.dir, seq)
		j.cfg.Crash.Hit(crashpoint.PreJournalPut)
		commitStart := j.env.Now()
		sp := j.trace.StartChild(sc, "journal.commit", key)
		sp.SetDir(dj.dir)
		put := j.trace.StartChild(sp.Context(), "objstore.put", key)
		err := j.tr.Store().Put(key, wire.EncodeTxn(txn))
		put.End(err)
		sp.End(err)
		if err != nil {
			j.cCommitErrs.Inc()
			j.recordErr(dj, fmt.Errorf("journal: commit %s: %w", key, err))
			if it.done != nil {
				it.done.Send(dj.takeErr())
			}
			continue
		}
		j.cCommits.Inc()
		j.hCommit.Observe(j.env.Now() - commitStart)
		// The record is durable: from here on a crash must be recoverable by
		// the next leader's journal replay.
		j.cfg.Crash.Hit(crashpoint.PostJournalPut)
		if !j.ckptQ(dj.dir).Send(&ckptItem{
			dj: dj, txn: txn, seq: seq, ops: ops, del: []string{key}, sc: sc, done: it.done,
		}) {
			j.recordErr(dj, fmt.Errorf("journal: shut down before checkpoint of %s: %w", key, types.ErrIO))
			if it.done != nil {
				it.done.Send(dj.takeErr())
			}
		}
	}
}

// ckptLoop is a checkpoint worker: it applies committed transactions to the
// original objects and invalidates the journal entries.
func (j *Journal) ckptLoop(q *sim.Chan[*ckptItem]) {
	for {
		it, ok := q.Recv()
		if !ok {
			return
		}
		if it.ops != nil {
			ckptStart := j.env.Now()
			sp := j.trace.StartChild(it.sc, "journal.checkpoint", "")
			sp.SetDir(it.dj.dir)
			if err := applyOps(j.env, j.tr, it.dj.dir, it.ops, j.cfg.CheckpointFanout, j.cfg.Crash); err != nil {
				j.cCkptErrs.Inc()
				j.recordErr(it.dj, err)
				sp.End(err)
			} else {
				// Fully applied; the journal record still exists, so a crash
				// here makes recovery replay the transaction a second time.
				j.cfg.Crash.Hit(crashpoint.PostCheckpoint)
				for _, key := range it.del {
					del := j.trace.StartChild(sp.Context(), "objstore.delete", key)
					err := j.tr.Store().Delete(key)
					del.End(err)
					if err != nil {
						j.recordErr(it.dj, fmt.Errorf("journal: invalidate %s: %w", key, err))
					}
				}
				j.cCkpts.Inc()
				j.hCkpt.Observe(j.env.Now() - ckptStart)
				sp.End(nil)
			}
		}
		if it.done != nil {
			it.done.Send(it.dj.takeErr())
		}
	}
}

func (j *Journal) recordErr(dj *dirJournal, err error) {
	dj.mu.Lock()
	if dj.err == nil {
		dj.err = err
	}
	dj.mu.Unlock()
}

func (dj *dirJournal) takeErr() error {
	dj.mu.Lock()
	defer dj.mu.Unlock()
	err := dj.err
	dj.err = nil
	return err
}

// ApplyOps checkpoints a transaction's operations sequentially; recovery
// uses it. The checkpoint workers use applyOps with an environment, which
// fans independent inode writes out in parallel.
func ApplyOps(tr *prt.Translator, dir types.Ino, ops []wire.Op) error {
	return applyOps(nil, tr, dir, ops, 1, nil)
}

// applyOpsRepair is ApplyOps for recovery and scrub: when the directory's
// checkpointed dentry block fails verification, it is rebuilt from the
// journal operations instead of failing the replay — the journal is the
// authority the checkpoint is derived from. Entries present only in the lost
// block are not recoverable here; the scrubber reports the resulting orphan
// inodes. Rebuilds count against integrity.repaired on reg.
func applyOpsRepair(tr *prt.Translator, dir types.Ino, ops []wire.Op, reg *obs.Registry) error {
	err := applyOps(nil, tr, dir, ops, 1, nil)
	if err == nil || !errors.Is(err, types.ErrIntegrity) {
		return err
	}
	// One confirming retry before the destructive rebuild: a transient read
	// fault (a flip on the wire, not rot at rest) must not cost the directory
	// its checkpoint-only entries. Rot at rest fails the re-read identically.
	err = applyOps(nil, tr, dir, ops, 1, nil)
	if err == nil || !errors.Is(err, types.ErrIntegrity) {
		return err
	}
	// The corrupt block is unreadable regardless; replaying onto an empty
	// table recovers every journal-covered entry.
	if derr := tr.DeleteDentries(dir); derr != nil {
		return fmt.Errorf("journal: drop corrupt dentry block of %s: %w", dir.Short(), derr)
	}
	reg.Counter("integrity.repaired").Inc()
	return applyOps(nil, tr, dir, ops, 1, nil)
}

// applyOps checkpoints a transaction's operations onto the original objects:
// inode records are written/deleted individually (in parallel when env is
// non-nil — they are independent objects), dentry mutations are applied in
// one read-modify-write of the directory's dentry block, and deleting an
// inode also drops its data chunks (and dentry block, for directories).
// Replay is idempotent.
func applyOps(env sim.Env, tr *prt.Translator, dir types.Ino, ops []wire.Op, parallelism int, crash *crashpoint.Set) error {
	var dentryDirty bool
	for i := range ops {
		k := ops[i].Kind
		if k == wire.OpAddDentry || k == wire.OpDelDentry {
			dentryDirty = true
		}
	}
	var entries []wire.Dentry
	if dentryDirty {
		var err error
		entries, err = tr.LoadDentries(dir)
		if err != nil {
			return fmt.Errorf("journal: checkpoint load dentries: %w", err)
		}
	}
	byName := make(map[string]int, len(entries))
	for i, de := range entries {
		byName[de.Name] = i
	}

	// Inode-object work items, executed with bounded fan-out below.
	applyInodeOp := func(op *wire.Op) error {
		switch op.Kind {
		case wire.OpSetInode:
			if err := tr.SaveInode(op.Inode); err != nil {
				return fmt.Errorf("journal: checkpoint: %w", err)
			}
		case wire.OpDelInode:
			if err := tr.DeleteInode(op.Ino); err != nil {
				return fmt.Errorf("journal: checkpoint: %w", err)
			}
			if op.Size > 0 {
				if err := tr.DeleteData(op.Ino, op.Size); err != nil {
					return fmt.Errorf("journal: checkpoint: %w", err)
				}
			}
			if op.FType == wire.DirHint {
				// Directories leave a dentry block behind.
				if err := tr.DeleteDentries(op.Ino); err != nil {
					return fmt.Errorf("journal: checkpoint: %w", err)
				}
			}
		}
		return nil
	}

	// A compound transaction often updates the same inode many times (the
	// directory mtime changes on every create); only the final state needs
	// checkpointing. Later inode ops supersede earlier ones (inode numbers
	// are UUIDs and never reused).
	lastInodeOp := make(map[types.Ino]int)
	var inodeOps []*wire.Op
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case wire.OpSetInode, wire.OpDelInode:
			ino := op.Ino
			if op.Kind == wire.OpSetInode {
				ino = op.Inode.Ino
			}
			if j, seen := lastInodeOp[ino]; seen {
				inodeOps[j] = op
				continue
			}
			lastInodeOp[ino] = len(inodeOps)
			inodeOps = append(inodeOps, op)
		case wire.OpAddDentry:
			de := wire.Dentry{Name: op.Name, Ino: op.Ino, Type: op.FType}
			if idx, ok := byName[op.Name]; ok {
				entries[idx] = de
			} else {
				byName[op.Name] = len(entries)
				entries = append(entries, de)
			}
		case wire.OpDelDentry:
			if idx, ok := byName[op.Name]; ok {
				entries = append(entries[:idx], entries[idx+1:]...)
				delete(byName, op.Name)
				for n, j := range byName {
					if j > idx {
						byName[n] = j - 1
					}
				}
			}
		}
	}

	if env == nil || parallelism <= 1 || len(inodeOps) < 2 {
		for _, op := range inodeOps {
			if err := applyInodeOp(op); err != nil {
				return err
			}
		}
	} else {
		sem := sim.NewChan[struct{}](env)
		for i := 0; i < parallelism; i++ {
			sem.Send(struct{}{})
		}
		g := sim.NewGroup(env)
		errs := make([]error, len(inodeOps))
		for i, op := range inodeOps {
			i, op := i, op
			if _, ok := sem.Recv(); !ok {
				return fmt.Errorf("journal: shut down during checkpoint: %w", types.ErrIO)
			}
			g.Go(func() {
				defer sem.Send(struct{}{})
				errs[i] = applyInodeOp(op)
			})
		}
		g.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Inode objects are written, the dentry block is not: crashing here
	// leaves a half-applied transaction whose record recovery replays.
	crash.Hit(crashpoint.MidCheckpoint)

	if dentryDirty {
		sort.Slice(entries, func(a, b int) bool { return entries[a].Name < entries[b].Name })
		if err := tr.SaveDentries(dir, entries); err != nil {
			return fmt.Errorf("journal: checkpoint: %w", err)
		}
	}
	return nil
}
