package journal

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// plantTxn stores a sealed journal record for dir at seq.
func plantTxn(t *testing.T, st objstore.Store, dir types.Ino, seq uint64, txn *wire.Txn) {
	t.Helper()
	if err := st.Put(prt.JournalKey(dir, seq), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
}

// flipStoredByte corrupts one byte of the object at key in place — bit rot at
// rest, visible to every subsequent read.
func flipStoredByte(t *testing.T, st objstore.Store, key string) {
	t.Helper()
	raw, err := st.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	cp := append([]byte(nil), raw...)
	cp[len(cp)/2] ^= 0x04
	if err := st.Put(key, cp); err != nil {
		t.Fatal(err)
	}
}

// names returns the dentry names in ents, for compact assertions.
func names(ents []wire.Dentry) map[string]bool {
	m := make(map[string]bool, len(ents))
	for _, e := range ents {
		m[e.Name] = true
	}
	return m
}

// A bit flip in the middle of the journal cuts it there: everything before
// the bad record replays, the bad record and everything after it — even
// though the later records verify cleanly — is discarded, exactly like a
// single-file write-ahead log truncated at the first bad block.
func TestRecoveryTruncatesAtMidJournalBitFlip(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(100)
	dir := src.Next()
	for seq, name := range []string{"before", "flipped", "after"} {
		plantTxn(t, tr.Store(), dir, uint64(seq), &wire.Txn{ID: uint64(seq + 1), Dir: dir,
			Kind: wire.TxnNormal, Ops: createOps(dir, name, mkFileInode(src, 1))})
	}
	flipStoredByte(t, tr.Store(), prt.JournalKey(dir, 1))

	reg := obs.NewRegistry()
	rep, err := RecoverWith(tr, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Corrupt != 1 || rep.Truncated != 2 || rep.NextSeq != 3 {
		t.Fatalf("report: %+v", rep)
	}
	ents, err := tr.LoadDentries(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := names(ents)
	if !got["before"] || got["flipped"] || got["after"] {
		t.Fatalf("dentries after truncation: %v", ents)
	}
	if v := reg.Counter("integrity.detected").Value(); v != 1 {
		t.Fatalf("integrity.detected = %d, want 1", v)
	}
	if v := reg.Counter("integrity.truncated").Value(); v != 2 {
		t.Fatalf("integrity.truncated = %d, want 2", v)
	}
	// The journal must be fully drained: replayed records invalidated,
	// truncated records deleted.
	keys, _ := tr.Store().List(prt.JournalPrefix(dir))
	if len(keys) != 0 {
		t.Fatalf("journal not emptied: %v", keys)
	}
}

// Trailing garbage — bytes that never were a sealed record — is detected and
// truncated without touching the committed prefix. A journal-prefixed key
// whose name does not parse as a sequence number is counted corrupt but left
// in place for the scrubber: it occupies no slot in the sequence.
func TestRecoveryTrailingGarbageAndForeignKeys(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(200)
	dir := src.Next()
	plantTxn(t, tr.Store(), dir, 0, &wire.Txn{ID: 1, Dir: dir, Kind: wire.TxnNormal,
		Ops: createOps(dir, "kept", mkFileInode(src, 1))})
	if err := tr.Store().Put(prt.JournalKey(dir, 1), []byte("not a sealed record at all")); err != nil {
		t.Fatal(err)
	}
	foreign := prt.JournalPrefix(dir) + "zzzz"
	if err := tr.Store().Put(foreign, []byte("junk")); err != nil {
		t.Fatal(err)
	}

	rep, err := Recover(tr, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Corrupt != 2 || rep.Truncated != 1 {
		t.Fatalf("report: %+v", rep)
	}
	ents, _ := tr.LoadDentries(dir)
	if got := names(ents); !got["kept"] || len(got) != 1 {
		t.Fatalf("dentries: %v", ents)
	}
	if _, err := tr.Store().Get(foreign); err != nil {
		t.Fatalf("foreign key should be left for the scrubber: %v", err)
	}
}

// A corrupt record in the coordinator's journal may be the commit decision,
// so the participant must treat its prepared transaction as undecided —
// neither applying it nor presuming abort — and keep the prepare record.
// Once the record is restored (as the coordinator's own recovery would after
// re-running the decision), a later recovery pass resolves and applies it.
func TestRecoveryCorruptDecisionIsUndecided(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(300)
	part := src.Next()  // participant: the directory being recovered
	coord := src.Next() // coordinator: holds the decision record
	const txid = 42
	child := mkFileInode(src, 1)
	plantTxn(t, tr.Store(), part, 0, &wire.Txn{ID: txid, Dir: part, Kind: wire.TxnPrepare,
		Peer: coord, Ops: createOps(part, "renamed", child)})
	decision := &wire.Txn{ID: txid, Dir: coord, Kind: wire.TxnCommit, Peer: part}
	plantTxn(t, tr.Store(), coord, 0, decision)
	flipStoredByte(t, tr.Store(), prt.JournalKey(coord, 0))

	rep, err := Recover(tr, part)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Undecided2PC != 1 || rep.Committed2PC != 0 || rep.Aborted2PC != 0 {
		t.Fatalf("report with corrupt decision: %+v", rep)
	}
	// The prepare must be retained and its ops must not be applied.
	if keys, _ := tr.Store().List(prt.JournalPrefix(part)); len(keys) != 1 {
		t.Fatalf("prepare record not retained: %v", keys)
	}
	if ents, _ := tr.LoadDentries(part); len(ents) != 0 {
		t.Fatalf("undecided prepare was applied: %v", ents)
	}

	// Restore the decision record; the next pass commits.
	if err := tr.Store().Put(prt.JournalKey(coord, 0), wire.EncodeTxn(decision)); err != nil {
		t.Fatal(err)
	}
	rep, err = Recover(tr, part)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed2PC != 1 || rep.Undecided2PC != 0 {
		t.Fatalf("report after decision restored: %+v", rep)
	}
	if ents, _ := tr.LoadDentries(part); !names(ents)["renamed"] {
		t.Fatalf("committed prepare not applied: %v", ents)
	}
	if keys, _ := tr.Store().List(prt.JournalPrefix(part)); len(keys) != 0 {
		t.Fatalf("prepare record not invalidated after commit: %v", keys)
	}
}

// checkpointDir runs a real Log+Flush cycle so dir has a sealed dentry
// checkpoint and an empty journal, then shuts the journal down so the test
// can manipulate the store without a background checkpointer racing it.
func checkpointDir(t *testing.T, tr *prt.Translator, src *types.InoSource, dir types.Ino, name string) {
	t.Helper()
	env := sim.NewRealEnv()
	defer env.Shutdown()
	j := New(env, tr, Config{CommitInterval: time.Hour, CommitWorkers: 1, CheckpointWorkers: 1})
	j.Log(context.Background(), dir, createOps(dir, name, mkFileInode(src, 1)))
	if err := j.Flush(dir); err != nil {
		t.Fatal(err)
	}
	j.Close()
}

// A checkpoint corrupted at rest is rebuilt from journal replay: the dentry
// block is dropped and the surviving journal records are applied onto an
// empty directory. Entries only in the lost checkpoint are gone (the
// scrubber quarantines their inodes), but recovery completes and the
// directory is left readable with integrity.repaired counted.
func TestRecoveryRebuildsCorruptCheckpointFromJournal(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(400)
	dir := src.Next()
	checkpointDir(t, tr, src, dir, "old")
	flipStoredByte(t, tr.Store(), prt.DentryKey(dir))
	plantTxn(t, tr.Store(), dir, 7, &wire.Txn{ID: 9, Dir: dir, Kind: wire.TxnNormal,
		Ops: createOps(dir, "fresh", mkFileInode(src, 1))})

	reg := obs.NewRegistry()
	rep, err := RecoverWith(tr, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.NextSeq != 8 {
		t.Fatalf("report: %+v", rep)
	}
	if v := reg.Counter("integrity.repaired").Value(); v != 1 {
		t.Fatalf("integrity.repaired = %d, want 1", v)
	}
	ents, err := tr.LoadDentries(dir)
	if err != nil {
		t.Fatalf("rebuilt dentries unreadable: %v", err)
	}
	if got := names(ents); !got["fresh"] || got["old"] {
		t.Fatalf("dentries after rebuild: %v", ents)
	}
}

// A transient read-side flip — corruption on the wire, not at rest — must
// not truncate the journal: readTxn's confirming re-read sees clean bytes
// and the acknowledged transaction replays.
func TestRecoveryTransientReadFlipDoesNotTruncate(t *testing.T) {
	fs := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fs, 64)
	src := types.NewInoSource(500)
	dir := src.Next()
	for seq, name := range []string{"first", "second"} {
		plantTxn(t, fs, dir, uint64(seq), &wire.Txn{ID: uint64(seq + 1), Dir: dir,
			Kind: wire.TxnNormal, Ops: createOps(dir, name, mkFileInode(src, 1))})
	}
	fs.CorruptNextRead(prt.PrefixJournal, 1)

	rep, err := Recover(tr, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 2 || rep.Corrupt != 0 || rep.Truncated != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if got := names(mustDentries(t, tr, dir)); !got["first"] || !got["second"] {
		t.Fatalf("dentries: %v", got)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want exactly the one armed flip", fs.Injected())
	}
}

// The same rule protects the checkpoint: a transient flip while loading the
// dentry block must not trigger the destructive rebuild path — the
// confirming retry reads clean bytes and checkpoint-only entries survive.
func TestRecoveryTransientCheckpointFlipDoesNotRebuild(t *testing.T) {
	mem := objstore.NewMemStore()
	trPlain := prt.New(mem, 64)
	src := types.NewInoSource(600)
	dir := src.Next()
	checkpointDir(t, trPlain, src, dir, "keep")

	fs := objstore.NewFaultStore(mem)
	tr := prt.New(fs, 64)
	plantTxn(t, mem, dir, 3, &wire.Txn{ID: 5, Dir: dir, Kind: wire.TxnNormal,
		Ops: createOps(dir, "fresh", mkFileInode(src, 1))})
	fs.CorruptNextRead(prt.PrefixDentry, 1)

	reg := obs.NewRegistry()
	rep, err := RecoverWith(tr, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if v := reg.Counter("integrity.repaired").Value(); v != 0 {
		t.Fatalf("integrity.repaired = %d after a transient flip, want 0", v)
	}
	if got := names(mustDentries(t, tr, dir)); !got["keep"] || !got["fresh"] {
		t.Fatalf("checkpoint-only entry lost to a transient flip: %v", got)
	}
}

func mustDentries(t *testing.T, tr *prt.Translator, dir types.Ino) []wire.Dentry {
	t.Helper()
	ents, err := tr.LoadDentries(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ents
}
