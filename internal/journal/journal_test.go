package journal

import (
	"context"
	"errors"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

func testSetup(t *testing.T) (sim.Env, *prt.Translator, *Journal, func()) {
	t.Helper()
	env := sim.NewRealEnv()
	tr := prt.New(objstore.NewMemStore(), 64)
	j := New(env, tr, Config{CommitInterval: 10 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2})
	return env, tr, j, func() { j.Close(); env.Shutdown() }
}

func mkFileInode(src *types.InoSource, size int64) *types.Inode {
	return &types.Inode{Ino: src.Next(), Type: types.TypeRegular, Mode: 0644, Nlink: 1, Size: size}
}

func createOps(dir types.Ino, name string, child *types.Inode) []wire.Op {
	return []wire.Op{
		{Kind: wire.OpSetInode, Inode: child},
		{Kind: wire.OpAddDentry, Name: name, Ino: child.Ino, FType: child.Type},
	}
}

func TestLogFlushCheckpointsToOriginals(t *testing.T) {
	_, tr, j, stop := testSetup(t)
	defer stop()
	src := types.NewInoSource(1)
	dir := src.Next()
	child := mkFileInode(src, 10)
	j.Log(context.Background(), dir, createOps(dir, "f1", child))
	if err := j.Flush(dir); err != nil {
		t.Fatal(err)
	}
	// The inode and dentry objects must now exist.
	got, err := tr.LoadInode(child.Ino)
	if err != nil || got.Size != 10 {
		t.Fatalf("inode after flush: %+v, %v", got, err)
	}
	ents, err := tr.LoadDentries(dir)
	if err != nil || len(ents) != 1 || ents[0].Name != "f1" {
		t.Fatalf("dentries after flush: %v, %v", ents, err)
	}
	// The journal must be empty (checkpoint invalidated it).
	keys, _ := tr.Store().List(prt.JournalPrefix(dir))
	if len(keys) != 0 {
		t.Fatalf("journal not invalidated: %v", keys)
	}
}

func TestTimedCommitFiresWithoutFlush(t *testing.T) {
	_, tr, j, stop := testSetup(t)
	defer stop()
	src := types.NewInoSource(2)
	dir := src.Next()
	j.Log(context.Background(), dir, createOps(dir, "x", mkFileInode(src, 1)))
	deadline := time.Now().Add(2 * time.Second)
	for {
		ents, _ := tr.LoadDentries(dir)
		if len(ents) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed commit never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCompoundTransactionsBatch(t *testing.T) {
	// Many Logs inside one interval produce a small number of journal
	// objects (compound transactions), not one per operation.
	env := sim.NewRealEnv()
	defer env.Shutdown()
	store := objstore.NewMemStore()
	fault := objstore.NewFaultStore(store)
	tr := prt.New(fault, 64)
	j := New(env, tr, Config{CommitInterval: 50 * time.Millisecond, CommitWorkers: 1, CheckpointWorkers: 1})
	defer j.Close()
	src := types.NewInoSource(3)
	dir := src.Next()
	before := fault.Ops()
	for i := 0; i < 100; i++ {
		j.Log(context.Background(), dir, createOps(dir, "f"+string(rune('a'+i%26))+string(rune('a'+i/26)), mkFileInode(src, 1)))
	}
	if got := fault.Ops() - before; got != 0 {
		t.Fatalf("Log touched the store %d times; must be pure memory", got)
	}
	if err := j.Flush(dir); err != nil {
		t.Fatal(err)
	}
	ents, _ := tr.LoadDentries(dir)
	if len(ents) != 100 {
		t.Fatalf("dentries = %d, want 100", len(ents))
	}
}

func TestUnlinkDropsDataChunks(t *testing.T) {
	_, tr, j, stop := testSetup(t)
	defer stop()
	src := types.NewInoSource(4)
	dir := src.Next()
	f := mkFileInode(src, 200) // 200 bytes over 64-byte chunks = 4 chunks
	if err := tr.WriteAt(f.Ino, make([]byte, 200), 0); err != nil {
		t.Fatal(err)
	}
	j.Log(context.Background(), dir, createOps(dir, "victim", f))
	if err := j.Flush(dir); err != nil {
		t.Fatal(err)
	}
	j.Log(context.Background(), dir, []wire.Op{
		{Kind: wire.OpDelDentry, Name: "victim"},
		{Kind: wire.OpDelInode, Ino: f.Ino, Size: f.Size},
	})
	if err := j.Flush(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.LoadInode(f.Ino); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("inode survives unlink: %v", err)
	}
	keys, _ := tr.Store().List(prt.PrefixData)
	if len(keys) != 0 {
		t.Fatalf("data chunks survive unlink: %v", keys)
	}
}

func TestCrashBeforeCheckpointRecovers(t *testing.T) {
	// Commit the journal record but "crash" before checkpointing: a fresh
	// recovery replays the transaction.
	env := sim.NewRealEnv()
	defer env.Shutdown()
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(5)
	dir := src.Next()
	child := mkFileInode(src, 7)
	txn := &wire.Txn{ID: 1, Dir: dir, Kind: wire.TxnNormal, Ops: createOps(dir, "lost", child)}
	if err := tr.Store().Put(prt.JournalKey(dir, 0), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	ok, err := HasValidEntries(tr, dir)
	if err != nil || !ok {
		t.Fatalf("HasValidEntries = %v, %v", ok, err)
	}
	rep, err := Recover(tr, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.NextSeq != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if got, err := tr.LoadInode(child.Ino); err != nil || got.Size != 7 {
		t.Fatalf("replayed inode: %+v, %v", got, err)
	}
	ents, _ := tr.LoadDentries(dir)
	if len(ents) != 1 || ents[0].Name != "lost" {
		t.Fatalf("replayed dentries: %v", ents)
	}
	if ok, _ := HasValidEntries(tr, dir); ok {
		t.Fatal("journal not cleared after recovery")
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	// Simulate a crash mid-recovery: originals updated but the journal
	// record still present. Replaying again must converge.
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(6)
	dir := src.Next()
	child := mkFileInode(src, 7)
	ops := createOps(dir, "dup", child)
	txn := &wire.Txn{ID: 1, Dir: dir, Kind: wire.TxnNormal, Ops: ops}
	if err := tr.Store().Put(prt.JournalKey(dir, 0), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	if err := ApplyOps(tr, dir, ops); err != nil { // first (interrupted) apply
		t.Fatal(err)
	}
	if _, err := Recover(tr, dir); err != nil { // replay over applied state
		t.Fatal(err)
	}
	ents, _ := tr.LoadDentries(dir)
	if len(ents) != 1 {
		t.Fatalf("idempotent replay broke dentries: %v", ents)
	}
}

func TestRecoveryDiscardsTornRecords(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(7)
	dir := src.Next()
	good := &wire.Txn{ID: 1, Dir: dir, Kind: wire.TxnNormal,
		Ops: createOps(dir, "ok", mkFileInode(src, 1))}
	if err := tr.Store().Put(prt.JournalKey(dir, 0), wire.EncodeTxn(good)); err != nil {
		t.Fatal(err)
	}
	torn := wire.EncodeTxn(&wire.Txn{ID: 2, Dir: dir, Kind: wire.TxnNormal,
		Ops: createOps(dir, "torn", mkFileInode(src, 1))})
	if err := tr.Store().Put(prt.JournalKey(dir, 1), torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(tr, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.Corrupt != 1 {
		t.Fatalf("report: %+v", rep)
	}
	ents, _ := tr.LoadDentries(dir)
	if len(ents) != 1 || ents[0].Name != "ok" {
		t.Fatalf("dentries: %v", ents)
	}
}

func TestFlushSurfacesCommitErrors(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fault := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fault, 64)
	j := New(env, tr, Config{CommitInterval: time.Hour, CommitWorkers: 1, CheckpointWorkers: 1})
	defer j.Close()
	src := types.NewInoSource(8)
	dir := src.Next()
	fault.FailNext(prt.PrefixJournal, 1)
	j.Log(context.Background(), dir, createOps(dir, "f", mkFileInode(src, 1)))
	if err := j.Flush(dir); !errors.Is(err, types.ErrIO) {
		t.Fatalf("flush must surface the commit failure, got %v", err)
	}
	// Subsequent flushes are clean (error consumed).
	if err := j.Flush(dir); err != nil {
		t.Fatalf("second flush: %v", err)
	}
}

func TestDentryOpsApplyInOrder(t *testing.T) {
	// add f; del f; add f (new ino) — final state must be the last add.
	tr := prt.New(objstore.NewMemStore(), 64)
	src := types.NewInoSource(9)
	dir := src.Next()
	a, b := mkFileInode(src, 1), mkFileInode(src, 2)
	ops := []wire.Op{
		{Kind: wire.OpSetInode, Inode: a},
		{Kind: wire.OpAddDentry, Name: "f", Ino: a.Ino, FType: a.Type},
		{Kind: wire.OpDelDentry, Name: "f"},
		{Kind: wire.OpDelInode, Ino: a.Ino},
		{Kind: wire.OpSetInode, Inode: b},
		{Kind: wire.OpAddDentry, Name: "f", Ino: b.Ino, FType: b.Type},
	}
	if err := ApplyOps(tr, dir, ops); err != nil {
		t.Fatal(err)
	}
	ents, _ := tr.LoadDentries(dir)
	if len(ents) != 1 || ents[0].Ino != b.Ino {
		t.Fatalf("final dentries: %v", ents)
	}
	if _, err := tr.LoadInode(a.Ino); !errors.Is(err, types.ErrNotExist) {
		t.Fatal("first inode should be deleted")
	}
}

func TestParallelDirectoriesIndependentJournals(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		store := objstore.NewMemStore()
		tr := prt.New(store, 1024)
		j := New(env, tr, Config{CommitInterval: 100 * time.Millisecond, CommitWorkers: 4, CheckpointWorkers: 4})
		defer j.Close()
		src := types.NewInoSource(10)
		g := sim.NewGroup(env)
		dirs := make([]types.Ino, 8)
		for i := range dirs {
			dirs[i] = src.Next()
		}
		for i, dir := range dirs {
			dir := dir
			seed := int64(100 + i)
			g.Go(func() {
				local := types.NewInoSource(seed)
				for k := 0; k < 20; k++ {
					child := &types.Inode{Ino: local.Next(), Type: types.TypeRegular, Nlink: 1}
					j.Log(context.Background(), dir, createOps(dir, "f"+string(rune('a'+k)), child))
				}
				if err := j.Flush(dir); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait()
		for _, dir := range dirs {
			ents, err := tr.LoadDentries(dir)
			if err != nil || len(ents) != 20 {
				t.Errorf("dir %s: %d entries, %v", dir.Short(), len(ents), err)
			}
		}
	})
}
