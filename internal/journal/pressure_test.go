package journal

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// TestPressureTracksBacklog: Pressure() is the sealed-but-not-durable backlog
// normalized by the pipeline window — the signal the leader's brownout ladder
// sheds on. Idle it reads 0; with the store slowed it climbs past 1 as sealed
// records queue behind in-flight PUTs; once everything drains it returns to 0.
func TestPressureTracksBacklog(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fault := objstore.NewFaultStore(objstore.NewMemStore())
	tr := prt.New(fault, 64)
	j := New(env, tr, Config{
		CommitInterval: time.Millisecond,
		CommitWorkers:  1, CheckpointWorkers: 1, PipelineDepth: 1,
	})
	defer j.Close()

	if p := j.Pressure(); p != 0 {
		t.Fatalf("idle pressure = %v, want 0", p)
	}
	// Slow every store op so sealed records pile up behind the single
	// in-flight PUT (window = workers × depth = 1).
	fault.InjectLatency(env, 30*time.Millisecond)
	src := types.NewInoSource(1)
	dir := src.Next()
	for i := 0; i < 8; i++ {
		child := mkFileInode(src, 1)
		j.Log(context.Background(), dir, createOps(dir, "f"+string(rune('a'+i)), child))
		// Let the group-commit timer seal this batch before the next append,
		// so each loop iteration becomes its own queued journal record.
		time.Sleep(3 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Pressure() <= 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pressure never exceeded 1 (now %v)", j.Pressure())
		}
		time.Sleep(time.Millisecond)
	}
	fault.InjectLatency(env, 0)
	if err := j.Flush(dir); err != nil {
		t.Fatal(err)
	}
	for j.Pressure() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pressure stuck at %v after drain", j.Pressure())
		}
		time.Sleep(time.Millisecond)
	}
}
