package journal

import (
	"context"
	"fmt"

	"arkfs/internal/crashpoint"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Two-phase commit across per-directory journals (paper §III-E): a RENAME
// whose source and destination directories differ must commit one journal
// entry in each journal atomically. The source directory's leader
// coordinates; both journals receive prepare records, the coordinator's
// journal receives the decision, and prepared transactions are applied only
// after the decision is durable. Recovery uses presumed abort.

// WritePrepare synchronously journals a prepare record carrying ops for dir.
// peer is the coordinating directory (for participants) or the participant
// directory (for the coordinator); recovery follows it to find the decision.
// The prepare stands behind a durability barrier: every record sealed before
// it must be durable first, so a prepared transaction never depends on a
// record that could still be lost (it does not wait for checkpoints — replay
// order is what matters, and the watermark guarantees the replayable prefix).
// The prepare write becomes a child span of the trace in ctx (the rename
// operation driving the 2PC).
func (j *Journal) WritePrepare(ctx context.Context, dir types.Ino, txid uint64, peer types.Ino, ops []wire.Op) error {
	if err := j.Barrier(dir); err != nil {
		return fmt.Errorf("journal: pre-prepare barrier: %w", err)
	}
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	seq := dj.nextSeq
	dj.nextSeq++
	dj.mu.Unlock()
	txn := &wire.Txn{
		ID: txid, Dir: dir, Kind: wire.TxnPrepare, Peer: peer,
		Stamp: j.env.Now(), Ops: ops,
	}
	key := prt.JournalKey(dir, seq)
	sp := j.trace.StartChild(obs.SpanContextFrom(ctx), "journal.2pc.prepare", key)
	sp.SetDir(dir)
	sp.SetTenant(obs.TenantFrom(ctx))
	put := j.trace.StartChild(sp.Context(), "objstore.put", key)
	put.SetTenant(obs.TenantFrom(ctx))
	err := j.tr.Store().Put(key, wire.EncodeTxn(txn))
	put.End(err)
	sp.End(err)
	// Written or not, the slot is resolved: a failed synchronous PUT leaves a
	// hole the watermark (and recovery) tolerates, and blocking the watermark
	// on it would wedge every later barrier.
	j.markSeqResolved(dj, seq)
	if err != nil {
		return fmt.Errorf("journal: write prepare %s: %w", key, err)
	}
	dj.mu.Lock()
	dj.prepared[txid] = seq
	dj.prepOps[txid] = ops
	dj.mu.Unlock()
	j.c2pcPrepares.Inc()
	j.cfg.Crash.Hit(crashpoint.TwoPCPostPrepare)
	return nil
}

// WriteDecision synchronously journals the coordinator's commit/abort
// decision for txid in dir's journal. peer is the participant directory;
// recovery keeps the decision record alive until the participant's prepare
// record has been resolved, so a doubly-crashed rename still converges.
func (j *Journal) WriteDecision(ctx context.Context, dir types.Ino, txid uint64, peer types.Ino, commit bool) error {
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	seq := dj.nextSeq
	dj.nextSeq++
	dj.mu.Unlock()
	kind := wire.TxnCommit
	if !commit {
		kind = wire.TxnAbort
	}
	txn := &wire.Txn{ID: txid, Dir: dir, Kind: kind, Peer: peer, Stamp: j.env.Now()}
	key := prt.JournalKey(dir, seq)
	sp := j.trace.StartChild(obs.SpanContextFrom(ctx), "journal.2pc.decision", key)
	sp.SetDir(dir)
	sp.SetTenant(obs.TenantFrom(ctx))
	put := j.trace.StartChild(sp.Context(), "objstore.put", key)
	put.SetTenant(obs.TenantFrom(ctx))
	err := j.tr.Store().Put(key, wire.EncodeTxn(txn))
	put.End(err)
	sp.End(err)
	// Resolve the slot either way so the durability watermark can pass it
	// (see WritePrepare).
	j.markSeqResolved(dj, seq)
	if err != nil {
		return fmt.Errorf("journal: write decision %s: %w", key, err)
	}
	dj.mu.Lock()
	if dj.decisions == nil {
		dj.decisions = make(map[uint64]uint64)
	}
	dj.decisions[txid] = seq
	dj.mu.Unlock()
	if commit {
		j.c2pcCommits.Inc()
	} else {
		j.c2pcAborts.Inc()
	}
	j.cfg.Crash.Hit(crashpoint.TwoPCPostDecision)
	return nil
}

// DeleteDecision garbage-collects a decision record once every participant
// has resolved its prepare. Deleting earlier would turn a committed rename
// into a presumed abort on a crashed participant's recovery.
func (j *Journal) DeleteDecision(dir types.Ino, txid uint64) error {
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	dseq, ok := dj.decisions[txid]
	delete(dj.decisions, txid)
	dj.mu.Unlock()
	if !ok {
		return nil
	}
	if err := j.tr.Store().Delete(prt.JournalKey(dir, dseq)); err != nil {
		return fmt.Errorf("journal: gc decision %d: %w", txid, err)
	}
	return nil
}

// ResolvePrepared applies (commit=true) or discards (commit=false) a
// prepared transaction and removes its prepare record. The coordinator's
// decision record is GC'd separately via DeleteDecision. It runs through the
// directory's checkpoint worker to stay serialized with normal checkpoints;
// the checkpoint span parents under the trace in ctx.
func (j *Journal) ResolvePrepared(ctx context.Context, dir types.Ino, txid uint64, commit bool) error {
	dj := j.dirJournal(dir)
	dj.mu.Lock()
	seq, okSeq := dj.prepared[txid]
	ops := dj.prepOps[txid]
	delete(dj.prepared, txid)
	delete(dj.prepOps, txid)
	var del []string
	if okSeq {
		del = append(del, prt.JournalKey(dir, seq))
	}
	dj.mu.Unlock()
	if !okSeq {
		return fmt.Errorf("journal: no prepared txn %d for %s: %w", txid, dir.Short(), types.ErrInval)
	}
	applied := ops
	if !commit {
		applied = []wire.Op{} // non-nil: still delete the records
	}
	done := sim.NewChan[error](j.env)
	if !j.ckptQ(dir).Send(&ckptItem{dj: dj, ops: applied, del: del, sc: obs.SpanContextFrom(ctx), done: done}) {
		return fmt.Errorf("journal: shut down resolving txn %d: %w", txid, types.ErrIO)
	}
	err, ok := done.Recv()
	if !ok {
		return fmt.Errorf("journal: shut down resolving txn %d: %w", txid, types.ErrIO)
	}
	return err
}
