package journal

import (
	"errors"
	"fmt"
	"sort"

	"arkfs/internal/prt"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Report summarizes one directory's journal recovery.
type Report struct {
	// Replayed counts committed transactions applied to the originals.
	Replayed int
	// Committed2PC and Aborted2PC count resolved prepared transactions.
	Committed2PC int
	Aborted2PC   int
	// Corrupt counts records dropped for CRC/decode failures (torn writes).
	Corrupt int
	// NextSeq is one past the highest sequence observed; the new leader
	// primes its journal with it.
	NextSeq uint64
}

// Recover scans dir's journal after a leadership change. Valid transactions
// remaining in the journal mean the previous leader crashed before
// checkpointing (paper §III-E-1); they are replayed in sequence order.
// Prepared transactions are resolved through the coordinator's journal with
// presumed abort. All of dir's journal objects are removed on success.
func Recover(tr *prt.Translator, dir types.Ino) (Report, error) {
	var rep Report
	keys, err := tr.Store().List(prt.JournalPrefix(dir))
	if err != nil {
		return rep, fmt.Errorf("journal: recovery list: %w", err)
	}
	// Keys encode the sequence in fixed-width hex, so lexical order is
	// sequence order; List already sorts.
	type rec struct {
		key string
		seq uint64
		txn *wire.Txn
	}
	var recs []rec
	for _, key := range keys {
		seq, err := prt.ParseJournalSeq(key)
		if err != nil {
			rep.Corrupt++
			continue
		}
		if seq+1 > rep.NextSeq {
			rep.NextSeq = seq + 1
		}
		raw, err := tr.Store().Get(key)
		if err != nil {
			if errors.Is(err, types.ErrNotExist) {
				continue // raced with a concurrent invalidation
			}
			return rep, fmt.Errorf("journal: recovery read %s: %w", key, err)
		}
		txn, err := wire.DecodeTxn(raw)
		if err != nil {
			// Torn write at the crash point: discard the record.
			rep.Corrupt++
			if derr := tr.Store().Delete(key); derr != nil {
				return rep, fmt.Errorf("journal: recovery drop %s: %w", key, derr)
			}
			continue
		}
		recs = append(recs, rec{key: key, seq: seq, txn: txn})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })

	for _, r := range recs {
		switch r.txn.Kind {
		case wire.TxnNormal:
			if err := ApplyOps(tr, dir, r.txn.Ops); err != nil {
				return rep, fmt.Errorf("journal: recovery replay seq %d: %w", r.seq, err)
			}
			rep.Replayed++
		case wire.TxnPrepare:
			committed, err := decisionFor(tr, r.txn)
			if err != nil {
				return rep, err
			}
			if committed {
				if err := ApplyOps(tr, dir, r.txn.Ops); err != nil {
					return rep, fmt.Errorf("journal: recovery 2pc apply txn %d: %w", r.txn.ID, err)
				}
				rep.Committed2PC++
			} else {
				rep.Aborted2PC++
			}
		case wire.TxnCommit, wire.TxnAbort:
			// Decision records are consumed by the peer's recovery. Keep the
			// record while the participant's prepare is still outstanding —
			// deleting it early would flip a committed rename into a
			// presumed abort on the participant's side.
			if outstanding, err := hasPrepare(tr, r.txn.Peer, r.txn.ID); err != nil {
				return rep, err
			} else if outstanding {
				continue // retain; the participant's recovery needs it
			}
		default:
			rep.Corrupt++
		}
		if err := tr.Store().Delete(r.key); err != nil {
			return rep, fmt.Errorf("journal: recovery invalidate %s: %w", r.key, err)
		}
	}
	return rep, nil
}

// hasPrepare reports whether dir's journal still holds a prepare record for
// txid.
func hasPrepare(tr *prt.Translator, dir types.Ino, txid uint64) (bool, error) {
	if dir.IsNil() {
		return false, nil
	}
	keys, err := tr.Store().List(prt.JournalPrefix(dir))
	if err != nil {
		return false, fmt.Errorf("journal: prepare scan: %w", err)
	}
	for _, key := range keys {
		raw, err := tr.Store().Get(key)
		if err != nil {
			continue
		}
		txn, err := wire.DecodeTxn(raw)
		if err != nil {
			continue
		}
		if txn.Kind == wire.TxnPrepare && txn.ID == txid {
			return true, nil
		}
	}
	return false, nil
}

// decisionFor locates the coordinator's decision for a prepared transaction.
// For a coordinator's own prepare (peer journal holds no decision), its own
// journal is scanned too. Missing decision = presumed abort.
func decisionFor(tr *prt.Translator, prepare *wire.Txn) (bool, error) {
	for _, dir := range []types.Ino{prepare.Peer, prepare.Dir} {
		if dir.IsNil() {
			continue
		}
		keys, err := tr.Store().List(prt.JournalPrefix(dir))
		if err != nil {
			return false, fmt.Errorf("journal: decision scan: %w", err)
		}
		for _, key := range keys {
			raw, err := tr.Store().Get(key)
			if err != nil {
				continue
			}
			txn, err := wire.DecodeTxn(raw)
			if err != nil {
				continue
			}
			if txn.ID != prepare.ID {
				continue
			}
			switch txn.Kind {
			case wire.TxnCommit:
				return true, nil
			case wire.TxnAbort:
				return false, nil
			}
		}
	}
	return false, nil // presumed abort
}

// PendingDecision consults the coordinator directory's journal for the fate
// of a prepared transaction a live participant is still holding in memory.
// Outcomes:
//   - a decision record for txid exists: decided, with its commit/abort;
//   - the coordinator's own prepare record for txid still exists: the
//     coordinator has not decided (alive but slow, or crashed and not yet
//     recovered) — keep waiting;
//   - neither exists: the coordinator's recovery ran and resolved the
//     transaction by presumed abort (a retained commit decision would still
//     be present while our prepare is outstanding), so the answer is abort.
//
// The coordinator always journals its own prepare before contacting the
// participant, so "no trace of txid" can only mean a completed recovery.
func PendingDecision(tr *prt.Translator, coordDir types.Ino, txid uint64) (decided, commit bool, err error) {
	keys, err := tr.Store().List(prt.JournalPrefix(coordDir))
	if err != nil {
		return false, false, fmt.Errorf("journal: decision probe: %w", err)
	}
	prepareSeen := false
	for _, key := range keys {
		raw, err := tr.Store().Get(key)
		if err != nil {
			if errors.Is(err, types.ErrNotExist) {
				continue // raced with an invalidation
			}
			return false, false, fmt.Errorf("journal: decision probe read %s: %w", key, err)
		}
		txn, err := wire.DecodeTxn(raw)
		if err != nil || txn.ID != txid {
			continue
		}
		switch txn.Kind {
		case wire.TxnCommit:
			return true, true, nil
		case wire.TxnAbort:
			return true, false, nil
		case wire.TxnPrepare:
			prepareSeen = true
		}
	}
	if prepareSeen {
		return false, false, nil
	}
	return true, false, nil // presumed abort
}

// HasValidEntries reports whether dir's journal contains any records — the
// check a new leader performs to decide if recovery is needed.
func HasValidEntries(tr *prt.Translator, dir types.Ino) (bool, error) {
	keys, err := tr.Store().List(prt.JournalPrefix(dir))
	if err != nil {
		return false, fmt.Errorf("journal: entry check: %w", err)
	}
	return len(keys) > 0, nil
}
