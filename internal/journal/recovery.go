package journal

import (
	"errors"
	"fmt"
	"sort"

	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Report summarizes one directory's journal recovery.
type Report struct {
	// Replayed counts committed transactions applied to the originals.
	Replayed int
	// Committed2PC and Aborted2PC count resolved prepared transactions;
	// Undecided2PC counts prepares retained because a corrupt record hides
	// the coordinator's decision.
	Committed2PC int
	Aborted2PC   int
	Undecided2PC int
	// Corrupt counts records that failed CRC/decode (torn or bit-rotted).
	Corrupt int
	// Truncated counts records discarded by the truncation rule: the first
	// corrupt record and everything after it in sequence order.
	Truncated int
	// NextSeq is one past the highest sequence observed; the new leader
	// primes its journal with it.
	NextSeq uint64
}

// Recover scans dir's journal after a leadership change. Valid transactions
// remaining in the journal mean the previous leader crashed before
// checkpointing (paper §III-E-1); they are replayed in sequence order.
// Prepared transactions are resolved through the coordinator's journal with
// presumed abort. All of dir's journal objects are removed on success.
//
// Corruption follows the truncation rule: the journal is cut at the first
// record that fails verification, and every later record is discarded
// unreplayed — a transaction is only durable if every record before it is
// intact, exactly like a single-file write-ahead log. Replaying past a gap
// could apply operations whose prerequisites were in the lost record.
func Recover(tr *prt.Translator, dir types.Ino) (Report, error) {
	return RecoverWith(tr, dir, nil)
}

// RecoverWith is Recover with integrity counters registered on reg
// (integrity.detected, integrity.truncated, integrity.repaired). A nil
// registry is inert.
func RecoverWith(tr *prt.Translator, dir types.Ino, reg *obs.Registry) (Report, error) {
	var rep Report
	detected := reg.Counter("integrity.detected")
	truncated := reg.Counter("integrity.truncated")
	keys, err := tr.Store().List(prt.JournalPrefix(dir))
	if err != nil {
		return rep, fmt.Errorf("journal: recovery list: %w", err)
	}
	// Keys encode the sequence in fixed-width hex, so lexical order is
	// sequence order; List already sorts. Re-sort defensively anyway.
	type rec struct {
		key string
		seq uint64
		txn *wire.Txn
	}
	ordered := make([]rec, 0, len(keys))
	for _, key := range keys {
		seq, err := prt.ParseJournalSeq(key)
		if err != nil {
			// Not a journal record at all; count it but leave it for the
			// scrubber — it does not occupy a slot in the sequence.
			rep.Corrupt++
			detected.Inc()
			continue
		}
		if seq+1 > rep.NextSeq {
			rep.NextSeq = seq + 1
		}
		ordered = append(ordered, rec{key: key, seq: seq})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })

	recs := ordered[:0]
	cut := false
	for i := range ordered {
		r := &ordered[i]
		if cut {
			// Past the first bad record: discard without replaying.
			rep.Truncated++
			truncated.Inc()
			if derr := tr.Store().Delete(r.key); derr != nil {
				return rep, fmt.Errorf("journal: recovery truncate %s: %w", r.key, derr)
			}
			continue
		}
		txn, found, err := readTxn(tr, r.key)
		if err != nil {
			return rep, fmt.Errorf("journal: recovery read %s: %w", r.key, err)
		}
		if !found {
			continue // raced with a concurrent invalidation
		}
		if txn == nil {
			// Verified corrupt (survived a confirming re-read): cut here.
			rep.Corrupt++
			detected.Inc()
			rep.Truncated++
			truncated.Inc()
			cut = true
			if derr := tr.Store().Delete(r.key); derr != nil {
				return rep, fmt.Errorf("journal: recovery truncate %s: %w", r.key, derr)
			}
			continue
		}
		r.txn = txn
		recs = append(recs, *r)
	}

	for _, r := range recs {
		switch r.txn.Kind {
		case wire.TxnNormal:
			if err := applyOpsRepair(tr, dir, r.txn.Ops, reg); err != nil {
				return rep, fmt.Errorf("journal: recovery replay seq %d: %w", r.seq, err)
			}
			rep.Replayed++
		case wire.TxnPrepare:
			committed, undecided, err := decisionFor(tr, r.txn)
			if err != nil {
				return rep, err
			}
			if undecided {
				// A corrupt record in the coordinator's journal may be the
				// decision: neither commit nor presume abort. Retain the
				// prepare; the coordinator's own recovery truncates the bad
				// record and a later pass resolves it.
				rep.Undecided2PC++
				continue
			}
			if committed {
				if err := applyOpsRepair(tr, dir, r.txn.Ops, reg); err != nil {
					return rep, fmt.Errorf("journal: recovery 2pc apply txn %d: %w", r.txn.ID, err)
				}
				rep.Committed2PC++
			} else {
				rep.Aborted2PC++
			}
		case wire.TxnCommit, wire.TxnAbort:
			// Decision records are consumed by the peer's recovery. Keep the
			// record while the participant's prepare is still outstanding —
			// deleting it early would flip a committed rename into a
			// presumed abort on the participant's side.
			if outstanding, err := hasPrepare(tr, r.txn.Peer, r.txn.ID); err != nil {
				return rep, err
			} else if outstanding {
				continue // retain; the participant's recovery needs it
			}
		default:
			rep.Corrupt++
			detected.Inc()
		}
		if err := tr.Store().Delete(r.key); err != nil {
			return rep, fmt.Errorf("journal: recovery invalidate %s: %w", r.key, err)
		}
	}
	return rep, nil
}

// readTxn fetches and decodes one journal record. A record that fails
// verification is re-read once before being declared corrupt, so transient
// read-side corruption (a flipped bit on the wire, not at rest) cannot make
// recovery truncate an acknowledged transaction. Returns (nil, true, nil)
// for a record that is verifiably corrupt at rest and (nil, false, nil) for
// a record deleted underneath the scan.
func readTxn(tr *prt.Translator, key string) (*wire.Txn, bool, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		raw, err := tr.Store().Get(key)
		if err != nil {
			if errors.Is(err, types.ErrNotExist) {
				return nil, false, nil
			}
			return nil, false, err
		}
		txn, derr := wire.DecodeTxn(raw)
		if derr == nil {
			return txn, true, nil
		}
		lastErr = derr
	}
	_ = lastErr
	return nil, true, nil
}

// hasPrepare reports whether dir's journal still holds a prepare record for
// txid. A record that cannot be decoded is conservatively treated as the
// prepare: retaining a decision record longer than necessary is harmless,
// while dropping one early flips a committed rename into a presumed abort.
func hasPrepare(tr *prt.Translator, dir types.Ino, txid uint64) (bool, error) {
	if dir.IsNil() {
		return false, nil
	}
	keys, err := tr.Store().List(prt.JournalPrefix(dir))
	if err != nil {
		return false, fmt.Errorf("journal: prepare scan: %w", err)
	}
	for _, key := range keys {
		raw, err := tr.Store().Get(key)
		if err != nil {
			continue
		}
		txn, err := wire.DecodeTxn(raw)
		if err != nil {
			return true, nil // could be the prepare; retain the decision
		}
		if txn.Kind == wire.TxnPrepare && txn.ID == txid {
			return true, nil
		}
	}
	return false, nil
}

// decisionFor locates the coordinator's decision for a prepared transaction.
// For a coordinator's own prepare (peer journal holds no decision), its own
// journal is scanned too. Missing decision = presumed abort — but only when
// every record scanned was readable: a corrupt record could be the commit
// decision, so its presence makes the outcome undecided rather than abort.
func decisionFor(tr *prt.Translator, prepare *wire.Txn) (committed, undecided bool, err error) {
	sawCorrupt := false
	for _, dir := range []types.Ino{prepare.Peer, prepare.Dir} {
		if dir.IsNil() {
			continue
		}
		keys, err := tr.Store().List(prt.JournalPrefix(dir))
		if err != nil {
			return false, false, fmt.Errorf("journal: decision scan: %w", err)
		}
		for _, key := range keys {
			raw, err := tr.Store().Get(key)
			if err != nil {
				continue
			}
			txn, err := wire.DecodeTxn(raw)
			if err != nil {
				sawCorrupt = true
				continue
			}
			if txn.ID != prepare.ID {
				continue
			}
			switch txn.Kind {
			case wire.TxnCommit:
				return true, false, nil
			case wire.TxnAbort:
				return false, false, nil
			}
		}
	}
	if sawCorrupt {
		return false, true, nil // the decision may be inside the corrupt record
	}
	return false, false, nil // presumed abort
}

// PendingDecision consults the coordinator directory's journal for the fate
// of a prepared transaction a live participant is still holding in memory.
// Outcomes:
//   - a decision record for txid exists: decided, with its commit/abort;
//   - the coordinator's own prepare record for txid still exists: the
//     coordinator has not decided (alive but slow, or crashed and not yet
//     recovered) — keep waiting;
//   - neither exists: the coordinator's recovery ran and resolved the
//     transaction by presumed abort (a retained commit decision would still
//     be present while our prepare is outstanding), so the answer is abort.
//
// The coordinator always journals its own prepare before contacting the
// participant, so "no trace of txid" can only mean a completed recovery.
func PendingDecision(tr *prt.Translator, coordDir types.Ino, txid uint64) (decided, commit bool, err error) {
	keys, err := tr.Store().List(prt.JournalPrefix(coordDir))
	if err != nil {
		return false, false, fmt.Errorf("journal: decision probe: %w", err)
	}
	prepareSeen := false
	for _, key := range keys {
		raw, err := tr.Store().Get(key)
		if err != nil {
			if errors.Is(err, types.ErrNotExist) {
				continue // raced with an invalidation
			}
			return false, false, fmt.Errorf("journal: decision probe read %s: %w", key, err)
		}
		txn, err := wire.DecodeTxn(raw)
		if err != nil {
			// A corrupt record may be the decision for txid: undecided.
			// The coordinator's recovery truncates it; probe again later.
			prepareSeen = true
			continue
		}
		if txn.ID != txid {
			continue
		}
		switch txn.Kind {
		case wire.TxnCommit:
			return true, true, nil
		case wire.TxnAbort:
			return true, false, nil
		case wire.TxnPrepare:
			prepareSeen = true
		}
	}
	if prepareSeen {
		return false, false, nil
	}
	return true, false, nil // presumed abort
}

// HasValidEntries reports whether dir's journal contains any records — the
// check a new leader performs to decide if recovery is needed.
func HasValidEntries(tr *prt.Translator, dir types.Ino) (bool, error) {
	keys, err := tr.Store().List(prt.JournalPrefix(dir))
	if err != nil {
		return false, fmt.Errorf("journal: entry check: %w", err)
	}
	return len(keys) > 0, nil
}
