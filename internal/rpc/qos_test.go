package rpc

import (
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// TestInboxBoundSheds: a server with MaxInbox refuses excess calls at the
// door with a typed EAGAIN instead of queueing without bound, and the shed is
// counted.
func TestInboxBoundSheds(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	reg := obs.NewRegistry()
	net.SetObs(reg)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := net.Listen("srv", 1, func(req any) any {
		entered <- struct{}{}
		<-release
		return req
	}, ServerLimits{MaxInbox: 1, RetryAfter: 7 * time.Millisecond})
	defer srv.Close()

	done := make(chan error, 2)
	go func() { _, err := net.Call("srv", 1); done <- err }() // occupies the worker
	<-entered
	go func() { _, err := net.Call("srv", 2); done <- err }() // fills the inbox
	// Wait for the second call to actually be queued before probing the bound.
	deadline := time.Now().Add(2 * time.Second)
	for srv.inbox.Len() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second call never reached the inbox")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := net.Call("srv", 3)
	if !errors.Is(err, types.ErrAgain) {
		t.Fatalf("over-bound call: err = %v, want EAGAIN", err)
	}
	if after, ok := types.RetryAfter(err); !ok || after != 7*time.Millisecond {
		t.Fatalf("retry-after hint = %v/%v, want 7ms", after, ok)
	}
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted call %d failed: %v", i, err)
		}
	}
	if got := reg.Counter("qos.shed.rpc.inbox").Value(); got != 1 {
		t.Fatalf("qos.shed.rpc.inbox = %d, want 1", got)
	}
}

// TestQueueWaitShed: a request whose enqueue→pickup wait exceeds ShedWait is
// shed at pickup — the handler never runs for it — with a typed EAGAIN.
func TestQueueWaitShed(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	reg := obs.NewRegistry()
	net.SetObs(reg)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	handled := make(chan any, 4)
	srv := net.Listen("srv", 1, func(req any) any {
		handled <- req
		entered <- struct{}{}
		<-release
		return req
	}, ServerLimits{ShedWait: 10 * time.Millisecond})
	defer srv.Close()

	first := make(chan error, 1)
	go func() { _, err := net.Call("srv", 1); first <- err }()
	<-entered
	stale := make(chan error, 1)
	go func() { _, err := net.Call("srv", 2); stale <- err }()
	// Let the queued request age well past ShedWait, then free the worker.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first call failed: %v", err)
	}
	err := <-stale
	if !errors.Is(err, types.ErrAgain) {
		t.Fatalf("stale call: err = %v, want EAGAIN", err)
	}
	if after, ok := types.RetryAfter(err); !ok || after < 10*time.Millisecond {
		t.Fatalf("stale-wait hint = %v/%v, want ≥ ShedWait", after, ok)
	}
	if len(handled) != 1 {
		t.Fatalf("handler ran %d times, want 1 (shed request must not burn service time)", len(handled))
	}
	if got := reg.Counter("qos.shed.rpc.wait").Value(); got != 1 {
		t.Fatalf("qos.shed.rpc.wait = %d, want 1", got)
	}
}

// TestShedSurvivesTCPBridge: typed pushback — errors.Is(err, ErrAgain) AND
// the retry-after hint — crosses a real socket intact: local server sheds,
// the bridge re-encodes the Shed payload, the remote fabric rehydrates the
// same typed error.
func TestShedSurvivesTCPBridge(t *testing.T) {
	gob.Register(tcpMsg{})
	envA := sim.NewRealEnv()
	defer envA.Shutdown()
	netA := NewNetwork(envA, sim.NetModel{})
	srv := netA.Listen("target", 1, func(req any) any {
		return &Shed{AfterNS: int64(9 * time.Millisecond), Reason: "test-shed"}
	})
	defer srv.Close()
	bridge, err := netA.Bridge("127.0.0.1:0", "target")
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	envB := sim.NewRealEnv()
	defer envB.Shutdown()
	netB := NewNetwork(envB, sim.NetModel{})
	_, err = netB.Call(TCPAddr(bridge.Addr()), tcpMsg{S: "hi"})
	if !errors.Is(err, types.ErrAgain) {
		t.Fatalf("bridged shed: err = %v, want EAGAIN", err)
	}
	if after, ok := types.RetryAfter(err); !ok || after != 9*time.Millisecond {
		t.Fatalf("bridged retry-after hint = %v/%v, want 9ms", after, ok)
	}
}
