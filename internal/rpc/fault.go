package rpc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// FaultPlan injects network failures into a Network: seeded probabilistic
// message drops, added per-message latency with jitter, and one-way
// partitions between address sets, optionally on a schedule. All timing goes
// through the environment clock, so under VirtEnv a plan is deterministic
// for a given seed and scenario.
//
// Directionality: a partition blocks messages flowing source→destination.
// Blocking the request direction fails the call before the handler runs;
// blocking only the response direction lets the handler execute (its side
// effects land) while the caller still observes a timeout — the classic
// "did my op happen?" ambiguity that retry and recovery code must survive.
type FaultPlan struct {
	env sim.Env

	mu      sync.Mutex
	rng     *rand.Rand
	drop    float64
	latency time.Duration
	jitter  time.Duration
	timeout time.Duration
	parts   []*Partition
}

// DefaultFaultTimeout is charged to a caller whose message was dropped or
// partitioned, standing in for the RPC layer's request timeout.
const DefaultFaultTimeout = 5 * time.Millisecond

// NewFaultPlan creates an inert plan (no drops, no partitions) whose random
// choices derive from seed.
func NewFaultPlan(env sim.Env, seed int64) *FaultPlan {
	return &FaultPlan{env: env, rng: rand.New(rand.NewSource(seed)), timeout: DefaultFaultTimeout}
}

// SetDrop makes every message (either direction) vanish with probability
// prob. prob <= 0 disables drops.
func (p *FaultPlan) SetDrop(prob float64) {
	p.mu.Lock()
	p.drop = prob
	p.mu.Unlock()
}

// SetLatency adds d (± a uniform draw from jitter) to every message.
func (p *FaultPlan) SetLatency(d, jitter time.Duration) {
	p.mu.Lock()
	p.latency, p.jitter = d, jitter
	p.mu.Unlock()
}

// SetTimeout sets how long a caller waits before a dropped or partitioned
// message surfaces as ErrTimedOut.
func (p *FaultPlan) SetTimeout(d time.Duration) {
	p.mu.Lock()
	p.timeout = d
	p.mu.Unlock()
}

// Partition is one (possibly scheduled) one-way partition. From and to are
// address sets; an empty set is a wildcard matching every address.
type Partition struct {
	plan   *FaultPlan
	from   map[Addr]bool
	to     map[Addr]bool
	start  time.Duration
	end    time.Duration // 0: until Heal
	healed bool
}

// Heal lifts the partition immediately.
func (pt *Partition) Heal() {
	pt.plan.mu.Lock()
	pt.healed = true
	pt.plan.mu.Unlock()
}

// blocks reports whether the partition currently blocks src→dst, at time now
// (caller holds the plan lock).
func (pt *Partition) blocks(src, dst Addr, now time.Duration) bool {
	if pt.healed || now < pt.start || (pt.end > 0 && now >= pt.end) {
		return false
	}
	if len(pt.from) > 0 && !pt.from[src] {
		return false
	}
	if len(pt.to) > 0 && !pt.to[dst] {
		return false
	}
	return true
}

// Partition blocks messages from every address in from to every address in
// to, starting now, until the returned handle is healed. Empty slices are
// wildcards ("everyone").
func (p *FaultPlan) Partition(from, to []Addr) *Partition {
	return p.PartitionFor(from, to, p.env.Now(), 0)
}

// PartitionFor installs a scheduled partition active during [start, end)
// (environment times); end 0 means "until healed".
func (p *FaultPlan) PartitionFor(from, to []Addr, start, end time.Duration) *Partition {
	pt := &Partition{plan: p, from: addrSet(from), to: addrSet(to), start: start, end: end}
	p.mu.Lock()
	p.parts = append(p.parts, pt)
	p.mu.Unlock()
	return pt
}

// HealAll lifts every partition (scenario drain).
func (p *FaultPlan) HealAll() {
	p.mu.Lock()
	for _, pt := range p.parts {
		pt.healed = true
	}
	p.parts = nil
	p.mu.Unlock()
}

func addrSet(addrs []Addr) map[Addr]bool {
	m := make(map[Addr]bool, len(addrs))
	for _, a := range addrs {
		m[a] = true
	}
	return m
}

// deliver decides the fate of one message src→dst: extra latency to charge,
// and whether the message is lost (with the timeout to charge before the
// caller sees the failure).
func (p *FaultPlan) deliver(src, dst Addr) (extra time.Duration, lost bool, timeout time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.env.Now()
	for _, pt := range p.parts {
		if pt.blocks(src, dst, now) {
			return 0, true, p.timeout
		}
	}
	if p.drop > 0 && p.rng.Float64() < p.drop {
		return 0, true, p.timeout
	}
	extra = p.latency
	if p.jitter > 0 {
		extra += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	return extra, false, 0
}

// apply charges the fate of one message and returns a non-nil error when the
// message was lost.
func (p *FaultPlan) apply(src, dst Addr, dir string) error {
	extra, lost, timeout := p.deliver(src, dst)
	if lost {
		if timeout > 0 {
			p.env.Sleep(timeout)
		}
		return fmt.Errorf("rpc: %s %q→%q lost (fault plan): %w", dir, src, dst, types.ErrTimedOut)
	}
	if extra > 0 {
		p.env.Sleep(extra)
	}
	return nil
}
