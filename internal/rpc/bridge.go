package rpc

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"arkfs/internal/qos"
)

// TCP bridging lets the live cmd/ tools run ArkFS components in separate
// processes: an in-process Network address can be exposed on a TCP port
// (Bridge), and addresses of the form "tcp!host:port" transparently dial the
// remote peer on Call. Messages must be gob-registered (the lease and core
// packages do this in their init functions).
//
// Bridged calls run on real sockets and therefore only make sense under a
// RealEnv; the virtual-clock benchmarks never use them.

// TCPPrefix marks an address as remote: "tcp!127.0.0.1:7400".
const TCPPrefix = "tcp!"

// TCPAddr builds a remote address for a host:port.
func TCPAddr(hostport string) Addr { return Addr(TCPPrefix + hostport) }

// Bridge exposes the local listener at target on a TCP endpoint. Remote
// peers reach it with TCPAddr(server.Addr()). The incoming trace identity is
// relayed onto the local fabric, so a trace started in another process
// continues through the bridged call.
func (n *Network) Bridge(bind string, target Addr) (*TCPServer, error) {
	return ListenTCP(bind, func(ctx context.Context, req any) any {
		resp, err := n.CallFromCtx(ctx, "", target, req)
		if err != nil {
			// Typed pushback must survive the bridge: re-encode it as the
			// Shed payload so the remote fabric rehydrates the same EAGAIN.
			if sh := shedPayload(err); sh != nil {
				return sh
			}
			return nil // the caller surfaces a decode/transport error
		}
		return resp
	})
}

// tcpPool caches one connection per remote endpoint.
var tcpPool = struct {
	mu    sync.Mutex
	conns map[string]*TCPClient
}{conns: make(map[string]*TCPClient)}

// callTCP performs a call to a "tcp!host:port" address, carrying the
// caller's trace identity, ring epoch, and tenant in the wire envelope.
func (n *Network) callTCP(meta callMeta, to Addr, req any) (any, error) {
	hostport := strings.TrimPrefix(string(to), TCPPrefix)
	tcpPool.mu.Lock()
	cli := tcpPool.conns[hostport]
	tcpPool.mu.Unlock()
	if cli == nil {
		var err error
		cli, err = DialTCP(hostport)
		if err != nil {
			return nil, fmt.Errorf("rpc: bridge dial %s: %w", hostport, err)
		}
		tcpPool.mu.Lock()
		if existing := tcpPool.conns[hostport]; existing != nil {
			_ = cli.Close()
			cli = existing
		} else {
			tcpPool.conns[hostport] = cli
		}
		tcpPool.mu.Unlock()
	}
	resp, err := cli.CallEnvelope(meta.sc, meta.epoch, meta.tenant, qos.Wire(meta.bud), req)
	if err != nil {
		// Drop the broken connection so the next call re-dials.
		tcpPool.mu.Lock()
		if tcpPool.conns[hostport] == cli {
			delete(tcpPool.conns, hostport)
		}
		tcpPool.mu.Unlock()
		_ = cli.Close()
		return nil, err
	}
	return resp, nil
}
