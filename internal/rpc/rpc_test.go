package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"sync"
	"testing"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

type echoReq struct {
	N    int
	Size int64
}

func (e echoReq) WireSize() int64 { return e.Size }

func TestNetworkCallRoundTrip(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	srv := net.Listen("echo", 2, func(req any) any {
		return req.(echoReq).N * 2
	})
	defer srv.Close()
	resp, err := net.Call("echo", echoReq{N: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(int) != 42 {
		t.Fatalf("resp = %v", resp)
	}
}

func TestNetworkUnknownAddr(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	if _, err := net.Call("ghost", 1); !errors.Is(err, types.ErrTimedOut) {
		t.Fatalf("want ErrTimedOut, got %v", err)
	}
}

func TestNetworkClosedServer(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	srv := net.Listen("s", 1, func(req any) any { return req })
	srv.Close()
	if _, err := net.Call("s", 1); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestNetworkDuplicateListenerPanics(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	srv := net.Listen("dup", 1, func(req any) any { return req })
	defer srv.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate listener")
		}
	}()
	net.Listen("dup", 1, func(req any) any { return req })
}

func TestNetworkLatencyCharged(t *testing.T) {
	env := sim.NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		net := NewNetwork(env, sim.NetModel{Latency: 5 * time.Millisecond, Bandwidth: 1 << 20})
		srv := net.Listen("svc", 1, func(req any) any { return struct{}{} })
		defer srv.Close()
		start := env.Now()
		// 1 MiB request at 1 MiB/s: 1s + 5ms out, 5ms back.
		if _, err := net.Call("svc", echoReq{Size: 1 << 20}); err != nil {
			t.Error(err)
		}
		elapsed = env.Now() - start
	})
	want := time.Second + 10*time.Millisecond
	if elapsed != want {
		t.Fatalf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestNetworkServerSerialization(t *testing.T) {
	// A 1-worker server with 10ms handler serializes 8 callers: 80ms total.
	env := sim.NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		net := NewNetwork(env, sim.NetModel{})
		srv := net.Listen("mds", 1, func(req any) any {
			env.Sleep(10 * time.Millisecond)
			return struct{}{}
		})
		defer srv.Close()
		start := env.Now()
		g := sim.NewGroup(env)
		for i := 0; i < 8; i++ {
			g.Go(func() {
				if _, err := net.Call("mds", 0); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait()
		elapsed = env.Now() - start
	})
	if elapsed != 80*time.Millisecond {
		t.Fatalf("elapsed = %v, want 80ms", elapsed)
	}
}

func TestNetworkNestedCalls(t *testing.T) {
	// a calls b inside a handler — the forwarding pattern leaders use.
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	b := net.Listen("b", 1, func(req any) any { return req.(int) + 1 })
	defer b.Close()
	a := net.Listen("a", 2, func(req any) any {
		resp, err := net.Call("b", req)
		if err != nil {
			return -1
		}
		return resp.(int) + 10
	})
	defer a.Close()
	resp, err := net.Call("a", 5)
	if err != nil || resp.(int) != 16 {
		t.Fatalf("resp = %v, %v", resp, err)
	}
}

type tcpMsg struct{ S string }

func TestTCPRoundTrip(t *testing.T) {
	gob.Register(tcpMsg{})
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, req any) any {
		m := req.(tcpMsg)
		return tcpMsg{S: m.S + "!"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				resp, err := cli.Call(obs.SpanContext{}, tcpMsg{S: "hi"})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.(tcpMsg).S != "hi!" {
					t.Errorf("resp = %v", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	gob.Register(tcpMsg{})
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, req any) any { return req })
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()
	if _, err := cli.Call(obs.SpanContext{}, tcpMsg{S: "x"}); err == nil {
		// A race may let one call through; a second must fail.
		if _, err := cli.Call(obs.SpanContext{}, tcpMsg{S: "y"}); err == nil {
			t.Fatal("calls to closed server keep succeeding")
		}
	}
}

// TestCallCtxCarriesSpanContext: the caller's trace identity — whether a
// live local span or a relayed remote context — arrives in the server
// handler's context; untraced calls arrive with the zero context.
func TestCallCtxCarriesSpanContext(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	var mu sync.Mutex
	var seen []obs.SpanContext
	srv := net.ListenCtx("srv", 1, func(ctx context.Context, req any) any {
		mu.Lock()
		seen = append(seen, obs.RemoteFrom(ctx))
		mu.Unlock()
		return req
	})
	defer srv.Close()

	tr := obs.NewTracer(4, nil)
	tr.SetSeed(3)
	sp := tr.StartRoot("op", "/p")
	ctx := obs.WithSpan(context.Background(), sp)
	if _, err := net.CallFromCtx(ctx, "cli", "srv", 1); err != nil {
		t.Fatal(err)
	}
	relay := obs.WithRemote(context.Background(), sp.Context())
	if _, err := net.CallFromCtx(relay, "cli", "srv", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := net.CallFromCtx(context.Background(), "cli", "srv", 3); err != nil {
		t.Fatal(err)
	}
	sp.End(nil)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("server saw %d calls, want 3", len(seen))
	}
	if seen[0] != sp.Context() || seen[1] != sp.Context() {
		t.Fatalf("trace identity lost: %v / %v, want %v", seen[0], seen[1], sp.Context())
	}
	if seen[2].Valid() {
		t.Fatalf("untraced call arrived with identity %v", seen[2])
	}
}

// TestTCPTracePropagation: the envelope carries the span context across a
// real socket.
func TestTCPTracePropagation(t *testing.T) {
	gob.Register(tcpMsg{})
	var mu sync.Mutex
	var seen []obs.SpanContext
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, req any) any {
		mu.Lock()
		seen = append(seen, obs.RemoteFrom(ctx))
		mu.Unlock()
		return req
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	want := obs.SpanContext{Trace: 0xabc, Span: 0xdef}
	if _, err := cli.Call(want, tcpMsg{S: "traced"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(obs.SpanContext{}, tcpMsg{S: "plain"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != want || seen[1].Valid() {
		t.Fatalf("server saw %v, want [%v, zero]", seen, want)
	}
}
