package rpc

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"arkfs/internal/obs"
	"arkfs/internal/qos"
	"arkfs/internal/types"
)

// envelope frames one gob-encoded message on the wire. Trace/Span carry the
// caller's trace identity across the process boundary (zero when untraced) —
// the TCP analogue of the SpanContext the in-process fabric attaches to each
// call. RingEpoch carries the caller's lease-ring epoch (0 when unsharded),
// so a bridged lease shard can detect stale clients exactly like an
// in-process one. Tenant carries the caller's tenant attribution ("" when
// unknown), so per-tenant accounting survives the hop too. Budget carries the
// caller's remaining retry-budget tokens (qos.NoBudget when unbudgeted): the
// server side derives a budget from it, so nested retries in another process
// still cannot exceed what the originating operation had left.
type envelope struct {
	Trace     uint64
	Span      uint64
	RingEpoch uint64
	Tenant    string
	Budget    int64
	Payload   any
}

// TCPServer serves CtxHandler over a TCP listener using gob encoding, one
// goroutine per connection with pipelined requests. Callers must gob.Register
// their concrete message types.
type TCPServer struct {
	ln      net.Listener
	handler CtxHandler
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// ListenTCP starts a server on addr ("host:port", ":0" for ephemeral). The
// handler context carries the remote caller's trace identity when the
// envelope names one.
func ListenTCP(addr string, h CtxHandler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and open connections and waits for workers.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	_ = s.ln.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var in envelope
		if err := dec.Decode(&in); err != nil {
			return
		}
		ctx := context.Background()
		sc := obs.SpanContext{Trace: obs.TraceID(in.Trace), Span: obs.SpanID(in.Span)}
		if sc.Valid() {
			ctx = obs.WithRemote(ctx, sc)
		}
		if in.RingEpoch != 0 {
			ctx = WithRingEpoch(ctx, in.RingEpoch)
		}
		if in.Tenant != "" {
			ctx = obs.WithTenant(ctx, in.Tenant)
		}
		if b := qos.BudgetFromWire(in.Budget); b != nil {
			ctx = qos.WithBudget(ctx, b)
		}
		out := envelope{Trace: in.Trace, Span: in.Span, Payload: s.handler(ctx, in.Payload)}
		if err := enc.Encode(&out); err != nil {
			return
		}
	}
}

// TCPClient is a single-connection client with serialized calls; the live
// tools create one per peer.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Call performs one request/response exchange. sc is the caller's trace
// identity; pass the zero SpanContext when untraced.
func (c *TCPClient) Call(sc obs.SpanContext, req any) (any, error) {
	return c.CallEnvelope(sc, 0, "", qos.NoBudget, req)
}

// CallEpoch is Call with the caller's lease-ring epoch attached to the
// envelope (0 when unsharded).
func (c *TCPClient) CallEpoch(sc obs.SpanContext, ringEpoch uint64, req any) (any, error) {
	return c.CallEnvelope(sc, ringEpoch, "", qos.NoBudget, req)
}

// CallEnvelope is Call with the full envelope metadata: the caller's
// lease-ring epoch (0 when unsharded), tenant attribution ("" when unknown),
// and remaining retry-budget tokens (qos.NoBudget when unbudgeted).
func (c *TCPClient) CallEnvelope(sc obs.SpanContext, ringEpoch uint64, tenant string, budget int64, req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&envelope{
		Trace: uint64(sc.Trace), Span: uint64(sc.Span),
		RingEpoch: ringEpoch, Tenant: tenant, Budget: budget, Payload: req,
	}); err != nil {
		return nil, fmt.Errorf("rpc: send: %w: %w", err, types.ErrIO)
	}
	var resp envelope
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("rpc: recv: %w: %w", err, types.ErrIO)
	}
	return resp.Payload, nil
}

// Close closes the connection.
func (c *TCPClient) Close() error { return c.conn.Close() }
