package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// faultWorld wires a network with a fault plan and one echo server under a
// virtual clock.
func faultWorld(t *testing.T, seed int64) (*sim.VirtEnv, *Network, *FaultPlan, *atomic.Int64, func(func())) {
	t.Helper()
	env := sim.NewVirtEnv()
	net := NewNetwork(env, sim.NetModel{})
	plan := NewFaultPlan(env, seed)
	net.SetFaultPlan(plan)
	var served atomic.Int64
	run := func(fn func()) {
		env.Run(func() {
			net.Listen("srv", 2, func(req any) any {
				served.Add(1)
				return req
			})
			fn()
		})
	}
	return env, net, plan, &served, run
}

func TestFaultDropsAndRecovers(t *testing.T) {
	_, net, plan, _, run := faultWorld(t, 1)
	run(func() {
		plan.SetDrop(1.0)
		if _, err := net.CallFrom("a", "srv", "x"); !errors.Is(err, types.ErrTimedOut) {
			t.Fatalf("dropped call: %v", err)
		}
		plan.SetDrop(0)
		if resp, err := net.CallFrom("a", "srv", "x"); err != nil || resp != "x" {
			t.Fatalf("after drop-off: %v %v", resp, err)
		}
	})
}

func TestFaultLatencyCharged(t *testing.T) {
	env, net, plan, _, run := faultWorld(t, 1)
	run(func() {
		plan.SetLatency(10*time.Millisecond, 0)
		start := env.Now()
		if _, err := net.CallFrom("a", "srv", "x"); err != nil {
			t.Fatal(err)
		}
		// Charged once per direction.
		if d := env.Now() - start; d < 20*time.Millisecond {
			t.Fatalf("latency not charged: %v", d)
		}
	})
}

// TestPartitionRequestDirection: a request-direction partition fails the call
// before the handler runs — no side effects land.
func TestPartitionRequestDirection(t *testing.T) {
	_, net, plan, served, run := faultWorld(t, 1)
	run(func() {
		part := plan.Partition([]Addr{"a"}, []Addr{"srv"})
		if _, err := net.CallFrom("a", "srv", "x"); !errors.Is(err, types.ErrTimedOut) {
			t.Fatalf("partitioned call: %v", err)
		}
		if served.Load() != 0 {
			t.Fatal("handler ran despite request-direction partition")
		}
		// Unrelated links are unaffected.
		if _, err := net.CallFrom("b", "srv", "x"); err != nil {
			t.Fatalf("bystander call: %v", err)
		}
		part.Heal()
		if _, err := net.CallFrom("a", "srv", "x"); err != nil {
			t.Fatalf("after heal: %v", err)
		}
	})
}

// TestPartitionResponseDirection: blocking only srv→a lets the handler run
// (its side effects land) while the caller still times out — the "did my op
// happen?" ambiguity.
func TestPartitionResponseDirection(t *testing.T) {
	_, net, plan, served, run := faultWorld(t, 1)
	run(func() {
		plan.Partition([]Addr{"srv"}, []Addr{"a"})
		if _, err := net.CallFrom("a", "srv", "x"); !errors.Is(err, types.ErrTimedOut) {
			t.Fatalf("response-partitioned call: %v", err)
		}
		if served.Load() != 1 {
			t.Fatalf("handler runs exactly once under a response partition: %d", served.Load())
		}
	})
}

func TestPartitionSchedule(t *testing.T) {
	env, net, plan, _, run := faultWorld(t, 1)
	run(func() {
		plan.PartitionFor(nil, []Addr{"srv"}, 10*time.Millisecond, 20*time.Millisecond)
		if _, err := net.CallFrom("a", "srv", "x"); err != nil {
			t.Fatalf("before the window: %v", err)
		}
		env.Sleep(12 * time.Millisecond)
		if _, err := net.CallFrom("a", "srv", "x"); !errors.Is(err, types.ErrTimedOut) {
			t.Fatalf("inside the window: %v", err)
		}
		for env.Now() < 20*time.Millisecond {
			env.Sleep(time.Millisecond)
		}
		if _, err := net.CallFrom("a", "srv", "x"); err != nil {
			t.Fatalf("after the window: %v", err)
		}
	})
}

func TestHealAll(t *testing.T) {
	_, net, plan, _, run := faultWorld(t, 1)
	run(func() {
		plan.Partition(nil, []Addr{"srv"})
		plan.Partition([]Addr{"a"}, nil)
		plan.HealAll()
		if _, err := net.CallFrom("a", "srv", "x"); err != nil {
			t.Fatalf("after HealAll: %v", err)
		}
	})
}

// TestServerCloseRacesInflightCalls (run with -race): closing a server while
// calls are in flight must complete every call — with its response or a clean
// ErrTimedOut — and never strand a caller. Uses the wall clock so Close truly
// races the callers.
func TestServerCloseRacesInflightCalls(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := NewNetwork(env, sim.NetModel{})
	srv := net.Listen("srv", 4, func(req any) any {
		env.Sleep(100 * time.Microsecond)
		return req
	})

	const callers = 64
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = net.Call("srv", i)
		}()
	}
	time.Sleep(200 * time.Microsecond)
	srv.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callers hung after server close")
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, types.ErrTimedOut) {
			t.Fatalf("caller %d: unexpected error class: %v", i, err)
		}
	}
}
