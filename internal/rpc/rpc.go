// Package rpc provides the request/response fabric ArkFS components use: the
// lease protocol between clients and the lease manager, and the
// client-to-leader forwarding of metadata operations (the paper used gRPC;
// this repo is stdlib-only).
//
// Two transports exist:
//   - Network: an in-process fabric bound to a sim.Env, charging the
//     configured latency per message. It works under both RealEnv and
//     VirtEnv and is what the benchmark harness uses.
//   - TCP (tcp.go): a gob-encoded wire transport for the live cmd/ tools.
package rpc

import (
	"fmt"
	"strings"
	"sync"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Addr names an endpoint on a Network, e.g. "leasemgr" or "client-7".
type Addr string

// Handler processes one request and returns the response. Handlers run on
// server worker goroutines and may block through the environment (sleep,
// nested Calls), but must not hold locks across such blocking.
type Handler func(req any) any

// Sizer lets a message declare its wire size so bandwidth-limited links can
// charge transfer time; messages without it are charged latency only.
type Sizer interface {
	WireSize() int64
}

// Network is an in-process message fabric with a latency model.
type Network struct {
	env   sim.Env
	model sim.NetModel

	mu      sync.Mutex
	servers map[Addr]*Server
}

// NewNetwork creates a fabric in env; model applies to every message.
func NewNetwork(env sim.Env, model sim.NetModel) *Network {
	return &Network{env: env, model: model, servers: make(map[Addr]*Server)}
}

// Env returns the fabric's environment.
func (n *Network) Env() sim.Env { return n.env }

type call struct {
	req   any
	reply *sim.Chan[any]
}

// Server is a registered endpoint with a pool of worker goroutines.
type Server struct {
	net    *Network
	addr   Addr
	inbox  *sim.Chan[*call]
	closed sync.Once
}

// Listen registers addr with workers goroutines running h. It panics on a
// duplicate address, which is always a wiring bug.
func (n *Network) Listen(addr Addr, workers int, h Handler) *Server {
	if workers <= 0 {
		workers = 1
	}
	s := &Server{net: n, addr: addr, inbox: sim.NewChan[*call](n.env)}
	n.mu.Lock()
	if _, dup := n.servers[addr]; dup {
		n.mu.Unlock()
		panic(fmt.Sprintf("rpc: duplicate listener %q", addr))
	}
	n.servers[addr] = s
	n.mu.Unlock()
	for i := 0; i < workers; i++ {
		n.env.Go(func() {
			for {
				c, ok := s.inbox.Recv()
				if !ok {
					return
				}
				c.reply.Send(h(c.req))
			}
		})
	}
	return s
}

// Close unregisters the server and stops its workers. In-flight calls
// complete; subsequent calls fail.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.net.mu.Lock()
		delete(s.net.servers, s.addr)
		s.net.mu.Unlock()
		s.inbox.Close()
	})
}

// Call sends req to the server at addr and waits for its response, charging
// one-way latency (plus bandwidth for Sizer messages) in each direction.
// Addresses with the "tcp!" prefix dial a bridged remote process instead.
func (n *Network) Call(to Addr, req any) (any, error) {
	if strings.HasPrefix(string(to), TCPPrefix) {
		return n.callTCP(to, req)
	}
	n.mu.Lock()
	s, ok := n.servers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: no listener at %q: %w", to, types.ErrTimedOut)
	}
	var size int64
	if sz, ok := req.(Sizer); ok {
		size = sz.WireSize()
	}
	n.env.Sleep(n.model.TransferTime(size))
	c := &call{req: req, reply: sim.NewChan[any](n.env)}
	if !s.inbox.Send(c) {
		return nil, fmt.Errorf("rpc: server %q closed: %w", to, types.ErrTimedOut)
	}
	resp, ok := c.reply.Recv()
	if !ok {
		return nil, fmt.Errorf("rpc: call to %q aborted: %w", to, types.ErrTimedOut)
	}
	var respSize int64
	if sz, ok := resp.(Sizer); ok {
		respSize = sz.WireSize()
	}
	n.env.Sleep(n.model.TransferTime(respSize))
	return resp, nil
}
