// Package rpc provides the request/response fabric ArkFS components use: the
// lease protocol between clients and the lease manager, and the
// client-to-leader forwarding of metadata operations (the paper used gRPC;
// this repo is stdlib-only).
//
// Two transports exist:
//   - Network: an in-process fabric bound to a sim.Env, charging the
//     configured latency per message. It works under both RealEnv and
//     VirtEnv and is what the benchmark harness uses.
//   - TCP (tcp.go): a gob-encoded wire transport for the live cmd/ tools.
package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/qos"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func init() {
	gob.Register(&Shed{})
}

// Shed is the fabric-level pushback payload: a server that refuses a request
// before (or instead of) running its handler replies with a Shed, which the
// calling side converts into a typed types.ErrAgain retry-after error. Being
// a gob-registered payload, it crosses the TCP bridge intact, so
// errors.Is(err, types.ErrAgain) — and the retry-after hint — hold across
// process boundaries.
type Shed struct {
	AfterNS int64  // retry-after hint, nanoseconds
	Reason  string // shed reason ("inbox", "queue-wait", ...), for counters
}

// Err converts the payload into the typed client-side error.
func (s *Shed) Err() error {
	return fmt.Errorf("rpc: request shed: %w",
		types.AgainAfter(time.Duration(s.AfterNS), s.Reason))
}

// shedPayload converts a typed EAGAIN error back into the wire payload (for
// the TCP bridge, whose handler can only return payloads). Returns nil when
// err is not a shed.
func shedPayload(err error) *Shed {
	var ra *types.RetryAfterError
	if errors.As(err, &ra) {
		return &Shed{AfterNS: int64(ra.After), Reason: ra.Reason}
	}
	if errors.Is(err, types.ErrAgain) {
		return &Shed{}
	}
	return nil
}

// Addr names an endpoint on a Network, e.g. "leasemgr" or "client-7".
type Addr string

// Handler processes one request and returns the response. Handlers run on
// server worker goroutines and may block through the environment (sleep,
// nested Calls), but must not hold locks across such blocking.
type Handler func(req any) any

// CtxHandler is a Handler that also receives the server-side context. The
// fabric populates it with the caller's trace identity (obs.RemoteFrom), so
// handlers can parent their own spans under the caller's trace. The context
// carries no deadline: the simulated network cannot interrupt in-flight
// virtual-time waits, and a forwarded operation must not inherit the remote
// caller's cancellation.
type CtxHandler func(ctx context.Context, req any) any

// Sizer lets a message declare its wire size so bandwidth-limited links can
// charge transfer time; messages without it are charged latency only.
type Sizer interface {
	WireSize() int64
}

// Network is an in-process message fabric with a latency model.
type Network struct {
	env   sim.Env
	model sim.NetModel

	mu      sync.Mutex
	servers map[Addr]*Server
	fault   *FaultPlan

	// Observability. All sinks are nil-safe; a Network without SetObs runs
	// with zero instrumentation cost beyond nil checks.
	reg         *obs.Registry
	cCalls      *obs.Counter
	cDrops      *obs.Counter
	cTimeouts   *obs.Counter
	cShedInbox  *obs.Counter   // requests refused at the inbox bound
	cShedWait   *obs.Counter   // requests shed at pickup for excessive wait
	hQWait      *obs.Histogram // enqueue→worker-pickup, all servers
	hQSvc       *obs.Histogram // worker pickup→handler return, all servers
	methodHists sync.Map       // method name -> *obs.Histogram
}

// NewNetwork creates a fabric in env; model applies to every message.
func NewNetwork(env sim.Env, model sim.NetModel) *Network {
	return &Network{env: env, model: model, servers: make(map[Addr]*Server)}
}

// Env returns the fabric's environment.
func (n *Network) Env() sim.Env { return n.env }

// SetFaultPlan installs (or, with nil, removes) the network's fault plan;
// every subsequent Call consults it in both directions.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	n.mu.Lock()
	n.fault = p
	n.mu.Unlock()
}

func (n *Network) faultPlan() *FaultPlan {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fault
}

// SetObs attaches a metrics registry: every Call records rpc.calls, a
// per-method latency histogram (rpc.call.<Method>, environment-clock time
// including fault-plan delays), and rpc.drops / rpc.timeouts on failure.
// Server workers additionally split each delivered request into queue wait
// (rpc.queue.wait: enqueue→pickup) and service time (rpc.queue.service:
// pickup→handler return), attributed per tenant in the registry's tenant
// table. Call before serving traffic; nil detaches.
func (n *Network) SetObs(reg *obs.Registry) {
	n.reg = reg
	n.cCalls = reg.Counter("rpc.calls")
	n.cDrops = reg.Counter("rpc.drops")
	n.cTimeouts = reg.Counter("rpc.timeouts")
	n.cShedInbox = reg.Counter("qos.shed.rpc.inbox")
	n.cShedWait = reg.Counter("qos.shed.rpc.wait")
	n.hQWait = reg.Histogram("rpc.queue.wait")
	n.hQSvc = reg.Histogram("rpc.queue.service")
	n.methodHists = sync.Map{}
}

// methodNames caches reflect.Type → wire-method name ("CreateReq" → "Create").
var methodNames sync.Map

func methodName(req any) string {
	t := reflect.TypeOf(req)
	if v, ok := methodNames.Load(t); ok {
		return v.(string)
	}
	e := t
	for e.Kind() == reflect.Ptr {
		e = e.Elem()
	}
	name := strings.TrimSuffix(e.Name(), "Req")
	if name == "" {
		name = e.String()
	}
	methodNames.Store(t, name)
	return name
}

// histFor returns the latency histogram for req's method (nil when obs is
// detached), caching the lookup so the hot path avoids the registry lock.
func (n *Network) histFor(req any) *obs.Histogram {
	if n.reg == nil {
		return nil
	}
	name := methodName(req)
	if v, ok := n.methodHists.Load(name); ok {
		return v.(*obs.Histogram)
	}
	h := n.reg.Histogram("rpc.call." + name)
	n.methodHists.Store(name, h)
	return h
}

// ringEpochKey carries the caller's lease-ring epoch in a context. The epoch
// is part of the rpc envelope, not any one message type: CallFromCtx lifts it
// from the caller's context onto the wire, and the server side re-injects it
// into the handler's context, in-process and across the TCP bridge alike.
type ringEpochKey struct{}

// WithRingEpoch stamps ctx with the caller's ring epoch; every subsequent
// CallFromCtx carries it in the envelope. Epoch 0 means "no ring".
func WithRingEpoch(ctx context.Context, epoch uint64) context.Context {
	return context.WithValue(ctx, ringEpochKey{}, epoch)
}

// RingEpochFrom returns the ring epoch carried by ctx (0 when absent).
func RingEpochFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if v, ok := ctx.Value(ringEpochKey{}).(uint64); ok {
		return v
	}
	return 0
}

// callMeta is the envelope metadata lifted from the caller's context onto
// every outgoing call: trace identity, lease-ring epoch, and tenant. It is
// what crosses process boundaries alongside the payload (in-process and over
// the TCP bridge alike).
type callMeta struct {
	sc     obs.SpanContext // caller's trace identity, zero when untraced
	epoch  uint64          // caller's ring epoch, 0 when unsharded
	tenant string          // tenant the op is attributed to, "" when unknown
	bud    *qos.Budget     // the op's shared retry budget, nil when unbudgeted
}

// metaFromCtx lifts the envelope metadata from a caller context.
func metaFromCtx(ctx context.Context) callMeta {
	if ctx == nil {
		return callMeta{}
	}
	return callMeta{
		sc:     obs.SpanContextFrom(ctx),
		epoch:  RingEpochFrom(ctx),
		tenant: obs.TenantFrom(ctx),
		bud:    qos.BudgetFrom(ctx),
	}
}

type call struct {
	req   any
	meta  callMeta
	enq   time.Duration // environment-clock time the request was enqueued
	reply *sim.Chan[any]
}

// ServerLimits bounds a server's inbox and queue wait; the zero value keeps
// the historical unbounded behavior.
type ServerLimits struct {
	// MaxInbox caps the requests queued awaiting a worker; excess calls are
	// refused immediately with a typed EAGAIN (0: unbounded). A bounded
	// inbox turns queue growth — the collapse mode under overload — into
	// prompt pushback the client's retry budget absorbs.
	MaxInbox int
	// ShedWait sheds a request at worker pickup when its measured
	// enqueue→pickup wait already exceeds this threshold: by then the
	// caller has likely timed out or retried, so running the handler only
	// burns service capacity on a dead request (0: never shed).
	ShedWait time.Duration
	// RetryAfter is the hint attached to inbox-bound refusals (default:
	// ShedWait when set, else 5ms).
	RetryAfter time.Duration
}

func (l *ServerLimits) retryAfter() time.Duration {
	switch {
	case l.RetryAfter > 0:
		return l.RetryAfter
	case l.ShedWait > 0:
		return l.ShedWait
	default:
		return 5 * time.Millisecond
	}
}

// Server is a registered endpoint with a pool of worker goroutines.
type Server struct {
	net    *Network
	addr   Addr
	inbox  *sim.Chan[*call]
	limits ServerLimits
	closed sync.Once
}

// Listen registers addr with workers goroutines running h. It panics on a
// duplicate address, which is always a wiring bug. Optional limits bound the
// inbox and queue wait (at most one ServerLimits applies).
func (n *Network) Listen(addr Addr, workers int, h Handler, limits ...ServerLimits) *Server {
	return n.ListenCtx(addr, workers, func(_ context.Context, req any) any { return h(req) }, limits...)
}

// ListenCtx is Listen for trace-aware handlers: each request's handler
// context carries the caller's span identity (retrieve with obs.RemoteFrom
// or parent children via the ambient helpers).
func (n *Network) ListenCtx(addr Addr, workers int, h CtxHandler, limits ...ServerLimits) *Server {
	if workers <= 0 {
		workers = 1
	}
	s := &Server{net: n, addr: addr, inbox: sim.NewChan[*call](n.env)}
	if len(limits) > 0 {
		s.limits = limits[0]
	}
	n.mu.Lock()
	if _, dup := n.servers[addr]; dup {
		n.mu.Unlock()
		panic(fmt.Sprintf("rpc: duplicate listener %q", addr))
	}
	n.servers[addr] = s
	n.mu.Unlock()
	for i := 0; i < workers; i++ {
		n.env.Go(func() {
			for {
				c, ok := s.inbox.Recv()
				if !ok {
					return
				}
				// Queue-wait vs service-time decomposition: the time between
				// enqueue and this pickup is what the request spent waiting on
				// the worker pool (the leader's forwarded-op queue, a lease
				// shard's request queue); everything until the handler returns
				// is service. The wait rides the handler context so the
				// serving layer can stamp it on its span.
				start := n.env.Now()
				wait := start - c.enq
				if sw := s.limits.ShedWait; sw > 0 && wait > sw {
					// The request aged out in the queue; shed it without
					// spending handler service time. The hint tells the
					// client how stale its wait already is.
					n.cShedWait.Inc()
					if n.reg != nil {
						n.hQWait.ObserveTrace(wait, c.meta.sc.Trace)
						n.reg.Tenants().ObserveWait(c.meta.tenant, wait, 0, c.meta.sc.Trace)
					}
					c.reply.Send(&Shed{AfterNS: int64(wait), Reason: "queue-wait"})
					continue
				}
				ctx := context.Background()
				if c.meta.sc.Valid() {
					ctx = obs.WithRemote(ctx, c.meta.sc)
				}
				if c.meta.epoch != 0 {
					ctx = WithRingEpoch(ctx, c.meta.epoch)
				}
				if c.meta.tenant != "" {
					ctx = obs.WithTenant(ctx, c.meta.tenant)
				}
				if c.meta.bud != nil {
					// In-process the budget object itself is shared, so
					// server-side retries draw from the same pool as the
					// caller's loops.
					ctx = qos.WithBudget(ctx, c.meta.bud)
				}
				ctx = obs.WithQueueWait(ctx, wait)
				resp := h(ctx, c.req)
				if n.reg != nil {
					svc := n.env.Now() - start
					n.hQWait.ObserveTrace(wait, c.meta.sc.Trace)
					n.hQSvc.ObserveTrace(svc, c.meta.sc.Trace)
					n.reg.Tenants().ObserveWait(c.meta.tenant, wait, svc, c.meta.sc.Trace)
				}
				c.reply.Send(resp)
			}
		})
	}
	return s
}

// Close unregisters the server and stops its workers. In-flight calls
// complete; subsequent calls fail.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.net.mu.Lock()
		delete(s.net.servers, s.addr)
		s.net.mu.Unlock()
		s.inbox.Close()
	})
}

// Call sends req to the server at addr and waits for its response, charging
// one-way latency (plus bandwidth for Sizer messages) in each direction.
// Addresses with the "tcp!" prefix dial a bridged remote process instead.
// The caller's address is unknown, so only wildcard fault-plan rules apply;
// components with an identity use CallFrom.
func (n *Network) Call(to Addr, req any) (any, error) {
	return n.CallFrom("", to, req)
}

// CallFrom is Call with the caller's address attached, letting the fault
// plan apply per-link rules (partitions between address sets) in both the
// request and the response direction.
func (n *Network) CallFrom(from, to Addr, req any) (any, error) {
	return n.dispatch(callMeta{}, from, to, req)
}

// CallFromCtx is CallFrom gated on a context: a context that is already done
// fails fast with its error before any network time is charged. Cancellation
// of a call already in flight is not modeled — virtual-time waits cannot be
// interrupted by real channels — so ctx acts as a deadline checked at the
// call boundary, which is where the retry loops in core re-enter. The
// caller's trace identity (local span or relayed remote context), ring
// epoch, and tenant ride the message so the server side can continue the
// trace and keep the attribution.
func (n *Network) CallFromCtx(ctx context.Context, from, to Addr, req any) (any, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return n.dispatch(metaFromCtx(ctx), from, to, req)
}

func (n *Network) dispatch(meta callMeta, from, to Addr, req any) (any, error) {
	if n.reg == nil {
		return n.callFrom(meta, from, to, req)
	}
	start := n.env.Now()
	resp, err := n.callFrom(meta, from, to, req)
	n.cCalls.Inc()
	n.histFor(req).ObserveTrace(n.env.Now()-start, meta.sc.Trace)
	return resp, err
}

func (n *Network) callFrom(meta callMeta, from, to Addr, req any) (any, error) {
	fault := n.faultPlan()
	if fault != nil {
		if err := fault.apply(from, to, "request"); err != nil {
			n.cDrops.Inc()
			return nil, err
		}
	}
	if strings.HasPrefix(string(to), TCPPrefix) {
		resp, err := n.callTCP(meta, to, req)
		if err != nil {
			n.cTimeouts.Inc()
			return resp, err
		}
		if fault != nil {
			if ferr := fault.apply(to, from, "response"); ferr != nil {
				n.cDrops.Inc()
				return nil, ferr
			}
		}
		if sh, ok := resp.(*Shed); ok {
			return nil, sh.Err()
		}
		return resp, nil
	}
	n.mu.Lock()
	s, ok := n.servers[to]
	n.mu.Unlock()
	if !ok {
		n.cTimeouts.Inc()
		return nil, fmt.Errorf("rpc: no listener at %q: %w", to, types.ErrTimedOut)
	}
	var size int64
	if sz, ok := req.(Sizer); ok {
		size = sz.WireSize()
	}
	n.env.Sleep(n.model.TransferTime(size))
	if max := s.limits.MaxInbox; max > 0 && s.inbox.Len() >= max {
		// Bounded inbox: refuse at the door instead of queueing without
		// bound. The refusal is typed EAGAIN so budgeted clients back off.
		n.cShedInbox.Inc()
		return nil, fmt.Errorf("rpc: server %q inbox full: %w", to,
			types.AgainAfter(s.limits.retryAfter(), "inbox"))
	}
	c := &call{req: req, meta: meta, enq: n.env.Now(), reply: sim.NewChan[any](n.env)}
	if !s.inbox.Send(c) {
		n.cTimeouts.Inc()
		return nil, fmt.Errorf("rpc: server %q closed: %w", to, types.ErrTimedOut)
	}
	resp, ok := c.reply.Recv()
	if !ok {
		n.cTimeouts.Inc()
		return nil, fmt.Errorf("rpc: call to %q aborted: %w", to, types.ErrTimedOut)
	}
	if fault != nil {
		// The handler ran; losing the response leaves its side effects in
		// place while this caller times out.
		if err := fault.apply(to, from, "response"); err != nil {
			n.cDrops.Inc()
			return nil, err
		}
	}
	var respSize int64
	if sz, ok := resp.(Sizer); ok {
		respSize = sz.WireSize()
	}
	n.env.Sleep(n.model.TransferTime(respSize))
	if sh, ok := resp.(*Shed); ok {
		return nil, sh.Err()
	}
	return resp, nil
}
