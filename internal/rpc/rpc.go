// Package rpc provides the request/response fabric ArkFS components use: the
// lease protocol between clients and the lease manager, and the
// client-to-leader forwarding of metadata operations (the paper used gRPC;
// this repo is stdlib-only).
//
// Two transports exist:
//   - Network: an in-process fabric bound to a sim.Env, charging the
//     configured latency per message. It works under both RealEnv and
//     VirtEnv and is what the benchmark harness uses.
//   - TCP (tcp.go): a gob-encoded wire transport for the live cmd/ tools.
package rpc

import (
	"fmt"
	"strings"
	"sync"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Addr names an endpoint on a Network, e.g. "leasemgr" or "client-7".
type Addr string

// Handler processes one request and returns the response. Handlers run on
// server worker goroutines and may block through the environment (sleep,
// nested Calls), but must not hold locks across such blocking.
type Handler func(req any) any

// Sizer lets a message declare its wire size so bandwidth-limited links can
// charge transfer time; messages without it are charged latency only.
type Sizer interface {
	WireSize() int64
}

// Network is an in-process message fabric with a latency model.
type Network struct {
	env   sim.Env
	model sim.NetModel

	mu      sync.Mutex
	servers map[Addr]*Server
	fault   *FaultPlan
}

// NewNetwork creates a fabric in env; model applies to every message.
func NewNetwork(env sim.Env, model sim.NetModel) *Network {
	return &Network{env: env, model: model, servers: make(map[Addr]*Server)}
}

// Env returns the fabric's environment.
func (n *Network) Env() sim.Env { return n.env }

// SetFaultPlan installs (or, with nil, removes) the network's fault plan;
// every subsequent Call consults it in both directions.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	n.mu.Lock()
	n.fault = p
	n.mu.Unlock()
}

func (n *Network) faultPlan() *FaultPlan {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fault
}

type call struct {
	req   any
	reply *sim.Chan[any]
}

// Server is a registered endpoint with a pool of worker goroutines.
type Server struct {
	net    *Network
	addr   Addr
	inbox  *sim.Chan[*call]
	closed sync.Once
}

// Listen registers addr with workers goroutines running h. It panics on a
// duplicate address, which is always a wiring bug.
func (n *Network) Listen(addr Addr, workers int, h Handler) *Server {
	if workers <= 0 {
		workers = 1
	}
	s := &Server{net: n, addr: addr, inbox: sim.NewChan[*call](n.env)}
	n.mu.Lock()
	if _, dup := n.servers[addr]; dup {
		n.mu.Unlock()
		panic(fmt.Sprintf("rpc: duplicate listener %q", addr))
	}
	n.servers[addr] = s
	n.mu.Unlock()
	for i := 0; i < workers; i++ {
		n.env.Go(func() {
			for {
				c, ok := s.inbox.Recv()
				if !ok {
					return
				}
				c.reply.Send(h(c.req))
			}
		})
	}
	return s
}

// Close unregisters the server and stops its workers. In-flight calls
// complete; subsequent calls fail.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.net.mu.Lock()
		delete(s.net.servers, s.addr)
		s.net.mu.Unlock()
		s.inbox.Close()
	})
}

// Call sends req to the server at addr and waits for its response, charging
// one-way latency (plus bandwidth for Sizer messages) in each direction.
// Addresses with the "tcp!" prefix dial a bridged remote process instead.
// The caller's address is unknown, so only wildcard fault-plan rules apply;
// components with an identity use CallFrom.
func (n *Network) Call(to Addr, req any) (any, error) {
	return n.CallFrom("", to, req)
}

// CallFrom is Call with the caller's address attached, letting the fault
// plan apply per-link rules (partitions between address sets) in both the
// request and the response direction.
func (n *Network) CallFrom(from, to Addr, req any) (any, error) {
	fault := n.faultPlan()
	if fault != nil {
		if err := fault.apply(from, to, "request"); err != nil {
			return nil, err
		}
	}
	if strings.HasPrefix(string(to), TCPPrefix) {
		resp, err := n.callTCP(to, req)
		if err == nil && fault != nil {
			if ferr := fault.apply(to, from, "response"); ferr != nil {
				return nil, ferr
			}
		}
		return resp, err
	}
	n.mu.Lock()
	s, ok := n.servers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: no listener at %q: %w", to, types.ErrTimedOut)
	}
	var size int64
	if sz, ok := req.(Sizer); ok {
		size = sz.WireSize()
	}
	n.env.Sleep(n.model.TransferTime(size))
	c := &call{req: req, reply: sim.NewChan[any](n.env)}
	if !s.inbox.Send(c) {
		return nil, fmt.Errorf("rpc: server %q closed: %w", to, types.ErrTimedOut)
	}
	resp, ok := c.reply.Recv()
	if !ok {
		return nil, fmt.Errorf("rpc: call to %q aborted: %w", to, types.ErrTimedOut)
	}
	if fault != nil {
		// The handler ran; losing the response leaves its side effects in
		// place while this caller times out.
		if err := fault.apply(to, from, "response"); err != nil {
			return nil, err
		}
	}
	var respSize int64
	if sz, ok := resp.(Sizer); ok {
		respSize = sz.WireSize()
	}
	n.env.Sleep(n.model.TransferTime(respSize))
	return resp, nil
}
