package fsck

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"arkfs/internal/journal"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// QuarantinePrefix is where the scrubber moves objects it cannot repair:
// the original bytes survive as evidence under quarantine/<original-key>
// while the corrupt object leaves the live key space. Check inventories
// quarantined objects but never flags them.
const QuarantinePrefix = "quarantine/"

// Action is one repair the scrubber performed — or, when repair is off,
// planned. Op is a stable identifier: "quarantine", "truncate-journal",
// "restore-inode", "rebuild-dentries", "rewrite-superblock", "gc",
// "gc-skipped".
type Action struct {
	Op     string
	Key    string
	Detail string
}

func (a Action) String() string {
	return fmt.Sprintf("%-19s %-34s %s", a.Op, a.Key, a.Detail)
}

// ScrubReport is the outcome of a scrub pass.
type ScrubReport struct {
	// Planned is true when repair was off: Actions describe what a repair
	// run would do, and the store was not modified.
	Planned bool
	Actions []Action
	// Pre is the consistency check before repairs; Post re-checks the image
	// after them (nil in a planning run).
	Pre, Post *Report
	// GCSkipped is set when orphan collection was withheld because valid
	// journal records are still pending recovery somewhere — a pending
	// record may re-link an object that currently looks orphaned.
	GCSkipped bool
}

type scrubber struct {
	store  objstore.Store
	tr     *prt.Translator
	repair bool
	rep    *ScrubReport
}

// Scrub checks the image and repairs what the journal can prove. With
// repair false it only plans: every Action that a repair run would take is
// recorded, and the store is left untouched.
//
// Repair strategy, in dependency order:
//
//  1. a corrupt superblock is quarantined and rewritten with the default
//     chunk size (the only parameter it carries);
//  2. each directory journal is cut at its first corrupt record — the
//     record is quarantined and everything after it discarded unreplayed,
//     the same truncation rule recovery applies;
//  3. a corrupt inode object is restored from the latest journaled
//     OpSetInode copy if one survives, else quarantined;
//  4. a corrupt dentry block is quarantined and rebuilt by replaying the
//     directory's surviving committed journal records (replay is
//     idempotent, so a later leader recovery replaying them again is
//     harmless);
//  5. a corrupt data chunk has no second copy: it is quarantined and the
//     file reads a hole there;
//  6. orphans (unreachable inodes, dentry blocks, chunks, journals) are
//     collected — only when no valid journal record is pending anywhere.
func Scrub(store objstore.Store, repair bool) (*ScrubReport, error) {
	pre, err := Check(store)
	if err != nil {
		return nil, err
	}
	chunkSize := prt.DefaultChunkSize
	if raw, err := store.Get(prt.SuperblockKey); err == nil {
		if sb, derr := prt.DecodeSuperblock(raw); derr == nil {
			chunkSize = sb.ChunkSize
		}
	}
	s := &scrubber{
		store:  store,
		tr:     prt.New(store, chunkSize),
		repair: repair,
		rep:    &ScrubReport{Planned: !repair, Pre: pre},
	}
	for _, pass := range []func() error{
		s.superblock, s.journals, s.inodes, s.dentries, s.chunks, s.collectOrphans,
	} {
		if err := pass(); err != nil {
			return s.rep, err
		}
	}
	if repair {
		post, err := Check(store)
		if err != nil {
			return s.rep, err
		}
		s.rep.Post = post
	}
	return s.rep, nil
}

// act records an action and reports whether the scrubber should execute it.
func (s *scrubber) act(op, key, detail string, args ...any) bool {
	s.rep.Actions = append(s.rep.Actions,
		Action{Op: op, Key: key, Detail: fmt.Sprintf(detail, args...)})
	return s.repair
}

// quarantine moves key under QuarantinePrefix.
func (s *scrubber) quarantine(key, why string) error {
	if !s.act("quarantine", key, "%s", why) {
		return nil
	}
	raw, err := s.store.Get(key)
	if err != nil {
		if errors.Is(err, types.ErrNotExist) {
			return nil // raced with a concurrent delete; nothing to preserve
		}
		return fmt.Errorf("fsck: quarantine read %s: %w", key, err)
	}
	if err := s.store.Put(QuarantinePrefix+key, raw); err != nil {
		return fmt.Errorf("fsck: quarantine put %s: %w", key, err)
	}
	if err := s.store.Delete(key); err != nil && !errors.Is(err, types.ErrNotExist) {
		return fmt.Errorf("fsck: quarantine delete %s: %w", key, err)
	}
	return nil
}

// superblock quarantines a corrupt formatting record and rewrites it with
// the default chunk size — the only parameter it carries, and the only
// value this tree ever formats with.
func (s *scrubber) superblock() error {
	raw, err := s.store.Get(prt.SuperblockKey)
	if err != nil {
		return nil // missing: Check reports it; there is nothing to repair from
	}
	if _, derr := prt.DecodeSuperblock(raw); derr == nil {
		return nil
	}
	if err := s.quarantine(prt.SuperblockKey, "superblock fails verification"); err != nil {
		return err
	}
	if !s.act("rewrite-superblock", prt.SuperblockKey,
		"rewritten assuming the default chunk size %d", prt.DefaultChunkSize) {
		return nil
	}
	sb := prt.Superblock{Version: 1, ChunkSize: prt.DefaultChunkSize}
	return s.store.Put(prt.SuperblockKey, prt.EncodeSuperblock(sb))
}

// journals applies the recovery truncation rule to every directory journal:
// the first record that fails verification is quarantined and every later
// record in sequence order is discarded unreplayed. Journal keys without a
// parsable sequence cannot occupy a slot and are quarantined outright.
func (s *scrubber) journals() error {
	keys, err := s.store.List(prt.PrefixJournal)
	if err != nil {
		return fmt.Errorf("fsck: scrub list journals: %w", err)
	}
	type rec struct {
		key string
		seq uint64
	}
	byDir := map[string][]rec{}
	for _, k := range keys {
		rest := strings.TrimPrefix(k, prt.PrefixJournal)
		i := strings.IndexByte(rest, ':')
		seq, perr := prt.ParseJournalSeq(k)
		if i <= 0 || perr != nil {
			if err := s.quarantine(k, "journal key without a parsable sequence"); err != nil {
				return err
			}
			continue
		}
		byDir[rest[:i]] = append(byDir[rest[:i]], rec{key: k, seq: seq})
	}
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs) // deterministic action order across directories
	for _, dir := range dirs {
		recs := byDir[dir]
		sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
		cut := false
		for _, r := range recs {
			if cut {
				if s.act("truncate-journal", r.key,
					"follows the first corrupt record; discarded unreplayed") {
					if err := s.store.Delete(r.key); err != nil && !errors.Is(err, types.ErrNotExist) {
						return fmt.Errorf("fsck: scrub truncate %s: %w", r.key, err)
					}
				}
				continue
			}
			raw, err := s.store.Get(r.key)
			if err != nil {
				if errors.Is(err, types.ErrNotExist) {
					continue
				}
				return fmt.Errorf("fsck: scrub read %s: %w", r.key, err)
			}
			if _, derr := wire.DecodeTxn(raw); derr != nil {
				cut = true
				if err := s.quarantine(r.key,
					fmt.Sprintf("corrupt journal record (%v); journal truncated here", derr)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// setInodeCopies indexes the latest journaled OpSetInode copy of every inode
// found in surviving committed records — the source scrub restores corrupt
// inode objects from. Prepared (undecided 2PC) records are excluded: their
// operations may yet abort.
func (s *scrubber) setInodeCopies() (map[string]*types.Inode, error) {
	keys, err := s.store.List(prt.PrefixJournal)
	if err != nil {
		return nil, fmt.Errorf("fsck: scrub list journals: %w", err)
	}
	// List sorts lexically and sequences are fixed-width hex, so within each
	// directory later writes overwrite earlier ones.
	copies := map[string]*types.Inode{}
	for _, k := range keys {
		raw, err := s.store.Get(k)
		if err != nil {
			continue
		}
		txn, derr := wire.DecodeTxn(raw)
		if derr != nil || txn.Kind != wire.TxnNormal {
			continue
		}
		for _, op := range txn.Ops {
			if op.Kind == wire.OpSetInode && op.Inode != nil {
				copies[prt.InodeKey(op.Inode.Ino)] = op.Inode
			}
		}
	}
	return copies, nil
}

// inodes restores corrupt inode objects from journaled copies, quarantining
// those with no surviving copy.
func (s *scrubber) inodes() error {
	keys, err := s.store.List(prt.PrefixInode)
	if err != nil {
		return fmt.Errorf("fsck: scrub list inodes: %w", err)
	}
	var copies map[string]*types.Inode // built lazily on the first corruption
	for _, k := range keys {
		raw, err := s.store.Get(k)
		if err != nil {
			continue
		}
		if _, derr := wire.DecodeInode(raw); derr == nil {
			continue
		}
		if copies == nil {
			if copies, err = s.setInodeCopies(); err != nil {
				return err
			}
		}
		if n := copies[k]; n != nil {
			if s.act("restore-inode", k, "rewritten from the latest journaled copy") {
				if err := s.tr.SaveInode(n); err != nil {
					return fmt.Errorf("fsck: scrub restore %s: %w", k, err)
				}
			}
			continue
		}
		if err := s.quarantine(k, "corrupt inode with no journaled copy"); err != nil {
			return err
		}
	}
	return nil
}

// dentries quarantines corrupt dentry blocks and rebuilds them by replaying
// the directory's surviving committed journal records. Entries present only
// in the lost checkpoint are not recoverable — their inodes surface as
// orphans in the post-repair check.
func (s *scrubber) dentries() error {
	keys, err := s.store.List(prt.PrefixDentry)
	if err != nil {
		return fmt.Errorf("fsck: scrub list dentries: %w", err)
	}
	for _, k := range keys {
		raw, err := s.store.Get(k)
		if err != nil {
			continue
		}
		if _, derr := wire.DecodeDentries(raw); derr == nil {
			continue
		}
		dir, perr := types.ParseIno(strings.TrimPrefix(k, prt.PrefixDentry))
		if perr != nil {
			if err := s.quarantine(k, "corrupt dentry block under an unparsable key"); err != nil {
				return err
			}
			continue
		}
		if err := s.quarantine(k, "corrupt dentry block"); err != nil {
			return err
		}
		if !s.act("rebuild-dentries", k, "replaying the journal of %s", dir.Short()) {
			continue
		}
		if err := s.replayDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// replayDir re-applies dir's committed journal records in sequence order.
// The records stay in the journal — replay is idempotent, so the next
// leader's recovery replaying them again converges to the same state.
func (s *scrubber) replayDir(dir types.Ino) error {
	jkeys, err := s.store.List(prt.JournalPrefix(dir))
	if err != nil {
		return fmt.Errorf("fsck: scrub replay list: %w", err)
	}
	type rec struct {
		seq uint64
		txn *wire.Txn
	}
	recs := make([]rec, 0, len(jkeys))
	for _, jk := range jkeys {
		seq, perr := prt.ParseJournalSeq(jk)
		if perr != nil {
			continue // quarantined by the journal pass
		}
		raw, err := s.store.Get(jk)
		if err != nil {
			continue
		}
		txn, derr := wire.DecodeTxn(raw)
		if derr != nil || txn.Kind != wire.TxnNormal {
			continue
		}
		recs = append(recs, rec{seq: seq, txn: txn})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	for _, r := range recs {
		if err := journal.ApplyOps(s.tr, dir, r.txn.Ops); err != nil {
			return fmt.Errorf("fsck: scrub replay %s seq %d: %w", dir.Short(), r.seq, err)
		}
	}
	return nil
}

// chunks quarantines data chunks that fail verification. There is no second
// copy to repair from; the file reads a hole over the quarantined extent,
// which is strictly better than serving silently corrupt bytes.
func (s *scrubber) chunks() error {
	keys, err := s.store.List(prt.PrefixData)
	if err != nil {
		return fmt.Errorf("fsck: scrub list chunks: %w", err)
	}
	for _, k := range keys {
		raw, err := s.store.Get(k)
		if err != nil {
			continue
		}
		if _, derr := wire.Unseal(raw); derr != nil {
			if err := s.quarantine(k,
				"data chunk fails verification; no replica to repair from, reads see a hole"); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectOrphans garbage-collects unreachable objects — but only when no
// valid journal record is pending anywhere. A pending record may re-link an
// object that currently looks orphaned (an OpAddDentry whose checkpoint
// never ran), so collection before recovery would destroy acknowledged work.
func (s *scrubber) collectOrphans() error {
	jkeys, err := s.store.List(prt.PrefixJournal)
	if err != nil {
		return fmt.Errorf("fsck: scrub list journals: %w", err)
	}
	for _, k := range jkeys {
		raw, err := s.store.Get(k)
		if err != nil {
			continue
		}
		if _, derr := wire.DecodeTxn(raw); derr == nil {
			s.rep.GCSkipped = true
			s.act("gc-skipped", k, "valid journal records pending recovery; orphan collection withheld")
			return nil
		}
	}
	rep, err := Check(s.store) // fresh reachability after the repair passes
	if err != nil {
		return err
	}
	for _, p := range rep.Problems {
		switch p.Kind {
		case "orphan-inode", "orphan-dentries":
			if s.act("gc", p.Path, "%s", p.Detail) {
				if err := s.store.Delete(p.Path); err != nil && !errors.Is(err, types.ErrNotExist) {
					return fmt.Errorf("fsck: gc %s: %w", p.Path, err)
				}
			}
		case "orphan-chunks", "dangling-chunks", "orphan-journal":
			// Path is the key prefix of the group; collect every member.
			keys, err := s.store.List(p.Path + ":")
			if err != nil {
				return fmt.Errorf("fsck: gc list %s: %w", p.Path, err)
			}
			for _, k := range keys {
				if s.act("gc", k, "%s", p.Kind) {
					if err := s.store.Delete(k); err != nil && !errors.Is(err, types.ErrNotExist) {
						return fmt.Errorf("fsck: gc %s: %w", k, err)
					}
				}
			}
		}
	}
	return nil
}
