package fsck

import (
	"context"
	"strings"
	"testing"
	"time"

	"arkfs/internal/core"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// buildImage creates a small, cleanly flushed file system and returns its
// store.
func buildImage(t *testing.T) (*objstore.MemStore, *prt.Translator) {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	store := objstore.NewMemStore()
	tr := prt.New(store, 4096)
	if err := core.Format(tr); err != nil {
		t.Fatal(err)
	}
	net := rpc.NewNetwork(env, sim.NetModel{})
	mgr := lease.NewManager(net, lease.Options{Period: time.Second})
	t.Cleanup(mgr.Close)
	c := core.New(net, tr, core.Options{
		ID: "img", Cred: types.Cred{Uid: 1, Gid: 1},
		Journal: journal.Config{CommitInterval: 10 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2},
	})
	if err := c.Mkdir(context.Background(), "/docs", 0755); err != nil {
		t.Fatal(err)
	}
	f, err := c.Create(context.Background(), "/docs/a.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 10000)); err != nil { // 3 chunks
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink(context.Background(), "/docs/a.txt", "/link"); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return store, tr
}

func kinds(rep *Report) map[string]int {
	m := map[string]int{}
	for _, p := range rep.Problems {
		m[p.Kind]++
	}
	return m
}

func TestCleanImagePasses(t *testing.T) {
	store, _ := buildImage(t)
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean image reported problems: %v", rep.Problems)
	}
	if rep.Dirs != 2 || rep.Files != 1 || rep.Symlinks != 1 || rep.Chunks != 3 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.PendingJournalRecords != 0 {
		t.Fatalf("pending journal records on clean image: %d", rep.PendingJournalRecords)
	}
}

func TestDetectsDanglingDentry(t *testing.T) {
	store, tr := buildImage(t)
	// Remove the file's inode object, leaving its dentry behind.
	keys, _ := store.List(prt.PrefixInode)
	for _, k := range keys {
		ino, err := types.ParseIno(strings.TrimPrefix(k, prt.PrefixInode))
		if err != nil {
			t.Fatal(err)
		}
		n, err := tr.LoadInode(ino)
		if err != nil {
			t.Fatal(err)
		}
		if n.Type == types.TypeRegular {
			_ = store.Delete(k)
		}
	}
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(rep)["dangling-dentry"] == 0 {
		t.Fatalf("missed dangling dentry: %v", rep.Problems)
	}
}

func TestDetectsOrphans(t *testing.T) {
	store, _ := buildImage(t)
	// An inode object nobody references, with a chunk: both are orphans, but
	// the chunk is recoverable alongside its inode (orphan-chunks).
	ghost := &types.Inode{Ino: types.NewInoSource(99).Next(), Type: types.TypeRegular, Nlink: 1, Size: 3}
	if err := store.Put(prt.InodeKey(ghost.Ino), wire.EncodeInode(ghost)); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(prt.DataKey(ghost.Ino, 0), []byte("yyy")); err != nil {
		t.Fatal(err)
	}
	// Data chunks of a file whose inode object is gone entirely: dangling.
	if err := store.Put(prt.DataKey(types.NewInoSource(98).Next(), 0), []byte("zzz")); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	k := kinds(rep)
	if k["orphan-inode"] == 0 || k["orphan-chunks"] == 0 || k["dangling-chunks"] == 0 {
		t.Fatalf("missed orphans: %v", rep.Problems)
	}
}

func TestDetectsOrphanJournal(t *testing.T) {
	store, _ := buildImage(t)
	// A journal object for a directory whose inode object does not exist: no
	// future leader will replay it (the directory is gone), so it is leaked
	// space rather than pending recovery work.
	gone := types.NewInoSource(97).Next()
	txn := &wire.Txn{ID: 1, Dir: gone, Kind: wire.TxnNormal, Ops: []wire.Op{
		{Kind: wire.OpDelDentry, Name: "ghost"},
	}}
	if err := store.Put(prt.JournalKey(gone, 3), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(rep)["orphan-journal"] == 0 {
		t.Fatalf("missed orphan journal: %v", rep.Problems)
	}
	if rep.PendingJournalRecords != 0 {
		t.Fatalf("orphan journal records counted as pending: %d", rep.PendingJournalRecords)
	}
}

func TestDetectsChunkBeyondEOF(t *testing.T) {
	store, tr := buildImage(t)
	// Find the regular file and plant a chunk far past its size.
	keys, _ := store.List(prt.PrefixInode)
	for _, k := range keys {
		ino, _ := types.ParseIno(strings.TrimPrefix(k, prt.PrefixInode))
		n, err := tr.LoadInode(ino)
		if err != nil || n.Type != types.TypeRegular {
			continue
		}
		if err := store.Put(prt.DataKey(n.Ino, 99), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(rep)["chunk-beyond-eof"] == 0 {
		t.Fatalf("missed chunk beyond EOF: %v", rep.Problems)
	}
}

func TestReportsPendingJournal(t *testing.T) {
	store, _ := buildImage(t)
	// A valid journal record = unclean shutdown awaiting recovery.
	dir := types.RootIno
	txn := &wire.Txn{ID: 1, Dir: dir, Kind: wire.TxnNormal, Ops: []wire.Op{
		{Kind: wire.OpDelDentry, Name: "ghost"},
	}}
	if err := store.Put(prt.JournalKey(dir, 7), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	// And a torn one.
	raw := wire.EncodeTxn(txn)
	if err := store.Put(prt.JournalKey(dir, 8), raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingJournalRecords != 1 {
		t.Fatalf("pending journal records = %d, want 1", rep.PendingJournalRecords)
	}
	if kinds(rep)["torn-journal"] != 1 {
		t.Fatalf("torn journal not flagged: %v", rep.Problems)
	}
}

func TestDetectsMissingRoot(t *testing.T) {
	store := objstore.NewMemStore()
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(rep)["missing-root"] == 0 {
		t.Fatal("missing root not flagged")
	}
}
