package fsck

import (
	"strings"
	"testing"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// flipBit corrupts one byte of a stored object in place.
func flipBit(t *testing.T, store *objstore.MemStore, key string) {
	t.Helper()
	raw, err := store.Get(key)
	if err != nil {
		t.Fatalf("flip %s: %v", key, err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := store.Put(key, raw); err != nil {
		t.Fatal(err)
	}
}

// findRegular returns the inode of the image's one regular file.
func findRegular(t *testing.T, store *objstore.MemStore, tr *prt.Translator) *types.Inode {
	t.Helper()
	keys, _ := store.List(prt.PrefixInode)
	for _, k := range keys {
		ino, err := types.ParseIno(strings.TrimPrefix(k, prt.PrefixInode))
		if err != nil {
			t.Fatal(err)
		}
		n, err := tr.LoadInode(ino)
		if err != nil {
			continue
		}
		if n.Type == types.TypeRegular {
			return n
		}
	}
	t.Fatal("no regular file in image")
	return nil
}

func actions(rep *ScrubReport) map[string]int {
	m := map[string]int{}
	for _, a := range rep.Actions {
		m[a.Op]++
	}
	return m
}

func TestCheckDetectsCorruptChunk(t *testing.T) {
	store, tr := buildImage(t)
	file := findRegular(t, store, tr)
	flipBit(t, store, prt.DataKey(file.Ino, 1))
	rep, err := Check(store)
	if err != nil {
		t.Fatal(err)
	}
	if kinds(rep)["corrupt-chunk"] != 1 {
		t.Fatalf("corrupt chunk not flagged: %v", rep.Problems)
	}
}

func TestScrubQuarantinesCorruptChunk(t *testing.T) {
	store, tr := buildImage(t)
	file := findRegular(t, store, tr)
	key := prt.DataKey(file.Ino, 1)
	flipBit(t, store, key)
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if actions(rep)["quarantine"] != 1 {
		t.Fatalf("actions: %v", rep.Actions)
	}
	if _, err := store.Get(key); err == nil {
		t.Fatal("corrupt chunk still live after repair")
	}
	if _, err := store.Get(QuarantinePrefix + key); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if !rep.Post.Clean() {
		t.Fatalf("post-repair check not clean: %v", rep.Post.Problems)
	}
	if rep.Post.Quarantined != 1 {
		t.Fatalf("post-repair quarantined count = %d, want 1", rep.Post.Quarantined)
	}
}

func TestScrubDryRunLeavesStoreUntouched(t *testing.T) {
	store, tr := buildImage(t)
	file := findRegular(t, store, tr)
	key := prt.DataKey(file.Ino, 1)
	flipBit(t, store, key)
	rep, err := Scrub(store, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Planned || rep.Post != nil {
		t.Fatalf("dry run: planned=%v post=%v", rep.Planned, rep.Post)
	}
	if actions(rep)["quarantine"] == 0 {
		t.Fatalf("dry run planned nothing: %v", rep.Actions)
	}
	if _, err := store.Get(key); err != nil {
		t.Fatalf("dry run modified the store: %v", err)
	}
	if _, err := store.Get(QuarantinePrefix + key); err == nil {
		t.Fatal("dry run wrote a quarantine copy")
	}
}

func TestScrubRestoresInodeFromJournalCopy(t *testing.T) {
	store, tr := buildImage(t)
	file := findRegular(t, store, tr)
	// A pending committed record carries a copy of the inode; the object
	// itself is then corrupted.
	txn := &wire.Txn{ID: 9, Dir: types.RootIno, Kind: wire.TxnNormal, Ops: []wire.Op{
		{Kind: wire.OpSetInode, Inode: file},
	}}
	if err := store.Put(prt.JournalKey(types.RootIno, 11), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	flipBit(t, store, prt.InodeKey(file.Ino))
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if actions(rep)["restore-inode"] != 1 {
		t.Fatalf("actions: %v", rep.Actions)
	}
	got, err := tr.LoadInode(file.Ino)
	if err != nil {
		t.Fatalf("restored inode unreadable: %v", err)
	}
	if got.Size != file.Size || got.Type != file.Type {
		t.Fatalf("restored inode mismatch: got %+v want %+v", got, file)
	}
	if !rep.Post.Clean() {
		t.Fatalf("post-repair check not clean: %v", rep.Post.Problems)
	}
}

func TestScrubQuarantinesInodeWithoutCopy(t *testing.T) {
	store, tr := buildImage(t)
	file := findRegular(t, store, tr)
	key := prt.InodeKey(file.Ino)
	flipBit(t, store, key)
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(QuarantinePrefix + key); err != nil {
		t.Fatalf("corrupt inode not quarantined: %v (actions %v)", err, rep.Actions)
	}
	// The dentry now dangles; that is reported, not hidden.
	if kinds(rep.Post)["dangling-dentry"] == 0 {
		t.Fatalf("post-repair check hides the dangling dentry: %v", rep.Post.Problems)
	}
}

func TestScrubRebuildsDentriesFromJournal(t *testing.T) {
	store, tr := buildImage(t)
	file := findRegular(t, store, tr)
	// Locate /docs (the directory holding the file).
	var docs types.Ino
	keys, _ := store.List(prt.PrefixDentry)
	for _, k := range keys {
		dir, err := types.ParseIno(strings.TrimPrefix(k, prt.PrefixDentry))
		if err != nil {
			t.Fatal(err)
		}
		des, err := tr.LoadDentries(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range des {
			if de.Ino == file.Ino {
				docs = dir
			}
		}
	}
	if docs.IsNil() {
		t.Fatal("file's parent directory not found")
	}
	// A committed journal record re-establishing the entry, then rot the
	// checkpointed block.
	txn := &wire.Txn{ID: 5, Dir: docs, Kind: wire.TxnNormal, Ops: []wire.Op{
		{Kind: wire.OpAddDentry, Name: "a.txt", Ino: file.Ino, FType: file.Type},
	}}
	if err := store.Put(prt.JournalKey(docs, 21), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	flipBit(t, store, prt.DentryKey(docs))
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if actions(rep)["rebuild-dentries"] != 1 {
		t.Fatalf("actions: %v", rep.Actions)
	}
	des, err := tr.LoadDentries(docs)
	if err != nil {
		t.Fatalf("rebuilt dentry block unreadable: %v", err)
	}
	if len(des) != 1 || des[0].Name != "a.txt" || des[0].Ino != file.Ino {
		t.Fatalf("rebuilt dentries = %v", des)
	}
	if !rep.Post.Clean() {
		t.Fatalf("post-repair check not clean: %v", rep.Post.Problems)
	}
}

func TestScrubTruncatesJournalAtFirstCorruptRecord(t *testing.T) {
	store, _ := buildImage(t)
	dir := types.RootIno
	mk := func(id uint64) []byte {
		return wire.EncodeTxn(&wire.Txn{ID: id, Dir: dir, Kind: wire.TxnNormal, Ops: []wire.Op{
			{Kind: wire.OpDelDentry, Name: "ghost"},
		}})
	}
	if err := store.Put(prt.JournalKey(dir, 1), mk(1)); err != nil {
		t.Fatal(err)
	}
	bad := mk(2)
	bad[len(bad)/2] ^= 0x01
	if err := store.Put(prt.JournalKey(dir, 2), bad); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(prt.JournalKey(dir, 3), mk(3)); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	a := actions(rep)
	if a["quarantine"] != 1 || a["truncate-journal"] != 1 {
		t.Fatalf("actions: %v", rep.Actions)
	}
	if _, err := store.Get(prt.JournalKey(dir, 1)); err != nil {
		t.Fatalf("record before the cut was lost: %v", err)
	}
	for _, seq := range []uint64{2, 3} {
		if _, err := store.Get(prt.JournalKey(dir, seq)); err == nil {
			t.Fatalf("record %d survived the truncation rule", seq)
		}
	}
	if _, err := store.Get(QuarantinePrefix + prt.JournalKey(dir, 2)); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
	// Record 1 is still valid and pending, so orphan GC must be withheld.
	if !rep.GCSkipped {
		t.Fatal("orphan GC ran despite pending journal records")
	}
}

func TestScrubWithholdsGCWhilePendingRecordsExist(t *testing.T) {
	store, _ := buildImage(t)
	ghost := types.NewInoSource(96).Next()
	ghostKey := prt.InodeKey(ghost)
	if err := store.Put(ghostKey, wire.EncodeInode(&types.Inode{
		Ino: ghost, Type: types.TypeRegular, Nlink: 1,
	})); err != nil {
		t.Fatal(err)
	}
	txn := &wire.Txn{ID: 4, Dir: types.RootIno, Kind: wire.TxnNormal, Ops: []wire.Op{
		{Kind: wire.OpDelDentry, Name: "ghost"},
	}}
	if err := store.Put(prt.JournalKey(types.RootIno, 2), wire.EncodeTxn(txn)); err != nil {
		t.Fatal(err)
	}
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GCSkipped {
		t.Fatal("GC not withheld with a valid pending record")
	}
	if _, err := store.Get(ghostKey); err != nil {
		t.Fatalf("orphan collected despite pending records: %v", err)
	}

	// Once the journal drains, the same scrub collects the orphan.
	if err := store.Delete(prt.JournalKey(types.RootIno, 2)); err != nil {
		t.Fatal(err)
	}
	rep, err = Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GCSkipped {
		t.Fatal("GC withheld with an empty journal")
	}
	if _, err := store.Get(ghostKey); err == nil {
		t.Fatal("orphan inode survived GC")
	}
	if !rep.Post.Clean() {
		t.Fatalf("post-repair check not clean: %v", rep.Post.Problems)
	}
}

func TestScrubRewritesCorruptSuperblock(t *testing.T) {
	store, _ := buildImage(t)
	flipBit(t, store, prt.SuperblockKey)
	rep, err := Scrub(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if actions(rep)["rewrite-superblock"] != 1 {
		t.Fatalf("actions: %v", rep.Actions)
	}
	raw, err := store.Get(prt.SuperblockKey)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := prt.DecodeSuperblock(raw)
	if err != nil {
		t.Fatalf("rewritten superblock unreadable: %v", err)
	}
	if sb.ChunkSize != prt.DefaultChunkSize {
		t.Fatalf("chunk size = %d, want default %d", sb.ChunkSize, prt.DefaultChunkSize)
	}
}
