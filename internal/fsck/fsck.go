// Package fsck implements an offline consistency checker for an ArkFS
// object-store image. It walks the namespace from the root inode and
// validates the invariants the journaling design guarantees:
//
//   - every dentry references an existing, decodable inode;
//   - directory inodes have (or may legitimately lack) a dentry block, and
//     every dentry block belongs to a reachable directory;
//   - every data chunk belongs to a reachable regular file and lies inside
//     its size (no orphan or out-of-bounds chunks);
//   - journals are empty, or contain only records a recovery pass would
//     resolve (reported, since they imply an unclean shutdown); journal
//     objects for directories with no inode object are flagged as orphans;
//   - inode and dentry objects that no dentry references are orphans, and
//     data chunks whose inode object is gone entirely are dangling;
//   - every persisted record (inode, dentry block, journal txn, data chunk,
//     superblock) carries a CRC32C trailer, verified during the scan.
//
// Check is read-only. Scrub repairs what the journal can prove: it truncates
// corrupt journals, rebuilds checkpoints from journal replay, restores
// corrupt inodes from journaled copies, quarantines unrecoverable objects
// under the quarantine/ prefix, and garbage-collects orphans — the latter
// only when no valid journal records are pending anywhere. cmd/arkfsck
// drives both.
package fsck

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Problem is one detected inconsistency.
type Problem struct {
	// Kind is a stable identifier, e.g. "dangling-dentry".
	Kind string
	// Path locates the problem when known ("/a/b"), else the object key.
	Path string
	// Detail is a human-readable explanation.
	Detail string
}

func (p Problem) String() string {
	return fmt.Sprintf("%-18s %-30s %s", p.Kind, p.Path, p.Detail)
}

// Report is the checker's outcome.
type Report struct {
	// Counts of scanned entities.
	Dirs, Files, Symlinks, Chunks int
	// PendingJournalRecords counts valid journal records awaiting recovery
	// (an unclean shutdown, not corruption).
	PendingJournalRecords int
	// Quarantined counts objects a previous scrub moved under the
	// quarantine/ prefix. They are evidence, not live state, so they are
	// inventoried but never treated as inconsistencies.
	Quarantined int
	Problems    []Problem
}

// Clean reports whether no inconsistencies were found.
func (r *Report) Clean() bool { return len(r.Problems) == 0 }

func (r *Report) add(kind, path, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{Kind: kind, Path: path, Detail: fmt.Sprintf(format, args...)})
}

// Check validates the file-system image in store.
func Check(store objstore.Store) (*Report, error) {
	rep := &Report{}
	chunkSize := prt.DefaultChunkSize
	if raw, err := store.Get(prt.SuperblockKey); err == nil {
		if sb, derr := prt.DecodeSuperblock(raw); derr == nil {
			chunkSize = sb.ChunkSize
		} else {
			rep.add("bad-superblock", prt.SuperblockKey, "%v", derr)
		}
	} else {
		rep.add("missing-superblock", prt.SuperblockKey,
			"no formatting record; extent checks assume the default chunk size")
	}
	tr := prt.New(store, chunkSize)

	// Inventory every object by prefix.
	keys, err := store.List("")
	if err != nil {
		return nil, fmt.Errorf("fsck: list: %w", err)
	}
	inodeKeys := map[string]bool{}  // ino hex -> present
	dentryKeys := map[string]bool{} // dir ino hex -> present
	journalKeys := map[string][]string{}
	chunkKeys := map[string][]int64{} // file ino hex -> chunk indices
	for _, k := range keys {
		switch {
		case strings.HasPrefix(k, prt.PrefixInode):
			inodeKeys[strings.TrimPrefix(k, prt.PrefixInode)] = true
		case strings.HasPrefix(k, prt.PrefixDentry):
			dentryKeys[strings.TrimPrefix(k, prt.PrefixDentry)] = true
		case strings.HasPrefix(k, prt.PrefixJournal):
			rest := strings.TrimPrefix(k, prt.PrefixJournal)
			if i := strings.IndexByte(rest, ':'); i > 0 {
				journalKeys[rest[:i]] = append(journalKeys[rest[:i]], k)
			} else {
				rep.add("bad-journal-key", k, "journal key without sequence")
			}
		case strings.HasPrefix(k, prt.PrefixData):
			rest := strings.TrimPrefix(k, prt.PrefixData)
			i := strings.IndexByte(rest, ':')
			if i <= 0 {
				rep.add("bad-data-key", k, "data key without chunk index")
				continue
			}
			idx, err := strconv.ParseInt(rest[i+1:], 10, 64)
			if err != nil {
				rep.add("bad-data-key", k, "unparsable chunk index: %v", err)
				continue
			}
			chunkKeys[rest[:i]] = append(chunkKeys[rest[:i]], idx)
		case k == prt.SuperblockKey:
			// formatting record, consumed above
		case strings.HasPrefix(k, QuarantinePrefix):
			// evidence preserved by a scrub -repair run, outside the live
			// key space by construction
			rep.Quarantined++
		case strings.HasPrefix(k, lease.SnapshotPrefix):
			// lease-manager grant-table snapshot: control-plane state, not
			// part of the file-system namespace. Verify the seal so a
			// corrupted snapshot is surfaced (a shard restarting onto it
			// degrades to the conservative cold-restart path, which is safe
			// but slow).
			if raw, gerr := store.Get(k); gerr == nil {
				if _, serr := wire.Unseal(raw); serr != nil {
					rep.add("corrupt-lease-snapshot", k, "grant-table snapshot fails its CRC: %v", serr)
				}
			}
		default:
			rep.add("unknown-key", k, "object key outside the PRT scheme")
		}
	}

	// Walk the namespace.
	reachedInodes := map[string]*types.Inode{}
	reachedDirs := map[string]bool{}
	root, err := tr.LoadInode(types.RootIno)
	if err != nil {
		rep.add("missing-root", "/", "root inode unreadable: %v", err)
		return rep, nil
	}
	var walk func(path string, dir *types.Inode)
	walk = func(path string, dir *types.Inode) {
		rep.Dirs++
		reachedInodes[dir.Ino.String()] = dir
		reachedDirs[dir.Ino.String()] = true
		entries, err := tr.LoadDentries(dir.Ino)
		if err != nil {
			rep.add("bad-dentry-block", path, "undecodable dentry block: %v", err)
			return
		}
		names := map[string]bool{}
		for _, de := range entries {
			childPath := path + "/" + de.Name
			if path == "/" {
				childPath = "/" + de.Name
			}
			if err := types.ValidName(de.Name); err != nil {
				rep.add("bad-name", childPath, "%v", err)
			}
			if names[de.Name] {
				rep.add("duplicate-dentry", childPath, "name appears twice")
				continue
			}
			names[de.Name] = true
			child, err := tr.LoadInode(de.Ino)
			if err != nil {
				kind := "dangling-dentry"
				if errors.Is(err, types.ErrIntegrity) {
					// The object is present but fails CRC verification — a
					// scrub can often restore it from a journaled copy.
					kind = "corrupt-inode"
				}
				rep.add(kind, childPath, "inode %s unreadable: %v", de.Ino.Short(), err)
				continue
			}
			if child.Type != de.Type {
				rep.add("type-mismatch", childPath, "dentry says %v, inode says %v", de.Type, child.Type)
			}
			switch child.Type {
			case types.TypeDir:
				if reachedDirs[child.Ino.String()] {
					rep.add("dir-cycle", childPath, "directory reachable twice")
					continue
				}
				walk(childPath, child)
			case types.TypeSymlink:
				rep.Symlinks++
				reachedInodes[child.Ino.String()] = child
				if child.Target == "" {
					rep.add("empty-symlink", childPath, "symlink without target")
				}
			default:
				rep.Files++
				reachedInodes[child.Ino.String()] = child
				// Validate chunk extents.
				maxChunks := (child.Size + tr.ChunkSize() - 1) / tr.ChunkSize()
				for _, idx := range chunkKeys[child.Ino.String()] {
					rep.Chunks++
					if idx >= maxChunks {
						rep.add("chunk-beyond-eof", childPath,
							"chunk %d outside size %d", idx, child.Size)
						continue
					}
					// Verify the chunk digest: a read through the normal
					// path would fail with EINTEGRITY, so surface it here.
					if _, err := tr.GetChunk(child.Ino, idx); err != nil {
						if errors.Is(err, types.ErrIntegrity) {
							rep.add("corrupt-chunk", childPath,
								"chunk %d fails verification: %v", idx, err)
						} else if !errors.Is(err, types.ErrNotExist) {
							rep.add("chunk-read", childPath, "chunk %d: %v", idx, err)
						}
					}
				}
				delete(chunkKeys, child.Ino.String())
			}
		}
	}
	walk("/", root)

	// Anything left in chunkKeys has no owning file. Distinguish chunks whose
	// inode object still exists but fell out of the namespace (orphan: the
	// file is recoverable) from chunks whose inode is gone entirely (dangling:
	// leaked space, e.g. a crash between chunk deletion fan-out and the
	// journal checkpoint that removed the inode).
	for ino, idxs := range chunkKeys {
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		if inodeKeys[ino] {
			rep.add("orphan-chunks", prt.PrefixData+ino, "%d chunk(s) with no reachable file", len(idxs))
		} else {
			rep.add("dangling-chunks", prt.PrefixData+ino, "%d chunk(s) whose inode object no longer exists", len(idxs))
		}
		rep.Chunks += len(idxs)
	}
	// Unreachable inode objects.
	for ino := range inodeKeys {
		if _, ok := reachedInodes[ino]; !ok {
			rep.add("orphan-inode", prt.PrefixInode+ino, "inode object not reachable from /")
		}
	}
	// Dentry blocks of unreachable directories.
	for dir := range dentryKeys {
		if !reachedDirs[dir] {
			rep.add("orphan-dentries", prt.PrefixDentry+dir, "dentry block of unreachable directory")
		}
	}
	// Journals: decodable records mean an unclean shutdown (recovery due);
	// undecodable ones are torn tails recovery would drop. Journal objects
	// for a directory whose inode object is gone entirely are orphans — no
	// future leader will ever replay them (the directory was removed, or its
	// creation never became durable), so they are leaked space, not pending
	// work.
	for dir, keys := range journalKeys {
		if !inodeKeys[dir] {
			rep.add("orphan-journal", prt.PrefixJournal+dir,
				"%d journal object(s) for a directory with no inode object", len(keys))
			continue
		}
		for _, k := range keys {
			raw, err := store.Get(k)
			if err != nil {
				if errors.Is(err, types.ErrNotExist) {
					continue
				}
				rep.add("journal-read", k, "%v", err)
				continue
			}
			if _, err := wire.DecodeTxn(raw); err != nil {
				rep.add("torn-journal", k, "undecodable record (crash tail): %v", err)
				continue
			}
			rep.PendingJournalRecords++
		}
	}
	return rep, nil
}
