package types

import (
	"fmt"
	"sort"
	"strings"
)

// ACLTag identifies the subject class of an ACL entry, following the POSIX.1e
// draft model the HPC community relies on for per-directory access control.
type ACLTag uint8

// ACL entry tags.
const (
	TagUserObj  ACLTag = iota // the owning user (ID ignored)
	TagUser                   // a named user
	TagGroupObj               // the owning group (ID ignored)
	TagGroup                  // a named group
	TagMask                   // upper bound for group-class entries
	TagOther                  // everyone else
)

// String implements fmt.Stringer.
func (t ACLTag) String() string {
	switch t {
	case TagUserObj:
		return "user_obj"
	case TagUser:
		return "user"
	case TagGroupObj:
		return "group_obj"
	case TagGroup:
		return "group"
	case TagMask:
		return "mask"
	case TagOther:
		return "other"
	default:
		return "bad_tag"
	}
}

// ACLEntry grants Perms (MayRead|MayWrite|MayExec bits) to the subject
// identified by Tag and ID.
type ACLEntry struct {
	Tag   ACLTag
	ID    uint32
	Perms uint8
}

// ACL is an ordered list of entries. An empty ACL means "mode bits only".
// A non-empty ACL must be valid per Validate before being stored.
type ACL []ACLEntry

// Clone returns a copy that does not alias the receiver.
func (a ACL) Clone() ACL {
	if a == nil {
		return nil
	}
	c := make(ACL, len(a))
	copy(c, a)
	return c
}

// Validate checks POSIX.1e structural rules: at most one entry each of
// user_obj/group_obj/other/mask, no duplicate named entries, and a mask
// required whenever named entries exist.
func (a ACL) Validate() error {
	if len(a) == 0 {
		return nil
	}
	var nUserObj, nGroupObj, nOther, nMask, nNamed int
	users := map[uint32]bool{}
	groups := map[uint32]bool{}
	for _, e := range a {
		if e.Perms > 7 {
			return fmt.Errorf("types: acl perms %o out of range: %w", e.Perms, ErrInval)
		}
		switch e.Tag {
		case TagUserObj:
			nUserObj++
		case TagGroupObj:
			nGroupObj++
		case TagOther:
			nOther++
		case TagMask:
			nMask++
		case TagUser:
			if users[e.ID] {
				return fmt.Errorf("types: duplicate acl user %d: %w", e.ID, ErrInval)
			}
			users[e.ID] = true
			nNamed++
		case TagGroup:
			if groups[e.ID] {
				return fmt.Errorf("types: duplicate acl group %d: %w", e.ID, ErrInval)
			}
			groups[e.ID] = true
			nNamed++
		default:
			return fmt.Errorf("types: bad acl tag %d: %w", e.Tag, ErrInval)
		}
	}
	if nUserObj > 1 || nGroupObj > 1 || nOther > 1 || nMask > 1 {
		return fmt.Errorf("types: duplicate acl base entry: %w", ErrInval)
	}
	if nNamed > 0 && nMask == 0 {
		return fmt.Errorf("types: acl with named entries requires a mask: %w", ErrInval)
	}
	return nil
}

// evaluate resolves cred's permissions under the ACL, with the inode
// supplying the owner uid/gid and the mode bits supplying defaults for base
// entries that the ACL omits.
func (a ACL) evaluate(cred Cred, n *Inode) uint8 {
	mask := uint8(7)
	hasMask := false
	for _, e := range a {
		if e.Tag == TagMask {
			mask, hasMask = e.Perms, true
		}
	}
	_ = hasMask

	// 1. Owner.
	if cred.Uid == n.Uid {
		for _, e := range a {
			if e.Tag == TagUserObj {
				return e.Perms
			}
		}
		return uint8(n.Mode >> 6 & 7)
	}
	// 2. Named user (masked).
	for _, e := range a {
		if e.Tag == TagUser && e.ID == cred.Uid {
			return e.Perms & mask
		}
	}
	// 3. Owning group and named groups: the union of matching entries,
	// masked, per POSIX.1e "best match" across the group class.
	var groupPerms uint8
	groupMatch := false
	for _, e := range a {
		switch e.Tag {
		case TagGroupObj:
			if cred.InGroup(n.Gid) {
				groupPerms |= e.Perms
				groupMatch = true
			}
		case TagGroup:
			if cred.InGroup(e.ID) {
				groupPerms |= e.Perms
				groupMatch = true
			}
		}
	}
	if !groupMatch && cred.InGroup(n.Gid) {
		groupPerms, groupMatch = uint8(n.Mode>>3&7), true
	}
	if groupMatch {
		return groupPerms & mask
	}
	// 4. Other.
	for _, e := range a {
		if e.Tag == TagOther {
			return e.Perms
		}
	}
	return uint8(n.Mode & 7)
}

// anyExec reports whether any entry grants execute; used by the superuser
// execute check.
func (a ACL) anyExec() bool {
	for _, e := range a {
		if e.Perms&MayExec != 0 {
			return true
		}
	}
	return false
}

// Normalize sorts entries into canonical tag/ID order so encoded ACLs
// compare bytewise.
func (a ACL) Normalize() {
	sort.SliceStable(a, func(i, j int) bool {
		if a[i].Tag != a[j].Tag {
			return a[i].Tag < a[j].Tag
		}
		return a[i].ID < a[j].ID
	})
}

// String renders the ACL in getfacl-like form for diagnostics.
func (a ACL) String() string {
	if len(a) == 0 {
		return "(mode bits)"
	}
	parts := make([]string, 0, len(a))
	for _, e := range a {
		p := [3]byte{'-', '-', '-'}
		if e.Perms&MayRead != 0 {
			p[0] = 'r'
		}
		if e.Perms&MayWrite != 0 {
			p[1] = 'w'
		}
		if e.Perms&MayExec != 0 {
			p[2] = 'x'
		}
		parts = append(parts, fmt.Sprintf("%s:%d:%s", e.Tag, e.ID, p[:]))
	}
	return strings.Join(parts, ",")
}
