// Package types defines the fundamental file-system types shared by every
// ArkFS component: 128-bit inode numbers, inodes, access-control metadata,
// credentials, and the POSIX-style error set.
//
// ArkFS (IPDPS 2023) uses a 128-bit UUID as its inode number and builds every
// object key from a one-byte prefix plus the inode number, so the inode
// number type lives here at the bottom of the dependency graph.
package types

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
)

// Ino is a 128-bit file-system inode number (a UUID in the paper's terms).
// It is a value type and comparable, so it can be used directly as a map key.
type Ino [16]byte

// RootIno is the well-known inode number of the file-system root directory.
// Every client derives it without any lookup, exactly as "/" needs no parent.
var RootIno = Ino{0xa4, 0x4f, 0x53, 0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}

// NilIno is the zero inode number; it is never a valid file.
var NilIno = Ino{}

// IsNil reports whether the inode number is the invalid zero value.
func (i Ino) IsNil() bool { return i == NilIno }

// String renders the inode number as 32 hex digits.
func (i Ino) String() string { return hex.EncodeToString(i[:]) }

// Short returns an abbreviated form used in logs and error messages.
func (i Ino) Short() string { return hex.EncodeToString(i[:4]) }

// Hi returns the upper 64 bits. It is used to map directories onto journal
// commit/checkpoint workers ("statically mapped ... depending on the
// directory inode numbers", paper §III-E).
func (i Ino) Hi() uint64 { return binary.BigEndian.Uint64(i[0:8]) }

// Lo returns the lower 64 bits.
func (i Ino) Lo() uint64 { return binary.BigEndian.Uint64(i[8:16]) }

// ParseIno parses the 32-hex-digit form produced by String.
func ParseIno(s string) (Ino, error) {
	var i Ino
	if len(s) != 32 {
		return i, fmt.Errorf("types: bad ino %q: want 32 hex digits", s)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return i, fmt.Errorf("types: bad ino %q: %v", s, err)
	}
	copy(i[:], b)
	return i, nil
}

// InoSource deterministically generates fresh inode numbers. Each client owns
// one source seeded with a distinct value, so inode numbers are unique across
// the cluster without coordination while simulation runs stay reproducible.
type InoSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewInoSource returns a source seeded with seed. Two sources with different
// seeds produce disjoint streams with overwhelming probability (128 random
// bits per inode).
func NewInoSource(seed int64) *InoSource {
	return &InoSource{rng: rand.New(rand.NewSource(seed))}
}

// Next returns a fresh inode number. It never returns NilIno or RootIno.
func (s *InoSource) Next() Ino {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var i Ino
		binary.BigEndian.PutUint64(i[0:8], s.rng.Uint64())
		binary.BigEndian.PutUint64(i[8:16], s.rng.Uint64())
		if i != NilIno && i != RootIno {
			return i
		}
	}
}
