package types

import (
	"errors"
	"testing"
)

func mkInode(mode Mode, uid, gid uint32) *Inode {
	return &Inode{Ino: RootIno, Type: TypeRegular, Mode: mode, Uid: uid, Gid: gid}
}

func TestAccessModeBits(t *testing.T) {
	n := mkInode(0640, 100, 200)
	cases := []struct {
		name string
		cred Cred
		want uint8
		ok   bool
	}{
		{"owner read", Cred{Uid: 100}, MayRead, true},
		{"owner write", Cred{Uid: 100}, MayWrite, true},
		{"owner exec denied", Cred{Uid: 100}, MayExec, false},
		{"group read", Cred{Uid: 101, Gid: 200}, MayRead, true},
		{"group write denied", Cred{Uid: 101, Gid: 200}, MayWrite, false},
		{"supplementary group read", Cred{Uid: 101, Gid: 5, Groups: []uint32{200}}, MayRead, true},
		{"other denied", Cred{Uid: 101, Gid: 5}, MayRead, false},
		{"root read", Cred{Uid: 0}, MayRead | MayWrite, true},
		{"combined owner rw", Cred{Uid: 100}, MayRead | MayWrite, true},
	}
	for _, c := range cases {
		err := n.Access(c.cred, c.want)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected deny: %v", c.name, err)
		}
		if !c.ok && !errors.Is(err, ErrAccess) {
			t.Errorf("%s: want EACCES, got %v", c.name, err)
		}
	}
}

func TestRootExecNeedsSomeExecBit(t *testing.T) {
	n := mkInode(0644, 100, 100)
	if err := n.Access(Root, MayExec); !errors.Is(err, ErrAccess) {
		t.Errorf("root exec on non-executable file: want EACCES, got %v", err)
	}
	n.Mode = 0744
	if err := n.Access(Root, MayExec); err != nil {
		t.Errorf("root exec with owner x bit: %v", err)
	}
	// Directories: root may always search.
	d := &Inode{Type: TypeDir, Mode: 0600, Uid: 100, Gid: 100}
	if err := d.Access(Root, MayExec); err != nil {
		t.Errorf("root search on dir: %v", err)
	}
}

func TestAccessOwnerBeatsGroup(t *testing.T) {
	// POSIX: if you are the owner, only the owner bits apply, even if the
	// group bits would grant more.
	n := mkInode(0060, 100, 200)
	cred := Cred{Uid: 100, Gid: 200}
	if err := n.Access(cred, MayRead); !errors.Is(err, ErrAccess) {
		t.Errorf("owner with 0060: want EACCES on read, got %v", err)
	}
}

func TestACLEvaluation(t *testing.T) {
	n := mkInode(0600, 100, 200)
	n.ACL = ACL{
		{Tag: TagUserObj, Perms: MayRead | MayWrite},
		{Tag: TagUser, ID: 300, Perms: MayRead | MayWrite},
		{Tag: TagGroupObj, Perms: MayRead},
		{Tag: TagGroup, ID: 400, Perms: MayRead | MayWrite},
		{Tag: TagMask, Perms: MayRead},
		{Tag: TagOther, Perms: 0},
	}
	if err := n.ACL.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := []struct {
		name string
		cred Cred
		want uint8
		ok   bool
	}{
		{"owner rw", Cred{Uid: 100}, MayRead | MayWrite, true},
		{"named user read (mask limits write)", Cred{Uid: 300}, MayRead, true},
		{"named user write masked out", Cred{Uid: 300}, MayWrite, false},
		{"owning group read", Cred{Uid: 1, Gid: 200}, MayRead, true},
		{"named group write masked out", Cred{Uid: 1, Gid: 400}, MayWrite, false},
		{"other denied", Cred{Uid: 1, Gid: 1}, MayRead, false},
	}
	for _, c := range cases {
		err := n.Access(c.cred, c.want)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected deny: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: unexpected grant", c.name)
		}
	}
}

func TestACLValidateRejectsBadACLs(t *testing.T) {
	bad := []ACL{
		{{Tag: TagUser, ID: 1, Perms: MayRead}}, // named entry without mask
		{{Tag: TagUserObj, Perms: 7}, {Tag: TagUserObj, Perms: 7}},
		{{Tag: TagUser, ID: 1, Perms: 7}, {Tag: TagUser, ID: 1, Perms: 7}, {Tag: TagMask, Perms: 7}},
		{{Tag: ACLTag(99), Perms: 7}},
		{{Tag: TagOther, Perms: 9}},
	}
	for i, a := range bad {
		if err := a.Validate(); !errors.Is(err, ErrInval) {
			t.Errorf("case %d: want EINVAL, got %v", i, err)
		}
	}
}

func TestInodeCloneDoesNotAlias(t *testing.T) {
	n := mkInode(0644, 1, 2)
	n.ACL = ACL{{Tag: TagUserObj, Perms: 7}}
	c := n.Clone()
	c.ACL[0].Perms = 0
	c.Mode = 0
	if n.ACL[0].Perms != 7 || n.Mode != 0644 {
		t.Fatal("Clone aliased the original inode")
	}
}

func TestACLNormalizeStable(t *testing.T) {
	a := ACL{
		{Tag: TagOther, Perms: 1},
		{Tag: TagUser, ID: 9, Perms: 2},
		{Tag: TagUser, ID: 3, Perms: 3},
		{Tag: TagUserObj, Perms: 7},
	}
	a.Normalize()
	if a[0].Tag != TagUserObj || a[1].ID != 3 || a[2].ID != 9 || a[3].Tag != TagOther {
		t.Fatalf("Normalize order wrong: %v", a)
	}
}
