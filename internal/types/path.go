package types

import (
	"fmt"
	"strings"
)

// MaxNameLen bounds a single path component, matching NAME_MAX on Linux.
const MaxNameLen = 255

// ValidName checks a single directory entry name.
func ValidName(name string) error {
	switch {
	case name == "" || name == "." || name == "..":
		return fmt.Errorf("types: reserved name %q: %w", name, ErrInval)
	case len(name) > MaxNameLen:
		return fmt.Errorf("types: name %q: %w", name[:16]+"...", ErrNameTooLong)
	case strings.ContainsRune(name, '/'):
		return fmt.Errorf("types: name %q contains '/': %w", name, ErrInval)
	case strings.ContainsRune(name, 0):
		return fmt.Errorf("types: name contains NUL: %w", ErrInval)
	}
	return nil
}

// SplitPath cleans an absolute path and returns its components. "." and
// empty components are dropped; ".." is resolved lexically (it cannot escape
// the root). The empty slice denotes the root directory itself.
func SplitPath(path string) ([]string, error) {
	if path == "" {
		return nil, fmt.Errorf("types: empty path: %w", ErrInval)
	}
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("types: path %q is not absolute: %w", path, ErrInval)
	}
	raw := strings.Split(path, "/")
	parts := make([]string, 0, len(raw))
	for _, c := range raw {
		switch c {
		case "", ".":
			continue
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			if len(c) > MaxNameLen {
				return nil, fmt.Errorf("types: component in %q: %w", path, ErrNameTooLong)
			}
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// SplitDir splits an absolute path into the parent's components and the
// final name. It fails on the root itself, which has no parent entry.
func SplitDir(path string) (dir []string, name string, err error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("types: %q has no parent entry: %w", path, ErrInval)
	}
	return parts[:len(parts)-1], parts[len(parts)-1], nil
}

// JoinPath reassembles components into a clean absolute path.
func JoinPath(parts []string) string {
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}
