package types

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The POSIX-style error set. ArkFS components wrap these with context via
// fmt.Errorf("...: %w", err); callers test with errors.Is, mirroring how a
// FUSE layer would map them to errno values.
var (
	ErrNotExist    = errors.New("no such file or directory")         // ENOENT
	ErrExist       = errors.New("file exists")                       // EEXIST
	ErrNotDir      = errors.New("not a directory")                   // ENOTDIR
	ErrIsDir       = errors.New("is a directory")                    // EISDIR
	ErrNotEmpty    = errors.New("directory not empty")               // ENOTEMPTY
	ErrAccess      = errors.New("permission denied")                 // EACCES
	ErrPerm        = errors.New("operation not permitted")           // EPERM
	ErrInval       = errors.New("invalid argument")                  // EINVAL
	ErrNameTooLong = errors.New("file name too long")                // ENAMETOOLONG
	ErrNoSpace     = errors.New("no space left on device")           // ENOSPC
	ErrStale       = errors.New("stale file handle")                 // ESTALE
	ErrBadFD       = errors.New("bad file descriptor")               // EBADF
	ErrBusy        = errors.New("device or resource busy")           // EBUSY
	ErrIO          = errors.New("input/output error")                // EIO
	ErrLoop        = errors.New("too many levels of symbolic links") // ELOOP
	ErrXDev        = errors.New("invalid cross-device link")         // EXDEV
	ErrTimedOut    = errors.New("operation timed out")               // ETIMEDOUT
	ErrReadOnly    = errors.New("read-only file system")             // EROFS
	ErrAgain       = errors.New("resource temporarily unavailable")  // EAGAIN
	ErrNotLeader   = errors.New("not the directory leader")          // ArkFS-internal
	ErrLeaseLost   = errors.New("directory lease lost")              // ArkFS-internal
)

// ErrIntegrity reports a checksum or framing failure on a persisted record:
// the bytes came back, but they are not the bytes that were written. It wraps
// ErrIO so legacy errors.Is(err, ErrIO) checks keep matching, while readers
// that care can distinguish detected corruption from plain I/O failure.
var ErrIntegrity = fmt.Errorf("data integrity check failed: %w", ErrIO)

// RetryAfterError is the typed EAGAIN carrier: an admission controller,
// load shedder, or circuit breaker rejected the operation and suggests
// retrying after a delay. It wraps ErrAgain so errors.Is(err, ErrAgain)
// matches, and it survives the string-encoded RPC boundary: Errno renders it
// as "EAGAIN@<ns>" and FromErrno rehydrates the hint on the far side.
type RetryAfterError struct {
	After  time.Duration // suggested backoff before retrying
	Reason string        // local shed-reason tag (not carried over the wire)
}

func (e *RetryAfterError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("%v (%s, retry after %v)", ErrAgain, e.Reason, e.After)
	}
	return fmt.Sprintf("%v (retry after %v)", ErrAgain, e.After)
}

func (e *RetryAfterError) Unwrap() error { return ErrAgain }

// AgainAfter builds a typed retry-after pushback error.
func AgainAfter(after time.Duration, reason string) error {
	return &RetryAfterError{After: after, Reason: reason}
}

// RetryAfter extracts the retry-after hint from a typed EAGAIN, reporting
// whether one was present.
func RetryAfter(err error) (time.Duration, bool) {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return ra.After, true
	}
	return 0, false
}

// Errno returns the Linux errno-style symbolic name for a wrapped error,
// or "EIO" for anything unrecognized; benchmark harnesses and the CLI use it
// for compact reporting.
func Errno(err error) string {
	switch {
	case err == nil:
		return "OK"
	case errors.Is(err, ErrNotExist):
		return "ENOENT"
	case errors.Is(err, ErrExist):
		return "EEXIST"
	case errors.Is(err, ErrNotDir):
		return "ENOTDIR"
	case errors.Is(err, ErrIsDir):
		return "EISDIR"
	case errors.Is(err, ErrNotEmpty):
		return "ENOTEMPTY"
	case errors.Is(err, ErrAccess):
		return "EACCES"
	case errors.Is(err, ErrPerm):
		return "EPERM"
	case errors.Is(err, ErrInval):
		return "EINVAL"
	case errors.Is(err, ErrNameTooLong):
		return "ENAMETOOLONG"
	case errors.Is(err, ErrNoSpace):
		return "ENOSPC"
	case errors.Is(err, ErrStale):
		return "ESTALE"
	case errors.Is(err, ErrBadFD):
		return "EBADF"
	case errors.Is(err, ErrBusy):
		return "EBUSY"
	case errors.Is(err, ErrLoop):
		return "ELOOP"
	case errors.Is(err, ErrXDev):
		return "EXDEV"
	case errors.Is(err, ErrTimedOut):
		return "ETIMEDOUT"
	case errors.Is(err, ErrReadOnly):
		return "EROFS"
	case errors.Is(err, ErrAgain):
		if d, ok := RetryAfter(err); ok && d > 0 {
			return "EAGAIN@" + strconv.FormatInt(d.Nanoseconds(), 10)
		}
		return "EAGAIN"
	case errors.Is(err, ErrIntegrity):
		// Must precede any ErrIO fallback: ErrIntegrity wraps ErrIO.
		return "EINTEGRITY"
	case errors.Is(err, ErrNotLeader):
		return "ENOTLEADER"
	case errors.Is(err, ErrLeaseLost):
		return "ELEASELOST"
	default:
		return "EIO"
	}
}

// errnoTable maps every symbolic name Errno can produce back to its sentinel.
// Keeping the two directions in one package guarantees the round trip: an
// error carried across the RPC boundary as a string rehydrates to the same
// sentinel, so errors.Is behaves identically on a redirected client.
var errnoTable = map[string]error{
	"ENOENT":       ErrNotExist,
	"EEXIST":       ErrExist,
	"ENOTDIR":      ErrNotDir,
	"EISDIR":       ErrIsDir,
	"ENOTEMPTY":    ErrNotEmpty,
	"EACCES":       ErrAccess,
	"EPERM":        ErrPerm,
	"EINVAL":       ErrInval,
	"ENAMETOOLONG": ErrNameTooLong,
	"ENOSPC":       ErrNoSpace,
	"ESTALE":       ErrStale,
	"EBADF":        ErrBadFD,
	"EBUSY":        ErrBusy,
	"EIO":          ErrIO,
	"ELOOP":        ErrLoop,
	"EXDEV":        ErrXDev,
	"ETIMEDOUT":    ErrTimedOut,
	"EROFS":        ErrReadOnly,
	"EAGAIN":       ErrAgain,
	"EINTEGRITY":   ErrIntegrity,
	"ENOTLEADER":   ErrNotLeader,
	"ELEASELOST":   ErrLeaseLost,
}

// FromErrno rehydrates a symbolic errno name (as produced by Errno) into the
// corresponding typed sentinel. Unknown names and "" degrade to ErrIO; "OK"
// returns nil.
func FromErrno(name string) error {
	if name == "OK" {
		return nil
	}
	if rest, ok := strings.CutPrefix(name, "EAGAIN@"); ok {
		if ns, err := strconv.ParseInt(rest, 10, 64); err == nil && ns >= 0 {
			return &RetryAfterError{After: time.Duration(ns)}
		}
		return ErrAgain
	}
	if err, ok := errnoTable[name]; ok {
		return err
	}
	return ErrIO
}
