package types

import (
	"errors"
	"fmt"
)

// The POSIX-style error set. ArkFS components wrap these with context via
// fmt.Errorf("...: %w", err); callers test with errors.Is, mirroring how a
// FUSE layer would map them to errno values.
var (
	ErrNotExist    = errors.New("no such file or directory")         // ENOENT
	ErrExist       = errors.New("file exists")                       // EEXIST
	ErrNotDir      = errors.New("not a directory")                   // ENOTDIR
	ErrIsDir       = errors.New("is a directory")                    // EISDIR
	ErrNotEmpty    = errors.New("directory not empty")               // ENOTEMPTY
	ErrAccess      = errors.New("permission denied")                 // EACCES
	ErrPerm        = errors.New("operation not permitted")           // EPERM
	ErrInval       = errors.New("invalid argument")                  // EINVAL
	ErrNameTooLong = errors.New("file name too long")                // ENAMETOOLONG
	ErrNoSpace     = errors.New("no space left on device")           // ENOSPC
	ErrStale       = errors.New("stale file handle")                 // ESTALE
	ErrBadFD       = errors.New("bad file descriptor")               // EBADF
	ErrBusy        = errors.New("device or resource busy")           // EBUSY
	ErrIO          = errors.New("input/output error")                // EIO
	ErrLoop        = errors.New("too many levels of symbolic links") // ELOOP
	ErrXDev        = errors.New("invalid cross-device link")         // EXDEV
	ErrTimedOut    = errors.New("operation timed out")               // ETIMEDOUT
	ErrReadOnly    = errors.New("read-only file system")             // EROFS
	ErrNotLeader   = errors.New("not the directory leader")          // ArkFS-internal
	ErrLeaseLost   = errors.New("directory lease lost")              // ArkFS-internal
)

// ErrIntegrity reports a checksum or framing failure on a persisted record:
// the bytes came back, but they are not the bytes that were written. It wraps
// ErrIO so legacy errors.Is(err, ErrIO) checks keep matching, while readers
// that care can distinguish detected corruption from plain I/O failure.
var ErrIntegrity = fmt.Errorf("data integrity check failed: %w", ErrIO)

// Errno returns the Linux errno-style symbolic name for a wrapped error,
// or "EIO" for anything unrecognized; benchmark harnesses and the CLI use it
// for compact reporting.
func Errno(err error) string {
	switch {
	case err == nil:
		return "OK"
	case errors.Is(err, ErrNotExist):
		return "ENOENT"
	case errors.Is(err, ErrExist):
		return "EEXIST"
	case errors.Is(err, ErrNotDir):
		return "ENOTDIR"
	case errors.Is(err, ErrIsDir):
		return "EISDIR"
	case errors.Is(err, ErrNotEmpty):
		return "ENOTEMPTY"
	case errors.Is(err, ErrAccess):
		return "EACCES"
	case errors.Is(err, ErrPerm):
		return "EPERM"
	case errors.Is(err, ErrInval):
		return "EINVAL"
	case errors.Is(err, ErrNameTooLong):
		return "ENAMETOOLONG"
	case errors.Is(err, ErrNoSpace):
		return "ENOSPC"
	case errors.Is(err, ErrStale):
		return "ESTALE"
	case errors.Is(err, ErrBadFD):
		return "EBADF"
	case errors.Is(err, ErrBusy):
		return "EBUSY"
	case errors.Is(err, ErrLoop):
		return "ELOOP"
	case errors.Is(err, ErrXDev):
		return "EXDEV"
	case errors.Is(err, ErrTimedOut):
		return "ETIMEDOUT"
	case errors.Is(err, ErrReadOnly):
		return "EROFS"
	case errors.Is(err, ErrIntegrity):
		// Must precede any ErrIO fallback: ErrIntegrity wraps ErrIO.
		return "EINTEGRITY"
	case errors.Is(err, ErrNotLeader):
		return "ENOTLEADER"
	case errors.Is(err, ErrLeaseLost):
		return "ELEASELOST"
	default:
		return "EIO"
	}
}

// errnoTable maps every symbolic name Errno can produce back to its sentinel.
// Keeping the two directions in one package guarantees the round trip: an
// error carried across the RPC boundary as a string rehydrates to the same
// sentinel, so errors.Is behaves identically on a redirected client.
var errnoTable = map[string]error{
	"ENOENT":       ErrNotExist,
	"EEXIST":       ErrExist,
	"ENOTDIR":      ErrNotDir,
	"EISDIR":       ErrIsDir,
	"ENOTEMPTY":    ErrNotEmpty,
	"EACCES":       ErrAccess,
	"EPERM":        ErrPerm,
	"EINVAL":       ErrInval,
	"ENAMETOOLONG": ErrNameTooLong,
	"ENOSPC":       ErrNoSpace,
	"ESTALE":       ErrStale,
	"EBADF":        ErrBadFD,
	"EBUSY":        ErrBusy,
	"EIO":          ErrIO,
	"ELOOP":        ErrLoop,
	"EXDEV":        ErrXDev,
	"ETIMEDOUT":    ErrTimedOut,
	"EROFS":        ErrReadOnly,
	"EINTEGRITY":   ErrIntegrity,
	"ENOTLEADER":   ErrNotLeader,
	"ELEASELOST":   ErrLeaseLost,
}

// FromErrno rehydrates a symbolic errno name (as produced by Errno) into the
// corresponding typed sentinel. Unknown names and "" degrade to ErrIO; "OK"
// returns nil.
func FromErrno(name string) error {
	if name == "OK" {
		return nil
	}
	if err, ok := errnoTable[name]; ok {
		return err
	}
	return ErrIO
}
