package types

import "time"

// FileType distinguishes the kinds of file-system objects ArkFS stores.
type FileType uint8

// File types supported by ArkFS.
const (
	TypeRegular FileType = iota
	TypeDir
	TypeSymlink
)

// String implements fmt.Stringer.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return "unknown"
	}
}

// Mode holds the POSIX permission bits (the low 12 bits: rwxrwxrwx plus
// setuid/setgid/sticky). The file type is kept separately in Inode.Type.
type Mode uint16

// Permission bit groups.
const (
	ModeSetuid Mode = 04000
	ModeSetgid Mode = 02000
	ModeSticky Mode = 01000
	PermMask   Mode = 0777
)

// Access permission request bits, combinable.
const (
	MayRead  uint8 = 4
	MayWrite uint8 = 2
	MayExec  uint8 = 1
)

// Inode is the full per-file metadata record. It is stored in the object
// store under key "i:<ino>" and cached inside per-directory metadata tables.
type Inode struct {
	Ino    Ino
	Type   FileType
	Mode   Mode
	Uid    uint32
	Gid    uint32
	Nlink  uint32
	Size   int64
	Atime  time.Duration // virtual-clock timestamps (ns since cluster epoch)
	Mtime  time.Duration
	Ctime  time.Duration
	Target string // symlink target, empty otherwise
	ACL    ACL    // extended ACL entries; empty means mode bits only
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.Type == TypeDir }

// Clone returns a deep copy; inodes are mutated in metatables and journals
// and must not alias.
func (n *Inode) Clone() *Inode {
	c := *n
	c.ACL = n.ACL.Clone()
	return &c
}

// Cred identifies the caller of a file-system operation for permission
// checking, mirroring the (uid, gid, supplementary groups) triple POSIX uses.
type Cred struct {
	Uid    uint32
	Gid    uint32
	Groups []uint32
}

// Root is the superuser credential, which bypasses permission checks the way
// CAP_DAC_OVERRIDE does.
var Root = Cred{Uid: 0, Gid: 0}

// InGroup reports whether gid is the caller's primary or a supplementary
// group.
func (c Cred) InGroup(gid uint32) bool {
	if c.Gid == gid {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// Access checks whether cred may perform the requested access (a combination
// of MayRead/MayWrite/MayExec) on the inode, applying POSIX ACL evaluation
// order: owner, named users, owning/named groups (masked), other.
func (n *Inode) Access(cred Cred, want uint8) error {
	if cred.Uid == 0 {
		// Superuser: execute still requires some execute bit on regular
		// files, matching Linux semantics.
		if want&MayExec != 0 && n.Type == TypeRegular &&
			n.Mode&0111 == 0 && !n.ACL.anyExec() {
			return ErrAccess
		}
		return nil
	}
	granted := n.effectivePerms(cred)
	if granted&want == want {
		return nil
	}
	return ErrAccess
}

// effectivePerms resolves the rwx bits cred holds on the inode.
func (n *Inode) effectivePerms(cred Cred) uint8 {
	if len(n.ACL) == 0 {
		switch {
		case cred.Uid == n.Uid:
			return uint8(n.Mode >> 6 & 7)
		case cred.InGroup(n.Gid):
			return uint8(n.Mode >> 3 & 7)
		default:
			return uint8(n.Mode & 7)
		}
	}
	return n.ACL.evaluate(cred, n)
}
