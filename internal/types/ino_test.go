package types

import (
	"testing"
	"testing/quick"
)

func TestInoStringParseRoundTrip(t *testing.T) {
	src := NewInoSource(1)
	for i := 0; i < 100; i++ {
		in := src.Next()
		s := in.String()
		if len(s) != 32 {
			t.Fatalf("String() = %q, want 32 hex digits", s)
		}
		out, err := ParseIno(s)
		if err != nil {
			t.Fatalf("ParseIno(%q): %v", s, err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: %v != %v", out, in)
		}
	}
}

func TestParseInoRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "abc", "zz" + RootIno.String()[2:], RootIno.String() + "00"} {
		if _, err := ParseIno(bad); err == nil {
			t.Errorf("ParseIno(%q) succeeded, want error", bad)
		}
	}
}

func TestInoSourceNeverEmitsReserved(t *testing.T) {
	src := NewInoSource(42)
	seen := make(map[Ino]bool, 10000)
	for i := 0; i < 10000; i++ {
		in := src.Next()
		if in.IsNil() || in == RootIno {
			t.Fatalf("source emitted reserved ino %v", in)
		}
		if seen[in] {
			t.Fatalf("source emitted duplicate ino %v after %d draws", in, i)
		}
		seen[in] = true
	}
}

func TestInoSourceDeterministic(t *testing.T) {
	a, b := NewInoSource(7), NewInoSource(7)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, x, y)
		}
	}
}

func TestInoHiLoCoverAllBits(t *testing.T) {
	var i Ino
	for b := range i {
		i[b] = byte(b + 1)
	}
	if i.Hi() == 0 || i.Lo() == 0 {
		t.Fatalf("Hi/Lo lost bits: hi=%x lo=%x", i.Hi(), i.Lo())
	}
	if i.Hi() == i.Lo() {
		t.Fatalf("Hi and Lo should differ for this pattern")
	}
}

func TestInoRoundTripQuick(t *testing.T) {
	f := func(b [16]byte) bool {
		in := Ino(b)
		out, err := ParseIno(in.String())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
