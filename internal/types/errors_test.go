package types

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestAgainAfterRoundTrip: the typed retry-after pushback survives the
// string-encoded RPC boundary — Errno renders EAGAIN@<ns> and FromErrno
// rehydrates the same sentinel and hint, so errors.Is and the backoff hint
// behave identically on a redirected client.
func TestAgainAfterRoundTrip(t *testing.T) {
	err := AgainAfter(7*time.Millisecond, "admission")
	if !errors.Is(err, ErrAgain) {
		t.Fatal("AgainAfter must wrap ErrAgain")
	}
	if d, ok := RetryAfter(err); !ok || d != 7*time.Millisecond {
		t.Fatalf("RetryAfter = %v/%v", d, ok)
	}
	name := Errno(err)
	if name != "EAGAIN@7000000" {
		t.Fatalf("Errno = %q", name)
	}
	back := FromErrno(name)
	if !errors.Is(back, ErrAgain) {
		t.Fatalf("rehydrated error %v is not EAGAIN", back)
	}
	if d, ok := RetryAfter(back); !ok || d != 7*time.Millisecond {
		t.Fatalf("hint lost in round trip: %v/%v", d, ok)
	}
	// Wrapping on either side must not break the round trip.
	wrapped := fmt.Errorf("core: create /x: %w", err)
	if Errno(wrapped) != name {
		t.Fatalf("Errno(wrapped) = %q, want %q", Errno(wrapped), name)
	}
}

// TestAgainEdgeCases: hint-free EAGAIN and malformed wire strings degrade
// safely instead of panicking or losing the errno class.
func TestAgainEdgeCases(t *testing.T) {
	if Errno(ErrAgain) != "EAGAIN" {
		t.Fatalf("plain EAGAIN renders %q", Errno(ErrAgain))
	}
	if !errors.Is(FromErrno("EAGAIN"), ErrAgain) {
		t.Fatal("plain EAGAIN does not rehydrate")
	}
	if _, ok := RetryAfter(ErrAgain); ok {
		t.Fatal("plain EAGAIN must carry no hint")
	}
	if !errors.Is(FromErrno("EAGAIN@garbage"), ErrAgain) {
		t.Fatal("malformed hint must degrade to plain EAGAIN")
	}
	if !errors.Is(FromErrno("EAGAIN@-5"), ErrAgain) {
		t.Fatal("negative hint must degrade to plain EAGAIN")
	}
	if zero := AgainAfter(0, ""); Errno(zero) != "EAGAIN" {
		t.Fatalf("zero-hint pushback renders %q", Errno(zero))
	}
}
