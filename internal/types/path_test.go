package types

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want string // JoinPath of result
		err  bool
	}{
		{"/", "/", false},
		{"//", "/", false},
		{"/a/b/c", "/a/b/c", false},
		{"/a//b/./c/", "/a/b/c", false},
		{"/a/../b", "/b", false},
		{"/../..", "/", false},
		{"/a/b/../../c", "/c", false},
		{"", "", true},
		{"relative/path", "", true},
		{"/" + strings.Repeat("x", MaxNameLen+1), "", true},
	}
	for _, c := range cases {
		parts, err := SplitPath(c.in)
		if c.err {
			if err == nil {
				t.Errorf("SplitPath(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitPath(%q): %v", c.in, err)
			continue
		}
		if got := JoinPath(parts); got != c.want {
			t.Errorf("SplitPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitDir(t *testing.T) {
	dir, name, err := SplitDir("/home/user/file.txt")
	if err != nil {
		t.Fatal(err)
	}
	if JoinPath(dir) != "/home/user" || name != "file.txt" {
		t.Fatalf("got dir=%q name=%q", JoinPath(dir), name)
	}
	if _, _, err := SplitDir("/"); !errors.Is(err, ErrInval) {
		t.Errorf("SplitDir(/): want EINVAL, got %v", err)
	}
}

func TestValidName(t *testing.T) {
	for _, good := range []string{"a", "file.txt", "with space", strings.Repeat("x", MaxNameLen)} {
		if err := ValidName(good); err != nil {
			t.Errorf("ValidName(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", "nul\x00", strings.Repeat("x", MaxNameLen+1)} {
		if err := ValidName(bad); err == nil {
			t.Errorf("ValidName(%q): want error", bad)
		}
	}
}

// Property: SplitPath is idempotent through JoinPath — cleaning a cleaned
// path changes nothing.
func TestSplitJoinIdempotentQuick(t *testing.T) {
	f := func(segs []string) bool {
		// Build an arbitrary absolute path out of the raw segments.
		path := "/" + strings.Join(segs, "/")
		parts, err := SplitPath(path)
		if err != nil {
			return true // invalid input is allowed to fail
		}
		again, err := SplitPath(JoinPath(parts))
		if err != nil {
			return false
		}
		return JoinPath(again) == JoinPath(parts)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: no output component is ever empty, ".", "..", or contains '/'.
func TestSplitPathComponentsCleanQuick(t *testing.T) {
	f := func(segs []string) bool {
		path := "/" + strings.Join(segs, "/")
		parts, err := SplitPath(path)
		if err != nil {
			return true
		}
		for _, p := range parts {
			if p == "" || p == "." || p == ".." || strings.ContainsRune(p, '/') {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
