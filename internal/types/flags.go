package types

// OpenFlag is the ArkFS open(2)-style flag set.
type OpenFlag uint32

// Open flags. The access mode occupies the low two bits, as in POSIX.
const (
	ORdonly OpenFlag = 0
	OWronly OpenFlag = 1
	ORdwr   OpenFlag = 2

	accessMask OpenFlag = 3

	OCreate OpenFlag = 1 << 2
	OExcl   OpenFlag = 1 << 3
	OTrunc  OpenFlag = 1 << 4
	OAppend OpenFlag = 1 << 5
)

// WantsRead reports whether the access mode permits reading.
func (f OpenFlag) WantsRead() bool { return f&accessMask == ORdonly || f&accessMask == ORdwr }

// WantsWrite reports whether the access mode permits writing.
func (f OpenFlag) WantsWrite() bool { return f&accessMask == OWronly || f&accessMask == ORdwr }

// Has reports whether flag bits are set.
func (f OpenFlag) Has(bit OpenFlag) bool { return f&bit != 0 }
