package types

import "testing"

func TestOpenFlagAccessModes(t *testing.T) {
	cases := []struct {
		f           OpenFlag
		read, write bool
	}{
		{ORdonly, true, false},
		{OWronly, false, true},
		{ORdwr, true, true},
		{ORdonly | OCreate, true, false},
		{OWronly | OCreate | OTrunc, false, true},
		{ORdwr | OAppend, true, true},
	}
	for _, c := range cases {
		if c.f.WantsRead() != c.read {
			t.Errorf("flags %b: WantsRead = %v, want %v", c.f, c.f.WantsRead(), c.read)
		}
		if c.f.WantsWrite() != c.write {
			t.Errorf("flags %b: WantsWrite = %v, want %v", c.f, c.f.WantsWrite(), c.write)
		}
	}
}

func TestOpenFlagHas(t *testing.T) {
	f := OWronly | OCreate | OExcl
	if !f.Has(OCreate) || !f.Has(OExcl) {
		t.Error("Has missed set bits")
	}
	if f.Has(OTrunc) || f.Has(OAppend) {
		t.Error("Has reported unset bits")
	}
}

func TestFileTypeString(t *testing.T) {
	for ft, want := range map[FileType]string{
		TypeRegular: "file", TypeDir: "dir", TypeSymlink: "symlink", FileType(9): "unknown",
	} {
		if got := ft.String(); got != want {
			t.Errorf("FileType(%d).String() = %q, want %q", ft, got, want)
		}
	}
}

func TestErrnoMapping(t *testing.T) {
	cases := map[string]error{
		"OK": nil, "ENOENT": ErrNotExist, "EEXIST": ErrExist, "ENOTDIR": ErrNotDir,
		"EISDIR": ErrIsDir, "ENOTEMPTY": ErrNotEmpty, "EACCES": ErrAccess,
		"EPERM": ErrPerm, "EINVAL": ErrInval, "ESTALE": ErrStale,
		"ELOOP": ErrLoop, "ETIMEDOUT": ErrTimedOut, "EBUSY": ErrBusy,
	}
	for want, err := range cases {
		if got := Errno(err); got != want {
			t.Errorf("Errno(%v) = %q, want %q", err, got, want)
		}
	}
	if got := Errno(ErrIO); got != "EIO" {
		t.Errorf("Errno(ErrIO) = %q", got)
	}
}
