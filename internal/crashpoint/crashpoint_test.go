package crashpoint

import (
	"errors"
	"testing"

	"arkfs/internal/objstore"
	"arkfs/internal/types"
)

func TestArmFiresExactlyOnce(t *testing.T) {
	s := NewSet()
	fired := 0
	var observed []Site
	s.OnFire(func(site Site) { observed = append(observed, site) })
	s.Arm(PostJournalPut, func() { fired++ })
	s.Hit(PreJournalPut) // different site: inert
	s.Hit(PostJournalPut)
	s.Hit(PostJournalPut) // disarmed after the first firing
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if got := s.Fired(); len(got) != 1 || got[0] != PostJournalPut {
		t.Fatalf("Fired() = %v", got)
	}
	if len(observed) != 1 || observed[0] != PostJournalPut {
		t.Fatalf("observer saw %v", observed)
	}
}

func TestDisarmAndNilSet(t *testing.T) {
	s := NewSet()
	s.Arm(MidCheckpoint, func() { t.Fatal("disarmed site fired") })
	s.Disarm(MidCheckpoint)
	s.Hit(MidCheckpoint)

	var nilSet *Set
	nilSet.Hit(PostCheckpoint) // must not panic
	if nilSet.Killed() {
		t.Fatal("nil set reports killed")
	}
}

func TestKilledSetDoesNotFire(t *testing.T) {
	s := NewSet()
	s.Arm(TwoPCPostPrepare, func() { t.Fatal("dead process fired a crash site") })
	s.Kill()
	s.Hit(TwoPCPostPrepare)
	if !s.Killed() {
		t.Fatal("Killed() false after Kill")
	}
}

// TestGateStoreFailsAfterKill: the gate models a dead process — every store
// verb fails with an ErrIO-classed error once the set is killed, and nothing
// issued after the kill reaches the store.
func TestGateStoreFailsAfterKill(t *testing.T) {
	mem := objstore.NewMemStore()
	s := NewSet()
	g := NewGateStore(s, mem)
	if err := g.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Kill()
	if err := g.Put("k2", []byte("v")); !errors.Is(err, types.ErrIO) {
		t.Fatalf("put after kill: %v", err)
	}
	if _, err := g.Get("k"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("get after kill: %v", err)
	}
	if _, err := g.GetRange("k", 0, 1); !errors.Is(err, types.ErrIO) {
		t.Fatalf("getrange after kill: %v", err)
	}
	if err := g.Delete("k"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("delete after kill: %v", err)
	}
	if _, err := g.List(""); !errors.Is(err, types.ErrIO) {
		t.Fatalf("list after kill: %v", err)
	}
	if _, err := g.Head("k"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("head after kill: %v", err)
	}
	// The pre-kill write survived; the post-kill write never landed.
	if _, err := mem.Get("k"); err != nil {
		t.Fatalf("pre-kill write lost: %v", err)
	}
	if _, err := mem.Get("k2"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("post-kill write leaked to the store: %v", err)
	}
}
