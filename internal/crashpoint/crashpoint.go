// Package crashpoint provides named crash sites for deterministic failure
// injection. Code on the journal commit, checkpoint, 2PC, and recovery paths
// announces the sites it passes through; a chaos scenario arms a site on a
// specific client and the armed action fires the instant that client reaches
// it — under the sim clock, with no sleeps or signals involved.
//
// A Set also carries the client's "killed" switch. Killing a set models the
// process dying at the crash site: the GateStore mounted under the client
// fails every subsequent object-store operation, so no write issued after the
// kill can reach the store (exactly the state a real crash leaves behind).
package crashpoint

import (
	"fmt"
	"sync"

	"arkfs/internal/objstore"
	"arkfs/internal/types"
)

// Site names one crash location in the metadata pipeline.
type Site string

// The sites threaded through the journal, 2PC, and recovery paths.
const (
	// PreJournalPut: a commit worker is about to write the journal record.
	// Crashing here loses the running transaction (never acknowledged as
	// durable — Flush had not returned).
	PreJournalPut Site = "pre-journal-put"
	// PostJournalPut: the journal record is durable but not checkpointed.
	// Crashing here must be invisible after recovery: the next leader
	// replays the record.
	PostJournalPut Site = "post-journal-put"
	// MidCheckpoint: some inode objects of a transaction are checkpointed,
	// the dentry block is not. Recovery replays the whole record (idempotent).
	MidCheckpoint Site = "mid-checkpoint"
	// PostCheckpoint: the transaction is fully applied but its journal
	// record not yet invalidated. Recovery replays it a second time.
	PostCheckpoint Site = "post-checkpoint"

	// TwoPCPostPrepare: the coordinator wrote both prepare records but no
	// decision. Recovery resolves the rename by presumed abort.
	TwoPCPostPrepare Site = "2pc-post-prepare"
	// TwoPCPostDecision: the decision record is durable but the participant
	// was not told. Recovery (either side) finds the decision and commits.
	TwoPCPostDecision Site = "2pc-post-decision"

	// RecoveryPreReplay: a new leader was granted a crashed directory and is
	// about to replay its journal. Crashing here chains a second recovery.
	RecoveryPreReplay Site = "recovery-pre-replay"
	// RecoveryPostReplay: replay finished but the RecoveryDone handshake did
	// not reach the lease manager.
	RecoveryPostReplay Site = "recovery-post-replay"
)

// Set is one client's crash-site registry and kill switch. The zero value of
// a *Set (nil) is inert: Hit and Killed on a nil Set are no-ops, so the
// production path can announce sites unconditionally.
type Set struct {
	mu     sync.Mutex
	killed bool
	armed  map[Site]func()
	fired  []Site
	onFire func(Site)
}

// NewSet returns an empty, live (not killed) set.
func NewSet() *Set { return &Set{armed: make(map[Site]func())} }

// Arm registers action to run the next time site is hit. One action per
// site; arming a site twice replaces the previous action. The action runs on
// the goroutine that hits the site, outside the set's lock, so it may call
// Kill, Client.Crash, or signal a channel.
func (s *Set) Arm(site Site, action func()) {
	s.mu.Lock()
	s.armed[site] = action
	s.mu.Unlock()
}

// Disarm removes a pending action for site (e.g. at scenario drain time).
func (s *Set) Disarm(site Site) {
	s.mu.Lock()
	delete(s.armed, site)
	s.mu.Unlock()
}

// Hit announces that the calling client reached site. If an action is armed
// for it (and the set is not already killed), the action fires exactly once.
func (s *Set) Hit(site Site) {
	if s == nil {
		return
	}
	s.mu.Lock()
	action, ok := s.armed[site]
	if !ok || s.killed {
		s.mu.Unlock()
		return
	}
	delete(s.armed, site)
	s.fired = append(s.fired, site)
	onFire := s.onFire
	s.mu.Unlock()
	if onFire != nil {
		onFire(site)
	}
	action()
}

// Kill flips the set into the dead state: every store operation through the
// GateStore fails from now on.
func (s *Set) Kill() {
	s.mu.Lock()
	s.killed = true
	s.mu.Unlock()
}

// Killed reports whether Kill was called.
func (s *Set) Killed() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// Fired returns the sites whose armed actions have run, in firing order.
func (s *Set) Fired() []Site {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Site, len(s.fired))
	copy(out, s.fired)
	return out
}

// OnFire installs an observer called (before the armed action) whenever a
// site fires; chaos drivers use it to build the event log.
func (s *Set) OnFire(fn func(Site)) {
	s.mu.Lock()
	s.onFire = fn
	s.mu.Unlock()
}

// GateStore wraps a Store and fails every operation once its Set is killed,
// modelling the fact that a crashed process issues no further I/O. It sits
// *above* any retry layer: a dead client does not retry.
type GateStore struct {
	set   *Set
	inner objstore.Store
}

// NewGateStore mounts the kill gate over inner.
func NewGateStore(set *Set, inner objstore.Store) *GateStore {
	return &GateStore{set: set, inner: inner}
}

func (g *GateStore) gate(verb, key string) error {
	if g.set.Killed() {
		return fmt.Errorf("crashpoint: client killed, %s %q dropped: %w", verb, key, types.ErrIO)
	}
	return nil
}

// Put implements objstore.Store.
func (g *GateStore) Put(key string, data []byte) error {
	if err := g.gate("put", key); err != nil {
		return err
	}
	return g.inner.Put(key, data)
}

// Get implements objstore.Store.
func (g *GateStore) Get(key string) ([]byte, error) {
	if err := g.gate("get", key); err != nil {
		return nil, err
	}
	return g.inner.Get(key)
}

// GetRange implements objstore.Store.
func (g *GateStore) GetRange(key string, off, n int64) ([]byte, error) {
	if err := g.gate("getrange", key); err != nil {
		return nil, err
	}
	return g.inner.GetRange(key, off, n)
}

// Delete implements objstore.Store.
func (g *GateStore) Delete(key string) error {
	if err := g.gate("delete", key); err != nil {
		return err
	}
	return g.inner.Delete(key)
}

// List implements objstore.Store.
func (g *GateStore) List(prefix string) ([]string, error) {
	if err := g.gate("list", prefix); err != nil {
		return nil, err
	}
	return g.inner.List(prefix)
}

// Head implements objstore.Store.
func (g *GateStore) Head(key string) (int64, error) {
	if err := g.gate("head", key); err != nil {
		return 0, err
	}
	return g.inner.Head(key)
}
