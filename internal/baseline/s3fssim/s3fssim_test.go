package s3fssim

import (
	"context"
	"strings"
	"testing"

	"arkfs/internal/fsapi"
	"arkfs/internal/fsapi/fstest"
	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func newMount(t *testing.T) (*Mount, *objstore.MemStore) {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	store := objstore.NewMemStore()
	opts := DefaultOptions()
	opts.FUSEOverhead = 0
	opts.DiskBandwidth = 1 << 40 // no real sleeping in functional tests
	return New(env, store, opts), store
}

func TestS3FSConformance(t *testing.T) {
	m, _ := newMount(t)
	fstest.Run(t, m, fstest.LevelObject)
}

func TestPathAsKeyLayout(t *testing.T) {
	m, store := newMount(t)
	if err := m.Mkdir(context.Background(), "/photos", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := fsapi.Create(context.Background(), m, "/photos/cat.jpg", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("jpeg")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The object key is the full path, as in s3fs.
	if _, err := store.Get("photos/cat.jpg"); err != nil {
		t.Fatalf("object not stored under path key: %v", err)
	}
}

func TestDirectoryRenameCopiesEveryObject(t *testing.T) {
	m, store := newMount(t)
	if err := m.Mkdir(context.Background(), "/old", 0777); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		f, err := fsapi.Create(context.Background(), m, "/old/"+name, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(name)); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	putsBefore := store.Len()
	_ = putsBefore
	if err := m.Rename(context.Background(), "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	keys, _ := store.List("")
	for _, k := range keys {
		if strings.HasPrefix(k, "old/") || k == "old" {
			t.Fatalf("source object %q survived rename", k)
		}
	}
	got, err := store.Get("new/b")
	if err != nil || string(got) != "b" {
		t.Fatalf("moved object: %q, %v", got, err)
	}
	st, err := m.Stat(context.Background(), "/new/c")
	if err != nil || st.Size != 1 {
		t.Fatalf("stat after dir rename: %+v, %v", st, err)
	}
}

func TestWholeObjectRewriteOnPartialWrite(t *testing.T) {
	m, store := newMount(t)
	f, err := fsapi.Create(context.Background(), m, "/big", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 10000)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Patch 1 byte in the middle: the stored object must still be complete
	// (10000 bytes), proving a full-object rewrite.
	g, err := m.Open(context.Background(), "/big", types.OWronly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte{0xFF}, 5000); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := store.Get("big")
	if err != nil || len(data) != 10000 || data[5000] != 0xFF {
		t.Fatalf("whole-object rewrite broken: len=%d err=%v", len(data), err)
	}
}

func TestImplicitDirectories(t *testing.T) {
	m, _ := newMount(t)
	if err := m.Mkdir(context.Background(), "/x", 0777); err != nil {
		t.Fatal(err)
	}
	if err := m.Mkdir(context.Background(), "/x/y", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := fsapi.Create(context.Background(), m, "/x/y/z", 0644)
	_ = f.Close()
	// /x/y is a directory by marker; /x also by marker; stat both.
	for _, p := range []string{"/x", "/x/y"} {
		st, err := m.Stat(context.Background(), p)
		if err != nil || st.Type != types.TypeDir {
			t.Fatalf("stat %s: %+v, %v", p, st, err)
		}
	}
	ents, err := m.Readdir(context.Background(), "/x")
	if err != nil || len(ents) != 1 || ents[0].Name != "y" || ents[0].Type != types.TypeDir {
		t.Fatalf("readdir /x: %v, %v", ents, err)
	}
}
