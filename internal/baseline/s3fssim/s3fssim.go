// Package s3fssim implements an S3FS-like baseline: a FUSE wrapper that maps
// each file to one object whose key is the full path. It reproduces the
// behaviors the paper attributes to S3FS:
//
//   - whole-object semantics: any modification rewrites the entire object;
//   - a local disk staging cache: writes land on disk first and are uploaded
//     wholesale at fsync/close, reads download the whole object to disk
//     first — the "slow disk cache" behind the paper's 5.95×/3.59× gaps;
//   - path-as-key: renaming a directory server-side copies every object
//     under the prefix;
//   - no coordination between clients and lax permission checking.
package s3fssim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Options configures one S3FS mount.
type Options struct {
	// DiskBandwidth models the node-local staging disk (bytes/s).
	DiskBandwidth int64
	// FUSEOverhead is charged per request (S3FS is FUSE-only).
	FUSEOverhead time.Duration
	// Cred is nominal; S3FS does not check permissions rigorously.
	Cred types.Cred
}

// DefaultOptions models an EBS gp2-class staging volume.
func DefaultOptions() Options {
	return Options{DiskBandwidth: 250 << 20, FUSEOverhead: 8 * time.Microsecond}
}

// Mount is one S3FS client over an object store bucket.
type Mount struct {
	env   sim.Env
	store objstore.Store
	opts  Options

	mu      sync.Mutex
	closed  bool
	staged  map[string]*stagedFile // path -> staging state
	inoSrc  *types.InoSource
	dirMark map[string]bool // locally created directory markers
}

// stagedFile is the on-disk staging copy of one object.
type stagedFile struct {
	data  []byte
	dirty bool
}

// New creates a mount on the store.
func New(env sim.Env, store objstore.Store, opts Options) *Mount {
	if opts.DiskBandwidth <= 0 {
		opts.DiskBandwidth = 250 << 20
	}
	return &Mount{
		env: env, store: store, opts: opts,
		staged:  make(map[string]*stagedFile),
		inoSrc:  types.NewInoSource(0x53F5),
		dirMark: make(map[string]bool),
	}
}

func (m *Mount) charge() {
	if m.opts.FUSEOverhead > 0 {
		m.env.Sleep(m.opts.FUSEOverhead)
	}
}

// diskTime charges staging-disk I/O.
func (m *Mount) diskTime(n int64) {
	if n > 0 {
		m.env.Sleep(time.Duration(float64(n) / float64(m.opts.DiskBandwidth) * float64(time.Second)))
	}
}

// objKey maps a path to its object key (no leading slash, as s3fs does).
func objKey(path string) (string, error) {
	parts, err := types.SplitPath(path)
	if err != nil {
		return "", err
	}
	return strings.Join(parts, "/"), nil
}

// Mkdir implements fsapi.FileSystem: a zero-byte marker object "<path>/".
func (m *Mount) Mkdir(ctx context.Context, path string, mode types.Mode) error {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return err
	}
	if err := m.store.Put(key+"/", nil); err != nil {
		return err
	}
	m.mu.Lock()
	m.dirMark[key] = true
	m.mu.Unlock()
	return nil
}

// Stat implements fsapi.FileSystem via HEAD (falling back to the directory
// marker and prefix probing, as s3fs does).
func (m *Mount) Stat(ctx context.Context, path string) (*types.Inode, error) {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return nil, err
	}
	if key == "" {
		return m.synthInode("", 0, true), nil
	}
	if size, err := m.store.Head(key); err == nil {
		return m.synthInode(key, size, false), nil
	}
	if _, err := m.store.Head(key + "/"); err == nil {
		return m.synthInode(key, 0, true), nil
	}
	// Implicit directory: any object under the prefix makes it a dir.
	keys, err := m.store.List(key + "/")
	if err != nil {
		return nil, err
	}
	if len(keys) > 0 {
		return m.synthInode(key, 0, true), nil
	}
	return nil, fmt.Errorf("s3fs: stat %q: %w", path, types.ErrNotExist)
}

// synthInode fabricates an inode; s3fs has no real inode store.
func (m *Mount) synthInode(key string, size int64, dir bool) *types.Inode {
	n := &types.Inode{Mode: 0666, Size: size, Uid: m.opts.Cred.Uid, Gid: m.opts.Cred.Gid, Nlink: 1}
	// Derive a stable pseudo-ino from the key.
	copy(n.Ino[:], key)
	n.Ino[15] = 1
	if dir {
		n.Type = types.TypeDir
		n.Mode = 0777
		n.Nlink = 2
	}
	return n
}

// Unlink implements fsapi.FileSystem.
func (m *Mount) Unlink(ctx context.Context, path string) error {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return err
	}
	if _, err := m.store.Head(key); err != nil {
		return fmt.Errorf("s3fs: unlink %q: %w", path, types.ErrNotExist)
	}
	m.mu.Lock()
	delete(m.staged, key)
	m.mu.Unlock()
	return m.store.Delete(key)
}

// Rmdir implements fsapi.FileSystem.
func (m *Mount) Rmdir(ctx context.Context, path string) error {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return err
	}
	keys, err := m.store.List(key + "/")
	if err != nil {
		return err
	}
	for _, k := range keys {
		if k != key+"/" {
			return fmt.Errorf("s3fs: rmdir %q: %w", path, types.ErrNotEmpty)
		}
	}
	m.mu.Lock()
	delete(m.dirMark, key)
	m.mu.Unlock()
	return m.store.Delete(key + "/")
}

// Rename implements fsapi.FileSystem: server-side copy + delete of every
// object under the source prefix — the paper's "renaming a directory leads
// to rewriting all the files under it".
func (m *Mount) Rename(ctx context.Context, src, dst string) error {
	m.charge()
	skey, err := objKey(src)
	if err != nil {
		return err
	}
	dkey, err := objKey(dst)
	if err != nil {
		return err
	}
	moved := false
	// A plain file.
	if data, err := m.store.Get(skey); err == nil {
		if err := m.store.Put(dkey, data); err != nil {
			return err
		}
		if err := m.store.Delete(skey); err != nil {
			return err
		}
		moved = true
	}
	// A directory prefix: copy every object under it.
	keys, err := m.store.List(skey + "/")
	if err != nil {
		return err
	}
	for _, k := range keys {
		data, err := m.store.Get(k)
		if err != nil {
			return err
		}
		if err := m.store.Put(dkey+"/"+strings.TrimPrefix(k, skey+"/"), data); err != nil {
			return err
		}
		if err := m.store.Delete(k); err != nil {
			return err
		}
		moved = true
	}
	if !moved {
		return fmt.Errorf("s3fs: rename %q: %w", src, types.ErrNotExist)
	}
	return nil
}

// Readdir implements fsapi.FileSystem by listing the prefix and collapsing
// to immediate children.
func (m *Mount) Readdir(ctx context.Context, path string) ([]wire.Dentry, error) {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return nil, err
	}
	prefix := key + "/"
	if key == "" {
		prefix = ""
	}
	keys, err := m.store.List(prefix)
	if err != nil {
		return nil, err
	}
	seen := map[string]types.FileType{}
	for _, k := range keys {
		rest := strings.TrimPrefix(k, prefix)
		if rest == "" {
			continue
		}
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[rest[:i]] = types.TypeDir
		} else {
			seen[rest] = types.TypeRegular
		}
	}
	out := make([]wire.Dentry, 0, len(seen))
	for name, ft := range seen {
		de := wire.Dentry{Name: name, Type: ft}
		copy(de.Ino[:], prefix+name)
		de.Ino[15] = 1
		out = append(out, de)
	}
	return out, nil
}

// FlushAll implements fsapi.FileSystem: upload every dirty staged file.
func (m *Mount) FlushAll(ctx context.Context) error {
	m.mu.Lock()
	dirty := make(map[string]*stagedFile)
	for k, sf := range m.staged {
		if sf.dirty {
			dirty[k] = sf
		}
	}
	m.mu.Unlock()
	for key, sf := range dirty {
		if err := m.upload(key, sf); err != nil {
			return err
		}
	}
	return nil
}

// upload writes a staged file back: read it from disk, then PUT the whole
// object.
func (m *Mount) upload(key string, sf *stagedFile) error {
	m.diskTime(int64(len(sf.data))) // read the staging copy
	if err := m.store.Put(key, sf.data); err != nil {
		return err
	}
	m.mu.Lock()
	sf.dirty = false
	m.mu.Unlock()
	return nil
}

// Close implements fsapi.FileSystem. It is idempotent: the first call
// uploads every dirty staged file; later calls return nil immediately.
func (m *Mount) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	return m.FlushAll(context.Background())
}

// Open implements fsapi.FileSystem.
func (m *Mount) Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (fsapi.File, error) {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	sf := m.staged[key]
	m.mu.Unlock()
	if sf == nil {
		data, err := m.store.Get(key)
		switch {
		case err == nil:
			if flags.Has(types.OCreate) && flags.Has(types.OExcl) {
				return nil, types.ErrExist
			}
			// Download the whole object into the staging cache.
			m.diskTime(int64(len(data)))
			sf = &stagedFile{data: data}
		case flags.Has(types.OCreate):
			sf = &stagedFile{}
		default:
			return nil, fmt.Errorf("s3fs: open %q: %w", path, types.ErrNotExist)
		}
		m.mu.Lock()
		m.staged[key] = sf
		m.mu.Unlock()
	} else if flags.Has(types.OCreate) && flags.Has(types.OExcl) {
		return nil, types.ErrExist
	}
	if flags.Has(types.OTrunc) && flags.WantsWrite() {
		m.mu.Lock()
		sf.data = nil
		sf.dirty = true
		m.mu.Unlock()
	}
	f := &file{m: m, key: key, sf: sf, flags: flags}
	if flags.Has(types.OAppend) {
		f.offset = int64(len(sf.data))
	}
	return f, nil
}

// file is an open S3FS handle backed by the staging copy.
type file struct {
	m     *Mount
	key   string
	sf    *stagedFile
	flags types.OpenFlag

	mu     sync.Mutex
	offset int64
}

func (f *file) Size() int64 {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	return int64(len(f.sf.data))
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.m.charge()
	f.m.diskTime(int64(len(p)))
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if off >= int64(len(f.sf.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.sf.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.m.charge()
	if !f.flags.WantsWrite() {
		return 0, types.ErrBadFD
	}
	f.m.diskTime(int64(len(p))) // staging write hits the disk
	f.m.mu.Lock()
	end := off + int64(len(p))
	if end > int64(len(f.sf.data)) {
		grown := make([]byte, end)
		copy(grown, f.sf.data)
		f.sf.data = grown
	}
	copy(f.sf.data[off:], p)
	f.sf.dirty = true
	f.m.mu.Unlock()
	return len(p), nil
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	if f.flags.Has(types.OAppend) {
		off = f.Size()
	}
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.offset = offset
	case io.SeekCurrent:
		f.offset += offset
	case io.SeekEnd:
		f.offset = f.Size() + offset
	default:
		return 0, types.ErrInval
	}
	return f.offset, nil
}

func (f *file) Sync() error {
	f.m.charge()
	f.m.mu.Lock()
	dirty := f.sf.dirty
	f.m.mu.Unlock()
	if dirty {
		return f.m.upload(f.key, f.sf)
	}
	return nil
}

// Fsync implements the context-aware flush; the staged upload has no
// cancellation points, so it reduces to Sync.
func (f *file) Fsync(context.Context) error { return f.Sync() }

func (f *file) Close() error { return f.Sync() }

// DropAllCaches evicts every staging copy (benchmark cache-drop step).
func (m *Mount) DropAllCaches() {
	m.mu.Lock()
	m.staged = make(map[string]*stagedFile)
	m.mu.Unlock()
}

// DropStaging evicts the staging copy of a path (benchmark cache-drop step).
func (m *Mount) DropStaging(path string) {
	if key, err := objKey(path); err == nil {
		m.mu.Lock()
		delete(m.staged, key)
		m.mu.Unlock()
	}
}
