package cephsim

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/fsapi/fstest"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func newCluster(t *testing.T, numMDS int) (*Cluster, *rpc.Network, sim.Env) {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	net := rpc.NewNetwork(env, sim.NetModel{})
	tr := prt.New(objstore.NewMemStore(), 4096)
	opts := DefaultClusterOptions("ceph-test", numMDS)
	opts.ServiceTime = 0 // functional tests should not sleep for real
	opts.SlowPathCost = 0
	opts.DeleteSlowCost = 0
	c := NewCluster(net, tr, opts)
	t.Cleanup(c.Close)
	return c, net, env
}

func TestCephSimConformance(t *testing.T) {
	c, _, _ := newCluster(t, 1)
	m := c.NewMount(MountOptions{Cred: types.Cred{Uid: 1, Gid: 1}})
	fstest.Run(t, m, fstest.LevelPOSIX)
}

func TestCephSimConformanceMultiMDS(t *testing.T) {
	c, _, _ := newCluster(t, 4)
	m := c.NewMount(MountOptions{FUSE: true, FUSEOverhead: 0, Cred: types.Cred{Uid: 1, Gid: 1}})
	fstest.Run(t, m, fstest.LevelPOSIX)
}

func TestTwoMountsShareNamespace(t *testing.T) {
	c, _, _ := newCluster(t, 1)
	m1 := c.NewMount(MountOptions{Cred: types.Cred{Uid: 1, Gid: 1}})
	m2 := c.NewMount(MountOptions{Cred: types.Cred{Uid: 2, Gid: 2}})
	if err := m1.Mkdir(context.Background(), "/shared", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := m1.Open(context.Background(), "/shared/a", types.OWronly|types.OCreate, 0666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := m2.Stat(context.Background(), "/shared/a")
	if err != nil || st.Size != 1 {
		t.Fatalf("m2 sees: %+v, %v", st, err)
	}
}

func TestSingleMDSSerializesUnderVirtualClock(t *testing.T) {
	// Eight clients issuing creates against a 1-MDS cluster with 100µs
	// service time serialize: 8 concurrent creates take ~800µs of virtual
	// time, not ~100µs.
	env := sim.NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		net := rpc.NewNetwork(env, sim.NetModel{})
		tr := prt.New(objstore.NewMemStore(), 4096)
		opts := DefaultClusterOptions("ceph-vt", 1)
		opts.ServiceTime = 100 * time.Microsecond
		opts.ContentionFactor = 0
		opts.Workers = 1
		c := NewCluster(net, tr, opts)
		defer c.Close()
		if err := c.NewMount(MountOptions{}).Mkdir(context.Background(), "/d", 0777); err != nil {
			t.Error(err)
			return
		}
		start := env.Now()
		g := sim.NewGroup(env)
		for i := 0; i < 8; i++ {
			i := i
			g.Go(func() {
				m := c.NewMount(MountOptions{})
				f, err := m.Open(context.Background(), "/d/f"+string(rune('a'+i)), types.OWronly|types.OCreate, 0666)
				if err != nil {
					t.Error(err)
					return
				}
				_ = f.Close()
			})
		}
		g.Wait()
		elapsed = env.Now() - start
	})
	// Each create needs a lookup(d)+create ≈ 2 serialized ops... the dcache
	// absorbs repeat lookups per mount but each fresh mount looks up once:
	// 8 lookups + 8 creates ≥ 16 * 100µs.
	if elapsed < 1600*time.Microsecond {
		t.Fatalf("8 clients finished in %v; MDS serialization missing", elapsed)
	}
}

func TestMultiMDSScalesButSublinearly(t *testing.T) {
	// With the slow-path coordination, 16 MDSs must beat 1 MDS but by far
	// less than 16x — the paper's ≤3.24x observation.
	run := func(numMDS int) time.Duration {
		env := sim.NewVirtEnv()
		var elapsed time.Duration
		env.Run(func() {
			net := rpc.NewNetwork(env, sim.NetModel{})
			tr := prt.New(objstore.NewMemStore(), 4096)
			opts := DefaultClusterOptions("ceph-scale", numMDS)
			opts.Workers = 1
			c := NewCluster(net, tr, opts)
			defer c.Close()
			setup := c.NewMount(MountOptions{})
			for i := 0; i < 32; i++ {
				if err := setup.Mkdir(context.Background(), "/d"+string(rune('a'+i)), 0777); err != nil {
					t.Error(err)
					return
				}
			}
			start := env.Now()
			g := sim.NewGroup(env)
			for i := 0; i < 32; i++ {
				i := i
				g.Go(func() {
					m := c.NewMount(MountOptions{})
					dir := "/d" + string(rune('a'+i))
					for k := 0; k < 40; k++ {
						f, err := m.Open(context.Background(), dir+"/f"+string(rune('a'+k)), types.OWronly|types.OCreate, 0666)
						if err != nil {
							t.Error(err)
							return
						}
						_ = f.Close()
					}
				})
			}
			g.Wait()
			elapsed = env.Now() - start
		})
		return elapsed
	}
	t1 := run(1)
	t16 := run(16)
	speedup := float64(t1) / float64(t16)
	if speedup < 1.2 {
		t.Fatalf("16 MDS speedup = %.2fx; should improve over 1 MDS", speedup)
	}
	if speedup > 8 {
		t.Fatalf("16 MDS speedup = %.2fx; dynamic-partitioning overhead missing", speedup)
	}
}
