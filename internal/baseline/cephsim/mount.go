package cephsim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/cache"
	"arkfs/internal/fsapi"
	"arkfs/internal/prt"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// MountOptions configures one CephFS client.
type MountOptions struct {
	// FUSE selects the FUSE mount: a per-request context-switch cost and the
	// small 128 KiB default read-ahead. The kernel mount pays neither.
	FUSE bool
	// FUSEOverhead is the per-request cost when FUSE is true.
	FUSEOverhead time.Duration
	// Net models the client↔MDS link.
	Net sim.NetModel
	// Cache configures the client page cache (entry size, capacity); the
	// read-ahead default depends on the mount type when left zero.
	Cache cache.Config
	// Cred is the caller identity.
	Cred types.Cred
}

// Mount is one CephFS client; it implements fsapi.FileSystem.
type Mount struct {
	c    *Cluster
	env  sim.Env
	opts MountOptions
	data *cache.Cache
	tr   *prt.Translator

	mu     sync.Mutex
	dcache map[string]*types.Inode // path -> directory inode (traversal cache)
	seq    atomic.Uint64
}

// NewMount attaches a client to the cluster.
func (c *Cluster) NewMount(opts MountOptions) *Mount {
	if opts.Cache.MaxReadahead == 0 {
		if opts.FUSE {
			opts.Cache.MaxReadahead = 128 << 10 // FUSE default max read-ahead
		} else {
			opts.Cache.MaxReadahead = 8 << 20 // kernel mount
		}
	}
	if opts.FUSE && opts.FUSEOverhead == 0 {
		opts.FUSEOverhead = 8 * time.Microsecond
	}
	m := &Mount{
		c:      c,
		env:    c.env,
		opts:   opts,
		tr:     c.tr,
		dcache: make(map[string]*types.Inode),
	}
	m.data = cache.New(c.env, c.tr, opts.Cache)
	return m
}

func (m *Mount) charge() {
	if m.opts.FUSE && m.opts.FUSEOverhead > 0 {
		m.env.Sleep(m.opts.FUSEOverhead)
	}
}

// call sends one op to the authoritative MDS, charging the network.
func (m *Mount) call(op mdsOp) (mdsResp, error) {
	op.Cred = m.opts.Cred
	op.Seq = m.seq.Add(1)
	m.c.inFlight.Add(1)
	defer m.c.inFlight.Add(-1)
	m.env.Sleep(m.opts.Net.TransferTime(0))
	resp, err := m.c.net.Call(m.c.mdsAddr(m.c.authority(op.Dir)), op)
	if err != nil {
		return mdsResp{}, err
	}
	m.env.Sleep(m.opts.Net.TransferTime(0))
	r := resp.(mdsResp)
	if r.Err != "" {
		return r, wireErr(r.Err)
	}
	return r, nil
}

// resolveDir walks to the parent of path, caching directory inodes (the
// kernel dcache / FUSE entry cache both do this).
func (m *Mount) resolveDir(parts []string) (types.Ino, error) {
	cur := types.RootIno
	prefix := ""
	for _, name := range parts {
		prefix += "/" + name
		var node *types.Inode
		ok := false
		if !m.opts.FUSE {
			// Kernel mounts hold dentry caps and resolve from the dcache;
			// the FUSE daemon revalidates every component at the MDS, which
			// is a large part of why ceph-fuse trails the kernel client.
			m.mu.Lock()
			node, ok = m.dcache[prefix]
			m.mu.Unlock()
		}
		if !ok {
			resp, err := m.call(mdsOp{Kind: opLookup, Dir: cur, Name: name})
			if err != nil {
				return types.NilIno, err
			}
			node = resp.Inode
			if node.IsDir() {
				m.mu.Lock()
				m.dcache[prefix] = node
				m.mu.Unlock()
			}
		}
		if !node.IsDir() {
			return types.NilIno, types.ErrNotDir
		}
		cur = node.Ino
	}
	return cur, nil
}

func (m *Mount) parentOf(path string) (types.Ino, string, error) {
	dirParts, name, err := types.SplitDir(path)
	if err != nil {
		return types.NilIno, "", err
	}
	dir, err := m.resolveDir(dirParts)
	return dir, name, err
}

// Mkdir implements fsapi.FileSystem.
func (m *Mount) Mkdir(ctx context.Context, path string, mode types.Mode) error {
	m.charge()
	dir, name, err := m.parentOf(path)
	if err != nil {
		return err
	}
	_, err = m.call(mdsOp{Kind: opMkdir, Dir: dir, Name: name, Mode: mode, FType: types.TypeDir})
	return err
}

// Stat implements fsapi.FileSystem.
func (m *Mount) Stat(ctx context.Context, path string) (*types.Inode, error) {
	m.charge()
	parts, err := types.SplitPath(path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		resp, err := m.call(mdsOp{Kind: opStat, Dir: types.RootIno})
		if err != nil {
			return nil, err
		}
		return resp.Inode, nil
	}
	dir, err := m.resolveDir(parts[:len(parts)-1])
	if err != nil {
		return nil, err
	}
	resp, err := m.call(mdsOp{Kind: opStat, Dir: dir, Name: parts[len(parts)-1]})
	if err != nil {
		return nil, err
	}
	return resp.Inode, nil
}

// Unlink implements fsapi.FileSystem.
func (m *Mount) Unlink(ctx context.Context, path string) error {
	m.charge()
	dir, name, err := m.parentOf(path)
	if err != nil {
		return err
	}
	resp, err := m.call(mdsOp{Kind: opUnlink, Dir: dir, Name: name})
	if err != nil {
		return err
	}
	if resp.Inode != nil && resp.Inode.Size > 0 {
		m.data.Invalidate(resp.Inode.Ino)
		return m.tr.DeleteData(resp.Inode.Ino, resp.Inode.Size)
	}
	return nil
}

// Rmdir implements fsapi.FileSystem.
func (m *Mount) Rmdir(ctx context.Context, path string) error {
	m.charge()
	dir, name, err := m.parentOf(path)
	if err != nil {
		return err
	}
	if _, err := m.call(mdsOp{Kind: opRmdir, Dir: dir, Name: name}); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.dcache, "/"+name) // coarse invalidation for top-level removals
	m.mu.Unlock()
	return nil
}

// Rename implements fsapi.FileSystem.
func (m *Mount) Rename(ctx context.Context, src, dst string) error {
	m.charge()
	sdir, sname, err := m.parentOf(src)
	if err != nil {
		return err
	}
	ddir, dname, err := m.parentOf(dst)
	if err != nil {
		return err
	}
	_, err = m.call(mdsOp{Kind: opRename, Dir: sdir, Name: sname, Dir2: ddir, NewName: dname})
	return err
}

// Readdir implements fsapi.FileSystem.
func (m *Mount) Readdir(ctx context.Context, path string) ([]wire.Dentry, error) {
	m.charge()
	parts, err := types.SplitPath(path)
	if err != nil {
		return nil, err
	}
	dir, err := m.resolveDir(parts)
	if err != nil {
		return nil, err
	}
	resp, err := m.call(mdsOp{Kind: opReaddir, Dir: dir})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// FlushAll implements fsapi.FileSystem: write back every dirty page (the
// fsync-per-phase barrier; MDS metadata is authoritative already).
func (m *Mount) FlushAll(ctx context.Context) error { return m.data.FlushAll() }

// Close implements fsapi.FileSystem.
func (m *Mount) Close() error { return nil }

// Open implements fsapi.FileSystem.
func (m *Mount) Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (fsapi.File, error) {
	m.charge()
	dir, name, err := m.parentOf(path)
	if err != nil {
		return nil, err
	}
	var node *types.Inode
	resp, err := m.call(mdsOp{Kind: opLookup, Dir: dir, Name: name})
	switch {
	case err == nil:
		if flags.Has(types.OCreate) && flags.Has(types.OExcl) {
			return nil, types.ErrExist
		}
		node = resp.Inode
		// Real CephFS opens are a second MDS transaction: the client must
		// be issued capabilities (Fc/Fw caps) before touching file data.
		if _, cerr := m.call(mdsOp{Kind: opStat, Dir: dir, Name: name}); cerr != nil {
			return nil, cerr
		}
	case isNotExistStr(err) && flags.Has(types.OCreate):
		cresp, cerr := m.call(mdsOp{Kind: opCreate, Dir: dir, Name: name, Mode: mode, FType: types.TypeRegular})
		if cerr != nil {
			return nil, cerr
		}
		node = cresp.Inode
	default:
		return nil, err
	}
	if node.IsDir() {
		return nil, types.ErrIsDir
	}
	f := &file{m: m, dir: dir, name: name, ino: node.Ino, size: node.Size, flags: flags}
	if flags.Has(types.OTrunc) && flags.WantsWrite() && f.size > 0 {
		if _, err := m.call(mdsOp{Kind: opSetAttr, Dir: dir, Name: name,
			Patch: patch{SetSize: true, Size: 0}}); err != nil {
			return nil, err
		}
		m.data.Invalidate(node.Ino)
		if err := m.tr.Truncate(node.Ino, f.size, 0); err != nil {
			return nil, err
		}
		f.size = 0
	}
	if flags.Has(types.OAppend) {
		f.offset = f.size
	}
	return f, nil
}

// file is an open CephFS handle; data goes through the client page cache.
type file struct {
	m     *Mount
	dir   types.Ino
	name  string
	ino   types.Ino
	flags types.OpenFlag

	mu     sync.Mutex
	size   int64
	offset int64
	wrote  bool
	closed bool
}

func (f *file) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.m.charge()
	f.mu.Lock()
	size := f.size
	f.mu.Unlock()
	n, err := f.m.data.Read(f.ino, p, off, size)
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.m.charge()
	if !f.flags.WantsWrite() {
		return 0, types.ErrBadFD
	}
	if err := f.m.data.Write(f.ino, p, off); err != nil {
		return 0, err
	}
	f.mu.Lock()
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.wrote = true
	f.mu.Unlock()
	return len(p), nil
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	if f.flags.Has(types.OAppend) {
		off = f.size
	}
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.offset = offset
	case io.SeekCurrent:
		f.offset += offset
	case io.SeekEnd:
		f.offset = f.size + offset
	default:
		return 0, types.ErrInval
	}
	return f.offset, nil
}

func (f *file) Sync() error {
	f.m.charge()
	if err := f.m.data.Flush(f.ino); err != nil {
		return err
	}
	f.mu.Lock()
	size, wrote := f.size, f.wrote
	f.wrote = false
	f.mu.Unlock()
	if wrote {
		_, err := f.m.call(mdsOp{Kind: opSetAttr, Dir: f.dir, Name: f.name,
			Patch: patch{SetSize: true, Size: size, SetTimes: true, Mtime: f.m.env.Now()}})
		return err
	}
	return nil
}

// Fsync implements the context-aware flush; the MDS call path is uniform
// latency, so it reduces to Sync.
func (f *file) Fsync(context.Context) error { return f.Sync() }

func (f *file) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	wrote := f.wrote
	size := f.size
	f.wrote = false
	f.mu.Unlock()
	if wrote {
		// close(2): push the size to the MDS; dirty pages stay in the page
		// cache and write back in the background (kernel semantics).
		if _, err := f.m.call(mdsOp{Kind: opSetAttr, Dir: f.dir, Name: f.name,
			Patch: patch{SetSize: true, Size: size, SetTimes: true, Mtime: f.m.env.Now()}}); err != nil {
			return err
		}
		ino := f.ino
		f.m.env.Go(func() { _ = f.m.data.Flush(ino) })
	}
	return nil
}

// DropCaches empties the mount's page cache (benchmark barrier).
func (m *Mount) DropCaches(inos ...types.Ino) {
	for _, ino := range inos {
		m.data.Invalidate(ino)
	}
}

// DropAllCaches empties the whole page cache.
func (m *Mount) DropAllCaches() { m.data.Clear() }

func wireErr(s string) error {
	switch s {
	case "ENOENT":
		return types.ErrNotExist
	case "EEXIST":
		return types.ErrExist
	case "ENOTDIR":
		return types.ErrNotDir
	case "EISDIR":
		return types.ErrIsDir
	case "ENOTEMPTY":
		return types.ErrNotEmpty
	case "EACCES":
		return types.ErrAccess
	case "EPERM":
		return types.ErrPerm
	default:
		return fmt.Errorf("cephsim: %s: %w", s, types.ErrIO)
	}
}

func isNotExistStr(err error) bool { return err == types.ErrNotExist }
