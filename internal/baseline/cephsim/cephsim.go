// Package cephsim implements a CephFS-like baseline: a POSIX namespace
// served by a centralized metadata-server (MDS) cluster over the same object
// store ArkFS uses. It reproduces the architectural properties the paper
// measures against:
//
//   - every metadata operation is a client→MDS round trip;
//   - a single MDS serializes all requests (service time + load-dependent
//     lock contention), collapsing beyond a handful of clients (Fig. 1);
//   - multiple MDSs partition directories by hash, but dynamic subtree
//     partitioning makes a fraction of operations take a slow path through
//     shared balancer coordination, capping the speedup well below linear
//     (the paper observed ≤3.24× from 16 MDSs);
//   - file data flows through a client-side write-back page cache with
//     sequential read-ahead (8 MiB for the kernel mount, 128 KiB for the
//     FUSE mount), persisted as objects;
//   - the FUSE mount additionally pays a per-request context-switch cost.
package cephsim

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// ClusterOptions configures the MDS cluster.
type ClusterOptions struct {
	// Name prefixes the MDS RPC addresses (so several clusters can share a
	// network in one experiment).
	Name string
	// NumMDS is the metadata server count (the paper uses 1 and 16).
	NumMDS int
	// ServiceTime is the base cost of one metadata operation at an MDS.
	ServiceTime time.Duration
	// ContentionFactor grows the effective service time with queue depth,
	// modelling MDS lock contention: s_eff = s * (1 + f * queued).
	ContentionFactor float64
	// SlowPathProb is the probability that an operation on a multi-MDS
	// cluster takes the dynamic-subtree-partitioning slow path (forwarding /
	// balancer coordination), serialized through one shared coordinator.
	SlowPathProb float64
	// SlowPathCost is the coordinator's serialized cost per slow-path op.
	SlowPathCost time.Duration
	// DeleteSlowProb/DeleteSlowCost override the slow path for DELETEs,
	// which the paper observed regressing with 16 MDSs (subtree migration
	// of emptied directories).
	DeleteSlowProb float64
	DeleteSlowCost time.Duration
	// Workers is the per-MDS concurrency (MDS request handler threads).
	Workers int
}

// DefaultClusterOptions returns the calibration used by the harness.
func DefaultClusterOptions(name string, numMDS int) ClusterOptions {
	return ClusterOptions{
		Name:             name,
		NumMDS:           numMDS,
		ServiceTime:      55 * time.Microsecond,
		ContentionFactor: 0.006,
		SlowPathProb:     0.22,
		SlowPathCost:     90 * time.Microsecond,
		DeleteSlowProb:   0.50,
		DeleteSlowCost:   260 * time.Microsecond,
		Workers:          2,
	}
}

// namespace is the shared file-system tree. MDS authority partitions write
// access by directory; the Go mutex only guards the in-memory maps (the
// simulated cost is charged separately).
type namespace struct {
	mu     sync.Mutex
	inodes map[types.Ino]*types.Inode
	dirs   map[types.Ino]map[string]wire.Dentry
}

// Cluster is the MDS cluster plus the shared namespace.
type Cluster struct {
	env  sim.Env
	net  *rpc.Network
	tr   *prt.Translator
	opts ClusterOptions
	ns   *namespace

	servers []*rpc.Server
	coord   *rpc.Server // the slow-path coordinator (balancer)
	inoSrc  *types.InoSource
	// inFlight counts client requests issued and not yet answered — the
	// MDS-visible load that drives lock contention (queued requests hold
	// session locks and inflate every handler's critical sections).
	inFlight atomic.Int64
}

// NewCluster starts the MDS cluster and creates the root directory.
func NewCluster(net *rpc.Network, tr *prt.Translator, opts ClusterOptions) *Cluster {
	if opts.NumMDS <= 0 {
		opts.NumMDS = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Name == "" {
		opts.Name = "ceph"
	}
	c := &Cluster{
		env:  net.Env(),
		net:  net,
		tr:   tr,
		opts: opts,
		ns: &namespace{
			inodes: make(map[types.Ino]*types.Inode),
			dirs:   make(map[types.Ino]map[string]wire.Dentry),
		},
		inoSrc: types.NewInoSource(0xCE9),
	}
	c.ns.inodes[types.RootIno] = &types.Inode{
		Ino: types.RootIno, Type: types.TypeDir, Mode: 0777, Nlink: 2,
	}
	c.ns.dirs[types.RootIno] = make(map[string]wire.Dentry)
	for i := 0; i < opts.NumMDS; i++ {
		i := i
		srv := net.Listen(c.mdsAddr(i), opts.Workers, func(req any) any {
			return c.serveMDS(i, req)
		})
		c.servers = append(c.servers, srv)
	}
	// The balancer/coordinator: strictly one worker — this is the shared
	// serialization point of dynamic subtree partitioning.
	c.coord = net.Listen(rpc.Addr(opts.Name+"-balancer"), 1, func(req any) any {
		c.env.Sleep(req.(coordReq).cost)
		return struct{}{}
	})
	return c
}

// Close stops the MDS servers.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		s.Close()
	}
	c.coord.Close()
}

func (c *Cluster) mdsAddr(i int) rpc.Addr {
	return rpc.Addr(fmt.Sprintf("%s-mds-%d", c.opts.Name, i))
}

// authority maps a directory to its authoritative MDS.
func (c *Cluster) authority(dir types.Ino) int {
	if c.opts.NumMDS == 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write(dir[:])
	return int(h.Sum64() % uint64(c.opts.NumMDS))
}

type coordReq struct{ cost time.Duration }

// mdsOp is the request envelope for every MDS operation.
type mdsOp struct {
	Kind    opKind
	Dir     types.Ino
	Name    string
	NewName string
	Dir2    types.Ino // rename destination directory
	Mode    types.Mode
	FType   types.FileType
	Cred    types.Cred
	Patch   patch
	Seq     uint64 // deterministic slow-path sampling
}

type patch struct {
	SetSize  bool
	Size     int64
	SetMode  bool
	Mode     types.Mode
	SetTimes bool
	Mtime    time.Duration
}

type opKind int

const (
	opLookup opKind = iota
	opCreate
	opMkdir
	opUnlink
	opRmdir
	opStat
	opSetAttr
	opReaddir
	opRename
)

// mdsResp is the reply envelope.
type mdsResp struct {
	Err     string
	Inode   *types.Inode
	Entries []wire.Dentry
}

// serveMDS handles one request at MDS i: charge the (contended) service
// time, take the slow path when sampled, then apply to the namespace.
func (c *Cluster) serveMDS(i int, req any) any {
	op, ok := req.(mdsOp)
	if !ok {
		return mdsResp{Err: "EINVAL"}
	}
	depth := float64(c.inFlight.Load()) / float64(c.opts.NumMDS)
	svc := time.Duration(float64(c.opts.ServiceTime) * (1 + c.opts.ContentionFactor*depth))
	c.env.Sleep(svc)

	if c.opts.NumMDS > 1 {
		prob, cost := c.opts.SlowPathProb, c.opts.SlowPathCost
		if op.Kind == opUnlink || op.Kind == opRmdir {
			prob, cost = c.opts.DeleteSlowProb, c.opts.DeleteSlowCost
		}
		// Deterministic sampling on a hash of the op sequence number (the
		// raw sequence is far from uniform for short runs).
		mixed := (op.Seq*0x9E3779B97F4A7C15 ^ uint64(op.Dir.Lo())) >> 33
		if prob > 0 && float64(mixed%1000) < prob*1000 {
			_, _ = c.net.Call(rpc.Addr(c.opts.Name+"-balancer"), coordReq{cost: cost})
		}
	}
	return c.apply(op)
}

// apply performs the namespace mutation.
func (c *Cluster) apply(op mdsOp) mdsResp {
	ns := c.ns
	ns.mu.Lock()
	defer ns.mu.Unlock()
	now := c.env.Now()

	dirEnts, ok := ns.dirs[op.Dir]
	if !ok && op.Kind != opStat {
		return mdsResp{Err: "ENOENT"}
	}
	switch op.Kind {
	case opLookup, opStat:
		if op.Name == "" {
			n, ok := ns.inodes[op.Dir]
			if !ok {
				return mdsResp{Err: "ENOENT"}
			}
			return mdsResp{Inode: n.Clone()}
		}
		de, ok := dirEnts[op.Name]
		if !ok {
			return mdsResp{Err: "ENOENT"}
		}
		return mdsResp{Inode: ns.inodes[de.Ino].Clone()}

	case opCreate, opMkdir:
		if de, exists := dirEnts[op.Name]; exists {
			if op.Kind == opMkdir {
				return mdsResp{Err: "EEXIST"}
			}
			return mdsResp{Inode: ns.inodes[de.Ino].Clone()}
		}
		dirNode := ns.inodes[op.Dir]
		if err := dirNode.Access(op.Cred, types.MayWrite|types.MayExec); err != nil {
			return mdsResp{Err: types.Errno(err)}
		}
		child := &types.Inode{
			Ino: c.nextIno(), Type: op.FType, Mode: op.Mode & 07777,
			Uid: op.Cred.Uid, Gid: op.Cred.Gid, Nlink: 1,
			Mtime: now, Ctime: now,
		}
		if op.FType == types.TypeDir {
			child.Nlink = 2
			ns.dirs[child.Ino] = make(map[string]wire.Dentry)
		}
		ns.inodes[child.Ino] = child
		dirEnts[op.Name] = wire.Dentry{Name: op.Name, Ino: child.Ino, Type: child.Type}
		dirNode.Mtime = now
		return mdsResp{Inode: child.Clone()}

	case opUnlink, opRmdir:
		de, ok := dirEnts[op.Name]
		if !ok {
			return mdsResp{Err: "ENOENT"}
		}
		victim := ns.inodes[de.Ino]
		if op.Kind == opRmdir {
			if !victim.IsDir() {
				return mdsResp{Err: "ENOTDIR"}
			}
			if len(ns.dirs[de.Ino]) > 0 {
				return mdsResp{Err: "ENOTEMPTY"}
			}
			delete(ns.dirs, de.Ino)
		} else if victim.IsDir() {
			return mdsResp{Err: "EISDIR"}
		}
		delete(dirEnts, op.Name)
		delete(ns.inodes, de.Ino)
		return mdsResp{Inode: victim}

	case opSetAttr:
		var node *types.Inode
		if op.Name == "" {
			node = ns.inodes[op.Dir]
		} else {
			de, ok := dirEnts[op.Name]
			if !ok {
				return mdsResp{Err: "ENOENT"}
			}
			node = ns.inodes[de.Ino]
		}
		if node == nil {
			return mdsResp{Err: "ENOENT"}
		}
		if op.Patch.SetSize {
			node.Size = op.Patch.Size
		}
		if op.Patch.SetMode {
			node.Mode = op.Patch.Mode & 07777
		}
		if op.Patch.SetTimes {
			node.Mtime = op.Patch.Mtime
		}
		node.Ctime = now
		return mdsResp{Inode: node.Clone()}

	case opReaddir:
		out := make([]wire.Dentry, 0, len(dirEnts))
		for _, de := range dirEnts {
			out = append(out, de)
		}
		return mdsResp{Entries: out}

	case opRename:
		de, ok := dirEnts[op.Name]
		if !ok {
			return mdsResp{Err: "ENOENT"}
		}
		dstEnts, ok := ns.dirs[op.Dir2]
		if !ok {
			return mdsResp{Err: "ENOENT"}
		}
		if old, exists := dstEnts[op.NewName]; exists {
			delete(ns.inodes, old.Ino)
		}
		delete(dirEnts, op.Name)
		de.Name = op.NewName
		dstEnts[op.NewName] = de
		return mdsResp{Inode: ns.inodes[de.Ino].Clone()}
	default:
		return mdsResp{Err: "EINVAL"}
	}
}

func (c *Cluster) nextIno() types.Ino { return c.inoSrc.Next() }
