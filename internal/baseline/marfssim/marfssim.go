// Package marfssim implements a MarFS-like baseline: a near-POSIX interface
// over cloud objects whose metadata lives on two dedicated metadata nodes
// (IBM SpectrumScale in the paper's deployment) and whose data is striped to
// the object store. The paper measured MarFS through its FUSE "interactive
// interface", which is the slowest path of the systems compared:
//
//   - every metadata operation crosses FUSE and the network to one of two
//     statically partitioned metadata servers;
//   - the GPFS-backed metadata service has a higher per-op cost than a Ceph
//     MDS (it journals through a general-purpose cluster file system);
//   - the interactive READ path is fragile — the paper reports it returning
//     errors in their environment (the harness reports that cell as failed).
//
// Architecturally this is a centralized-metadata design like cephsim, so the
// implementation reuses that machinery with static partitioning (no dynamic
// subtree balancing) and MarFS-calibrated costs.
package marfssim

import (
	"context"
	"time"

	"arkfs/internal/baseline/cephsim"
	"arkfs/internal/cache"
	"arkfs/internal/fsapi"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Options configures the MarFS deployment.
type Options struct {
	// Name prefixes RPC addresses.
	Name string
	// MetadataNodes is the dedicated metadata server count (paper: 2).
	MetadataNodes int
	// ServiceTime is the per-op metadata cost (GPFS + MarFS MDAL overhead).
	ServiceTime time.Duration
	// FUSEOverhead is charged per request on the interactive interface.
	FUSEOverhead time.Duration
	// Net models the client↔metadata-node link.
	Net sim.NetModel
	// ReadFails makes file READs fail, as observed in the paper's
	// environment for the mdtest-hard READ phase.
	ReadFails bool
}

// DefaultOptions returns the calibration used by the harness.
func DefaultOptions(name string) Options {
	return Options{
		Name:          name,
		MetadataNodes: 2,
		ServiceTime:   120 * time.Microsecond,
		FUSEOverhead:  10 * time.Microsecond,
	}
}

// Cluster is the MarFS deployment handle.
type Cluster struct {
	inner *cephsim.Cluster
	opts  Options
}

// NewCluster starts the metadata nodes over the network and object store.
func NewCluster(net *rpc.Network, tr *prt.Translator, opts Options) *Cluster {
	if opts.Name == "" {
		opts.Name = "marfs"
	}
	if opts.MetadataNodes <= 0 {
		opts.MetadataNodes = 2
	}
	if opts.ServiceTime <= 0 {
		opts.ServiceTime = 120 * time.Microsecond
	}
	co := cephsim.ClusterOptions{
		Name:             opts.Name,
		NumMDS:           opts.MetadataNodes,
		ServiceTime:      opts.ServiceTime,
		ContentionFactor: 0.02, // GPFS token-manager contention
		SlowPathProb:     0,    // static partitioning: no balancer traffic
		Workers:          2,
	}
	return &Cluster{inner: cephsim.NewCluster(net, tr, co), opts: opts}
}

// Close stops the metadata nodes.
func (c *Cluster) Close() { c.inner.Close() }

// NewMount attaches an interactive-interface (FUSE) client.
func (c *Cluster) NewMount(cred types.Cred) fsapi.FileSystem {
	m := c.inner.NewMount(cephsim.MountOptions{
		FUSE:         true,
		FUSEOverhead: c.opts.FUSEOverhead,
		Net:          c.opts.Net,
		Cred:         cred,
		Cache:        cache.Config{MaxReadahead: 1 << 20}, // modest MarFS streaming buffers
	})
	if c.opts.ReadFails {
		return &readFailFS{FileSystem: m}
	}
	return m
}

// readFailFS reproduces the paper's observation that the MarFS interactive
// READ path errored in their environment: opens for reading succeed but
// reads return EIO.
type readFailFS struct {
	fsapi.FileSystem
}

// Open implements fsapi.FileSystem.
func (r *readFailFS) Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (fsapi.File, error) {
	f, err := r.FileSystem.Open(ctx, path, flags, mode)
	if err != nil {
		return nil, err
	}
	return &readFailFile{File: f}, nil
}

type readFailFile struct {
	fsapi.File
}

func (f *readFailFile) Read(p []byte) (int, error)              { return 0, types.ErrIO }
func (f *readFailFile) ReadAt(p []byte, off int64) (int, error) { return 0, types.ErrIO }
