package marfssim

import (
	"context"
	"errors"
	"testing"

	"arkfs/internal/fsapi"
	"arkfs/internal/fsapi/fstest"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func newCluster(t *testing.T, readFails bool) *Cluster {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	net := rpc.NewNetwork(env, sim.NetModel{})
	tr := prt.New(objstore.NewMemStore(), 4096)
	opts := DefaultOptions("marfs-test")
	opts.ServiceTime = 1 // functional tests: negligible sleep
	opts.FUSEOverhead = 0
	opts.ReadFails = readFails
	c := NewCluster(net, tr, opts)
	t.Cleanup(c.Close)
	return c
}

func TestMarFSConformance(t *testing.T) {
	c := newCluster(t, false)
	fstest.Run(t, c.NewMount(types.Cred{Uid: 1, Gid: 1}), fstest.LevelPOSIX)
}

func TestMarFSReadFailureMode(t *testing.T) {
	// The paper's environment saw MarFS READ erroring in mdtest-hard; the
	// ReadFails knob reproduces that: writes succeed, reads return EIO.
	c := newCluster(t, true)
	m := c.NewMount(types.Cred{Uid: 1, Gid: 1})
	if err := m.Mkdir(context.Background(), "/d", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := fsapi.Create(context.Background(), m, "/d/x", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := m.Open(context.Background(), "/d/x", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := r.Read(buf); !errors.Is(err, types.ErrIO) {
		t.Fatalf("expected EIO from interactive read, got %v", err)
	}
	_ = r.Close()
}
