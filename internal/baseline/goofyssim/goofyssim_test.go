package goofyssim

import (
	"bytes"
	"context"
	"io"
	"testing"

	"arkfs/internal/fsapi"
	"arkfs/internal/fsapi/fstest"
	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

func newMount(t *testing.T) (*Mount, *objstore.MemStore) {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	store := objstore.NewMemStore()
	opts := DefaultOptions()
	opts.FUSEOverhead = 0
	return New(env, store, opts), store
}

func TestGoofysConformance(t *testing.T) {
	m, _ := newMount(t)
	fstest.Run(t, m, fstest.LevelObject)
}

func TestSequentialStreamRead(t *testing.T) {
	m, store := newMount(t)
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := store.Put("stream", payload); err != nil {
		t.Fatal(err)
	}
	f, err := m.Open(context.Background(), "/stream", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("streamed %d bytes", len(got))
	}
	// The prefetch pipeline should have fetched the object exactly once
	// (the whole window covers it).
	// Re-reading is served from the prefetch buffer.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	again, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(again, payload) {
		t.Fatalf("re-read: %d bytes, %v", len(again), err)
	}
	_ = f.Close()
}

func TestWritesBufferedUntilClose(t *testing.T) {
	m, store := newMount(t)
	f, err := fsapi.Create(context.Background(), m, "/out", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// Nothing uploaded yet.
	if _, err := store.Get("out"); err == nil {
		t.Fatal("write was not buffered")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("out")
	if err != nil || string(got) != "buffered" {
		t.Fatalf("after close: %q, %v", got, err)
	}
}

func TestRewriteInvalidatesPrefetch(t *testing.T) {
	m, store := newMount(t)
	if err := store.Put("f", []byte("old")); err != nil {
		t.Fatal(err)
	}
	r, err := m.Open(context.Background(), "/f", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	_ = r.Close()
	// Rewrite through goofys.
	w, err := m.Open(context.Background(), "/f", types.OWronly|types.OTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("NEW")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := m.Open(context.Background(), "/f", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	_ = r2.Close()
	if string(buf) != "NEW" {
		t.Fatalf("stale prefetch served: %q", buf)
	}
}
