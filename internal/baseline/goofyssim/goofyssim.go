// Package goofyssim implements a goofys-like baseline: a path-as-key S3 file
// system "extremely optimized for sequential reads" (paper §IV-B). Compared
// with s3fssim it has no disk staging cache — writes buffer in memory and
// stream out on close/fsync — and its read path prefetches with a 400 MiB
// read-ahead window (50× ArkFS's default), which is what lets it beat
// ArkFS-ra8MB on sequential READ in Fig. 6(b).
package goofyssim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/objstore"
	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Options configures one goofys mount.
type Options struct {
	// Readahead is the sequential prefetch window (default 400 MiB).
	Readahead int64
	// PartSize is the streaming upload/download granularity.
	PartSize int64
	// FUSEOverhead per request (goofys is FUSE-based).
	FUSEOverhead time.Duration
	// Net models the client↔S3 link for prefetch pipelining.
	Net  sim.NetModel
	Cred types.Cred
}

// DefaultOptions mirrors goofys v0.24 defaults.
func DefaultOptions() Options {
	return Options{Readahead: 400 << 20, PartSize: 8 << 20, FUSEOverhead: 8 * time.Microsecond}
}

// Mount is one goofys client; it implements fsapi.FileSystem.
type Mount struct {
	env   sim.Env
	store objstore.Store
	opts  Options

	mu      sync.Mutex
	readBuf map[string]*readState // path -> prefetch state
}

// readState is the prefetch pipeline of one sequentially read object.
type readState struct {
	data      []byte
	fetched   int64 // bytes already transferred
	totalSize int64
}

// New creates a mount on the store.
func New(env sim.Env, store objstore.Store, opts Options) *Mount {
	if opts.Readahead <= 0 {
		opts.Readahead = 400 << 20
	}
	if opts.PartSize <= 0 {
		opts.PartSize = 8 << 20
	}
	return &Mount{env: env, store: store, opts: opts, readBuf: make(map[string]*readState)}
}

func (m *Mount) charge() {
	if m.opts.FUSEOverhead > 0 {
		m.env.Sleep(m.opts.FUSEOverhead)
	}
}

func objKey(path string) (string, error) {
	parts, err := types.SplitPath(path)
	if err != nil {
		return "", err
	}
	return strings.Join(parts, "/"), nil
}

// Mkdir implements fsapi.FileSystem (marker object, like s3fs).
func (m *Mount) Mkdir(ctx context.Context, path string, mode types.Mode) error {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return err
	}
	return m.store.Put(key+"/", nil)
}

// Stat implements fsapi.FileSystem.
func (m *Mount) Stat(ctx context.Context, path string) (*types.Inode, error) {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return nil, err
	}
	if key == "" {
		return synth(key, 0, true), nil
	}
	if size, err := m.store.Head(key); err == nil {
		return synth(key, size, false), nil
	}
	if _, err := m.store.Head(key + "/"); err == nil {
		return synth(key, 0, true), nil
	}
	keys, err := m.store.List(key + "/")
	if err != nil {
		return nil, err
	}
	if len(keys) > 0 {
		return synth(key, 0, true), nil
	}
	return nil, fmt.Errorf("goofys: stat %q: %w", path, types.ErrNotExist)
}

func synth(key string, size int64, dir bool) *types.Inode {
	n := &types.Inode{Mode: 0666, Size: size, Nlink: 1}
	copy(n.Ino[:], key)
	n.Ino[15] = 2
	if dir {
		n.Type = types.TypeDir
		n.Mode = 0777
		n.Nlink = 2
	}
	return n
}

// Unlink implements fsapi.FileSystem.
func (m *Mount) Unlink(ctx context.Context, path string) error {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return err
	}
	if _, err := m.store.Head(key); err != nil {
		return fmt.Errorf("goofys: unlink %q: %w", path, types.ErrNotExist)
	}
	m.mu.Lock()
	delete(m.readBuf, key)
	m.mu.Unlock()
	return m.store.Delete(key)
}

// Rmdir implements fsapi.FileSystem.
func (m *Mount) Rmdir(ctx context.Context, path string) error {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return err
	}
	keys, err := m.store.List(key + "/")
	if err != nil {
		return err
	}
	for _, k := range keys {
		if k != key+"/" {
			return fmt.Errorf("goofys: rmdir %q: %w", path, types.ErrNotEmpty)
		}
	}
	return m.store.Delete(key + "/")
}

// Rename is not supported for directories by goofys; files are copy+delete.
func (m *Mount) Rename(ctx context.Context, src, dst string) error {
	m.charge()
	skey, err := objKey(src)
	if err != nil {
		return err
	}
	dkey, err := objKey(dst)
	if err != nil {
		return err
	}
	data, err := m.store.Get(skey)
	if err != nil {
		return fmt.Errorf("goofys: rename %q: %w", src, types.ErrNotExist)
	}
	if err := m.store.Put(dkey, data); err != nil {
		return err
	}
	return m.store.Delete(skey)
}

// Readdir implements fsapi.FileSystem.
func (m *Mount) Readdir(ctx context.Context, path string) ([]wire.Dentry, error) {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return nil, err
	}
	prefix := key + "/"
	if key == "" {
		prefix = ""
	}
	keys, err := m.store.List(prefix)
	if err != nil {
		return nil, err
	}
	seen := map[string]types.FileType{}
	for _, k := range keys {
		rest := strings.TrimPrefix(k, prefix)
		if rest == "" {
			continue
		}
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[rest[:i]] = types.TypeDir
		} else {
			seen[rest] = types.TypeRegular
		}
	}
	out := make([]wire.Dentry, 0, len(seen))
	for name, ft := range seen {
		de := wire.Dentry{Name: name, Type: ft}
		copy(de.Ino[:], prefix+name)
		de.Ino[15] = 2
		out = append(out, de)
	}
	return out, nil
}

// FlushAll implements fsapi.FileSystem; open handles flush on Sync/Close.
func (m *Mount) FlushAll(ctx context.Context) error { return nil }

// Close implements fsapi.FileSystem.
func (m *Mount) Close() error { return nil }

// Open implements fsapi.FileSystem.
func (m *Mount) Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (fsapi.File, error) {
	m.charge()
	key, err := objKey(path)
	if err != nil {
		return nil, err
	}
	size, herr := m.store.Head(key)
	exists := herr == nil
	if !exists && !flags.Has(types.OCreate) {
		return nil, fmt.Errorf("goofys: open %q: %w", path, types.ErrNotExist)
	}
	if exists && flags.Has(types.OCreate) && flags.Has(types.OExcl) {
		return nil, types.ErrExist
	}
	f := &file{m: m, key: key, flags: flags, size: size}
	if flags.Has(types.OTrunc) && flags.WantsWrite() {
		f.size = 0
	}
	if flags.WantsWrite() {
		f.wbuf = make([]byte, 0, m.opts.PartSize)
		if !flags.Has(types.OTrunc) && exists && size > 0 {
			// goofys cannot patch objects: writes replace them wholesale.
			data, err := m.store.Get(key)
			if err != nil {
				return nil, err
			}
			f.wbuf = data
		}
	}
	if flags.Has(types.OAppend) {
		f.offset = f.size
	}
	return f, nil
}

// file is one goofys handle. Writes buffer in memory (streamed out on
// Sync/Close); sequential reads ride the prefetch pipeline.
type file struct {
	m     *Mount
	key   string
	flags types.OpenFlag

	mu     sync.Mutex
	size   int64
	offset int64
	wbuf   []byte
	dirty  bool
	closed bool
}

func (f *file) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wbuf != nil && int64(len(f.wbuf)) > f.size {
		return int64(len(f.wbuf))
	}
	return f.size
}

// ReadAt serves reads via the 400 MiB read-ahead pipeline: the first access
// begins a bulk transfer; sequential readers stream at full line rate.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	f.m.charge()
	m := f.m
	m.mu.Lock()
	rs := m.readBuf[f.key]
	if rs == nil {
		size, err := m.store.Head(f.key)
		if err != nil {
			m.mu.Unlock()
			return 0, fmt.Errorf("goofys: read %q: %w", f.key, types.ErrNotExist)
		}
		rs = &readState{totalSize: size}
		m.readBuf[f.key] = rs
	}
	m.mu.Unlock()

	// Ensure the window covering [off, off+len(p)) plus the read-ahead is
	// fetched. The transfer is charged through the store (sized GETs) in
	// part-size pieces, which models goofys's parallel ranged GETs.
	need := off + int64(len(p))
	if need > rs.totalSize {
		need = rs.totalSize
	}
	target := need + m.opts.Readahead
	if target > rs.totalSize {
		target = rs.totalSize
	}
	m.mu.Lock()
	fetched := rs.fetched
	m.mu.Unlock()
	if fetched < target {
		// Parallel ranged GETs in PartSize pieces up to the read-ahead
		// window — goofys's defining optimization. All parts of the window
		// transfer concurrently, so sequential readers see line rate.
		if rs.data == nil {
			rs.data = make([]byte, rs.totalSize)
		}
		g := sim.NewGroup(m.env)
		var gerr error
		var gmu sync.Mutex
		for off := fetched; off < target; off += m.opts.PartSize {
			off := off
			n := m.opts.PartSize
			if r := rs.totalSize - off; n > r {
				n = r
			}
			g.Go(func() {
				part, err := m.store.GetRange(f.key, off, n)
				gmu.Lock()
				defer gmu.Unlock()
				if err != nil && gerr == nil {
					gerr = err
					return
				}
				copy(rs.data[off:], part)
			})
		}
		g.Wait()
		if gerr != nil {
			return 0, gerr
		}
		m.mu.Lock()
		if target > rs.fetched {
			rs.fetched = target
		}
		m.mu.Unlock()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(rs.data)) {
		return 0, io.EOF
	}
	n := copy(p, rs.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	f.m.charge()
	if !f.flags.WantsWrite() {
		return 0, types.ErrBadFD
	}
	f.mu.Lock()
	end := off + int64(len(p))
	if end > int64(len(f.wbuf)) {
		grown := make([]byte, end)
		copy(grown, f.wbuf)
		f.wbuf = grown
	}
	copy(f.wbuf[off:], p)
	f.dirty = true
	f.mu.Unlock()
	return len(p), nil
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	if f.flags.Has(types.OAppend) {
		off = int64(len(f.wbuf))
	}
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.offset = offset
	case io.SeekCurrent:
		f.offset += offset
	case io.SeekEnd:
		f.offset = f.size + offset
	default:
		return 0, types.ErrInval
	}
	return f.offset, nil
}

// Sync streams the buffered object out (multipart upload equivalent).
func (f *file) Sync() error {
	f.m.charge()
	f.mu.Lock()
	dirty := f.dirty
	data := f.wbuf
	f.mu.Unlock()
	if !dirty {
		return nil
	}
	if err := f.m.store.Put(f.key, data); err != nil {
		return err
	}
	f.mu.Lock()
	f.dirty = false
	f.size = int64(len(data))
	f.mu.Unlock()
	f.m.mu.Lock()
	delete(f.m.readBuf, f.key) // a rewrite invalidates the prefetch state
	f.m.mu.Unlock()
	return nil
}

// Fsync implements the context-aware flush; the simulated upload has no
// cancellation points, so it reduces to Sync.
func (f *file) Fsync(context.Context) error { return f.Sync() }

func (f *file) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	return f.Sync()
}

// DropAllCaches evicts prefetch state (benchmark cache-drop step).
func (m *Mount) DropAllCaches() { m.DropCaches() }

// DropCaches evicts prefetch state (benchmark cache-drop step).
func (m *Mount) DropCaches() {
	m.mu.Lock()
	m.readBuf = make(map[string]*readState)
	m.mu.Unlock()
}
