package sim

import (
	"testing"
	"time"
)

func TestMutexExcludesAcrossVirtualBlocking(t *testing.T) {
	// Two tasks each hold the mutex across a virtual sleep: the total
	// elapsed time must be the sum (mutual exclusion), and the clock keeps
	// advancing (waiters park properly instead of spinning on a futex).
	env := NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		mu := NewMutex(env)
		g := NewGroup(env)
		start := env.Now()
		for i := 0; i < 4; i++ {
			g.Go(func() {
				mu.Lock()
				defer mu.Unlock()
				env.Sleep(10 * time.Millisecond)
			})
		}
		g.Wait()
		elapsed = env.Now() - start
	})
	if elapsed != 40*time.Millisecond {
		t.Fatalf("4 critical sections of 10ms took %v, want 40ms", elapsed)
	}
}

func TestMutexFIFOUnderRealEnv(t *testing.T) {
	env := NewRealEnv()
	defer env.Shutdown()
	mu := NewMutex(env)
	counter := 0
	g := NewGroup(env)
	for i := 0; i < 50; i++ {
		g.Go(func() {
			mu.Lock()
			counter++
			mu.Unlock()
		})
	}
	g.Wait()
	if counter != 50 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestMutexDegradesAfterShutdown(t *testing.T) {
	env := NewVirtEnv()
	var locked bool
	env.Run(func() {
		mu := NewMutex(env)
		mu.Lock() // never unlocked
		env.Shutdown()
		mu.Lock() // must not wedge after shutdown
		locked = true
	})
	if !locked {
		t.Fatal("Lock blocked after Shutdown")
	}
}
