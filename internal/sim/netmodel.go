package sim

import "time"

// NetModel describes a network link class: one-way latency plus bandwidth.
// The benchmark profiles configure one model per link type (client↔lease
// manager, client↔client, client↔object store, external storage).
type NetModel struct {
	// Latency is the one-way propagation + protocol-stack delay per message.
	Latency time.Duration
	// Bandwidth is the sustained throughput in bytes per second; zero means
	// unlimited (only latency applies).
	Bandwidth int64
}

// TransferTime returns the one-way delay for a message of size bytes.
func (m NetModel) TransferTime(size int64) time.Duration {
	d := m.Latency
	if m.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / float64(m.Bandwidth) * float64(time.Second))
	}
	return d
}

// CostModel bundles the per-operation CPU charges the simulation applies on
// the client side. These stand in for the costs the paper attributes to the
// FUSE framework and to local metadata work.
type CostModel struct {
	// FUSEOverhead is the user/kernel round-trip charged per FUSE request
	// (zero when modelling a kernel mount).
	FUSEOverhead time.Duration
	// LocalMetaOp is the in-memory metadata table operation cost.
	LocalMetaOp time.Duration
	// MemCopyPerByte charges for cache memcpy work.
	MemCopyPerByte time.Duration
}

// MemCopy returns the charge for copying n bytes.
func (c CostModel) MemCopy(n int64) time.Duration {
	return time.Duration(float64(n) * float64(c.MemCopyPerByte))
}
