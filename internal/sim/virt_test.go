package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtSleepAdvancesClock(t *testing.T) {
	env := NewVirtEnv()
	env.Run(func() {
		if env.Now() != 0 {
			t.Errorf("epoch: %v", env.Now())
		}
		env.Sleep(5 * time.Second)
		if env.Now() != 5*time.Second {
			t.Errorf("after sleep: %v", env.Now())
		}
		env.Sleep(time.Millisecond)
		if env.Now() != 5*time.Second+time.Millisecond {
			t.Errorf("after second sleep: %v", env.Now())
		}
	})
}

func TestVirtParallelSleepersShareTime(t *testing.T) {
	// 100 goroutines each "work" 1s concurrently: virtual completion is 1s,
	// not 100s.
	env := NewVirtEnv()
	var done time.Duration
	env.Run(func() {
		g := NewGroup(env)
		for i := 0; i < 100; i++ {
			g.Go(func() { env.Sleep(time.Second) })
		}
		g.Wait()
		done = env.Now()
	})
	if done != time.Second {
		t.Fatalf("parallel sleep finished at %v, want 1s", done)
	}
}

func TestVirtSerializedServerQueueing(t *testing.T) {
	// One server with 10ms service time and 10 clients: the last response
	// arrives at 100ms — pure queueing, the property the MDS model needs.
	env := NewVirtEnv()
	var last time.Duration
	env.Run(func() {
		req := NewChan[*Chan[struct{}]](env)
		env.Go(func() {
			for {
				reply, ok := req.Recv()
				if !ok {
					return
				}
				env.Sleep(10 * time.Millisecond)
				reply.Send(struct{}{})
			}
		})
		g := NewGroup(env)
		for i := 0; i < 10; i++ {
			g.Go(func() {
				reply := NewChan[struct{}](env)
				req.Send(reply)
				reply.Recv()
				e := env.Now()
				if e > last {
					last = e
				}
			})
		}
		g.Wait()
	})
	if last != 100*time.Millisecond {
		t.Fatalf("last completion at %v, want 100ms", last)
	}
}

func TestVirtChanFIFO(t *testing.T) {
	env := NewVirtEnv()
	env.Run(func() {
		ch := NewChan[int](env)
		for i := 0; i < 10; i++ {
			ch.Send(i)
		}
		for i := 0; i < 10; i++ {
			v, ok := ch.Recv()
			if !ok || v != i {
				t.Fatalf("recv %d: got %d ok=%v", i, v, ok)
			}
		}
	})
}

func TestVirtChanCloseWakesReceiver(t *testing.T) {
	env := NewVirtEnv()
	env.Run(func() {
		ch := NewChan[int](env)
		g := NewGroup(env)
		g.Go(func() {
			if _, ok := ch.Recv(); ok {
				t.Error("recv on closed chan returned ok")
			}
		})
		env.Sleep(time.Millisecond)
		ch.Close()
		g.Wait()
	})
}

func TestVirtRecvTimeout(t *testing.T) {
	env := NewVirtEnv()
	env.Run(func() {
		ch := NewChan[int](env)
		start := env.Now()
		_, ok, timedOut := ch.RecvTimeout(50 * time.Millisecond)
		if ok || !timedOut {
			t.Fatalf("want timeout, got ok=%v timedOut=%v", ok, timedOut)
		}
		if env.Now()-start != 50*time.Millisecond {
			t.Fatalf("timeout took %v", env.Now()-start)
		}
		// Value arriving before deadline wins.
		env.Go(func() {
			env.Sleep(10 * time.Millisecond)
			ch.Send(7)
		})
		v, ok, timedOut := ch.RecvTimeout(time.Hour)
		if !ok || timedOut || v != 7 {
			t.Fatalf("got v=%d ok=%v timedOut=%v", v, ok, timedOut)
		}
	})
}

func TestVirtAfterAndCancel(t *testing.T) {
	env := NewVirtEnv()
	var fired, cancelled atomic.Int32
	env.Run(func() {
		env.After(10*time.Millisecond, func() { fired.Add(1) })
		cancel := env.After(20*time.Millisecond, func() { cancelled.Add(1) })
		if !cancel() {
			t.Error("cancel should succeed before firing")
		}
		env.Sleep(time.Second)
	})
	if fired.Load() != 1 {
		t.Errorf("fired = %d, want 1", fired.Load())
	}
	if cancelled.Load() != 0 {
		t.Errorf("cancelled callback ran")
	}
}

func TestVirtDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	env := NewVirtEnv()
	env.Run(func() {
		ch := NewChan[int](env)
		ch.Recv() // nothing will ever send
	})
}

func TestVirtShutdownStopsBackgroundLoops(t *testing.T) {
	env := NewVirtEnv()
	var ticks atomic.Int32
	env.Run(func() {
		env.Go(func() {
			for !env.Stopped() {
				env.Sleep(time.Second)
				ticks.Add(1)
			}
		})
		env.Sleep(3500 * time.Millisecond)
	})
	// Run calls Shutdown on exit; the loop must have stopped by now.
	n := ticks.Load()
	if n < 3 {
		t.Fatalf("loop ticked %d times, want >=3", n)
	}
}

func TestVirtDeterministicOrdering(t *testing.T) {
	// Two runs of the same event program produce identical completion times.
	run := func() []time.Duration {
		env := NewVirtEnv()
		out := make([]time.Duration, 5)
		env.Run(func() {
			g := NewGroup(env)
			for i := 0; i < 5; i++ {
				i := i
				g.Go(func() {
					env.Sleep(time.Duration(i+1) * 7 * time.Millisecond)
					out[i] = env.Now()
				})
			}
			g.Wait()
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRealEnvBasics(t *testing.T) {
	env := NewRealEnv()
	start := env.Now()
	env.Sleep(5 * time.Millisecond)
	if env.Now()-start < 4*time.Millisecond {
		t.Fatal("real sleep too short")
	}
	ch := NewChan[int](env)
	env.Go(func() { ch.Send(42) })
	if v, ok := ch.Recv(); !ok || v != 42 {
		t.Fatalf("got %d ok=%v", v, ok)
	}
	_, ok, timedOut := ch.RecvTimeout(5 * time.Millisecond)
	if ok || !timedOut {
		t.Fatalf("want timeout, ok=%v timedOut=%v", ok, timedOut)
	}
	var n atomic.Int32
	cancel := env.After(time.Hour, func() { n.Add(1) })
	if !cancel() {
		t.Error("cancel failed")
	}
	env.Shutdown()
	start2 := time.Now()
	env.Sleep(time.Hour) // must return immediately after shutdown
	if time.Since(start2) > time.Second {
		t.Fatal("sleep after shutdown did not return promptly")
	}
}

func TestRealEnvShutdownWakesSleepers(t *testing.T) {
	env := NewRealEnv()
	done := make(chan struct{})
	go func() {
		env.Sleep(time.Hour)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	env.Shutdown()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper not woken by Shutdown")
	}
}

func TestNetModelTransferTime(t *testing.T) {
	m := NetModel{Latency: time.Millisecond, Bandwidth: 1 << 30} // 1 GiB/s
	if got := m.TransferTime(0); got != time.Millisecond {
		t.Errorf("zero-size transfer: %v", got)
	}
	got := m.TransferTime(1 << 30)
	want := time.Millisecond + time.Second
	if got != want {
		t.Errorf("1GiB transfer: %v, want %v", got, want)
	}
	unlimited := NetModel{Latency: time.Microsecond}
	if unlimited.TransferTime(1<<40) != time.Microsecond {
		t.Error("unlimited bandwidth should only charge latency")
	}
}
