package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// VirtEnv is a discrete-event virtual-clock environment. Tracked goroutines
// run real Go code, but time only advances when every tracked goroutine is
// parked in an Env blocking call; the parking goroutine then advances the
// clock to the earliest pending event ("last one out turns the clock").
//
// This reproduces queueing behavior — server serialization, RTT stacking,
// bandwidth sharing — for hundreds of simulated clients in milliseconds of
// wall time, which is how the paper's 512-client figures are regenerated.
type VirtEnv struct {
	mu      sync.Mutex // guards every field below and all virtChan state
	now     time.Duration
	running int // tracked goroutines currently runnable
	parked  int // goroutines blocked in chan recv (not represented by events)
	events  eventHeap
	seq     int64
	stopped bool
	chans   []*virtChan // registry so Shutdown can wake every parked receiver
}

// NewVirtEnv returns a virtual environment at time zero with no tracked
// goroutines. Call Run to execute a simulation.
func NewVirtEnv() *VirtEnv { return &VirtEnv{} }

type event struct {
	at  time.Duration
	seq int64
	// fire runs with env.mu held; it must only adjust counters and close
	// wake channels (or spawn goroutines), never block or re-lock.
	fire func()
	// onShutdown: fire this event during Shutdown (sleep and timeout wakes);
	// plain After callbacks are dropped instead.
	onShutdown bool
	cancelled  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Run registers the calling goroutine as tracked, executes fn, and then
// shuts the environment down (waking any still-parked background loops so
// they can exit). fn must wait for all work it cares about, e.g. via Group.
func (e *VirtEnv) Run(fn func()) {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		panic("sim: Run on a shut-down VirtEnv")
	}
	e.running++
	e.mu.Unlock()
	defer func() {
		e.Shutdown()
		e.mu.Lock()
		e.running--
		e.mu.Unlock()
	}()
	fn()
}

// Now implements Env.
func (e *VirtEnv) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Sleep implements Env. The caller must be a tracked goroutine.
func (e *VirtEnv) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	e.pushLocked(&event{
		at:         e.now + d,
		fire:       func() { e.running++; close(ch) },
		onShutdown: true,
	})
	e.blockLocked()
	e.mu.Unlock()
	<-ch
}

// Go implements Env.
func (e *VirtEnv) Go(fn func()) {
	e.mu.Lock()
	e.running++
	e.mu.Unlock()
	go func() {
		defer e.goroutineExit()
		fn()
	}()
}

// After implements Env.
func (e *VirtEnv) After(d time.Duration, fn func()) func() bool {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ev := &event{at: e.now + d}
	ev.fire = func() {
		e.running++
		go func() {
			defer e.goroutineExit()
			fn()
		}()
	}
	e.pushLocked(ev)
	return func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		was := ev.cancelled
		ev.cancelled = true
		return !was
	}
}

// Shutdown implements Env: wakes every sleeper and parked receiver, drops
// pending After callbacks, and makes future Sleeps no-ops.
func (e *VirtEnv) Shutdown() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return
	}
	e.stopped = true
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if !ev.cancelled && ev.onShutdown {
			ev.fire()
		}
	}
	for _, c := range e.chans {
		c.wakeAllLocked(false)
	}
}

// Stopped implements Env.
func (e *VirtEnv) Stopped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stopped
}

func (e *VirtEnv) goroutineExit() {
	e.mu.Lock()
	e.running--
	if e.running == 0 {
		e.advanceLocked()
	}
	e.mu.Unlock()
}

func (e *VirtEnv) pushLocked(ev *event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
}

// blockLocked marks the caller as no longer runnable and advances the clock
// if it was the last one.
func (e *VirtEnv) blockLocked() {
	e.running--
	if e.running == 0 {
		e.advanceLocked()
	}
}

// advanceLocked moves virtual time forward to the earliest pending event and
// fires every event due at that instant, repeating until some goroutine is
// runnable again. Called with e.mu held whenever running reaches zero.
func (e *VirtEnv) advanceLocked() {
	for e.running == 0 {
		// Skip cancelled events.
		for len(e.events) > 0 && e.events[0].cancelled {
			heap.Pop(&e.events)
		}
		if len(e.events) == 0 {
			if e.parked > 0 && !e.stopped {
				// Release the scheduler lock before panicking so deferred
				// Shutdown calls on the unwinding path can still run.
				msg := fmt.Sprintf(
					"sim: deadlock at t=%v: %d goroutine(s) parked on channels with no pending events",
					e.now, e.parked)
				e.mu.Unlock()
				panic(msg)
			}
			return // simulation quiesced
		}
		t := e.events[0].at
		if t > e.now {
			e.now = t
		}
		for len(e.events) > 0 && e.events[0].at <= e.now {
			ev := heap.Pop(&e.events).(*event)
			if !ev.cancelled {
				ev.fire()
			}
		}
	}
}

func (e *VirtEnv) newChanCore() chanCore {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &virtChan{env: e}
	e.chans = append(e.chans, c)
	return c
}

// virtChan shares the env lock so that park/wake and clock advancement are
// one atomic step — there is no lost-wakeup window.
type virtChan struct {
	env     *VirtEnv
	queue   []any
	waiters []*vWaiter
	closed  bool
}

type vWaiter struct {
	ch   chan struct{}
	v    any
	ok   bool
	done bool
}

func (c *virtChan) send(v any) bool {
	e := c.env
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.closed {
		return false
	}
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.done {
			continue
		}
		w.done, w.v, w.ok = true, v, true
		e.parked--
		e.running++
		close(w.ch)
		return true
	}
	c.queue = append(c.queue, v)
	return true
}

func (c *virtChan) recv() (any, bool) { return c.recvDeadline(-1) }

func (c *virtChan) recvTimeout(d time.Duration) (any, bool, bool) {
	v, ok := c.recvDeadline(d)
	if !ok && !c.isClosed() {
		return nil, false, true
	}
	return v, ok, false
}

// recvDeadline blocks for a value; d < 0 means no deadline. Returns ok=false
// on close/shutdown/timeout; recvTimeout disambiguates timeout after the
// fact via isClosed, which is a benign race acceptable for its users
// (lease-protocol timeouts).
func (c *virtChan) recvDeadline(d time.Duration) (any, bool) {
	e := c.env
	e.mu.Lock()
	if len(c.queue) > 0 {
		v := c.popLocked()
		e.mu.Unlock()
		return v, true
	}
	if c.closed || e.stopped {
		e.mu.Unlock()
		return nil, false
	}
	w := &vWaiter{ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	e.parked++
	if d >= 0 {
		e.pushLocked(&event{
			at:         e.now + d,
			onShutdown: true,
			fire: func() {
				if w.done {
					return
				}
				w.done = true
				e.parked--
				e.running++
				close(w.ch)
			},
		})
	}
	e.blockLocked()
	e.mu.Unlock()
	<-w.ch
	return w.v, w.ok
}

func (c *virtChan) tryRecv() (any, bool) {
	e := c.env
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, false
	}
	return c.popLocked(), true
}

func (c *virtChan) popLocked() any {
	v := c.queue[0]
	c.queue[0] = nil
	c.queue = c.queue[1:]
	return v
}

func (c *virtChan) close() {
	e := c.env
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.wakeAllLocked(false)
}

// wakeAllLocked releases every parked receiver with the given ok value.
func (c *virtChan) wakeAllLocked(ok bool) {
	for _, w := range c.waiters {
		if w.done {
			continue
		}
		w.done, w.ok = true, ok
		c.env.parked--
		c.env.running++
		close(w.ch)
	}
	c.waiters = nil
}

func (c *virtChan) isClosed() bool {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	return c.closed || c.env.stopped
}

func (c *virtChan) len() int {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	return len(c.queue)
}
