// Package sim provides the execution environment abstraction that lets every
// ArkFS component run unchanged in two modes:
//
//   - RealEnv: wall-clock time, ordinary goroutines — used by unit and
//     integration tests and by the live cmd/ tools.
//   - VirtEnv: a discrete-event virtual clock — used by the benchmark harness
//     to reproduce the paper's 512-client experiments deterministically on a
//     single machine.
//
// Components must follow one rule: any operation that can block across
// simulated time goes through the Env (Sleep, Chan send/recv, Group.Wait).
// Plain sync.Mutex use is fine as long as a lock is never held across an Env
// blocking call.
package sim

import "time"

// Env is the execution environment: a clock plus tracked goroutines and
// blocking primitives. All times are durations since the environment's epoch.
type Env interface {
	// Now returns the current (virtual or wall) time since the epoch.
	Now() time.Duration
	// Sleep pauses the calling goroutine for d. In a VirtEnv that has been
	// shut down, Sleep returns immediately.
	Sleep(d time.Duration)
	// Go runs fn on a tracked goroutine. Every goroutine that uses Env
	// blocking calls must be started via Go (or be the one inside Run).
	Go(fn func())
	// After schedules fn to run on a tracked goroutine at Now()+d.
	// It returns a cancel function; cancel reports whether it prevented fn.
	After(d time.Duration, fn func()) (cancel func() bool)
	// Shutdown wakes all sleepers immediately and makes subsequent Sleeps
	// no-ops, so background loops can observe their stop flags and exit.
	Shutdown()
	// Stopped reports whether Shutdown has been called.
	Stopped() bool

	// newChanCore returns the untyped blocking-queue implementation backing
	// Chan[T]. Internal: use NewChan.
	newChanCore() chanCore
}

// chanCore is an unbounded FIFO queue with env-aware blocking receive.
// Sends never block (the queue is unbounded), which keeps the virtual-clock
// scheduler simple; bounded behavior, where needed, is built above this.
type chanCore interface {
	send(v any) bool // false if the channel is closed
	recv() (v any, ok bool)
	recvTimeout(d time.Duration) (v any, ok bool, timedOut bool)
	tryRecv() (v any, ok bool)
	close()
	len() int
}

// Chan is a typed, unbounded, env-aware channel. The zero value is not
// usable; create one with NewChan.
type Chan[T any] struct {
	core chanCore
}

// NewChan creates a channel bound to env.
func NewChan[T any](env Env) *Chan[T] {
	return &Chan[T]{core: env.newChanCore()}
}

// Send enqueues v. It never blocks. It reports false if the channel is
// closed (the value is dropped).
func (c *Chan[T]) Send(v T) bool { return c.core.send(v) }

// Recv blocks until a value is available or the channel is closed and
// drained; ok is false in the latter case.
func (c *Chan[T]) Recv() (T, bool) {
	v, ok := c.core.recv()
	if !ok {
		var zero T
		return zero, false
	}
	return cast[T](v), true
}

// RecvTimeout is Recv with a deadline d from now.
func (c *Chan[T]) RecvTimeout(d time.Duration) (v T, ok bool, timedOut bool) {
	raw, ok, timedOut := c.core.recvTimeout(d)
	if !ok {
		var zero T
		return zero, false, timedOut
	}
	return cast[T](raw), true, false
}

// TryRecv returns immediately; ok is false if no value was ready.
func (c *Chan[T]) TryRecv() (T, bool) {
	v, ok := c.core.tryRecv()
	if !ok {
		var zero T
		return zero, false
	}
	return cast[T](v), true
}

// cast converts a queued any back to T, mapping a nil interface (e.g. a nil
// error sent through Chan[error]) to T's zero value.
func cast[T any](v any) T {
	if v == nil {
		var zero T
		return zero
	}
	return v.(T)
}

// Close closes the channel. Pending values can still be received.
func (c *Chan[T]) Close() { c.core.close() }

// Len returns the number of queued values.
func (c *Chan[T]) Len() int { return c.core.len() }

// Mutex is an env-aware mutual-exclusion lock that is safe to hold across
// Env blocking calls (Sleep, Chan operations): waiting lockers park through
// the environment, so a VirtEnv can keep advancing its clock. A plain
// sync.Mutex must never be held across such calls.
type Mutex struct {
	tok *Chan[struct{}]
}

// NewMutex creates an unlocked mutex bound to env.
func NewMutex(env Env) *Mutex {
	m := &Mutex{tok: NewChan[struct{}](env)}
	m.tok.Send(struct{}{})
	return m
}

// Lock acquires the mutex. After environment shutdown it degrades to a
// no-op so teardown paths cannot wedge.
func (m *Mutex) Lock() { m.tok.Recv() }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.tok.Send(struct{}{}) }

// Group is an env-aware WaitGroup built on Chan: each task sends one token
// on completion and Wait receives one per task.
type Group struct {
	env   Env
	done  *Chan[struct{}]
	count int
}

// NewGroup creates an empty group.
func NewGroup(env Env) *Group {
	return &Group{env: env, done: NewChan[struct{}](env)}
}

// Go runs fn on a tracked goroutine and registers it with the group.
// It must not race with Wait.
func (g *Group) Go(fn func()) {
	g.count++
	g.env.Go(func() {
		defer g.done.Send(struct{}{})
		fn()
	})
}

// Wait blocks until every registered task has finished.
func (g *Group) Wait() {
	for ; g.count > 0; g.count-- {
		g.done.Recv()
	}
}
