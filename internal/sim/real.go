package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// RealEnv runs on the wall clock with ordinary goroutines. It is the
// environment used by tests of functional behavior and by the live tools.
type RealEnv struct {
	epoch   time.Time
	stopped atomic.Bool
	// sleepers are woken early by Shutdown.
	mu       sync.Mutex
	sleepers map[chan struct{}]struct{}
}

// NewRealEnv returns a wall-clock environment whose epoch is now.
func NewRealEnv() *RealEnv {
	return &RealEnv{epoch: time.Now(), sleepers: make(map[chan struct{}]struct{})}
}

// Now implements Env.
func (e *RealEnv) Now() time.Duration { return time.Since(e.epoch) }

// Sleep implements Env; Shutdown interrupts it.
func (e *RealEnv) Sleep(d time.Duration) {
	if d <= 0 || e.stopped.Load() {
		return
	}
	ch := make(chan struct{})
	e.mu.Lock()
	e.sleepers[ch] = struct{}{}
	e.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ch:
	}
	e.mu.Lock()
	delete(e.sleepers, ch)
	e.mu.Unlock()
}

// Go implements Env.
func (e *RealEnv) Go(fn func()) { go fn() }

// After implements Env.
func (e *RealEnv) After(d time.Duration, fn func()) func() bool {
	t := time.AfterFunc(d, fn)
	return t.Stop
}

// Shutdown implements Env.
func (e *RealEnv) Shutdown() {
	if e.stopped.Swap(true) {
		return
	}
	e.mu.Lock()
	for ch := range e.sleepers {
		close(ch)
	}
	e.sleepers = make(map[chan struct{}]struct{})
	e.mu.Unlock()
}

// Stopped implements Env.
func (e *RealEnv) Stopped() bool { return e.stopped.Load() }

func (e *RealEnv) newChanCore() chanCore { return newRealChan() }

// realChan is an unbounded queue with cond-based blocking.
type realChan struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []any
	closed bool
}

func newRealChan() *realChan {
	c := &realChan{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *realChan) send(v any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.queue = append(c.queue, v)
	c.cond.Signal()
	return true
}

func (c *realChan) recv() (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	return c.popLocked()
}

func (c *realChan) recvTimeout(d time.Duration) (any, bool, bool) {
	deadline := time.Now().Add(d)
	timedOut := false
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		timedOut = true
		c.mu.Unlock()
		c.cond.Broadcast()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		if timedOut || !time.Now().Before(deadline) {
			return nil, false, true
		}
		c.cond.Wait()
	}
	v, ok := c.popLocked()
	return v, ok, false
}

func (c *realChan) tryRecv() (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil, false
	}
	return c.popLocked()
}

// popLocked removes the queue head; callers hold c.mu and have ensured the
// queue is non-empty or the channel closed.
func (c *realChan) popLocked() (any, bool) {
	if len(c.queue) == 0 {
		return nil, false
	}
	v := c.queue[0]
	c.queue[0] = nil
	c.queue = c.queue[1:]
	return v, true
}

func (c *realChan) close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Broadcast()
}

func (c *realChan) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}
