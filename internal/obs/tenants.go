package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTenantK is the tenant-table capacity a fresh registry starts with.
// Deployments with more concurrent tenants than this keep bounded memory but
// trade exact counts for space-saving bounds on the cold tail.
const DefaultTenantK = 64

// TenantTable attributes resource usage to tenants with bounded cardinality:
// a space-saving top-K sketch. At most K tenants are tracked at once; when a
// new tenant arrives at a full table, the entry with the smallest sketch
// weight is evicted and the newcomer inherits weight+1 with that weight
// recorded as its error bound. Heavy hitters are therefore always present
// with near-exact counts (exact once admitted and never evicted), while the
// long tail of cold tenants shares the low-weight slots — fixed memory under
// millions of distinct clients.
//
// Determinism: admissions and evictions depend on arrival order, so the
// table's contents are only schedule-invariant when the run's distinct
// tenants fit within K (no evictions ever happen). The seeded harnesses run
// in that regime, which is what lets tenant counts fold into the chaos
// fingerprint. Eviction ties break lexicographically so that even degenerate
// single-threaded overflow runs replay identically.
//
// A nil *TenantTable is the disabled sink: every method no-ops.
type TenantTable struct {
	k  int
	mu sync.RWMutex
	m  map[string]*tenantEntry
}

// tenantEntry is one tracked tenant. All counters are atomic: the fast path
// touches the table's RWMutex only for the map lookup.
type tenantEntry struct {
	weight   atomic.Int64 // space-saving rank: ops since admission + inherited debt
	errBound atomic.Int64 // inherited overestimation at admission (0 = exact)

	ops, errs, retries      atomic.Int64
	bytesRead, bytesWritten atomic.Int64
	lat, wait, svc          Histogram
}

// NewTenantTable creates a table tracking at most k tenants (k <= 0 uses
// DefaultTenantK).
func NewTenantTable(k int) *TenantTable {
	if k <= 0 {
		k = DefaultTenantK
	}
	return &TenantTable{k: k, m: make(map[string]*tenantEntry, k)}
}

// lookup returns the entry for tenant if already tracked.
func (t *TenantTable) lookup(tenant string) *tenantEntry {
	t.mu.RLock()
	e := t.m[tenant]
	t.mu.RUnlock()
	return e
}

// entry returns the entry for tenant, admitting it (and evicting the
// minimum-weight victim when full) if needed.
func (t *TenantTable) entry(tenant string) *tenantEntry {
	if e := t.lookup(tenant); e != nil {
		return e
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.m[tenant]; e != nil { // raced another admitter
		return e
	}
	e := &tenantEntry{}
	if len(t.m) >= t.k {
		// Space-saving eviction: smallest weight, lexicographically smallest
		// name on ties.
		var victim string
		var min int64
		for name, cand := range t.m {
			w := cand.weight.Load()
			if victim == "" || w < min || (w == min && name < victim) {
				victim, min = name, w
			}
		}
		delete(t.m, victim)
		e.weight.Store(min)
		e.errBound.Store(min)
	}
	t.m[tenant] = e
	return e
}

// Observe accounts one completed operation to tenant: its latency (with the
// trace as the bucket exemplar), error outcome, and retries consumed. An
// empty tenant means "unattributed" and is dropped. Nil-safe.
func (t *TenantTable) Observe(tenant string, d time.Duration, trace TraceID, isErr bool, retries int) {
	if t == nil || tenant == "" {
		return
	}
	e := t.entry(tenant)
	e.weight.Add(1)
	e.ops.Add(1)
	if isErr {
		e.errs.Add(1)
	}
	if retries > 0 {
		e.retries.Add(int64(retries))
	}
	e.lat.ObserveTrace(d, trace)
}

// AddBytes accounts data-path bytes to tenant. Nil-safe.
func (t *TenantTable) AddBytes(tenant string, read, written int64) {
	if t == nil || tenant == "" {
		return
	}
	e := t.entry(tenant)
	e.bytesRead.Add(read)
	e.bytesWritten.Add(written)
}

// ObserveWait accounts one served request's queue-wait/service-time split to
// tenant (the enqueue→start and start→done phases). It does not bump the
// op count: waits are measured at the transport under the op, not once per
// op. Nil-safe.
func (t *TenantTable) ObserveWait(tenant string, wait, service time.Duration, trace TraceID) {
	if t == nil || tenant == "" {
		return
	}
	e := t.entry(tenant)
	e.wait.ObserveTrace(wait, trace)
	e.svc.ObserveTrace(service, trace)
}

// TenantSnapshot is the rendered state of one tracked tenant. Ops, errors,
// retries, and bytes are exact counts since the tenant was admitted; Weight
// and ErrBound are the space-saving sketch's rank and overestimation bound
// (ErrBound 0 means the weight — and every other count — is exact).
type TenantSnapshot struct {
	Weight       int64        `json:"weight"`
	ErrBound     int64        `json:"err_bound"`
	Ops          int64        `json:"ops"`
	Errs         int64        `json:"errs"`
	Retries      int64        `json:"retries"`
	BytesRead    int64        `json:"bytes_read"`
	BytesWritten int64        `json:"bytes_written"`
	Latency      HistSnapshot `json:"latency"`
	Wait         HistSnapshot `json:"wait"`
	Service      HistSnapshot `json:"service"`
}

// Snapshot renders the table as a plain map (sorted on marshal). Nil-safe: a
// nil table yields an empty non-nil map.
func (t *TenantTable) Snapshot() map[string]TenantSnapshot {
	out := map[string]TenantSnapshot{}
	if t == nil {
		return out
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for name, e := range t.m {
		out[name] = TenantSnapshot{
			Weight:       e.weight.Load(),
			ErrBound:     e.errBound.Load(),
			Ops:          e.ops.Load(),
			Errs:         e.errs.Load(),
			Retries:      e.retries.Load(),
			BytesRead:    e.bytesRead.Load(),
			BytesWritten: e.bytesWritten.Load(),
			Latency:      e.lat.snapshot(),
			Wait:         e.wait.snapshot(),
			Service:      e.svc.snapshot(),
		}
	}
	return out
}

// Len returns the number of tenants currently tracked (0 for nil).
func (t *TenantTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
