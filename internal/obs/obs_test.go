package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"arkfs/internal/types"
)

func TestNilSinksAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	c.Add(5)
	c.Inc()
	g.Set(9)
	g.Add(-2)
	h.Observe(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil sinks recorded values: %d %d %d", c.Value(), g.Value(), h.Count())
	}
	r.Func("y", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}

	var tr *Tracer
	sp := tr.Start("op", "/p")
	sp.SetRoute(RouteLocal)
	sp.SetDir(types.RootIno)
	sp.AddRetry()
	sp.End(nil)
	tr.SetProc("p")
	tr.SetSeed(1)
	tr.OnCommit(func(Span) {})
	if tr.Total() != 0 || tr.Spans() != nil || tr.Dump(0) != "" || tr.Filter(nil) != nil {
		t.Fatal("nil tracer recorded spans")
	}
	if sc := tr.StartChild(SpanContext{}, "op", "/p").Context(); sc.Valid() {
		t.Fatal("nil tracer minted a span context")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.Func("ext", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["ops"] != 4 || s.Counters["ext"] != 42 || s.Gauges["depth"] != 4 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 samples at ~1µs, 10 at ~1ms: p50 in the 1µs bucket, p99 at 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50 != int64(time.Microsecond) {
		t.Fatalf("p50 = %d, want %d", s.P50, int64(time.Microsecond))
	}
	// Quantiles are bucket upper bounds: 1ms lands in the (512µs, 1024µs]
	// bucket, so p99 reports 1024µs.
	if want := int64(1024 * time.Microsecond); s.P99 != want {
		t.Fatalf("p99 = %d, want %d", s.P99, want)
	}
	if s.MaxNanos != int64(time.Millisecond) {
		t.Fatalf("max = %d, want %d", s.MaxNanos, int64(time.Millisecond))
	}
	if got := s.MeanNanos(); got <= 0 {
		t.Fatalf("mean = %d, want > 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(10 * time.Minute) // beyond the last bounded bucket
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 1 || s.P99 != int64(10*time.Minute) {
		t.Fatalf("overflow sample: %+v", s)
	}
}

func TestSnapshotJSONAndFingerprintDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Set(3)
		r.Histogram("h").Observe(time.Microsecond)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if string(s1.JSON()) != string(s2.JSON()) {
		t.Fatal("JSON not deterministic across identical registries")
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	var parsed Snapshot
	if err := json.Unmarshal(s1.JSON(), &parsed); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	fp := s1.Fingerprint()
	for _, want := range []string{"c a 1\n", "c b 2\n", "g g 3\n", "h h 1\n"} {
		if !strings.Contains(fp, want) {
			t.Fatalf("fingerprint missing %q:\n%s", want, fp)
		}
	}
	if s1.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestFingerprintExcludesLatency(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Histogram("h").Observe(time.Microsecond)
	r2.Histogram("h").Observe(time.Second) // same count, different latency
	if r1.Snapshot().Fingerprint() != r2.Snapshot().Fingerprint() {
		t.Fatal("fingerprint depends on latency values, not just counts")
	}
}

func TestTracerRing(t *testing.T) {
	var now time.Duration
	clock := func() time.Duration { return now }
	tr := NewTracer(3, clock)
	for i := 0; i < 5; i++ {
		sp := tr.Start("create", "/f")
		sp.SetRoute(RouteRemote)
		sp.SetDir(types.RootIno)
		sp.AddRetry()
		now += time.Millisecond
		sp.End(types.ErrExist)
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	s := spans[0]
	if s.Op != "create" || s.Route != RouteRemote || s.Retries != 1 ||
		s.Err != "EEXIST" || s.Dur != time.Millisecond {
		t.Fatalf("span fields wrong: %+v", s)
	}
	dump := tr.Dump(0)
	if !strings.Contains(dump, "create /f") || !strings.Contains(dump, "EEXIST") {
		t.Fatalf("dump missing fields:\n%s", dump)
	}
	if got := strings.Count(tr.Dump(2), "\n"); got != 2 {
		t.Fatalf("Dump(2) rendered %d spans, want 2", got)
	}
}

// TestHistogramEmptyQuantiles: an empty histogram snapshots to all zeros
// rather than garbage bucket bounds.
func TestHistogramEmptyQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat") // registered, never observed
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.MaxNanos != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", s)
	}
	if s.MeanNanos() != 0 {
		t.Fatalf("empty mean = %d, want 0", s.MeanNanos())
	}
}

// TestHistogramOverflowMixedQuantiles: with bounded and overflow samples
// mixed, low quantiles report bucket bounds and the top quantile reports the
// true max, never a nonsense bound from the overflow bucket.
func TestHistogramOverflowMixedQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(10 * time.Minute)
	s := r.Snapshot().Histograms["lat"]
	if s.P50 != int64(time.Microsecond) {
		t.Fatalf("p50 = %d, want %d", s.P50, int64(time.Microsecond))
	}
	if s.P99 != int64(time.Microsecond) {
		t.Fatalf("p99 = %d, want %d (rank 99 of 100)", s.P99, int64(time.Microsecond))
	}
	if s.MaxNanos != int64(10*time.Minute) {
		t.Fatalf("max = %d, want %d", s.MaxNanos, int64(10*time.Minute))
	}
}

// TestTraceIDsDeterministic: two tracers with the same seed mint identical
// ID sequences; different seeds diverge; IDs are never zero.
func TestTraceIDsDeterministic(t *testing.T) {
	mint := func(seed uint64) []SpanContext {
		tr := NewTracer(8, nil)
		tr.SetSeed(seed)
		var out []SpanContext
		for i := 0; i < 4; i++ {
			sp := tr.StartRoot("op", "/p")
			out = append(out, sp.Context())
			sp.End(nil)
		}
		return out
	}
	a, b, c := mint(7), mint(7), mint(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] == c[i] {
			t.Fatalf("different seeds collided at %d: %v", i, a[i])
		}
		if !a[i].Valid() || a[i].Span == 0 {
			t.Fatalf("invalid minted context: %v", a[i])
		}
	}
}

// TestStartChildParentLinks: children inherit the trace and point at their
// parent; a zero parent context degrades to a fresh root.
func TestStartChildParentLinks(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.SetProc("proc-a")
	root := tr.StartRoot("create", "/d/f")
	if root.Trace == 0 || SpanID(root.Trace) != root.ID || root.Parent != 0 {
		t.Fatalf("bad root identity: %+v", root)
	}
	child := tr.StartChild(root.Context(), "serve.Create", "/d/f")
	if child.Trace != root.Trace {
		t.Fatalf("child trace %v != root trace %v", child.Trace, root.Trace)
	}
	if child.Parent != root.ID || child.ID == root.ID {
		t.Fatalf("bad child linkage: %+v", child)
	}
	if child.Proc != "proc-a" {
		t.Fatalf("proc not stamped: %q", child.Proc)
	}
	orphan := tr.StartChild(SpanContext{}, "op", "/x")
	if orphan.Parent != 0 || orphan.Trace == 0 {
		t.Fatalf("zero parent should mint a root: %+v", orphan)
	}
	child.End(nil)
	root.End(nil)
	orphan.End(nil)
}

// TestTracerFilter: Filter selects by predicate, oldest first.
func TestTracerFilter(t *testing.T) {
	tr := NewTracer(8, nil)
	for i := 0; i < 3; i++ {
		tr.Start("stat", "/a").End(nil)
	}
	tr.Start("create", "/b").End(types.ErrExist)
	errs := tr.Filter(func(s Span) bool { return s.Err != "" })
	if len(errs) != 1 || errs[0].Op != "create" {
		t.Fatalf("error filter: %+v", errs)
	}
	if got := len(tr.Filter(func(s Span) bool { return s.Op == "stat" })); got != 3 {
		t.Fatalf("op filter matched %d, want 3", got)
	}
	if got := len(tr.Filter(nil)); got != 4 {
		t.Fatalf("nil predicate matched %d, want all 4", got)
	}
}

// TestTracerOnCommit: the commit hook sees every completed span.
func TestTracerOnCommit(t *testing.T) {
	tr := NewTracer(4, nil)
	var mu sync.Mutex
	var got []string
	tr.OnCommit(func(s Span) {
		mu.Lock()
		got = append(got, s.Op)
		mu.Unlock()
	})
	tr.Start("a", "/").End(nil)
	tr.Start("b", "/").End(nil)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hook saw %v", got)
	}
}

// TestRemoteSpanContextCarrier: the wire context round-trips through a ctx,
// and SpanContextFrom prefers a live local span over the incoming remote one.
func TestRemoteSpanContextCarrier(t *testing.T) {
	tr := NewTracer(4, nil)
	remote := SpanContext{Trace: 5, Span: 9}
	ctx := WithRemote(context.Background(), remote)
	if got := RemoteFrom(ctx); got != remote {
		t.Fatalf("RemoteFrom = %v, want %v", got, remote)
	}
	if got := SpanContextFrom(ctx); got != remote {
		t.Fatalf("SpanContextFrom without local span = %v, want remote %v", got, remote)
	}
	sp := tr.StartChild(remote, "serve", "/x")
	ctx = WithSpan(ctx, sp)
	if got := SpanContextFrom(ctx); got != sp.Context() {
		t.Fatalf("SpanContextFrom = %v, want local %v", got, sp.Context())
	}
	if got := RemoteFrom(context.Background()); got.Valid() {
		t.Fatalf("RemoteFrom on empty ctx = %v, want zero", got)
	}
	sp.End(nil)
}

func TestSpanContextCarrier(t *testing.T) {
	tr := NewTracer(4, nil)
	sp := tr.Start("stat", "/x")
	ctx := WithSpan(context.Background(), sp)
	if got := SpanFrom(ctx); got != sp {
		t.Fatal("SpanFrom did not return the carried span")
	}
	if got := SpanFrom(context.Background()); got != nil {
		t.Fatal("SpanFrom on empty ctx should be nil")
	}
	sp.End(nil)
	if tr.Total() != 1 {
		t.Fatal("span did not commit")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d", c.Value(), h.Count())
	}
}
