// Package expose serves a process's observability state over HTTP: Prometheus
// text-format metrics, the raw JSON snapshot, the trace ring with parent/child
// structure, a health probe, and net/http/pprof. Every arkfs binary mounts it
// behind an opt-in -debug-addr flag.
//
// The package only reads: it renders whatever registry and tracer rings it is
// given and never mutates them, so attaching it cannot perturb a seeded run's
// fingerprint.
package expose

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"arkfs/internal/obs"
)

// Options configures the debug server.
type Options struct {
	// Reg is the metrics registry rendered by /metrics and /stats.json. Nil
	// renders empty snapshots.
	Reg *obs.Registry
	// Tracers are the span rings queried by /traces — one per in-process
	// participant (each arkfs client and lease manager owns a ring).
	Tracers []*obs.Tracer
	// Health, when non-nil, is consulted by /healthz; a non-nil return means
	// 503. Nil reports healthy.
	Health func() error
}

// Server is a running debug endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (host:port; port 0 picks a free one).
func Serve(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("expose: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(o)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the debug mux without binding a socket, for embedding and
// tests.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "arkfs debug endpoints:\n"+
			"  /metrics      Prometheus text exposition (incl. per-tenant series)\n"+
			"  /stats.json   raw metrics snapshot\n"+
			"  /tenants.json per-tenant accounting table (?tenant=<id>)\n"+
			"  /traces       span rings (?trace=<id>|op=<op>|tenant=<id>|err=1&limit=N)\n"+
			"  /healthz      health probe\n"+
			"  /debug/pprof  runtime profiles\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, PrometheusText(o.Reg.Snapshot()))
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(o.Reg.Snapshot().JSON())
	})
	mux.HandleFunc("/tenants.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tenants := o.Reg.Tenants().Snapshot()
		if want := r.URL.Query().Get("tenant"); want != "" {
			filtered := make(map[string]obs.TenantSnapshot)
			if ts, ok := tenants[want]; ok {
				filtered[want] = ts
			}
			tenants = filtered
		}
		// Maps marshal with sorted keys, so the body is deterministic.
		out, err := json.MarshalIndent(tenants, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(out, '\n'))
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		q := r.URL.Query()
		var f TraceFilter
		if tid := q.Get("trace"); tid != "" {
			id, err := strconv.ParseUint(strings.TrimPrefix(tid, "0x"), 16, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+tid, http.StatusBadRequest)
				return
			}
			f.Trace = obs.TraceID(id)
		}
		f.Op = q.Get("op")
		f.Tenant = q.Get("tenant")
		f.ErrOnly = q.Get("err") == "1"
		f.Limit = 32
		if ls := q.Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				http.Error(w, "bad limit: "+ls, http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		fmt.Fprint(w, RenderTraces(collect(o.Tracers), f))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if o.Health != nil {
			if err := o.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func collect(tracers []*obs.Tracer) []obs.Span {
	var all []obs.Span
	for _, tr := range tracers {
		all = append(all, tr.Spans()...)
	}
	return all
}

// --- Prometheus text exposition ----------------------------------------------

// promName maps a dotted arkfs metric name to the Prometheus grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders a nanosecond quantity as Prometheus-convention seconds.
func promSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// PrometheusText renders a snapshot in the Prometheus text exposition format
// (version 0.0.4). Counters and gauges keep their values verbatim; latency
// histograms render as summaries with quantile labels, _sum, and _count, in
// seconds per Prometheus convention. Output is sorted, hence deterministic.
func PrometheusText(s obs.Snapshot) string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := promName(k)
		fmt.Fprintf(&b, "# HELP %s arkfs counter %s\n# TYPE %s counter\n%s %d\n",
			n, k, n, n, s.Counters[k])
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := promName(k)
		fmt.Fprintf(&b, "# HELP %s arkfs gauge %s\n# TYPE %s gauge\n%s %d\n",
			n, k, n, n, s.Gauges[k])
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := promName(k)
		h := s.Histograms[k]
		fmt.Fprintf(&b, "# HELP %s arkfs latency %s\n# TYPE %s summary\n", n, k, n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", n, promSeconds(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %s\n", n, promSeconds(h.P95))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", n, promSeconds(h.P99))
		fmt.Fprintf(&b, "%s_sum %s\n", n, promSeconds(h.SumNanos))
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
	}
	keys = keys[:0]
	for k := range s.Tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		tenantCounter := func(name, help string, value func(obs.TenantSnapshot) int64) {
			fmt.Fprintf(&b, "# HELP %s arkfs per-tenant %s\n# TYPE %s counter\n", name, help, name)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, k, value(s.Tenants[k]))
			}
		}
		tenantCounter("arkfs_tenant_ops", "operations", func(t obs.TenantSnapshot) int64 { return t.Ops })
		tenantCounter("arkfs_tenant_errors", "failed operations", func(t obs.TenantSnapshot) int64 { return t.Errs })
		tenantCounter("arkfs_tenant_retries", "op retries", func(t obs.TenantSnapshot) int64 { return t.Retries })
		tenantCounter("arkfs_tenant_bytes_read", "bytes read", func(t obs.TenantSnapshot) int64 { return t.BytesRead })
		tenantCounter("arkfs_tenant_bytes_written", "bytes written", func(t obs.TenantSnapshot) int64 { return t.BytesWritten })
		tenantHist := func(name, help string, pick func(obs.TenantSnapshot) obs.HistSnapshot) {
			fmt.Fprintf(&b, "# HELP %s arkfs per-tenant %s\n# TYPE %s summary\n", name, help, name)
			for _, k := range keys {
				h := pick(s.Tenants[k])
				fmt.Fprintf(&b, "%s{tenant=%q,quantile=\"0.5\"} %s\n", name, k, promSeconds(h.P50))
				fmt.Fprintf(&b, "%s{tenant=%q,quantile=\"0.99\"} %s\n", name, k, promSeconds(h.P99))
				fmt.Fprintf(&b, "%s_sum{tenant=%q} %s\n", name, k, promSeconds(h.SumNanos))
				fmt.Fprintf(&b, "%s_count{tenant=%q} %d\n", name, k, h.Count)
			}
		}
		tenantHist("arkfs_tenant_op_latency", "op latency", func(t obs.TenantSnapshot) obs.HistSnapshot { return t.Latency })
		tenantHist("arkfs_tenant_queue_wait", "server queue wait", func(t obs.TenantSnapshot) obs.HistSnapshot { return t.Wait })
		tenantHist("arkfs_tenant_service_time", "server service time", func(t obs.TenantSnapshot) obs.HistSnapshot { return t.Service })
	}
	return b.String()
}

// --- trace rendering ---------------------------------------------------------

// TraceFilter selects which traces /traces renders.
type TraceFilter struct {
	Trace   obs.TraceID // only this trace (0 = all)
	Op      string      // only traces containing a span with this op
	Tenant  string      // only traces containing a span with this tenant
	ErrOnly bool        // only traces containing a failed span
	Limit   int         // newest N matching traces (0 = all)
}

// match reports whether one trace's spans satisfy the content filters
// (everything except Trace and Limit).
func (f TraceFilter) match(spans []obs.Span) bool {
	keepOp := f.Op == ""
	keepTenant := f.Tenant == ""
	keepErr := !f.ErrOnly
	for _, s := range spans {
		if s.Op == f.Op {
			keepOp = true
		}
		if s.Tenant == f.Tenant {
			keepTenant = true
		}
		if s.Err != "" {
			keepErr = true
		}
	}
	return keepOp && keepTenant && keepErr
}

// RenderTraces groups spans by trace, applies the filter at trace granularity,
// and renders each trace as an indented parent/child tree. A span whose parent
// is not in the provided rings (it lives in another process's ring, or was
// evicted) renders at the top level with its parent ID noted. The Limit is
// applied after all content filters, so "newest N" means newest N *matching*
// traces, not a window that filtering then thins out.
func RenderTraces(spans []obs.Span, f TraceFilter) string {
	byTrace := make(map[obs.TraceID][]obs.Span)
	for _, s := range spans {
		if s.Trace == 0 {
			continue
		}
		if f.Trace != 0 && s.Trace != f.Trace {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	type trace struct {
		id    obs.TraceID
		start time.Duration
		spans []obs.Span
	}
	var traces []trace
	for id, ss := range byTrace {
		if !f.match(ss) {
			continue
		}
		start := ss[0].Start
		for _, s := range ss {
			if s.Start < start {
				start = s.Start
			}
		}
		traces = append(traces, trace{id: id, start: start, spans: ss})
	}
	sort.Slice(traces, func(i, j int) bool {
		if traces[i].start != traces[j].start {
			return traces[i].start < traces[j].start
		}
		return traces[i].id < traces[j].id
	})
	if f.Limit > 0 && len(traces) > f.Limit {
		traces = traces[len(traces)-f.Limit:]
	}
	var b strings.Builder
	for _, t := range traces {
		fmt.Fprintf(&b, "trace %s (%d spans)\n", t.id, len(t.spans))
		renderTree(&b, t.spans)
	}
	if b.Len() == 0 {
		return "no traces\n"
	}
	return b.String()
}

func renderTree(b *strings.Builder, spans []obs.Span) {
	present := make(map[obs.SpanID]bool, len(spans))
	for _, s := range spans {
		present[s.ID] = true
	}
	children := make(map[obs.SpanID][]obs.Span)
	var roots []obs.Span
	for _, s := range spans {
		if s.Parent != 0 && present[s.Parent] && s.Parent != s.ID {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	order := func(ss []obs.Span) {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].Start != ss[j].Start {
				return ss[i].Start < ss[j].Start
			}
			return ss[i].ID < ss[j].ID
		})
	}
	order(roots)
	for k := range children {
		order(children[k])
	}
	var walk func(s obs.Span, depth int)
	walk = func(s obs.Span, depth int) {
		fmt.Fprintf(b, "%s- %s\n", strings.Repeat("  ", depth+1), spanLine(s))
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// spanLine is the one-line /traces rendering: structural fields first so
// parent/child relationships read off the page.
func spanLine(s obs.Span) string {
	var b strings.Builder
	fmt.Fprintf(&b, "span=%s", s.ID)
	if s.Parent != 0 {
		fmt.Fprintf(&b, " parent=%s", s.Parent)
	}
	if s.Proc != "" {
		fmt.Fprintf(&b, " proc=%s", s.Proc)
	}
	if s.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%s", s.Tenant)
	}
	fmt.Fprintf(&b, " op=%s", s.Op)
	if s.Path != "" {
		fmt.Fprintf(&b, " path=%s", s.Path)
	}
	if s.Route != "" {
		fmt.Fprintf(&b, " route=%s", s.Route)
	}
	if s.Retries > 0 {
		fmt.Fprintf(&b, " retries=%d", s.Retries)
	}
	if s.Wait > 0 {
		fmt.Fprintf(&b, " wait=%v", s.Wait)
	}
	fmt.Fprintf(&b, " dur=%v", s.Dur)
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%s", s.Err)
	}
	return b.String()
}

// --- slow-op log -------------------------------------------------------------

// AttachSlowOpLog installs a tracer commit hook that logs every span slower
// than threshold through log, carrying the trace/span IDs so a log line can be
// joined back to /traces output. It replaces any previous hook; a zero or
// negative threshold logs nothing (but still clears the hook).
func AttachSlowOpLog(tr *obs.Tracer, log *slog.Logger, threshold time.Duration) {
	if threshold <= 0 {
		tr.OnCommit(nil)
		return
	}
	tr.OnCommit(func(s obs.Span) {
		// A span starts when its worker picks the request up, so Dur is pure
		// service time and Wait is the queueing that preceded it; their sum is
		// what the caller experienced. Threshold on the sum, so an op that was
		// slow purely from queueing is still flagged — with the breakdown
		// saying so.
		total := s.Wait + s.Dur
		if total < threshold {
			return
		}
		log.Warn("slow op",
			"trace", s.Trace.String(),
			"span", s.ID.String(),
			"proc", s.Proc,
			"tenant", s.Tenant,
			"op", s.Op,
			"path", s.Path,
			"route", string(s.Route),
			"retries", s.Retries,
			"wait", s.Wait,
			"service", s.Dur,
			"dur", total,
			"err", s.Err,
		)
	})
}
