package expose

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"arkfs/internal/obs"
)

// promLine is the grammar of one exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? [-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$`)

func TestPrometheusTextFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("core.meta.local").Add(42)
	reg.Gauge("journal.queue.depth").Set(3)
	h := reg.Histogram("core.op.stat")
	h.Observe(2 * time.Microsecond)
	h.Observe(100 * time.Millisecond)

	out := PrometheusText(reg.Snapshot())
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line: %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("bad sample line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE core_meta_local counter",
		"core_meta_local 42",
		"# TYPE journal_queue_depth gauge",
		"journal_queue_depth 3",
		"# TYPE core_op_stat summary",
		`core_op_stat{quantile="0.5"}`,
		`core_op_stat{quantile="0.99"}`,
		"core_op_stat_sum ",
		"core_op_stat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "#") && strings.Contains(line, "core.meta") {
			t.Fatalf("dotted name leaked into sample line: %q", line)
		}
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"core.op.stat": "core_op_stat",
		"2pc.commits":  "_pc_commits",
		"a-b/c":        "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func newTestSpans(t *testing.T) (*obs.Tracer, *obs.Tracer, obs.SpanContext) {
	t.Helper()
	a := obs.NewTracer(16, nil)
	a.SetProc("procA")
	a.SetSeed(1)
	b := obs.NewTracer(16, nil)
	b.SetProc("procB")
	b.SetSeed(2)

	root := a.StartRoot("create", "/d/f")
	child := b.StartChild(root.Context(), "serve.create", "")
	grand := b.StartChild(child.Context(), "journal.commit", "j/1")
	grand.End(nil)
	child.End(nil)
	root.End(nil)

	bad := a.StartRoot("stat", "/missing")
	bad.End(errors.New("ENOENT"))
	return a, b, root.Context()
}

func TestRenderTracesTree(t *testing.T) {
	a, b, rc := newTestSpans(t)
	out := RenderTraces(append(a.Spans(), b.Spans()...), TraceFilter{Trace: rc.Trace})
	if !strings.Contains(out, "trace "+rc.Trace.String()) {
		t.Fatalf("missing trace header:\n%s", out)
	}
	// Indentation mirrors depth: root at one level, child at two, grandchild
	// at three.
	for frag, depth := range map[string]int{
		"op=create":         1,
		"op=serve.create":   2,
		"op=journal.commit": 3,
	} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, frag) {
				found = true
				if !strings.HasPrefix(line, strings.Repeat("  ", depth)+"- ") {
					t.Fatalf("%s at wrong depth (want %d):\n%s", frag, depth, out)
				}
			}
		}
		if !found {
			t.Fatalf("missing %s:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "op=stat") {
		t.Fatalf("trace filter leaked another trace:\n%s", out)
	}
	// Both processes appear in the one trace.
	if !strings.Contains(out, "proc=procA") || !strings.Contains(out, "proc=procB") {
		t.Fatalf("trace does not span both procs:\n%s", out)
	}
}

func TestRenderTracesFilters(t *testing.T) {
	a, b, _ := newTestSpans(t)
	all := append(a.Spans(), b.Spans()...)

	if out := RenderTraces(all, TraceFilter{ErrOnly: true}); !strings.Contains(out, "op=stat") ||
		strings.Contains(out, "op=create") {
		t.Fatalf("err filter wrong:\n%s", out)
	}
	if out := RenderTraces(all, TraceFilter{Op: "journal.commit"}); !strings.Contains(out, "op=create") ||
		strings.Contains(out, "op=stat") {
		t.Fatalf("op filter should keep the whole matching trace only:\n%s", out)
	}
	if out := RenderTraces(all, TraceFilter{Limit: 1}); strings.Contains(out, "op=create") ||
		!strings.Contains(out, "op=stat") {
		t.Fatalf("limit should keep the newest trace:\n%s", out)
	}
	if out := RenderTraces(nil, TraceFilter{}); out != "no traces\n" {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderTracesOrphanParent(t *testing.T) {
	// A child whose parent lives in another (absent) ring still renders, at
	// the top level of its trace.
	tr := obs.NewTracer(4, nil)
	tr.SetSeed(9)
	orphan := tr.StartChild(obs.SpanContext{Trace: 0xabc, Span: 0xdef}, "serve.stat", "")
	orphan.End(nil)
	out := RenderTraces(tr.Spans(), TraceFilter{})
	if !strings.Contains(out, "op=serve.stat") || !strings.Contains(out, "parent=0000000000000def") {
		t.Fatalf("orphan span lost:\n%s", out)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("core.meta.local").Inc()
	a, b, rc := newTestSpans(t)
	healthy := true
	h := Handler(Options{
		Reg:     reg,
		Tracers: []*obs.Tracer{a, b},
		Health: func() error {
			if !healthy {
				return errors.New("degraded")
			}
			return nil
		},
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string, wantCode int) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, wantCode, body)
		}
		return string(body)
	}

	if out := get("/metrics", 200); !strings.Contains(out, "core_meta_local 1") {
		t.Fatalf("/metrics:\n%s", out)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(get("/stats.json", 200)), &snap); err != nil {
		t.Fatalf("/stats.json not JSON: %v", err)
	}
	if snap.Counters["core.meta.local"] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if out := get("/traces?trace="+rc.Trace.String(), 200); !strings.Contains(out, "op=serve.create") {
		t.Fatalf("/traces by id:\n%s", out)
	}
	if out := get("/traces?err=1&limit=5", 200); !strings.Contains(out, "op=stat") {
		t.Fatalf("/traces err filter:\n%s", out)
	}
	get("/traces?trace=zzz", 400)
	get("/traces?limit=-1", 400)
	if out := get("/healthz", 200); !strings.Contains(out, "ok") {
		t.Fatalf("/healthz: %s", out)
	}
	healthy = false
	get("/healthz", 503)
	if out := get("/", 200); !strings.Contains(out, "/metrics") {
		t.Fatalf("index: %s", out)
	}
	get("/nope", 404)
	if out := get("/debug/pprof/cmdline", 200); out == "" {
		t.Fatal("pprof cmdline empty")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Options{Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

func TestAttachSlowOpLog(t *testing.T) {
	tr := obs.NewTracer(8, nil)
	tr.SetProc("p")
	tr.SetSeed(5)
	var buf strings.Builder
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	AttachSlowOpLog(tr, log, 1*time.Nanosecond)

	sp := tr.StartRoot("mkdir", "/slow")
	time.Sleep(2 * time.Millisecond) // wall clock: tracer uses the default clock
	sp.End(nil)
	out := buf.String()
	if !strings.Contains(out, "slow op") || !strings.Contains(out, "op=mkdir") ||
		!strings.Contains(out, "trace="+sp.Trace.String()) {
		t.Fatalf("slow-op log line missing fields: %q", out)
	}

	// Threshold 0 clears the hook.
	buf.Reset()
	AttachSlowOpLog(tr, log, 0)
	sp2 := tr.StartRoot("mkdir", "/fast")
	sp2.End(nil)
	if buf.Len() != 0 {
		t.Fatalf("cleared hook still logged: %q", buf.String())
	}
}

// TestRenderTracesLimitAfterFilter: Limit selects the newest N traces among
// those that MATCH the content filters. A newer non-matching trace must not
// consume the limit window and squeeze out an older matching one.
func TestRenderTracesLimitAfterFilter(t *testing.T) {
	mk := func(trace obs.TraceID, start time.Duration, op, tenant string) obs.Span {
		return obs.Span{Trace: trace, ID: obs.SpanID(trace), Op: op, Tenant: tenant,
			Start: start, Dur: time.Millisecond, Proc: "p"}
	}
	spans := []obs.Span{
		mk(1, 10*time.Millisecond, "create", "acme"), // oldest, matching
		mk(2, 20*time.Millisecond, "stat", "other"),
		mk(3, 30*time.Millisecond, "unlink", "other"), // newest, not matching
	}

	out := RenderTraces(spans, TraceFilter{Tenant: "acme", Limit: 1})
	if !strings.Contains(out, "op=create") {
		t.Fatalf("limit ate the only matching trace:\n%s", out)
	}
	if strings.Contains(out, "op=stat") || strings.Contains(out, "op=unlink") {
		t.Fatalf("tenant filter leaked non-matching traces:\n%s", out)
	}

	// Same shape for op filtering: limit=1 with a matching oldest trace.
	out = RenderTraces(spans, TraceFilter{Op: "create", Limit: 1})
	if !strings.Contains(out, "op=create") {
		t.Fatalf("op filter + limit lost the matching trace:\n%s", out)
	}

	// Unfiltered limit still means the newest trace overall.
	out = RenderTraces(spans, TraceFilter{Limit: 1})
	if !strings.Contains(out, "op=unlink") || strings.Contains(out, "op=create") {
		t.Fatalf("plain limit should keep only the newest trace:\n%s", out)
	}
}

// TestSpanLineTenantWait: the one-line rendering carries tenant and queue-wait
// attribution, and omits them when unset.
func TestSpanLineTenantWait(t *testing.T) {
	s := obs.Span{Trace: 7, ID: 7, Op: "create", Proc: "p",
		Tenant: "acme", Wait: 3 * time.Millisecond, Dur: time.Millisecond}
	line := spanLine(s)
	if !strings.Contains(line, "tenant=acme") {
		t.Fatalf("no tenant in span line: %q", line)
	}
	if !strings.Contains(line, "wait=3ms") {
		t.Fatalf("no wait in span line: %q", line)
	}
	s.Tenant, s.Wait = "", 0
	line = spanLine(s)
	if strings.Contains(line, "tenant=") || strings.Contains(line, "wait=") {
		t.Fatalf("unset tenant/wait rendered: %q", line)
	}
}

// TestPrometheusTextTenantSeries: tenant-labeled families appear once any
// tenant is tracked, stay within the exposition grammar, and vanish when the
// table is empty.
func TestPrometheusTextTenantSeries(t *testing.T) {
	reg := obs.NewRegistry()
	if out := PrometheusText(reg.Snapshot()); strings.Contains(out, "arkfs_tenant_") {
		t.Fatalf("tenant families rendered with no tenants:\n%s", out)
	}
	reg.Tenants().Observe("acme", 2*time.Millisecond, 0, false, 1)
	reg.Tenants().Observe("acme", 4*time.Millisecond, 0, true, 0)
	reg.Tenants().AddBytes("acme", 100, 50)
	reg.Tenants().ObserveWait("acme", time.Millisecond, 3*time.Millisecond, 0)

	out := PrometheusText(reg.Snapshot())
	for _, want := range []string{
		`arkfs_tenant_ops{tenant="acme"} 2`,
		`arkfs_tenant_errors{tenant="acme"} 1`,
		`arkfs_tenant_retries{tenant="acme"} 1`,
		`arkfs_tenant_bytes_read{tenant="acme"} 100`,
		`arkfs_tenant_bytes_written{tenant="acme"} 50`,
		`arkfs_tenant_op_latency{tenant="acme",quantile="0.5"}`,
		`arkfs_tenant_op_latency_count{tenant="acme"} 2`,
		`arkfs_tenant_queue_wait_count{tenant="acme"} 1`,
		`arkfs_tenant_service_time_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("bad sample line: %q", line)
		}
	}
}

// TestTenantsJSONEndpoint: /tenants.json serves the accounting table as JSON
// and ?tenant= narrows it to one row.
func TestTenantsJSONEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Tenants().Observe("acme", time.Millisecond, 0, false, 0)
	reg.Tenants().Observe("globex", time.Millisecond, 0, false, 0)
	srv := httptest.NewServer(Handler(Options{Reg: reg}))
	defer srv.Close()

	get := func(path string) map[string]obs.TenantSnapshot {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		var out map[string]obs.TenantSnapshot
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("GET %s not JSON: %v\n%s", path, err, body)
		}
		return out
	}

	all := get("/tenants.json")
	if len(all) != 2 || all["acme"].Ops != 1 || all["globex"].Ops != 1 {
		t.Fatalf("/tenants.json = %+v", all)
	}
	one := get("/tenants.json?tenant=acme")
	if len(one) != 1 || one["acme"].Ops != 1 {
		t.Fatalf("/tenants.json?tenant=acme = %+v", one)
	}
	if none := get("/tenants.json?tenant=nope"); len(none) != 0 {
		t.Fatalf("unknown tenant filter returned rows: %+v", none)
	}
}

// TestAttachSlowOpLogBreakdown: the slow-op line reports tenant and the
// wait/service decomposition, and the threshold applies to wait+service so a
// queue-starved op logs even when its service time alone is under threshold.
func TestAttachSlowOpLogBreakdown(t *testing.T) {
	tr := obs.NewTracer(8, nil)
	tr.SetProc("p")
	tr.SetSeed(6)
	var buf strings.Builder
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	AttachSlowOpLog(tr, log, time.Hour)

	sp := tr.StartRoot("create", "/q")
	sp.SetTenant("acme")
	sp.SetWait(2 * time.Hour) // queue wait alone crosses the threshold
	sp.End(nil)
	out := buf.String()
	if !strings.Contains(out, "slow op") {
		t.Fatalf("queue-starved op not logged: %q", out)
	}
	for _, want := range []string{"tenant=acme", "wait=2h0m0s", "service=", "op=create"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-op line missing %q: %q", want, out)
		}
	}
}
