// Package obs is ArkFS's zero-dependency observability layer: a metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms) plus
// lightweight per-operation trace spans (trace.go).
//
// Two properties shape the design:
//
//   - Nil is the no-op sink. A nil *Registry hands out nil *Counter /
//     *Gauge / *Histogram pointers whose methods are nil-safe no-ops, so
//     instrumented code never branches on "metrics enabled?" and the
//     disabled path costs one predictable nil check per event.
//   - Determinism. All timing flows through a caller-supplied clock (the
//     sim.Env virtual clock in benchmarks and chaos runs), histogram buckets
//     are fixed, and Snapshot/Fingerprint render in sorted key order — two
//     same-seed virtual-time runs produce byte-identical fingerprints.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe: a nil *Counter is the disabled (no-op) sink.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, buffer occupancy).
// All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed latency bucket layout: powers of two from 1µs to
// ~34s plus an overflow bucket. Fixed bounds keep snapshots deterministic
// and mergeable across clients.
const histBuckets = 26

// bucketBound returns the inclusive upper bound of bucket i in nanoseconds.
func bucketBound(i int) int64 { return int64(time.Microsecond) << uint(i) }

// bucketFor returns the index of the bucket covering d.
func bucketFor(d time.Duration) int {
	n := int64(d)
	for i := 0; i < histBuckets; i++ {
		if n <= bucketBound(i) {
			return i
		}
	}
	return histBuckets // overflow
}

// Histogram is a fixed-bucket latency histogram with lock-free observation.
// All methods are nil-safe. Each bucket retains the most recent trace ID
// observed into it (the SLO exemplar): when a quantile regresses, the bucket
// names a concrete trace to pull from /traces. Exemplars are last-writer-wins
// and deliberately excluded from Fingerprint — which trace lands last depends
// on goroutine interleaving even under virtual time.
type Histogram struct {
	counts    [histBuckets + 1]atomic.Int64
	exemplars [histBuckets + 1]atomic.Uint64 // most recent TraceID per bucket
	count     atomic.Int64
	sum       atomic.Int64 // nanoseconds
	max       atomic.Int64 // nanoseconds, high-water mark
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) { h.ObserveTrace(d, 0) }

// ObserveTrace records one latency sample and, when trace is non-zero,
// retains it as the covering bucket's exemplar.
func (h *Histogram) ObserveTrace(d time.Duration, trace TraceID) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	b := bucketFor(d)
	h.counts[b].Add(1)
	if trace != 0 {
		h.exemplars[b].Store(uint64(trace))
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// quantile returns the upper bound (ns) of the bucket holding the q-th
// sample. The estimate is conservative (rounds up to a bucket edge) and,
// because bounds are fixed, deterministic for a given sample multiset.
func (h *Histogram) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i == histBuckets {
				return h.max.Load()
			}
			return bucketBound(i)
		}
	}
	return h.max.Load()
}

// HistSnapshot is the rendered state of one histogram. Quantiles are bucket
// upper bounds in nanoseconds. Exemplars maps a populated bucket's upper
// bound (rendered as a duration) to the most recent trace ID observed into
// it; it is omitted when no exemplars were recorded.
type HistSnapshot struct {
	Count     int64             `json:"count"`
	SumNanos  int64             `json:"sum_ns"`
	MaxNanos  int64             `json:"max_ns"`
	P50       int64             `json:"p50_ns"`
	P95       int64             `json:"p95_ns"`
	P99       int64             `json:"p99_ns"`
	Exemplars map[string]string `json:"exemplars,omitempty"`
}

// MeanNanos returns the arithmetic mean sample in nanoseconds.
func (s HistSnapshot) MeanNanos() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNanos / s.Count
}

// snapshot renders the histogram's current state, including any bucket
// exemplars.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		MaxNanos: h.max.Load(),
		P50:      h.quantile(0.50),
		P95:      h.quantile(0.95),
		P99:      h.quantile(0.99),
	}
	for i := range h.exemplars {
		if tr := h.exemplars[i].Load(); tr != 0 {
			if s.Exemplars == nil {
				s.Exemplars = make(map[string]string)
			}
			bound := "+inf"
			if i < histBuckets {
				bound = time.Duration(bucketBound(i)).String()
			}
			s.Exemplars[bound] = TraceID(tr).String()
		}
	}
	return s
}

// Registry names and owns a process's metrics. The zero value is not usable;
// create one with NewRegistry. A nil *Registry is the disabled sink: every
// getter returns nil, which in turn no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string][]func() int64 // external counters folded at snapshot
	tenants  *TenantTable
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string][]func() int64),
		tenants:  NewTenantTable(DefaultTenantK),
	}
}

// Tenants returns the registry's per-tenant accounting table, or nil when
// the registry itself is nil (the no-op sink).
func (r *Registry) Tenants() *TenantTable {
	if r == nil {
		return nil
	}
	return r.tenants
}

// Counter returns (creating on first use) the named counter, or nil when the
// registry itself is nil. Components hold the returned pointer; the hot path
// never touches the registry map again.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named latency histogram, or
// nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers an external counter: fn is read at snapshot time and its
// value appears among the counters. Components with pre-existing atomic
// counters (cache.Stats, objstore.RetryStats, the FaultStore) fold in this
// way instead of double-counting on the hot path. Registering the same name
// repeatedly sums all registered funcs — each client in a deployment folds
// its own per-client stats into the shared cluster-wide metric.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = append(r.funcs[name], fn)
	r.mu.Unlock()
}

// Snapshot is a point-in-time rendering of a registry: plain maps, so it
// marshals to deterministic JSON (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistSnapshot   `json:"histograms"`
	Tenants    map[string]TenantSnapshot `json:"tenants"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
		Tenants:    map[string]TenantSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Tenants = r.tenants.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fns := range r.funcs {
		var sum int64
		for _, fn := range fns {
			sum += fn()
		}
		s.Counters[name] = sum
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Fingerprint renders the snapshot's schedule-invariant portion — counters,
// gauges, and histogram sample counts — as a canonical sorted text block.
// Latency sums/quantiles are deliberately excluded: the fingerprint asserts
// the operation mix (how many ops took each path), which a seeded
// virtual-time run must reproduce exactly.
func (s Snapshot) Fingerprint() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "c %s %d\n", k, s.Counters[k])
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "g %s %d\n", k, s.Gauges[k])
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "h %s %d\n", k, s.Histograms[k].Count)
	}
	// Tenant lines carry the exact per-tenant counts (ops, errors, retries,
	// bytes read/written). Sketch weights, latency sums, and exemplars are
	// excluded: they are either interleaving-dependent or duplicate the
	// counts. The lines are exact — and therefore replayable — whenever the
	// run's distinct tenants fit the table (no evictions), which the chaos
	// and stats harnesses guarantee by construction.
	keys = keys[:0]
	for k := range s.Tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ts := s.Tenants[k]
		fmt.Fprintf(&b, "t %s %d %d %d %d %d\n", k,
			ts.Ops, ts.Errs, ts.Retries, ts.BytesRead, ts.BytesWritten)
	}
	return b.String()
}

// JSON renders the snapshot as indented, deterministic JSON.
func (s Snapshot) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // maps of scalars cannot fail to marshal
		return []byte("{}")
	}
	return out
}

// Table renders the snapshot as a human-readable table: counters and gauges
// first, then histograms with count/mean/p50/p95/p99.
func (s Snapshot) Table() string {
	var b strings.Builder
	keys := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintf(&b, "%-44s %12s\n", "metric", "value")
		for _, k := range keys {
			v, ok := s.Counters[k]
			if !ok {
				v = s.Gauges[k]
			}
			fmt.Fprintf(&b, "%-44s %12d\n", k, v)
		}
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintf(&b, "%-44s %10s %12s %12s %12s %12s\n",
			"latency", "count", "mean", "p50", "p95", "p99")
		for _, k := range keys {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "%-44s %10d %12v %12v %12v %12v\n", k, h.Count,
				time.Duration(h.MeanNanos()), time.Duration(h.P50),
				time.Duration(h.P95), time.Duration(h.P99))
		}
	}
	keys = keys[:0]
	for k := range s.Tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		fmt.Fprintf(&b, "%-20s %10s %8s %8s %12s %12s %12s %12s\n",
			"tenant", "ops", "errs", "retries", "bytes_r", "bytes_w", "p99", "wait_p99")
		for _, k := range keys {
			ts := s.Tenants[k]
			fmt.Fprintf(&b, "%-20s %10d %8d %8d %12d %12d %12v %12v\n", k,
				ts.Ops, ts.Errs, ts.Retries, ts.BytesRead, ts.BytesWritten,
				time.Duration(ts.Latency.P99), time.Duration(ts.Wait.P99))
		}
	}
	return b.String()
}
