package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/types"
)

// Route says which path a metadata operation took.
type Route string

const (
	RouteLocal  Route = "local"  // served by this client as directory leader
	RouteRemote Route = "remote" // forwarded to the leader over RPC
)

// TraceID identifies one end-to-end operation across every process it
// touches. SpanID identifies one timed segment within a trace. Both are
// minted from a seeded splitmix64 stream — never from entropy or the wall
// clock — so a seeded virtual-time run reproduces the same IDs exactly and
// traces can be folded into the chaos fingerprint.
type (
	TraceID uint64
	SpanID  uint64
)

// String renders the ID in the fixed-width hex form used by /traces and the
// slow-op log.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID in fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// SpanContext is the wire-portable identity of a span: what crosses the RPC
// envelope so the callee can parent its own spans under the caller's trace.
// The zero value means "no active trace".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a live trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Span records one operation. Spans are value types copied into the tracer's
// ring on End; mutate them only between Start and End, on the owning
// goroutine.
type Span struct {
	Trace   TraceID       // trace this span belongs to
	ID      SpanID        // this span's identity
	Parent  SpanID        // parent span, 0 for a root
	Proc    string        // process label of the tracer that minted it
	Op      string        // e.g. "create", "stat", "rename"
	Path    string        // primary path argument
	Dir     types.Ino     // directory the op resolved to (nil if unresolved)
	Route   Route         // local vs remote, set once routed
	Tenant  string        // tenant the op is attributed to, "" if unknown
	Retries int           // ESTALE/lease retries consumed
	Start   time.Duration // environment-clock time at Start
	Wait    time.Duration // queue wait before service began (enqueue→start)
	Dur     time.Duration // set at End
	Err     string        // errno string, "" on success

	tr *Tracer
}

// Context returns the span's wire identity. Nil-safe: a nil span yields the
// zero (invalid) context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID}
}

// SetRoute tags the span with the route taken. Nil-safe.
func (s *Span) SetRoute(r Route) {
	if s != nil {
		s.Route = r
	}
}

// SetDir tags the span with the resolved directory inode. Nil-safe.
func (s *Span) SetDir(ino types.Ino) {
	if s != nil {
		s.Dir = ino
	}
}

// SetTenant attributes the span to a tenant. Nil-safe.
func (s *Span) SetTenant(tenant string) {
	if s != nil {
		s.Tenant = tenant
	}
}

// SetWait records how long the request sat queued before service began
// (the enqueue→start phase; Dur covers enqueue→done). Nil-safe.
func (s *Span) SetWait(d time.Duration) {
	if s != nil {
		s.Wait = d
	}
}

// AddRetry counts one retry of the underlying operation. Retries stay inside
// the span — the trace ID is minted once per logical operation, so a faulty
// network shows up as a high retry count on one trace, not as many traces.
// Nil-safe.
func (s *Span) AddRetry() {
	if s != nil {
		s.Retries++
	}
}

// End closes the span, stamping duration and outcome, and commits it to the
// tracer's ring. Nil-safe; calling End on a nil span is a no-op.
func (s *Span) End(err error) {
	if s == nil || s.tr == nil {
		return
	}
	s.Dur = s.tr.now() - s.Start
	if err != nil {
		s.Err = types.Errno(err)
	}
	s.tr.commit(*s)
}

// String renders the span as one log-friendly line.
func (s Span) String() string {
	route := s.Route
	if route == "" {
		route = "?"
	}
	errs := s.Err
	if errs == "" {
		errs = "ok"
	}
	var b strings.Builder
	if s.Trace != 0 {
		fmt.Fprintf(&b, "trace=%s span=%s ", s.Trace, s.ID)
		if s.Parent != 0 {
			fmt.Fprintf(&b, "parent=%s ", s.Parent)
		}
	}
	if s.Proc != "" {
		fmt.Fprintf(&b, "proc=%s ", s.Proc)
	}
	if s.Tenant != "" {
		fmt.Fprintf(&b, "tenant=%s ", s.Tenant)
	}
	fmt.Fprintf(&b, "%s %s dir=%s route=%s retries=%d dur=%v", s.Op, s.Path,
		s.Dir.Short(), route, s.Retries, s.Dur)
	if s.Wait > 0 {
		fmt.Fprintf(&b, " wait=%v", s.Wait)
	}
	fmt.Fprintf(&b, " %s", errs)
	return b.String()
}

// Tracer is a fixed-capacity ring buffer of completed spans. It is the crash
// forensics channel: cheap enough to leave on, bounded so a hung run cannot
// grow it, and dumpable by the chaos harness when a scenario fails. A nil
// *Tracer is the disabled sink.
//
// IDs are deterministic: each tracer mints from mix64(seed, ordinal), where
// the ordinal is a per-tracer atomic counter. Give every process a distinct
// seed (derived from the deployment seed) and a run replays with identical
// IDs; only cross-goroutine interleaving of the ordinal varies, which is why
// the chaos fingerprint folds span *totals*, not IDs.
type Tracer struct {
	now  func() time.Duration // injected clock; sim.Env.Now under virtual time
	proc string               // process label stamped on every span
	seed uint64               // ID-stream seed
	ord  atomic.Uint64        // per-tracer mint counter

	mu       sync.Mutex
	ring     []Span
	next     int
	wrap     bool
	total    int64
	onCommit func(Span)
}

// NewTracer creates a tracer holding the most recent capacity spans, stamping
// them with the supplied clock. The clock must be the same time source the
// rest of the deployment runs on (sim.Env.Now) so spans order correctly
// under virtual time; nil falls back to wall-clock nanoseconds since the
// Unix epoch.
func NewTracer(capacity int, now func() time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if now == nil {
		now = func() time.Duration { return time.Duration(time.Now().UnixNano()) }
	}
	return &Tracer{now: now, ring: make([]Span, capacity)}
}

// SetProc labels every span this tracer mints with the process name (the
// client ID, lease-manager address, ...). Nil-safe; call before tracing.
func (t *Tracer) SetProc(name string) {
	if t != nil {
		t.proc = name
	}
}

// SetSeed fixes the ID-stream seed. Derive it from the deployment seed so a
// replayed run mints identical IDs; the default seed is 0, which still mints
// valid (deterministic) IDs. Nil-safe; call before tracing.
func (t *Tracer) SetSeed(seed uint64) {
	if t != nil {
		t.seed = seed
	}
}

// OnCommit installs a hook called with every completed span after it lands
// in the ring. The expose package uses it for the slow-op log. The hook runs
// outside the ring lock on the committing goroutine; keep it cheap. Nil-safe.
func (t *Tracer) OnCommit(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onCommit = fn
	t.mu.Unlock()
}

// mix64 is the splitmix64 output mix: a bijection on uint64, so distinct
// (seed, ordinal) inputs yield distinct IDs with good bit diffusion.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextID mints the next ID in this tracer's seeded stream. Never zero (zero
// means "absent" in SpanContext).
func (t *Tracer) nextID() uint64 {
	id := mix64(t.seed ^ (t.ord.Add(1) * 0x9e3779b97f4a7c15))
	if id == 0 {
		id = 1
	}
	return id
}

// StartRoot opens a root span: a fresh trace whose TraceID doubles as the
// root's SpanID. Returns nil (a valid no-op span) when the tracer is nil.
func (t *Tracer) StartRoot(op, path string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	return &Span{
		Trace: TraceID(id), ID: SpanID(id), Proc: t.proc,
		Op: op, Path: path, Start: t.now(), tr: t,
	}
}

// StartChild opens a span under parent, inheriting its trace. A zero parent
// degrades to a root span, so callers need not branch on "was there an
// incoming trace?". Returns nil when the tracer is nil.
func (t *Tracer) StartChild(parent SpanContext, op, path string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(op, path)
	}
	return &Span{
		Trace: parent.Trace, ID: SpanID(t.nextID()), Parent: parent.Span,
		Proc: t.proc, Op: op, Path: path, Start: t.now(), tr: t,
	}
}

// Start opens a root span for op on path. Kept as the short name for the
// common case; see StartRoot/StartChild for explicit trace control.
func (t *Tracer) Start(op, path string) *Span { return t.StartRoot(op, path) }

func (t *Tracer) commit(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next, t.wrap = 0, true
	}
	t.total++
	hook := t.onCommit
	t.mu.Unlock()
	if hook != nil {
		hook(s)
	}
}

// Total returns the number of spans ever committed (0 for nil).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.wrap {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Filter returns the retained spans matching pred, oldest first. Nil-safe.
// The predicate runs on copies outside the ring lock.
func (t *Tracer) Filter(pred func(Span) bool) []Span {
	spans := t.Spans()
	if pred == nil {
		return spans
	}
	var out []Span
	for _, s := range spans {
		if pred(s) {
			out = append(out, s)
		}
	}
	return out
}

// Dump renders up to limit retained spans as a text block, newest last, for
// attaching to a failed chaos report. limit <= 0 dumps everything retained.
func (t *Tracer) Dump(limit int) string {
	spans := t.Spans()
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for _, s := range spans {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// spanKey carries the active local span in a context; remoteKey carries the
// span context received over the wire when there is no local span object.
// tenantKey carries the tenant the request is attributed to; waitKey carries
// the queue wait the transport measured before handing the request to its
// handler.
type (
	spanKey   struct{}
	remoteKey struct{}
	tenantKey struct{}
	waitKey   struct{}
)

// WithSpan returns ctx carrying span. A nil span is carried as-is; SpanFrom
// will return nil and all span methods no-op.
func WithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFrom extracts the active span from ctx, or nil. Nil-ctx-safe.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithRemote returns ctx carrying an incoming wire span context. Servers use
// it so child spans they start parent under the caller's trace even though
// the caller's *Span object lives in another process.
func WithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey{}, sc)
}

// RemoteFrom extracts the incoming wire span context, or the zero context.
// Nil-ctx-safe.
func RemoteFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}

// SpanContextFrom resolves the identity to propagate on an outgoing call:
// the local active span if one exists, else whatever remote context arrived
// with the request (so a relay that starts no spans of its own still
// forwards the trace).
func SpanContextFrom(ctx context.Context) SpanContext {
	if s := SpanFrom(ctx); s != nil {
		return s.Context()
	}
	return RemoteFrom(ctx)
}

// WithTenant returns ctx attributing subsequent work to tenant. An empty
// tenant is carried as-is and reads back as "unattributed".
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom extracts the tenant the request is attributed to, or "".
// Nil-ctx-safe. The tenant survives process hops the same way the trace
// does: CallFromCtx lifts it into the RPC envelope and the serving side
// re-injects it, so a forwarded op keeps one tenant end to end.
func TenantFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// WithQueueWait returns ctx carrying the queue wait the transport measured
// between enqueue and the moment a worker picked the request up. Handlers
// read it back to stamp Span.Wait and split wait from service time.
func WithQueueWait(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, waitKey{}, d)
}

// QueueWaitFrom extracts the transport-measured queue wait, or 0.
// Nil-ctx-safe.
func QueueWaitFrom(ctx context.Context) time.Duration {
	if ctx == nil {
		return 0
	}
	d, _ := ctx.Value(waitKey{}).(time.Duration)
	return d
}
