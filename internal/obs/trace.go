package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"arkfs/internal/types"
)

// Route says which path a metadata operation took.
type Route string

const (
	RouteLocal  Route = "local"  // served by this client as directory leader
	RouteRemote Route = "remote" // forwarded to the leader over RPC
)

// Span records one operation. Spans are value types copied into the tracer's
// ring on End; mutate them only between Start and End, on the owning
// goroutine.
type Span struct {
	Op      string        // e.g. "create", "stat", "rename"
	Path    string        // primary path argument
	Dir     types.Ino     // directory the op resolved to (nil if unresolved)
	Route   Route         // local vs remote, set once routed
	Retries int           // ESTALE/lease retries consumed
	Start   time.Duration // environment-clock time at Start
	Dur     time.Duration // set at End
	Err     string        // errno string, "" on success

	tr *Tracer
}

// SetRoute tags the span with the route taken. Nil-safe.
func (s *Span) SetRoute(r Route) {
	if s != nil {
		s.Route = r
	}
}

// SetDir tags the span with the resolved directory inode. Nil-safe.
func (s *Span) SetDir(ino types.Ino) {
	if s != nil {
		s.Dir = ino
	}
}

// AddRetry counts one retry of the underlying operation. Nil-safe.
func (s *Span) AddRetry() {
	if s != nil {
		s.Retries++
	}
}

// End closes the span, stamping duration and outcome, and commits it to the
// tracer's ring. Nil-safe; calling End on a nil span is a no-op.
func (s *Span) End(err error) {
	if s == nil || s.tr == nil {
		return
	}
	s.Dur = s.tr.now() - s.Start
	if err != nil {
		s.Err = types.Errno(err)
	}
	s.tr.commit(*s)
}

// String renders the span as one log-friendly line.
func (s Span) String() string {
	route := s.Route
	if route == "" {
		route = "?"
	}
	errs := s.Err
	if errs == "" {
		errs = "ok"
	}
	return fmt.Sprintf("%s %s dir=%s route=%s retries=%d dur=%v %s",
		s.Op, s.Path, s.Dir.Short(), route, s.Retries, s.Dur, errs)
}

// Tracer is a fixed-capacity ring buffer of completed spans. It is the crash
// forensics channel: cheap enough to leave on, bounded so a hung run cannot
// grow it, and dumpable by the chaos harness when a scenario fails. A nil
// *Tracer is the disabled sink.
type Tracer struct {
	now func() time.Duration // injected clock; sim.Env.Now under virtual time

	mu    sync.Mutex
	ring  []Span
	next  int
	wrap  bool
	total int64
}

// NewTracer creates a tracer holding the most recent capacity spans, stamping
// them with the supplied clock. The clock must be the same time source the
// rest of the deployment runs on (sim.Env.Now) so spans order correctly
// under virtual time; nil falls back to wall-clock nanoseconds since the
// Unix epoch.
func NewTracer(capacity int, now func() time.Duration) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	if now == nil {
		now = func() time.Duration { return time.Duration(time.Now().UnixNano()) }
	}
	return &Tracer{now: now, ring: make([]Span, capacity)}
}

// Start opens a span for op on path. Returns nil (a valid no-op span) when
// the tracer is nil.
func (t *Tracer) Start(op, path string) *Span {
	if t == nil {
		return nil
	}
	return &Span{Op: op, Path: path, Start: t.now(), tr: t}
}

func (t *Tracer) commit(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next, t.wrap = 0, true
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever committed (0 for nil).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans, oldest first. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.wrap {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump renders the retained spans as a text block, oldest first, for
// attaching to a failed chaos report.
func (t *Tracer) Dump() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for _, s := range spans {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// spanKey carries the active span in a context.
type spanKey struct{}

// WithSpan returns ctx carrying span. A nil span is carried as-is; SpanFrom
// will return nil and all span methods no-op.
func WithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFrom extracts the active span from ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
