package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestTenantTableExactWithinK: while distinct tenants fit in the table, every
// count is exact and the error bound stays zero — the regime the seeded
// harnesses rely on for fingerprint determinism.
func TestTenantTableExactWithinK(t *testing.T) {
	tt := NewTenantTable(4)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		for j := 0; j <= i; j++ {
			tt.Observe(name, time.Millisecond, TraceID(100+j), j == 0, j)
		}
		tt.AddBytes(name, int64(10*(i+1)), int64(i))
	}
	snap := tt.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("tracked %d tenants, want 3", len(snap))
	}
	for i := 0; i < 3; i++ {
		ts := snap[fmt.Sprintf("tenant-%d", i)]
		if ts.Ops != int64(i+1) {
			t.Errorf("tenant-%d ops = %d, want %d", i, ts.Ops, i+1)
		}
		if ts.Errs != 1 {
			t.Errorf("tenant-%d errs = %d, want 1", i, ts.Errs)
		}
		if ts.ErrBound != 0 {
			t.Errorf("tenant-%d errBound = %d, want 0 (no evictions)", i, ts.ErrBound)
		}
		if ts.Weight != ts.Ops {
			t.Errorf("tenant-%d weight %d != ops %d without evictions", i, ts.Weight, ts.Ops)
		}
		if ts.BytesRead != int64(10*(i+1)) || ts.BytesWritten != int64(i) {
			t.Errorf("tenant-%d bytes = %d/%d, want %d/%d", i, ts.BytesRead, ts.BytesWritten, 10*(i+1), i)
		}
		if ts.Latency.Count != ts.Ops {
			t.Errorf("tenant-%d latency count %d != ops %d", i, ts.Latency.Count, ts.Ops)
		}
	}
}

// TestTenantTableEviction: at capacity, a newcomer evicts the minimum-weight
// entry (lexicographically smallest name on ties) and inherits weight+1 with
// the evicted weight as its error bound — the space-saving invariants.
func TestTenantTableEviction(t *testing.T) {
	tt := NewTenantTable(2)
	for i := 0; i < 5; i++ {
		tt.Observe("heavy", time.Millisecond, 0, false, 0)
	}
	tt.Observe("light", time.Millisecond, 0, false, 0)
	// Admitting a third evicts "light" (weight 1 < 5).
	tt.Observe("new", time.Millisecond, 0, false, 0)
	snap := tt.Snapshot()
	if _, ok := snap["light"]; ok {
		t.Fatal("light not evicted")
	}
	if _, ok := snap["heavy"]; !ok {
		t.Fatal("heavy evicted despite maximum weight")
	}
	nw := snap["new"]
	if nw.Weight != 2 { // inherited 1 + its own op
		t.Fatalf("newcomer weight = %d, want 2 (inherited 1 + 1 op)", nw.Weight)
	}
	if nw.ErrBound != 1 {
		t.Fatalf("newcomer errBound = %d, want 1 (the evicted weight)", nw.ErrBound)
	}
	if nw.Ops != 1 {
		t.Fatalf("newcomer ops = %d, want 1 (ops stay exact-since-admission)", nw.Ops)
	}

	// Tie-break: two weight-1 entries, the lexicographically smaller goes.
	tb := NewTenantTable(2)
	tb.Observe("bbb", time.Millisecond, 0, false, 0)
	tb.Observe("aaa", time.Millisecond, 0, false, 0)
	tb.Observe("zzz", time.Millisecond, 0, false, 0)
	snap = tb.Snapshot()
	if _, ok := snap["aaa"]; ok {
		t.Fatal("tie-break evicted the wrong entry: aaa survived")
	}
	if _, ok := snap["bbb"]; !ok {
		t.Fatal("tie-break evicted bbb, want aaa")
	}
}

// TestTenantTableNilAndEmpty: the nil table and empty tenant names no-op.
func TestTenantTableNilAndEmpty(t *testing.T) {
	var nilT *TenantTable
	nilT.Observe("x", time.Millisecond, 0, false, 0)
	nilT.AddBytes("x", 1, 1)
	nilT.ObserveWait("x", 1, 1, 0)
	if nilT.Len() != 0 {
		t.Fatal("nil table has entries")
	}
	if snap := nilT.Snapshot(); snap == nil || len(snap) != 0 {
		t.Fatalf("nil table snapshot = %v, want empty non-nil map", snap)
	}
	tt := NewTenantTable(4)
	tt.Observe("", time.Millisecond, 0, false, 0)
	if tt.Len() != 0 {
		t.Fatal("empty tenant name was admitted")
	}
}

// TestTenantTableObserveWait: wait/service observations fill their own
// histograms without inflating the op count.
func TestTenantTableObserveWait(t *testing.T) {
	tt := NewTenantTable(4)
	tt.Observe("a", 2*time.Millisecond, 7, false, 0)
	tt.ObserveWait("a", time.Millisecond, 3*time.Millisecond, 9)
	tt.ObserveWait("a", 2*time.Millisecond, time.Millisecond, 0)
	ts := tt.Snapshot()["a"]
	if ts.Ops != 1 {
		t.Fatalf("ops = %d, want 1 (waits must not bump ops)", ts.Ops)
	}
	if ts.Wait.Count != 2 || ts.Service.Count != 2 {
		t.Fatalf("wait/service counts = %d/%d, want 2/2", ts.Wait.Count, ts.Service.Count)
	}
	if ts.Wait.SumNanos != int64(3*time.Millisecond) {
		t.Fatalf("wait sum = %d, want %d", ts.Wait.SumNanos, 3*time.Millisecond)
	}
}

// TestHistogramExemplars: ObserveTrace retains the most recent trace per
// bucket and the snapshot renders it; traceless observations leave no
// exemplar.
func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond) // no trace: no exemplar
	if ex := h.snapshot().Exemplars; ex != nil {
		t.Fatalf("exemplars after traceless observe: %v", ex)
	}
	h.ObserveTrace(time.Millisecond, TraceID(0xabc))
	h.ObserveTrace(time.Millisecond, TraceID(0xdef)) // same bucket: last wins
	h.ObserveTrace(40*time.Second, TraceID(0x123))   // overflow bucket
	ex := h.snapshot().Exemplars
	if len(ex) != 2 {
		t.Fatalf("exemplar buckets = %d, want 2: %v", len(ex), ex)
	}
	if got := ex[time.Duration(bucketBound(bucketFor(time.Millisecond))).String()]; got != TraceID(0xdef).String() {
		t.Fatalf("ms bucket exemplar = %s, want %s (last writer)", got, TraceID(0xdef))
	}
	if got := ex["+inf"]; got != TraceID(0x123).String() {
		t.Fatalf("overflow exemplar = %s, want %s", got, TraceID(0x123))
	}
}

// TestFingerprintTenantLines: the registry fingerprint carries one sorted
// "t <tenant> ..." line per tracked tenant, and two identically-driven
// registries produce byte-identical fingerprints.
func TestFingerprintTenantLines(t *testing.T) {
	drive := func() *Registry {
		reg := NewRegistry()
		reg.Counter("core.ops").Add(3)
		reg.Tenants().Observe("t-b", time.Millisecond, 5, true, 2)
		reg.Tenants().Observe("t-a", time.Millisecond, 6, false, 0)
		reg.Tenants().AddBytes("t-a", 100, 50)
		// Exemplars and wait splits must NOT perturb the fingerprint: which
		// trace lands last is interleaving-dependent.
		reg.Tenants().ObserveWait("t-a", time.Millisecond, time.Millisecond, 99)
		return reg
	}
	fp1 := drive().Snapshot().Fingerprint()
	fp2 := drive().Snapshot().Fingerprint()
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ:\n%s\nvs\n%s", fp1, fp2)
	}
	if !strings.Contains(fp1, "t t-a 1 0 0 100 50\n") {
		t.Fatalf("missing t-a tenant line in fingerprint:\n%s", fp1)
	}
	if !strings.Contains(fp1, "t t-b 1 1 2 0 0\n") {
		t.Fatalf("missing t-b tenant line in fingerprint:\n%s", fp1)
	}
	ia, ib := strings.Index(fp1, "t t-a"), strings.Index(fp1, "t t-b")
	if ia > ib {
		t.Fatal("tenant lines not sorted")
	}
}

// TestRegistrySnapshotTenants: Snapshot folds the tenant table in, and a
// registry-less (nil) path stays inert.
func TestRegistrySnapshotTenants(t *testing.T) {
	var nilReg *Registry
	if nilReg.Tenants() != nil {
		t.Fatal("nil registry returned a tenant table")
	}
	reg := NewRegistry()
	reg.Tenants().Observe("x", time.Millisecond, 0, false, 0)
	snap := reg.Snapshot()
	if len(snap.Tenants) != 1 || snap.Tenants["x"].Ops != 1 {
		t.Fatalf("snapshot tenants = %+v, want x with 1 op", snap.Tenants)
	}
}
