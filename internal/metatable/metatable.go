// Package metatable implements ArkFS's per-directory metadata table (paper
// §III-C): the in-memory structure a directory leader builds after acquiring
// the lease. It holds the directory's own inode, its dentries, and the inodes
// of all child files, so that every metadata operation — lookup, permission
// check, create, unlink, stat, readdir — is a local memory operation with no
// remote communication.
package metatable

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"arkfs/internal/prt"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Table is one directory's metadata table. The owning client is the
// directory leader; all mutations happen under the table lock and are
// mirrored into the per-directory journal by the caller.
type Table struct {
	mu       sync.RWMutex
	dir      *types.Inode
	entries  map[string]wire.Dentry
	children map[types.Ino]*types.Inode
	// epoch counts acknowledged mutations. The async commit path uses it as
	// the dependency stamp between the table and the journal: a durability
	// barrier that completed at epoch E covers every mutation up to E, so a
	// later fsync with an unchanged epoch has nothing new to make durable.
	epoch uint64
}

// Load builds the metatable for dir from the object store: the directory
// inode, the dentry block, and every child inode (eager, as in the paper —
// after this, operations never touch the store until checkpoint).
func Load(tr *prt.Translator, dir types.Ino) (*Table, error) {
	dirInode, err := tr.LoadInode(dir)
	if err != nil {
		return nil, fmt.Errorf("metatable: load dir inode: %w", err)
	}
	if !dirInode.IsDir() {
		return nil, fmt.Errorf("metatable: %s: %w", dir.Short(), types.ErrNotDir)
	}
	dentries, err := tr.LoadDentries(dir)
	if err != nil {
		return nil, fmt.Errorf("metatable: load dentries: %w", err)
	}
	t := &Table{
		dir:      dirInode,
		entries:  make(map[string]wire.Dentry, len(dentries)),
		children: make(map[types.Ino]*types.Inode, len(dentries)),
	}
	for _, de := range dentries {
		t.entries[de.Name] = de
		child, err := tr.LoadInode(de.Ino)
		if err != nil {
			return nil, fmt.Errorf("metatable: load child %q: %w", de.Name, err)
		}
		t.children[de.Ino] = child
	}
	return t, nil
}

// LoadDegraded builds as much of the metatable as survives verification:
// a corrupt dentry block yields an empty entry table, and a corrupt or
// missing child inode drops that entry. The result is the last valid state
// the store can prove — the caller serves it read-only and reports how many
// entries were lost. Only integrity failures are tolerated; infrastructure
// errors (including an unreadable directory inode) still fail the load.
func LoadDegraded(tr *prt.Translator, dir types.Ino) (*Table, int, error) {
	dirInode, err := tr.LoadInode(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("metatable: load dir inode: %w", err)
	}
	if !dirInode.IsDir() {
		return nil, 0, fmt.Errorf("metatable: %s: %w", dir.Short(), types.ErrNotDir)
	}
	lost := 0
	dentries, err := tr.LoadDentries(dir)
	if err != nil {
		if !errors.Is(err, types.ErrIntegrity) {
			return nil, 0, fmt.Errorf("metatable: load dentries: %w", err)
		}
		lost++ // the whole block; entries are uncountable
		dentries = nil
	}
	t := &Table{
		dir:      dirInode,
		entries:  make(map[string]wire.Dentry, len(dentries)),
		children: make(map[types.Ino]*types.Inode, len(dentries)),
	}
	for _, de := range dentries {
		child, err := tr.LoadInode(de.Ino)
		if err != nil {
			if errors.Is(err, types.ErrIntegrity) || errors.Is(err, types.ErrNotExist) {
				lost++
				continue
			}
			return nil, lost, fmt.Errorf("metatable: load child %q: %w", de.Name, err)
		}
		t.entries[de.Name] = de
		t.children[de.Ino] = child
	}
	return t, lost, nil
}

// NewEmpty builds a table for a directory that was just created in memory
// (its objects may not exist yet; the journal will materialize them).
func NewEmpty(dir *types.Inode) *Table {
	return &Table{
		dir:      dir.Clone(),
		entries:  make(map[string]wire.Dentry),
		children: make(map[types.Ino]*types.Inode),
	}
}

// DirInode returns a copy of the directory's own inode.
func (t *Table) DirInode() *types.Inode {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dir.Clone()
}

// SetDirInode replaces the directory's own inode (chmod/chown/utimes on the
// directory itself).
func (t *Table) SetDirInode(n *types.Inode) {
	t.mu.Lock()
	t.dir = n.Clone()
	t.epoch++
	t.mu.Unlock()
}

// Epoch returns the table's mutation count: the stamp an acknowledged
// operation depends on. Two equal epochs mean no mutation happened between
// the two reads.
func (t *Table) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Lookup resolves name to its dentry and a copy of the child inode.
func (t *Table) Lookup(name string) (wire.Dentry, *types.Inode, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	de, ok := t.entries[name]
	if !ok {
		return wire.Dentry{}, nil, fmt.Errorf("metatable: %q: %w", name, types.ErrNotExist)
	}
	child := t.children[de.Ino]
	if child == nil {
		return de, nil, fmt.Errorf("metatable: %q: dangling dentry: %w", name, types.ErrIO)
	}
	return de, child.Clone(), nil
}

// Exists reports whether name is present.
func (t *Table) Exists(name string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.entries[name]
	return ok
}

// Insert adds a dentry and its child inode; it fails on duplicates.
func (t *Table) Insert(name string, child *types.Inode) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.entries[name]; dup {
		return fmt.Errorf("metatable: %q: %w", name, types.ErrExist)
	}
	t.entries[name] = wire.Dentry{Name: name, Ino: child.Ino, Type: child.Type}
	t.children[child.Ino] = child.Clone()
	t.epoch++
	return nil
}

// Remove deletes a dentry, returning the removed child inode copy.
func (t *Table) Remove(name string) (*types.Inode, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	de, ok := t.entries[name]
	if !ok {
		return nil, fmt.Errorf("metatable: %q: %w", name, types.ErrNotExist)
	}
	delete(t.entries, name)
	child := t.children[de.Ino]
	delete(t.children, de.Ino)
	t.epoch++
	if child == nil {
		return nil, fmt.Errorf("metatable: %q: dangling dentry: %w", name, types.ErrIO)
	}
	return child, nil
}

// UpdateChild replaces a child inode in place (setattr, size changes).
func (t *Table) UpdateChild(n *types.Inode) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.children[n.Ino]; !ok {
		return fmt.Errorf("metatable: inode %s not in table: %w", n.Ino.Short(), types.ErrStale)
	}
	t.children[n.Ino] = n.Clone()
	t.epoch++
	return nil
}

// Child returns a copy of the child inode by number.
func (t *Table) Child(ino types.Ino) (*types.Inode, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.children[ino]
	if !ok {
		return nil, false
	}
	return n.Clone(), true
}

// List returns all dentries sorted by name (readdir).
func (t *Table) List() []wire.Dentry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]wire.Dentry, 0, len(t.entries))
	for _, de := range t.entries {
		out = append(out, de)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of dentries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// FlushTo writes the table's full state to the object store through the
// translator — used when handing a directory over outside the journal path
// (tests and bulk imports; normal operation checkpoints via the journal).
func (t *Table) FlushTo(tr *prt.Translator) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := tr.SaveInode(t.dir); err != nil {
		return err
	}
	dentries := make([]wire.Dentry, 0, len(t.entries))
	for _, de := range t.entries {
		dentries = append(dentries, de)
	}
	sort.Slice(dentries, func(i, j int) bool { return dentries[i].Name < dentries[j].Name })
	if err := tr.SaveDentries(t.dir.Ino, dentries); err != nil {
		return err
	}
	for _, child := range t.children {
		if err := tr.SaveInode(child); err != nil {
			return err
		}
	}
	return nil
}
