package metatable

import (
	"errors"
	"testing"

	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/types"
)

func dirInode(src *types.InoSource) *types.Inode {
	return &types.Inode{Ino: src.Next(), Type: types.TypeDir, Mode: 0755, Nlink: 2}
}

func fileInode(src *types.InoSource) *types.Inode {
	return &types.Inode{Ino: src.Next(), Type: types.TypeRegular, Mode: 0644, Nlink: 1}
}

func TestLoadRoundTrip(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 0)
	src := types.NewInoSource(1)
	dir := dirInode(src)
	tbl := NewEmpty(dir)
	f1, f2 := fileInode(src), fileInode(src)
	if err := tbl.Insert("a.txt", f1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("b.txt", f2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FlushTo(tr); err != nil {
		t.Fatal(err)
	}

	loaded, err := Load(tr, dir.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("Len = %d", loaded.Len())
	}
	de, child, err := loaded.Lookup("a.txt")
	if err != nil || de.Ino != f1.Ino || child.Mode != 0644 {
		t.Fatalf("Lookup: %+v %+v %v", de, child, err)
	}
	if got := loaded.DirInode(); got.Ino != dir.Ino || !got.IsDir() {
		t.Fatalf("DirInode: %+v", got)
	}
}

func TestLoadRejectsNonDirectory(t *testing.T) {
	tr := prt.New(objstore.NewMemStore(), 0)
	src := types.NewInoSource(2)
	f := fileInode(src)
	if err := tr.SaveInode(f); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(tr, f.Ino); !errors.Is(err, types.ErrNotDir) {
		t.Fatalf("want ENOTDIR, got %v", err)
	}
	if _, err := Load(tr, src.Next()); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("want ENOENT, got %v", err)
	}
}

func TestInsertRemoveSemantics(t *testing.T) {
	src := types.NewInoSource(3)
	tbl := NewEmpty(dirInode(src))
	f := fileInode(src)
	if err := tbl.Insert("f", f); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("f", fileInode(src)); !errors.Is(err, types.ErrExist) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if !tbl.Exists("f") {
		t.Fatal("Exists = false")
	}
	removed, err := tbl.Remove("f")
	if err != nil || removed.Ino != f.Ino {
		t.Fatalf("Remove: %+v, %v", removed, err)
	}
	if _, err := tbl.Remove("f"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
	if _, _, err := tbl.Lookup("f"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("lookup removed: %v", err)
	}
}

func TestUpdateChildAndIsolation(t *testing.T) {
	src := types.NewInoSource(4)
	tbl := NewEmpty(dirInode(src))
	f := fileInode(src)
	if err := tbl.Insert("f", f); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's inode after Insert must not affect the table.
	f.Size = 999
	_, child, _ := tbl.Lookup("f")
	if child.Size != 0 {
		t.Fatal("Insert aliased the caller's inode")
	}
	// Nor must mutating a Lookup result.
	child.Size = 777
	_, again, _ := tbl.Lookup("f")
	if again.Size != 0 {
		t.Fatal("Lookup returned an aliased inode")
	}
	// UpdateChild is the way to change it.
	child.Size = 123
	if err := tbl.UpdateChild(child); err != nil {
		t.Fatal(err)
	}
	_, final, _ := tbl.Lookup("f")
	if final.Size != 123 {
		t.Fatalf("Size = %d", final.Size)
	}
	// UpdateChild on an unknown inode fails.
	ghost := fileInode(src)
	if err := tbl.UpdateChild(ghost); !errors.Is(err, types.ErrStale) {
		t.Fatalf("ghost update: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	src := types.NewInoSource(5)
	tbl := NewEmpty(dirInode(src))
	for _, name := range []string{"zebra", "alpha", "monkey"} {
		if err := tbl.Insert(name, fileInode(src)); err != nil {
			t.Fatal(err)
		}
	}
	list := tbl.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[1].Name != "monkey" || list[2].Name != "zebra" {
		t.Fatalf("List = %v", list)
	}
}

func TestChildByIno(t *testing.T) {
	src := types.NewInoSource(6)
	tbl := NewEmpty(dirInode(src))
	f := fileInode(src)
	if err := tbl.Insert("f", f); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Child(f.Ino)
	if !ok || got.Ino != f.Ino {
		t.Fatalf("Child: %+v %v", got, ok)
	}
	if _, ok := tbl.Child(src.Next()); ok {
		t.Fatal("Child found a ghost")
	}
}
