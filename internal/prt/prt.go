// Package prt implements ArkFS's POSIX-REST Translator (paper §III-F): the
// layer that maps file-system entities onto object-store keys and translates
// POSIX block I/O into REST object operations against any registered backend.
//
// Key scheme (prefix + 128-bit inode UUID, as in the paper):
//
//	i:<ino>          inode record
//	e:<ino>          dentry block of directory <ino>
//	j:<ino>:<seq>    journal transaction <seq> of directory <ino>
//	d:<ino>:<idx>    data chunk <idx> of file <ino>
//
// File data is split into fixed-size chunks no larger than the backend's
// maximum object size.
package prt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Object key prefixes.
const (
	PrefixInode   = "i:"
	PrefixDentry  = "e:"
	PrefixJournal = "j:"
	PrefixData    = "d:"
)

// DefaultChunkSize is the data-object size ArkFS writes; it matches the 2 MiB
// cache entry and divides the RADOS 4 MiB object limit evenly.
const DefaultChunkSize int64 = 2 << 20

// SuperblockKey stores the file system's formatting parameters.
const SuperblockKey = "s:arkfs"

// Superblock records the parameters a mount (or fsck) must agree on.
type Superblock struct {
	Version   uint32
	ChunkSize int64
}

// EncodeSuperblock serializes the superblock with a CRC32C trailer.
func EncodeSuperblock(sb Superblock) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.AppendUvarint(buf, uint64(sb.Version))
	buf = binary.AppendVarint(buf, sb.ChunkSize)
	return wire.Seal(buf)
}

// DecodeSuperblock parses and CRC-verifies a superblock object.
func DecodeSuperblock(frame []byte) (Superblock, error) {
	var sb Superblock
	raw, err := wire.Unseal(frame)
	if err != nil {
		return sb, fmt.Errorf("prt: superblock: %w", err)
	}
	v, n := binary.Uvarint(raw)
	if n <= 0 {
		return sb, fmt.Errorf("prt: corrupt superblock: %w", types.ErrIntegrity)
	}
	sb.Version = uint32(v)
	cs, m := binary.Varint(raw[n:])
	if m <= 0 || cs <= 0 {
		return sb, fmt.Errorf("prt: corrupt superblock chunk size: %w", types.ErrIntegrity)
	}
	sb.ChunkSize = cs
	return sb, nil
}

// InodeKey returns the object key of an inode record.
func InodeKey(ino types.Ino) string { return PrefixInode + ino.String() }

// DentryKey returns the object key of a directory's dentry block.
func DentryKey(dir types.Ino) string { return PrefixDentry + dir.String() }

// JournalKey returns the object key of one committed journal transaction.
func JournalKey(dir types.Ino, seq uint64) string {
	return fmt.Sprintf("%s%s:%016x", PrefixJournal, dir.String(), seq)
}

// JournalPrefix returns the key prefix of every journal object of dir, for
// recovery scans.
func JournalPrefix(dir types.Ino) string { return PrefixJournal + dir.String() + ":" }

// ParseJournalSeq extracts the sequence number from a journal object key.
func ParseJournalSeq(key string) (uint64, error) {
	i := strings.LastIndexByte(key, ':')
	if i < 0 {
		return 0, fmt.Errorf("prt: bad journal key %q: %w", key, types.ErrInval)
	}
	return strconv.ParseUint(key[i+1:], 16, 64)
}

// DataKey returns the object key of a file's idx-th data chunk.
func DataKey(ino types.Ino, idx int64) string {
	return fmt.Sprintf("%s%s:%d", PrefixData, ino.String(), idx)
}

// Translator binds the key scheme and chunking policy to a registered object
// storage backend. All ArkFS components perform storage access through it.
type Translator struct {
	store     objstore.Store
	chunkSize int64
	detected  *obs.Counter // integrity.detected; nil-safe
}

// New creates a translator over the backend. chunkSize <= 0 selects
// DefaultChunkSize.
func New(store objstore.Store, chunkSize int64) *Translator {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &Translator{store: store, chunkSize: chunkSize}
}

// SetObs registers the translator's integrity counter on reg. A nil registry
// leaves detection uncounted but still reported through typed errors.
func (t *Translator) SetObs(reg *obs.Registry) {
	t.detected = reg.Counter("integrity.detected")
}

// noteIntegrity counts err against integrity.detected when it is a checksum
// failure, and returns it unchanged for wrapping convenience.
func (t *Translator) noteIntegrity(err error) error {
	if err != nil && errors.Is(err, types.ErrIntegrity) {
		t.detected.Inc()
	}
	return err
}

// Store exposes the underlying backend for components (journal, recovery)
// that operate on raw keys.
func (t *Translator) Store() objstore.Store { return t.store }

// ChunkSize returns the data chunk size in bytes.
func (t *Translator) ChunkSize() int64 { return t.chunkSize }

// --- Metadata objects -------------------------------------------------------

// LoadInode fetches and decodes an inode record.
func (t *Translator) LoadInode(ino types.Ino) (*types.Inode, error) {
	raw, err := t.store.Get(InodeKey(ino))
	if err != nil {
		return nil, fmt.Errorf("prt: load inode %s: %w", ino.Short(), err)
	}
	n, err := wire.DecodeInode(raw)
	if err != nil {
		return nil, t.noteIntegrity(fmt.Errorf("prt: inode %s: %w", ino.Short(), err))
	}
	return n, nil
}

// SaveInode encodes and stores an inode record.
func (t *Translator) SaveInode(n *types.Inode) error {
	if err := t.store.Put(InodeKey(n.Ino), wire.EncodeInode(n)); err != nil {
		return fmt.Errorf("prt: save inode %s: %w", n.Ino.Short(), err)
	}
	return nil
}

// DeleteInode removes an inode record.
func (t *Translator) DeleteInode(ino types.Ino) error {
	return t.store.Delete(InodeKey(ino))
}

// LoadDentries fetches a directory's dentry block; a missing block is an
// empty directory (fresh directories have no "e:" object yet).
func (t *Translator) LoadDentries(dir types.Ino) ([]wire.Dentry, error) {
	raw, err := t.store.Get(DentryKey(dir))
	if errors.Is(err, types.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("prt: load dentries %s: %w", dir.Short(), err)
	}
	des, err := wire.DecodeDentries(raw)
	if err != nil {
		return nil, t.noteIntegrity(fmt.Errorf("prt: dentries %s: %w", dir.Short(), err))
	}
	return des, nil
}

// SaveDentries stores a directory's dentry block.
func (t *Translator) SaveDentries(dir types.Ino, entries []wire.Dentry) error {
	if err := t.store.Put(DentryKey(dir), wire.EncodeDentries(entries)); err != nil {
		return fmt.Errorf("prt: save dentries %s: %w", dir.Short(), err)
	}
	return nil
}

// DeleteDentries removes a directory's dentry block.
func (t *Translator) DeleteDentries(dir types.Ino) error {
	return t.store.Delete(DentryKey(dir))
}

// --- Data objects ------------------------------------------------------------

// GetChunk fetches, CRC-verifies, and returns the payload of one data chunk.
// A missing chunk propagates ErrNotExist (a hole); a chunk that fails
// verification returns a typed integrity error — never silently wrong bytes.
func (t *Translator) GetChunk(ino types.Ino, idx int64) ([]byte, error) {
	raw, err := t.store.Get(DataKey(ino, idx))
	if err != nil {
		return nil, err
	}
	payload, err := wire.Unseal(raw)
	if err != nil {
		return nil, t.noteIntegrity(fmt.Errorf("prt: chunk %d of %s: %w", idx, ino.Short(), err))
	}
	return payload, nil
}

// PutChunk seals and stores the payload of one data chunk. The payload is not
// mutated: the CRC trailer is appended to a fresh frame.
func (t *Translator) PutChunk(ino types.Ino, idx int64, payload []byte) error {
	// Full slice expression so Seal's append cannot scribble past the
	// payload into a caller-owned buffer.
	frame := wire.Seal(payload[:len(payload):len(payload)])
	if err := t.store.Put(DataKey(ino, idx), frame); err != nil {
		return fmt.Errorf("prt: write chunk %d of %s: %w", idx, ino.Short(), err)
	}
	return nil
}

// ReadAt fills buf from the file's data objects starting at offset off and
// reports the bytes read. size is the file's current size; reads are clipped
// to it and holes (missing chunks) read as zeros. n < len(buf) only at EOF.
func (t *Translator) ReadAt(ino types.Ino, buf []byte, off, size int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("prt: negative offset: %w", types.ErrInval)
	}
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	read := 0
	for read < len(buf) {
		pos := off + int64(read)
		idx := pos / t.chunkSize
		inChunk := pos % t.chunkSize
		want := int64(len(buf) - read)
		if r := t.chunkSize - inChunk; want > r {
			want = r
		}
		chunk, err := t.GetChunk(ino, idx)
		switch {
		case errors.Is(err, types.ErrNotExist):
			// Hole: zero-fill.
			for i := int64(0); i < want; i++ {
				buf[read+int(i)] = 0
			}
		case err != nil:
			return read, fmt.Errorf("prt: read chunk %d of %s: %w", idx, ino.Short(), err)
		default:
			n := copy(buf[read:read+int(want)], chunk[min64(inChunk, int64(len(chunk))):])
			// Short chunk inside the file: the remainder is a hole.
			for i := n; int64(i) < want; i++ {
				buf[read+i] = 0
			}
		}
		read += int(want)
	}
	return read, nil
}

// WriteAt writes buf at offset off, performing read-modify-write on partially
// covered chunks. The caller (the cache flush path or a direct-I/O write)
// updates the inode size separately.
func (t *Translator) WriteAt(ino types.Ino, buf []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("prt: negative offset: %w", types.ErrInval)
	}
	written := 0
	for written < len(buf) {
		pos := off + int64(written)
		idx := pos / t.chunkSize
		inChunk := pos % t.chunkSize
		want := int64(len(buf) - written)
		if r := t.chunkSize - inChunk; want > r {
			want = r
		}
		var chunk []byte
		if inChunk == 0 && want == t.chunkSize {
			// Full-chunk overwrite: no read needed.
			chunk = buf[written : written+int(want)]
		} else {
			old, err := t.GetChunk(ino, idx)
			if err != nil && !errors.Is(err, types.ErrNotExist) {
				return fmt.Errorf("prt: rmw chunk %d of %s: %w", idx, ino.Short(), err)
			}
			need := inChunk + want
			if int64(len(old)) >= need {
				chunk = old
			} else {
				chunk = make([]byte, need)
				copy(chunk, old)
			}
			copy(chunk[inChunk:], buf[written:written+int(want)])
		}
		if err := t.PutChunk(ino, idx, chunk); err != nil {
			return err
		}
		written += int(want)
	}
	return nil
}

// Truncate adjusts the stored chunks after a size change from oldSize to
// newSize: chunks wholly beyond newSize are deleted and a straddling chunk is
// trimmed. Growing a file needs no object changes (holes read as zeros).
func (t *Translator) Truncate(ino types.Ino, oldSize, newSize int64) error {
	if newSize >= oldSize {
		return nil
	}
	firstDead := (newSize + t.chunkSize - 1) / t.chunkSize
	lastOld := (oldSize + t.chunkSize - 1) / t.chunkSize
	for idx := firstDead; idx < lastOld; idx++ {
		if err := t.store.Delete(DataKey(ino, idx)); err != nil {
			return fmt.Errorf("prt: truncate delete chunk %d: %w", idx, err)
		}
	}
	if rem := newSize % t.chunkSize; rem > 0 && newSize > 0 {
		idx := newSize / t.chunkSize
		old, err := t.GetChunk(ino, idx)
		if errors.Is(err, types.ErrNotExist) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("prt: truncate trim chunk %d: %w", idx, err)
		}
		if int64(len(old)) > rem {
			if err := t.PutChunk(ino, idx, old[:rem]); err != nil {
				return fmt.Errorf("prt: truncate rewrite chunk %d: %w", idx, err)
			}
		}
	}
	return nil
}

// DeleteData removes every data chunk of a file of the given size.
func (t *Translator) DeleteData(ino types.Ino, size int64) error {
	nChunks := (size + t.chunkSize - 1) / t.chunkSize
	for idx := int64(0); idx < nChunks; idx++ {
		if err := t.store.Delete(DataKey(ino, idx)); err != nil {
			return fmt.Errorf("prt: delete chunk %d of %s: %w", idx, ino.Short(), err)
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
