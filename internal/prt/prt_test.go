package prt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"arkfs/internal/objstore"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

func newT(t *testing.T, chunk int64) (*Translator, *objstore.MemStore) {
	t.Helper()
	s := objstore.NewMemStore()
	return New(s, chunk), s
}

func TestKeyScheme(t *testing.T) {
	ino := types.RootIno
	if got := InodeKey(ino); got != "i:"+ino.String() {
		t.Errorf("InodeKey = %q", got)
	}
	if got := DentryKey(ino); got != "e:"+ino.String() {
		t.Errorf("DentryKey = %q", got)
	}
	jk := JournalKey(ino, 0xab)
	if jk != "j:"+ino.String()+":00000000000000ab" {
		t.Errorf("JournalKey = %q", jk)
	}
	seq, err := ParseJournalSeq(jk)
	if err != nil || seq != 0xab {
		t.Errorf("ParseJournalSeq = %d, %v", seq, err)
	}
	if got := DataKey(ino, 7); got != "d:"+ino.String()+":7" {
		t.Errorf("DataKey = %q", got)
	}
}

func TestJournalKeysSortBySeq(t *testing.T) {
	ino := types.NewInoSource(1).Next()
	prev := ""
	for seq := uint64(0); seq < 1000; seq += 37 {
		k := JournalKey(ino, seq)
		if k <= prev {
			t.Fatalf("journal keys not monotonic: %q after %q", k, prev)
		}
		prev = k
	}
}

func TestInodeAndDentryPersistence(t *testing.T) {
	tr, _ := newT(t, 0)
	src := types.NewInoSource(2)
	n := &types.Inode{Ino: src.Next(), Type: types.TypeRegular, Mode: 0644, Size: 123}
	if err := tr.SaveInode(n); err != nil {
		t.Fatal(err)
	}
	got, err := tr.LoadInode(n.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 123 || got.Mode != 0644 {
		t.Fatalf("inode mismatch: %+v", got)
	}
	dir := src.Next()
	ents := []wire.Dentry{{Name: "x", Ino: n.Ino, Type: types.TypeRegular}}
	if err := tr.SaveDentries(dir, ents); err != nil {
		t.Fatal(err)
	}
	back, err := tr.LoadDentries(dir)
	if err != nil || len(back) != 1 || back[0].Name != "x" {
		t.Fatalf("dentries mismatch: %v %v", back, err)
	}
	// Missing dentry block = empty directory.
	empty, err := tr.LoadDentries(src.Next())
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing block: %v %v", empty, err)
	}
}

func TestWriteReadAcrossChunks(t *testing.T) {
	tr, _ := newT(t, 16)
	ino := types.NewInoSource(3).Next()
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	if err := tr.WriteAt(ino, data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := tr.ReadAt(ino, buf, 0, 100)
	if err != nil || n != 100 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data mismatch after chunked round trip")
	}
	// Unaligned overlapping rewrite.
	patch := []byte("PATCH")
	if err := tr.WriteAt(ino, patch, 14); err != nil { // straddles chunk 0/1
		t.Fatal(err)
	}
	n, err = tr.ReadAt(ino, buf, 10, 100)
	if err != nil || n != 90 {
		t.Fatalf("ReadAt after patch = %d, %v", n, err)
	}
	want := append(append(append([]byte{}, data[10:14]...), patch...), data[19:]...)
	if !bytes.Equal(buf[:n], want) {
		t.Fatalf("patched read mismatch:\n got %v\nwant %v", buf[:20], want[:20])
	}
}

func TestReadClipsToSizeAndHolesAreZero(t *testing.T) {
	tr, _ := newT(t, 16)
	ino := types.NewInoSource(4).Next()
	// Write only chunk 2 (offset 32..48); chunks 0,1 are holes.
	if err := tr.WriteAt(ino, bytes.Repeat([]byte{0xAA}, 16), 32); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := tr.ReadAt(ino, buf, 0, 48)
	if err != nil || n != 48 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	for i := 0; i < 32; i++ {
		if buf[i] != 0 {
			t.Fatalf("hole byte %d = %x", i, buf[i])
		}
	}
	for i := 32; i < 48; i++ {
		if buf[i] != 0xAA {
			t.Fatalf("data byte %d = %x", i, buf[i])
		}
	}
	// Read past EOF returns 0.
	if n, err := tr.ReadAt(ino, buf, 48, 48); err != nil || n != 0 {
		t.Fatalf("read at EOF = %d, %v", n, err)
	}
	// Short tail chunk inside file size reads zeros beyond stored bytes.
	ino2 := types.NewInoSource(5).Next()
	if err := tr.WriteAt(ino2, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	n, err = tr.ReadAt(ino2, buf[:8], 0, 8)
	if err != nil || n != 8 {
		t.Fatalf("short-chunk read = %d, %v", n, err)
	}
	if !bytes.Equal(buf[:8], []byte{1, 2, 3, 0, 0, 0, 0, 0}) {
		t.Fatalf("short-chunk read = %v", buf[:8])
	}
}

func TestTruncateDeletesAndTrims(t *testing.T) {
	tr, store := newT(t, 16)
	ino := types.NewInoSource(6).Next()
	if err := tr.WriteAt(ino, bytes.Repeat([]byte{7}, 64), 0); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 4 {
		t.Fatalf("expected 4 chunks, have %d objects", store.Len())
	}
	if err := tr.Truncate(ino, 64, 20); err != nil {
		t.Fatal(err)
	}
	keys, _ := store.List(PrefixData)
	if len(keys) != 2 {
		t.Fatalf("after truncate to 20: %d chunks, want 2 (%v)", len(keys), keys)
	}
	tail, err := tr.GetChunk(ino, 1)
	if err != nil || len(tail) != 4 {
		t.Fatalf("straddling chunk len = %d, want 4 (%v)", len(tail), err)
	}
	// Growing is a no-op.
	if err := tr.Truncate(ino, 20, 1000); err != nil {
		t.Fatal(err)
	}
	if keys, _ := store.List(PrefixData); len(keys) != 2 {
		t.Fatal("grow-truncate changed chunks")
	}
	// Truncate to zero removes everything.
	if err := tr.Truncate(ino, 20, 0); err != nil {
		t.Fatal(err)
	}
	if keys, _ := store.List(PrefixData); len(keys) != 0 {
		t.Fatalf("truncate(0) left %v", keys)
	}
}

func TestDeleteData(t *testing.T) {
	tr, store := newT(t, 16)
	ino := types.NewInoSource(7).Next()
	if err := tr.WriteAt(ino, make([]byte, 50), 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.DeleteData(ino, 50); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("DeleteData left %d objects", store.Len())
	}
}

// Property: random writes through the translator match an in-memory model
// file for any chunk size.
func TestWriteReadMatchesModelQuick(t *testing.T) {
	type wr struct {
		Off  uint16
		Data []byte
	}
	f := func(chunkSel uint8, writes []wr) bool {
		chunk := int64(8 + int(chunkSel%64))
		tr, _ := newT(t, chunk)
		ino := types.NewInoSource(int64(chunkSel)).Next()
		model := make([]byte, 0)
		size := int64(0)
		for _, w := range writes {
			off := int64(w.Off % 4096)
			if len(w.Data) > 512 {
				w.Data = w.Data[:512]
			}
			if err := tr.WriteAt(ino, w.Data, off); err != nil {
				return false
			}
			end := off + int64(len(w.Data))
			if end > int64(len(model)) {
				model = append(model, make([]byte, end-int64(len(model)))...)
			}
			copy(model[off:], w.Data)
			if end > size {
				size = end
			}
		}
		got := make([]byte, size)
		n, err := tr.ReadAt(ino, got, 0, size)
		if err != nil || int64(n) != size {
			return false
		}
		return bytes.Equal(got, model[:size])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}
