package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"arkfs/internal/types"
)

// modelFS is the reference implementation: a map of paths to file contents
// plus a set of directories. It captures the semantics the random-op test
// checks ArkFS against.
type modelFS struct {
	files map[string][]byte
	dirs  map[string]bool
}

func newModelFS() *modelFS {
	return &modelFS{files: map[string][]byte{}, dirs: map[string]bool{"/": true}}
}

func (m *modelFS) parentOK(path string) bool {
	dir, _, err := types.SplitDir(path)
	if err != nil {
		return false
	}
	return m.dirs[types.JoinPath(dir)]
}

func (m *modelFS) children(dir string) []string {
	prefix := dir + "/"
	if dir == "/" {
		prefix = "/"
	}
	var out []string
	seen := map[string]bool{}
	for p := range m.files {
		if rest, ok := cut(p, prefix); ok && rest != "" {
			seen[first(rest)] = true
		}
	}
	for p := range m.dirs {
		if rest, ok := cut(p, prefix); ok && rest != "" {
			seen[first(rest)] = true
		}
	}
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func cut(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

func first(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			return s[:i]
		}
	}
	return s
}

// TestRandomOpsMatchModel drives a long random operation sequence against
// ArkFS (two clients sharing the namespace) and the reference model,
// checking state equivalence as it goes. Each seed is an independent run.
func TestRandomOpsMatchModel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc := newTestCluster(t)
			clients := []*Client{tc.client(t, "m1"), tc.client(t, "m2")}
			model := newModelFS()
			rng := rand.New(rand.NewSource(seed))

			dirPool := []string{"/"}
			filePool := []string{}
			name := func() string { return fmt.Sprintf("n%02d", rng.Intn(30)) }
			join := func(dir, n string) string {
				if dir == "/" {
					return "/" + n
				}
				return dir + "/" + n
			}

			for step := 0; step < 400; step++ {
				c := clients[rng.Intn(len(clients))]
				switch op := rng.Intn(10); op {
				case 0, 1: // mkdir
					path := join(dirPool[rng.Intn(len(dirPool))], name())
					err := c.Mkdir(context.Background(), path, 0777)
					_, fileExists := model.files[path]
					dirExists := model.dirs[path]
					switch {
					case dirExists || fileExists:
						if !errors.Is(err, types.ErrExist) {
							t.Fatalf("step %d mkdir %s: want EEXIST, got %v", step, path, err)
						}
					case !model.parentOK(path):
						if err == nil {
							t.Fatalf("step %d mkdir %s: parent gone, but succeeded", step, path)
						}
					default:
						if err != nil {
							t.Fatalf("step %d mkdir %s: %v", step, path, err)
						}
						model.dirs[path] = true
						dirPool = append(dirPool, path)
					}
				case 2, 3: // create/overwrite a file with random content
					path := join(dirPool[rng.Intn(len(dirPool))], name())
					content := make([]byte, rng.Intn(10000))
					rng.Read(content)
					f, err := c.Open(context.Background(), path, types.OWronly|types.OCreate|types.OTrunc, 0666)
					if model.dirs[path] {
						if !errors.Is(err, types.ErrIsDir) {
							t.Fatalf("step %d create over dir %s: %v", step, path, err)
						}
						continue
					}
					if !model.parentOK(path) {
						if err == nil {
							t.Fatalf("step %d create %s: parent gone", step, path)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d create %s: %v", step, path, err)
					}
					if _, err := f.Write(content); err != nil {
						t.Fatalf("step %d write %s: %v", step, path, err)
					}
					if err := f.Close(); err != nil {
						t.Fatalf("step %d close %s: %v", step, path, err)
					}
					if _, known := model.files[path]; !known {
						filePool = append(filePool, path)
					}
					model.files[path] = content
				case 4: // read a known file and compare
					if len(filePool) == 0 {
						continue
					}
					path := filePool[rng.Intn(len(filePool))]
					if model.dirs[path] {
						continue // path was reused as a directory
					}
					want, ok := model.files[path]
					f, err := c.Open(context.Background(), path, types.ORdonly, 0)
					if !ok {
						if !isNotExist(err) {
							t.Fatalf("step %d open deleted %s: %v", step, path, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d open %s: %v", step, path, err)
					}
					got, err := io.ReadAll(f)
					if err != nil {
						t.Fatalf("step %d read %s: %v", step, path, err)
					}
					_ = f.Close()
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d read %s: %d bytes, want %d", step, path, len(got), len(want))
					}
				case 5: // stat and verify size
					if len(filePool) == 0 {
						continue
					}
					path := filePool[rng.Intn(len(filePool))]
					if model.dirs[path] {
						continue
					}
					want, ok := model.files[path]
					st, err := c.Stat(context.Background(), path)
					if !ok {
						if !isNotExist(err) {
							t.Fatalf("step %d stat deleted %s: %v", step, path, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d stat %s: %v", step, path, err)
					}
					if st.Size != int64(len(want)) {
						t.Fatalf("step %d stat %s: size %d, want %d", step, path, st.Size, len(want))
					}
				case 6: // unlink
					if len(filePool) == 0 {
						continue
					}
					path := filePool[rng.Intn(len(filePool))]
					if model.dirs[path] {
						continue
					}
					_, ok := model.files[path]
					err := c.Unlink(context.Background(), path)
					if !ok {
						if !isNotExist(err) {
							t.Fatalf("step %d unlink gone %s: %v", step, path, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d unlink %s: %v", step, path, err)
					}
					delete(model.files, path)
				case 7: // rename a file to a sibling or another directory
					if len(filePool) == 0 {
						continue
					}
					src := filePool[rng.Intn(len(filePool))]
					if model.dirs[src] {
						continue
					}
					content, ok := model.files[src]
					dst := join(dirPool[rng.Intn(len(dirPool))], name())
					if model.dirs[dst] || !ok || !model.parentOK(dst) || dst == src {
						continue // skip hairy cases; they have dedicated tests
					}
					if err := c.Rename(context.Background(), src, dst); err != nil {
						t.Fatalf("step %d rename %s -> %s: %v", step, src, dst, err)
					}
					delete(model.files, src)
					model.files[dst] = content
					filePool = append(filePool, dst)
				case 8: // readdir and compare entry names
					dir := dirPool[rng.Intn(len(dirPool))]
					if !model.dirs[dir] {
						continue
					}
					ents, err := c.Readdir(context.Background(), dir)
					if err != nil {
						t.Fatalf("step %d readdir %s: %v", step, dir, err)
					}
					var got []string
					for _, de := range ents {
						got = append(got, de.Name)
					}
					sort.Strings(got)
					want := model.children(dir)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("step %d readdir %s:\n got %v\nwant %v", step, dir, got, want)
					}
				case 9: // truncate
					if len(filePool) == 0 {
						continue
					}
					path := filePool[rng.Intn(len(filePool))]
					content, ok := model.files[path]
					if !ok {
						continue
					}
					n := int64(0)
					if len(content) > 0 {
						n = int64(rng.Intn(len(content)))
					}
					if err := c.Truncate(context.Background(), path, n); err != nil {
						t.Fatalf("step %d truncate %s: %v", step, path, err)
					}
					model.files[path] = content[:n]
				}
			}

			// Final sweep: every model file matches byte-for-byte from both
			// clients after a full flush.
			for _, c := range clients {
				if err := c.FlushAll(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			for path, want := range model.files {
				f, err := clients[0].Open(context.Background(), path, types.ORdonly, 0)
				if err != nil {
					t.Fatalf("final open %s: %v", path, err)
				}
				got, _ := io.ReadAll(f)
				_ = f.Close()
				if !bytes.Equal(got, want) {
					t.Fatalf("final content %s: %d bytes, want %d", path, len(got), len(want))
				}
			}
		})
	}
}
