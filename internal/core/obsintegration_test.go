package core

import (
	"context"
	"fmt"
	"testing"

	"arkfs/internal/obs"
)

// withObs attaches a fresh registry to a test client's options.
func withObs(reg *obs.Registry) func(*Options) {
	return func(o *Options) { o.Obs = reg }
}

// TestMetricsJournalAppendAccuracy: N creates append exactly N transactions
// to the directory's journal, and each rides the core.op.open histogram.
func TestMetricsJournalAppendAccuracy(t *testing.T) {
	tc := newTestCluster(t)
	reg := obs.NewRegistry()
	c := tc.client(t, "a", withObs(reg))
	ctx := context.Background()

	if err := c.Mkdir(ctx, "/d", 0777); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot()

	const n = 25
	for i := 0; i < n; i++ {
		f, err := c.Create(ctx, fmt.Sprintf("/d/f%02d", i), 0644)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	after := reg.Snapshot()

	if got := after.Counters["journal.appends"] - before.Counters["journal.appends"]; got != n {
		t.Fatalf("journal.appends delta = %d, want %d", got, n)
	}
	if got := after.Histograms["core.op.open"].Count - before.Histograms["core.op.open"].Count; got != n {
		t.Fatalf("core.op.open count delta = %d, want %d", got, n)
	}
	if got := after.Counters["core.meta.local"]; got == 0 {
		t.Fatal("core.meta.local = 0, want > 0")
	}
}

// TestMetricsRedirectedCountedBothSides: a forwarded create shows up as a
// remote op on the requester's registry and as local leader work on the
// leader's registry, and the requester's trace span records the remote route.
func TestMetricsRedirectedCountedBothSides(t *testing.T) {
	tc := newTestCluster(t)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "leader", withObs(r1))
	c2 := tc.client(t, "peer", withObs(r2))
	ctx := context.Background()

	// c1 becomes the leader of /shared.
	if err := c1.Mkdir(ctx, "/shared", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/shared"); err != nil {
		t.Fatal(err)
	}
	leaderLocalBefore := r1.Snapshot().Counters["core.meta.local"]

	// c2's create in /shared is forwarded to c1.
	f, err := c2.Create(ctx, "/shared/from-peer", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if got := r2.Snapshot().Counters["core.meta.remote"]; got == 0 {
		t.Fatal("requester: core.meta.remote = 0, want > 0")
	}
	if got := r1.Snapshot().Counters["core.meta.local"]; got <= leaderLocalBefore {
		t.Fatalf("leader: core.meta.local did not advance (%d -> %d)", leaderLocalBefore, got)
	}

	// The requester's trace ring holds the forwarded open with a remote route.
	var sawRemote bool
	for _, sp := range c2.Tracer().Spans() {
		if sp.Op == "open" && sp.Route == obs.RouteRemote {
			sawRemote = true
		}
	}
	if !sawRemote {
		t.Fatalf("no remote-routed open span in requester trace:\n%s", c2.Tracer().Dump(0))
	}
}

// TestClientCloseIdempotent: a second Close is a no-op returning nil, both on
// the raw client and through the fsapi adapter.
func TestClientCloseIdempotent(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/x", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestStatsAccessorWithoutObs: the Stats/Registry/Tracer accessors are safe
// when the client was built without a registry (nil sink, zero overhead).
func TestStatsAccessorWithoutObs(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/y", 0777); err != nil {
		t.Fatal(err)
	}
	snap := c.Stats()
	if len(snap.Counters) != 0 {
		t.Fatalf("uninstrumented client reported counters: %v", snap.Counters)
	}
	if c.Registry() != nil {
		t.Fatal("Registry() should be nil without Options.Obs")
	}
	if c.Tracer().Total() != 0 {
		t.Fatal("nil tracer should report zero spans")
	}
}

// BenchmarkStatNoObs / BenchmarkStatWithObs: the observability layer's
// overhead on the hottest metadata path must stay small (the acceptance bar
// is <=5% with a no-op sink; with a live registry the cost is a few atomics).
func BenchmarkStatNoObs(b *testing.B)   { benchmarkStat(b, nil) }
func BenchmarkStatWithObs(b *testing.B) { benchmarkStat(b, obs.NewRegistry()) }

func benchmarkStat(b *testing.B, reg *obs.Registry) {
	tc := newTestCluster(b)
	var opts []func(*Options)
	if reg != nil {
		opts = append(opts, withObs(reg))
	}
	c := tc.client(b, "bench", opts...)
	ctx := context.Background()
	if err := c.Mkdir(ctx, "/b", 0777); err != nil {
		b.Fatal(err)
	}
	f, err := c.Create(ctx, "/b/f", 0644)
	if err != nil {
		b.Fatal(err)
	}
	_ = f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stat(ctx, "/b/f"); err != nil {
			b.Fatal(err)
		}
	}
}
