package core

import (
	"context"
	"errors"
	"testing"

	"arkfs/internal/obs"
	"arkfs/internal/rpc"
	"arkfs/internal/types"
)

// TestRetryStormBounded is the wire-call-count regression test for the shared
// per-operation retry budget. A follower whose leader is unreachable used to
// multiply attempts across nested loops — the op-level retry, the resolve
// retry, and leader rediscovery each retried independently, so one Create
// could emit attempts^2 wire calls (a retry storm that amplifies exactly when
// the cluster is least able to absorb it). With the shared budget every loop
// draws from one pool, so the total wire calls of one doomed operation stay
// linear in the budget.
func TestRetryStormBounded(t *testing.T) {
	tc := newTestCluster(t)
	reg := obs.NewRegistry()
	tc.net.SetObs(reg)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2", func(o *Options) { o.OpBudget = 6 })

	ctx := context.Background()
	if err := c1.Mkdir(ctx, "/dir", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := c1.Create(ctx, "/dir/seed", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	// Cut c2 off from the leader in both directions; the lease manager stays
	// reachable, so rediscovery keeps answering "c1 leads" and every retry
	// path stays live until the budget stops it.
	plan := rpc.NewFaultPlan(tc.env, 1)
	plan.Partition([]rpc.Addr{c2.Addr()}, []rpc.Addr{c1.Addr()})
	plan.Partition([]rpc.Addr{c1.Addr()}, []rpc.Addr{c2.Addr()})
	tc.net.SetFaultPlan(plan)
	defer func() {
		plan.HealAll()
		tc.net.SetFaultPlan(nil)
	}()

	calls := reg.Counter("rpc.calls")
	before := calls.Value()
	_, err = c2.Create(ctx, "/dir/stormy", 0644)
	if err == nil {
		t.Fatal("create through a partition succeeded")
	}
	// The surfaced errno depends on which loop exhausts the budget first:
	// ESTALE (leader unreachable), ETIMEDOUT, or EAGAIN are all honest.
	if !errors.Is(err, types.ErrTimedOut) && !errors.Is(err, types.ErrAgain) && !errors.Is(err, types.ErrStale) {
		t.Fatalf("err = %v, want timeout/pushback/stale", err)
	}
	wire := calls.Value() - before
	if wire == 0 {
		t.Fatal("no wire calls recorded; instrumentation broken")
	}
	// Budget 6: at most 7 attempts, each a handful of wire calls (leader
	// lookup + forwarded op). The pre-budget behavior multiplied the nested
	// loops into hundreds of calls here.
	const bound = 40
	if wire > bound {
		t.Fatalf("doomed create emitted %d wire calls, want ≤ %d (retry storm)", wire, bound)
	}
	t.Logf("doomed create: %d wire calls", wire)
}
