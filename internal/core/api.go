package core

import (
	"errors"
	"fmt"
	"time"

	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Public near-POSIX API. Every call charges the FUSE overhead once (the
// application-visible request) and then routes per-directory: local metatable
// operations when this client leads the parent, forwarded RPCs otherwise.

// maxOpRetries bounds retries when leadership moves mid-operation (ESTALE).
const maxOpRetries = 8

// Mkdir creates a directory.
func (c *Client) Mkdir(path string, mode types.Mode) error {
	c.chargeFUSE()
	res, err := c.resolvePath(path, true)
	if err != nil {
		return errnoWrap("mkdir", path, err)
	}
	if res.name == "" || res.node != nil {
		return errnoWrap("mkdir", path, types.ErrExist)
	}
	_, err = c.create(res.parent, CreateReq{
		Dir: res.parent, Name: res.name, Type: types.TypeDir,
		Mode: mode, Cred: c.opts.Cred, NewIno: c.inoSrc.Next(), Exclusive: true,
	})
	return errnoWrap("mkdir", path, err)
}

// Symlink creates a symbolic link at path pointing to target.
func (c *Client) Symlink(target, path string) error {
	c.chargeFUSE()
	res, err := c.resolvePath(path, false)
	if err != nil {
		return errnoWrap("symlink", path, err)
	}
	if res.name == "" || res.node != nil {
		return errnoWrap("symlink", path, types.ErrExist)
	}
	_, err = c.create(res.parent, CreateReq{
		Dir: res.parent, Name: res.name, Type: types.TypeSymlink,
		Mode: 0777, Target: target, Cred: c.opts.Cred,
		NewIno: c.inoSrc.Next(), Exclusive: true,
	})
	return errnoWrap("symlink", path, err)
}

// Readlink returns the target of a symlink.
func (c *Client) Readlink(path string) (string, error) {
	c.chargeFUSE()
	res, err := c.resolvePath(path, false)
	if err != nil {
		return "", errnoWrap("readlink", path, err)
	}
	if res.node == nil {
		return "", errnoWrap("readlink", path, types.ErrNotExist)
	}
	if res.node.Type != types.TypeSymlink {
		return "", errnoWrap("readlink", path, types.ErrInval)
	}
	return res.node.Target, nil
}

// Stat returns the inode at path, following symlinks.
func (c *Client) Stat(path string) (*types.Inode, error) {
	c.chargeFUSE()
	res, err := c.resolvePath(path, true)
	if err != nil {
		return nil, errnoWrap("stat", path, err)
	}
	if res.node == nil {
		return nil, errnoWrap("stat", path, types.ErrNotExist)
	}
	return res.node, nil
}

// Lstat returns the inode at path without following a final symlink.
func (c *Client) Lstat(path string) (*types.Inode, error) {
	c.chargeFUSE()
	res, err := c.resolvePath(path, false)
	if err != nil {
		return nil, errnoWrap("lstat", path, err)
	}
	if res.node == nil {
		return nil, errnoWrap("lstat", path, types.ErrNotExist)
	}
	return res.node, nil
}

// Unlink removes a file or symlink.
func (c *Client) Unlink(path string) error {
	c.chargeFUSE()
	res, err := c.resolvePath(path, false)
	if err != nil {
		return errnoWrap("unlink", path, err)
	}
	if res.name == "" {
		return errnoWrap("unlink", path, types.ErrIsDir)
	}
	err = c.unlink(res.parent, UnlinkReq{Dir: res.parent, Name: res.name, Cred: c.opts.Cred})
	c.pcacheInvalidate(res.parent)
	return errnoWrap("unlink", path, err)
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(path string) error {
	c.chargeFUSE()
	res, err := c.resolvePath(path, false)
	if err != nil {
		return errnoWrap("rmdir", path, err)
	}
	if res.name == "" {
		return errnoWrap("rmdir", path, types.ErrBusy) // removing "/"
	}
	if res.node == nil {
		return errnoWrap("rmdir", path, types.ErrNotExist)
	}
	if !res.node.IsDir() {
		return errnoWrap("rmdir", path, types.ErrNotDir)
	}
	// Emptiness is the target directory's business: consult its leader (or
	// become it). The window between this check and the unlink is accepted,
	// as directory creation requires the parent lease we are about to use.
	entries, err := c.readdirIno(res.node.Ino)
	if err != nil {
		return errnoWrap("rmdir", path, err)
	}
	if len(entries) > 0 {
		return errnoWrap("rmdir", path, types.ErrNotEmpty)
	}
	// Give up our own lease on the dying directory before removing it.
	_ = c.ReleaseDir(res.node.Ino)
	err = c.unlink(res.parent, UnlinkReq{Dir: res.parent, Name: res.name, Rmdir: true, Cred: c.opts.Cred})
	c.pcacheInvalidate(res.parent)
	return errnoWrap("rmdir", path, err)
}

// Readdir lists a directory.
func (c *Client) Readdir(path string) ([]wire.Dentry, error) {
	c.chargeFUSE()
	res, err := c.resolvePath(path, true)
	if err != nil {
		return nil, errnoWrap("readdir", path, err)
	}
	if res.node == nil {
		return nil, errnoWrap("readdir", path, types.ErrNotExist)
	}
	if !res.node.IsDir() {
		return nil, errnoWrap("readdir", path, types.ErrNotDir)
	}
	entries, err := c.readdirIno(res.node.Ino)
	return entries, errnoWrap("readdir", path, err)
}

// Chmod changes permission bits.
func (c *Client) Chmod(path string, mode types.Mode) error {
	_, err := c.setAttr(path, AttrPatch{SetMode: true, Mode: mode})
	return errnoWrap("chmod", path, err)
}

// Chown changes ownership (root only, as in POSIX without CAP_CHOWN games).
func (c *Client) Chown(path string, uid, gid uint32) error {
	_, err := c.setAttr(path, AttrPatch{SetOwner: true, Uid: uid, Gid: gid})
	return errnoWrap("chown", path, err)
}

// SetACL installs a POSIX.1e-style access control list.
func (c *Client) SetACL(path string, acl types.ACL) error {
	_, err := c.setAttr(path, AttrPatch{SetACL: true, ACL: acl})
	return errnoWrap("setfacl", path, err)
}

// Utimes sets the modification time.
func (c *Client) Utimes(path string, mtime time.Duration) error {
	_, err := c.setAttr(path, AttrPatch{SetTimes: true, Mtime: mtime})
	return errnoWrap("utimes", path, err)
}

// Truncate sets the file size.
func (c *Client) Truncate(path string, size int64) error {
	if size < 0 {
		return errnoWrap("truncate", path, types.ErrInval)
	}
	_, err := c.setAttr(path, AttrPatch{SetSize: true, Size: size})
	return errnoWrap("truncate", path, err)
}

// Fsync flushes the journal of the directory containing path — the
// metadata-durability half of fsync(2); File.Sync covers data.
func (c *Client) Fsync(path string) error {
	c.chargeFUSE()
	res, err := c.resolvePath(path, true)
	if err != nil {
		return errnoWrap("fsync", path, err)
	}
	dir := res.parent
	if res.node != nil && res.node.IsDir() {
		dir = res.node.Ino
	}
	if _, ok := c.ledDirFor(dir); ok {
		return errnoWrap("fsync", path, c.jrnl.Flush(dir))
	}
	return nil // a remote leader owns the journal; its commit cadence applies
}

// FlushAll writes back all cached data and commits and checkpoints every
// journal this client owns (the fsync-per-phase behavior the benchmarks use).
func (c *Client) FlushAll() error {
	if err := c.data.FlushAll(); err != nil {
		return err
	}
	if err := c.jrnl.FlushAll(); err != nil {
		return err
	}
	// Surface any background write-back failure (lease recall, close path)
	// recorded since the last FlushAll; the failed entries stayed dirty, so
	// the FlushAll above has already retried them.
	return c.takeWBErr()
}

// --- dispatch helpers --------------------------------------------------------

// create routes a CreateReq to the parent's leader.
func (c *Client) create(parent types.Ino, req CreateReq) (*types.Inode, error) {
	for attempt := 0; ; attempt++ {
		ld, leader, err := c.routeFor(parent)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			return c.localCreate(ld, parent, req)
		}
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(leader, parent, req)
		if err = retryable(err, attempt); err != nil {
			return nil, err
		} else if resp == nil {
			c.retryBackoff(attempt) // stale route (leader moved or unreachable)
			continue
		}
		cr := resp.(CreateResp)
		if cr.Err == "ESTALE" && attempt < maxOpRetries {
			c.invalidateLeader(parent)
			c.retryBackoff(attempt)
			continue
		}
		if err := errFromString(cr.Err); err != nil {
			return nil, err
		}
		node, err := wire.DecodeInode(cr.Inode)
		if err != nil {
			return nil, err
		}
		c.pcachePutLookup(parent, req.Name, node)
		return node, nil
	}
}

// unlink routes an UnlinkReq to the parent's leader.
func (c *Client) unlink(parent types.Ino, req UnlinkReq) error {
	for attempt := 0; ; attempt++ {
		ld, leader, err := c.routeFor(parent)
		if err != nil {
			return err
		}
		if ld != nil {
			return c.localUnlink(ld, parent, req)
		}
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(leader, parent, req)
		if err = retryable(err, attempt); err != nil {
			return err
		} else if resp == nil {
			c.retryBackoff(attempt) // stale route (leader moved or unreachable)
			continue
		}
		ur := resp.(UnlinkResp)
		if ur.Err == "ESTALE" && attempt < maxOpRetries {
			c.invalidateLeader(parent)
			c.retryBackoff(attempt)
			continue
		}
		return errFromString(ur.Err)
	}
}

// setAttr resolves path and routes the patch to the right leader.
func (c *Client) setAttr(path string, patch AttrPatch) (*types.Inode, error) {
	c.chargeFUSE()
	res, err := c.resolvePath(path, true)
	if err != nil {
		return nil, err
	}
	if res.node == nil {
		return nil, types.ErrNotExist
	}
	// Attribute ownership follows the dentry: the parent directory's leader
	// holds the authoritative inode copy of every child, directories
	// included. Only the root, which has no parent entry, is handled by its
	// own leader (name "").
	node, err := c.setAttrIno(res.parent, res.name, patch, false)
	if err != nil {
		return nil, err
	}
	c.pcacheInvalidate(res.parent)
	if node.IsDir() {
		c.pcacheInvalidate(node.Ino)
		// If we lead the directory whose attributes changed, refresh the
		// snapshot its own metatable uses for access checks. Other leaders
		// refresh at their next lease turnover (bounded staleness, like the
		// permission-cache relaxation).
		if ld, ok := c.ledDirFor(node.Ino); ok {
			ld.opMu.Lock()
			ld.table.SetDirInode(node)
			ld.opMu.Unlock()
		}
	}
	return node, nil
}

// setAttrIno routes a SetAttrReq for (dir, name) to its leader.
func (c *Client) setAttrIno(dir types.Ino, name string, patch AttrPatch, implicit bool) (*types.Inode, error) {
	req := SetAttrReq{Dir: dir, Name: name, Cred: c.opts.Cred, Patch: patch, Implicit: implicit}
	for attempt := 0; ; attempt++ {
		ld, leader, err := c.routeFor(dir)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			return c.localSetAttr(ld, dir, req)
		}
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(leader, dir, req)
		if err = retryable(err, attempt); err != nil {
			return nil, err
		} else if resp == nil {
			c.retryBackoff(attempt) // stale route (leader moved or unreachable)
			continue
		}
		sr := resp.(SetAttrResp)
		if sr.Err == "ESTALE" && attempt < maxOpRetries {
			c.invalidateLeader(dir)
			c.retryBackoff(attempt)
			continue
		}
		if err := errFromString(sr.Err); err != nil {
			return nil, err
		}
		return wire.DecodeInode(sr.Inode)
	}
}

// readdirIno lists a directory by inode through its leader.
func (c *Client) readdirIno(dir types.Ino) ([]wire.Dentry, error) {
	req := ReaddirReq{Dir: dir, Cred: c.opts.Cred}
	for attempt := 0; ; attempt++ {
		ld, leader, err := c.routeFor(dir)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			return c.localReaddir(ld, req)
		}
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(leader, dir, req)
		if err = retryable(err, attempt); err != nil {
			return nil, err
		} else if resp == nil {
			c.retryBackoff(attempt) // stale route (leader moved or unreachable)
			continue
		}
		rr := resp.(ReaddirResp)
		if rr.Err == "ESTALE" && attempt < maxOpRetries {
			c.invalidateLeader(dir)
			c.retryBackoff(attempt)
			continue
		}
		if err := errFromString(rr.Err); err != nil {
			return nil, err
		}
		return rr.Entries, nil
	}
}

// retryable maps a callLeader error to retry/stop: leadership changes
// (ErrStale) retry by returning (nil error, nil resp signal); anything else
// stops. attempt counting guards against livelock.
func retryable(err error, attempt int) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, types.ErrStale) && attempt < maxOpRetries {
		return nil
	}
	return fmt.Errorf("core: forwarded op: %w", err)
}
