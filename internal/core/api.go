package core

import (
	"context"
	"fmt"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Public near-POSIX API. Every call charges the FUSE overhead once (the
// application-visible request) and then routes per-directory: local metatable
// operations when this client leads the parent, forwarded RPCs otherwise.
//
// Every operation takes a context: deadlines and cancellation are honored at
// forwarded-RPC boundaries and in lease-acquire wait loops, and the per-op
// trace span rides the context into the routing layers, which tag it with the
// chosen route (local vs remote), the parent directory, and retries.

// maxOpRetries bounds retries when leadership moves mid-operation (ESTALE).
const maxOpRetries = 8

// opTrack measures one public operation: a trace span, committed to the ring
// at end, plus the op's latency histogram.
type opTrack struct {
	c     *Client
	hist  *obs.Histogram
	span  *obs.Span
	start time.Duration
}

// startOp opens a span for op and attaches it to ctx. With observability off
// it returns ctx unchanged and a nil tracker; end is nil-safe, so call sites
// never branch. This is where the tenant attribution is minted: the root
// span carries it and the context propagates it through every forward (the
// RPC envelope lifts it on each hop). The operation's shared retry budget is
// minted here too, so every retry loop under this call — and, via the
// envelope, under its forwarded hops — draws from one pool.
func (c *Client) startOp(ctx context.Context, op, path string) (context.Context, *opTrack) {
	ctx = c.withOpBudget(ctx)
	if c.obsReg == nil {
		return ctx, nil
	}
	t := &opTrack{c: c, hist: c.opHists[op], span: c.tracer.Start(op, path), start: c.env.Now()}
	t.span.SetTenant(c.opts.Tenant)
	ctx = obs.WithTenant(ctx, c.opts.Tenant)
	if t.span != nil {
		ctx = obs.WithSpan(ctx, t.span)
	}
	return ctx, t
}

// end closes the span and records the operation latency — globally and in the
// per-tenant table, with the trace ID as the bucket exemplar — passing err
// through so call sites stay one-liners.
func (t *opTrack) end(err error) error {
	if t == nil {
		return err
	}
	t.span.End(err)
	d := t.c.env.Now() - t.start
	var trace obs.TraceID
	var retries int
	if t.span != nil {
		trace = t.span.Trace
		retries = t.span.Retries
	}
	t.hist.ObserveTrace(d, trace)
	t.c.tenants.Observe(t.c.opts.Tenant, d, trace, err != nil, retries)
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(ctx context.Context, path string, mode types.Mode) error {
	ctx, op := c.startOp(ctx, "mkdir", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, true)
	if err != nil {
		return op.end(errnoWrap("mkdir", path, err))
	}
	if res.name == "" || res.node != nil {
		return op.end(errnoWrap("mkdir", path, types.ErrExist))
	}
	_, err = c.create(ctx, res.parent, CreateReq{
		Dir: res.parent, Name: res.name, Type: types.TypeDir,
		Mode: mode, Cred: c.opts.Cred, NewIno: c.inoSrc.Next(), Exclusive: true,
	})
	return op.end(errnoWrap("mkdir", path, err))
}

// Symlink creates a symbolic link at path pointing to target.
func (c *Client) Symlink(ctx context.Context, target, path string) error {
	ctx, op := c.startOp(ctx, "symlink", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, false)
	if err != nil {
		return op.end(errnoWrap("symlink", path, err))
	}
	if res.name == "" || res.node != nil {
		return op.end(errnoWrap("symlink", path, types.ErrExist))
	}
	_, err = c.create(ctx, res.parent, CreateReq{
		Dir: res.parent, Name: res.name, Type: types.TypeSymlink,
		Mode: 0777, Target: target, Cred: c.opts.Cred,
		NewIno: c.inoSrc.Next(), Exclusive: true,
	})
	return op.end(errnoWrap("symlink", path, err))
}

// Readlink returns the target of a symlink.
func (c *Client) Readlink(ctx context.Context, path string) (string, error) {
	ctx, op := c.startOp(ctx, "readlink", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, false)
	if err != nil {
		return "", op.end(errnoWrap("readlink", path, err))
	}
	if res.node == nil {
		return "", op.end(errnoWrap("readlink", path, types.ErrNotExist))
	}
	if res.node.Type != types.TypeSymlink {
		return "", op.end(errnoWrap("readlink", path, types.ErrInval))
	}
	return res.node.Target, op.end(nil)
}

// Stat returns the inode at path, following symlinks.
func (c *Client) Stat(ctx context.Context, path string) (*types.Inode, error) {
	ctx, op := c.startOp(ctx, "stat", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, true)
	if err != nil {
		return nil, op.end(errnoWrap("stat", path, err))
	}
	if res.node == nil {
		return nil, op.end(errnoWrap("stat", path, types.ErrNotExist))
	}
	return res.node, op.end(nil)
}

// Lstat returns the inode at path without following a final symlink.
func (c *Client) Lstat(ctx context.Context, path string) (*types.Inode, error) {
	ctx, op := c.startOp(ctx, "lstat", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, false)
	if err != nil {
		return nil, op.end(errnoWrap("lstat", path, err))
	}
	if res.node == nil {
		return nil, op.end(errnoWrap("lstat", path, types.ErrNotExist))
	}
	return res.node, op.end(nil)
}

// Unlink removes a file or symlink.
func (c *Client) Unlink(ctx context.Context, path string) error {
	ctx, op := c.startOp(ctx, "unlink", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, false)
	if err != nil {
		return op.end(errnoWrap("unlink", path, err))
	}
	if res.name == "" {
		return op.end(errnoWrap("unlink", path, types.ErrIsDir))
	}
	err = c.unlink(ctx, res.parent, UnlinkReq{Dir: res.parent, Name: res.name, Cred: c.opts.Cred})
	c.pcacheInvalidate(res.parent)
	return op.end(errnoWrap("unlink", path, err))
}

// Rmdir removes an empty directory.
func (c *Client) Rmdir(ctx context.Context, path string) error {
	ctx, op := c.startOp(ctx, "rmdir", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, false)
	if err != nil {
		return op.end(errnoWrap("rmdir", path, err))
	}
	if res.name == "" {
		return op.end(errnoWrap("rmdir", path, types.ErrBusy)) // removing "/"
	}
	if res.node == nil {
		return op.end(errnoWrap("rmdir", path, types.ErrNotExist))
	}
	if !res.node.IsDir() {
		return op.end(errnoWrap("rmdir", path, types.ErrNotDir))
	}
	// Emptiness is the target directory's business: consult its leader (or
	// become it). The window between this check and the unlink is accepted,
	// as directory creation requires the parent lease we are about to use.
	entries, err := c.readdirIno(ctx, res.node.Ino)
	if err != nil {
		return op.end(errnoWrap("rmdir", path, err))
	}
	if len(entries) > 0 {
		return op.end(errnoWrap("rmdir", path, types.ErrNotEmpty))
	}
	// Give up our own lease on the dying directory before removing it.
	_ = c.ReleaseDir(res.node.Ino)
	err = c.unlink(ctx, res.parent, UnlinkReq{Dir: res.parent, Name: res.name, Rmdir: true, Cred: c.opts.Cred})
	c.pcacheInvalidate(res.parent)
	return op.end(errnoWrap("rmdir", path, err))
}

// Readdir lists a directory.
func (c *Client) Readdir(ctx context.Context, path string) ([]wire.Dentry, error) {
	ctx, op := c.startOp(ctx, "readdir", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, true)
	if err != nil {
		return nil, op.end(errnoWrap("readdir", path, err))
	}
	if res.node == nil {
		return nil, op.end(errnoWrap("readdir", path, types.ErrNotExist))
	}
	if !res.node.IsDir() {
		return nil, op.end(errnoWrap("readdir", path, types.ErrNotDir))
	}
	entries, err := c.readdirIno(ctx, res.node.Ino)
	return entries, op.end(errnoWrap("readdir", path, err))
}

// Chmod changes permission bits.
func (c *Client) Chmod(ctx context.Context, path string, mode types.Mode) error {
	ctx, op := c.startOp(ctx, "chmod", path)
	_, err := c.setAttr(ctx, path, AttrPatch{SetMode: true, Mode: mode})
	return op.end(errnoWrap("chmod", path, err))
}

// Chown changes ownership (root only, as in POSIX without CAP_CHOWN games).
func (c *Client) Chown(ctx context.Context, path string, uid, gid uint32) error {
	ctx, op := c.startOp(ctx, "chown", path)
	_, err := c.setAttr(ctx, path, AttrPatch{SetOwner: true, Uid: uid, Gid: gid})
	return op.end(errnoWrap("chown", path, err))
}

// SetACL installs a POSIX.1e-style access control list.
func (c *Client) SetACL(ctx context.Context, path string, acl types.ACL) error {
	ctx, op := c.startOp(ctx, "setfacl", path)
	_, err := c.setAttr(ctx, path, AttrPatch{SetACL: true, ACL: acl})
	return op.end(errnoWrap("setfacl", path, err))
}

// Utimes sets the modification time.
func (c *Client) Utimes(ctx context.Context, path string, mtime time.Duration) error {
	ctx, op := c.startOp(ctx, "utimes", path)
	_, err := c.setAttr(ctx, path, AttrPatch{SetTimes: true, Mtime: mtime})
	return op.end(errnoWrap("utimes", path, err))
}

// Truncate sets the file size.
func (c *Client) Truncate(ctx context.Context, path string, size int64) error {
	ctx, op := c.startOp(ctx, "truncate", path)
	if size < 0 {
		return op.end(errnoWrap("truncate", path, types.ErrInval))
	}
	_, err := c.setAttr(ctx, path, AttrPatch{SetSize: true, Size: size})
	return op.end(errnoWrap("truncate", path, err))
}

// Fsync flushes the journal of the directory containing path — the
// metadata-durability half of fsync(2); File.Sync covers data.
func (c *Client) Fsync(ctx context.Context, path string) error {
	ctx, op := c.startOp(ctx, "fsync", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, true)
	if err != nil {
		return op.end(errnoWrap("fsync", path, err))
	}
	dir := res.parent
	if res.node != nil && res.node.IsDir() {
		dir = res.node.Ino
	}
	if ld, ok := c.ledDirFor(dir); ok {
		return op.end(errnoWrap("fsync", path, c.fsyncDir(dir, ld)))
	}
	return op.end(nil) // a remote leader owns the journal; its commit cadence applies
}

// FlushAll writes back all cached data and makes every acknowledged metadata
// mutation durable (the fsync-per-phase behavior the benchmarks use). The
// journal half is a durability barrier, not a checkpoint: once every journal
// record is in the object store, a crash is recoverable by replay, and the
// checkpoint workers fold the records into the original objects behind the
// barrier. Lease handoff (Close, ReleaseDir) still uses the strong
// commit-and-checkpoint flush.
func (c *Client) FlushAll(ctx context.Context) error {
	_, op := c.startOp(ctx, "flushall", "")
	if err := c.data.FlushAll(); err != nil {
		return op.end(err)
	}
	if err := c.jrnl.BarrierAll(); err != nil {
		return op.end(err)
	}
	// Surface any background write-back failure (lease recall, close path)
	// recorded since the last FlushAll; the failed entries stayed dirty, so
	// the FlushAll above has already retried them.
	return op.end(c.takeWBErr())
}

// --- dispatch helpers --------------------------------------------------------

// create routes a CreateReq to the parent's leader.
func (c *Client) create(ctx context.Context, parent types.Ino, req CreateReq) (*types.Inode, error) {
	sp := obs.SpanFrom(ctx)
	sp.SetDir(parent)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ld, leader, err := c.routeFor(ctx, parent)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			sp.SetRoute(obs.RouteLocal)
			return c.localCreate(ctx, ld, parent, req)
		}
		sp.SetRoute(obs.RouteRemote)
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(ctx, leader, parent, req)
		if err != nil {
			if c.shouldRetry(ctx, parent, err, attempt) {
				continue
			}
			return nil, fmt.Errorf("core: forwarded op: %w", err)
		}
		cr := resp.(CreateResp)
		rerr := errFromString(cr.Err)
		if rerr != nil {
			if c.shouldRetry(ctx, parent, rerr, attempt) {
				continue
			}
			return nil, rerr
		}
		node, err := wire.DecodeInode(cr.Inode)
		if err != nil {
			return nil, err
		}
		c.pcachePutLookup(parent, req.Name, node)
		return node, nil
	}
}

// unlink routes an UnlinkReq to the parent's leader.
func (c *Client) unlink(ctx context.Context, parent types.Ino, req UnlinkReq) error {
	sp := obs.SpanFrom(ctx)
	sp.SetDir(parent)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ld, leader, err := c.routeFor(ctx, parent)
		if err != nil {
			return err
		}
		if ld != nil {
			sp.SetRoute(obs.RouteLocal)
			return c.localUnlink(ctx, ld, parent, req)
		}
		sp.SetRoute(obs.RouteRemote)
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(ctx, leader, parent, req)
		if err != nil {
			if c.shouldRetry(ctx, parent, err, attempt) {
				continue
			}
			return fmt.Errorf("core: forwarded op: %w", err)
		}
		ur := resp.(UnlinkResp)
		rerr := errFromString(ur.Err)
		if rerr != nil && c.shouldRetry(ctx, parent, rerr, attempt) {
			continue
		}
		return rerr
	}
}

// setAttr resolves path and routes the patch to the right leader.
func (c *Client) setAttr(ctx context.Context, path string, patch AttrPatch) (*types.Inode, error) {
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, true)
	if err != nil {
		return nil, err
	}
	if res.node == nil {
		return nil, types.ErrNotExist
	}
	// Attribute ownership follows the dentry: the parent directory's leader
	// holds the authoritative inode copy of every child, directories
	// included. Only the root, which has no parent entry, is handled by its
	// own leader (name "").
	node, err := c.setAttrIno(ctx, res.parent, res.name, patch, false)
	if err != nil {
		return nil, err
	}
	c.pcacheInvalidate(res.parent)
	if node.IsDir() {
		c.pcacheInvalidate(node.Ino)
		// If we lead the directory whose attributes changed, refresh the
		// snapshot its own metatable uses for access checks. Other leaders
		// refresh at their next lease turnover (bounded staleness, like the
		// permission-cache relaxation).
		if ld, ok := c.ledDirFor(node.Ino); ok {
			ld.opMu.Lock()
			ld.table.SetDirInode(node)
			ld.opMu.Unlock()
		}
	}
	return node, nil
}

// setAttrIno routes a SetAttrReq for (dir, name) to its leader.
func (c *Client) setAttrIno(ctx context.Context, dir types.Ino, name string, patch AttrPatch, implicit bool) (*types.Inode, error) {
	sp := obs.SpanFrom(ctx)
	sp.SetDir(dir)
	req := SetAttrReq{Dir: dir, Name: name, Cred: c.opts.Cred, Patch: patch, Implicit: implicit}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ld, leader, err := c.routeFor(ctx, dir)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			sp.SetRoute(obs.RouteLocal)
			return c.localSetAttr(ctx, ld, dir, req)
		}
		sp.SetRoute(obs.RouteRemote)
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(ctx, leader, dir, req)
		if err != nil {
			if c.shouldRetry(ctx, dir, err, attempt) {
				continue
			}
			return nil, fmt.Errorf("core: forwarded op: %w", err)
		}
		sr := resp.(SetAttrResp)
		rerr := errFromString(sr.Err)
		if rerr != nil {
			if c.shouldRetry(ctx, dir, rerr, attempt) {
				continue
			}
			return nil, rerr
		}
		return wire.DecodeInode(sr.Inode)
	}
}

// readdirIno lists a directory by inode through its leader.
func (c *Client) readdirIno(ctx context.Context, dir types.Ino) ([]wire.Dentry, error) {
	sp := obs.SpanFrom(ctx)
	sp.SetDir(dir)
	req := ReaddirReq{Dir: dir, Cred: c.opts.Cred}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ld, leader, err := c.routeFor(ctx, dir)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			sp.SetRoute(obs.RouteLocal)
			return c.localReaddir(ld, req)
		}
		sp.SetRoute(obs.RouteRemote)
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(ctx, leader, dir, req)
		if err != nil {
			if c.shouldRetry(ctx, dir, err, attempt) {
				continue
			}
			return nil, fmt.Errorf("core: forwarded op: %w", err)
		}
		rr := resp.(ReaddirResp)
		rerr := errFromString(rr.Err)
		if rerr != nil {
			if c.shouldRetry(ctx, dir, rerr, attempt) {
				continue
			}
			return nil, rerr
		}
		return rr.Entries, nil
	}
}
