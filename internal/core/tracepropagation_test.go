package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/rpc"
)

// spansOf collects every retained span of trace id across the given rings.
func spansOf(id obs.TraceID, tracers ...*obs.Tracer) []obs.Span {
	var out []obs.Span
	for _, tr := range tracers {
		out = append(out, tr.Filter(func(s obs.Span) bool { return s.Trace == id })...)
	}
	return out
}

// rootSpan finds the newest root span with the given op in a ring.
func rootSpan(t *testing.T, tr *obs.Tracer, op string) obs.Span {
	t.Helper()
	var found *obs.Span
	for _, s := range tr.Spans() {
		if s.Op == op && s.Parent == 0 {
			s := s
			found = &s
		}
	}
	if found == nil {
		t.Fatalf("no root %q span in ring:\n%s", op, tr.Dump(0))
	}
	return *found
}

// TestTraceSpansRedirectedOp: a forwarded create produces ONE trace whose
// spans live in both participants' rings — the requester's root, the leader's
// server-side span, and the leader's journal commit with its object-store put
// — all causally linked by parent IDs.
func TestTraceSpansRedirectedOp(t *testing.T) {
	tc := newTestCluster(t)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "leader", withObs(r1))
	c2 := tc.client(t, "peer", withObs(r2))
	ctx := context.Background()

	if err := c1.Mkdir(ctx, "/shared", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/shared"); err != nil {
		t.Fatal(err)
	}

	f, err := c2.Create(ctx, "/shared/from-peer", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	root := rootSpan(t, c2.Tracer(), "open")
	if obs.SpanID(root.Trace) != root.ID {
		t.Fatalf("root span ID %s != trace ID %s", root.ID, root.Trace)
	}

	// The leader's journal commit for the forwarded create lands after the
	// commit interval (or a flush); poll both.
	deadline := time.Now().Add(5 * time.Second)
	var spans []obs.Span
	for {
		_ = c1.FlushAll(ctx)
		spans = spansOf(root.Trace, c1.Tracer(), c2.Tracer())
		if hasOp(spans, "journal.commit") && hasOp(spans, "objstore.put") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal.commit/objstore.put never joined trace %s:\n%+v", root.Trace, spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if len(spans) < 4 {
		t.Fatalf("trace %s has %d spans, want >= 4: %+v", root.Trace, len(spans), spans)
	}
	procs := map[string]bool{}
	byID := map[obs.SpanID]obs.Span{}
	for _, s := range spans {
		procs[s.Proc] = true
		byID[s.ID] = s
	}
	if len(procs) < 2 {
		t.Fatalf("trace %s confined to one process: %v", root.Trace, procs)
	}

	// Causal links: serve.create parents under the requester's root; the
	// journal commit parents under serve.create; the put under the commit.
	serve := mustOp(t, spans, "serve.create")
	if serve.Parent != root.ID {
		t.Fatalf("serve.create parent = %s, want root %s", serve.Parent, root.ID)
	}
	if serve.Proc == root.Proc {
		t.Fatal("serve.create ran in the requester's process")
	}
	commit := mustOp(t, spans, "journal.commit")
	if commit.Parent != serve.ID {
		t.Fatalf("journal.commit parent = %s, want serve.create %s", commit.Parent, serve.ID)
	}
	put := mustOp(t, spans, "objstore.put")
	if put.Parent != commit.ID {
		t.Fatalf("objstore.put parent = %s, want journal.commit %s", put.Parent, commit.ID)
	}
}

// TestTraceSpansCrossDirRename: a cross-directory rename (2PC) produces one
// trace with prepare spans on both participants, parented into the
// coordinator's operation.
func TestTraceSpansCrossDirRename(t *testing.T) {
	tc := newTestCluster(t)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "src", withObs(r1))
	c2 := tc.client(t, "dst", withObs(r2))
	ctx := context.Background()

	if err := c1.Mkdir(ctx, "/a", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c1.Mkdir(ctx, "/b", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/a"); err != nil { // c1 leads /a (source)
		t.Fatal(err)
	}
	if _, err := c2.Readdir(ctx, "/b"); err != nil { // c2 leads /b (destination)
		t.Fatal(err)
	}
	f, err := c1.Create(ctx, "/a/f", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := c1.Rename(ctx, "/a/f", "/b/f"); err != nil {
		t.Fatal(err)
	}

	root := rootSpan(t, c1.Tracer(), "rename")
	spans := spansOf(root.Trace, c1.Tracer(), c2.Tracer())
	if len(spans) < 4 {
		t.Fatalf("rename trace has %d spans, want >= 4: %+v", len(spans), spans)
	}

	// Coordinator side: the prepare record write parents under the rename.
	var coordPrep, partPrep, servePrep obs.Span
	for _, s := range spans {
		switch {
		case s.Op == "journal.2pc.prepare" && s.Proc == root.Proc:
			coordPrep = s
		case s.Op == "journal.2pc.prepare" && s.Proc != root.Proc:
			partPrep = s
		case s.Op == "serve.rename.prepare":
			servePrep = s
		}
	}
	if coordPrep.ID == 0 {
		t.Fatalf("no coordinator 2pc.prepare span:\n%+v", spans)
	}
	if coordPrep.Parent != root.ID {
		t.Fatalf("coordinator prepare parent = %s, want rename root %s", coordPrep.Parent, root.ID)
	}
	if servePrep.ID == 0 || servePrep.Proc == root.Proc {
		t.Fatalf("participant serve.rename.prepare missing or misplaced:\n%+v", spans)
	}
	if servePrep.Parent != root.ID {
		t.Fatalf("serve.rename.prepare parent = %s, want rename root %s", servePrep.Parent, root.ID)
	}
	if partPrep.ID == 0 {
		t.Fatalf("no participant 2pc.prepare span:\n%+v", spans)
	}
	if partPrep.Parent != servePrep.ID {
		t.Fatalf("participant prepare parent = %s, want serve span %s", partPrep.Parent, servePrep.ID)
	}
	if !hasOp(spans, "journal.2pc.decision") {
		t.Fatalf("no decision span in trace:\n%+v", spans)
	}
	procs := map[string]bool{}
	for _, s := range spans {
		procs[s.Proc] = true
	}
	if len(procs) < 2 {
		t.Fatalf("2PC trace confined to one process: %v", procs)
	}
}

// TestTraceRetriesReuseTrace: under seeded network drops, a retried operation
// stays ONE trace — the root span is minted once per public op and retries
// only bump its retry counter, so span-per-op stays exactly 1.
func TestTraceRetriesReuseTrace(t *testing.T) {
	tc := newTestCluster(t)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "leader", withObs(r1))
	c2 := tc.client(t, "peer", withObs(r2), func(o *Options) { o.TraceCap = 2048 })
	ctx := context.Background()

	if err := c1.Mkdir(ctx, "/drop", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/drop"); err != nil {
		t.Fatal(err)
	}

	plan := rpc.NewFaultPlan(tc.env, 7)
	plan.SetDrop(0.3)
	tc.net.SetFaultPlan(plan)
	defer tc.net.SetFaultPlan(nil)

	const ops = 25
	for i := 0; i < ops; i++ {
		// Individual failures are acceptable (retry budgets are finite); the
		// invariant under test is one root span per call either way.
		f, err := c2.Create(ctx, fmt.Sprintf("/drop/f%02d", i), 0644)
		if err == nil {
			_ = f.Close()
		}
	}
	tc.net.SetFaultPlan(nil)

	roots := c2.Tracer().Filter(func(s obs.Span) bool {
		return s.Op == "open" && s.Parent == 0
	})
	if len(roots) != ops {
		t.Fatalf("%d root open spans for %d calls — retries minted new traces", len(roots), ops)
	}
	traces := map[obs.TraceID]bool{}
	var retried int
	for _, s := range roots {
		if traces[s.Trace] {
			t.Fatalf("trace %s reused across calls", s.Trace)
		}
		traces[s.Trace] = true
		if s.Retries > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no retried spans despite a 30% drop rate — fault plan not exercised")
	}
}

func hasOp(spans []obs.Span, op string) bool {
	for _, s := range spans {
		if s.Op == op {
			return true
		}
	}
	return false
}

func mustOp(t *testing.T, spans []obs.Span, op string) obs.Span {
	t.Helper()
	for _, s := range spans {
		if s.Op == op {
			return s
		}
	}
	t.Fatalf("no %q span in trace: %+v", op, spans)
	return obs.Span{}
}
