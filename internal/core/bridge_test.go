package core

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// TestMultiProcessDeploymentOverTCP wires the full multi-process topology
// inside one test: an HTTP object gateway, a lease manager in its own
// "process" (separate rpc.Network) bridged over TCP, and two clients in two
// further "processes" that reach the manager and each other only through
// TCP bridges. It is the cmd/objstored + cmd/leasemgr + cmd/arkfs topology.
func TestMultiProcessDeploymentOverTCP(t *testing.T) {
	// Shared object store over real HTTP.
	gw := httptest.NewServer(objstore.NewGateway(objstore.NewMemStore()))
	defer gw.Close()

	// "Process" 1: the lease manager.
	mgrEnv := sim.NewRealEnv()
	defer mgrEnv.Shutdown()
	mgrNet := rpc.NewNetwork(mgrEnv, sim.NetModel{})
	mgr := lease.NewManager(mgrNet, lease.Options{Period: time.Second})
	defer mgr.Close()
	mgrBridge, err := mgrNet.Bridge("127.0.0.1:0", mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mgrBridge.Close()
	mgrAddr := rpc.TCPAddr(mgrBridge.Addr())

	// Advertise needs the bridge address before the client talks to the
	// manager, so construct carefully: bind a listener first.
	env1 := sim.NewRealEnv()
	defer env1.Shutdown()
	net1 := rpc.NewNetwork(env1, sim.NetModel{})
	store1 := objstore.NewHTTPStore(gw.URL)
	tr1 := prt.New(store1, 64<<10)
	if err := Format(tr1); err != nil {
		t.Fatal(err)
	}
	// Reserve the service name, bridge it, then create the client that
	// advertises the bridged address.
	c1 := New(net1, tr1, Options{
		ID: "p1", Cred: types.Cred{Uid: 1000, Gid: 1000},
		LeaseMgr: mgrAddr, LeasePeriod: time.Second,
		Journal:   journal.Config{CommitInterval: 20 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2},
		Advertise: "tcp!pending-p1",
	})
	defer c1.Close()
	b1, err := net1.Bridge("127.0.0.1:0", c1.ServiceName())
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	c1.SetAdvertise(rpc.TCPAddr(b1.Addr()))

	env2 := sim.NewRealEnv()
	defer env2.Shutdown()
	net2 := rpc.NewNetwork(env2, sim.NetModel{})
	store2 := objstore.NewHTTPStore(gw.URL)
	tr2 := prt.New(store2, 64<<10)
	c2 := New(net2, tr2, Options{
		ID: "p2", Cred: types.Cred{Uid: 1000, Gid: 1000},
		LeaseMgr: mgrAddr, LeasePeriod: time.Second,
		Journal:   journal.Config{CommitInterval: 20 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2},
		Advertise: "tcp!pending-p2",
	})
	defer c2.Close()
	b2, err := net2.Bridge("127.0.0.1:0", c2.ServiceName())
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	c2.SetAdvertise(rpc.TCPAddr(b2.Addr()))

	// p1 builds a tree; it leads / and /shared.
	if err := c1.Mkdir(context.Background(), "/shared", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := c1.Create(context.Background(), "/shared/hello", 0666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// p2 reads through p1's leadership: its lookup RPCs cross a real TCP
	// bridge, and the data bytes cross real HTTP.
	st, err := c2.Stat(context.Background(), "/shared/hello")
	if err != nil {
		t.Fatalf("cross-process stat: %v", err)
	}
	if st.Size != 8 {
		t.Fatalf("size = %d", st.Size)
	}
	r, err := c2.Open(context.Background(), "/shared/hello", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Close()
	if string(data) != "over tcp" {
		t.Fatalf("data = %q", data)
	}
	// And p2 creates a file in p1's directory — a forwarded op over TCP.
	g, err := c2.Create(context.Background(), "/shared/from-p2", 0666)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Close()
	ents, err := c1.Readdir(context.Background(), "/shared")
	if err != nil || len(ents) != 2 {
		t.Fatalf("p1 sees %v, %v", ents, err)
	}
}

// TestLeaseManagerRestartEndToEnd crashes the lease manager, restarts it in
// quiesce mode, and checks clients resume after the quiesce window
// (paper §III-E-2).
func TestLeaseManagerRestartEndToEnd(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	net := rpc.NewNetwork(env, sim.NetModel{})
	tr := prt.New(objstore.NewMemStore(), 4096)
	if err := Format(tr); err != nil {
		t.Fatal(err)
	}
	mgr := lease.NewManager(net, lease.Options{Period: 300 * time.Millisecond})
	c := New(net, tr, Options{
		ID: "a", Cred: types.Cred{Uid: 1, Gid: 1},
		LeasePeriod: 300 * time.Millisecond,
		Journal:     journal.Config{CommitInterval: 20 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2},
	})
	defer c.Close()
	if err := c.Mkdir(context.Background(), "/d", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := c.Create(context.Background(), "/d/before", 0644)
	_ = f.Close()

	// Manager crashes; a client holding its lease keeps working on its own
	// directory until the lease runs out (paper: "any client who has the
	// lease can continue its work").
	mgr.Close()
	g, err := c.Create(context.Background(), "/d/during", 0644)
	if err != nil {
		t.Fatalf("work during manager outage: %v", err)
	}
	_ = g.Close()

	// The manager restarts with a fresh state in quiesce mode.
	mgr2 := lease.NewManager(net, lease.Options{Period: 300 * time.Millisecond, Restarted: true})
	defer mgr2.Close()

	// New-directory access needs a fresh lease: it must eventually succeed
	// (after the quiesce window).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Mkdir(context.Background(), "/d2", 0777); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after manager restart")
		}
		time.Sleep(50 * time.Millisecond)
	}
	h, err := c.Create(context.Background(), "/d2/after", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	for _, p := range []string{"/d/before", "/d/during", "/d2/after"} {
		if _, err := c.Stat(context.Background(), p); err != nil {
			t.Errorf("stat %s after restart: %v", p, err)
		}
	}
}
