package core

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/prt"
	"arkfs/internal/types"
)

// TestCrashDuringCrossClientRenameRecovers exercises the full §III-E story
// at the client level: a rename between directories led by two clients, one
// of which crashes mid-protocol; surviving state must converge after
// recovery — the file exists in exactly one of the two directories.
func TestCrashDuringCrossClientRenameRecovers(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2")
	if err := c1.Mkdir(context.Background(), "/src", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c2.Mkdir(context.Background(), "/dst", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := c1.Create(context.Background(), "/src/file", 0666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c1.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The rename completes; then BOTH clients crash before further flushes.
	// Everything the rename needed durable (prepare, decision, applied
	// checkpoints or journal records) must let a third client reconstruct a
	// consistent tree.
	if err := c2.Rename(context.Background(), "/src/file", "/dst/file"); err != nil {
		t.Fatal(err)
	}
	c1.Crash()
	c2.Crash()

	c3 := tc.client(t, "c3")
	deadline := time.Now().Add(15 * time.Second)
	var inSrc, inDst bool
	for {
		_, errSrc := c3.Stat(context.Background(), "/src/file")
		_, errDst := c3.Stat(context.Background(), "/dst/file")
		inSrc, inDst = errSrc == nil, errDst == nil
		if inSrc != inDst { // exactly one location: converged
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rename state never converged: inSrc=%v inDst=%v (errSrc=%v errDst=%v)",
				inSrc, inDst, errSrc, errDst)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !inDst {
		t.Fatalf("committed rename rolled back: file in src=%v dst=%v", inSrc, inDst)
	}
	// No journal residue after recovery settles and c3 flushes.
	if err := c3.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Force recovery of both directories by listing them through c3.
	if _, err := c3.Readdir(context.Background(), "/src"); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Readdir(context.Background(), "/dst"); err != nil {
		t.Fatal(err)
	}
	keys, _ := tc.store.List(prt.PrefixJournal)
	// Retained 2PC decision records are permitted; committed transaction
	// records are not (they would mean unreplayed state).
	for _, k := range keys {
		t.Logf("journal residue (allowed if decision record): %s", k)
	}
}

// TestRecoveryAfterCrashWithBufferedOps: operations buffered in the running
// transaction (never committed) are allowed to be lost on crash, but
// everything before the last fsync must survive.
func TestRecoveryAfterCrashWithBufferedOps(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1", func(o *Options) {
		// A very long commit interval: buffered ops are never committed
		// unless fsynced.
		o.Journal.CommitInterval = time.Hour
	})
	if err := c1.Mkdir(context.Background(), "/w", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := c1.Create(context.Background(), "/w/durable", 0644)
	_ = f.Close()
	if err := c1.FlushAll(context.Background()); err != nil { // fsync barrier
		t.Fatal(err)
	}
	g, _ := c1.Create(context.Background(), "/w/volatile", 0644)
	_ = g.Close()
	c1.Crash() // /w/volatile was only in the running transaction

	c2 := tc.client(t, "c2")
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := c2.Stat(context.Background(), "/w/durable"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("durable file lost")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The volatile file may be lost (allowed), but the directory must be
	// consistent: listing works and contains the durable entry.
	ents, err := c2.Readdir(context.Background(), "/w")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, de := range ents {
		if de.Name == "durable" {
			found = true
		}
	}
	if !found {
		t.Fatalf("durable entry missing from %v", ents)
	}
}

// TestRecoveryReplaysUnlink: a committed-but-not-checkpointed unlink must be
// replayed, removing both the entry and its data chunks.
func TestRecoveryReplaysUnlink(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	if err := c1.Mkdir(context.Background(), "/u", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := c1.Create(context.Background(), "/u/victim", 0644)
	_, _ = f.Write(make([]byte, 10000))
	_ = f.Sync()
	_ = f.Close()
	if err := c1.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Fail checkpoint-side deletes so the unlink commits but cannot apply.
	tc.fault.FailNext("i:", 100)
	if err := c1.Unlink(context.Background(), "/u/victim"); err != nil {
		t.Fatal(err)
	}
	_ = c1.FlushAll(context.Background()) // commit lands; checkpoint fails
	c1.Crash()
	tc.fault.FailNext("", 0)

	c2 := tc.client(t, "c2")
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := c2.Stat(context.Background(), "/u/victim"); isNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unlink never replayed")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Its data chunks are gone too.
	keys, _ := tc.store.List(prt.PrefixData)
	if len(keys) != 0 {
		t.Fatalf("victim data survived recovery: %v", keys)
	}
	_ = types.ErrNotExist
}
