package core

import (
	"errors"
	"fmt"

	"arkfs/internal/prt"
	"arkfs/internal/types"
)

// Format initializes an empty ArkFS file system on the object store: it
// writes the superblock (formatting parameters, used by later mounts and by
// arkfsck) and the root directory's inode (mode 0777 so any credential can
// build a namespace underneath; tighten with Chmod afterwards if desired).
// Format is idempotent; re-formatting with a different chunk size fails.
func Format(tr *prt.Translator) error {
	if raw, err := tr.Store().Get(prt.SuperblockKey); err == nil {
		sb, derr := prt.DecodeSuperblock(raw)
		if derr != nil {
			return fmt.Errorf("core: format: %w", derr)
		}
		if sb.ChunkSize != tr.ChunkSize() {
			return fmt.Errorf("core: format: image has chunk size %d, mount uses %d: %w",
				sb.ChunkSize, tr.ChunkSize(), types.ErrInval)
		}
		return nil // already formatted, compatible
	} else if !errors.Is(err, types.ErrNotExist) {
		return fmt.Errorf("core: format probe: %w", err)
	}
	sb := prt.Superblock{Version: 1, ChunkSize: tr.ChunkSize()}
	if err := tr.Store().Put(prt.SuperblockKey, prt.EncodeSuperblock(sb)); err != nil {
		return fmt.Errorf("core: format superblock: %w", err)
	}
	root := &types.Inode{
		Ino:   types.RootIno,
		Type:  types.TypeDir,
		Mode:  0777,
		Nlink: 2,
	}
	if err := tr.SaveInode(root); err != nil {
		return fmt.Errorf("core: format: %w", err)
	}
	return nil
}
