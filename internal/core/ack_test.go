package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"arkfs/internal/crashpoint"
	"arkfs/internal/types"
)

// crashClient builds a client carrying a crashpoint set, for scripting the
// exact instant the process dies relative to the async commit pipeline.
func crashClient(t *testing.T, tc *testCluster, id string) (*Client, *crashpoint.Set) {
	t.Helper()
	set := crashpoint.NewSet()
	c := tc.client(t, id, func(o *Options) { o.Crash = set })
	return c, set
}

// waitReaddir polls until a successor client can serve the directory (the
// dead leader's lease must lapse first) and returns the entries.
func waitReaddir(t *testing.T, c *Client, path string) []string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		des, err := c.Readdir(context.Background(), path)
		if err == nil {
			names := make([]string, len(des))
			for i, de := range des {
				names[i] = de.Name
			}
			return names
		}
		if time.Now().After(deadline) {
			t.Fatalf("successor never served %s: %v", path, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func has(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// A crash before the journal PUT loses the acknowledged-but-unsynced op —
// which is allowed — but fsync must then report failure, never success: the
// ack-durable contract is "fsync returned nil implies the op survives".
func TestCrashBeforeJournalPutFailsFsync(t *testing.T) {
	tc := newTestCluster(t)
	c1, set := crashClient(t, tc, "c1")
	ctx := context.Background()
	if err := c1.Mkdir(ctx, "/d", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := c1.Create(ctx, "/d/keep", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := c1.FlushAll(ctx); err != nil { // /d and /d/keep become durable
		t.Fatal(err)
	}

	f, err = c1.Create(ctx, "/d/lost", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	set.Arm(crashpoint.PreJournalPut, c1.Crash)
	if err := c1.Fsync(ctx, "/d/lost"); err == nil {
		t.Fatal("fsync returned nil for a record that never reached the store")
	}
	fired := set.Fired()
	if len(fired) != 1 || fired[0] != crashpoint.PreJournalPut {
		t.Fatalf("crash site did not fire as scripted: %v", fired)
	}

	c2 := tc.client(t, "c2")
	names := waitReaddir(t, c2, "/d")
	if !has(names, "keep") {
		t.Fatalf("durable /d/keep lost after recovery: %v", names)
	}
	if has(names, "lost") {
		t.Fatalf("/d/lost survived a crash before its journal PUT: %v", names)
	}
}

// A crash the instant the journal record lands is the async pipeline's
// critical window: the op is durable but nothing is checkpointed and the
// client never confirmed the fsync. The successor's replay must surface it.
func TestCrashAfterJournalPutRecordSurvives(t *testing.T) {
	tc := newTestCluster(t)
	c1, set := crashClient(t, tc, "c1")
	ctx := context.Background()
	if err := c1.Mkdir(ctx, "/d", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c1.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}

	f, err := c1.Create(ctx, "/d/x", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	set.Arm(crashpoint.PostJournalPut, c1.Crash)
	_ = c1.Fsync(ctx, "/d/x") // the PUT fires the kill; the error is immaterial
	fired := set.Fired()
	if len(fired) != 1 || fired[0] != crashpoint.PostJournalPut {
		t.Fatalf("crash site did not fire as scripted: %v", fired)
	}

	c2 := tc.client(t, "c2")
	names := waitReaddir(t, c2, "/d")
	if !has(names, "x") {
		t.Fatalf("durable record not replayed: /d/x missing from %v", names)
	}
	if _, err := c2.Stat(ctx, "/d/x"); err != nil {
		t.Fatalf("stat of replayed file: %v", err)
	}
}

// A cross-directory rename's prepare phase must barrier the source and
// destination journals first: earlier acknowledged ops in those directories
// become durable before any 2PC record exists, so a crash right after the
// prepares cannot lose them (the rename itself dies by presumed abort).
func TestPrepareBarriersEarlierAcknowledgedOps(t *testing.T) {
	tc := newTestCluster(t)
	c1, set := crashClient(t, tc, "c1")
	ctx := context.Background()
	for _, d := range []string{"/a", "/b"} {
		if err := c1.Mkdir(ctx, d, 0777); err != nil {
			t.Fatal(err)
		}
	}
	f, err := c1.Create(ctx, "/a/src", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := c1.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Acknowledged but not yet durable: only the rename's pre-prepare
	// barrier stands between this create and the crash.
	f, err = c1.Create(ctx, "/a/x", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	set.Arm(crashpoint.TwoPCPostPrepare, c1.Crash)
	renameErr := c1.Rename(ctx, "/a/src", "/b/dst")
	fired := set.Fired()
	if len(fired) != 1 || fired[0] != crashpoint.TwoPCPostPrepare {
		t.Fatalf("crash site did not fire as scripted: %v (rename err %v)", fired, renameErr)
	}

	c2 := tc.client(t, "c2")
	aNames := waitReaddir(t, c2, "/a")
	if !has(aNames, "x") {
		t.Fatalf("/a/x lost despite the prepare barrier: %v", aNames)
	}
	// Presumed abort: the half-renamed file stays at its source.
	if !has(aNames, "src") {
		t.Fatalf("/a/src gone after aborted rename: %v", aNames)
	}
	if _, err := c2.Stat(ctx, "/b/dst"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("/b/dst exists after presumed abort: %v", err)
	}
}
