package core

import (
	"context"

	"arkfs/internal/obs"
	"arkfs/internal/qos"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// serve dispatches one forwarded operation on a directory this client leads
// (paper §III-B: "the rest of the clients ... send their requests to the
// directory leader so that the directory leader can perform the requested
// operations on behalf of the other clients"). The worker context carries the
// caller's wire span context; serve opens one server-side child span per
// request so a forwarded operation stitches into a single trace across both
// processes, and journal writes triggered below parent under that span.
func (c *Client) serve(ctx context.Context, req any) any {
	op, dir := serveMeta(req)
	sp := c.tracer.StartChild(obs.RemoteFrom(ctx), op, "")
	if sp != nil {
		sp.SetDir(dir)
		sp.SetTenant(obs.TenantFrom(ctx))
		sp.SetWait(obs.QueueWaitFrom(ctx))
		ctx = obs.WithSpan(ctx, sp)
	}
	if err := c.admit(ctx, req); err != nil {
		resp := shedResp(req, err)
		sp.End(err)
		return resp
	}
	resp := c.dispatch(ctx, req)
	sp.End(errFromString(respErr(resp)))
	return resp
}

// admit is the leader-side overload gate, run before a forwarded operation
// dispatches: per-tenant token-bucket admission control first, then the
// brownout ladder against the journal's commit-pipeline pressure. Refusals
// return a typed EAGAIN whose retry-after hint rides the response's errno
// string back to the caller. Protocol-internal messages are exempt: a 2PC
// decision or a cache-flush broadcast is the cleanup half of work already
// admitted, and refusing it would turn overload into stuck transactions.
func (c *Client) admit(ctx context.Context, req any) error {
	switch req.(type) {
	case DecideRenameReq, FlushCacheReq, CloseFileReq:
		return nil
	}
	if c.opts.QoS != nil {
		if ok, after := c.opts.QoS.Admit(obs.TenantFrom(ctx), c.qosNow()); !ok {
			c.cShedAdmit.Inc()
			return types.AgainAfter(after, "admission")
		}
	}
	if c.opts.Brownout != nil {
		if shed, after := c.opts.Brownout.Sheds(c.jrnl.Pressure(), opCost(req)); shed {
			c.cShedBrownout.Inc()
			return types.AgainAfter(after, "brownout")
		}
	}
	return nil
}

// opCost classifies a forwarded operation for the brownout ladder: reads of
// single entries are cheap (never shed — they are also how clients discover
// that pressure dropped), mutations are normal, and full-directory listings
// plus 2PC renames — the ops that hold locks longest and feed the journal
// most — are expensive, shed first.
func opCost(req any) qos.OpCost {
	switch req.(type) {
	case LookupReq, StatReq:
		return qos.CostCheap
	case ReaddirReq, RenameReq, PrepareRenameReq:
		return qos.CostExpensive
	default:
		return qos.CostNormal
	}
}

// shedResp wraps a typed refusal in the response type matching req, so the
// pushback travels the same errno channel every other error uses.
func shedResp(req any, err error) any {
	e := errString(err)
	switch req.(type) {
	case LookupReq:
		return LookupResp{Err: e}
	case CreateReq:
		return CreateResp{Err: e}
	case UnlinkReq:
		return UnlinkResp{Err: e}
	case StatReq:
		return StatResp{Err: e}
	case SetAttrReq:
		return SetAttrResp{Err: e}
	case ReaddirReq:
		return ReaddirResp{Err: e}
	case RenameReq:
		return RenameResp{Err: e}
	case PrepareRenameReq:
		return PrepareRenameResp{Err: e}
	case OpenReq:
		return OpenResp{Err: e}
	case WriteLeaseReq:
		return WriteLeaseResp{Err: e}
	default:
		return StatResp{Err: e}
	}
}

func (c *Client) dispatch(ctx context.Context, req any) any {
	switch r := req.(type) {
	case LookupReq:
		return c.serveLookup(r)
	case CreateReq:
		return c.serveCreate(ctx, r)
	case UnlinkReq:
		return c.serveUnlink(ctx, r)
	case StatReq:
		return c.serveStat(r)
	case SetAttrReq:
		return c.serveSetAttr(ctx, r)
	case ReaddirReq:
		return c.serveReaddir(r)
	case RenameReq:
		// Forwarded renames run under the server worker's context — trace
		// identity but no deadline: the requesting client's deadline applies
		// to its RPC, not to the coordinator's 2PC, which must run to a
		// decision once started.
		return RenameResp{Err: errString(c.coordinateRename(ctx, r))}
	case PrepareRenameReq:
		return c.servePrepareRename(ctx, r)
	case DecideRenameReq:
		return c.serveDecideRename(ctx, r)
	case OpenReq:
		return c.serveOpen(r)
	case WriteLeaseReq:
		return c.serveWriteLease(r)
	case CloseFileReq:
		return c.serveCloseFile(ctx, r)
	case FlushCacheReq:
		return c.serveFlushCache(r)
	default:
		return StatResp{Err: "EINVAL"}
	}
}

// serveMeta names the server-side span for a request and extracts the
// directory it targets.
func serveMeta(req any) (string, types.Ino) {
	switch r := req.(type) {
	case LookupReq:
		return "serve.lookup", r.Dir
	case CreateReq:
		return "serve.create", r.Dir
	case UnlinkReq:
		return "serve.unlink", r.Dir
	case StatReq:
		return "serve.stat", r.Dir
	case SetAttrReq:
		return "serve.setattr", r.Dir
	case ReaddirReq:
		return "serve.readdir", r.Dir
	case RenameReq:
		return "serve.rename", r.SrcDir
	case PrepareRenameReq:
		return "serve.rename.prepare", r.DstDir
	case DecideRenameReq:
		return "serve.rename.decide", r.DstDir
	case OpenReq:
		return "serve.open", r.Dir
	case WriteLeaseReq:
		return "serve.writelease", r.Dir
	case CloseFileReq:
		return "serve.close", r.Dir
	case FlushCacheReq:
		return "serve.flushcache", types.Ino{}
	default:
		return "serve.unknown", types.Ino{}
	}
}

// respErr extracts the errno string from any service response.
func respErr(resp any) string {
	switch r := resp.(type) {
	case LookupResp:
		return r.Err
	case CreateResp:
		return r.Err
	case UnlinkResp:
		return r.Err
	case StatResp:
		return r.Err
	case SetAttrResp:
		return r.Err
	case ReaddirResp:
		return r.Err
	case RenameResp:
		return r.Err
	case PrepareRenameResp:
		return r.Err
	case DecideRenameResp:
		return r.Err
	case OpenResp:
		return r.Err
	case WriteLeaseResp:
		return r.Err
	case CloseFileResp:
		return r.Err
	case FlushCacheResp:
		return r.Err
	default:
		return ""
	}
}

// mustLead returns the ledDir for dir or an ESTALE error string: the caller
// was redirected here but our lease is gone, so they must rediscover.
func (c *Client) mustLead(dir types.Ino) (*ledDir, string) {
	if ld, ok := c.ledDirFor(dir); ok {
		return ld, ""
	}
	return nil, "ESTALE"
}

func (c *Client) serveLookup(r LookupReq) LookupResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return LookupResp{Err: errStr}
	}
	var resp LookupResp
	dirNode := ld.table.DirInode()
	if r.WantDirInode {
		resp.DirInode = wire.EncodeInode(dirNode)
	}
	if err := dirNode.Access(r.Cred, types.MayExec); err != nil {
		resp.Err = errString(err)
		return resp
	}
	c.chargeMetaOp()
	_, child, err := ld.table.Lookup(r.Name)
	if err != nil {
		resp.Err = errString(err)
		return resp
	}
	resp.Inode = wire.EncodeInode(child)
	return resp
}

func (c *Client) serveCreate(ctx context.Context, r CreateReq) CreateResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return CreateResp{Err: errStr}
	}
	node, err := c.localCreate(ctx, ld, r.Dir, r)
	if err != nil {
		return CreateResp{Err: errString(err)}
	}
	return CreateResp{Inode: wire.EncodeInode(node)}
}

func (c *Client) serveUnlink(ctx context.Context, r UnlinkReq) UnlinkResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return UnlinkResp{Err: errStr}
	}
	return UnlinkResp{Err: errString(c.localUnlink(ctx, ld, r.Dir, r))}
}

func (c *Client) serveStat(r StatReq) StatResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return StatResp{Err: errStr}
	}
	node, err := c.localStat(ld, r)
	if err != nil {
		return StatResp{Err: errString(err)}
	}
	return StatResp{Inode: wire.EncodeInode(node)}
}

func (c *Client) serveSetAttr(ctx context.Context, r SetAttrReq) SetAttrResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return SetAttrResp{Err: errStr}
	}
	node, err := c.localSetAttr(ctx, ld, r.Dir, r)
	if err != nil {
		return SetAttrResp{Err: errString(err)}
	}
	return SetAttrResp{Inode: wire.EncodeInode(node)}
}

func (c *Client) serveReaddir(r ReaddirReq) ReaddirResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return ReaddirResp{Err: errStr}
	}
	entries, err := c.localReaddir(ld, r)
	if err != nil {
		return ReaddirResp{Err: errString(err)}
	}
	return ReaddirResp{Entries: entries}
}
