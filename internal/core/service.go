package core

import (
	"context"

	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// serve dispatches one forwarded operation on a directory this client leads
// (paper §III-B: "the rest of the clients ... send their requests to the
// directory leader so that the directory leader can perform the requested
// operations on behalf of the other clients").
func (c *Client) serve(req any) any {
	switch r := req.(type) {
	case LookupReq:
		return c.serveLookup(r)
	case CreateReq:
		return c.serveCreate(r)
	case UnlinkReq:
		return c.serveUnlink(r)
	case StatReq:
		return c.serveStat(r)
	case SetAttrReq:
		return c.serveSetAttr(r)
	case ReaddirReq:
		return c.serveReaddir(r)
	case RenameReq:
		// Forwarded renames run under the server's own (background) context;
		// the requesting client's deadline applies to its RPC, not to the
		// coordinator's 2PC, which must run to a decision once started.
		return RenameResp{Err: errString(c.coordinateRename(context.Background(), r))}
	case PrepareRenameReq:
		return c.servePrepareRename(r)
	case DecideRenameReq:
		return c.serveDecideRename(r)
	case OpenReq:
		return c.serveOpen(r)
	case WriteLeaseReq:
		return c.serveWriteLease(r)
	case CloseFileReq:
		return c.serveCloseFile(r)
	case FlushCacheReq:
		return c.serveFlushCache(r)
	default:
		return StatResp{Err: "EINVAL"}
	}
}

// mustLead returns the ledDir for dir or an ESTALE error string: the caller
// was redirected here but our lease is gone, so they must rediscover.
func (c *Client) mustLead(dir types.Ino) (*ledDir, string) {
	if ld, ok := c.ledDirFor(dir); ok {
		return ld, ""
	}
	return nil, "ESTALE"
}

func (c *Client) serveLookup(r LookupReq) LookupResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return LookupResp{Err: errStr}
	}
	var resp LookupResp
	dirNode := ld.table.DirInode()
	if r.WantDirInode {
		resp.DirInode = wire.EncodeInode(dirNode)
	}
	if err := dirNode.Access(r.Cred, types.MayExec); err != nil {
		resp.Err = errString(err)
		return resp
	}
	c.chargeMetaOp()
	_, child, err := ld.table.Lookup(r.Name)
	if err != nil {
		resp.Err = errString(err)
		return resp
	}
	resp.Inode = wire.EncodeInode(child)
	return resp
}

func (c *Client) serveCreate(r CreateReq) CreateResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return CreateResp{Err: errStr}
	}
	node, err := c.localCreate(ld, r.Dir, r)
	if err != nil {
		return CreateResp{Err: errString(err)}
	}
	return CreateResp{Inode: wire.EncodeInode(node)}
}

func (c *Client) serveUnlink(r UnlinkReq) UnlinkResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return UnlinkResp{Err: errStr}
	}
	return UnlinkResp{Err: errString(c.localUnlink(ld, r.Dir, r))}
}

func (c *Client) serveStat(r StatReq) StatResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return StatResp{Err: errStr}
	}
	node, err := c.localStat(ld, r)
	if err != nil {
		return StatResp{Err: errString(err)}
	}
	return StatResp{Inode: wire.EncodeInode(node)}
}

func (c *Client) serveSetAttr(r SetAttrReq) SetAttrResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return SetAttrResp{Err: errStr}
	}
	node, err := c.localSetAttr(ld, r.Dir, r)
	if err != nil {
		return SetAttrResp{Err: errString(err)}
	}
	return SetAttrResp{Inode: wire.EncodeInode(node)}
}

func (c *Client) serveReaddir(r ReaddirReq) ReaddirResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return ReaddirResp{Err: errStr}
	}
	entries, err := c.localReaddir(ld, r)
	if err != nil {
		return ReaddirResp{Err: errString(err)}
	}
	return ReaddirResp{Entries: entries}
}
