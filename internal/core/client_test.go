package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// testCluster wires a complete ArkFS deployment on an in-memory store with a
// wall-clock environment and fast timeouts.
type testCluster struct {
	env   sim.Env
	net   *rpc.Network
	tr    *prt.Translator
	mgr   *lease.Manager
	store *objstore.MemStore
	fault *objstore.FaultStore
}

func newTestCluster(t testing.TB) *testCluster {
	t.Helper()
	env := sim.NewRealEnv()
	t.Cleanup(env.Shutdown)
	net := rpc.NewNetwork(env, sim.NetModel{})
	store := objstore.NewMemStore()
	fault := objstore.NewFaultStore(store)
	tr := prt.New(fault, 4096)
	if err := Format(tr); err != nil {
		t.Fatal(err)
	}
	mgr := lease.NewManager(net, lease.Options{Period: 500 * time.Millisecond, Workers: 4})
	t.Cleanup(mgr.Close)
	return &testCluster{env: env, net: net, tr: tr, mgr: mgr, store: store, fault: fault}
}

func (tc *testCluster) client(t testing.TB, id string, opts ...func(*Options)) *Client {
	t.Helper()
	o := Options{
		ID:          id,
		Cred:        types.Cred{Uid: 1000, Gid: 1000},
		LeasePeriod: tc.mgr.Period(),
		LeaseMargin: tc.mgr.Period() / 4,
		Journal:     journal.Config{CommitInterval: 20 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2},
	}
	for _, f := range opts {
		f(&o)
	}
	c := New(tc.net, tc.tr, o)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestMkdirCreateStatReaddir(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/home", 0755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir(context.Background(), "/home/user", 0750); err != nil {
		t.Fatal(err)
	}
	f, err := c.Create(context.Background(), "/home/user/hello.txt", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat(context.Background(), "/home/user/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 2 || st.Type != types.TypeRegular || st.Mode != 0644 || st.Uid != 1000 {
		t.Fatalf("stat: %+v", st)
	}
	ents, err := c.Readdir(context.Background(), "/home/user")
	if err != nil || len(ents) != 1 || ents[0].Name != "hello.txt" {
		t.Fatalf("readdir: %v, %v", ents, err)
	}
	// Root listing.
	ents, err = c.Readdir(context.Background(), "/")
	if err != nil || len(ents) != 1 || ents[0].Name != "home" {
		t.Fatalf("readdir /: %v, %v", ents, err)
	}
	// Errors.
	if _, err := c.Stat(context.Background(), "/nope"); !isNotExist(err) {
		t.Fatalf("stat missing: %v", err)
	}
	if err := c.Mkdir(context.Background(), "/home", 0755); !errors.Is(err, types.ErrExist) {
		t.Fatalf("mkdir dup: %v", err)
	}
	if _, err := c.Readdir(context.Background(), "/home/user/hello.txt"); !errors.Is(err, types.ErrNotDir) {
		t.Fatalf("readdir file: %v", err)
	}
}

func TestWriteReadBackThroughStore(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/d", 0755); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 2048) // 16 KiB over 4 KiB chunks
	f, err := c.Create(context.Background(), "/d/file", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and read back.
	g, err := c.Open(context.Background(), "/d/file", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %d bytes, want %d", len(got), len(payload))
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlinkAndRmdir(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/d", 0755); err != nil {
		t.Fatal(err)
	}
	f, _ := c.Create(context.Background(), "/d/x", 0644)
	_, _ = f.Write([]byte("data"))
	_ = f.Close()

	if err := c.Rmdir(context.Background(), "/d"); !errors.Is(err, types.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := c.Unlink(context.Background(), "/d"); !errors.Is(err, types.ErrIsDir) {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := c.Unlink(context.Background(), "/d/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(context.Background(), "/d/x"); !isNotExist(err) {
		t.Fatalf("stat after unlink: %v", err)
	}
	if err := c.Rmdir(context.Background(), "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(context.Background(), "/d"); !isNotExist(err) {
		t.Fatalf("stat after rmdir: %v", err)
	}
	// After a full flush and checkpoint, the store must not leak objects for
	// the deleted tree (superblock + root inode + root dentries only).
	// Client.FlushAll is a durability barrier; the journal's strong flush
	// forces the checkpoint this store-level assertion needs.
	if err := c.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.jrnl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	keys, _ := tc.store.List("")
	if len(keys) > 3 {
		t.Fatalf("leaked objects: %v", keys)
	}
}

func TestSymlinkResolution(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/real", 0755); err != nil {
		t.Fatal(err)
	}
	f, _ := c.Create(context.Background(), "/real/target", 0644)
	_, _ = f.Write([]byte("payload"))
	_ = f.Close()
	if err := c.Symlink(context.Background(), "/real", "/link"); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink(context.Background(), "target", "/real/rel"); err != nil {
		t.Fatal(err)
	}
	// Follow through the dir symlink.
	st, err := c.Stat(context.Background(), "/link/target")
	if err != nil || st.Size != 7 {
		t.Fatalf("stat via symlink: %+v, %v", st, err)
	}
	// Relative symlink.
	st, err = c.Stat(context.Background(), "/real/rel")
	if err != nil || st.Size != 7 {
		t.Fatalf("stat via relative symlink: %+v, %v", st, err)
	}
	// Lstat does not follow.
	ln, err := c.Lstat(context.Background(), "/link")
	if err != nil || ln.Type != types.TypeSymlink {
		t.Fatalf("lstat: %+v, %v", ln, err)
	}
	if tgt, err := c.Readlink(context.Background(), "/link"); err != nil || tgt != "/real" {
		t.Fatalf("readlink: %q, %v", tgt, err)
	}
	// Symlink loop.
	if err := c.Symlink(context.Background(), "/loop2", "/loop1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink(context.Background(), "/loop1", "/loop2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(context.Background(), "/loop1"); !errors.Is(err, types.ErrLoop) {
		t.Fatalf("loop: %v", err)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	tc := newTestCluster(t)
	owner := tc.client(t, "owner")
	other := tc.client(t, "other", func(o *Options) {
		o.Cred = types.Cred{Uid: 2000, Gid: 2000}
	})
	if err := owner.Mkdir(context.Background(), "/priv", 0700); err != nil {
		t.Fatal(err)
	}
	f, _ := owner.Create(context.Background(), "/priv/secret", 0600)
	_ = f.Close()
	if err := owner.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A different uid cannot traverse the 0700 directory.
	if _, err := other.Stat(context.Background(), "/priv/secret"); !errors.Is(err, types.ErrAccess) {
		t.Fatalf("traverse denied expected: %v", err)
	}
	if _, err := other.Readdir(context.Background(), "/priv"); !errors.Is(err, types.ErrAccess) {
		t.Fatalf("readdir denied expected: %v", err)
	}
	// Opening others' files read-only fails on mode bits.
	if err := owner.Chmod(context.Background(), "/priv", 0755); err != nil {
		t.Fatal(err)
	}
	if _, err := other.Open(context.Background(), "/priv/secret", types.ORdonly, 0); !errors.Is(err, types.ErrAccess) {
		t.Fatalf("open denied expected: %v", err)
	}
	// Non-owner cannot chmod.
	if err := other.Chmod(context.Background(), "/priv/secret", 0777); !errors.Is(err, types.ErrPerm) {
		t.Fatalf("chmod by non-owner: %v", err)
	}
	// ACL grants access to a named user.
	if err := owner.SetACL(context.Background(), "/priv/secret", types.ACL{
		{Tag: types.TagUserObj, Perms: 7},
		{Tag: types.TagUser, ID: 2000, Perms: types.MayRead},
		{Tag: types.TagMask, Perms: 7},
	}); err != nil {
		t.Fatal(err)
	}
	g, err := other.Open(context.Background(), "/priv/secret", types.ORdonly, 0)
	if err != nil {
		t.Fatalf("ACL-granted open failed: %v", err)
	}
	_ = g.Close()
}

func TestTruncateAndAppend(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	f, err := c.Create(context.Background(), "/f", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate(context.Background(), "/f", 4); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stat(context.Background(), "/f")
	if st.Size != 4 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
	// O_APPEND writes land at the end.
	g, err := c.Open(context.Background(), "/f", types.OWronly|types.OAppend, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Open(context.Background(), "/f", types.ORdonly, 0)
	got, _ := io.ReadAll(h)
	_ = h.Close()
	if string(got) != "0123XY" {
		t.Fatalf("content = %q", got)
	}
	// O_TRUNC empties.
	w, err := c.Open(context.Background(), "/f", types.OWronly|types.OTrunc, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	st, _ = c.Stat(context.Background(), "/f")
	if st.Size != 0 {
		t.Fatalf("size after O_TRUNC = %d", st.Size)
	}
}

func TestOpenFlagsSemantics(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if _, err := c.Open(context.Background(), "/missing", types.ORdonly, 0); !isNotExist(err) {
		t.Fatalf("open missing: %v", err)
	}
	f, err := c.Open(context.Background(), "/new", types.ORdwr|types.OCreate|types.OExcl, 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if _, err := c.Open(context.Background(), "/new", types.OWronly|types.OCreate|types.OExcl, 0644); !errors.Is(err, types.ErrExist) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
	// Write on read-only handle.
	r, _ := c.Open(context.Background(), "/new", types.ORdonly, 0)
	if _, err := r.Write([]byte("x")); !errors.Is(err, types.ErrBadFD) {
		t.Fatalf("write on O_RDONLY: %v", err)
	}
	_ = r.Close()
}
