package core

import (
	"context"
	"fmt"

	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Leader-side metadata operations: these run only on the client that holds
// the directory lease, mutate the metatable in memory, and log the changes
// into the per-directory journal. They are invoked both by this client's own
// public API and by the RPC service on behalf of other clients.

// localCreate creates a child (file, directory, or symlink) in a led
// directory. newIno is allocated by the caller so that remote creates keep
// inode allocation on the requesting client.
func (c *Client) localCreate(ctx context.Context, ld *ledDir, dir types.Ino, req CreateReq) (*types.Inode, error) {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	c.chargeMetaOp()
	c.stats.LocalMetaOps.Add(1)
	if err := ld.writable(); err != nil {
		return nil, err
	}
	if err := types.ValidName(req.Name); err != nil {
		return nil, err
	}
	dirNode := ld.table.DirInode()
	if err := dirNode.Access(req.Cred, types.MayWrite|types.MayExec); err != nil {
		return nil, err
	}
	now := c.env.Now()

	if _, existing, err := ld.table.Lookup(req.Name); err == nil {
		if req.Exclusive {
			return nil, fmt.Errorf("core: create %q: %w", req.Name, types.ErrExist)
		}
		if existing.IsDir() {
			return nil, fmt.Errorf("core: create %q: %w", req.Name, types.ErrIsDir)
		}
		if req.Type == types.TypeDir {
			return nil, fmt.Errorf("core: mkdir %q: %w", req.Name, types.ErrExist)
		}
		// O_CREAT on an existing file: return it (the open path truncates).
		return existing, nil
	}

	child := &types.Inode{
		Ino:   req.NewIno,
		Type:  req.Type,
		Mode:  req.Mode & 07777,
		Uid:   req.Cred.Uid,
		Gid:   req.Cred.Gid,
		Nlink: 1,
		Mtime: now, Ctime: now, Atime: now,
		Target: req.Target,
	}
	if req.Type == types.TypeDir {
		child.Nlink = 2
	}
	if err := ld.table.Insert(req.Name, child); err != nil {
		return nil, err
	}
	dirNode.Mtime, dirNode.Ctime = now, now
	ld.table.SetDirInode(dirNode)

	if req.Type == types.TypeDir {
		// Materialize the new directory's inode object immediately so any
		// client can acquire its lease and build a metatable before the
		// parent journal checkpoints.
		if err := c.tr.SaveInode(child); err != nil {
			return nil, fmt.Errorf("core: mkdir materialize: %w", err)
		}
	}
	c.jrnl.Log(ctx, dir, []wire.Op{
		{Kind: wire.OpSetInode, Inode: child},
		{Kind: wire.OpAddDentry, Name: req.Name, Ino: child.Ino, FType: child.Type},
		{Kind: wire.OpSetInode, Inode: dirNode},
	})
	return child, nil
}

// localUnlink removes a name from a led directory. For rmdir the caller has
// already verified the target directory is empty.
func (c *Client) localUnlink(ctx context.Context, ld *ledDir, dir types.Ino, req UnlinkReq) error {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	c.chargeMetaOp()
	c.stats.LocalMetaOps.Add(1)
	if err := ld.writable(); err != nil {
		return err
	}
	dirNode := ld.table.DirInode()
	if err := dirNode.Access(req.Cred, types.MayWrite|types.MayExec); err != nil {
		return err
	}
	_, victim, err := ld.table.Lookup(req.Name)
	if err != nil {
		return err
	}
	if req.Rmdir {
		if !victim.IsDir() {
			return fmt.Errorf("core: rmdir %q: %w", req.Name, types.ErrNotDir)
		}
	} else if victim.IsDir() {
		return fmt.Errorf("core: unlink %q: %w", req.Name, types.ErrIsDir)
	}
	// Sticky-bit directories: only the owner of the file or the directory
	// may remove (POSIX).
	if dirNode.Mode&types.ModeSticky != 0 && req.Cred.Uid != 0 &&
		req.Cred.Uid != victim.Uid && req.Cred.Uid != dirNode.Uid {
		return fmt.Errorf("core: unlink %q: sticky: %w", req.Name, types.ErrPerm)
	}
	if _, err := ld.table.Remove(req.Name); err != nil {
		return err
	}
	now := c.env.Now()
	dirNode.Mtime, dirNode.Ctime = now, now
	ld.table.SetDirInode(dirNode)
	c.data.Invalidate(victim.Ino)
	delete(ld.dataLeases, victim.Ino)
	c.jrnl.Log(ctx, dir, []wire.Op{
		{Kind: wire.OpDelDentry, Name: req.Name},
		{Kind: wire.OpDelInode, Ino: victim.Ino, Size: victim.Size, FType: victim.Type},
		{Kind: wire.OpSetInode, Inode: dirNode},
	})
	return nil
}

// localStat returns the inode of name within a led directory (or the
// directory's own inode when name is empty).
func (c *Client) localStat(ld *ledDir, req StatReq) (*types.Inode, error) {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	c.chargeMetaOp()
	c.stats.LocalMetaOps.Add(1)
	if req.Name == "" {
		return ld.table.DirInode(), nil
	}
	dirNode := ld.table.DirInode()
	if err := dirNode.Access(req.Cred, types.MayExec); err != nil {
		return nil, err
	}
	_, child, err := ld.table.Lookup(req.Name)
	return child, err
}

// localSetAttr applies an attribute patch to name (or the directory itself)
// in a led directory, enforcing POSIX ownership rules.
func (c *Client) localSetAttr(ctx context.Context, ld *ledDir, dir types.Ino, req SetAttrReq) (*types.Inode, error) {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	c.chargeMetaOp()
	c.stats.LocalMetaOps.Add(1)
	if err := ld.writable(); err != nil {
		return nil, err
	}
	var node *types.Inode
	if req.Name == "" {
		node = ld.table.DirInode()
	} else {
		var err error
		if _, node, err = ld.table.Lookup(req.Name); err != nil {
			return nil, err
		}
	}
	cred, p := req.Cred, req.Patch
	if !req.Implicit {
		isOwner := cred.Uid == 0 || cred.Uid == node.Uid
		if (p.SetMode || p.SetTimes || p.SetACL) && !isOwner {
			return nil, fmt.Errorf("core: setattr: %w", types.ErrPerm)
		}
		if p.SetOwner && cred.Uid != 0 {
			// Only root may change ownership (chown semantics).
			if p.Uid != node.Uid || !isOwner || !cred.InGroup(p.Gid) {
				return nil, fmt.Errorf("core: chown: %w", types.ErrPerm)
			}
		}
		if p.SetSize {
			if node.IsDir() {
				return nil, fmt.Errorf("core: truncate: %w", types.ErrIsDir)
			}
			if err := node.Access(cred, types.MayWrite); err != nil {
				return nil, err
			}
		}
	}
	now := c.env.Now()
	oldSize := node.Size
	if p.SetMode {
		node.Mode = p.Mode & 07777
	}
	if p.SetOwner {
		node.Uid, node.Gid = p.Uid, p.Gid
	}
	if p.SetSize {
		node.Size = p.Size
	}
	if p.SetTimes {
		node.Mtime = p.Mtime
	} else {
		node.Mtime = now
	}
	if p.SetACL {
		acl := p.ACL.Clone()
		if err := acl.Validate(); err != nil {
			return nil, err
		}
		acl.Normalize()
		node.ACL = acl
	}
	node.Ctime = now

	if req.Name == "" {
		ld.table.SetDirInode(node)
	} else if err := ld.table.UpdateChild(node); err != nil {
		return nil, err
	}
	ops := []wire.Op{{Kind: wire.OpSetInode, Inode: node}}
	c.jrnl.Log(ctx, dir, ops)
	if p.SetSize && p.Size < oldSize {
		// Shrinking: recall any outstanding write lease so buffered data is
		// flushed (or discarded consistently) before the dead chunks go.
		c.recallWriter(ctx, ld, node.Ino)
		c.data.Invalidate(node.Ino)
		if err := c.tr.Truncate(node.Ino, oldSize, p.Size); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// recallWriter flushes the write-lease holder's cache for ino, if any.
// Callers may hold ld.opMu (it is env-aware); the remote flush handler never
// takes another client's opMu, so there is no lock cycle.
func (c *Client) recallWriter(ctx context.Context, ld *ledDir, ino types.Ino) {
	dl := ld.dataLeases[ino]
	if dl == nil || dl.writer == "" {
		return
	}
	writer := dl.writer
	dl.writer = ""
	if writer == c.addr {
		// On failure the cache keeps the entries dirty; record the error so
		// FlushAll/Close report it instead of silently losing the recall.
		c.recordWBErr(c.data.Flush(ino))
		return
	}
	_, _ = c.net.CallFromCtx(ctx, c.addr, writer, FlushCacheReq{Ino: ino})
}

// localReaddir lists a led directory.
func (c *Client) localReaddir(ld *ledDir, req ReaddirReq) ([]wire.Dentry, error) {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	c.chargeMetaOp()
	c.stats.LocalMetaOps.Add(1)
	if err := ld.table.DirInode().Access(req.Cred, types.MayRead); err != nil {
		return nil, err
	}
	return ld.table.List(), nil
}

// localRenameSameDir renames within one led directory: a single journaled
// compound transaction, no 2PC needed.
func (c *Client) localRenameSameDir(ctx context.Context, ld *ledDir, dir types.Ino, srcName, dstName string, cred types.Cred) error {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	c.chargeMetaOp()
	c.stats.LocalMetaOps.Add(1)
	if err := ld.writable(); err != nil {
		return err
	}
	if err := types.ValidName(dstName); err != nil {
		return err
	}
	dirNode := ld.table.DirInode()
	if err := dirNode.Access(cred, types.MayWrite|types.MayExec); err != nil {
		return err
	}
	_, moving, err := ld.table.Lookup(srcName)
	if err != nil {
		return err
	}
	if srcName == dstName {
		return nil
	}
	ops := []wire.Op{{Kind: wire.OpDelDentry, Name: srcName}}
	if _, existing, err := ld.table.Lookup(dstName); err == nil {
		// Destination exists: POSIX rename replaces it (directories only if
		// empty — checked by the caller).
		if existing.IsDir() != moving.IsDir() {
			if existing.IsDir() {
				return fmt.Errorf("core: rename to %q: %w", dstName, types.ErrIsDir)
			}
			return fmt.Errorf("core: rename to %q: %w", dstName, types.ErrNotDir)
		}
		if _, err := ld.table.Remove(dstName); err != nil {
			return err
		}
		ops = append(ops,
			wire.Op{Kind: wire.OpDelDentry, Name: dstName},
			wire.Op{Kind: wire.OpDelInode, Ino: existing.Ino, Size: existing.Size})
	}
	if _, err := ld.table.Remove(srcName); err != nil {
		return err
	}
	if err := ld.table.Insert(dstName, moving); err != nil {
		return err
	}
	now := c.env.Now()
	dirNode.Mtime, dirNode.Ctime = now, now
	ld.table.SetDirInode(dirNode)
	ops = append(ops,
		wire.Op{Kind: wire.OpAddDentry, Name: dstName, Ino: moving.Ino, FType: moving.Type},
		wire.Op{Kind: wire.OpSetInode, Inode: dirNode})
	c.jrnl.Log(ctx, dir, ops)
	return nil
}
