package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/cache"
	"arkfs/internal/crashpoint"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/metatable"
	"arkfs/internal/objstore"
	"arkfs/internal/obs"
	"arkfs/internal/prt"
	"arkfs/internal/qos"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Options configures one ArkFS client.
type Options struct {
	// ID names the client; its RPC address is "arkfs-<ID>".
	ID string
	// Cred is the identity used for permission checks.
	Cred types.Cred
	// LeaseMgr is the lease manager's address.
	LeaseMgr rpc.Addr
	// LeaseRouter routes each directory to its lease-manager shard (the
	// paper's future-work "cluster of lease managers", lease.Cluster.Router).
	// The router carries the client's cached ring; stale-ring redirects
	// update it transparently. Nil uses LeaseMgr for every directory.
	LeaseRouter lease.Router
	// PermCache enables the permission caching mode (paper §III-C): remote
	// directory permissions and lookups are cached for one lease period,
	// trading strict ACL-change visibility for locality in path resolution.
	PermCache bool
	// FUSEOverhead is charged once per file-system request, modelling the
	// user/kernel context switch of the FUSE framework; zero disables it.
	FUSEOverhead time.Duration
	// Cost models local CPU charges (metadata ops, memcpy).
	Cost sim.CostModel
	// Journal configures per-directory journaling.
	Journal journal.Config
	// Cache configures the data object cache.
	Cache cache.Config
	// RPCWorkers sizes the leader-side service pool.
	RPCWorkers int
	// LeaseMargin: extend held leases when within this margin of expiry.
	LeaseMargin time.Duration
	// LeasePeriod mirrors the manager's lease duration; it bounds the
	// lifetime of permission-cache entries (default lease.DefaultPeriod).
	LeasePeriod time.Duration
	// Retry, when non-nil, wraps the client's store path in an
	// objstore.RetryStore with this policy, so every round-trip (journal
	// commit, cache write-back, metatable load, recovery scan) survives
	// transient backend failures. Nil disables retries (fail fast).
	Retry *objstore.RetryPolicy
	// Crash, when non-nil, is this client's crash-site registry: the journal
	// and recovery paths announce the sites they pass, and a kill gate is
	// mounted over the store so a killed client issues no further I/O.
	Crash *crashpoint.Set
	// Seed seeds the client's inode number generator.
	Seed int64
	// AcquireRetries bounds waits on recovering/quiescing directories.
	AcquireRetries int
	// Advertise overrides the client's public address — the one the lease
	// manager hands to other clients. Multi-process deployments set it to
	// rpc.TCPAddr(<bridge endpoint>) and bridge ServiceName to that port.
	Advertise rpc.Addr
	// Obs, when non-nil, is the metrics registry this client reports into:
	// per-op latency histograms, route counters, data/cache/journal/store
	// activity. It also enables the per-op trace ring. Several clients may
	// share one registry; same-named metrics aggregate cluster-wide. Nil
	// disables observability at (near) zero cost.
	Obs *obs.Registry
	// TraceCap sizes the per-op trace ring buffer (default 256 spans); only
	// meaningful when Obs is set.
	TraceCap int
	// Tenant is the tenant every operation this client issues is attributed
	// to: stamped on each root span, carried in the RPC envelope across
	// forwards (leader redirects, lease RPCs, 2PC participant calls), and
	// accounted in the registry's per-tenant table on every hop. Empty
	// derives "tenant-<ID>", so single-tenant deployments attribute per
	// client without configuration.
	Tenant string
	// QoS, when non-nil, is the leader-side admission controller: every
	// forwarded operation is charged to its caller's tenant bucket, and
	// refusals answer with typed EAGAIN pushback carrying a retry-after
	// hint. Nil admits everything.
	QoS *qos.Limiter
	// Brownout, when non-nil, enables graceful leader brownout: when the
	// journal's commit pipeline backs up past the ladder's thresholds,
	// expensive forwarded operations (readdir, rename 2PC) are shed with
	// typed EAGAIN before cheap ones (stat, lookup), which are never shed.
	Brownout *qos.BrownoutLadder
	// OpBudget is the shared retry budget of one public operation: the total
	// retries every loop under it — op-level ESTALE retries, leader
	// rediscovery, lease-acquire waits, EAGAIN backoff — may spend together,
	// replacing the multiplicative per-loop caps that amplify retry storms.
	// Zero applies DefaultOpBudget; negative disables budgeting.
	OpBudget int
	// ServerLimits bounds the leader-side RPC service: inbox depth and
	// queue-wait shedding (see rpc.ServerLimits). Zero value means no limits.
	ServerLimits rpc.ServerLimits
	// Breaker, when non-nil, mounts a circuit breaker under the client's
	// store retry layer (base → breaker → retry): repeated transient backend
	// failures trip it open and round-trips fast-fail with typed EAGAIN
	// until a seeded half-open probe succeeds.
	Breaker *qos.BreakerConfig
}

// DefaultOpBudget is the per-operation retry budget when Options.OpBudget is
// zero: generous enough that fault-recovery retries (leadership moves, lease
// waits) converge as before, small enough that the multiplied worst case —
// every loop maxing out at once — cannot happen.
const DefaultOpBudget = 64

// Client is one ArkFS mount: the public near-POSIX API plus the leader-side
// metadata service for the directories this client leads.
type Client struct {
	env         sim.Env
	net         *rpc.Network
	tr          *prt.Translator
	retry       *objstore.RetryStore   // non-nil when Options.Retry is set
	breaker     *objstore.BreakerStore // non-nil when Options.Breaker is set
	jrnl        *journal.Journal
	data        *cache.Cache
	lm          *lease.Client
	addr        rpc.Addr
	serviceName rpc.Addr
	opts        Options
	server      *rpc.Server

	mu      sync.Mutex
	led     map[types.Ino]*ledDir
	remote  map[types.Ino]rpc.Addr // last known leader of remote directories
	pcache  map[types.Ino]*permEntry
	handles map[types.Ino]map[*File]bool // open handles, for lease-conflict flips
	closed  bool

	// pending2pc tracks this client's participant-side prepared renames
	// awaiting the coordinator's decision (txid -> pendingRename).
	pending2pc sync.Map

	// wbErr records the first background write-back failure (lease-recall or
	// close-path flushes run off the caller's stack); FlushAll and Close
	// surface it instead of dropping it.
	wbMu  sync.Mutex
	wbErr error

	inoSrc *types.InoSource
	stats  Stats

	// Observability sinks (all nil-safe no-ops when Options.Obs is nil).
	obsReg       *obs.Registry
	tracer       *obs.Tracer
	tenants      *obs.TenantTable          // per-tenant accounting, nil when Obs is
	opHists      map[string]*obs.Histogram // read-only after New
	cBytesRead   *obs.Counter
	cBytesWrite  *obs.Counter
	cWBErrs      *obs.Counter
	hAcquireWait *obs.Histogram

	// Overload-protection sinks (nil-safe no-ops when Options.Obs is nil).
	cShedAdmit      *obs.Counter // leader admission refusals
	cShedBrownout   *obs.Counter // brownout sheds
	cBudgetExhaust  *obs.Counter // retries refused by an exhausted op budget
	cPushbackHonors *obs.Counter // EAGAIN hints honored (slept and retried)
}

// opNames are the public operations with per-op latency histograms
// ("core.op.<name>") and trace spans.
var opNames = []string{
	"mkdir", "symlink", "readlink", "stat", "lstat", "unlink", "rmdir",
	"readdir", "rename", "chmod", "chown", "setfacl", "utimes", "truncate",
	"fsync", "flushall", "open", "read", "write",
}

// ledDir is a directory this client currently leads.
type ledDir struct {
	// opMu serializes compound metadata operations (lookup-then-insert
	// sequences) across the client's own calls and RPC service workers. It
	// is env-aware because leader-side operations charge simulated time and
	// perform store I/O while holding it.
	opMu    *sim.Mutex
	table   *metatable.Table
	leaseID uint64
	expiry  time.Duration
	// degraded marks a directory whose checkpointed state failed
	// verification at load: it is served read-only from the last valid
	// state until the scrubber repairs the underlying objects.
	degraded bool
	// dataLeases tracks per-child-file read/write leases issued by this
	// leader (paper §III-D).
	dataLeases map[types.Ino]*dataLease
	// durableEpoch is the metatable epoch covered by the last successful
	// durability barrier (guarded by c.mu). An fsync that finds the table
	// epoch unchanged has nothing new to make durable and skips the journal
	// barrier entirely.
	durableEpoch uint64
}

// writable gates every mutating operation on a led directory: a directory
// degraded by detected corruption is served read-only until repaired.
// Callers hold ld.opMu or tolerate a stale read of the flag (it is set once,
// before the ledDir is published).
func (ld *ledDir) writable() error {
	if ld.degraded {
		return fmt.Errorf("core: directory degraded by detected corruption, serving read-only: %w", types.ErrReadOnly)
	}
	return nil
}

// dataLease is the lease state of one child file.
type dataLease struct {
	readers map[rpc.Addr]bool
	writer  rpc.Addr
	direct  bool // conflict detected: everyone does direct I/O
}

// permEntry is one permission-cache record: a remote directory's inode and
// its resolved lookups, valid for one lease period.
type permEntry struct {
	inode   *types.Inode
	lookups map[string]*types.Inode
	expiry  time.Duration
}

// Stats counts client-side activity for the benchmark reports.
type Stats struct {
	LocalMetaOps, RemoteMetaOps, LeaseAcquires, PcacheHits atomic.Int64
}

// New creates and starts a client on net.
func New(net *rpc.Network, tr *prt.Translator, opts Options) *Client {
	if opts.ID == "" {
		opts.ID = "0"
	}
	if opts.LeaseMgr == "" {
		opts.LeaseMgr = "leasemgr"
	}
	if opts.RPCWorkers <= 0 {
		opts.RPCWorkers = 16
	}
	if opts.LeasePeriod <= 0 {
		opts.LeasePeriod = lease.DefaultPeriod
	}
	if opts.LeaseMargin <= 0 {
		opts.LeaseMargin = opts.LeasePeriod / 4
	}
	if opts.AcquireRetries <= 0 {
		opts.AcquireRetries = 16
	}
	if opts.Seed == 0 {
		opts.Seed = int64(len(opts.ID)) + 7919
		for _, r := range opts.ID {
			opts.Seed = opts.Seed*131 + int64(r)
		}
	}
	if opts.Tenant == "" {
		opts.Tenant = "tenant-" + opts.ID
	}
	env := net.Env()
	if opts.Obs != nil {
		// Per-verb store counters sit under everything else, so each retry
		// attempt shows up as a distinct verb op and the kill gate stops the
		// counting when the simulated process dies.
		tr = prt.New(objstore.Instrument(tr.Store(), opts.Obs), tr.ChunkSize())
	}
	var breaker *objstore.BreakerStore
	if opts.Breaker != nil {
		// The breaker sits under the retry layer: once a dying backend trips
		// it, the remaining retry attempts fast-fail with typed EAGAIN (which
		// Retryable classifies as permanent) instead of hammering it further.
		breaker = objstore.NewBreakerStore(env, tr.Store(), *opts.Breaker)
		tr = prt.New(breaker, tr.ChunkSize())
	}
	var retry *objstore.RetryStore
	if opts.Retry != nil {
		// Mount the robustness layer under everything this client does to
		// the object store: journal commits, cache write-backs, metatable
		// loads, and recovery scans all go through the retrying path.
		retry = objstore.NewRetryStore(env, tr.Store(), *opts.Retry)
		tr = prt.New(retry, tr.ChunkSize())
	}
	if opts.Crash != nil {
		// The kill gate sits above the retry layer: a crashed process does
		// not retry, it simply stops issuing I/O.
		tr = prt.New(crashpoint.NewGateStore(opts.Crash, tr.Store()), tr.ChunkSize())
	}
	// Checksum failures anywhere under this client (inode, dentry, chunk)
	// count against integrity.detected. Nil-safe for uninstrumented clients.
	tr.SetObs(opts.Obs)
	var tracer *obs.Tracer
	if opts.Obs != nil {
		// The tracer is built before the journal so journal commits and
		// checkpoints can parent their spans under the operations that fed
		// them. Its ID stream is seeded from the (derived) client seed, so a
		// seeded deployment replays with identical trace IDs.
		tracer = obs.NewTracer(opts.TraceCap, env.Now)
		tracer.SetProc("arkfs-" + opts.ID)
		tracer.SetSeed(uint64(opts.Seed))
	}
	jcfg := opts.Journal
	jcfg.Crash = opts.Crash
	jcfg.Obs = opts.Obs
	jcfg.Trace = tracer
	c := &Client{
		env:     env,
		net:     net,
		tr:      tr,
		retry:   retry,
		breaker: breaker,
		jrnl:    journal.New(env, tr, jcfg),
		data:    cache.New(env, tr, opts.Cache),
		addr:    rpc.Addr("arkfs-" + opts.ID),
		opts:    opts,
		led:     make(map[types.Ino]*ledDir),
		remote:  make(map[types.Ino]rpc.Addr),
		pcache:  make(map[types.Ino]*permEntry),
		handles: make(map[types.Ino]map[*File]bool),
		inoSrc:  types.NewInoSource(opts.Seed),
	}
	c.jrnl.SetTxnIDBase(uint64(opts.Seed) & 0xFFFFFFFF)
	if opts.Obs != nil {
		c.obsReg = opts.Obs
		c.tracer = tracer
		c.tenants = opts.Obs.Tenants()
		opts.Obs.Func("obs.trace.spans", c.tracer.Total)
		c.opHists = make(map[string]*obs.Histogram, len(opNames))
		for _, op := range opNames {
			c.opHists[op] = opts.Obs.Histogram("core.op." + op)
		}
		c.cBytesRead = opts.Obs.Counter("core.data.bytes.read")
		c.cBytesWrite = opts.Obs.Counter("core.data.bytes.written")
		c.cWBErrs = opts.Obs.Counter("core.writeback.errors")
		c.hAcquireWait = opts.Obs.Histogram("core.lease.acquire.wait")
		// Pre-existing atomic stats fold in at snapshot time; repeated
		// registrations of one name sum across clients sharing the registry.
		opts.Obs.Func("core.meta.local", c.stats.LocalMetaOps.Load)
		opts.Obs.Func("core.meta.remote", c.stats.RemoteMetaOps.Load)
		opts.Obs.Func("core.lease.acquires", c.stats.LeaseAcquires.Load)
		opts.Obs.Func("core.pcache.hits", c.stats.PcacheHits.Load)
		cs := c.data.Stat()
		opts.Obs.Func("cache.hits", cs.Hits.Load)
		opts.Obs.Func("cache.misses", cs.Misses.Load)
		opts.Obs.Func("cache.readaheads", cs.Readaheads.Load)
		opts.Obs.Func("cache.writebacks", cs.Writebacks.Load)
		opts.Obs.Func("cache.evictions", cs.Evictions.Load)
		opts.Obs.Func("cache.writeback.errors", cs.WritebackErrors.Load)
		if retry != nil {
			rs := retry.RetryStats()
			opts.Obs.Func("objstore.retries", rs.Retries)
			opts.Obs.Func("objstore.retries.exhausted", rs.Exhausted.Load)
		}
		c.cShedAdmit = opts.Obs.Counter("qos.shed.core.admission")
		c.cShedBrownout = opts.Obs.Counter("qos.shed.core.brownout")
		c.cBudgetExhaust = opts.Obs.Counter("qos.budget.exhausted")
		c.cPushbackHonors = opts.Obs.Counter("qos.pushback.honored")
		if breaker != nil {
			bs := breaker.BreakerStats()
			opts.Obs.Func("qos.breaker.trips", bs.Tripped.Load)
			opts.Obs.Func("qos.breaker.fastfails", bs.FastFails.Load)
			opts.Obs.Func("qos.breaker.probes", bs.Probes.Load)
		}
		if opts.Retry != nil && opts.Retry.Budget != nil {
			rb := opts.Retry.Budget
			opts.Obs.Func("qos.retry.budget.retries", func() int64 {
				_, retries := rb.Stats()
				return retries
			})
		}
	}
	c.lm = &lease.Client{Net: net, Mgr: opts.LeaseMgr, Self: c.addr, Router: opts.LeaseRouter}
	c.serviceName = rpc.Addr("arkfs-svc-" + opts.ID)
	if opts.Advertise == "" {
		c.serviceName = c.addr
	}
	c.server = net.ListenCtx(c.serviceName, opts.RPCWorkers, c.serve, opts.ServerLimits)
	env.Go(c.leaseKeeper)
	env.Go(c.twopcResolver)
	return c
}

// leaseKeeper extends the leases of led directories before they lapse, so an
// active leader is never mistaken for a crashed one (paper §III-B: "if there
// is not enough time ... the leader tries to extend the lease").
func (c *Client) leaseKeeper() {
	interval := c.opts.LeasePeriod / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		c.env.Sleep(interval)
		if c.env.Stopped() {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		var due []types.Ino
		now := c.env.Now()
		for ino, ld := range c.led {
			if ld.expiry-now < c.opts.LeasePeriod/2 {
				due = append(due, ino)
			}
		}
		c.mu.Unlock()
		for _, ino := range due {
			_, _, _ = c.acquireLease(context.Background(), ino)
		}
	}
}

// Addr returns the client's public RPC address.
func (c *Client) Addr() rpc.Addr { return c.addr }

// ServiceName returns the in-process listener name; multi-process
// deployments bridge this to the TCP port named by Options.Advertise.
func (c *Client) ServiceName() rpc.Addr { return c.serviceName }

// SetAdvertise replaces the client's public address. Multi-process
// deployments must bridge ServiceName to a TCP port before they know the
// bound address, so they pass a placeholder Advertise to New and fix it up
// here — strictly before the client performs any file-system operation.
func (c *Client) SetAdvertise(addr rpc.Addr) {
	c.mu.Lock()
	c.addr = addr
	c.mu.Unlock()
	c.lm.Self = addr
}

// Stat returns the client's counters.
func (c *Client) StatCounters() *Stats { return &c.stats }

// CacheStats exposes the data cache counters.
func (c *Client) CacheStats() *cache.Stats { return c.data.Stat() }

// RetryStats exposes the store-path retry counters; nil when Options.Retry
// was not set.
func (c *Client) RetryStats() *objstore.RetryStats {
	if c.retry == nil {
		return nil
	}
	return c.retry.RetryStats()
}

// Stats snapshots the client's metrics registry: every instrumented layer's
// counters, gauges, and latency histograms. Empty when Options.Obs was nil.
func (c *Client) Stats() obs.Snapshot { return c.obsReg.Snapshot() }

// Registry exposes the metrics registry itself (nil when observability is
// off), for callers that fold additional external counters in.
func (c *Client) Registry() *obs.Registry { return c.obsReg }

// Tracer exposes the per-op trace ring (nil when observability is off); the
// chaos harness dumps it when a run fails.
func (c *Client) Tracer() *obs.Tracer { return c.tracer }

// Tenant returns the tenant this client's operations are attributed to.
func (c *Client) Tenant() string { return c.opts.Tenant }

// recordWBErr keeps the first background write-back failure for FlushAll and
// Close to surface; the cache keeps the data dirty, so a later flush retries.
func (c *Client) recordWBErr(err error) {
	if err == nil {
		return
	}
	c.cWBErrs.Inc()
	c.wbMu.Lock()
	if c.wbErr == nil {
		c.wbErr = err
	}
	c.wbMu.Unlock()
}

// takeWBErr returns and clears the recorded background write-back failure.
func (c *Client) takeWBErr() error {
	c.wbMu.Lock()
	defer c.wbMu.Unlock()
	err := c.wbErr
	c.wbErr = nil
	return err
}

// Close flushes all state, releases every lease, and stops the client.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	held := make(map[types.Ino]*ledDir, len(c.led))
	for ino, ld := range c.led {
		held[ino] = ld
	}
	c.mu.Unlock()

	// Close is a lease-handoff barrier: the journal FlushAll is the strong
	// (commit + checkpoint) form, because a cleanly released directory is
	// loaded by the next leader without journal replay. Both flush failures
	// matter to the caller — a swallowed journal error here would report a
	// clean close over lost acknowledged metadata — so the errors are joined
	// rather than first-one-wins.
	err := errors.Join(c.data.FlushAll(), c.jrnl.FlushAll(), c.takeWBErr())
	for ino, ld := range held {
		// An in-flight leaseKeeper extension may still be writing ld, so the
		// ID must be read under the lock (and freshest-ID wins).
		c.mu.Lock()
		id := ld.leaseID
		c.mu.Unlock()
		clean := err == nil
		_ = c.lm.Release(context.Background(), ino, id, clean)
	}
	c.mu.Lock()
	c.led = make(map[types.Ino]*ledDir)
	c.mu.Unlock()
	c.jrnl.Close()
	c.server.Close()
	return err
}

// Crash simulates a client failure: the process vanishes without flushing
// buffered transactions or releasing leases. Used by recovery and chaos
// tests. After Crash, the leaseKeeper can no longer extend this client's
// leases (acquireLease refuses on a closed client), so a successor's
// failover is delayed by at most one already-in-flight extension, never
// pushed out indefinitely.
func (c *Client) Crash() {
	c.mu.Lock()
	c.closed = true
	c.led = make(map[types.Ino]*ledDir)
	c.mu.Unlock()
	if c.opts.Crash != nil {
		// Dead processes issue no I/O: fail everything behind the gate.
		c.opts.Crash.Kill()
	}
	c.jrnl.Close()
	c.server.Close()
}

// chargeFUSE models the FUSE request overhead for one application-visible
// file-system call.
func (c *Client) chargeFUSE() {
	if c.opts.FUSEOverhead > 0 {
		c.env.Sleep(c.opts.FUSEOverhead)
	}
}

// chargeMetaOp models the in-memory metadata table operation cost.
func (c *Client) chargeMetaOp() {
	if c.opts.Cost.LocalMetaOp > 0 {
		c.env.Sleep(c.opts.Cost.LocalMetaOp)
	}
}

// routeFor resolves who serves metadata for dir, preferring what the client
// already knows: its own leadership, then the cached remote-leader pointer
// (the "remote metatable" entry of Fig. 3c), and only then the lease
// manager. This keeps steady-state forwarding free of manager round trips.
func (c *Client) routeFor(ctx context.Context, dir types.Ino) (*ledDir, rpc.Addr, error) {
	c.mu.Lock()
	if ld, ok := c.led[dir]; ok && c.env.Now() < ld.expiry-c.opts.LeaseMargin {
		c.mu.Unlock()
		return ld, "", nil
	}
	if addr, ok := c.remote[dir]; ok {
		c.mu.Unlock()
		return nil, addr, nil
	}
	c.mu.Unlock()
	return c.leaderFor(ctx, dir)
}

// invalidateLeader drops the cached remote-leader pointer for dir, forcing
// the next routeFor through the lease manager.
func (c *Client) invalidateLeader(dir types.Ino) {
	c.mu.Lock()
	delete(c.remote, dir)
	c.mu.Unlock()
}

// leaderFor resolves who serves metadata for dir: this client (returns a
// live *ledDir) or a remote leader (returns its address). It acquires or
// extends the directory lease as needed and runs journal recovery when the
// manager signals a predecessor crash.
func (c *Client) leaderFor(ctx context.Context, dir types.Ino) (*ledDir, rpc.Addr, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, "", fmt.Errorf("core: client closed: %w", types.ErrIO)
	}
	if ld, ok := c.led[dir]; ok {
		if c.env.Now() < ld.expiry-c.opts.LeaseMargin {
			c.mu.Unlock()
			return ld, "", nil
		}
		// Near or past expiry: try to extend outside the lock.
		c.mu.Unlock()
		return c.acquireLease(ctx, dir)
	}
	c.mu.Unlock()
	return c.acquireLease(ctx, dir)
}

// acquireLease obtains (or extends) the lease for dir, building the
// metatable when this client becomes a fresh leader. It refuses outright on
// a closed (or crashed) client: the leaseKeeper calls it directly, and a
// crashed client must never extend — or re-take — a lease. A cancelled or
// expired ctx stops the wait loop before the next manager round trip.
func (c *Client) acquireLease(ctx context.Context, dir types.Ino) (*ledDir, rpc.Addr, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, "", fmt.Errorf("core: client closed: %w", types.ErrIO)
	}
	c.mu.Unlock()
	c.stats.LeaseAcquires.Add(1)
	// The manager's quiesce window after its own restart affects every
	// directory and comes with a firm retry-after hint, so those waits get
	// their own (larger) budget instead of consuming acquire retries.
	quiesceWaits := 0
	for attempt := 0; attempt < c.opts.AcquireRetries; {
		if err := ctx.Err(); err != nil {
			return nil, "", fmt.Errorf("core: lease acquire for %s: %w", dir.Short(), err)
		}
		resp, err := c.lm.Acquire(ctx, dir)
		if err != nil {
			// A lost or timed-out manager round trip is not fatal: burn one
			// acquire attempt and ask again. The retry stays inside the
			// operation's span, so a flaky link shows up as a retry count on
			// one trace, not a failed op (or a second trace). It also spends
			// one token of the operation's shared retry budget.
			if errors.Is(err, types.ErrTimedOut) && attempt < c.opts.AcquireRetries-1 && c.spendRetry(ctx) {
				obs.SpanFrom(ctx).AddRetry()
				attempt++
				c.retryBackoff(attempt)
				continue
			}
			return nil, "", fmt.Errorf("core: lease acquire: %w", err)
		}
		switch {
		case resp.Granted:
			return c.becomeLeader(ctx, dir, resp)
		case resp.Redirect:
			// If we believed we led this directory, that leadership is gone:
			// drop the stale table (its journal was flushed at the last
			// clean hand-off or will be recovered by the new leader).
			c.mu.Lock()
			delete(c.led, dir)
			c.remote[dir] = resp.Leader
			c.mu.Unlock()
			c.jrnl.DropDir(dir)
			return nil, resp.Leader, nil
		case resp.Wait:
			if resp.Quiesce {
				quiesceWaits++
				if quiesceWaits > 4*c.opts.AcquireRetries {
					return nil, "", fmt.Errorf("core: lease manager quiescing for %s: %w", dir.Short(), types.ErrTimedOut)
				}
			} else {
				attempt++
			}
			delay := resp.RetryAfter - c.env.Now()
			if delay < time.Millisecond {
				delay = time.Millisecond
			}
			// Waiting out the manager's hint is a retry like any other: it
			// draws on the operation's shared budget, and once that is gone
			// the wait surfaces as typed pushback instead of blocking on.
			if !c.spendRetry(ctx) {
				return nil, "", fmt.Errorf("core: lease acquire for %s: %w",
					dir.Short(), types.AgainAfter(delay, "lease"))
			}
			c.hAcquireWait.Observe(delay)
			c.env.Sleep(delay)
		default:
			return nil, "", fmt.Errorf("core: lease denied for %s: %w", dir.Short(), types.ErrBusy)
		}
	}
	return nil, "", fmt.Errorf("core: lease acquire retries exhausted for %s: %w", dir.Short(), types.ErrTimedOut)
}

// becomeLeader installs leadership state after a granted lease: running
// journal recovery if required and (re)building the metadata table unless
// the manager confirmed our copy is still current.
func (c *Client) becomeLeader(ctx context.Context, dir types.Ino, grant lease.AcquireResp) (*ledDir, rpc.Addr, error) {
	if grant.NeedRecovery {
		c.crashHit(crashpoint.RecoveryPreReplay)
		rsp := c.tracer.StartChild(obs.SpanContextFrom(ctx), "journal.recover", "")
		rsp.SetDir(dir)
		rsp.SetTenant(obs.TenantFrom(ctx))
		rep, err := journal.RecoverWith(c.tr, dir, c.obsReg)
		rsp.End(err)
		if err != nil {
			// A dead process is silent: if the failure is our own crash, do
			// not release — the lease lapses and the successor recovers. A
			// live client renounces uncleanly so the manager re-gates the
			// directory behind another recovery grant.
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if !closed {
				_ = c.lm.Release(ctx, dir, grant.LeaseID, false)
			}
			return nil, "", fmt.Errorf("core: recovery of %s: %w", dir.Short(), err)
		}
		c.jrnl.SetNextSeq(dir, rep.NextSeq)
		c.crashHit(crashpoint.RecoveryPostReplay)
		done, err := c.lm.RecoveryDone(ctx, dir, grant.LeaseID)
		if err != nil || !done.OK {
			return nil, "", fmt.Errorf("core: recovery handshake for %s failed: %w", dir.Short(), types.ErrIO)
		}
		grant.Expiry = done.Expiry
	}

	c.mu.Lock()
	if c.closed {
		// The client crashed (or closed) while the grant was in flight: a
		// dead process cannot serve the directory, and it must not release
		// either — it is silent, so the lease lapses and the successor runs
		// recovery.
		c.mu.Unlock()
		return nil, "", fmt.Errorf("core: client closed: %w", types.ErrIO)
	}
	if ld, ok := c.led[dir]; ok && grant.SameLeader {
		// Extension of a lease we already hold: keep the table.
		ld.leaseID = grant.LeaseID
		ld.expiry = grant.Expiry
		c.mu.Unlock()
		return ld, "", nil
	}
	c.mu.Unlock()

	// Fresh leadership (or re-grant after release): load the metadata table
	// from the object store. The paper's SameLeader shortcut only helps when
	// the client also kept its table; after Close we always reload.
	degraded := false
	tbl, err := metatable.Load(c.tr, dir)
	if err != nil && errors.Is(err, types.ErrIntegrity) {
		// The checkpointed state is rotten but the lease is ours: serve the
		// directory read-only from whatever still verifies rather than
		// failing every operation. The scrubber repairs the objects; the
		// next leadership change reloads cleanly.
		var lost int
		dsp := c.tracer.StartChild(obs.SpanContextFrom(ctx), "integrity.degraded", dir.Short())
		dsp.SetDir(dir)
		dsp.SetTenant(obs.TenantFrom(ctx))
		tbl, lost, err = metatable.LoadDegraded(c.tr, dir)
		dsp.End(err)
		if err == nil {
			degraded = true
			c.obsReg.Counter("integrity.degraded").Inc()
			c.obsReg.Counter("integrity.degraded.entries.lost").Add(int64(lost))
		}
	}
	if err != nil {
		_ = c.lm.Release(ctx, dir, grant.LeaseID, true)
		return nil, "", fmt.Errorf("core: build metatable for %s: %w", dir.Short(), err)
	}
	// Check our own access to the directory (paper: release and report a
	// permission error if the leader-to-be cannot access it).
	if err := tbl.DirInode().Access(c.opts.Cred, types.MayExec); err != nil {
		_ = c.lm.Release(ctx, dir, grant.LeaseID, true)
		return nil, "", fmt.Errorf("core: access %s: %w", dir.Short(), err)
	}
	ld := &ledDir{
		opMu:       sim.NewMutex(c.env),
		table:      tbl,
		leaseID:    grant.LeaseID,
		expiry:     grant.Expiry,
		degraded:   degraded,
		dataLeases: make(map[types.Ino]*dataLease),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, "", fmt.Errorf("core: client closed: %w", types.ErrIO)
	}
	c.led[dir] = ld
	delete(c.remote, dir)
	c.mu.Unlock()
	return ld, "", nil
}

// crashHit announces a core-side crash site (recovery phases).
func (c *Client) crashHit(site crashpoint.Site) {
	c.opts.Crash.Hit(site)
}

// fsyncDir makes dir's acknowledged metadata durable — the externalization
// barrier of the async commit path. The metatable epoch short-circuits a
// quiescent directory: if no mutation was acknowledged since the last
// successful barrier, there is nothing new to make durable and the journal
// is not consulted. Otherwise it waits on the journal durability watermark
// (not the checkpoint): a durable record is recoverable by replay, which is
// all fsync promises.
func (c *Client) fsyncDir(dir types.Ino, ld *ledDir) error {
	epoch := ld.table.Epoch()
	c.mu.Lock()
	durable := ld.durableEpoch
	c.mu.Unlock()
	if epoch == durable {
		return nil
	}
	if err := c.jrnl.Barrier(dir); err != nil {
		return err
	}
	c.mu.Lock()
	if epoch > ld.durableEpoch {
		ld.durableEpoch = epoch
	}
	c.mu.Unlock()
	return nil
}

// Leads reports whether this client currently holds the lease of dir. The
// chaos harness uses it to decide how strong an acknowledgement was: Fsync
// only flushes journals this client owns, so a nil Fsync on a remote-led
// directory promises nothing about durability.
func (c *Client) Leads(dir types.Ino) bool {
	_, ok := c.ledDirFor(dir)
	return ok
}

// ledDirFor returns the ledDir if this client leads dir (without acquiring).
func (c *Client) ledDirFor(dir types.Ino) (*ledDir, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ld, ok := c.led[dir]
	if !ok || c.env.Now() >= ld.expiry {
		return nil, false
	}
	return ld, true
}

// ReleaseDir flushes and gives up leadership of dir, e.g. when an archiving
// job finishes a directory. This is the strong (commit + checkpoint) flush:
// a clean release tells the next leader it may load the metatable without
// journal replay, so nothing may be left in the journal. Only fsync-style
// barriers are durability-only; handoff never is.
func (c *Client) ReleaseDir(dir types.Ino) error {
	c.mu.Lock()
	ld, ok := c.led[dir]
	if ok {
		delete(c.led, dir)
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	err := c.jrnl.Flush(dir)
	c.jrnl.DropDir(dir)
	_ = c.lm.Release(context.Background(), dir, ld.leaseID, err == nil)
	return err
}

// retryBackoff pauses before re-resolving leadership: a freshly granted
// leader may still be loading its metadata table when redirected clients
// arrive (thundering herd on a new directory).
func (c *Client) retryBackoff(attempt int) {
	c.env.Sleep(time.Duration(1<<uint(attempt)) * 500 * time.Microsecond)
}

// qosNow maps the environment clock onto the wall-clock origin the qos
// primitives expect; only differences matter, so the origin is arbitrary.
func (c *Client) qosNow() time.Time { return time.Unix(0, int64(c.env.Now())) }

// withOpBudget attaches a fresh shared retry budget to a public operation's
// context — unless the caller already carries one (a forwarded operation
// executing leader-side keeps drawing from the originator's budget, which the
// RPC layer rehydrated into ctx).
func (c *Client) withOpBudget(ctx context.Context) context.Context {
	if c.opts.OpBudget < 0 || qos.BudgetFrom(ctx) != nil {
		return ctx
	}
	n := c.opts.OpBudget
	if n == 0 {
		n = DefaultOpBudget
	}
	return qos.WithBudget(ctx, qos.NewBudget(n))
}

// spendRetry charges one retry to the operation's shared budget, reporting
// whether the retry may proceed. Unbudgeted contexts (no budget attached, or
// budgeting disabled) always proceed — the per-loop attempt caps still bound
// them, as before this layer existed.
func (c *Client) spendRetry(ctx context.Context) bool {
	b := qos.BudgetFrom(ctx)
	if b == nil {
		return true
	}
	if !b.TrySpend(c.qosNow()) {
		c.cBudgetExhaust.Inc()
		return false
	}
	return true
}

// shouldRetry decides whether a forwarded-op loop may go around again after
// err: leadership moves (ESTALE) re-resolve after the standard backoff, and
// typed EAGAIN pushback — leader admission refusals, brownout sheds, fabric
// queue sheds — retries after honoring the server's retry-after hint. Every
// retry spends one token of the op's shared budget; an exhausted budget stops
// the loop so the typed pushback surfaces to the caller instead of feeding
// the retry storm.
func (c *Client) shouldRetry(ctx context.Context, dir types.Ino, err error, attempt int) bool {
	if err == nil || attempt >= maxOpRetries || ctx.Err() != nil {
		return false
	}
	switch {
	case errors.Is(err, types.ErrStale):
		if !c.spendRetry(ctx) {
			return false
		}
		obs.SpanFrom(ctx).AddRetry()
		c.invalidateLeader(dir)
		c.retryBackoff(attempt)
		return true
	case errors.Is(err, types.ErrAgain):
		if !c.spendRetry(ctx) {
			return false
		}
		obs.SpanFrom(ctx).AddRetry()
		c.cPushbackHonors.Inc()
		if d, ok := types.RetryAfter(err); ok && d > 0 {
			c.env.Sleep(d)
		} else {
			c.retryBackoff(attempt)
		}
		return true
	}
	return false
}

// BreakerState reports the store-path circuit breaker's state; BreakerClosed
// when no breaker is mounted.
func (c *Client) BreakerState() qos.BreakerState {
	if c.breaker == nil {
		return qos.BreakerClosed
	}
	return c.breaker.State()
}

// BreakerStats exposes the circuit breaker's counters; nil when
// Options.Breaker was not set.
func (c *Client) BreakerStats() *objstore.BreakerStats {
	if c.breaker == nil {
		return nil
	}
	return c.breaker.BreakerStats()
}

// errnoWrap adds operation context while preserving errors.Is matching.
func errnoWrap(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("arkfs %s %s: %w", op, path, err)
}

// isNotExist is a local convenience.
func isNotExist(err error) bool { return errors.Is(err, types.ErrNotExist) }
