package core

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// TestCrashStopsLeaseExtensions: once a client crashes, its leaseKeeper must
// stop extending, so a successor acquires the directory within roughly one
// lease period plus the recovery grace. A regression here (the keeper
// surviving Crash) would redirect the successor forever.
func TestCrashStopsLeaseExtensions(t *testing.T) {
	const lp = 200 * time.Millisecond
	env := sim.NewVirtEnv()
	env.Run(func() {
		store := objstore.NewMemStore()
		tr := prt.New(store, 4096)
		if err := Format(tr); err != nil {
			t.Fatal(err)
		}
		net := rpc.NewNetwork(env, sim.NetModel{})
		mgr := lease.NewManager(net, lease.Options{Period: lp})
		defer mgr.Close()

		a := New(net, tr, Options{
			ID: "a", Cred: types.Cred{Uid: 1, Gid: 1}, LeasePeriod: lp,
			Journal: journal.Config{CommitInterval: lp / 4, CommitWorkers: 2, CheckpointWorkers: 2},
		})
		if err := a.Mkdir(context.Background(), "/d", 0777); err != nil {
			t.Fatal(err)
		}
		node, err := a.Stat(context.Background(), "/d")
		if err != nil {
			t.Fatal(err)
		}
		if f, err := a.Create(context.Background(), "/d/f", 0644); err != nil {
			t.Fatal(err)
		} else if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if !a.Leads(node.Ino) {
			t.Fatal("client a should lead /d")
		}

		crashAt := env.Now()
		a.Crash()

		succ := &lease.Client{Net: net, Mgr: mgr.Addr(), Self: "succ"}
		for {
			resp, err := succ.Acquire(context.Background(), node.Ino)
			if err != nil {
				t.Fatalf("successor acquire: %v", err)
			}
			if resp.Granted {
				if !resp.NeedRecovery {
					t.Fatalf("successor grant must carry NeedRecovery: %+v", resp)
				}
				break
			}
			if env.Now()-crashAt > 3*lp {
				t.Fatalf("successor still not granted %v after the crash: %+v", env.Now()-crashAt, resp)
			}
			env.Sleep(lp / 8)
		}
		// Expiry of the dead lease (≤ one period) plus the data-lease grace
		// (one period): anything much beyond that means extensions leaked.
		if waited := env.Now() - crashAt; waited > 2*lp+lp/2 {
			t.Fatalf("successor waited %v, want ≤ %v", waited, 2*lp+lp/2)
		}
	})
}

// TestAcquireRidesOutManagerQuiesce: a lease-manager restart answers acquires
// with an explicit retry-after hint (quiesce, then the conservative recovery
// grace); the client's acquire loop must honor the hints and complete the
// operation instead of burning its retry budget.
func TestAcquireRidesOutManagerQuiesce(t *testing.T) {
	const lp = 200 * time.Millisecond
	env := sim.NewVirtEnv()
	env.Run(func() {
		store := objstore.NewMemStore()
		tr := prt.New(store, 4096)
		if err := Format(tr); err != nil {
			t.Fatal(err)
		}
		net := rpc.NewNetwork(env, sim.NetModel{})
		mgr := lease.NewManager(net, lease.Options{Period: lp})

		c := New(net, tr, Options{
			ID: "c", Cred: types.Cred{Uid: 1, Gid: 1}, LeasePeriod: lp,
			Journal:        journal.Config{CommitInterval: lp / 4, CommitWorkers: 2, CheckpointWorkers: 2},
			AcquireRetries: 16,
		})
		defer func() { _ = c.Close() }()
		if err := c.Mkdir(context.Background(), "/d", 0777); err != nil {
			t.Fatal(err)
		}
		if f, err := c.Create(context.Background(), "/d/a", 0644); err != nil {
			t.Fatal(err)
		} else if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.FlushAll(context.Background()); err != nil {
			t.Fatal(err)
		}

		// Manager crash: leases lapse while it is down, then it restarts into
		// the quiesce state.
		mgr.Close()
		env.Sleep(2 * lp)
		mgr2 := lease.NewManager(net, lease.Options{Period: lp, Restarted: true})
		defer mgr2.Close()

		start := env.Now()
		f, err := c.Create(context.Background(), "/d/b", 0644)
		if err != nil {
			t.Fatalf("create across manager restart: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		elapsed := env.Now() - start
		// Quiesce (one period) plus the conservative post-restart grace (one
		// period): the op must wait them out, not fail fast.
		if elapsed < lp {
			t.Fatalf("create completed in %v — it cannot have honored the quiesce", elapsed)
		}
		if elapsed > 4*lp {
			t.Fatalf("create took %v, want ≲ %v", elapsed, 4*lp)
		}
		if _, err := c.Stat(context.Background(), "/d/b"); err != nil {
			t.Fatal(err)
		}
	})
}
