package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"arkfs/internal/types"
)

func TestTwoClientsSharedNamespace(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2")

	// c1 builds a tree; c2 must see it through c1's leadership (no flush
	// needed — the leader serves from its metatable).
	if err := c1.Mkdir(context.Background(), "/shared", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := c1.Create(context.Background(), "/shared/from-c1", 0666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("c1 data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := c2.Stat(context.Background(), "/shared/from-c1")
	if err != nil {
		t.Fatalf("c2 stat through c1's leadership: %v", err)
	}
	if st.Size != 7 {
		t.Fatalf("size = %d", st.Size)
	}
	// c2 creates in the same directory: forwarded to c1 (the leader).
	g, err := c2.Create(context.Background(), "/shared/from-c2", 0666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write([]byte("c2 data")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if c2.StatCounters().RemoteMetaOps.Load() == 0 {
		t.Fatal("c2 performed no remote ops; leadership forwarding broken")
	}
	// Both clients list both files.
	for _, c := range []*Client{c1, c2} {
		ents, err := c.Readdir(context.Background(), "/shared")
		if err != nil || len(ents) != 2 {
			t.Fatalf("%s readdir: %v, %v", c.Addr(), ents, err)
		}
	}
	// c2 reads c1's file content.
	h, err := c2.Open(context.Background(), "/shared/from-c1", types.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(h)
	_ = h.Close()
	if string(got) != "c1 data" {
		t.Fatalf("cross-client read = %q", got)
	}
}

func TestNonOverlappingDirsStayLocal(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2")
	if err := c1.Mkdir(context.Background(), "/d1", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c2.Mkdir(context.Background(), "/d2", 0777); err != nil {
		t.Fatal(err)
	}
	before1 := c1.StatCounters().RemoteMetaOps.Load()
	before2 := c2.StatCounters().RemoteMetaOps.Load()
	for i := 0; i < 20; i++ {
		name1 := "/d1/f" + string(rune('a'+i))
		name2 := "/d2/f" + string(rune('a'+i))
		f1, err := c1.Create(context.Background(), name1, 0644)
		if err != nil {
			t.Fatal(err)
		}
		_ = f1.Close()
		f2, err := c2.Create(context.Background(), name2, 0644)
		if err != nil {
			t.Fatal(err)
		}
		_ = f2.Close()
	}
	// c1 leads /d1 and c2 leads /d2: creates are local. (Root lookups may be
	// remote for whichever client does not lead root.)
	if got := c1.StatCounters().RemoteMetaOps.Load() - before1; got > 25 {
		t.Errorf("c1 remote ops = %d; creates should be local", got)
	}
	if got := c2.StatCounters().RemoteMetaOps.Load() - before2; got > 25 {
		t.Errorf("c2 remote ops = %d; creates should be local", got)
	}
}

func TestLeaseHandoverAfterRelease(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2")
	if err := c1.Mkdir(context.Background(), "/dir", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := c1.Create(context.Background(), "/dir/file", 0666)
	_ = f.Close()
	res, err := c1.resolvePath(context.Background(), "/dir", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.ReleaseDir(res.node.Ino); err != nil {
		t.Fatal(err)
	}
	// c2 can now become the leader and operate locally.
	if _, err := c2.Stat(context.Background(), "/dir/file"); err != nil {
		t.Fatal(err)
	}
	g, err := c2.Create(context.Background(), "/dir/file2", 0666)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Close()
	if _, ok := c2.ledDirFor(res.node.Ino); !ok {
		t.Fatal("c2 did not become leader after c1 released")
	}
	// And c1's subsequent access is forwarded to c2.
	if _, err := c1.Stat(context.Background(), "/dir/file2"); err != nil {
		t.Fatal(err)
	}
}

func TestClientCrashRecoveryEndToEnd(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	if err := c1.Mkdir(context.Background(), "/work", 0777); err != nil {
		t.Fatal(err)
	}
	// Ensure the tree is durable before the doomed operations.
	if err := c1.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := c1.resolvePath(context.Background(), "/work", true)
	if err != nil {
		t.Fatal(err)
	}
	workIno := res.node.Ino

	// c1 creates files and force-commits the journal WITHOUT checkpointing:
	// simulate by flushing, then crashing before the background checkpoint…
	// Flush checkpoints too, so instead we write journal records directly
	// through c1's journal and crash. Simplest honest approach: create files,
	// flush (commit+checkpoint), then create more and crash with the commit
	// interval long enough that nothing was committed — those are lost (as
	// allowed), but any committed-but-not-checkpointed txn must be replayed.
	f, err := c1.Create(context.Background(), "/work/durable", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := c1.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	c1.Crash()

	// The lease manager refuses access until expiry + grace, then lets the
	// next client recover.
	c2 := tc.client(t, "c2")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c2.Stat(context.Background(), "/work/durable"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("c2 never recovered /work")
		}
		time.Sleep(50 * time.Millisecond)
	}
	st, err := c2.Stat(context.Background(), "/work/durable")
	if err != nil || st.Type != types.TypeRegular {
		t.Fatalf("after recovery: %+v, %v", st, err)
	}
	_ = workIno
}

func TestCommittedButNotCheckpointedSurvivesCrash(t *testing.T) {
	tc := newTestCluster(t)
	// Use a journal that commits instantly but whose checkpoints we can
	// stall via fault injection on inode/dentry writes... simpler: commit
	// with a tiny interval, crash immediately after the journal object
	// appears in the store but (likely) before checkpoint. To make it
	// deterministic, block checkpoint writes with injected failures.
	c1 := tc.client(t, "c1")
	if err := c1.Mkdir(context.Background(), "/j", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c1.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, _ := c1.resolvePath(context.Background(), "/j", true)
	jIno := res.node.Ino

	// Fail every non-journal write (checkpoint targets) so Flush commits the
	// txn but cannot apply it.
	tc.fault.FailNext("i:", 100) // checkpoint inode writes fail; journal ("j:") commits succeed
	f, err := c1.Create(context.Background(), "/j/ghost", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_ = c1.FlushAll(context.Background()) // commit succeeds; checkpoint fails (error recorded)
	c1.Crash()
	tc.fault.FailNext("", 0) // heal

	// Journal must contain the committed txn.
	keys, _ := tc.store.List("j:" + jIno.String() + ":")
	if len(keys) == 0 {
		t.Fatal("no journal record survived the crash")
	}

	c2 := tc.client(t, "c2")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c2.Stat(context.Background(), "/j/ghost"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovery did not replay the committed create")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestRenameSameDirectory(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/d", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := c.Create(context.Background(), "/d/old", 0644)
	_, _ = f.Write([]byte("content"))
	_ = f.Close()
	if err := c.Rename(context.Background(), "/d/old", "/d/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(context.Background(), "/d/old"); !isNotExist(err) {
		t.Fatalf("old name survives: %v", err)
	}
	st, err := c.Stat(context.Background(), "/d/new")
	if err != nil || st.Size != 7 {
		t.Fatalf("new name: %+v, %v", st, err)
	}
	// Rename onto an existing file replaces it.
	g, _ := c.Create(context.Background(), "/d/other", 0644)
	_ = g.Close()
	if err := c.Rename(context.Background(), "/d/new", "/d/other"); err != nil {
		t.Fatal(err)
	}
	ents, _ := c.Readdir(context.Background(), "/d")
	if len(ents) != 1 || ents[0].Name != "other" {
		t.Fatalf("after replace: %v", ents)
	}
}

func TestRenameCrossDirectorySingleClient(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	for _, d := range []string{"/src", "/dst"} {
		if err := c.Mkdir(context.Background(), d, 0777); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := c.Create(context.Background(), "/src/file", 0644)
	_, _ = f.Write([]byte("move me"))
	_ = f.Close()
	if err := c.Rename(context.Background(), "/src/file", "/dst/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat(context.Background(), "/src/file"); !isNotExist(err) {
		t.Fatalf("source survives: %v", err)
	}
	st, err := c.Stat(context.Background(), "/dst/renamed")
	if err != nil || st.Size != 7 {
		t.Fatalf("dest: %+v, %v", st, err)
	}
	// Data is intact.
	h, _ := c.Open(context.Background(), "/dst/renamed", types.ORdonly, 0)
	got, _ := io.ReadAll(h)
	_ = h.Close()
	if string(got) != "move me" {
		t.Fatalf("content after rename: %q", got)
	}
	// Everything checkpointed cleanly: no journal residue after the strong
	// flush (Client.FlushAll is only a durability barrier).
	if err := c.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.jrnl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	keys, _ := tc.store.List("j:")
	if len(keys) != 0 {
		t.Fatalf("journal residue after rename: %v", keys)
	}
}

func TestRenameCrossClient2PC(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2")
	if err := c1.Mkdir(context.Background(), "/a", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c2.Mkdir(context.Background(), "/b", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := c1.Create(context.Background(), "/a/file", 0666)
	_, _ = f.Write([]byte("x"))
	_ = f.Close()
	// c1 leads /a, c2 leads /b. c2 initiates: the rename is forwarded to
	// c1 (source leader), which runs 2PC with c2 (destination leader).
	if err := c2.Rename(context.Background(), "/a/file", "/b/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Stat(context.Background(), "/a/file"); !isNotExist(err) {
		t.Fatalf("src survives on c1: %v", err)
	}
	if st, err := c2.Stat(context.Background(), "/b/file"); err != nil || st.Size != 1 {
		t.Fatalf("dst on c2: %+v, %v", st, err)
	}
	// The destination directory's listing is served by c2 locally.
	ents, err := c2.Readdir(context.Background(), "/b")
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir /b: %v, %v", ents, err)
	}
}

func TestRenameDirectoryCycleRejected(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/p", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir(context.Background(), "/p/q", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(context.Background(), "/p", "/p/q/r"); !errors.Is(err, types.ErrInval) {
		t.Fatalf("cycle rename: %v", err)
	}
}

func TestDataLeaseConflictFallsBackToDirect(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	c2 := tc.client(t, "c2")
	if err := c1.Mkdir(context.Background(), "/s", 0777); err != nil {
		t.Fatal(err)
	}
	f1, err := c1.Open(context.Background(), "/s/shared", types.ORdwr|types.OCreate, 0666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := f1.Sync(); err != nil {
		t.Fatal(err)
	}
	// c2 opens the same file (read lease) and then writes: conflict with
	// c1's lease → both go direct.
	f2, err := c2.Open(context.Background(), "/s/shared", types.ORdwr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.WriteAt([]byte("bb"), 0); err != nil {
		t.Fatal(err)
	}
	f2.mu.Lock()
	direct2 := f2.direct
	f2.mu.Unlock()
	if !direct2 {
		t.Fatal("c2 write with concurrent lease holders should be direct")
	}
	// c2's direct write is immediately visible in the store; c1's next read
	// (after its cache was flushed by broadcast) sees it.
	buf := make([]byte, 4)
	if _, err := f1.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("bbaa")) {
		t.Fatalf("c1 sees %q, want bbaa", buf)
	}
	_ = f2.Close()
	_ = f1.Close()
}

func TestPermissionCachingModeServesLocally(t *testing.T) {
	tc := newTestCluster(t)
	leader := tc.client(t, "leader")
	pc := tc.client(t, "pc", func(o *Options) {
		o.PermCache = true
		o.Cred = types.Cred{Uid: 2000, Gid: 2000} // not the owner of /hot
	})

	if err := leader.Mkdir(context.Background(), "/hot", 0777); err != nil {
		t.Fatal(err)
	}
	f, _ := leader.Create(context.Background(), "/hot/f", 0666)
	_ = f.Close()

	// First stat by pc: remote lookups, populating the cache.
	if _, err := pc.Stat(context.Background(), "/hot/f"); err != nil {
		t.Fatal(err)
	}
	remoteAfterFirst := pc.StatCounters().RemoteMetaOps.Load()
	// Repeat stats: directory traversal is served from the permission cache;
	// only the final file lookup goes to the leader (attributes stay fresh).
	for i := 0; i < 10; i++ {
		if _, err := pc.Stat(context.Background(), "/hot/f"); err != nil {
			t.Fatal(err)
		}
	}
	if got := pc.StatCounters().RemoteMetaOps.Load() - remoteAfterFirst; got > 10 {
		t.Fatalf("pcache mode issued %d remote ops for 10 stats; traversal not cached", got)
	}
	if pc.StatCounters().PcacheHits.Load() == 0 {
		t.Fatal("no pcache hits recorded")
	}

	// The relaxation bound: a chmod by the leader becomes visible to pc no
	// later than one lease period (immediately here, because the final
	// lookup is leader-checked; locally resolved segments may stay stale
	// until the cache entry expires).
	if err := leader.Chmod(context.Background(), "/hot", 0700); err != nil {
		t.Fatal(err)
	}
	time.Sleep(tc.mgr.Period() + 50*time.Millisecond)
	if _, err := pc.Stat(context.Background(), "/hot/f"); !errors.Is(err, types.ErrAccess) {
		t.Fatalf("after one lease period the chmod must be visible: %v", err)
	}
}

func TestLeaseExtensionKeepsLeadershipAcrossExpiry(t *testing.T) {
	tc := newTestCluster(t)
	c := tc.client(t, "a")
	if err := c.Mkdir(context.Background(), "/long", 0777); err != nil {
		t.Fatal(err)
	}
	// Work across several lease periods; extensions must keep ops local.
	for i := 0; i < 6; i++ {
		f, err := c.Create(context.Background(), "/long/f"+string(rune('0'+i)), 0644)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		_ = f.Close()
		time.Sleep(tc.mgr.Period() / 3)
	}
	if got := tc.mgr.Stats().Extensions.Load(); got == 0 {
		t.Fatal("no lease extensions recorded")
	}
	ents, err := c.Readdir(context.Background(), "/long")
	if err != nil || len(ents) != 6 {
		t.Fatalf("readdir: %d entries, %v", len(ents), err)
	}
}
