package core

import (
	"context"
	"errors"
	"fmt"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// maxSymlinkDepth bounds symlink chains during resolution (ELOOP).
const maxSymlinkDepth = 8

// resolved is the outcome of a path walk: the parent directory and, when the
// final entry exists, its inode.
type resolved struct {
	parent     types.Ino    // inode of the parent directory
	parentNode *types.Inode // parent's inode (for permission checks)
	name       string       // final component ("" for the root itself)
	node       *types.Inode // final inode, nil if the entry does not exist
}

// resolvePath walks an absolute path from the root, performing a lookup and
// an execute-permission check at every component — the behavior the FUSE
// driver forces on ArkFS (paper §IV-C). Lookups in directories this client
// leads are local; remote lookups go to the leader unless the permission
// cache covers them. followLast controls symlink resolution of the final
// component.
func (c *Client) resolvePath(ctx context.Context, path string, followLast bool) (*resolved, error) {
	return c.walk(ctx, path, followLast, 0)
}

func (c *Client) walk(ctx context.Context, path string, followLast bool, depth int) (*resolved, error) {
	if depth > maxSymlinkDepth {
		return nil, fmt.Errorf("core: %q: %w", path, types.ErrLoop)
	}
	parts, err := types.SplitPath(path)
	if err != nil {
		return nil, err
	}
	cur := types.RootIno
	var curNode *types.Inode

	if len(parts) == 0 {
		node, err := c.statDir(ctx, cur)
		if err != nil {
			return nil, err
		}
		return &resolved{parent: cur, parentNode: node, name: "", node: node}, nil
	}

	for i, name := range parts {
		// Search permission on the directory being traversed.
		if curNode == nil {
			curNode, err = c.statDir(ctx, cur)
			if err != nil {
				return nil, err
			}
		}
		if err := curNode.Access(c.opts.Cred, types.MayExec); err != nil {
			return nil, fmt.Errorf("core: search %q: %w", name, err)
		}
		last := i == len(parts)-1
		child, err := c.lookup(ctx, cur, name)
		if err != nil {
			if last && isNotExist(err) {
				// Parent exists; final entry does not — callers like Create
				// need exactly this state.
				return &resolved{parent: cur, parentNode: curNode, name: name}, nil
			}
			return nil, err
		}
		if child.Type == types.TypeSymlink && (!last || followLast) {
			// Re-walk with the target spliced in.
			rest := types.JoinPath(parts[i+1:])
			target := child.Target
			if len(target) == 0 || target[0] != '/' {
				// Relative target: resolve against the current directory.
				prefix := types.JoinPath(parts[:i])
				target = prefix + "/" + target
			}
			if rest != "/" {
				target = target + rest
			}
			return c.walk(ctx, target, followLast, depth+1)
		}
		if last {
			return &resolved{parent: cur, parentNode: curNode, name: name, node: child}, nil
		}
		if !child.IsDir() {
			return nil, fmt.Errorf("core: %q in %q: %w", name, path, types.ErrNotDir)
		}
		cur = child.Ino
		curNode = child
	}
	panic("unreachable")
}

// statDir returns a directory's inode: locally if led, from the permission
// cache, or from the leader (caching the answer in pcache mode).
func (c *Client) statDir(ctx context.Context, dir types.Ino) (*types.Inode, error) {
	if ld, ok := c.ledDirFor(dir); ok {
		c.stats.LocalMetaOps.Add(1)
		return ld.table.DirInode(), nil
	}
	if pe := c.pcacheGet(dir); pe != nil && pe.inode != nil {
		c.stats.PcacheHits.Add(1)
		return pe.inode.Clone(), nil
	}
	// Acquire (become leader) or discover the remote leader. Leadership can
	// move (or still be installing) underneath us: retry with backoff.
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ld, leader, err := c.routeFor(ctx, dir)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			c.stats.LocalMetaOps.Add(1)
			return ld.table.DirInode(), nil
		}
		resp, err := c.callLeader(ctx, leader, dir, StatReq{Dir: dir, Cred: c.opts.Cred})
		if err != nil {
			if c.shouldRetry(ctx, dir, err, attempt) {
				continue
			}
			return nil, err
		}
		sr := resp.(StatResp)
		serr := errFromString(sr.Err)
		if serr != nil {
			if c.shouldRetry(ctx, dir, serr, attempt) {
				continue
			}
			return nil, serr
		}
		node, err := wire.DecodeInode(sr.Inode)
		if err != nil {
			return nil, err
		}
		c.pcachePutDir(dir, node)
		return node, nil
	}
}

// lookup resolves one name within dir.
func (c *Client) lookup(ctx context.Context, dir types.Ino, name string) (*types.Inode, error) {
	if ld, ok := c.ledDirFor(dir); ok {
		c.chargeMetaOp()
		c.stats.LocalMetaOps.Add(1)
		_, child, err := ld.table.Lookup(name)
		return child, err
	}
	if pe := c.pcacheGet(dir); pe != nil {
		if node, ok := pe.lookups[name]; ok {
			c.stats.PcacheHits.Add(1)
			if node == nil {
				return nil, fmt.Errorf("core: %q: %w", name, types.ErrNotExist)
			}
			return node.Clone(), nil
		}
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ld, leader, err := c.routeFor(ctx, dir)
		if err != nil {
			return nil, err
		}
		if ld != nil {
			c.chargeMetaOp()
			c.stats.LocalMetaOps.Add(1)
			_, child, err := ld.table.Lookup(name)
			return child, err
		}
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(ctx, leader, dir, LookupReq{
			Dir: dir, Name: name, Cred: c.opts.Cred, WantDirInode: c.opts.PermCache,
		})
		if err != nil {
			if c.shouldRetry(ctx, dir, err, attempt) {
				continue // we became the leader mid-call, or honored pushback
			}
			return nil, err
		}
		lr := resp.(LookupResp)
		lerr := errFromString(lr.Err)
		if lerr != nil && !isNotExist(lerr) && c.shouldRetry(ctx, dir, lerr, attempt) {
			continue
		}
		if c.opts.PermCache && len(lr.DirInode) > 0 {
			if dn, derr := wire.DecodeInode(lr.DirInode); derr == nil {
				c.pcachePutDir(dir, dn)
			}
		}
		if lerr != nil {
			if isNotExist(lerr) {
				c.pcachePutLookup(dir, name, nil) // negative entry
			}
			return nil, fmt.Errorf("core: lookup %q: %w", name, lerr)
		}
		node, err := wire.DecodeInode(lr.Inode)
		if err != nil {
			return nil, err
		}
		c.pcachePutLookup(dir, name, node)
		return node, nil
	}
}

// callLeader performs one leader RPC, refreshing the leader address through
// the lease manager once if the cached leader is gone. The context's deadline
// or cancellation is honored at each RPC boundary. Timeouts — a crashed
// leader, a partition, a dropped message — never escape to the workload as
// hard failures from here: they invalidate the cached route and surface as
// ErrStale, so the per-operation retry loops re-resolve through the lease
// manager (with backoff) until their own attempt budget runs out.
func (c *Client) callLeader(ctx context.Context, leader rpc.Addr, dir types.Ino, req any) (any, error) {
	resp, err := c.net.CallFromCtx(ctx, c.addr, leader, req)
	if err == nil {
		return resp, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// Cancellation is not a routing problem: fail the operation outright
		// instead of burning the retry budget on a dead context.
		return nil, cerr
	}
	if errors.Is(err, types.ErrAgain) {
		// Typed pushback (inbox bound, queue-wait shed) is not a routing
		// problem either: the leader is alive and asking for backoff.
		// Rediscovering through the lease manager would only add load where
		// the hint asks for less; surface it to the caller's budgeted loop.
		return nil, err
	}
	// The leader may have vanished; invalidate and rediscover once.
	c.invalidateLeader(dir)
	ld, newLeader, lerr := c.leaderFor(ctx, dir)
	if lerr != nil {
		return nil, lerr
	}
	if ld != nil {
		// We became the leader ourselves: the caller should retry locally,
		// signalled with ErrStale.
		return nil, fmt.Errorf("core: leadership changed for %s: %w", dir.Short(), types.ErrStale)
	}
	resp, err = c.net.CallFromCtx(ctx, c.addr, newLeader, req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if errors.Is(err, types.ErrAgain) {
			return nil, err // pushback from the rediscovered leader
		}
		// Still unreachable. The lease manager vouched for this leader, so
		// the fault is on the path, not the route — but the route is all we
		// can refresh. Map to ErrStale for the caller's retry loop.
		c.invalidateLeader(dir)
		return nil, fmt.Errorf("core: leader %q unreachable for %s (%v): %w", newLeader, dir.Short(), err, types.ErrStale)
	}
	return resp, nil
}

// --- permission cache -------------------------------------------------------

// pcacheGet returns a live permission-cache entry for dir, or nil.
func (c *Client) pcacheGet(dir types.Ino) *permEntry {
	if !c.opts.PermCache {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pe := c.pcache[dir]
	if pe == nil || c.env.Now() >= pe.expiry {
		delete(c.pcache, dir)
		return nil
	}
	return pe
}

// pcachePutDir caches a remote directory's inode for one lease period.
func (c *Client) pcachePutDir(dir types.Ino, node *types.Inode) {
	if !c.opts.PermCache {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pe := c.pcache[dir]
	if pe == nil || c.env.Now() >= pe.expiry {
		pe = &permEntry{lookups: make(map[string]*types.Inode), expiry: c.env.Now() + c.opts.LeasePeriod}
		c.pcache[dir] = pe
	}
	pe.inode = node.Clone()
}

// pcachePutLookup caches one lookup result (nil = negative entry).
func (c *Client) pcachePutLookup(dir types.Ino, name string, node *types.Inode) {
	if !c.opts.PermCache {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pe := c.pcache[dir]
	if pe == nil || c.env.Now() >= pe.expiry {
		pe = &permEntry{lookups: make(map[string]*types.Inode), expiry: c.env.Now() + c.opts.LeasePeriod}
		c.pcache[dir] = pe
	}
	if node == nil {
		pe.lookups[name] = nil // negative entry
		return
	}
	if node.Type == types.TypeRegular {
		// The permission cache covers pathname resolution (directory
		// permissions and traversal entries); file attributes stay fresh at
		// the leader. Drop any stale negative entry for the name.
		delete(pe.lookups, name)
		return
	}
	pe.lookups[name] = node.Clone()
}

// pcacheInvalidate drops cached state for dir (after this client mutates it
// remotely, so it re-reads its own writes).
func (c *Client) pcacheInvalidate(dir types.Ino) {
	if !c.opts.PermCache {
		return
	}
	c.mu.Lock()
	delete(c.pcache, dir)
	c.mu.Unlock()
}
