package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/types"
)

// A directory whose checkpointed dentry block is corrupt at rest is served
// degraded by the next leader: reads work on whatever survives verification,
// every mutation returns EROFS, and integrity.degraded is counted. Other
// directories stay fully writable.
func TestCorruptCheckpointServesDegradedReadOnly(t *testing.T) {
	tc := newTestCluster(t)
	c1 := tc.client(t, "c1")
	ctx := context.Background()
	if err := c1.Mkdir(ctx, "/deg", 0777); err != nil {
		t.Fatal(err)
	}
	f, err := c1.Create(ctx, "/deg/kept", 0644)
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := c1.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	// The test corrupts the checkpointed dentry block, so the block must
	// exist: force the checkpoint behind the durability barrier.
	if err := c1.jrnl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	res, err := c1.resolvePath(ctx, "/deg", true)
	if err != nil {
		t.Fatal(err)
	}
	degIno := res.node.Ino
	c1.Crash()

	// Rot the checkpointed dentry block while no leader holds the lease.
	key := "e:" + degIno.String()
	raw, err := tc.store.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	cp := append([]byte(nil), raw...)
	cp[len(cp)/2] ^= 0x08
	if err := tc.store.Put(key, cp); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c2 := tc.client(t, "c2", func(o *Options) { o.Obs = reg })
	// The next leader takes over after lease expiry + grace; reads of the
	// degraded directory succeed (empty: the whole block was lost).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c2.Readdir(ctx, "/deg"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("c2 never became leader of the degraded directory")
		}
		time.Sleep(50 * time.Millisecond)
	}
	ents, err := c2.Readdir(ctx, "/deg")
	if err != nil {
		t.Fatalf("degraded readdir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("corrupt block yielded entries: %v", ents)
	}
	// Every mutation is refused with EROFS.
	if _, err := c2.Create(ctx, "/deg/new", 0644); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("create in degraded dir: %v, want EROFS", err)
	}
	if err := c2.Mkdir(ctx, "/deg/sub", 0755); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("mkdir in degraded dir: %v, want EROFS", err)
	}
	if v := reg.Counter("integrity.degraded").Value(); v == 0 {
		t.Fatal("integrity.degraded never counted")
	}
	// The blast radius is one directory: the rest of the tree stays writable.
	if err := c2.Mkdir(ctx, "/healthy", 0755); err != nil {
		t.Fatalf("unrelated directory not writable: %v", err)
	}
}
