package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"arkfs/internal/journal"
	"arkfs/internal/obs"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Rename moves src to dst. Same-directory renames are a single journaled
// transaction; cross-directory renames run the two-phase commit of paper
// §III-E, coordinated by the source directory's leader.
func (c *Client) Rename(ctx context.Context, src, dst string) error {
	ctx, op := c.startOp(ctx, "rename", src)
	c.chargeFUSE()
	// Lexical cycle guard: a directory cannot move into its own subtree.
	cleanSrc, err := types.SplitPath(src)
	if err != nil {
		return op.end(errnoWrap("rename", src, err))
	}
	cleanDst, err := types.SplitPath(dst)
	if err != nil {
		return op.end(errnoWrap("rename", dst, err))
	}
	if strings.HasPrefix(types.JoinPath(cleanDst)+"/", types.JoinPath(cleanSrc)+"/") {
		return op.end(errnoWrap("rename", src, types.ErrInval))
	}

	sres, err := c.resolvePath(ctx, src, false)
	if err != nil {
		return op.end(errnoWrap("rename", src, err))
	}
	if sres.name == "" || sres.node == nil {
		return op.end(errnoWrap("rename", src, types.ErrNotExist))
	}
	dres, err := c.resolvePath(ctx, dst, false)
	if err != nil {
		return op.end(errnoWrap("rename", dst, err))
	}
	if dres.name == "" {
		return op.end(errnoWrap("rename", dst, types.ErrExist))
	}
	if dres.node != nil && dres.node.IsDir() {
		// Replacing a directory requires it to be empty.
		entries, rerr := c.readdirIno(ctx, dres.node.Ino)
		if rerr != nil {
			return op.end(errnoWrap("rename", dst, rerr))
		}
		if len(entries) > 0 {
			return op.end(errnoWrap("rename", dst, types.ErrNotEmpty))
		}
	}

	req := RenameReq{
		SrcDir: sres.parent, SrcName: sres.name,
		DstDir: dres.parent, DstName: dres.name,
		Cred:          c.opts.Cred,
		DstLeaderHint: c.remoteLeaderHint(ctx, dres.parent),
	}
	defer func() {
		c.pcacheInvalidate(sres.parent)
		c.pcacheInvalidate(dres.parent)
	}()

	sp := obs.SpanFrom(ctx)
	sp.SetDir(sres.parent)

	// The source directory's leader coordinates.
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return op.end(errnoWrap("rename", src, err))
		}
		ld, leader, err := c.routeFor(ctx, sres.parent)
		if err != nil {
			return op.end(errnoWrap("rename", src, err))
		}
		if ld != nil {
			sp.SetRoute(obs.RouteLocal)
			return op.end(errnoWrap("rename", src, c.coordinateRename(ctx, req)))
		}
		sp.SetRoute(obs.RouteRemote)
		c.stats.RemoteMetaOps.Add(1)
		resp, err := c.callLeader(ctx, leader, sres.parent, req)
		if err != nil {
			if c.shouldRetry(ctx, sres.parent, err, attempt) {
				continue
			}
			return op.end(errnoWrap("rename", src, fmt.Errorf("core: forwarded op: %w", err)))
		}
		rr := resp.(RenameResp)
		rerr := errFromString(rr.Err)
		if rerr != nil && c.shouldRetry(ctx, sres.parent, rerr, attempt) {
			continue
		}
		return op.end(errnoWrap("rename", src, rerr))
	}
}

// coordinateRename runs on the source directory's leader.
func (c *Client) coordinateRename(ctx context.Context, r RenameReq) error {
	ld, ok := c.ledDirFor(r.SrcDir)
	if !ok {
		return types.ErrStale
	}
	if r.SrcDir == r.DstDir {
		return c.localRenameSameDir(ctx, ld, r.SrcDir, r.SrcName, r.DstName, r.Cred)
	}

	// --- Phase 0: validate and pin the source side.
	ld.opMu.Lock()
	if err := ld.writable(); err != nil {
		ld.opMu.Unlock()
		return err
	}
	dirNode := ld.table.DirInode()
	if err := dirNode.Access(r.Cred, types.MayWrite|types.MayExec); err != nil {
		ld.opMu.Unlock()
		return err
	}
	_, moving, err := ld.table.Lookup(r.SrcName)
	if err != nil {
		ld.opMu.Unlock()
		return err
	}
	ld.opMu.Unlock()

	txid := c.jrnl.NewTxnID()
	srcOps := []wire.Op{{Kind: wire.OpDelDentry, Name: r.SrcName}}

	// --- Phase 1: prepare both journals (source first).
	if err := c.jrnl.WritePrepare(ctx, r.SrcDir, txid, r.DstDir, srcOps); err != nil {
		return err
	}
	prep := PrepareRenameReq{
		TxID: txid, CoordDir: r.SrcDir, DstDir: r.DstDir, DstName: r.DstName,
		Child: wire.EncodeInode(moving), Cred: r.Cred,
	}
	var prepErr error
	if dstLd, ok := c.ledDirFor(r.DstDir); ok {
		prepErr = c.prepareRenameLocal(ctx, dstLd, prep)
	} else {
		dstLeader := r.DstLeaderHint
		if dstLeader == "" || dstLeader == c.addr {
			dstLeader = c.remoteLeaderHint(ctx, r.DstDir)
		}
		resp, cerr := c.callLeader(ctx, dstLeader, r.DstDir, prep)
		if cerr != nil {
			prepErr = cerr
		} else {
			prepErr = errFromString(resp.(PrepareRenameResp).Err)
		}
	}

	// --- Phase 2: decide, record the decision, apply both sides.
	commit := prepErr == nil
	if err := c.jrnl.WriteDecision(ctx, r.SrcDir, txid, r.DstDir, commit); err != nil {
		// Could not persist the decision: abort locally; the participant
		// will presume abort during recovery.
		_ = c.jrnl.ResolvePrepared(ctx, r.SrcDir, txid, false)
		return fmt.Errorf("core: rename decision: %w", err)
	}
	if commit {
		// Apply the source-side removal to the metatable under the lock,
		// then checkpoint the prepared ops.
		ld.opMu.Lock()
		if _, err := ld.table.Remove(r.SrcName); err == nil {
			now := c.env.Now()
			dn := ld.table.DirInode()
			dn.Mtime, dn.Ctime = now, now
			ld.table.SetDirInode(dn)
		}
		ld.opMu.Unlock()
	}
	if err := c.jrnl.ResolvePrepared(ctx, r.SrcDir, txid, commit); err != nil {
		return err
	}
	// Tell the participant the decision; once it has resolved its prepare,
	// the decision record can be garbage-collected.
	decide := DecideRenameReq{TxID: txid, DstDir: r.DstDir, Commit: commit}
	participantDone := false
	if dstLd, ok := c.ledDirFor(r.DstDir); ok {
		participantDone = c.decideRenameLocal(ctx, dstLd, decide) == nil
	} else {
		dstLeader := r.DstLeaderHint
		if dstLeader == "" || dstLeader == c.addr {
			dstLeader = c.remoteLeaderHint(ctx, r.DstDir)
		}
		if resp, derr := c.callLeader(ctx, dstLeader, r.DstDir, decide); derr == nil && resp != nil &&
			resp.(DecideRenameResp).Err == "" {
			participantDone = true
		}
	}
	if participantDone {
		_ = c.jrnl.DeleteDecision(r.SrcDir, txid)
	}
	if !commit {
		return fmt.Errorf("core: rename prepare failed: %w", prepErr)
	}
	return nil
}

type pendingRename struct {
	dir   types.Ino
	name  string
	child *types.Inode
	coord types.Ino // coordinating directory, whose journal holds the decision
	txid  uint64
	at    time.Duration // when the prepare was accepted (env clock)
}

// prepareRenameLocal is the participant half of phase 1: validate, write the
// prepare record, and tentatively insert the dentry.
func (c *Client) prepareRenameLocal(ctx context.Context, ld *ledDir, r PrepareRenameReq) error {
	child, err := wire.DecodeInode(r.Child)
	if err != nil {
		return err
	}
	ld.opMu.Lock()
	if err := ld.writable(); err != nil {
		ld.opMu.Unlock()
		return err
	}
	dirNode := ld.table.DirInode()
	if err := dirNode.Access(r.Cred, types.MayWrite|types.MayExec); err != nil {
		ld.opMu.Unlock()
		return err
	}
	if err := types.ValidName(r.DstName); err != nil {
		ld.opMu.Unlock()
		return err
	}
	var dstOps []wire.Op
	if _, existing, lerr := ld.table.Lookup(r.DstName); lerr == nil {
		// Replace target (emptiness of directories was checked upstream).
		if existing.IsDir() != child.IsDir() {
			ld.opMu.Unlock()
			if existing.IsDir() {
				return types.ErrIsDir
			}
			return types.ErrNotDir
		}
		if _, rerr := ld.table.Remove(r.DstName); rerr != nil {
			ld.opMu.Unlock()
			return rerr
		}
		dstOps = append(dstOps,
			wire.Op{Kind: wire.OpDelDentry, Name: r.DstName},
			wire.Op{Kind: wire.OpDelInode, Ino: existing.Ino, Size: existing.Size})
	}
	dstOps = append(dstOps,
		wire.Op{Kind: wire.OpAddDentry, Name: r.DstName, Ino: child.Ino, FType: child.Type},
		wire.Op{Kind: wire.OpSetInode, Inode: child})
	if err := ld.table.Insert(r.DstName, child); err != nil {
		ld.opMu.Unlock()
		return err
	}
	ld.opMu.Unlock()

	if err := c.jrnl.WritePrepare(ctx, r.DstDir, r.TxID, r.CoordDir, dstOps); err != nil {
		// Roll the tentative insert back.
		ld.opMu.Lock()
		_, _ = ld.table.Remove(r.DstName)
		ld.opMu.Unlock()
		return err
	}
	c.pending2pc.Store(r.TxID, pendingRename{
		dir: r.DstDir, name: r.DstName, child: child,
		coord: r.CoordDir, txid: r.TxID, at: c.env.Now(),
	})
	return nil
}

// twopcResolver is the participant's safety net: a coordinator that crashes
// between prepare and decide leaves this client holding a tentative insert
// it cannot unilaterally resolve. Once the decision is overdue, the resolver
// consults the coordinator directory's journal (paper §III-E: the decision
// record, or its absence after the coordinator's recovery, is authoritative)
// and applies or rolls back the tentative entry.
func (c *Client) twopcResolver() {
	interval := c.opts.LeasePeriod / 2
	if interval <= 0 {
		interval = time.Second
	}
	for {
		c.env.Sleep(interval)
		if c.env.Stopped() {
			return
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		now := c.env.Now()
		c.pending2pc.Range(func(k, v any) bool {
			pr := v.(pendingRename)
			if now-pr.at < c.opts.LeasePeriod {
				return true // give the live coordinator time to decide
			}
			ld, leads := c.ledDirFor(pr.dir)
			if !leads {
				// Our lease on the destination lapsed; the next leader's
				// recovery resolves the durable prepare record, and our
				// in-memory table is gone with the lease.
				c.pending2pc.Delete(k)
				return true
			}
			decided, commit, err := journal.PendingDecision(c.tr, pr.coord, pr.txid)
			if err != nil || !decided {
				return true // transient store error or genuinely undecided
			}
			c.decideRenameLocal(context.Background(), ld, DecideRenameReq{TxID: pr.txid, DstDir: pr.dir, Commit: commit})
			return true
		})
	}
}

// decideRenameLocal is the participant half of phase 2. A non-nil return
// means the durable resolution did not land; the coordinator must then retain
// its decision record, or a crashed participant's recovery would flip the
// committed rename into a presumed abort — losing the file from both sides.
func (c *Client) decideRenameLocal(ctx context.Context, ld *ledDir, r DecideRenameReq) error {
	v, ok := c.pending2pc.LoadAndDelete(r.TxID)
	if !ok {
		return nil
	}
	pr := v.(pendingRename)
	if !r.Commit {
		ld.opMu.Lock()
		_, _ = ld.table.Remove(pr.name)
		ld.opMu.Unlock()
	}
	if err := c.jrnl.ResolvePrepared(ctx, pr.dir, r.TxID, r.Commit); err != nil {
		// Dead process or store fault: put the pending entry back so the
		// resolver (or the next leader's recovery) finishes the job.
		c.pending2pc.Store(r.TxID, pr)
		return err
	}
	return nil
}

func (c *Client) servePrepareRename(ctx context.Context, r PrepareRenameReq) PrepareRenameResp {
	ld, errStr := c.mustLead(r.DstDir)
	if errStr != "" {
		return PrepareRenameResp{Err: errStr}
	}
	return PrepareRenameResp{Err: errString(c.prepareRenameLocal(ctx, ld, r))}
}

func (c *Client) serveDecideRename(ctx context.Context, r DecideRenameReq) DecideRenameResp {
	ld, errStr := c.mustLead(r.DstDir)
	if errStr != "" {
		return DecideRenameResp{Err: errStr}
	}
	return DecideRenameResp{Err: errString(c.decideRenameLocal(ctx, ld, r))}
}
