package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/rpc"
)

func withTenant(tenant string) func(*Options) {
	return func(o *Options) { o.Tenant = tenant }
}

// TestTenantRedirectedOp: a forwarded create carries the requester's tenant ID
// onto every span of the trace — the requester's root, the leader's
// server-side span, and the leader's asynchronous journal commit — and the
// leader's RPC inbox attributes queue wait to the same tenant.
func TestTenantRedirectedOp(t *testing.T) {
	tc := newTestCluster(t)
	netReg := obs.NewRegistry()
	tc.net.SetObs(netReg)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "leader", withObs(r1))
	c2 := tc.client(t, "peer", withObs(r2), withTenant("acme-batch"))
	ctx := context.Background()

	if err := c1.Mkdir(ctx, "/shared", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/shared"); err != nil {
		t.Fatal(err)
	}
	f, err := c2.Create(ctx, "/shared/from-peer", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	root := rootSpan(t, c2.Tracer(), "open")
	if root.Tenant != "acme-batch" {
		t.Fatalf("root span tenant = %q, want acme-batch", root.Tenant)
	}

	// The leader's journal commit lands asynchronously; poll as in the trace
	// propagation tests.
	deadline := time.Now().Add(5 * time.Second)
	var spans []obs.Span
	for {
		_ = c1.FlushAll(ctx)
		spans = spansOf(root.Trace, c1.Tracer(), c2.Tracer())
		if hasOp(spans, "journal.commit") && hasOp(spans, "objstore.put") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal.commit/objstore.put never joined trace %s:\n%+v", root.Trace, spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	procs := map[string]bool{}
	for _, s := range spans {
		procs[s.Proc] = true
		if s.Tenant != "acme-batch" {
			t.Errorf("span %s/%s tenant = %q, want acme-batch", s.Proc, s.Op, s.Tenant)
		}
	}
	if len(procs) < 2 {
		t.Fatalf("trace %s confined to one process: %v", root.Trace, procs)
	}

	// The leader-side serve span runs after a queue pickup, so its recorded
	// wait and the network registry's per-tenant wait attribution must exist.
	serve := mustOp(t, spans, "serve.create")
	if serve.Tenant != "acme-batch" {
		t.Fatalf("serve.create tenant = %q, want acme-batch", serve.Tenant)
	}
	snap := netReg.Snapshot()
	ts, ok := snap.Tenants["acme-batch"]
	if !ok {
		t.Fatalf("network registry tracked no acme-batch tenant: %+v", snap.Tenants)
	}
	if ts.Wait.Count == 0 || ts.Service.Count == 0 {
		t.Fatalf("acme-batch queue wait/service counts = %d/%d, want > 0", ts.Wait.Count, ts.Service.Count)
	}
	if qw := snap.Histograms["rpc.queue.wait"]; qw.Count == 0 {
		t.Fatal("rpc.queue.wait histogram empty despite forwarded ops")
	}

	// Per-client accounting: the peer's registry attributes its ops to the
	// configured tenant, the leader's to its derived default tenant-<id>.
	if ops := r2.Snapshot().Tenants["acme-batch"].Ops; ops == 0 {
		t.Fatal("peer registry has no acme-batch ops")
	}
	if ops := r1.Snapshot().Tenants["tenant-leader"].Ops; ops == 0 {
		t.Fatalf("leader registry has no tenant-leader ops: %+v", r1.Snapshot().Tenants)
	}
}

// TestTenantCrossDirRename2PC: a cross-directory rename propagates the
// coordinator's tenant onto the 2PC spans of BOTH participants — including
// the participant-side prepare written in another process.
func TestTenantCrossDirRename2PC(t *testing.T) {
	tc := newTestCluster(t)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "src", withObs(r1), withTenant("alpha"))
	c2 := tc.client(t, "dst", withObs(r2))
	ctx := context.Background()

	if err := c1.Mkdir(ctx, "/a", 0777); err != nil {
		t.Fatal(err)
	}
	if err := c1.Mkdir(ctx, "/b", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/a"); err != nil { // c1 leads /a (source)
		t.Fatal(err)
	}
	if _, err := c2.Readdir(ctx, "/b"); err != nil { // c2 leads /b (destination)
		t.Fatal(err)
	}
	f, err := c1.Create(ctx, "/a/f", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := c1.Rename(ctx, "/a/f", "/b/f"); err != nil {
		t.Fatal(err)
	}

	root := rootSpan(t, c1.Tracer(), "rename")
	if root.Tenant != "alpha" {
		t.Fatalf("rename root tenant = %q, want alpha", root.Tenant)
	}
	spans := spansOf(root.Trace, c1.Tracer(), c2.Tracer())
	var prepProcs = map[string]bool{}
	for _, s := range spans {
		switch s.Op {
		case "journal.2pc.prepare":
			prepProcs[s.Proc] = true
			if s.Tenant != "alpha" {
				t.Errorf("prepare span in %s tenant = %q, want alpha", s.Proc, s.Tenant)
			}
		case "journal.2pc.decision", "serve.rename.prepare":
			if s.Tenant != "alpha" {
				t.Errorf("%s span tenant = %q, want alpha", s.Op, s.Tenant)
			}
		}
	}
	if len(prepProcs) < 2 {
		t.Fatalf("2pc.prepare spans confined to %v, want both participants:\n%+v", prepProcs, spans)
	}
}

// TestTenantSurvivesRetries: under seeded network drops, retried operations
// keep their tenant on the (single) root span per call, and the retry counts
// land in the tenant's accounting row.
func TestTenantSurvivesRetries(t *testing.T) {
	tc := newTestCluster(t)
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	c1 := tc.client(t, "leader", withObs(r1))
	c2 := tc.client(t, "peer", withObs(r2), withTenant("retry-tenant"),
		func(o *Options) { o.TraceCap = 2048 })
	ctx := context.Background()

	if err := c1.Mkdir(ctx, "/drop", 0777); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Readdir(ctx, "/drop"); err != nil {
		t.Fatal(err)
	}

	plan := rpc.NewFaultPlan(tc.env, 7)
	plan.SetDrop(0.3)
	tc.net.SetFaultPlan(plan)
	defer tc.net.SetFaultPlan(nil)

	const ops = 25
	for i := 0; i < ops; i++ {
		f, err := c2.Create(ctx, fmt.Sprintf("/drop/f%02d", i), 0644)
		if err == nil {
			_ = f.Close()
		}
	}
	tc.net.SetFaultPlan(nil)

	roots := c2.Tracer().Filter(func(s obs.Span) bool {
		return s.Op == "open" && s.Parent == 0
	})
	if len(roots) != ops {
		t.Fatalf("%d root open spans for %d calls", len(roots), ops)
	}
	var retried int
	for _, s := range roots {
		if s.Tenant != "retry-tenant" {
			t.Fatalf("root span %s tenant = %q, want retry-tenant", s.Trace, s.Tenant)
		}
		if s.Retries > 0 {
			retried++
		}
	}
	if retried == 0 {
		t.Fatal("no retried spans despite a 30% drop rate — fault plan not exercised")
	}
	ts := r2.Snapshot().Tenants["retry-tenant"]
	if ts.Ops < ops {
		t.Fatalf("retry-tenant ops = %d, want >= %d", ts.Ops, ops)
	}
	if ts.Retries == 0 {
		t.Fatal("retry-tenant accounting shows zero retries")
	}
}
