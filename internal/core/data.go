package core

import (
	"context"
	"errors"
	"io"
	"sync"

	"arkfs/internal/rpc"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// File is an open ArkFS file handle. It carries a read data lease by
// default; the first write upgrades it to an exclusive write lease unless
// another client also holds a lease, in which case every holder's cache is
// flushed and the file switches to direct object I/O (paper §III-D).
type File struct {
	c      *Client
	path   string
	parent types.Ino
	ino    types.Ino
	flags  types.OpenFlag

	mu       sync.Mutex
	size     int64
	offset   int64
	direct   bool
	hasWrite bool // holds the exclusive write lease
	wrote    bool // size/mtime need pushing at Sync/Close
	closed   bool
}

// Open opens (and with OCreate, creates) a file.
func (c *Client) Open(ctx context.Context, path string, flags types.OpenFlag, mode types.Mode) (*File, error) {
	ctx, op := c.startOp(ctx, "open", path)
	c.chargeFUSE()
	res, err := c.resolvePath(ctx, path, true)
	if err != nil {
		return nil, op.end(errnoWrap("open", path, err))
	}
	if res.name == "" {
		return nil, op.end(errnoWrap("open", path, types.ErrIsDir))
	}
	node := res.node
	if node == nil {
		if !flags.Has(types.OCreate) {
			return nil, op.end(errnoWrap("open", path, types.ErrNotExist))
		}
		node, err = c.create(ctx, res.parent, CreateReq{
			Dir: res.parent, Name: res.name, Type: types.TypeRegular,
			Mode: mode, Cred: c.opts.Cred, NewIno: c.inoSrc.Next(),
			Exclusive: flags.Has(types.OExcl),
		})
		if err != nil {
			return nil, op.end(errnoWrap("open", path, err))
		}
	} else {
		if flags.Has(types.OCreate) && flags.Has(types.OExcl) {
			return nil, op.end(errnoWrap("open", path, types.ErrExist))
		}
		if node.IsDir() {
			return nil, op.end(errnoWrap("open", path, types.ErrIsDir))
		}
	}
	// Access-mode permission checks against the (possibly fresh) inode.
	if flags.WantsRead() {
		if err := node.Access(c.opts.Cred, types.MayRead); err != nil {
			return nil, op.end(errnoWrap("open", path, err))
		}
	}
	if flags.WantsWrite() {
		if err := node.Access(c.opts.Cred, types.MayWrite); err != nil {
			return nil, op.end(errnoWrap("open", path, err))
		}
	}
	// Register the data read lease with the parent's leader.
	direct, size, err := c.openDataLease(ctx, res.parent, res.name, node, flags.WantsWrite())
	if err != nil {
		return nil, op.end(errnoWrap("open", path, err))
	}
	f := &File{
		c: c, path: path, parent: res.parent, ino: node.Ino,
		flags: flags, size: size, direct: direct,
	}
	if flags.Has(types.OTrunc) && flags.WantsWrite() && f.size > 0 {
		if err := f.truncate(0); err != nil {
			return nil, op.end(errnoWrap("open", path, err))
		}
	}
	if flags.Has(types.OAppend) {
		f.offset = f.size
	}
	c.mu.Lock()
	if c.handles[f.ino] == nil {
		c.handles[f.ino] = make(map[*File]bool)
	}
	c.handles[f.ino][f] = true
	c.mu.Unlock()
	return f, op.end(nil)
}

// Create is the creat(2) shorthand: O_WRONLY|O_CREATE|O_TRUNC.
func (c *Client) Create(ctx context.Context, path string, mode types.Mode) (*File, error) {
	return c.Open(ctx, path, types.OWronly|types.OCreate|types.OTrunc, mode)
}

// openDataLease registers a read lease at the parent's leader and returns
// whether the file is in direct-I/O mode plus its current size.
func (c *Client) openDataLease(ctx context.Context, parent types.Ino, name string, node *types.Inode, write bool) (bool, int64, error) {
	if ld, ok := c.ledDirFor(parent); ok {
		direct := c.grantRead(ld, node.Ino, c.addr)
		// Leader's table has the freshest size.
		if cur, ok := ld.table.Child(node.Ino); ok {
			return direct, cur.Size, nil
		}
		return direct, node.Size, nil
	}
	req := OpenReq{Dir: parent, Name: name, Cred: c.opts.Cred, Client: c.addr, Write: write}
	var or OpenResp
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return false, 0, err
		}
		if ld, ok := c.ledDirFor(parent); ok {
			direct := c.grantRead(ld, node.Ino, c.addr)
			if cur, ok := ld.table.Child(node.Ino); ok {
				return direct, cur.Size, nil
			}
			return direct, node.Size, nil
		}
		resp, err := c.callLeader(ctx, c.remoteLeaderHint(ctx, parent), parent, req)
		if err != nil {
			if errors.Is(err, types.ErrStale) && attempt < maxOpRetries {
				c.retryBackoff(attempt)
				continue
			}
			return false, 0, err
		}
		or = resp.(OpenResp)
		if errors.Is(errFromString(or.Err), types.ErrStale) && attempt < maxOpRetries {
			c.invalidateLeader(parent)
			c.retryBackoff(attempt)
			continue
		}
		break
	}
	if err := errFromString(or.Err); err != nil {
		return false, 0, err
	}
	fresh, err := wire.DecodeInode(or.Inode)
	if err != nil {
		return false, 0, err
	}
	return or.Direct, fresh.Size, nil
}

// remoteLeaderHint returns the last known leader for dir, falling back to a
// manager-driven discovery inside callLeader when absent.
func (c *Client) remoteLeaderHint(ctx context.Context, dir types.Ino) rpc.Addr {
	c.mu.Lock()
	addr, ok := c.remote[dir]
	c.mu.Unlock()
	if ok {
		return addr
	}
	// Unknown: force discovery via leaderFor.
	if ld, leader, err := c.leaderFor(ctx, dir); err == nil && ld == nil {
		return leader
	}
	return c.addr // we became the leader; callLeader will hit our own server
}

// Size returns the handle's view of the file size.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Ino returns the file's inode number.
func (f *File) Ino() types.Ino { return f.ino }

// ReadAt reads len(p) bytes at offset off, returning io.EOF at end of file.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	start := f.c.env.Now()
	f.c.chargeFUSE()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, types.ErrBadFD
	}
	if !f.flags.WantsRead() {
		f.mu.Unlock()
		return 0, types.ErrBadFD
	}
	size, direct := f.size, f.direct
	f.mu.Unlock()

	var n int
	var err error
	if direct {
		n, err = f.c.tr.ReadAt(f.ino, p, off, size)
	} else {
		n, err = f.c.data.Read(f.ino, p, off, size)
	}
	f.c.cBytesRead.Add(int64(n))
	f.c.tenants.AddBytes(f.c.opts.Tenant, int64(n), 0)
	f.c.opHists["read"].Observe(f.c.env.Now() - start)
	if err != nil {
		return n, errnoWrap("read", f.path, err)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Read reads from the cursor position.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// WriteAt writes p at offset off.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	start := f.c.env.Now()
	f.c.chargeFUSE()
	f.mu.Lock()
	if f.closed || !f.flags.WantsWrite() {
		f.mu.Unlock()
		return 0, types.ErrBadFD
	}
	f.mu.Unlock()
	if err := f.ensureWritable(); err != nil {
		return 0, errnoWrap("write", f.path, err)
	}
	f.mu.Lock()
	direct := f.direct
	f.mu.Unlock()

	var err error
	if direct {
		err = f.c.tr.WriteAt(f.ino, p, off)
	} else {
		err = f.c.data.Write(f.ino, p, off)
	}
	if err != nil {
		return 0, errnoWrap("write", f.path, err)
	}
	f.mu.Lock()
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.wrote = true
	f.mu.Unlock()
	f.c.cBytesWrite.Add(int64(len(p)))
	f.c.tenants.AddBytes(f.c.opts.Tenant, 0, int64(len(p)))
	f.c.opHists["write"].Observe(f.c.env.Now() - start)
	return len(p), nil
}

// Write writes at the cursor (honoring O_APPEND).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.offset
	if f.flags.Has(types.OAppend) {
		off = f.size
	}
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.offset = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek repositions the cursor.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.offset
	case io.SeekEnd:
		base = f.size
	default:
		return 0, types.ErrInval
	}
	if base+offset < 0 {
		return 0, types.ErrInval
	}
	f.offset = base + offset
	return f.offset, nil
}

// ensureWritable acquires the exclusive write lease on first write; a
// conflict flips the handle (and everyone else's) to direct I/O.
func (f *File) ensureWritable() error {
	f.mu.Lock()
	if f.hasWrite || f.direct {
		f.mu.Unlock()
		return nil
	}
	f.mu.Unlock()

	c := f.c
	ctx := context.Background() // file I/O paths carry no caller context
	var direct bool
	if ld, ok := c.ledDirFor(f.parent); ok {
		direct = c.upgradeWrite(ld, f.ino, c.addr)
	} else {
		resp, err := c.callLeader(ctx, c.remoteLeaderHint(ctx, f.parent), f.parent,
			WriteLeaseReq{Dir: f.parent, Ino: f.ino, Client: c.addr})
		if err != nil {
			return err
		}
		wr := resp.(WriteLeaseResp)
		if err := errFromString(wr.Err); err != nil {
			return err
		}
		direct = wr.Direct
	}
	f.mu.Lock()
	if direct {
		f.direct = true
	} else {
		f.hasWrite = true
	}
	f.mu.Unlock()
	if direct {
		// Push anything we cached before the conflict, then bypass.
		if err := c.data.Flush(f.ino); err != nil {
			return err
		}
		c.data.Invalidate(f.ino)
	}
	return nil
}

// truncate implements O_TRUNC and Ftruncate through the parent's leader.
func (f *File) truncate(size int64) error {
	res, err := f.c.setAttrIno(context.Background(), f.parent, f.baseName(), AttrPatch{SetSize: true, Size: size}, false)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.size = res.Size
	f.mu.Unlock()
	f.c.data.Invalidate(f.ino)
	return nil
}

// baseName extracts the final path component.
func (f *File) baseName() string {
	_, name, err := types.SplitDir(f.path)
	if err != nil {
		return ""
	}
	return name
}

// Sync flushes cached data and pushes size/mtime to the parent's leader —
// fsync(2) for this handle.
func (f *File) Sync() error { return f.Fsync(context.Background()) }

// Fsync is Sync under the caller's context: its deadline and trace identity
// ride the size/mtime update to the leader, so a cancelled workload stops at
// the metadata forwarding boundary instead of blocking through it.
func (f *File) Fsync(ctx context.Context) error {
	f.c.chargeFUSE()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return types.ErrBadFD
	}
	size, wrote := f.size, f.wrote
	f.mu.Unlock()
	if err := f.c.data.Flush(f.ino); err != nil {
		return errnoWrap("fsync", f.path, err)
	}
	if wrote {
		patch := AttrPatch{SetSize: true, Size: size, SetTimes: true, Mtime: f.c.env.Now()}
		if _, err := f.c.setAttrIno(ctx, f.parent, f.baseName(), patch, true); err != nil {
			return errnoWrap("fsync", f.path, err)
		}
		f.mu.Lock()
		f.wrote = false
		f.mu.Unlock()
	}
	// Make the metadata durable if we own the journal (durability barrier,
	// not a checkpoint — see Client.fsyncDir).
	if ld, ok := f.c.ledDirFor(f.parent); ok {
		if err := f.c.fsyncDir(f.parent, ld); err != nil {
			return errnoWrap("fsync", f.path, err)
		}
	}
	return nil
}

// Close syncs written state and releases the data lease.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	wrote := f.wrote
	f.mu.Unlock()

	// close(2) does not fsync: the size reaches the leader now (a cheap
	// metadata RPC, journaled and batched there), while dirty data stays in
	// the write-back cache and is flushed in the background. The data lease
	// is held until that flush completes, so any new reader triggers a
	// recall (flush broadcast) first and never sees stale objects.
	var err error
	if wrote {
		f.mu.Lock()
		size := f.size
		f.mu.Unlock()
		patch := AttrPatch{SetSize: true, Size: size, SetTimes: true, Mtime: f.c.env.Now()}
		if _, serr := f.c.setAttrIno(context.Background(), f.parent, f.baseName(), patch, true); serr != nil {
			err = serr
		}
		f.mu.Lock()
		f.wrote = false
		f.mu.Unlock()
	}
	f.mu.Lock()
	f.closed = true
	size := f.size
	f.mu.Unlock()

	c := f.c
	c.mu.Lock()
	if hs := c.handles[f.ino]; hs != nil {
		delete(hs, f)
		if len(hs) == 0 {
			delete(c.handles, f.ino)
		}
	}
	c.mu.Unlock()
	_ = size
	c.mu.Lock()
	stillOpen := len(c.handles[f.ino]) > 0
	c.mu.Unlock()
	if stillOpen {
		// Another handle shares the data lease; keep it (and the cache).
		return err
	}
	release := func() {
		// Giving the lease back forfeits the right to cache: a later open
		// must not trust entries that predate other clients' writes.
		c.data.Invalidate(f.ino)
		if ld, ok := c.ledDirFor(f.parent); ok {
			c.releaseData(ld, f.ino, c.addr)
			return
		}
		req := CloseFileReq{Dir: f.parent, Ino: f.ino, Client: c.addr}
		ctx := context.Background()
		_, _ = c.callLeader(ctx, c.remoteLeaderHint(ctx, f.parent), f.parent, req)
	}
	if c.data.Dirty(f.ino) {
		// Background write-back; release the data lease only afterwards. On
		// failure the entries stay dirty and resident, the error is recorded
		// for FlushAll/Close, and the lease is kept so the data cannot be
		// invalidated out from under the pending retry.
		c.env.Go(func() {
			if ferr := c.data.Flush(f.ino); ferr != nil {
				c.recordWBErr(ferr)
				return
			}
			release()
		})
	} else {
		release()
	}
	return err
}

// DropCaches empties this client's data cache (the benchmark "drop caches"
// step between write and read phases).
func (c *Client) DropCaches(inos ...types.Ino) {
	for _, ino := range inos {
		c.data.Invalidate(ino)
	}
}

// DropAllCaches empties the whole data cache.
func (c *Client) DropAllCaches() { c.data.Clear() }

// --- leader-side data lease service ------------------------------------------

// grantRead registers a read lease for client on a child file of a led
// directory and reports whether the file is in direct mode. If another
// client holds the write lease, its cache is recalled (flush broadcast)
// first and the file falls to direct mode — the paper's conflict rule.
func (c *Client) grantRead(ld *ledDir, ino types.Ino, client rpc.Addr) bool {
	ld.opMu.Lock()
	dl := ld.dataLeases[ino]
	if dl == nil {
		dl = &dataLease{readers: make(map[rpc.Addr]bool)}
		ld.dataLeases[ino] = dl
	}
	writer := dl.writer
	if writer != "" && writer != client {
		dl.direct = true
		dl.writer = ""
	}
	dl.readers[client] = true
	direct := dl.direct
	ld.opMu.Unlock()

	if writer != "" && writer != client {
		if writer == c.addr {
			// Invalidate only after a successful flush: a failed write-back
			// keeps the entries dirty for a later retry instead of dropping
			// them, and the error is recorded for FlushAll/Close.
			if ferr := c.data.Flush(ino); ferr != nil {
				c.recordWBErr(ferr)
			} else {
				c.data.Invalidate(ino)
			}
			c.markHandlesDirect(ino)
		} else {
			_, _ = c.net.CallFrom(c.addr, writer, FlushCacheReq{Ino: ino})
		}
	}
	return direct
}

// upgradeWrite grants the exclusive write lease to client if it is the only
// lease holder; otherwise it broadcasts cache flushes and switches the file
// to direct mode (paper §III-D).
func (c *Client) upgradeWrite(ld *ledDir, ino types.Ino, client rpc.Addr) (direct bool) {
	ld.opMu.Lock()
	dl := ld.dataLeases[ino]
	if dl == nil {
		dl = &dataLease{readers: make(map[rpc.Addr]bool)}
		ld.dataLeases[ino] = dl
		dl.readers[client] = true
	}
	if dl.direct {
		ld.opMu.Unlock()
		return true
	}
	exclusive := dl.writer == "" || dl.writer == client
	for r := range dl.readers {
		if r != client {
			exclusive = false
		}
	}
	if exclusive {
		dl.writer = client
		ld.opMu.Unlock()
		return false
	}
	// Conflict: flush everyone, go direct.
	dl.direct = true
	dl.writer = ""
	holders := make([]rpc.Addr, 0, len(dl.readers))
	for r := range dl.readers {
		holders = append(holders, r)
	}
	ld.opMu.Unlock()
	for _, h := range holders {
		if h == c.addr {
			if ferr := c.data.Flush(ino); ferr != nil {
				c.recordWBErr(ferr)
			} else {
				c.data.Invalidate(ino)
			}
			c.markHandlesDirect(ino)
			continue
		}
		_, _ = c.net.CallFrom(c.addr, h, FlushCacheReq{Ino: ino})
	}
	return true
}

// releaseData drops client's lease on ino; when the last holder leaves, the
// direct flag clears so future opens may cache again.
func (c *Client) releaseData(ld *ledDir, ino types.Ino, client rpc.Addr) {
	ld.opMu.Lock()
	defer ld.opMu.Unlock()
	dl := ld.dataLeases[ino]
	if dl == nil {
		return
	}
	delete(dl.readers, client)
	if dl.writer == client {
		dl.writer = ""
	}
	if len(dl.readers) == 0 {
		delete(ld.dataLeases, ino)
	}
}

func (c *Client) serveOpen(r OpenReq) OpenResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return OpenResp{Err: errStr}
	}
	node, err := c.localStat(ld, StatReq{Dir: r.Dir, Name: r.Name, Cred: r.Cred})
	if err != nil {
		return OpenResp{Err: errString(err)}
	}
	want := uint8(types.MayRead)
	if r.Write {
		want = types.MayWrite
	}
	if err := node.Access(r.Cred, want); err != nil {
		return OpenResp{Err: errString(err)}
	}
	direct := c.grantRead(ld, node.Ino, r.Client)
	return OpenResp{Inode: wire.EncodeInode(node), Direct: direct}
}

func (c *Client) serveWriteLease(r WriteLeaseReq) WriteLeaseResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return WriteLeaseResp{Err: errStr}
	}
	return WriteLeaseResp{Direct: c.upgradeWrite(ld, r.Ino, r.Client)}
}

func (c *Client) serveCloseFile(ctx context.Context, r CloseFileReq) CloseFileResp {
	ld, errStr := c.mustLead(r.Dir)
	if errStr != "" {
		return CloseFileResp{Err: errStr}
	}
	c.releaseData(ld, r.Ino, r.Client)
	if r.SetSize {
		if _, err := c.localSetAttr(ctx, ld, r.Dir, SetAttrReq{
			Dir: r.Dir, Name: c.nameOf(ld, r.Ino), Cred: types.Root, Implicit: true,
			Patch: AttrPatch{SetSize: true, Size: r.Size, SetTimes: true, Mtime: r.Mtime},
		}); err != nil {
			return CloseFileResp{Err: errString(err)}
		}
	}
	return CloseFileResp{}
}

// nameOf finds the dentry name of a child inode (linear scan; used on the
// rare remote-close-with-size path).
func (c *Client) nameOf(ld *ledDir, ino types.Ino) string {
	for _, de := range ld.table.List() {
		if de.Ino == ino {
			return de.Name
		}
	}
	return ""
}

func (c *Client) serveFlushCache(r FlushCacheReq) FlushCacheResp {
	if err := c.data.Flush(r.Ino); err != nil {
		return FlushCacheResp{Err: errString(err)}
	}
	c.data.Invalidate(r.Ino)
	c.markHandlesDirect(r.Ino)
	return FlushCacheResp{}
}

// markHandlesDirect flips this client's open handles on ino to direct I/O.
func (c *Client) markHandlesDirect(ino types.Ino) {
	c.mu.Lock()
	handles := c.handles[ino]
	c.mu.Unlock()
	for f := range handles {
		f.mu.Lock()
		f.direct = true
		f.hasWrite = false
		f.mu.Unlock()
	}
}
