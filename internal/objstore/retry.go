package objstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/qos"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// RetryPolicy tunes the RetryStore: exponential backoff with jitter and a
// per-operation attempt/deadline budget. All waits run through the
// environment clock, so virtual-time tests observe deterministic backoff.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per operation (first try included).
	MaxAttempts int
	// InitialBackoff is the wait after the first failure; each further
	// failure multiplies it by Multiplier up to MaxBackoff.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	Multiplier     float64
	// Jitter randomizes each wait by ±Jitter (0.25 = ±25%), decorrelating
	// clients that fail at the same instant.
	Jitter float64
	// AttemptBudget is the per-operation deadline across all attempts;
	// zero means attempts alone bound the operation.
	AttemptBudget time.Duration
	// Seed seeds the jitter RNG so virtual-time runs are reproducible.
	Seed int64
	// Budget, when non-nil, is a client-wide retry-rate budget shared by
	// every operation on this store: once retries-so-far reach its
	// burst + ratio × attempts ceiling, further retries are refused even if
	// the per-operation attempt budget has room. This is the store-layer
	// arm of the shared-budget rule — the Store API carries no context, so
	// the global rate budget stands in for the per-op token pool.
	Budget *qos.RetryBudget
}

// DefaultRetryPolicy mirrors common object-store client defaults (e.g. the
// AWS SDK): a handful of attempts, millisecond-scale initial backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    6,
		InitialBackoff: 2 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.25,
		AttemptBudget:  10 * time.Second,
		Seed:           1,
	}
}

// RetryStats counts retries per verb plus operations that exhausted their
// budget. A retry is a re-issued attempt, so a Put that fails twice and then
// succeeds adds 2 to Put.
type RetryStats struct {
	Put, Get, GetRange, Delete, List, Head atomic.Int64
	// Exhausted counts operations returned to the caller as failed after
	// the full attempt/deadline budget.
	Exhausted atomic.Int64
}

// Retries returns the total re-issued attempts across all verbs.
func (s *RetryStats) Retries() int64 {
	return s.Put.Load() + s.Get.Load() + s.GetRange.Load() +
		s.Delete.Load() + s.List.Load() + s.Head.Load()
}

// Retryable classifies a store error: semantic errors the file-system layer
// interprets (missing object, bad argument, permission) are permanent, while
// ErrIO-class failures (and unknown backend errors, which real REST gateways
// produce for timeouts) are transient. Typed EAGAIN pushback (gateway 429,
// open circuit breaker) is deliberately NOT retryable here: hammering an
// endpoint that just asked for backoff is the retry storm this layer must not
// amplify — the budgeted loops above honor the retry-after hint instead.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, types.ErrNotExist), errors.Is(err, types.ErrExist),
		errors.Is(err, types.ErrInval), errors.Is(err, types.ErrAccess),
		errors.Is(err, types.ErrPerm), errors.Is(err, types.ErrNoSpace),
		errors.Is(err, types.ErrAgain):
		return false
	}
	return true
}

// RetryStore wraps any Store and re-issues operations that fail with a
// retryable error, with exponential backoff + jitter under the policy's
// attempt and deadline budget. It is the robustness layer every ArkFS store
// round-trip (journal commit, cache write-back, metatable load, recovery
// scan) can be mounted on.
type RetryStore struct {
	inner  Store
	env    sim.Env
	policy RetryPolicy

	mu    sync.Mutex
	rng   *rand.Rand
	stats RetryStats
}

// NewRetryStore wraps inner with the given policy; zero policy fields fall
// back to DefaultRetryPolicy values.
func NewRetryStore(env sim.Env, inner Store, p RetryPolicy) *RetryStore {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = def.InitialBackoff
	}
	if p.MaxBackoff < p.InitialBackoff {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = def.Jitter
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	return &RetryStore{
		inner:  inner,
		env:    env,
		policy: p,
		rng:    rand.New(rand.NewSource(p.Seed)),
	}
}

// Inner exposes the wrapped backend (tests reach through to the FaultStore).
func (r *RetryStore) Inner() Store { return r.inner }

// RetryStats returns the live retry counters.
func (r *RetryStore) RetryStats() *RetryStats { return &r.stats }

// backoff returns the jittered wait before re-attempt number retry (0-based).
func (r *RetryStore) backoff(retry int) time.Duration {
	d := float64(r.policy.InitialBackoff)
	for i := 0; i < retry && d < float64(r.policy.MaxBackoff); i++ {
		d *= r.policy.Multiplier
	}
	if max := float64(r.policy.MaxBackoff); d > max {
		d = max
	}
	if j := r.policy.Jitter; j > 0 {
		r.mu.Lock()
		d *= 1 + j*(2*r.rng.Float64()-1)
		r.mu.Unlock()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// do runs op under the retry budget, counting re-issues in counter.
func (r *RetryStore) do(verb, key string, counter *atomic.Int64, op func() error) error {
	r.policy.Budget.OnAttempt()
	deadline := time.Duration(-1)
	if r.policy.AttemptBudget > 0 {
		deadline = r.env.Now() + r.policy.AttemptBudget
	}
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !Retryable(err) {
			return err
		}
		if attempt < r.policy.MaxAttempts && !r.env.Stopped() {
			wait := r.backoff(attempt - 1)
			// Sleeping past the deadline only delays the failure report, so
			// the budget check includes the upcoming backoff. The global
			// retry-rate budget is consulted last: when the fleet-wide retry
			// ratio is already at its ceiling, adding more retry load would
			// deepen the overload that caused the failures.
			if (deadline < 0 || r.env.Now()+wait < deadline) && r.policy.Budget.Allow() {
				counter.Add(1)
				r.env.Sleep(wait)
				continue
			}
		}
		r.stats.Exhausted.Add(1)
		return fmt.Errorf("objstore: %s %q gave up after %d attempt(s): %w",
			verb, key, attempt, err)
	}
}

// Put implements Store with retries.
func (r *RetryStore) Put(key string, data []byte) error {
	return r.do("put", key, &r.stats.Put, func() error { return r.inner.Put(key, data) })
}

// Get implements Store with retries.
func (r *RetryStore) Get(key string) ([]byte, error) {
	var v []byte
	err := r.do("get", key, &r.stats.Get, func() error {
		var e error
		v, e = r.inner.Get(key)
		return e
	})
	return v, err
}

// GetRange implements Store with retries.
func (r *RetryStore) GetRange(key string, off, n int64) ([]byte, error) {
	var v []byte
	err := r.do("getrange", key, &r.stats.GetRange, func() error {
		var e error
		v, e = r.inner.GetRange(key, off, n)
		return e
	})
	return v, err
}

// Delete implements Store with retries.
func (r *RetryStore) Delete(key string) error {
	return r.do("delete", key, &r.stats.Delete, func() error { return r.inner.Delete(key) })
}

// List implements Store with retries.
func (r *RetryStore) List(prefix string) ([]string, error) {
	var v []string
	err := r.do("list", prefix, &r.stats.List, func() error {
		var e error
		v, e = r.inner.List(prefix)
		return e
	})
	return v, err
}

// Head implements Store with retries.
func (r *RetryStore) Head(key string) (int64, error) {
	var n int64
	err := r.do("head", key, &r.stats.Head, func() error {
		var e error
		n, e = r.inner.Head(key)
		return e
	})
	return n, err
}
