package objstore

import (
	"bytes"
	"testing"
)

// A key torn by TearNextRead must stay torn for every verb: once the first
// read observes the short object, Get and GetRange agree on its length until
// the fault is cleared — a reader can never see the full value reappear.
func TestTearNextReadGetRangeConsistency(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	val := []byte("0123456789abcdef")
	if err := fs.Put("d:x", val); err != nil {
		t.Fatal(err)
	}
	fs.TearNextRead("d:", 1)

	got, err := fs.Get("d:x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(val)/2 {
		t.Fatalf("torn Get length = %d, want %d", len(got), len(val)/2)
	}
	// Every later read of the same key observes the same short object.
	again, err := fs.Get("d:x")
	if err != nil || !bytes.Equal(again, got) {
		t.Fatalf("second Get diverged: %q, %v", again, err)
	}
	// Ranged reads within the torn length serve the torn bytes.
	part, err := fs.GetRange("d:x", 2, 4)
	if err != nil || !bytes.Equal(part, val[2:6]) {
		t.Fatalf("in-range GetRange = %q, %v", part, err)
	}
	// A range crossing the torn boundary is clipped to it.
	part, err = fs.GetRange("d:x", 6, 8)
	if err != nil || !bytes.Equal(part, val[6:8]) {
		t.Fatalf("boundary GetRange = %q, %v", part, err)
	}
	// A range entirely past the torn length sees nothing.
	part, err = fs.GetRange("d:x", 10, 4)
	if err != nil || len(part) != 0 {
		t.Fatalf("past-tear GetRange = %q, %v", part, err)
	}
	// The stored object itself is untouched; a different key is unaffected.
	if err := fs.Put("m:y", []byte("meta")); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Get("m:y"); err != nil || string(got) != "meta" {
		t.Fatalf("unrelated key affected: %q, %v", got, err)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1 (a tear is one fault however often it is re-read)", fs.Injected())
	}
}

// GetRange on a torn key must agree with Get even when the range is the
// first read to trigger the tear.
func TestTearNextReadFirstObservedByGetRange(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Put("d:x", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	fs.TearNextRead("d:", 1)
	part, err := fs.GetRange("d:x", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(part) != "01234" {
		t.Fatalf("GetRange after tear = %q, want torn half", part)
	}
	full, err := fs.Get("d:x")
	if err != nil || string(full) != "01234" {
		t.Fatalf("Get disagrees with the tear GetRange observed: %q, %v", full, err)
	}
}

// CorruptNext models rot at rest: the flipped bytes persist, so every read —
// including retries — returns the same wrong value.
func TestCorruptNextPersistsAtRest(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	val := []byte("sealed-record-bytes")
	fs.CorruptNext("j:", 1)
	if err := fs.Put("j:rec", val); err != nil {
		t.Fatal(err)
	}
	first, err := fs.Get("j:rec")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first, val) {
		t.Fatal("CorruptNext left the value intact")
	}
	second, err := fs.Get("j:rec")
	if err != nil || !bytes.Equal(second, first) {
		t.Fatalf("rot at rest not stable across reads: %q vs %q, %v", second, first, err)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fs.Injected())
	}
}

// SetCorruptReads models a fault on the wire: a corrupted read leaves the
// stored object untouched, so a retry reads clean bytes once the mode is off.
func TestSetCorruptReadsIsTransient(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	val := []byte("clean-bytes")
	if err := fs.Put("k", val); err != nil {
		t.Fatal(err)
	}
	fs.SetCorruptReads("", 1.0, 7) // every read flips
	got, err := fs.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, val) {
		t.Fatal("corrupt read returned clean bytes at probability 1")
	}
	fs.SetCorruptReads("", 0, 0)
	got, err = fs.Get("k")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("retry after disabling did not read clean bytes: %q, %v", got, err)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fs.Injected())
	}
}

// CorruptNextRead is the deterministic one-shot variant: exactly n reads are
// served flipped, then the store is clean again — no RNG involved.
func TestCorruptNextReadOneShot(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	val := []byte("payload")
	if err := fs.Put("d:c", val); err != nil {
		t.Fatal(err)
	}
	fs.CorruptNextRead("d:", 1)
	got, err := fs.Get("d:c")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, val) {
		t.Fatal("armed read returned clean bytes")
	}
	got, err = fs.Get("d:c")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("second read should be clean: %q, %v", got, err)
	}
	// GetRange consumes the budget the same way.
	fs.CorruptNextRead("d:", 1)
	part, err := fs.GetRange("d:c", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(part, val[:4]) {
		t.Fatal("armed ranged read returned clean bytes")
	}
	if part, err = fs.GetRange("d:c", 0, 4); err != nil || !bytes.Equal(part, val[:4]) {
		t.Fatalf("ranged retry should be clean: %q, %v", part, err)
	}
	if fs.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", fs.Injected())
	}
}
