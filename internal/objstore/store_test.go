package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// storeContract exercises the Store interface contract against any
// implementation.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	// Missing objects.
	if _, err := s.Get("nope"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("Get missing: %v", err)
	}
	if _, err := s.Head("nope"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("Head missing: %v", err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Fatalf("Delete missing should be idempotent: %v", err)
	}
	// Round trip.
	want := []byte("hello object world")
	if err := s.Put("a/k1", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	if n, err := s.Head("a/k1"); err != nil || n != int64(len(want)) {
		t.Fatalf("Head = %d, %v", n, err)
	}
	// Overwrite.
	if err := s.Put("a/k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("a/k1"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	// List with prefix, sorted.
	for _, k := range []string{"a/k2", "b/k3", "a/k0"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"a/k0", "a/k1", "a/k2"}) {
		t.Fatalf("List = %v", keys)
	}
	// Delete then gone.
	if err := s.Delete("a/k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a/k1"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("deleted object still readable: %v", err)
	}
	// Empty value round trip.
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("empty"); err != nil || len(got) != 0 {
		t.Fatalf("empty object: %q %v", got, err)
	}
}

func TestMemStoreContract(t *testing.T) { storeContract(t, NewMemStore()) }

func TestMemStorePutCopiesData(t *testing.T) {
	s := NewMemStore()
	buf := []byte("abc")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'Z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put aliased the caller's buffer")
	}
	got[0] = 'Y'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get aliased the stored buffer")
	}
}

func TestHTTPStoreContract(t *testing.T) {
	srv := httptest.NewServer(NewGateway(NewMemStore()))
	defer srv.Close()
	storeContract(t, NewHTTPStore(srv.URL))
}

func TestHTTPStoreKeyEscaping(t *testing.T) {
	srv := httptest.NewServer(NewGateway(NewMemStore()))
	defer srv.Close()
	s := NewHTTPStore(srv.URL)
	key := "i:weird key/with?chars&=%"
	if err := s.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatalf("escaped key round trip: %q %v", got, err)
	}
	keys, err := s.List("i:")
	if err != nil || len(keys) != 1 || keys[0] != key {
		t.Fatalf("List = %v, %v", keys, err)
	}
}

func TestFaultStoreInjectsFailures(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailNext("j:", 2)
	if err := fs.Put("i:x", []byte("ok")); err != nil {
		t.Fatalf("non-matching prefix should pass: %v", err)
	}
	if err := fs.Put("j:x", []byte("v")); !errors.Is(err, types.ErrIO) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if err := fs.Delete("j:x"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if err := fs.Put("j:x", []byte("v")); err != nil {
		t.Fatalf("faults should be exhausted: %v", err)
	}
}

func TestFaultStoreTornWrites(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.TearNext("j:", 1)
	if err := fs.Put("j:t", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("j:t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("torn write stored %d bytes, want 5", len(got))
	}
}

func TestFaultStoreCountsEveryVerb(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetRange("k", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.List("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Head("k"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Ops(); got != 6 {
		t.Fatalf("Ops() = %d after one of each verb, want 6", got)
	}
}

func TestFaultStoreFailsReads(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Put("j:k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs.FailNextRead("j:", 2)
	if _, err := fs.Get("i:other"); err == nil || !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("non-matching read should pass through: %v", err)
	}
	if _, err := fs.Get("j:k"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("want injected read failure, got %v", err)
	}
	if _, err := fs.List("j:"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("want injected list failure, got %v", err)
	}
	if v, err := fs.Get("j:k"); err != nil || string(v) != "v" {
		t.Fatalf("read faults should be exhausted: %q %v", v, err)
	}
	// Read faults must not consume the write budget and vice versa.
	fs.FailNextRead("j:", 1)
	if err := fs.Put("j:k", []byte("v2")); err != nil {
		t.Fatalf("write should pass with only read faults armed: %v", err)
	}
}

func TestFaultStoreFlakyModeDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		fs := NewFaultStore(NewMemStore())
		fs.SetFlaky(0.5, seed)
		out := make([]bool, 100)
		for i := range out {
			out[i] = fs.Put("k", []byte("v")) != nil
		}
		return out
	}
	p1, p2 := pattern(42), pattern(42)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("flaky mode not deterministic for equal seeds")
	}
	fails := 0
	for _, f := range p1 {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(p1) {
		t.Fatalf("flaky(0.5) failed %d/%d ops, want a mix", fails, len(p1))
	}
	// Disabling restores clean passage.
	fs := NewFaultStore(NewMemStore())
	fs.SetFlaky(0.5, 42)
	fs.SetFlaky(0, 0)
	for i := 0; i < 50; i++ {
		if err := fs.Put("k", []byte("v")); err != nil {
			t.Fatalf("flaky disabled but op %d failed: %v", i, err)
		}
	}
}

func TestFaultStoreInjectedLatency(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		fs := NewFaultStore(NewMemStore())
		fs.InjectLatency(env, 10*time.Millisecond)
		start := env.Now()
		if err := fs.Put("k", []byte("v")); err != nil {
			t.Errorf("Put: %v", err)
		}
		if _, err := fs.Get("k"); err != nil {
			t.Errorf("Get: %v", err)
		}
		if got := env.Now() - start; got < 20*time.Millisecond {
			t.Errorf("2 ops advanced the clock by %v, want >= 20ms", got)
		}
	})
}

// Property: MemStore behaves like a map for an arbitrary op sequence.
func TestMemStoreMatchesMapQuick(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
		Val  []byte
	}
	f := func(ops []op) bool {
		s := NewMemStore()
		model := map[string][]byte{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%8)
			switch o.Kind % 3 {
			case 0:
				_ = s.Put(k, o.Val)
				model[k] = append([]byte(nil), o.Val...)
			case 1:
				got, err := s.Get(k)
				want, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				if ok && !bytes.Equal(got, want) {
					return false
				}
			case 2:
				_ = s.Delete(k)
				delete(model, k)
			}
		}
		keys, _ := s.List("")
		return len(keys) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
