package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"testing/quick"

	"arkfs/internal/types"
)

// storeContract exercises the Store interface contract against any
// implementation.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	// Missing objects.
	if _, err := s.Get("nope"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("Get missing: %v", err)
	}
	if _, err := s.Head("nope"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("Head missing: %v", err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Fatalf("Delete missing should be idempotent: %v", err)
	}
	// Round trip.
	want := []byte("hello object world")
	if err := s.Put("a/k1", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	if n, err := s.Head("a/k1"); err != nil || n != int64(len(want)) {
		t.Fatalf("Head = %d, %v", n, err)
	}
	// Overwrite.
	if err := s.Put("a/k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("a/k1"); string(got) != "v2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	// List with prefix, sorted.
	for _, k := range []string{"a/k2", "b/k3", "a/k0"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"a/k0", "a/k1", "a/k2"}) {
		t.Fatalf("List = %v", keys)
	}
	// Delete then gone.
	if err := s.Delete("a/k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a/k1"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("deleted object still readable: %v", err)
	}
	// Empty value round trip.
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("empty"); err != nil || len(got) != 0 {
		t.Fatalf("empty object: %q %v", got, err)
	}
}

func TestMemStoreContract(t *testing.T) { storeContract(t, NewMemStore()) }

func TestMemStorePutCopiesData(t *testing.T) {
	s := NewMemStore()
	buf := []byte("abc")
	if err := s.Put("k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'Z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put aliased the caller's buffer")
	}
	got[0] = 'Y'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get aliased the stored buffer")
	}
}

func TestHTTPStoreContract(t *testing.T) {
	srv := httptest.NewServer(NewGateway(NewMemStore()))
	defer srv.Close()
	storeContract(t, NewHTTPStore(srv.URL))
}

func TestHTTPStoreKeyEscaping(t *testing.T) {
	srv := httptest.NewServer(NewGateway(NewMemStore()))
	defer srv.Close()
	s := NewHTTPStore(srv.URL)
	key := "i:weird key/with?chars&=%"
	if err := s.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatalf("escaped key round trip: %q %v", got, err)
	}
	keys, err := s.List("i:")
	if err != nil || len(keys) != 1 || keys[0] != key {
		t.Fatalf("List = %v, %v", keys, err)
	}
}

func TestFaultStoreInjectsFailures(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailNext("j:", 2)
	if err := fs.Put("i:x", []byte("ok")); err != nil {
		t.Fatalf("non-matching prefix should pass: %v", err)
	}
	if err := fs.Put("j:x", []byte("v")); !errors.Is(err, types.ErrIO) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if err := fs.Delete("j:x"); !errors.Is(err, types.ErrIO) {
		t.Fatalf("want injected failure, got %v", err)
	}
	if err := fs.Put("j:x", []byte("v")); err != nil {
		t.Fatalf("faults should be exhausted: %v", err)
	}
}

func TestFaultStoreTornWrites(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.TearNext("j:", 1)
	if err := fs.Put("j:t", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("j:t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("torn write stored %d bytes, want 5", len(got))
	}
}

// Property: MemStore behaves like a map for an arbitrary op sequence.
func TestMemStoreMatchesMapQuick(t *testing.T) {
	type op struct {
		Kind byte
		Key  uint8
		Val  []byte
	}
	f := func(ops []op) bool {
		s := NewMemStore()
		model := map[string][]byte{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%8)
			switch o.Kind % 3 {
			case 0:
				_ = s.Put(k, o.Val)
				model[k] = append([]byte(nil), o.Val...)
			case 1:
				got, err := s.Get(k)
				want, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				if ok && !bytes.Equal(got, want) {
					return false
				}
			case 2:
				_ = s.Delete(k)
				delete(model, k)
			}
		}
		keys, _ := s.List("")
		return len(keys) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
