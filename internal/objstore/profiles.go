package objstore

import (
	"time"

	"arkfs/internal/sim"
)

// RADOSProfile models the paper's Ceph RADOS deployment: 16 storage nodes
// (64 OSDs) on a 50 Gbit network with EBS-class media. Latencies are
// round-number approximations of intra-cluster RTTs on c5n instances.
func RADOSProfile() Profile {
	return Profile{
		Name:           "rados",
		Nodes:          16,
		Replicas:       3,
		WorkersPerNode: 32,                                                                   // 4 OSDs per node, 8-deep queues each
		ClientNet:      sim.NetModel{Latency: 100 * time.Microsecond, Bandwidth: 6250 << 20}, // 50 Gbit
		ReplNet:        sim.NetModel{Latency: 40 * time.Microsecond, Bandwidth: 6250 << 20},
		OpOverhead:     60 * time.Microsecond,
		DiskBandwidth:  500 << 20, // EBS-class volume per node
		MaxObjectSize:  4 << 20,
		SizeOnlyPrefix: "d:", // metadata objects stay intact; file data by size
	}
}

// S3Profile models an S3-compatible public object store: the same media but
// a REST front end whose per-request latency dominates small operations.
func S3Profile() Profile {
	return Profile{
		Name:           "s3",
		Nodes:          16,
		Replicas:       3,
		WorkersPerNode: 16,
		ClientNet:      sim.NetModel{Latency: 4 * time.Millisecond, Bandwidth: 500 << 20}, // per HTTP stream
		ReplNet:        sim.NetModel{Latency: 100 * time.Microsecond, Bandwidth: 6250 << 20},
		OpOverhead:     1 * time.Millisecond,
		DiskBandwidth:  500 << 20,
		MaxObjectSize:  5 << 30,
		SizeOnlyPrefix: "d:",
	}
}

// TestProfile is a small, fast cluster for functional tests: real payloads,
// tiny latencies so RealEnv tests stay quick.
func TestProfile() Profile {
	return Profile{
		Name:           "test",
		Nodes:          4,
		Replicas:       2,
		WorkersPerNode: 2,
		ClientNet:      sim.NetModel{Latency: 0},
		ReplNet:        sim.NetModel{Latency: 0},
		OpOverhead:     0,
		DiskBandwidth:  0,
		MaxObjectSize:  8 << 20,
		SizeOnly:       false,
	}
}
