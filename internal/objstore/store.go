// Package objstore provides the distributed object storage substrate ArkFS
// runs on: a backend-agnostic Store interface (the REST verb set), a simple
// in-memory implementation for unit tests, a simulated multi-node replicated
// cluster with latency/bandwidth models for the benchmark figures, and a real
// HTTP REST gateway pair proving the PRT "register your REST API" story.
package objstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"arkfs/internal/types"
)

// Store is the object storage interface: what ArkFS's PRT module requires
// from any backend (Ceph RADOS, S3, ...). Keys are flat strings; values are
// immutable blobs replaced wholesale by Put.
type Store interface {
	// Put stores data under key, replacing any previous value.
	Put(key string, data []byte) error
	// Get returns the value stored under key, or ErrNotExist.
	Get(key string) ([]byte, error)
	// GetRange returns n bytes starting at off (clipped to the object size),
	// so clients can fetch large objects in parallel parts.
	GetRange(key string, off, n int64) ([]byte, error)
	// Delete removes key. Deleting a missing key is not an error, matching
	// object-store semantics (DELETE is idempotent).
	Delete(key string) error
	// List returns the keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Head returns the size of the value under key, or ErrNotExist.
	Head(key string) (int64, error)
}

// ErrNotExist reports a missing object, wrapping the shared type so callers
// can errors.Is against types.ErrNotExist.
var ErrNotExist = fmt.Errorf("objstore: object not found: %w", types.ErrNotExist)

// MemStore is a trivial threadsafe in-memory Store used by unit tests and
// the quickstart example. It has no latency model.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.data[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("get %q: %w", key, ErrNotExist)
	}
	return append([]byte(nil), v...), nil
}

// GetRange implements Store.
func (s *MemStore) GetRange(key string, off, n int64) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("getrange %q: %w", key, ErrNotExist)
	}
	return clipRange(v, off, n), nil
}

// clipRange copies the [off, off+n) window of v, clipped to its bounds.
func clipRange(v []byte, off, n int64) []byte {
	if off < 0 || off >= int64(len(v)) || n <= 0 {
		return nil
	}
	end := off + n
	if end > int64(len(v)) {
		end = int64(len(v))
	}
	return append([]byte(nil), v[off:end]...)
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.data, key)
	s.mu.Unlock()
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	var keys []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Head implements Store.
func (s *MemStore) Head(key string) (int64, error) {
	s.mu.RLock()
	v, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("head %q: %w", key, ErrNotExist)
	}
	return int64(len(v)), nil
}

// Len returns the number of stored objects.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}
