package objstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"arkfs/internal/obs"
	"arkfs/internal/types"
)

// Gateway exposes any Store over a minimal S3-flavored REST API:
//
//	PUT    /o/<key>            store object
//	GET    /o/<key>            fetch object
//	HEAD   /o/<key>            object size (Content-Length)
//	DELETE /o/<key>            delete object
//	GET    /list?prefix=<p>    JSON array of keys
//
// It exists to demonstrate the PRT module's claim that ArkFS runs on any
// object store reachable through REST verbs: cmd/objstored serves this and
// HTTPStore consumes it.
type Gateway struct {
	store Store
	mux   *http.ServeMux

	// Per-verb tallies; nil (no registry attached) counts nothing.
	cPut, cGet, cHead, cDelete, cList, cErrors *obs.Counter
}

// NewGateway wraps store in a REST handler.
func NewGateway(store Store) *Gateway {
	g := &Gateway{store: store, mux: http.NewServeMux()}
	g.mux.HandleFunc("/o/", g.object)
	g.mux.HandleFunc("/list", g.list)
	return g
}

// SetObs attaches a metrics registry: the gateway counts each REST verb
// (gateway.put/get/head/delete/list) and failed requests (gateway.errors).
func (g *Gateway) SetObs(reg *obs.Registry) {
	g.cPut = reg.Counter("gateway.put")
	g.cGet = reg.Counter("gateway.get")
	g.cHead = reg.Counter("gateway.head")
	g.cDelete = reg.Counter("gateway.delete")
	g.cList = reg.Counter("gateway.list")
	g.cErrors = reg.Counter("gateway.errors")
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

func (g *Gateway) object(w http.ResponseWriter, r *http.Request) {
	// Use the escaped form so %2F inside a key is not conflated with a path
	// separator, then unescape exactly once.
	key, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/o/"))
	if err != nil || key == "" {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		g.cPut.Inc()
		data, err := io.ReadAll(r.Body)
		if err != nil {
			g.cErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := g.store.Put(key, data); err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		g.cGet.Inc()
		data, err := g.store.Get(key)
		if err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case http.MethodHead:
		g.cHead.Inc()
		size, err := g.store.Head(key)
		if err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		g.cDelete.Inc()
		if err := g.store.Delete(key); err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) list(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.cList.Inc()
	keys, err := g.store.List(r.URL.Query().Get("prefix"))
	if err != nil {
		g.cErrors.Inc()
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(keys)
}

func httpError(w http.ResponseWriter, err error) {
	if errors.Is(err, types.ErrNotExist) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// HTTPStore is a Store backed by a remote Gateway; it is the "S3-compatible
// backend registered through its REST API" path of the PRT module.
type HTTPStore struct {
	base   string // e.g. "http://127.0.0.1:9000"
	client *http.Client
}

// NewHTTPStore targets the gateway at base URL.
func NewHTTPStore(base string) *HTTPStore {
	return &HTTPStore{base: strings.TrimRight(base, "/"), client: &http.Client{}}
}

func (s *HTTPStore) objURL(key string) string {
	return s.base + "/o/" + url.PathEscape(key)
}

// Put implements Store.
func (s *HTTPStore) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, s.objURL(key), strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("httpstore put %q: %w", key, err)
	}
	defer resp.Body.Close()
	return statusErr("put", key, resp)
}

// Get implements Store.
func (s *HTTPStore) Get(key string) ([]byte, error) {
	resp, err := s.client.Get(s.objURL(key))
	if err != nil {
		return nil, fmt.Errorf("httpstore get %q: %w", key, err)
	}
	defer resp.Body.Close()
	if err := statusErr("get", key, resp); err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// GetRange implements Store. The gateway has no ranged endpoint; the window
// is clipped client-side, which preserves semantics at the cost of wire
// bytes (acceptable for the live-demo path this store serves).
func (s *HTTPStore) GetRange(key string, off, n int64) ([]byte, error) {
	data, err := s.Get(key)
	if err != nil {
		return nil, err
	}
	return clipRange(data, off, n), nil
}

// Delete implements Store.
func (s *HTTPStore) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, s.objURL(key), nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("httpstore delete %q: %w", key, err)
	}
	defer resp.Body.Close()
	return statusErr("delete", key, resp)
}

// Head implements Store.
func (s *HTTPStore) Head(key string) (int64, error) {
	resp, err := s.client.Head(s.objURL(key))
	if err != nil {
		return 0, fmt.Errorf("httpstore head %q: %w", key, err)
	}
	defer resp.Body.Close()
	if err := statusErr("head", key, resp); err != nil {
		return 0, err
	}
	return strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
}

// List implements Store.
func (s *HTTPStore) List(prefix string) ([]string, error) {
	resp, err := s.client.Get(s.base + "/list?prefix=" + url.QueryEscape(prefix))
	if err != nil {
		return nil, fmt.Errorf("httpstore list %q: %w", prefix, err)
	}
	defer resp.Body.Close()
	if err := statusErr("list", prefix, resp); err != nil {
		return nil, err
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("httpstore list decode: %w", err)
	}
	return keys, nil
}

func statusErr(op, key string, resp *http.Response) error {
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("httpstore %s %q: %w", op, key, ErrNotExist)
	case resp.StatusCode >= 400:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("httpstore %s %q: status %d: %s: %w",
			op, key, resp.StatusCode, strings.TrimSpace(string(body)), types.ErrIO)
	default:
		return nil
	}
}
