package objstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"arkfs/internal/obs"
	"arkfs/internal/qos"
	"arkfs/internal/types"
)

// TenantHeader names the HTTP header carrying the caller's tenant on gateway
// requests; the gateway's admission controller charges the request to it.
const TenantHeader = "X-Ark-Tenant"

// retryAfterNSHeader carries the exact retry-after hint in nanoseconds on 429
// responses (the standard Retry-After header only has second granularity).
const retryAfterNSHeader = "X-Ark-Retry-After-Ns"

// Gateway exposes any Store over a minimal S3-flavored REST API:
//
//	PUT    /o/<key>            store object
//	GET    /o/<key>            fetch object
//	HEAD   /o/<key>            object size (Content-Length)
//	DELETE /o/<key>            delete object
//	GET    /list?prefix=<p>    JSON array of keys
//
// It exists to demonstrate the PRT module's claim that ArkFS runs on any
// object store reachable through REST verbs: cmd/objstored serves this and
// HTTPStore consumes it.
type Gateway struct {
	store Store
	mux   *http.ServeMux

	// Admission control; nil admits everything. now is injectable for tests
	// and defaults to time.Now.
	qos *qos.Limiter
	now func() time.Time

	// Per-verb tallies; nil (no registry attached) counts nothing.
	cPut, cGet, cHead, cDelete, cList, cErrors, cShed *obs.Counter
}

// NewGateway wraps store in a REST handler.
func NewGateway(store Store) *Gateway {
	g := &Gateway{store: store, mux: http.NewServeMux(), now: time.Now}
	g.mux.HandleFunc("/o/", g.object)
	g.mux.HandleFunc("/list", g.list)
	return g
}

// SetQoS attaches per-tenant token-bucket admission control: every request is
// charged to its X-Ark-Tenant header (requests without one pool under
// "anon"), and refusals answer 429 with Retry-After. Nil detaches.
func (g *Gateway) SetQoS(l *qos.Limiter) { g.qos = l }

// SetClock overrides the admission clock (tests).
func (g *Gateway) SetClock(now func() time.Time) { g.now = now }

// admit charges one request to the caller's tenant bucket; on refusal it
// writes the 429 response and returns false.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request) bool {
	if g.qos == nil {
		return true
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "anon"
	}
	ok, after := g.qos.Admit(tenant, g.now())
	if ok {
		return true
	}
	g.cShed.Inc()
	w.Header().Set("Retry-After",
		strconv.FormatInt(int64(math.Ceil(after.Seconds())), 10))
	w.Header().Set(retryAfterNSHeader, strconv.FormatInt(after.Nanoseconds(), 10))
	http.Error(w, "tenant rate limit exceeded", http.StatusTooManyRequests)
	return false
}

// SetObs attaches a metrics registry: the gateway counts each REST verb
// (gateway.put/get/head/delete/list) and failed requests (gateway.errors).
func (g *Gateway) SetObs(reg *obs.Registry) {
	g.cPut = reg.Counter("gateway.put")
	g.cGet = reg.Counter("gateway.get")
	g.cHead = reg.Counter("gateway.head")
	g.cDelete = reg.Counter("gateway.delete")
	g.cList = reg.Counter("gateway.list")
	g.cErrors = reg.Counter("gateway.errors")
	g.cShed = reg.Counter("qos.shed.gateway")
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

func (g *Gateway) object(w http.ResponseWriter, r *http.Request) {
	// Use the escaped form so %2F inside a key is not conflated with a path
	// separator, then unescape exactly once.
	key, err := url.PathUnescape(strings.TrimPrefix(r.URL.EscapedPath(), "/o/"))
	if err != nil || key == "" {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	if !g.admit(w, r) {
		return
	}
	switch r.Method {
	case http.MethodPut:
		g.cPut.Inc()
		data, err := io.ReadAll(r.Body)
		if err != nil {
			g.cErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := g.store.Put(key, data); err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		g.cGet.Inc()
		data, err := g.store.Get(key)
		if err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case http.MethodHead:
		g.cHead.Inc()
		size, err := g.store.Head(key)
		if err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		g.cDelete.Inc()
		if err := g.store.Delete(key); err != nil {
			g.cErrors.Inc()
			httpError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) list(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !g.admit(w, r) {
		return
	}
	g.cList.Inc()
	keys, err := g.store.List(r.URL.Query().Get("prefix"))
	if err != nil {
		g.cErrors.Inc()
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(keys)
}

func httpError(w http.ResponseWriter, err error) {
	if errors.Is(err, types.ErrNotExist) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// HTTPStore is a Store backed by a remote Gateway; it is the "S3-compatible
// backend registered through its REST API" path of the PRT module.
type HTTPStore struct {
	base   string // e.g. "http://127.0.0.1:9000"
	tenant string // stamped on every request's X-Ark-Tenant header when set
	client *http.Client
}

// NewHTTPStore targets the gateway at base URL.
func NewHTTPStore(base string) *HTTPStore {
	return &HTTPStore{base: strings.TrimRight(base, "/"), client: &http.Client{}}
}

// SetTenant stamps tenant on every subsequent request, so the gateway's
// per-tenant admission controller can attribute and rate-limit this client.
// The Store API is context-free, so the attribution is per-store, not per-op.
func (s *HTTPStore) SetTenant(tenant string) { s.tenant = tenant }

func (s *HTTPStore) objURL(key string) string {
	return s.base + "/o/" + url.PathEscape(key)
}

// roundTrip issues one request with the store's tenant header attached.
func (s *HTTPStore) roundTrip(method, rawURL string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, rawURL, body)
	if err != nil {
		return nil, err
	}
	if s.tenant != "" {
		req.Header.Set(TenantHeader, s.tenant)
	}
	return s.client.Do(req)
}

// Put implements Store.
func (s *HTTPStore) Put(key string, data []byte) error {
	resp, err := s.roundTrip(http.MethodPut, s.objURL(key), strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("httpstore put %q: %w", key, err)
	}
	defer resp.Body.Close()
	return statusErr("put", key, resp)
}

// Get implements Store.
func (s *HTTPStore) Get(key string) ([]byte, error) {
	resp, err := s.roundTrip(http.MethodGet, s.objURL(key), nil)
	if err != nil {
		return nil, fmt.Errorf("httpstore get %q: %w", key, err)
	}
	defer resp.Body.Close()
	if err := statusErr("get", key, resp); err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// GetRange implements Store. The gateway has no ranged endpoint; the window
// is clipped client-side, which preserves semantics at the cost of wire
// bytes (acceptable for the live-demo path this store serves).
func (s *HTTPStore) GetRange(key string, off, n int64) ([]byte, error) {
	data, err := s.Get(key)
	if err != nil {
		return nil, err
	}
	return clipRange(data, off, n), nil
}

// Delete implements Store.
func (s *HTTPStore) Delete(key string) error {
	resp, err := s.roundTrip(http.MethodDelete, s.objURL(key), nil)
	if err != nil {
		return fmt.Errorf("httpstore delete %q: %w", key, err)
	}
	defer resp.Body.Close()
	return statusErr("delete", key, resp)
}

// Head implements Store.
func (s *HTTPStore) Head(key string) (int64, error) {
	resp, err := s.roundTrip(http.MethodHead, s.objURL(key), nil)
	if err != nil {
		return 0, fmt.Errorf("httpstore head %q: %w", key, err)
	}
	defer resp.Body.Close()
	if err := statusErr("head", key, resp); err != nil {
		return 0, err
	}
	return strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
}

// List implements Store.
func (s *HTTPStore) List(prefix string) ([]string, error) {
	resp, err := s.roundTrip(http.MethodGet, s.base+"/list?prefix="+url.QueryEscape(prefix), nil)
	if err != nil {
		return nil, fmt.Errorf("httpstore list %q: %w", prefix, err)
	}
	defer resp.Body.Close()
	if err := statusErr("list", prefix, resp); err != nil {
		return nil, err
	}
	var keys []string
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, fmt.Errorf("httpstore list decode: %w", err)
	}
	return keys, nil
}

func statusErr(op, key string, resp *http.Response) error {
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return fmt.Errorf("httpstore %s %q: %w", op, key, ErrNotExist)
	case resp.StatusCode == http.StatusTooManyRequests:
		// Typed pushback crosses the REST boundary: rebuild the retry-after
		// hint from the response headers (exact-nanosecond header first,
		// standard Retry-After seconds as fallback).
		after := time.Second
		if ns, err := strconv.ParseInt(resp.Header.Get(retryAfterNSHeader), 10, 64); err == nil && ns > 0 {
			after = time.Duration(ns)
		} else if sec, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil && sec > 0 {
			after = time.Duration(sec) * time.Second
		}
		return fmt.Errorf("httpstore %s %q: %w", op, key,
			types.AgainAfter(after, "gateway"))
	case resp.StatusCode >= 400:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("httpstore %s %q: status %d: %s: %w",
			op, key, resp.StatusCode, strings.TrimSpace(string(body)), types.ErrIO)
	default:
		return nil
	}
}
