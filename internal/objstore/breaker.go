package objstore

import (
	"fmt"
	"sync/atomic"
	"time"

	"arkfs/internal/qos"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// BreakerStats counts circuit-breaker activity: trips (transitions to open),
// fast-fails (requests refused while open or during a probe), and probes
// (half-open trial requests).
type BreakerStats struct {
	Tripped   atomic.Int64
	FastFails atomic.Int64
	Probes    atomic.Int64
}

// BreakerStore wraps a Store with a qos circuit breaker: transient backend
// failures trip it open, open fast-fails every round-trip with a typed
// EAGAIN carrying the time-to-probe, and a seeded half-open probe schedule
// decides recovery. It sits UNDER the RetryStore in the stack (base →
// breaker → retry), so a closed→open transition mid-retry-loop turns the
// remaining attempts into immediate typed pushback — which Retryable()
// classifies as permanent, ending the loop — instead of further hammering a
// dying backend.
type BreakerStore struct {
	inner Store
	env   sim.Env
	br    *qos.Breaker
	stats BreakerStats
}

// NewBreakerStore wraps inner with a breaker under cfg (zero fields take the
// qos defaults).
func NewBreakerStore(env sim.Env, inner Store, cfg qos.BreakerConfig) *BreakerStore {
	return &BreakerStore{inner: inner, env: env, br: qos.NewBreaker(cfg)}
}

// Inner exposes the wrapped backend.
func (b *BreakerStore) Inner() Store { return b.inner }

// BreakerStats returns the live counters.
func (b *BreakerStore) BreakerStats() *BreakerStats { return &b.stats }

// State returns the breaker's current state.
func (b *BreakerStore) State() qos.BreakerState { return b.br.State() }

// now maps the environment clock onto the wall-clock origin the breaker
// expects; only differences matter, so the origin is arbitrary.
func (b *BreakerStore) now() time.Time { return time.Unix(0, int64(b.env.Now())) }

// do gates one round-trip through the breaker and feeds the outcome back.
// Semantic errors (ErrNotExist and friends) are successes for breaker
// purposes: the backend answered. Only transient, Retryable-class failures
// count toward tripping.
func (b *BreakerStore) do(verb, key string, op func() error) error {
	wasHalfOpen := b.br.State() == qos.BreakerOpen || b.br.State() == qos.BreakerHalfOpen
	ok, after := b.br.Allow(b.now())
	if !ok {
		b.stats.FastFails.Add(1)
		return fmt.Errorf("objstore: %s %q: circuit open: %w", verb, key,
			types.AgainAfter(after, "breaker"))
	}
	if wasHalfOpen {
		b.stats.Probes.Add(1)
	}
	err := op()
	if err != nil && Retryable(err) {
		before := b.br.State()
		b.br.OnFailure(b.now())
		if before != qos.BreakerOpen && b.br.State() == qos.BreakerOpen {
			b.stats.Tripped.Add(1)
		}
		return err
	}
	b.br.OnSuccess()
	return err
}

// Put implements Store.
func (b *BreakerStore) Put(key string, data []byte) error {
	return b.do("put", key, func() error { return b.inner.Put(key, data) })
}

// Get implements Store.
func (b *BreakerStore) Get(key string) ([]byte, error) {
	var v []byte
	err := b.do("get", key, func() error {
		var e error
		v, e = b.inner.Get(key)
		return e
	})
	return v, err
}

// GetRange implements Store.
func (b *BreakerStore) GetRange(key string, off, n int64) ([]byte, error) {
	var v []byte
	err := b.do("getrange", key, func() error {
		var e error
		v, e = b.inner.GetRange(key, off, n)
		return e
	})
	return v, err
}

// Delete implements Store.
func (b *BreakerStore) Delete(key string) error {
	return b.do("delete", key, func() error { return b.inner.Delete(key) })
}

// List implements Store.
func (b *BreakerStore) List(prefix string) ([]string, error) {
	var v []string
	err := b.do("list", prefix, func() error {
		var e error
		v, e = b.inner.List(prefix)
		return e
	})
	return v, err
}

// Head implements Store.
func (b *BreakerStore) Head(key string) (int64, error) {
	var n int64
	err := b.do("head", key, func() error {
		var e error
		n, e = b.inner.Head(key)
		return e
	})
	return n, err
}
