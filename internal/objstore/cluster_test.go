package objstore

import (
	"errors"
	"testing"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

func TestClusterContract(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	c := NewCluster(env, TestProfile())
	defer c.Close()
	storeContract(t, c)
}

func TestClusterReplication(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	prof := TestProfile()
	prof.Nodes, prof.Replicas = 5, 3
	c := NewCluster(env, prof)
	defer c.Close()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// The value must be present on exactly Replicas nodes.
	copies := 0
	for _, n := range c.nodes {
		n.mu.Lock()
		if _, ok := n.data["k"]; ok {
			copies++
		}
		n.mu.Unlock()
	}
	if copies != 3 {
		t.Fatalf("object replicated to %d nodes, want 3", copies)
	}
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		n.mu.Lock()
		_, ok := n.data["k"]
		n.mu.Unlock()
		if ok {
			t.Fatal("delete left a replica behind")
		}
	}
}

func TestClusterMaxObjectSize(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	prof := TestProfile()
	prof.MaxObjectSize = 8
	c := NewCluster(env, prof)
	defer c.Close()
	if err := c.Put("big", make([]byte, 9)); !errors.Is(err, types.ErrInval) {
		t.Fatalf("oversize put: %v", err)
	}
	if err := c.Put("ok", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSizeOnlyMode(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	prof := TestProfile()
	prof.SizeOnly = true
	c := NewCluster(env, prof)
	defer c.Close()
	if err := c.Put("k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("size-only Get returned %d bytes, want 5", len(got))
	}
	if n, err := c.Head("k"); err != nil || n != 5 {
		t.Fatalf("Head = %d, %v", n, err)
	}
}

func TestClusterVirtualTimeCharges(t *testing.T) {
	// In a VirtEnv, a Get of a 1 MiB object over a 1 MiB/s link takes just
	// over a virtual second; the wall clock barely moves.
	env := sim.NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		prof := TestProfile()
		prof.ClientNet = sim.NetModel{Latency: time.Millisecond, Bandwidth: 1 << 20}
		prof.SizeOnly = true
		prof.MaxObjectSize = 2 << 20
		c := NewCluster(env, prof)
		defer c.Close()
		if err := c.Put("k", make([]byte, 1<<20)); err != nil {
			t.Error(err)
			return
		}
		start := env.Now()
		if _, err := c.Get("k"); err != nil {
			t.Error(err)
			return
		}
		elapsed = env.Now() - start
	})
	if elapsed < time.Second || elapsed > 1100*time.Millisecond {
		t.Fatalf("virtual Get took %v, want ~1s", elapsed)
	}
}

func TestClusterParallelClientsShareVirtualTime(t *testing.T) {
	// 8 clients each fetch one object from different nodes concurrently;
	// total virtual time should be far below 8x a single fetch.
	env := sim.NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		prof := TestProfile()
		prof.Nodes, prof.Replicas, prof.WorkersPerNode = 8, 1, 4
		prof.OpOverhead = 10 * time.Millisecond
		c := NewCluster(env, prof)
		defer c.Close()
		for i := 0; i < 32; i++ {
			if err := c.Put(keyN(i), []byte("x")); err != nil {
				t.Error(err)
				return
			}
		}
		start := env.Now()
		g := sim.NewGroup(env)
		for i := 0; i < 32; i++ {
			i := i
			g.Go(func() {
				if _, err := c.Get(keyN(i)); err != nil {
					t.Error(err)
				}
			})
		}
		g.Wait()
		elapsed = env.Now() - start
	})
	serial := 32 * 10 * time.Millisecond
	if elapsed >= serial {
		t.Fatalf("parallel fetches took %v, not faster than serial %v", elapsed, serial)
	}
}

func keyN(i int) string {
	return "obj-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestClusterStats(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	c := NewCluster(env, TestProfile())
	defer c.Close()
	_ = c.Put("k", make([]byte, 100))
	_, _ = c.Get("k")
	_, _ = c.Get("k")
	if got := c.Stat().Puts.Load(); got != 1 {
		t.Errorf("puts = %d", got)
	}
	if got := c.Stat().Gets.Load(); got != 2 {
		t.Errorf("gets = %d", got)
	}
	if got := c.Stat().BytesIn.Load(); got != 100 {
		t.Errorf("bytesIn = %d", got)
	}
	if got := c.Stat().BytesOut.Load(); got != 200 {
		t.Errorf("bytesOut = %d", got)
	}
}

func TestClusterPlacementStableAndSpread(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	prof := TestProfile()
	prof.Nodes, prof.Replicas = 8, 3
	c := NewCluster(env, prof)
	defer c.Close()
	counts := make(map[int]int)
	for i := 0; i < 512; i++ {
		p := c.placement(keyN(i) + "-spread")
		if len(p) != 3 {
			t.Fatalf("placement size %d", len(p))
		}
		if p[0] == p[1] || p[1] == p[2] || p[0] == p[2] {
			t.Fatal("duplicate nodes in replica set")
		}
		counts[p[0].id]++
		// Stability: same key, same placement.
		q := c.placement(keyN(i) + "-spread")
		for j := range p {
			if p[j] != q[j] {
				t.Fatal("placement not deterministic")
			}
		}
	}
	for id, n := range counts {
		if n == 0 {
			t.Errorf("node %d never primary", id)
		}
	}
}

func TestSizeOnlyPrefixSelective(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	prof := TestProfile()
	prof.SizeOnlyPrefix = "d:"
	c := NewCluster(env, prof)
	defer c.Close()
	// Metadata-prefixed objects keep their payloads.
	if err := c.Put("i:meta", []byte("inode-bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("i:meta")
	if err != nil || string(got) != "inode-bytes" {
		t.Fatalf("metadata payload lost: %q, %v", got, err)
	}
	// Data-prefixed objects are size-only.
	if err := c.Put("d:chunk", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err = c.Get("d:chunk")
	if err != nil || len(got) != 7 {
		t.Fatalf("data size lost: %d, %v", len(got), err)
	}
	// The synthetic payload is zeros sealed with a valid CRC32C trailer, so
	// integrity-verifying readers accept it instead of flagging corruption.
	body, err := wire.Unseal(got)
	if err != nil {
		t.Fatalf("discarded payload fails verification: %v", err)
	}
	for _, b := range body {
		if b != 0 {
			t.Fatal("discarded payload returned non-zero body bytes")
		}
	}
	// Ranged reads follow the same rule.
	part, err := c.GetRange("d:chunk", 2, 3)
	if err != nil || len(part) != 3 {
		t.Fatalf("ranged size-only read: %d, %v", len(part), err)
	}
	// A ranged read covering the tail sees the same trailer bytes Get serves.
	tail, err := c.GetRange("d:chunk", 3, 4)
	if err != nil || string(tail) != string(got[3:]) {
		t.Fatalf("ranged tail diverges from Get: %x vs %x (%v)", tail, got[3:], err)
	}
}

func TestClusterGetRangeClipping(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	c := NewCluster(env, TestProfile())
	defer c.Close()
	if err := c.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"},
		{5, 100, "56789"},
		{10, 4, ""},
		{8, 2, "89"},
	}
	for _, tc := range cases {
		got, err := c.GetRange("k", tc.off, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Errorf("GetRange(%d,%d) = %q, want %q", tc.off, tc.n, got, tc.want)
		}
	}
}
