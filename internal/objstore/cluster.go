package objstore

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
	"arkfs/internal/wire"
)

// Profile describes a simulated object-store deployment: node count,
// replication, per-link network models, and per-node service costs. The
// benchmark harness uses one profile for Ceph-RADOS-like storage and one for
// S3-like storage (see profiles.go).
type Profile struct {
	Name           string
	Nodes          int
	Replicas       int           // total copies including the primary
	WorkersPerNode int           // primary-request concurrency per node
	ClientNet      sim.NetModel  // client <-> storage node
	ReplNet        sim.NetModel  // node <-> node replication traffic
	OpOverhead     time.Duration // per-request software overhead at a node
	DiskBandwidth  int64         // bytes/s of the node's media
	MaxObjectSize  int64         // largest single object the backend accepts
	// SizeOnly discards every payload, recording sizes only (benchmarks
	// whose reads never parse data). SizeOnlyPrefix discards only keys with
	// the given prefix — e.g. "d:" keeps metadata objects (inodes, dentries,
	// journals) intact while bulky file data is represented by size alone.
	// Reads of a discarded object synthesize a zero payload with a valid
	// CRC32C trailer (wire.Seal framing), so integrity-verifying readers
	// accept it instead of flagging phantom corruption.
	SizeOnly       bool
	SizeOnlyPrefix string
}

// discards reports whether the payload of key is dropped at the nodes.
func (p Profile) discards(key string) bool {
	return p.SizeOnly || (p.SizeOnlyPrefix != "" && hasPrefix(key, p.SizeOnlyPrefix))
}

// Stats counts cluster traffic; all fields are updated atomically.
type Stats struct {
	Puts, Gets, Deletes, Lists, Heads atomic.Int64
	BytesIn, BytesOut                 atomic.Int64
}

// Cluster is a simulated distributed object store: a set of storage nodes
// with worker loops, rendezvous-hash placement, and synchronous primary-copy
// replication. It implements Store; every call charges simulated network and
// service time against the environment's clock.
type Cluster struct {
	env    sim.Env
	prof   Profile
	nodes  []*node
	stats  Stats
	closed atomic.Bool
}

type opKind byte

const (
	opPut opKind = iota
	opGet
	opGetRange
	opDelete
	opList
	opHead
	opReplPut
	opReplDelete
)

type nodeReq struct {
	op       opKind
	key      string
	data     []byte
	size     int64
	off, len int64 // opGetRange window
	reply    *sim.Chan[nodeResp]
}

type nodeResp struct {
	data []byte
	size int64
	keys []string
	err  error
}

type objVal struct {
	size int64
	data []byte // nil when the cluster is SizeOnly
}

type node struct {
	id        int
	inbox     *sim.Chan[*nodeReq] // primary requests
	replInbox *sim.Chan[*nodeReq] // replication requests (separate workers: no cyclic waits)
	mu        sync.Mutex
	data      map[string]objVal
}

// NewCluster builds and starts a cluster in env. Callers should Close it (or
// shut the environment down) when finished.
func NewCluster(env sim.Env, prof Profile) *Cluster {
	if prof.Nodes <= 0 {
		prof.Nodes = 1
	}
	if prof.Replicas <= 0 {
		prof.Replicas = 1
	}
	if prof.Replicas > prof.Nodes {
		prof.Replicas = prof.Nodes
	}
	if prof.WorkersPerNode <= 0 {
		prof.WorkersPerNode = 1
	}
	if prof.MaxObjectSize <= 0 {
		prof.MaxObjectSize = 64 << 20
	}
	c := &Cluster{env: env, prof: prof}
	for i := 0; i < prof.Nodes; i++ {
		n := &node{
			id:        i,
			inbox:     sim.NewChan[*nodeReq](env),
			replInbox: sim.NewChan[*nodeReq](env),
			data:      make(map[string]objVal),
		}
		c.nodes = append(c.nodes, n)
		for w := 0; w < prof.WorkersPerNode; w++ {
			env.Go(func() { c.serve(n, n.inbox) })
		}
		for w := 0; w < prof.WorkersPerNode; w++ {
			env.Go(func() { c.serve(n, n.replInbox) })
		}
	}
	return c
}

// Close stops all node workers.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	for _, n := range c.nodes {
		n.inbox.Close()
		n.replInbox.Close()
	}
}

// Stats returns the cluster's traffic counters.
func (c *Cluster) Stat() *Stats { return &c.stats }

// Profile returns the cluster's configuration.
func (c *Cluster) Profile() Profile { return c.prof }

// placement returns the replica set for key (primary first) via rendezvous
// hashing, which spreads keys evenly and keeps placement stable as the
// cluster definition changes.
func (c *Cluster) placement(key string) []*node {
	type scored struct {
		score uint64
		n     *node
	}
	s := make([]scored, len(c.nodes))
	for i, n := range c.nodes {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", key, n.id)
		s[i] = scored{h.Sum64(), n}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].score > s[j].score })
	out := make([]*node, c.prof.Replicas)
	for i := range out {
		out[i] = s[i].n
	}
	return out
}

// syntheticFrame stands in for a discarded payload: zeros of the stored size
// whose trailing 4 bytes are a valid CRC32C trailer over the rest (wire.Seal
// framing). Every persisted ArkFS record is sealed, so a size-only read must
// still verify — the bytes are fake, but the framing is honest. Objects too
// small to carry a trailer are returned as plain zeros.
func syntheticFrame(size int64) []byte {
	if size < 4 {
		return make([]byte, size)
	}
	return wire.Seal(make([]byte, size-4, size))
}

// serviceTime is the node-side cost of touching size bytes of media.
func (c *Cluster) serviceTime(size int64) time.Duration {
	d := c.prof.OpOverhead
	if c.prof.DiskBandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / float64(c.prof.DiskBandwidth) * float64(time.Second))
	}
	return d
}

// serve is a node worker loop.
func (c *Cluster) serve(n *node, inbox *sim.Chan[*nodeReq]) {
	for {
		req, ok := inbox.Recv()
		if !ok {
			return
		}
		var resp nodeResp
		switch req.op {
		case opPut, opReplPut:
			c.env.Sleep(c.serviceTime(req.size))
			val := objVal{size: req.size}
			if !c.prof.discards(req.key) {
				val.data = req.data
			}
			n.mu.Lock()
			n.data[req.key] = val
			n.mu.Unlock()
			if req.op == opPut {
				resp.err = c.replicate(opReplPut, req.key, req.data, req.size)
			}
		case opGet:
			n.mu.Lock()
			val, exists := n.data[req.key]
			n.mu.Unlock()
			if !exists {
				resp.err = fmt.Errorf("get %q: %w", req.key, ErrNotExist)
				break
			}
			c.env.Sleep(c.serviceTime(val.size))
			resp.size = val.size
			if c.prof.discards(req.key) {
				resp.data = syntheticFrame(val.size)
			} else {
				resp.data = val.data
			}
		case opGetRange:
			n.mu.Lock()
			val, exists := n.data[req.key]
			n.mu.Unlock()
			if !exists {
				resp.err = fmt.Errorf("getrange %q: %w", req.key, ErrNotExist)
				break
			}
			// Clip the window to the object size.
			win := req.len
			if req.off >= val.size {
				win = 0
			} else if req.off+win > val.size {
				win = val.size - req.off
			}
			c.env.Sleep(c.serviceTime(win))
			resp.size = win
			if c.prof.discards(req.key) {
				resp.data = clipRange(syntheticFrame(val.size), req.off, req.len)
			} else {
				resp.data = clipRange(val.data, req.off, req.len)
			}
		case opDelete, opReplDelete:
			c.env.Sleep(c.serviceTime(0))
			n.mu.Lock()
			delete(n.data, req.key)
			n.mu.Unlock()
			if req.op == opDelete {
				resp.err = c.replicate(opReplDelete, req.key, nil, 0)
			}
		case opHead:
			c.env.Sleep(c.serviceTime(0))
			n.mu.Lock()
			val, exists := n.data[req.key]
			n.mu.Unlock()
			if !exists {
				resp.err = fmt.Errorf("head %q: %w", req.key, ErrNotExist)
			} else {
				resp.size = val.size
			}
		case opList:
			c.env.Sleep(c.serviceTime(0))
			n.mu.Lock()
			for k := range n.data {
				if hasPrefix(k, req.key) {
					resp.keys = append(resp.keys, k)
				}
			}
			n.mu.Unlock()
		}
		req.reply.Send(resp)
	}
}

// replicate forwards a mutation from the primary to the other replicas and
// waits for all acknowledgements (synchronous primary-copy replication, as
// RADOS does).
func (c *Cluster) replicate(op opKind, key string, data []byte, size int64) error {
	replicas := c.placement(key)[1:]
	if len(replicas) == 0 {
		return nil
	}
	reply := sim.NewChan[nodeResp](c.env)
	for _, r := range replicas {
		c.env.Sleep(c.prof.ReplNet.TransferTime(size)) // serialize onto the wire
		r.replInbox.Send(&nodeReq{op: op, key: key, data: data, size: size, reply: reply})
	}
	var firstErr error
	for range replicas {
		resp, ok := reply.Recv()
		if !ok {
			return fmt.Errorf("objstore: cluster closed during replication: %w", types.ErrIO)
		}
		if resp.err != nil && firstErr == nil {
			firstErr = resp.err
		}
	}
	return firstErr
}

// call performs one client-side request against the primary for key.
func (c *Cluster) call(req *nodeReq, sendSize, recvResp bool) (nodeResp, error) {
	if c.closed.Load() {
		return nodeResp{}, fmt.Errorf("objstore: cluster closed: %w", types.ErrIO)
	}
	primary := c.placement(req.key)[0]
	wire := int64(0)
	if sendSize {
		wire = req.size
	}
	c.env.Sleep(c.prof.ClientNet.TransferTime(wire)) // request propagation
	req.reply = sim.NewChan[nodeResp](c.env)
	primary.inbox.Send(req)
	resp, ok := req.reply.Recv()
	if !ok {
		return nodeResp{}, fmt.Errorf("objstore: cluster closed mid-call: %w", types.ErrIO)
	}
	if recvResp {
		c.env.Sleep(c.prof.ClientNet.TransferTime(resp.size)) // response payload
	} else {
		c.env.Sleep(c.prof.ClientNet.TransferTime(0)) // bare acknowledgement
	}
	return resp, resp.err
}

// Put implements Store.
func (c *Cluster) Put(key string, data []byte) error {
	if int64(len(data)) > c.prof.MaxObjectSize {
		return fmt.Errorf("objstore: object %q size %d exceeds max %d: %w",
			key, len(data), c.prof.MaxObjectSize, types.ErrInval)
	}
	c.stats.Puts.Add(1)
	c.stats.BytesIn.Add(int64(len(data)))
	var stored []byte
	if !c.prof.discards(key) {
		stored = append([]byte(nil), data...)
	}
	_, err := c.call(&nodeReq{op: opPut, key: key, data: stored, size: int64(len(data))}, true, false)
	return err
}

// Get implements Store.
func (c *Cluster) Get(key string) ([]byte, error) {
	c.stats.Gets.Add(1)
	resp, err := c.call(&nodeReq{op: opGet, key: key}, false, true)
	if err != nil {
		return nil, err
	}
	c.stats.BytesOut.Add(resp.size)
	if c.prof.discards(key) {
		return resp.data, nil
	}
	return append([]byte(nil), resp.data...), nil
}

// GetRange implements Store.
func (c *Cluster) GetRange(key string, off, n int64) ([]byte, error) {
	c.stats.Gets.Add(1)
	resp, err := c.call(&nodeReq{op: opGetRange, key: key, off: off, len: n}, false, true)
	if err != nil {
		return nil, err
	}
	c.stats.BytesOut.Add(resp.size)
	if c.prof.discards(key) {
		return resp.data, nil
	}
	return append([]byte(nil), resp.data...), nil
}

// Delete implements Store.
func (c *Cluster) Delete(key string) error {
	c.stats.Deletes.Add(1)
	_, err := c.call(&nodeReq{op: opDelete, key: key}, false, false)
	return err
}

// Head implements Store.
func (c *Cluster) Head(key string) (int64, error) {
	c.stats.Heads.Add(1)
	resp, err := c.call(&nodeReq{op: opHead, key: key}, false, false)
	return resp.size, err
}

// List implements Store. It fans out to every node (keys live on their
// replica sets) and merges, deduplicates, and sorts the result.
func (c *Cluster) List(prefix string) ([]string, error) {
	c.stats.Lists.Add(1)
	if c.closed.Load() {
		return nil, fmt.Errorf("objstore: cluster closed: %w", types.ErrIO)
	}
	reply := sim.NewChan[nodeResp](c.env)
	c.env.Sleep(c.prof.ClientNet.TransferTime(0))
	for _, n := range c.nodes {
		n.inbox.Send(&nodeReq{op: opList, key: prefix, reply: reply})
	}
	seen := map[string]bool{}
	for range c.nodes {
		resp, ok := reply.Recv()
		if !ok {
			return nil, fmt.Errorf("objstore: cluster closed mid-list: %w", types.ErrIO)
		}
		for _, k := range resp.keys {
			seen[k] = true
		}
	}
	c.env.Sleep(c.prof.ClientNet.TransferTime(0))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}
