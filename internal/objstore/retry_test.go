package objstore

import (
	"errors"
	"testing"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// fastPolicy keeps real-time tests snappy.
func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    5,
		InitialBackoff: 50 * time.Microsecond,
		MaxBackoff:     400 * time.Microsecond,
		Multiplier:     2,
		Jitter:         0.25,
		AttemptBudget:  time.Second,
		Seed:           1,
	}
}

func TestRetryStoreContract(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	storeContract(t, NewRetryStore(env, NewMemStore(), fastPolicy()))
}

func TestRetryStoreRetriesTransientWrites(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fs := NewFaultStore(NewMemStore())
	rs := NewRetryStore(env, fs, fastPolicy())
	fs.FailNext("k", 2)
	if err := rs.Put("k1", []byte("v")); err != nil {
		t.Fatalf("Put should succeed after retries: %v", err)
	}
	if got := rs.RetryStats().Put.Load(); got != 2 {
		t.Fatalf("Put retries = %d, want 2", got)
	}
	if got := rs.RetryStats().Exhausted.Load(); got != 0 {
		t.Fatalf("Exhausted = %d, want 0", got)
	}
	if v, err := fs.Get("k1"); err != nil || string(v) != "v" {
		t.Fatalf("value not stored: %q %v", v, err)
	}
}

func TestRetryStoreRetriesTransientReads(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fs := NewFaultStore(NewMemStore())
	rs := NewRetryStore(env, fs, fastPolicy())
	if err := fs.Put("k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fs.FailNextRead("k", 1)
	if v, err := rs.Get("k1"); err != nil || string(v) != "v" {
		t.Fatalf("Get after retry: %q %v", v, err)
	}
	fs.FailNextRead("k", 1)
	if v, err := rs.GetRange("k1", 0, 1); err != nil || string(v) != "v" {
		t.Fatalf("GetRange after retry: %q %v", v, err)
	}
	fs.FailNextRead("k", 1)
	if keys, err := rs.List("k"); err != nil || len(keys) != 1 {
		t.Fatalf("List after retry: %v %v", keys, err)
	}
	fs.FailNextRead("k", 1)
	if n, err := rs.Head("k1"); err != nil || n != 1 {
		t.Fatalf("Head after retry: %d %v", n, err)
	}
	st := rs.RetryStats()
	if st.Get.Load() != 1 || st.GetRange.Load() != 1 || st.List.Load() != 1 || st.Head.Load() != 1 {
		t.Fatalf("per-verb retries = get:%d range:%d list:%d head:%d, want 1 each",
			st.Get.Load(), st.GetRange.Load(), st.List.Load(), st.Head.Load())
	}
	if st.Retries() != 4 {
		t.Fatalf("Retries() = %d, want 4", st.Retries())
	}
}

func TestRetryStoreDoesNotRetryPermanentErrors(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fs := NewFaultStore(NewMemStore())
	rs := NewRetryStore(env, fs, fastPolicy())
	if _, err := rs.Get("missing"); !errors.Is(err, types.ErrNotExist) {
		t.Fatalf("Get missing = %v, want ErrNotExist", err)
	}
	// One underlying attempt, zero retries: ErrNotExist is semantic, not
	// transient, and retrying it would only hide bugs and waste budget.
	if got := fs.Ops(); got != 1 {
		t.Fatalf("inner ops = %d, want 1", got)
	}
	if got := rs.RetryStats().Retries(); got != 0 {
		t.Fatalf("retries = %d, want 0", got)
	}
}

func TestRetryStoreExhaustsBudget(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	fs := NewFaultStore(NewMemStore())
	p := fastPolicy()
	rs := NewRetryStore(env, fs, p)
	fs.FailNext("k", 100)
	err := rs.Put("k1", []byte("v"))
	if !errors.Is(err, types.ErrIO) {
		t.Fatalf("want wrapped ErrIO, got %v", err)
	}
	if got := fs.Ops(); got != p.MaxAttempts {
		t.Fatalf("inner attempts = %d, want %d", got, p.MaxAttempts)
	}
	if got := rs.RetryStats().Exhausted.Load(); got != 1 {
		t.Fatalf("Exhausted = %d, want 1", got)
	}
}

func TestRetryStoreVirtualTimeBackoffDeterministic(t *testing.T) {
	elapsed := func() time.Duration {
		env := sim.NewVirtEnv()
		var d time.Duration
		env.Run(func() {
			fs := NewFaultStore(NewMemStore())
			rs := NewRetryStore(env, fs, fastPolicy())
			fs.FailNext("k", 3)
			start := env.Now()
			if err := rs.Put("k1", []byte("v")); err != nil {
				t.Errorf("Put: %v", err)
			}
			d = env.Now() - start
		})
		return d
	}
	d1, d2 := elapsed(), elapsed()
	if d1 != d2 {
		t.Fatalf("virtual-time backoff not deterministic: %v vs %v", d1, d2)
	}
	// Three retries of a 50µs initial backoff must advance the clock.
	if d1 < 150*time.Microsecond {
		t.Fatalf("backoff too short: %v", d1)
	}
}

func TestRetryStoreAttemptBudgetDeadline(t *testing.T) {
	env := sim.NewVirtEnv()
	env.Run(func() {
		fs := NewFaultStore(NewMemStore())
		p := fastPolicy()
		p.MaxAttempts = 1000
		p.Jitter = 0 // exact backoff arithmetic
		p.InitialBackoff = 100 * time.Millisecond
		p.MaxBackoff = 100 * time.Millisecond
		p.AttemptBudget = 250 * time.Millisecond
		rs := NewRetryStore(env, fs, p)
		fs.FailNext("k", 1000)
		err := rs.Put("k1", []byte("v"))
		if !errors.Is(err, types.ErrIO) {
			t.Errorf("want ErrIO, got %v", err)
		}
		// Attempts at t=0, 100ms, 200ms; the 300ms attempt would pass the
		// 250ms deadline, so the op gives up after 3 tries.
		if got := fs.Ops(); got != 3 {
			t.Errorf("inner attempts = %d, want 3 (deadline-bounded)", got)
		}
	})
}
