package objstore

import (
	"arkfs/internal/obs"
)

// ObsStore wraps a Store and counts operations per verb (objstore.put,
// objstore.get, ...) plus failures (objstore.errors) in a metrics registry.
// Counters are resolved by name, so every ObsStore attached to the same
// registry — one per client in a deployment — feeds the same totals.
//
// Retry totals are not counted here: the RetryStore sits above this wrapper
// and its per-verb retry counters are folded into the registry at snapshot
// time (see harness wiring), so one logical operation that retried twice
// shows up as three verb ops and two retries.
type ObsStore struct {
	inner Store

	cPut, cGet, cGetRange *obs.Counter
	cDelete, cList, cHead *obs.Counter
	cErrors               *obs.Counter
	cBytesOut, cBytesIn   *obs.Counter
}

// Instrument wraps inner with per-verb counting in reg. A nil registry
// returns inner unchanged (zero overhead when observability is off).
func Instrument(inner Store, reg *obs.Registry) Store {
	if reg == nil {
		return inner
	}
	return &ObsStore{
		inner:     inner,
		cPut:      reg.Counter("objstore.put"),
		cGet:      reg.Counter("objstore.get"),
		cGetRange: reg.Counter("objstore.getrange"),
		cDelete:   reg.Counter("objstore.delete"),
		cList:     reg.Counter("objstore.list"),
		cHead:     reg.Counter("objstore.head"),
		cErrors:   reg.Counter("objstore.errors"),
		cBytesOut: reg.Counter("objstore.bytes.put"),
		cBytesIn:  reg.Counter("objstore.bytes.get"),
	}
}

// Inner exposes the wrapped backend.
func (s *ObsStore) Inner() Store { return s.inner }

func (s *ObsStore) fail(err error) error {
	if err != nil {
		s.cErrors.Inc()
	}
	return err
}

// Put implements Store.
func (s *ObsStore) Put(key string, data []byte) error {
	s.cPut.Inc()
	s.cBytesOut.Add(int64(len(data)))
	return s.fail(s.inner.Put(key, data))
}

// Get implements Store.
func (s *ObsStore) Get(key string) ([]byte, error) {
	s.cGet.Inc()
	v, err := s.inner.Get(key)
	s.cBytesIn.Add(int64(len(v)))
	return v, s.fail(err)
}

// GetRange implements Store.
func (s *ObsStore) GetRange(key string, off, n int64) ([]byte, error) {
	s.cGetRange.Inc()
	v, err := s.inner.GetRange(key, off, n)
	s.cBytesIn.Add(int64(len(v)))
	return v, s.fail(err)
}

// Delete implements Store.
func (s *ObsStore) Delete(key string) error {
	s.cDelete.Inc()
	return s.fail(s.inner.Delete(key))
}

// List implements Store.
func (s *ObsStore) List(prefix string) ([]string, error) {
	s.cList.Inc()
	v, err := s.inner.List(prefix)
	return v, s.fail(err)
}

// Head implements Store.
func (s *ObsStore) Head(key string) (int64, error) {
	s.cHead.Inc()
	n, err := s.inner.Head(key)
	return n, s.fail(err)
}
