package objstore

import (
	"fmt"
	"sync"

	"arkfs/internal/types"
)

// FaultStore wraps a Store and injects failures, used by crash-consistency
// and recovery tests. It can fail the next N operations matching a key
// prefix, or truncate written values to simulate torn writes.
type FaultStore struct {
	Inner Store

	mu          sync.Mutex
	failPrefix  string
	failsLeft   int
	tornPrefix  string
	tornLeft    int
	opsObserved int
}

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{Inner: inner} }

// FailNext arms the store to fail the next n Put/Delete operations whose key
// has the given prefix.
func (f *FaultStore) FailNext(prefix string, n int) {
	f.mu.Lock()
	f.failPrefix, f.failsLeft = prefix, n
	f.mu.Unlock()
}

// TearNext arms the store to write only half of the next n values whose key
// has the given prefix — a torn write as seen after a power loss.
func (f *FaultStore) TearNext(prefix string, n int) {
	f.mu.Lock()
	f.tornPrefix, f.tornLeft = prefix, n
	f.mu.Unlock()
}

// Ops returns how many operations passed through, for test assertions.
func (f *FaultStore) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opsObserved
}

func (f *FaultStore) shouldFail(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opsObserved++
	if f.failsLeft > 0 && hasPrefix(key, f.failPrefix) {
		f.failsLeft--
		return true
	}
	return false
}

func (f *FaultStore) shouldTear(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tornLeft > 0 && hasPrefix(key, f.tornPrefix) {
		f.tornLeft--
		return true
	}
	return false
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Put implements Store with fault injection.
func (f *FaultStore) Put(key string, data []byte) error {
	if f.shouldFail(key) {
		return fmt.Errorf("faultstore: injected put failure on %q: %w", key, types.ErrIO)
	}
	if f.shouldTear(key) {
		return f.Inner.Put(key, data[:len(data)/2])
	}
	return f.Inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key string) ([]byte, error) {
	f.mu.Lock()
	f.opsObserved++
	f.mu.Unlock()
	return f.Inner.Get(key)
}

// GetRange implements Store.
func (f *FaultStore) GetRange(key string, off, n int64) ([]byte, error) {
	return f.Inner.GetRange(key, off, n)
}

// Delete implements Store with fault injection.
func (f *FaultStore) Delete(key string) error {
	if f.shouldFail(key) {
		return fmt.Errorf("faultstore: injected delete failure on %q: %w", key, types.ErrIO)
	}
	return f.Inner.Delete(key)
}

// List implements Store.
func (f *FaultStore) List(prefix string) ([]string, error) { return f.Inner.List(prefix) }

// Head implements Store.
func (f *FaultStore) Head(key string) (int64, error) { return f.Inner.Head(key) }
