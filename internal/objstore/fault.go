package objstore

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// FaultStore wraps a Store and injects failures, used by crash-consistency,
// recovery, and retry tests. Failures are symmetric: it can fail the next N
// writes (Put/Delete) or reads (Get/GetRange/List/Head) matching a key
// prefix, truncate written values to simulate torn writes, fail every verb
// probabilistically from a seeded RNG ("flaky mode"), and add fixed latency
// to every operation.
type FaultStore struct {
	Inner Store

	mu          sync.Mutex
	env         sim.Env
	latency     time.Duration
	failPrefix  string
	failsLeft   int
	readPrefix  string
	readsLeft   int
	tornPrefix  string
	tornLeft    int
	flakyProb   float64
	rng         *rand.Rand
	opsObserved int
	injected    int
}

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{Inner: inner} }

// FailNext arms the store to fail the next n Put/Delete operations whose key
// has the given prefix.
func (f *FaultStore) FailNext(prefix string, n int) {
	f.mu.Lock()
	f.failPrefix, f.failsLeft = prefix, n
	f.mu.Unlock()
}

// FailNextRead arms the store to fail the next n read operations
// (Get/GetRange/List/Head) whose key or prefix argument has the given prefix.
func (f *FaultStore) FailNextRead(prefix string, n int) {
	f.mu.Lock()
	f.readPrefix, f.readsLeft = prefix, n
	f.mu.Unlock()
}

// TearNext arms the store to write only half of the next n values whose key
// has the given prefix — a torn write as seen after a power loss.
func (f *FaultStore) TearNext(prefix string, n int) {
	f.mu.Lock()
	f.tornPrefix, f.tornLeft = prefix, n
	f.mu.Unlock()
}

// SetFlaky makes every operation fail with probability prob, drawn from an
// RNG seeded with seed so runs are reproducible. prob <= 0 disables flaky
// mode.
func (f *FaultStore) SetFlaky(prob float64, seed int64) {
	f.mu.Lock()
	f.flakyProb = prob
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// InjectLatency adds a fixed env-clock sleep to every operation, simulating a
// slow or congested backend.
func (f *FaultStore) InjectLatency(env sim.Env, d time.Duration) {
	f.mu.Lock()
	f.env, f.latency = env, d
	f.mu.Unlock()
}

// Ops returns how many operations passed through (every verb), for test
// assertions.
func (f *FaultStore) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opsObserved
}

// Injected returns how many operations failed with an injected error.
func (f *FaultStore) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// observe records one operation on key, applies latency, and returns an
// injected error or nil. read selects the FailNextRead vs FailNext budget;
// flaky mode applies to both.
func (f *FaultStore) observe(verb, key string, read bool) error {
	f.mu.Lock()
	f.opsObserved++
	env, lat := f.env, f.latency
	fail := false
	switch {
	case f.flakyProb > 0 && f.rng != nil && f.rng.Float64() < f.flakyProb:
		fail = true
	case read && f.readsLeft > 0 && hasPrefix(key, f.readPrefix):
		f.readsLeft--
		fail = true
	case !read && f.failsLeft > 0 && hasPrefix(key, f.failPrefix):
		f.failsLeft--
		fail = true
	}
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if lat > 0 && env != nil {
		env.Sleep(lat)
	}
	if fail {
		return fmt.Errorf("faultstore: injected %s failure on %q: %w", verb, key, types.ErrIO)
	}
	return nil
}

func (f *FaultStore) shouldTear(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tornLeft > 0 && hasPrefix(key, f.tornPrefix) {
		f.tornLeft--
		return true
	}
	return false
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Put implements Store with fault injection.
func (f *FaultStore) Put(key string, data []byte) error {
	if err := f.observe("put", key, false); err != nil {
		return err
	}
	if f.shouldTear(key) {
		return f.Inner.Put(key, data[:len(data)/2])
	}
	return f.Inner.Put(key, data)
}

// Get implements Store with fault injection.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if err := f.observe("get", key, true); err != nil {
		return nil, err
	}
	return f.Inner.Get(key)
}

// GetRange implements Store with fault injection.
func (f *FaultStore) GetRange(key string, off, n int64) ([]byte, error) {
	if err := f.observe("getrange", key, true); err != nil {
		return nil, err
	}
	return f.Inner.GetRange(key, off, n)
}

// Delete implements Store with fault injection.
func (f *FaultStore) Delete(key string) error {
	if err := f.observe("delete", key, false); err != nil {
		return err
	}
	return f.Inner.Delete(key)
}

// List implements Store with fault injection.
func (f *FaultStore) List(prefix string) ([]string, error) {
	if err := f.observe("list", prefix, true); err != nil {
		return nil, err
	}
	return f.Inner.List(prefix)
}

// Head implements Store with fault injection.
func (f *FaultStore) Head(key string) (int64, error) {
	if err := f.observe("head", key, true); err != nil {
		return 0, err
	}
	return f.Inner.Head(key)
}
