package objstore

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// FaultStore wraps a Store and injects failures, used by crash-consistency,
// recovery, and retry tests. Failures are symmetric: it can fail the next N
// writes (Put/Delete) or reads (Get/GetRange/List/Head) matching a key
// prefix, truncate written values to simulate torn writes, fail every verb
// probabilistically from a seeded RNG ("flaky mode"), and add fixed latency
// to every operation.
type FaultStore struct {
	Inner Store

	mu          sync.Mutex
	env         sim.Env
	latency     time.Duration
	failPrefix  string
	failsLeft   int
	readPrefix  string
	readsLeft   int
	tornPrefix  string
	tornLeft    int
	flakyProb   float64
	rng         *rand.Rand
	opsObserved int
	injected    int

	corruptPrefix string
	corruptLeft   int

	corruptReadPrefix string
	corruptReadProb   float64
	corruptReadRNG    *rand.Rand

	corruptNextReadPrefix string
	corruptNextReadLeft   int

	tornReadPrefix string
	tornReadLeft   int
	tornReadLen    map[string]int64
}

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{Inner: inner} }

// FailNext arms the store to fail the next n Put/Delete operations whose key
// has the given prefix.
func (f *FaultStore) FailNext(prefix string, n int) {
	f.mu.Lock()
	f.failPrefix, f.failsLeft = prefix, n
	f.mu.Unlock()
}

// FailNextRead arms the store to fail the next n read operations
// (Get/GetRange/List/Head) whose key or prefix argument has the given prefix.
func (f *FaultStore) FailNextRead(prefix string, n int) {
	f.mu.Lock()
	f.readPrefix, f.readsLeft = prefix, n
	f.mu.Unlock()
}

// TearNext arms the store to write only half of the next n values whose key
// has the given prefix — a torn write as seen after a power loss.
func (f *FaultStore) TearNext(prefix string, n int) {
	f.mu.Lock()
	f.tornPrefix, f.tornLeft = prefix, n
	f.mu.Unlock()
}

// CorruptNext arms the store to flip one bit in the next n values written
// (Put) whose key has the given prefix — bit rot at rest: the corrupt bytes
// persist and every later read returns them. Symmetric with TearNext and
// counted in Injected().
func (f *FaultStore) CorruptNext(prefix string, n int) {
	f.mu.Lock()
	f.corruptPrefix, f.corruptLeft = prefix, n
	f.mu.Unlock()
}

// SetCorruptReads makes every Get/GetRange whose key has the given prefix
// return a copy with one bit flipped, with probability prob drawn from an RNG
// seeded with seed so runs are reproducible. The corruption is transient —
// the stored object is untouched, so a retry reads clean bytes — modelling a
// fault on the wire rather than rot at rest. prob <= 0 disables the mode.
func (f *FaultStore) SetCorruptReads(prefix string, prob float64, seed int64) {
	f.mu.Lock()
	f.corruptReadPrefix, f.corruptReadProb = prefix, prob
	f.corruptReadRNG = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// CorruptNextRead arms the store to flip one bit in the next n values served
// by Get/GetRange whose key has the given prefix. Like SetCorruptReads the
// corruption is transient — the stored object is untouched and a retry reads
// clean bytes — but the trigger is a deterministic countdown rather than a
// probability, so tests can corrupt exactly one read.
func (f *FaultStore) CorruptNextRead(prefix string, n int) {
	f.mu.Lock()
	f.corruptNextReadPrefix, f.corruptNextReadLeft = prefix, n
	f.mu.Unlock()
}

// TearNextRead arms the store to serve the next n objects read (Get or
// GetRange) whose key has the given prefix as if they had been truncated to
// half their stored length. A key torn this way stays torn: every later read
// of it — including ranged readahead — observes the same short object, so a
// reader cannot see the full value reappear mid-sequence.
func (f *FaultStore) TearNextRead(prefix string, n int) {
	f.mu.Lock()
	f.tornReadPrefix, f.tornReadLeft = prefix, n
	if f.tornReadLen == nil {
		f.tornReadLen = make(map[string]int64)
	}
	f.mu.Unlock()
}

// SetFlaky makes every operation fail with probability prob, drawn from an
// RNG seeded with seed so runs are reproducible. prob <= 0 disables flaky
// mode.
func (f *FaultStore) SetFlaky(prob float64, seed int64) {
	f.mu.Lock()
	f.flakyProb = prob
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// InjectLatency adds a fixed env-clock sleep to every operation, simulating a
// slow or congested backend.
func (f *FaultStore) InjectLatency(env sim.Env, d time.Duration) {
	f.mu.Lock()
	f.env, f.latency = env, d
	f.mu.Unlock()
}

// Ops returns how many operations passed through (every verb), for test
// assertions.
func (f *FaultStore) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opsObserved
}

// Injected returns how many operations failed with an injected error.
func (f *FaultStore) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// observe records one operation on key, applies latency, and returns an
// injected error or nil. read selects the FailNextRead vs FailNext budget;
// flaky mode applies to both.
func (f *FaultStore) observe(verb, key string, read bool) error {
	f.mu.Lock()
	f.opsObserved++
	env, lat := f.env, f.latency
	fail := false
	switch {
	case f.flakyProb > 0 && f.rng != nil && f.rng.Float64() < f.flakyProb:
		fail = true
	case read && f.readsLeft > 0 && hasPrefix(key, f.readPrefix):
		f.readsLeft--
		fail = true
	case !read && f.failsLeft > 0 && hasPrefix(key, f.failPrefix):
		f.failsLeft--
		fail = true
	}
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if lat > 0 && env != nil {
		env.Sleep(lat)
	}
	if fail {
		return fmt.Errorf("faultstore: injected %s failure on %q: %w", verb, key, types.ErrIO)
	}
	return nil
}

func (f *FaultStore) shouldTear(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tornLeft > 0 && hasPrefix(key, f.tornPrefix) {
		f.tornLeft--
		f.injected++
		return true
	}
	return false
}

func (f *FaultStore) shouldCorrupt(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corruptLeft > 0 && hasPrefix(key, f.corruptPrefix) {
		f.corruptLeft--
		f.injected++
		return true
	}
	return false
}

// corruptOnRead decides whether a read of key should return flipped bytes
// and, if so, which byte index the flip lands on (reduced modulo the value
// length by the caller).
func (f *FaultStore) corruptOnRead(key string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corruptNextReadLeft > 0 && hasPrefix(key, f.corruptNextReadPrefix) {
		f.corruptNextReadLeft--
		f.injected++
		return 9973, true // fixed offset, reduced modulo the value length
	}
	if f.corruptReadProb > 0 && f.corruptReadRNG != nil && hasPrefix(key, f.corruptReadPrefix) &&
		f.corruptReadRNG.Float64() < f.corruptReadProb {
		f.injected++
		return f.corruptReadRNG.Intn(1 << 20), true
	}
	return 0, false
}

// tearOnRead reports the length key should be served at, consuming one armed
// read-tear (recording size/2 for the key) or recalling a previous one.
func (f *FaultStore) tearOnRead(key string, size int64) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tlen, ok := f.tornReadLen[key]; ok {
		return tlen, true
	}
	if f.tornReadLeft > 0 && hasPrefix(key, f.tornReadPrefix) {
		f.tornReadLeft--
		f.injected++
		if f.tornReadLen == nil {
			f.tornReadLen = make(map[string]int64)
		}
		f.tornReadLen[key] = size / 2
		return size / 2, true
	}
	return 0, false
}

// flipBit returns data with one bit inverted at pos (reduced modulo the
// length). The input is assumed to be a caller-owned copy.
func flipBit(data []byte, pos int) []byte {
	if len(data) == 0 {
		return data
	}
	data[pos%len(data)] ^= 0x01
	return data
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Put implements Store with fault injection.
func (f *FaultStore) Put(key string, data []byte) error {
	if err := f.observe("put", key, false); err != nil {
		return err
	}
	if f.shouldTear(key) {
		return f.Inner.Put(key, data[:len(data)/2])
	}
	if f.shouldCorrupt(key) {
		cp := append([]byte(nil), data...)
		return f.Inner.Put(key, flipBit(cp, len(cp)/2))
	}
	return f.Inner.Put(key, data)
}

// Get implements Store with fault injection.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if err := f.observe("get", key, true); err != nil {
		return nil, err
	}
	v, err := f.Inner.Get(key)
	if err != nil {
		return nil, err
	}
	if tlen, torn := f.tearOnRead(key, int64(len(v))); torn && int64(len(v)) > tlen {
		v = v[:tlen]
	}
	if pos, ok := f.corruptOnRead(key); ok {
		v = flipBit(v, pos)
	}
	return v, nil
}

// GetRange implements Store with fault injection. A key torn by TearNextRead
// is served as the same short object Get reports: bytes beyond the torn
// length do not exist from the reader's point of view.
func (f *FaultStore) GetRange(key string, off, n int64) ([]byte, error) {
	if err := f.observe("getrange", key, true); err != nil {
		return nil, err
	}
	v, err := f.Inner.GetRange(key, off, n)
	if err != nil {
		return nil, err
	}
	if f.readTearArmedOrRecorded(key) {
		size, herr := f.Inner.Head(key)
		if herr == nil {
			if tlen, torn := f.tearOnRead(key, size); torn {
				if off >= tlen {
					v = nil
				} else if off+int64(len(v)) > tlen {
					v = v[:tlen-off]
				}
			}
		}
	}
	if pos, ok := f.corruptOnRead(key); ok {
		v = flipBit(v, pos)
	}
	return v, nil
}

// readTearArmedOrRecorded reports whether a read-tear could apply to key, so
// GetRange only pays the extra Head when one is armed or already recorded.
func (f *FaultStore) readTearArmedOrRecorded(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.tornReadLen[key]; ok {
		return true
	}
	return f.tornReadLeft > 0 && hasPrefix(key, f.tornReadPrefix)
}

// Delete implements Store with fault injection.
func (f *FaultStore) Delete(key string) error {
	if err := f.observe("delete", key, false); err != nil {
		return err
	}
	return f.Inner.Delete(key)
}

// List implements Store with fault injection.
func (f *FaultStore) List(prefix string) ([]string, error) {
	if err := f.observe("list", prefix, true); err != nil {
		return nil, err
	}
	return f.Inner.List(prefix)
}

// Head implements Store with fault injection.
func (f *FaultStore) Head(key string) (int64, error) {
	if err := f.observe("head", key, true); err != nil {
		return 0, err
	}
	return f.Inner.Head(key)
}
