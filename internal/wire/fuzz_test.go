package wire

import (
	"errors"
	"testing"
	"time"

	"arkfs/internal/types"
)

// fuzz seeds: a few valid encodings so the fuzzer starts from structurally
// interesting inputs, plus degenerate frames. Mutations of a sealed record
// almost always fail the CRC, so the engine's coverage feedback will learn to
// re-seal; the property under test is "no panic, no wrong-typed error".

func seedTxn() *Txn {
	ino := types.Ino{1, 2, 3, 4}
	return &Txn{
		ID:    42,
		Dir:   ino,
		Kind:  TxnNormal,
		Stamp: 7 * time.Second,
		Ops: []Op{
			{Kind: OpSetInode, Inode: &types.Inode{Ino: ino, Type: types.TypeRegular, Mode: 0644, Nlink: 1, Size: 9}},
			{Kind: OpAddDentry, Name: "hello.txt", Ino: ino, FType: types.TypeRegular},
			{Kind: OpDelDentry, Name: "old"},
			{Kind: OpDelInode, Ino: ino, Size: 9, FType: types.TypeRegular},
		},
	}
}

func FuzzDecodeTxn(f *testing.F) {
	f.Add(EncodeTxn(seedTxn()))
	f.Add(EncodeTxn(&Txn{ID: 1, Kind: TxnCommit, Peer: types.Ino{9}}))
	f.Add([]byte{})
	f.Add([]byte{verTxn, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		txn, err := DecodeTxn(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not wrapping ErrCorrupt: %v", err)
			}
			return
		}
		// A successful decode must round-trip to the same bytes.
		if re := EncodeTxn(txn); string(re) != string(data) {
			t.Fatalf("decode/encode round trip diverged:\n in: %x\nout: %x", data, re)
		}
	})
}

func FuzzDecodeInode(f *testing.F) {
	f.Add(EncodeInode(&types.Inode{Ino: types.Ino{5}, Type: types.TypeDir, Mode: 0755, Nlink: 2}))
	f.Add(EncodeInode(&types.Inode{
		Ino: types.Ino{6}, Type: types.TypeSymlink, Target: "a/b/c",
		ACL: types.ACL{{Tag: types.TagUser, ID: 1000, Perms: 7}},
	}))
	f.Add([]byte{})
	f.Add([]byte{verInode})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeInode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not wrapping ErrCorrupt: %v", err)
			}
			return
		}
		if re := EncodeInode(n); string(re) != string(data) {
			t.Fatalf("decode/encode round trip diverged:\n in: %x\nout: %x", data, re)
		}
	})
}

func FuzzDecodeDentries(f *testing.F) {
	f.Add(EncodeDentries([]Dentry{
		{Name: "a", Ino: types.Ino{1}, Type: types.TypeRegular},
		{Name: "sub", Ino: types.Ino{2}, Type: types.TypeDir},
	}))
	f.Add(EncodeDentries(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		des, err := DecodeDentries(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not wrapping ErrCorrupt: %v", err)
			}
			return
		}
		if re := EncodeDentries(des); string(re) != string(data) {
			t.Fatalf("decode/encode round trip diverged:\n in: %x\nout: %x", data, re)
		}
	})
}
