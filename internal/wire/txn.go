package wire

import (
	"fmt"
	"time"

	"arkfs/internal/types"
)

// OpKind identifies one logged metadata mutation inside a transaction.
type OpKind byte

// Journal operation kinds.
const (
	OpSetInode  OpKind = 1 // write/refresh an inode object
	OpDelInode  OpKind = 2 // delete an inode object
	OpAddDentry OpKind = 3 // insert a name into the directory
	OpDelDentry OpKind = 4 // remove a name from the directory
)

// DirHint marks an OpDelInode as deleting a directory, so checkpoint also
// removes its dentry block.
const DirHint = types.TypeDir

// TxnKind distinguishes ordinary transactions from two-phase-commit records.
type TxnKind byte

// Transaction kinds.
const (
	TxnNormal  TxnKind = 1 // self-contained compound transaction
	TxnPrepare TxnKind = 2 // 2PC participant: ops valid only if coordinator committed
	TxnCommit  TxnKind = 3 // 2PC coordinator decision marker (no ops)
	TxnAbort   TxnKind = 4 // 2PC explicit abort marker (no ops)
)

// Op is one logged mutation. Fields are used according to Kind.
type Op struct {
	Kind  OpKind
	Inode *types.Inode   // OpSetInode
	Ino   types.Ino      // OpDelInode / OpAddDentry
	Name  string         // OpAddDentry / OpDelDentry
	FType types.FileType // OpAddDentry / OpDelDentry / OpDelInode
	Size  int64          // OpDelInode: file size, so checkpoint can drop data chunks
}

// Txn is a compound transaction: every metadata mutation buffered for one
// directory during a commit interval (paper §III-E), plus the 2PC framing
// for cross-directory operations.
type Txn struct {
	ID    uint64    // unique per (client, directory) stream
	Dir   types.Ino // the owning directory
	Kind  TxnKind
	Peer  types.Ino     // 2PC: the other directory (coordinator for prepares)
	Stamp time.Duration // virtual time of commit, for diagnostics
	Ops   []Op
}

// EncodeTxn serializes the transaction with a CRC32C trailer so recovery can
// reject torn or corrupt journal objects.
func EncodeTxn(t *Txn) []byte {
	e := &encoder{buf: make([]byte, 0, 64+len(t.Ops)*48)}
	e.byte(verTxn)
	e.uvarint(t.ID)
	e.ino(t.Dir)
	e.byte(byte(t.Kind))
	e.ino(t.Peer)
	e.varint(int64(t.Stamp))
	e.uvarint(uint64(len(t.Ops)))
	for i := range t.Ops {
		op := &t.Ops[i]
		e.byte(byte(op.Kind))
		switch op.Kind {
		case OpSetInode:
			e.bytes(EncodeInode(op.Inode))
		case OpDelInode:
			e.ino(op.Ino)
			e.varint(op.Size)
			e.byte(byte(op.FType))
		case OpAddDentry:
			e.str(op.Name)
			e.ino(op.Ino)
			e.byte(byte(op.FType))
		case OpDelDentry:
			e.str(op.Name)
		default:
			panic(fmt.Sprintf("wire: unknown op kind %d", op.Kind))
		}
	}
	return Seal(e.buf)
}

// DecodeTxn parses and CRC-verifies a transaction record.
func DecodeTxn(buf []byte) (*Txn, error) {
	if len(buf) < 5 {
		return nil, fmt.Errorf("%w: txn record too short (%d bytes)", ErrCorrupt, len(buf))
	}
	body, err := Unseal(buf)
	if err != nil {
		return nil, fmt.Errorf("txn: %w", err)
	}
	d := &decoder{buf: body}
	if v := d.byte(); d.err == nil && v != verTxn {
		return nil, fmt.Errorf("%w: txn version %d", ErrCorrupt, v)
	}
	t := &Txn{}
	t.ID = d.uvarint()
	t.Dir = d.ino()
	t.Kind = TxnKind(d.byte())
	t.Peer = d.ino()
	t.Stamp = time.Duration(d.varint())
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > 1<<22 {
		return nil, fmt.Errorf("%w: absurd op count %d", ErrCorrupt, n)
	}
	t.Ops = make([]Op, 0, d.capHint(n, 2))
	for i := uint64(0); i < n; i++ {
		var op Op
		op.Kind = OpKind(d.byte())
		switch op.Kind {
		case OpSetInode:
			raw := d.bytes()
			if d.err != nil {
				return nil, d.err
			}
			ino, err := DecodeInode(raw)
			if err != nil {
				return nil, err
			}
			op.Inode = ino
		case OpDelInode:
			op.Ino = d.ino()
			op.Size = d.varint()
			op.FType = types.FileType(d.byte())
		case OpAddDentry:
			op.Name = d.str()
			op.Ino = d.ino()
			op.FType = types.FileType(d.byte())
		case OpDelDentry:
			op.Name = d.str()
		default:
			if d.err != nil {
				return nil, d.err
			}
			return nil, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, op.Kind)
		}
		if d.err != nil {
			return nil, d.err
		}
		t.Ops = append(t.Ops, op)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after txn", ErrCorrupt, len(body)-d.off)
	}
	return t, nil
}
