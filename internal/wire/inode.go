package wire

import (
	"fmt"
	"time"

	"arkfs/internal/types"
)

// EncodeInode serializes an inode for storage under its "i:" key.
func EncodeInode(n *types.Inode) []byte {
	e := &encoder{buf: make([]byte, 0, 96+len(n.Target))}
	e.byte(verInode)
	e.ino(n.Ino)
	e.byte(byte(n.Type))
	e.uvarint(uint64(n.Mode))
	e.uvarint(uint64(n.Uid))
	e.uvarint(uint64(n.Gid))
	e.uvarint(uint64(n.Nlink))
	e.varint(n.Size)
	e.varint(int64(n.Atime))
	e.varint(int64(n.Mtime))
	e.varint(int64(n.Ctime))
	e.str(n.Target)
	e.uvarint(uint64(len(n.ACL)))
	for _, a := range n.ACL {
		e.byte(byte(a.Tag))
		e.uvarint(uint64(a.ID))
		e.byte(a.Perms)
	}
	return Seal(e.buf)
}

// DecodeInode parses and CRC-verifies an inode record.
func DecodeInode(frame []byte) (*types.Inode, error) {
	buf, err := Unseal(frame)
	if err != nil {
		return nil, fmt.Errorf("inode: %w", err)
	}
	d := &decoder{buf: buf}
	if v := d.byte(); d.err == nil && v != verInode {
		return nil, fmt.Errorf("%w: inode version %d", ErrCorrupt, v)
	}
	n := &types.Inode{}
	n.Ino = d.ino()
	n.Type = types.FileType(d.byte())
	n.Mode = types.Mode(d.uvarint())
	n.Uid = uint32(d.uvarint())
	n.Gid = uint32(d.uvarint())
	n.Nlink = uint32(d.uvarint())
	n.Size = d.varint()
	n.Atime = time.Duration(d.varint())
	n.Mtime = time.Duration(d.varint())
	n.Ctime = time.Duration(d.varint())
	n.Target = d.str()
	nACL := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if nACL > 4096 {
		return nil, fmt.Errorf("%w: absurd acl count %d", ErrCorrupt, nACL)
	}
	if nACL > 0 {
		n.ACL = make(types.ACL, 0, d.capHint(nACL, 3))
		for i := uint64(0); i < nACL; i++ {
			tag := types.ACLTag(d.byte())
			id := uint32(d.uvarint())
			perms := d.byte()
			n.ACL = append(n.ACL, types.ACLEntry{Tag: tag, ID: id, Perms: perms})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after inode", ErrCorrupt, len(buf)-d.off)
	}
	return n, nil
}

// Dentry is one directory entry inside a dentry block.
type Dentry struct {
	Name string
	Ino  types.Ino
	Type types.FileType
}

// EncodeDentries serializes a directory's entry table for its "e:" object.
// Entries are written in the order given; callers sort for determinism.
func EncodeDentries(entries []Dentry) []byte {
	e := &encoder{buf: make([]byte, 0, 8+len(entries)*32)}
	e.byte(verDentry)
	e.uvarint(uint64(len(entries)))
	for _, de := range entries {
		e.str(de.Name)
		e.ino(de.Ino)
		e.byte(byte(de.Type))
	}
	return Seal(e.buf)
}

// DecodeDentries parses and CRC-verifies a dentry block.
func DecodeDentries(frame []byte) ([]Dentry, error) {
	buf, err := Unseal(frame)
	if err != nil {
		return nil, fmt.Errorf("dentries: %w", err)
	}
	d := &decoder{buf: buf}
	if v := d.byte(); d.err == nil && v != verDentry {
		return nil, fmt.Errorf("%w: dentry version %d", ErrCorrupt, v)
	}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("%w: absurd dentry count %d", ErrCorrupt, n)
	}
	out := make([]Dentry, 0, d.capHint(n, 18))
	for i := uint64(0); i < n; i++ {
		de := Dentry{Name: d.str(), Ino: d.ino(), Type: types.FileType(d.byte())}
		if d.err != nil {
			return nil, d.err
		}
		out = append(out, de)
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after dentries", ErrCorrupt, len(buf)-d.off)
	}
	return out, nil
}
