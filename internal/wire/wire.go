// Package wire implements the compact binary encoding ArkFS uses to store
// file-system metadata as object-store values: inodes ("i:" objects), dentry
// blocks ("e:" objects), and journal records ("j:" objects).
//
// The format is deliberately simple — a version byte, varint-prefixed fields,
// and a CRC32C trailer on journal records — so that recovery code can detect
// torn writes and future versions can evolve the layout.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"arkfs/internal/types"
)

// Encoding version bytes, one per record kind.
const (
	verInode  byte = 1
	verDentry byte = 1
	verTxn    byte = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by all decode failures.
var ErrCorrupt = fmt.Errorf("wire: corrupt record: %w", types.ErrIO)

type encoder struct{ buf []byte }

func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) bytes(b []byte)   { e.uvarint(uint64(len(b))); e.buf = append(e.buf, b...) }
func (e *encoder) str(s string)     { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) ino(i types.Ino)  { e.buf = append(e.buf, i[:]...) }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("bytes")
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *decoder) str() string { return string(d.bytes()) }

func (d *decoder) ino() types.Ino {
	var i types.Ino
	if d.err != nil {
		return i
	}
	if len(d.buf)-d.off < 16 {
		d.fail("ino")
		return i
	}
	copy(i[:], d.buf[d.off:d.off+16])
	d.off += 16
	return i
}
