// Package wire implements the compact binary encoding ArkFS uses to store
// file-system metadata as object-store values: inodes ("i:" objects), dentry
// blocks ("e:" objects), and journal records ("j:" objects).
//
// The format is deliberately simple — a version byte, varint-prefixed fields,
// and a CRC32C trailer on journal records — so that recovery code can detect
// torn writes and future versions can evolve the layout.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"arkfs/internal/types"
)

// Encoding version bytes, one per record kind. Version 2 added the CRC32C
// trailer to inode and dentry records (journal records carried one from the
// start), so every persisted metadata object is self-verifying.
const (
	verInode  byte = 2
	verDentry byte = 2
	verTxn    byte = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by all decode failures. It wraps types.ErrIntegrity
// (and transitively types.ErrIO), so readers can distinguish detected
// corruption from other storage failures with errors.Is.
var ErrCorrupt = fmt.Errorf("wire: corrupt record: %w", types.ErrIntegrity)

// Seal appends the CRC32C (Castagnoli) checksum of buf as a 4-byte big-endian
// trailer, in place when capacity allows. Every persisted ArkFS record — txn,
// inode, dentry block, data chunk, superblock — is framed this way.
func Seal(buf []byte) []byte {
	sum := crc32.Checksum(buf, castagnoli)
	return binary.BigEndian.AppendUint32(buf, sum)
}

// Unseal verifies a sealed frame and returns the payload with the trailer
// stripped. The payload aliases frame; callers that mutate it must copy.
func Unseal(frame []byte) ([]byte, error) {
	if len(frame) < 4 {
		return nil, fmt.Errorf("%w: frame too short (%d bytes)", ErrCorrupt, len(frame))
	}
	body, trailer := frame[:len(frame)-4], frame[len(frame)-4:]
	want := binary.BigEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return body, nil
}

type encoder struct{ buf []byte }

func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) bytes(b []byte)   { e.uvarint(uint64(len(b))); e.buf = append(e.buf, b...) }
func (e *encoder) str(s string)     { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) ino(i types.Ino)  { e.buf = append(e.buf, i[:]...) }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail("byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("bytes")
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *decoder) str() string { return string(d.bytes()) }

// capHint bounds a count-prefixed pre-allocation by the bytes actually left
// in the buffer (per = minimum encoded size of one element), so a hostile
// count cannot force a huge allocation before decoding fails.
func (d *decoder) capHint(n, per uint64) int {
	if rem := uint64(len(d.buf) - d.off); per > 0 && n > rem/per {
		n = rem / per
	}
	return int(n)
}

func (d *decoder) ino() types.Ino {
	var i types.Ino
	if d.err != nil {
		return i
	}
	if len(d.buf)-d.off < 16 {
		d.fail("ino")
		return i
	}
	copy(i[:], d.buf[d.off:d.off+16])
	d.off += 16
	return i
}
