package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"arkfs/internal/types"
)

func sampleInode() *types.Inode {
	return &types.Inode{
		Ino:   types.RootIno,
		Type:  types.TypeDir,
		Mode:  0755,
		Uid:   1000,
		Gid:   1000,
		Nlink: 3,
		Size:  4096,
		Atime: time.Second,
		Mtime: 2 * time.Second,
		Ctime: 3 * time.Second,
		ACL: types.ACL{
			{Tag: types.TagUserObj, Perms: 7},
			{Tag: types.TagUser, ID: 501, Perms: 5},
			{Tag: types.TagMask, Perms: 5},
		},
	}
}

func TestInodeRoundTrip(t *testing.T) {
	in := sampleInode()
	out, err := DecodeInode(EncodeInode(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSymlinkInodeRoundTrip(t *testing.T) {
	in := &types.Inode{Ino: types.RootIno, Type: types.TypeSymlink, Mode: 0777, Target: "/some/where/else"}
	out, err := DecodeInode(EncodeInode(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Target != in.Target || out.Type != types.TypeSymlink {
		t.Fatalf("symlink fields lost: %+v", out)
	}
}

func TestInodeDecodeRejectsDamage(t *testing.T) {
	good := EncodeInode(sampleInode())
	cases := map[string][]byte{
		"empty":     {},
		"bad ver":   append([]byte{99}, good[1:]...),
		"truncated": good[:len(good)/2],
		"trailing":  append(append([]byte{}, good...), 0xFF),
	}
	for name, buf := range cases {
		if _, err := DecodeInode(buf); !errors.Is(err, types.ErrIO) {
			t.Errorf("%s: want wrapped ErrIO, got %v", name, err)
		}
	}
}

func TestDentriesRoundTrip(t *testing.T) {
	src := types.NewInoSource(3)
	in := []Dentry{
		{Name: "alpha", Ino: src.Next(), Type: types.TypeRegular},
		{Name: "beta dir", Ino: src.Next(), Type: types.TypeDir},
		{Name: "γλώσσα", Ino: src.Next(), Type: types.TypeSymlink},
	}
	out, err := DecodeDentries(EncodeDentries(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch: %+v vs %+v", in, out)
	}
	// Empty directory.
	out, err = DecodeDentries(EncodeDentries(nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty block: %v %v", out, err)
	}
}

func sampleTxn() *Txn {
	src := types.NewInoSource(9)
	child := src.Next()
	return &Txn{
		ID:    42,
		Dir:   src.Next(),
		Kind:  TxnNormal,
		Stamp: 7 * time.Second,
		Ops: []Op{
			{Kind: OpSetInode, Inode: sampleInode()},
			{Kind: OpAddDentry, Name: "newfile", Ino: child, FType: types.TypeRegular},
			{Kind: OpDelDentry, Name: "oldfile"},
			{Kind: OpDelInode, Ino: src.Next()},
		},
	}
}

func TestTxnRoundTrip(t *testing.T) {
	in := sampleTxn()
	out, err := DecodeTxn(EncodeTxn(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestTxn2PCKindsRoundTrip(t *testing.T) {
	src := types.NewInoSource(11)
	for _, kind := range []TxnKind{TxnPrepare, TxnCommit, TxnAbort} {
		in := &Txn{ID: 7, Dir: src.Next(), Kind: kind, Peer: src.Next(), Ops: []Op{}}
		out, err := DecodeTxn(EncodeTxn(in))
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if out.Kind != kind || out.Peer != in.Peer {
			t.Fatalf("kind %d: lost fields: %+v", kind, out)
		}
	}
}

func TestTxnCRCDetectsBitFlips(t *testing.T) {
	buf := EncodeTxn(sampleTxn())
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 64; trial++ {
		mut := append([]byte{}, buf...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		if bytes.Equal(mut, buf) {
			continue
		}
		if _, err := DecodeTxn(mut); err == nil {
			t.Fatalf("bit flip at trial %d went undetected", trial)
		}
	}
}

func TestTxnTruncationDetected(t *testing.T) {
	buf := EncodeTxn(sampleTxn())
	for cut := 0; cut < len(buf); cut += 7 {
		if _, err := DecodeTxn(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

// Property: any inode with arbitrary field values survives a round trip.
func TestInodeRoundTripQuick(t *testing.T) {
	f := func(ino [16]byte, typ uint8, mode uint16, uid, gid, nlink uint32,
		size int64, target string, aclPerm uint8) bool {
		in := &types.Inode{
			Ino:  types.Ino(ino),
			Type: types.FileType(typ % 3),
			Mode: types.Mode(mode & 07777),
			Uid:  uid, Gid: gid, Nlink: nlink,
			Size:  size,
			Atime: time.Duration(size ^ 0x55), Mtime: 1, Ctime: -1,
			Target: target,
		}
		if aclPerm%2 == 0 {
			in.ACL = types.ACL{{Tag: types.TagUserObj, Perms: aclPerm & 7}}
		}
		out, err := DecodeInode(EncodeInode(in))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: dentry blocks with arbitrary names survive a round trip.
func TestDentriesRoundTripQuick(t *testing.T) {
	src := types.NewInoSource(17)
	f := func(names []string) bool {
		in := make([]Dentry, len(names))
		for i, n := range names {
			in[i] = Dentry{Name: n, Ino: src.Next(), Type: types.FileType(i % 3)}
		}
		out, err := DecodeDentries(EncodeDentries(in))
		if err != nil {
			return false
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
