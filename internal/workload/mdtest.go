// Package workload implements the paper's benchmark workloads over the
// common fsapi interface: the IO500 mdtest-easy and mdtest-hard
// configurations (§IV-B), an fio-style large-file sequential I/O generator,
// and the tar-based archiving scenario of §IV-D with a synthetic MS-COCO-like
// dataset and a bandwidth-throttled external (burst-buffer/EBS) store.
package workload

import (
	"context"
	"fmt"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// PhaseResult is one benchmark phase's outcome.
type PhaseResult struct {
	Name    string
	Ops     int
	Elapsed time.Duration
	Errors  int
}

// OpsPerSec returns the phase throughput.
func (p PhaseResult) OpsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Ops) / p.Elapsed.Seconds()
}

// MdtestConfig parameterizes both mdtest variants.
type MdtestConfig struct {
	// FilesPerProc is the per-process file count (IO500 uses 1M total).
	FilesPerProc int
	// FileSize: 0 for mdtest-easy (empty files); 3901 bytes in mdtest-hard.
	FileSize int
	// SharedDirs > 0 switches to the mdtest-hard layout: files spread over
	// this many directories accessed by arbitrary processes. Zero keeps the
	// mdtest-easy layout (each process in its own leaf directory).
	SharedDirs int
	// Root is the benchmark directory prefix.
	Root string
}

// MdtestEasy runs the CREATE / STAT / DELETE phases with empty files, each
// process in its own leaf directory, fsync between phases (IO500
// mdtest-easy). mounts supplies one FileSystem per process. Benchmark
// phases run under a background context: the workload itself is the
// deadline authority, not any caller.
func MdtestEasy(env sim.Env, mounts []fsapi.FileSystem, cfg MdtestConfig) ([]PhaseResult, error) {
	ctx := context.Background()
	if cfg.Root == "" {
		cfg.Root = "/mdtest-easy"
	}
	if err := setupTree(ctx, mounts[0], cfg.Root, len(mounts)); err != nil {
		return nil, err
	}
	paths := easyPaths(cfg, len(mounts))

	var results []PhaseResult
	create := runPhase(env, "CREATE", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for _, p := range paths[proc] {
			f, err := m.Open(ctx, p, types.OWronly|types.OCreate|types.OExcl, 0644)
			if err != nil {
				errs++
				continue
			}
			_ = f.Close()
		}
		if flushAll(m) != nil {
			errs++
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, create)

	stat := runPhase(env, "STAT", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for _, p := range paths[proc] {
			if _, err := m.Stat(ctx, p); err != nil {
				errs++
			}
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, stat)

	del := runPhase(env, "DELETE", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for _, p := range paths[proc] {
			if err := m.Unlink(ctx, p); err != nil {
				errs++
			}
		}
		if flushAll(m) != nil {
			errs++
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, del)
	return results, nil
}

// MdtestHard runs WRITE / STAT / READ / DELETE with small files spread over
// shared directories accessed by arbitrary processes (IO500 mdtest-hard).
func MdtestHard(env sim.Env, mounts []fsapi.FileSystem, cfg MdtestConfig) ([]PhaseResult, error) {
	ctx := context.Background()
	if cfg.Root == "" {
		cfg.Root = "/mdtest-hard"
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 3901
	}
	if cfg.SharedDirs <= 0 {
		cfg.SharedDirs = 8
	}
	if err := setupTree(ctx, mounts[0], cfg.Root, cfg.SharedDirs); err != nil {
		return nil, err
	}
	paths := hardPaths(cfg, len(mounts))
	payload := make([]byte, cfg.FileSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	var results []PhaseResult
	write := runPhase(env, "WRITE", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for _, p := range paths[proc] {
			f, err := m.Open(ctx, p, types.OWronly|types.OCreate, 0644)
			if err != nil {
				errs++
				continue
			}
			if _, err := f.Write(payload); err != nil {
				errs++
			}
			if err := f.Close(); err != nil {
				errs++
			}
		}
		if flushAll(m) != nil {
			errs++
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, write)

	stat := runPhase(env, "STAT", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for _, p := range paths[proc] {
			if _, err := m.Stat(ctx, p); err != nil {
				errs++
			}
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, stat)

	read := runPhase(env, "READ", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		buf := make([]byte, cfg.FileSize)
		for _, p := range paths[proc] {
			f, err := m.Open(ctx, p, types.ORdonly, 0)
			if err != nil {
				errs++
				continue
			}
			if _, err := f.ReadAt(buf, 0); err != nil && err.Error() != "EOF" {
				errs++
			}
			_ = f.Close()
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, read)

	del := runPhase(env, "DELETE", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for _, p := range paths[proc] {
			if err := m.Unlink(ctx, p); err != nil {
				errs++
			}
		}
		if flushAll(m) != nil {
			errs++
		}
		return errs
	}, cfg.FilesPerProc)
	results = append(results, del)
	return results, nil
}

// easyPaths lays out per-process private leaf directories.
func easyPaths(cfg MdtestConfig, procs int) [][]string {
	out := make([][]string, procs)
	for p := 0; p < procs; p++ {
		out[p] = make([]string, cfg.FilesPerProc)
		for i := 0; i < cfg.FilesPerProc; i++ {
			out[p][i] = fmt.Sprintf("%s/p%03d/f%07d", cfg.Root, p, i)
		}
	}
	return out
}

// hardPaths spreads each process's files across the shared directories in a
// process-dependent pattern (an "arbitrary directory" per op, per §IV-B).
func hardPaths(cfg MdtestConfig, procs int) [][]string {
	out := make([][]string, procs)
	for p := 0; p < procs; p++ {
		out[p] = make([]string, cfg.FilesPerProc)
		for i := 0; i < cfg.FilesPerProc; i++ {
			dir := (p*31 + i*17) % cfg.SharedDirs
			out[p][i] = fmt.Sprintf("%s/p%03d/f.%03d.%07d", cfg.Root, dir, p, i)
		}
	}
	return out
}

// setupTree creates the root and numbered subdirectories before timing
// starts (mdtest does its tree creation outside the measured phases).
func setupTree(ctx context.Context, m fsapi.FileSystem, root string, dirs int) error {
	if err := m.Mkdir(ctx, root, 0777); err != nil {
		return fmt.Errorf("workload: setup %s: %w", root, err)
	}
	for d := 0; d < dirs; d++ {
		if err := m.Mkdir(ctx, fmt.Sprintf("%s/p%03d", root, d), 0777); err != nil {
			return fmt.Errorf("workload: setup dir %d: %w", d, err)
		}
	}
	return flushAll(m)
}

// runPhase executes fn on every process concurrently and measures the
// aggregate elapsed (virtual) time.
func runPhase(env sim.Env, name string, mounts []fsapi.FileSystem,
	fn func(proc int, m fsapi.FileSystem) int, opsPerProc int) PhaseResult {
	start := env.Now()
	g := sim.NewGroup(env)
	errsCh := make([]int, len(mounts))
	for i, m := range mounts {
		i, m := i, m
		g.Go(func() { errsCh[i] = fn(i, m) })
	}
	g.Wait()
	totalErrs := 0
	for _, e := range errsCh {
		totalErrs += e
	}
	return PhaseResult{
		Name:    name,
		Ops:     opsPerProc * len(mounts),
		Elapsed: env.Now() - start,
		Errors:  totalErrs,
	}
}

// flushAll is the fsync()-after-phase step.
func flushAll(m fsapi.FileSystem) error { return m.FlushAll(context.Background()) }
