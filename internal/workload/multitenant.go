package workload

import (
	"context"
	"fmt"
	"math/rand"

	"arkfs/internal/fsapi"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// MultiTenantConfig parameterizes the multi-tenant mixed workload.
type MultiTenantConfig struct {
	// OpsPerProc is how many create+stat (and occasional delete) rounds each
	// process runs.
	OpsPerProc int
	// Dirs is the shared directory pool the zipfian popularity draws from.
	Dirs int
	// ZipfS is the zipf skew exponent (> 1). Default 1.2: a few hot
	// directories absorb most traffic, the tail stays warm.
	ZipfS float64
	// Seed feeds the per-process PRNGs; the same seed yields byte-identical
	// path sequences and therefore byte-identical per-tenant accounting.
	Seed int64
	// Root is the workload directory prefix.
	Root string
}

func (c *MultiTenantConfig) fill() {
	if c.OpsPerProc <= 0 {
		c.OpsPerProc = 100
	}
	if c.Dirs <= 0 {
		c.Dirs = 8
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Root == "" {
		c.Root = "/multitenant"
	}
}

// MultiTenant drives a tenant-colored mixed metadata workload: every process
// (each mount is one tenant's client — the harness assigns core.Options.Tenant)
// issues creates, stats, and deletes against a shared directory pool whose
// popularity follows a seeded zipfian distribution, so tenants contend on the
// same few hot directories the way real archive ingest does. Ops and paths are
// precomputed deterministically from cfg.Seed, so a virtual-clock run produces
// the same per-tenant op/byte accounting every time.
func MultiTenant(env sim.Env, mounts []fsapi.FileSystem, cfg MultiTenantConfig) ([]PhaseResult, error) {
	ctx := context.Background()
	cfg.fill()
	if err := setupTree(ctx, mounts[0], cfg.Root, cfg.Dirs); err != nil {
		return nil, err
	}

	// Precompute each process's directory draws outside the timed phase: the
	// PRNG sequence depends only on (Seed, proc), never on scheduling.
	draws := make([][]int, len(mounts))
	for p := range mounts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
		z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Dirs-1))
		draws[p] = make([]int, cfg.OpsPerProc)
		for i := range draws[p] {
			draws[p][i] = int(z.Uint64())
		}
	}

	var results []PhaseResult
	mixed := runPhase(env, "MIXED", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for i, dir := range draws[proc] {
			p := fmt.Sprintf("%s/p%03d/t%03d.%05d", cfg.Root, dir, proc, i)
			f, err := m.Open(ctx, p, types.OWronly|types.OCreate|types.OExcl, 0644)
			if err != nil {
				errs++
				continue
			}
			_ = f.Close()
			if _, err := m.Stat(ctx, p); err != nil {
				errs++
			}
			// Every fourth file is deleted again: the mix keeps unlink (and
			// its forwarded-op path) in every tenant's profile.
			if i%4 == 3 {
				if err := m.Unlink(ctx, p); err != nil {
					errs++
				}
			}
		}
		if flushAll(m) != nil {
			errs++
		}
		return errs
	}, cfg.OpsPerProc)
	results = append(results, mixed)
	return results, nil
}
