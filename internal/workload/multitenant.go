package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// MultiTenantConfig parameterizes the multi-tenant mixed workload.
type MultiTenantConfig struct {
	// OpsPerProc is how many create+stat (and occasional delete) rounds each
	// process runs.
	OpsPerProc int
	// Dirs is the shared directory pool the zipfian popularity draws from.
	Dirs int
	// ZipfS is the zipf skew exponent (> 1). Default 1.2: a few hot
	// directories absorb most traffic, the tail stays warm.
	ZipfS float64
	// Seed feeds the per-process PRNGs; the same seed yields byte-identical
	// path sequences and therefore byte-identical per-tenant accounting.
	Seed int64
	// Root is the workload directory prefix.
	Root string
}

func (c *MultiTenantConfig) fill() {
	if c.OpsPerProc <= 0 {
		c.OpsPerProc = 100
	}
	if c.Dirs <= 0 {
		c.Dirs = 8
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Root == "" {
		c.Root = "/multitenant"
	}
}

// MultiTenant drives a tenant-colored mixed metadata workload: every process
// (each mount is one tenant's client — the harness assigns core.Options.Tenant)
// issues creates, stats, and deletes against a shared directory pool whose
// popularity follows a seeded zipfian distribution, so tenants contend on the
// same few hot directories the way real archive ingest does. Ops and paths are
// precomputed deterministically from cfg.Seed, so a virtual-clock run produces
// the same per-tenant op/byte accounting every time.
func MultiTenant(env sim.Env, mounts []fsapi.FileSystem, cfg MultiTenantConfig) ([]PhaseResult, error) {
	ctx := context.Background()
	cfg.fill()
	if err := setupTree(ctx, mounts[0], cfg.Root, cfg.Dirs); err != nil {
		return nil, err
	}

	// Precompute each process's directory draws outside the timed phase: the
	// PRNG sequence depends only on (Seed, proc), never on scheduling.
	draws := make([][]int, len(mounts))
	for p := range mounts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
		z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Dirs-1))
		draws[p] = make([]int, cfg.OpsPerProc)
		for i := range draws[p] {
			draws[p][i] = int(z.Uint64())
		}
	}

	var results []PhaseResult
	mixed := runPhase(env, "MIXED", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for i, dir := range draws[proc] {
			p := fmt.Sprintf("%s/p%03d/t%03d.%05d", cfg.Root, dir, proc, i)
			f, err := m.Open(ctx, p, types.OWronly|types.OCreate|types.OExcl, 0644)
			if err != nil {
				errs++
				continue
			}
			_ = f.Close()
			if _, err := m.Stat(ctx, p); err != nil {
				errs++
			}
			// Every fourth file is deleted again: the mix keeps unlink (and
			// its forwarded-op path) in every tenant's profile.
			if i%4 == 3 {
				if err := m.Unlink(ctx, p); err != nil {
					errs++
				}
			}
		}
		if flushAll(m) != nil {
			errs++
		}
		return errs
	}, cfg.OpsPerProc)
	results = append(results, mixed)
	return results, nil
}

// BurstConfig parameterizes MultiTenantBurst: a paced multi-tenant burst
// against directories led by a dedicated service mount, with an optional set
// of hostile processes offering several times their admitted rate. It is the
// workload half of the overload scenarios: the harness supplies a deployment
// with (or without) admission control and asserts on the per-process results.
type BurstConfig struct {
	// OpsPerProc is how many creates each polite process submits.
	OpsPerProc int
	// Interval is the polite think time between submissions; a polite
	// process offers 1/Interval ops per second. Default 5ms.
	Interval time.Duration
	// Dirs, ZipfS, Seed, Root: shared directory pool as in MultiTenantConfig.
	Dirs  int
	ZipfS float64
	Seed  int64
	Root  string
	// HostileProcs marks the last N non-service mounts as hostile: each runs
	// HostileStreams concurrent submission loops (default 8) at the polite
	// Interval, each submitting OpsPerProc creates, so one hostile tenant
	// offers HostileStreams× a polite tenant's load over the same window.
	HostileProcs   int
	HostileStreams int
}

func (c *BurstConfig) fill() {
	if c.OpsPerProc <= 0 {
		c.OpsPerProc = 50
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.Dirs <= 0 {
		c.Dirs = 4
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Root == "" {
		c.Root = "/overload"
	}
	if c.HostileStreams <= 0 {
		c.HostileStreams = 8
	}
}

// BurstResult is one process's outcome from MultiTenantBurst.
type BurstResult struct {
	Hostile bool
	// Attempted counts submitted creates; each lands in exactly one of
	// Acked (the create succeeded — the op was acknowledged), Pushback
	// (typed retry-after refusal surfaced after the client's budget),
	// Timeout, or OtherErr.
	Attempted, Acked, Pushback, Timeout, OtherErr int
	// Elapsed is the process's busy window on the virtual clock.
	Elapsed time.Duration
	// AckedPaths lists every acknowledged create, for oracle verification.
	AckedPaths []string
	// Latencies holds one per-submission latency (including internal
	// retries), in submission order.
	Latencies []time.Duration
}

// P99 returns the process's 99th-percentile submission latency.
func (r *BurstResult) P99() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}

// MultiTenantBurst drives the burst. mounts[0] is the service mount: it owns
// (and leads) the directory pool and issues no load, so every tenant op is a
// forwarded RPC that crosses the leader's admission gate. mounts[1:] are one
// process per tenant; the last cfg.HostileProcs of them are hostile. All
// randomness is precomputed from cfg.Seed, so a virtual-clock run is
// deterministic end to end.
func MultiTenantBurst(env sim.Env, mounts []fsapi.FileSystem, cfg BurstConfig) ([]BurstResult, error) {
	ctx := context.Background()
	cfg.fill()
	if err := setupTree(ctx, mounts[0], cfg.Root, cfg.Dirs); err != nil {
		return nil, err
	}
	// Pin leadership of every pool directory on the service mount: the first
	// operation inside a directory acquires its lease, and the mkdirs above
	// only claimed the parent.
	for d := 0; d < cfg.Dirs; d++ {
		p := fmt.Sprintf("%s/p%03d/.lead", cfg.Root, d)
		f, err := mounts[0].Open(ctx, p, types.OWronly|types.OCreate|types.OExcl, 0644)
		if err != nil {
			return nil, fmt.Errorf("workload: pin leader %s: %w", p, err)
		}
		_ = f.Close()
	}

	procs := len(mounts) - 1
	draws := make([][]int, procs)
	for p := 0; p < procs; p++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*7919))
		z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Dirs-1))
		n := cfg.OpsPerProc
		if p >= procs-cfg.HostileProcs {
			n = cfg.OpsPerProc * cfg.HostileStreams // upper bound per stream set
		}
		draws[p] = make([]int, n)
		for i := range draws[p] {
			draws[p][i] = int(z.Uint64())
		}
	}

	results := make([]BurstResult, procs)
	var mu sync.Mutex
	start := env.Now()
	wg := sim.NewGroup(env)
	gidx := 0 // global stream index, for the de-phasing offsets below
	for p := 0; p < procs; p++ {
		proc, m := p, mounts[1+p]
		hostile := proc >= procs-cfg.HostileProcs
		results[proc].Hostile = hostile
		streams := 1
		if hostile {
			streams = cfg.HostileStreams
		}
		for s := 0; s < streams; s++ {
			stream := s
			// Distinct phase offsets keep streams from submitting at the
			// same virtual instant: same-instant arrivals race for queue
			// positions on the real scheduler, which is the one ordering a
			// virtual-clock run cannot make reproducible.
			phase := time.Duration(gidx+1) * 131 * time.Microsecond
			gidx++
			wg.Go(func() {
				local := BurstResult{}
				env.Sleep(phase)
				for i := 0; i < cfg.OpsPerProc; i++ {
					env.Sleep(cfg.Interval)
					dir := draws[proc][(stream*cfg.OpsPerProc+i)%len(draws[proc])]
					path := fmt.Sprintf("%s/p%03d/t%02d.s%d.%05d", cfg.Root, dir, proc, stream, i)
					t0 := env.Now()
					f, err := m.Open(ctx, path, types.OWronly|types.OCreate|types.OExcl, 0644)
					if err == nil {
						_ = f.Close()
					}
					local.Attempted++
					local.Latencies = append(local.Latencies, env.Now()-t0)
					switch {
					case err == nil:
						local.Acked++
						local.AckedPaths = append(local.AckedPaths, path)
					case errors.Is(err, types.ErrAgain):
						local.Pushback++
					case errors.Is(err, types.ErrTimedOut) || errors.Is(err, context.DeadlineExceeded):
						local.Timeout++
					default:
						local.OtherErr++
					}
				}
				elapsed := env.Now() - start
				mu.Lock()
				r := &results[proc]
				r.Attempted += local.Attempted
				r.Acked += local.Acked
				r.Pushback += local.Pushback
				r.Timeout += local.Timeout
				r.OtherErr += local.OtherErr
				r.AckedPaths = append(r.AckedPaths, local.AckedPaths...)
				r.Latencies = append(r.Latencies, local.Latencies...)
				if elapsed > r.Elapsed {
					r.Elapsed = elapsed
				}
				mu.Unlock()
			})
		}
	}
	wg.Wait()
	// Merge order of a hostile proc's streams is scheduler-dependent only in
	// wall order, not in totals; sort the path lists so results are stable.
	for i := range results {
		sort.Strings(results[i].AckedPaths)
		sort.Slice(results[i].Latencies, func(a, b int) bool {
			return results[i].Latencies[a] < results[i].Latencies[b]
		})
	}
	return results, nil
}
