package workload

import (
	"context"
	"fmt"

	"arkfs/internal/fsapi"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// LeaseChurnConfig parameterizes the lease-acquisition scalability workload.
type LeaseChurnConfig struct {
	// Dirs is the number of fresh directories each process works through;
	// every one costs a lease acquire on whichever shard the ring routes it
	// to.
	Dirs int
	// FilesPerDir is the per-directory create count (small on purpose: the
	// acquire wave, not per-file work, is the resource under test).
	FilesPerDir int
	// Root is the benchmark directory prefix.
	Root string
}

// LeaseChurn measures directory-lease acquisition at scale: every process
// makes Dirs fresh directories under its private subtree and creates
// FilesPerDir files in each. Entering a fresh directory is one lease acquire
// against its shard, so with thousands of processes the acquire wave — not
// file I/O — is the contended resource; for the same reason there is no
// closing flush (the creates land in per-directory journals without touching
// the shared store on the measured path).
//
// Unlike mdtest's setupTree, each process mkdirs its own subtree in an
// unmeasured warm-up: otherwise process 0 would hold every parent lease and
// the measured phase would serialize on its RPC workers instead of the lease
// tier.
func LeaseChurn(env sim.Env, mounts []fsapi.FileSystem, cfg LeaseChurnConfig) (PhaseResult, error) {
	ctx := context.Background()
	if cfg.Root == "" {
		cfg.Root = "/lease-churn"
	}
	if err := mounts[0].Mkdir(ctx, cfg.Root, 0777); err != nil {
		return PhaseResult{}, fmt.Errorf("workload: setup %s: %w", cfg.Root, err)
	}
	warm := runPhase(env, "WARMUP", mounts, func(proc int, m fsapi.FileSystem) int {
		if err := m.Mkdir(ctx, fmt.Sprintf("%s/p%04d", cfg.Root, proc), 0777); err != nil {
			return 1
		}
		return 0
	}, 1)
	if warm.Errors > 0 {
		return PhaseResult{}, fmt.Errorf("workload: lease-churn warm-up: %d errors", warm.Errors)
	}
	res := runPhase(env, "ACQUIRE", mounts, func(proc int, m fsapi.FileSystem) int {
		errs := 0
		for d := 0; d < cfg.Dirs; d++ {
			dir := fmt.Sprintf("%s/p%04d/d%04d", cfg.Root, proc, d)
			if err := m.Mkdir(ctx, dir, 0755); err != nil {
				errs++
				continue
			}
			for f := 0; f < cfg.FilesPerDir; f++ {
				fh, err := m.Open(ctx, fmt.Sprintf("%s/f%04d", dir, f),
					types.OWronly|types.OCreate|types.OExcl, 0644)
				if err != nil {
					errs++
					continue
				}
				_ = fh.Close()
			}
		}
		return errs
	}, cfg.Dirs*(cfg.FilesPerDir+1))
	return res, nil
}
