package workload

import (
	"context"
	"testing"
	"time"

	"arkfs/internal/core"
	"arkfs/internal/fsapi"
	"arkfs/internal/journal"
	"arkfs/internal/lease"
	"arkfs/internal/objstore"
	"arkfs/internal/prt"
	"arkfs/internal/rpc"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// arkMounts builds an ArkFS deployment with n client mounts on env.
func arkMounts(t *testing.T, env sim.Env, n int) []fsapi.FileSystem {
	t.Helper()
	net := rpc.NewNetwork(env, sim.NetModel{})
	tr := prt.New(objstore.NewMemStore(), 64<<10)
	if err := core.Format(tr); err != nil {
		t.Fatal(err)
	}
	mgr := lease.NewManager(net, lease.Options{Period: 2 * time.Second})
	_ = mgr
	mounts := make([]fsapi.FileSystem, n)
	for i := 0; i < n; i++ {
		c := core.New(net, tr, core.Options{
			ID:          string(rune('a' + i)),
			Cred:        types.Cred{Uid: 1000, Gid: 1000},
			LeasePeriod: 2 * time.Second,
			Journal:     journal.Config{CommitInterval: 50 * time.Millisecond, CommitWorkers: 2, CheckpointWorkers: 2},
		})
		mounts[i] = fsapi.Adapt(c)
	}
	return mounts
}

func TestMdtestEasyOnArkFS(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	mounts := arkMounts(t, env, 4)
	res, err := MdtestEasy(env, mounts, MdtestConfig{FilesPerProc: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("phases: %v", res)
	}
	for _, p := range res {
		if p.Errors != 0 {
			t.Errorf("phase %s: %d errors", p.Name, p.Errors)
		}
		if p.Ops != 200 {
			t.Errorf("phase %s: %d ops", p.Name, p.Ops)
		}
		if p.OpsPerSec() <= 0 {
			t.Errorf("phase %s: zero throughput", p.Name)
		}
	}
	// All files deleted: the tree has only the per-proc dirs left.
	for i := 0; i < 4; i++ {
		ents, err := mounts[0].Readdir(context.Background(), "/mdtest-easy/p00"+string(rune('0'+i)))
		if err != nil || len(ents) != 0 {
			t.Errorf("leftovers in p%d: %v, %v", i, ents, err)
		}
	}
}

func TestMdtestHardOnArkFS(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	mounts := arkMounts(t, env, 4)
	res, err := MdtestHard(env, mounts, MdtestConfig{FilesPerProc: 25, SharedDirs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("phases: %v", res)
	}
	for _, p := range res {
		if p.Errors != 0 {
			t.Errorf("phase %s: %d errors", p.Name, p.Errors)
		}
	}
}

func TestFioOnArkFS(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	mounts := arkMounts(t, env, 2)
	w, r, err := Fio(env, mounts, FioConfig{FileSize: 1 << 20, ReqSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if w.Bytes != 2<<20 || r.Bytes != 2<<20 {
		t.Fatalf("bytes: w=%d r=%d", w.Bytes, r.Bytes)
	}
	if w.BytesPerSec() <= 0 || r.BytesPerSec() <= 0 {
		t.Fatal("zero bandwidth")
	}
}

func TestDatasetGenerator(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Files = 1000
	d := NewDataset(cfg)
	if len(d.Files) != 1000 {
		t.Fatalf("files: %d", len(d.Files))
	}
	var total int64
	for _, f := range d.Files {
		if f.Size < cfg.MinSize || f.Size > cfg.MaxSize {
			t.Fatalf("size %d out of [%d,%d]", f.Size, cfg.MinSize, cfg.MaxSize)
		}
		if f.Category < 0 || f.Category >= cfg.Categories {
			t.Fatalf("category %d", f.Category)
		}
		total += f.Size
	}
	if total != d.Total {
		t.Fatalf("total mismatch: %d vs %d", total, d.Total)
	}
	// Deterministic.
	d2 := NewDataset(cfg)
	if d2.Total != d.Total || d2.Files[500] != d.Files[500] {
		t.Fatal("generator not deterministic")
	}
}

func TestArchiveUnarchiveRoundTripOnArkFS(t *testing.T) {
	env := sim.NewRealEnv()
	defer env.Shutdown()
	mounts := arkMounts(t, env, 1)
	cfg := DatasetConfig{Files: 64, MinSize: 512, MaxSize: 8 << 10, Categories: 4, Seed: 7}
	d := NewDataset(cfg)
	img, err := BuildTarImage(d, 7)
	if err != nil {
		t.Fatal(err)
	}
	ext := NewExternalStore(env, 1<<40) // fast device: functional test
	acfg := ArchiveConfig{External: ext}

	res, err := Archive(env, mounts[0], d, img, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 64 || res.Bytes != d.Total {
		t.Fatalf("archive result: %+v (want %d bytes)", res, d.Total)
	}
	// Every extracted file is stat-able with the right size.
	for _, f := range d.Files[:8] {
		st, err := mounts[0].Stat(context.Background(), "/archive/cat-0"+string(rune('0'+f.Category))+"/"+f.Name)
		if err != nil || st.Size != f.Size {
			t.Fatalf("extracted %s: %+v, %v", f.Name, st, err)
		}
	}
	ures, err := Unarchive(env, mounts[0], d, acfg)
	if err != nil {
		t.Fatal(err)
	}
	if ures.Files != 64 || ures.Bytes != d.Total {
		t.Fatalf("unarchive result: %+v", ures)
	}
}

func TestExternalStoreChargesBandwidth(t *testing.T) {
	env := sim.NewVirtEnv()
	var elapsed time.Duration
	env.Run(func() {
		ext := NewExternalStore(env, 1<<20) // 1 MiB/s
		start := env.Now()
		ext.Transfer(1 << 20)
		elapsed = env.Now() - start
	})
	if elapsed != time.Second {
		t.Fatalf("1 MiB at 1 MiB/s took %v", elapsed)
	}
}
