package workload

import (
	"context"
	"fmt"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// FioConfig parameterizes the large-file sequential I/O benchmark (the
// paper: 32 processes, 32 GiB per file, 128 KiB requests, fsync + cache drop
// between the write and read passes).
type FioConfig struct {
	FileSize int64
	ReqSize  int64
	Root     string
	// DropCaches is invoked between the write and read passes so reads hit
	// the storage path, not the local cache (system-specific hook).
	DropCaches func()
}

// BandwidthResult reports one fio pass.
type BandwidthResult struct {
	Name    string
	Bytes   int64
	Elapsed time.Duration
}

// BytesPerSec returns the aggregate bandwidth.
func (r BandwidthResult) BytesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds()
}

// GiBps returns the bandwidth in GiB/s, the unit of Fig. 6.
func (r BandwidthResult) GiBps() float64 { return r.BytesPerSec() / (1 << 30) }

// Fio writes then reads one large file per process sequentially and reports
// the aggregate WRITE and READ bandwidth.
func Fio(env sim.Env, mounts []fsapi.FileSystem, cfg FioConfig) (write, read BandwidthResult, err error) {
	ctx := context.Background()
	if cfg.Root == "" {
		cfg.Root = "/fio"
	}
	if cfg.ReqSize <= 0 {
		cfg.ReqSize = 128 << 10
	}
	if err := mounts[0].Mkdir(ctx, cfg.Root, 0777); err != nil {
		return write, read, fmt.Errorf("workload: fio setup: %w", err)
	}
	if err := mounts[0].FlushAll(ctx); err != nil {
		return write, read, err
	}
	totalBytes := cfg.FileSize * int64(len(mounts))
	path := func(p int) string { return fmt.Sprintf("%s/file-%03d", cfg.Root, p) }

	// WRITE pass: sequential writes, fsync at the end (as fio does).
	req := make([]byte, cfg.ReqSize)
	for i := range req {
		req[i] = byte(i)
	}
	start := env.Now()
	g := sim.NewGroup(env)
	errs := make([]error, len(mounts))
	for i, m := range mounts {
		i, m := i, m
		g.Go(func() {
			f, err := m.Open(ctx, path(i), types.OWronly|types.OCreate|types.OTrunc, 0644)
			if err != nil {
				errs[i] = err
				return
			}
			for off := int64(0); off < cfg.FileSize; off += cfg.ReqSize {
				n := cfg.ReqSize
				if r := cfg.FileSize - off; n > r {
					n = r
				}
				if _, err := f.WriteAt(req[:n], off); err != nil {
					errs[i] = err
					return
				}
			}
			if err := f.Fsync(ctx); err != nil {
				errs[i] = err
				return
			}
			errs[i] = f.Close()
		})
	}
	g.Wait()
	write = BandwidthResult{Name: "WRITE", Bytes: totalBytes, Elapsed: env.Now() - start}
	for _, e := range errs {
		if e != nil {
			return write, read, fmt.Errorf("workload: fio write: %w", e)
		}
	}

	// Drop caches so the read pass hits storage.
	if cfg.DropCaches != nil {
		cfg.DropCaches()
	}

	// READ pass: sequential reads.
	start = env.Now()
	g = sim.NewGroup(env)
	for i, m := range mounts {
		i, m := i, m
		g.Go(func() {
			f, err := m.Open(ctx, path(i), types.ORdonly, 0)
			if err != nil {
				errs[i] = err
				return
			}
			buf := make([]byte, cfg.ReqSize)
			for off := int64(0); off < cfg.FileSize; off += cfg.ReqSize {
				n := cfg.ReqSize
				if r := cfg.FileSize - off; n > r {
					n = r
				}
				if _, err := f.ReadAt(buf[:n], off); err != nil && err.Error() != "EOF" {
					errs[i] = err
					return
				}
			}
			errs[i] = f.Close()
		})
	}
	g.Wait()
	read = BandwidthResult{Name: "READ", Bytes: totalBytes, Elapsed: env.Now() - start}
	for _, e := range errs {
		if e != nil {
			return write, read, fmt.Errorf("workload: fio read: %w", e)
		}
	}
	return write, read, nil
}
