package workload

import (
	"archive/tar"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"arkfs/internal/fsapi"
	"arkfs/internal/sim"
	"arkfs/internal/types"
)

// Dataset is a synthetic image corpus standing in for MS-COCO (the paper:
// 41 K images of tens-to-hundreds of KB, ≈7 GB per dataset). Sizes are drawn
// log-uniformly from [MinSize, MaxSize] with a fixed seed.
type Dataset struct {
	Files []DatasetFile
	Total int64
}

// DatasetFile is one synthetic image.
type DatasetFile struct {
	Name string
	Size int64
	// Category buckets files the way the paper's scenario "categorizes by
	// date or data type" after extraction.
	Category int
}

// DatasetConfig parameterizes the generator.
type DatasetConfig struct {
	Files      int
	MinSize    int64
	MaxSize    int64
	Categories int
	Seed       int64
}

// DefaultDatasetConfig mirrors MS-COCO's shape scaled for in-memory runs:
// the file-count-to-size ratio matches (tens of KB per image).
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{Files: 4096, MinSize: 2 << 10, MaxSize: 96 << 10, Categories: 16, Seed: 42}
}

// NewDataset generates the corpus deterministically.
func NewDataset(cfg DatasetConfig) *Dataset {
	if cfg.Files <= 0 {
		cfg.Files = 4096
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 2 << 10
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}
	if cfg.Categories <= 0 {
		cfg.Categories = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Files: make([]DatasetFile, cfg.Files)}
	logMin, logMax := float64(cfg.MinSize), float64(cfg.MaxSize)
	for i := range d.Files {
		// Log-uniform size draw.
		u := rng.Float64()
		size := int64(logMin * pow(logMax/logMin, u))
		d.Files[i] = DatasetFile{
			Name:     fmt.Sprintf("img_%06d.jpg", i),
			Size:     size,
			Category: rng.Intn(cfg.Categories),
		}
		d.Total += size
	}
	return d
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// ExternalStore models the burst buffer / EBS volume the datasets move
// to and from: a sequential device with a fixed bandwidth (1 GB/s in the
// paper) whose transfers charge simulated time.
type ExternalStore struct {
	env       sim.Env
	Bandwidth int64 // bytes per second
}

// NewExternalStore creates the device model.
func NewExternalStore(env sim.Env, bandwidth int64) *ExternalStore {
	if bandwidth <= 0 {
		bandwidth = 1 << 30
	}
	return &ExternalStore{env: env, Bandwidth: bandwidth}
}

// Transfer charges the device time for moving n bytes.
func (e *ExternalStore) Transfer(n int64) {
	if n > 0 {
		e.env.Sleep(time.Duration(float64(n) / float64(e.Bandwidth) * float64(time.Second)))
	}
}

// externalReader streams a dataset's tar image out of the external store,
// charging bandwidth as bytes are consumed.
type externalReader struct {
	ext  *ExternalStore
	data []byte
	off  int
}

func (r *externalReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	r.ext.Transfer(int64(n))
	return n, nil
}

// ArchiveResult reports one archiving scenario pass.
type ArchiveResult struct {
	Name    string
	Files   int
	Bytes   int64
	Elapsed time.Duration
}

// ArchiveConfig parameterizes the §IV-D scenario.
type ArchiveConfig struct {
	Root string
	// External is the burst-buffer/EBS model.
	External *ExternalStore
	// Payload fills file contents; tiny payload patterns keep memory modest
	// while exercising real tar framing.
	Seed int64
}

// BuildTarImage renders the dataset as a tar stream (the form in which the
// administrator daemon moves it from the burst buffer).
func BuildTarImage(d *Dataset, seed int64) ([]byte, error) {
	var buf writeCounterBuffer
	tw := tar.NewWriter(&buf)
	body := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(seed))
	_, _ = rng.Read(body)
	for _, f := range d.Files {
		hdr := &tar.Header{
			Name: fmt.Sprintf("dataset/%s", f.Name),
			Mode: 0644,
			Size: f.Size,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, err
		}
		remaining := f.Size
		for remaining > 0 {
			n := int64(len(body))
			if n > remaining {
				n = remaining
			}
			if _, err := tw.Write(body[:n]); err != nil {
				return nil, err
			}
			remaining -= n
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.data, nil
}

type writeCounterBuffer struct {
	data []byte
}

func (b *writeCounterBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// Archive runs the paper's Archiving scenario for one process: stream the
// dataset's tar image from the external store into the file system, then
// extract it, categorizing files into per-category directories.
func Archive(env sim.Env, m fsapi.FileSystem, d *Dataset, tarImage []byte, cfg ArchiveConfig) (ArchiveResult, error) {
	ctx := context.Background()
	start := env.Now()
	root := cfg.Root
	if root == "" {
		root = "/archive"
	}
	if err := m.Mkdir(ctx, root, 0777); err != nil {
		return ArchiveResult{}, fmt.Errorf("workload: archive setup: %w", err)
	}

	// 1) Move the tar from the burst buffer into campaign storage.
	tarPath := root + "/dataset.tar"
	dst, err := m.Open(ctx, tarPath, types.OWronly|types.OCreate|types.OTrunc, 0644)
	if err != nil {
		return ArchiveResult{}, err
	}
	src := &externalReader{ext: cfg.External, data: tarImage}
	if _, err := io.CopyBuffer(dst, src, make([]byte, 1<<20)); err != nil {
		return ArchiveResult{}, fmt.Errorf("workload: tar ingest: %w", err)
	}
	if err := dst.Fsync(ctx); err != nil {
		return ArchiveResult{}, err
	}
	if err := dst.Close(); err != nil {
		return ArchiveResult{}, err
	}

	// 2) Extract and categorize.
	catDirs := map[int]string{}
	for _, f := range d.Files {
		if _, ok := catDirs[f.Category]; !ok {
			dir := fmt.Sprintf("%s/cat-%02d", root, f.Category)
			if err := m.Mkdir(ctx, dir, 0777); err != nil {
				return ArchiveResult{}, err
			}
			catDirs[f.Category] = dir
		}
	}
	in, err := m.Open(ctx, tarPath, types.ORdonly, 0)
	if err != nil {
		return ArchiveResult{}, err
	}
	tr := tar.NewReader(in)
	idx := 0
	var moved int64
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return ArchiveResult{}, fmt.Errorf("workload: tar extract: %w", err)
		}
		cat := d.Files[idx].Category
		out, err := m.Open(ctx, fmt.Sprintf("%s/%s", catDirs[cat], d.Files[idx].Name),
			types.OWronly|types.OCreate|types.OTrunc, 0644)
		if err != nil {
			return ArchiveResult{}, err
		}
		n, err := io.CopyBuffer(out, tr, make([]byte, 1<<20))
		if err != nil {
			return ArchiveResult{}, err
		}
		if n != hdr.Size {
			return ArchiveResult{}, fmt.Errorf("workload: extracted %d of %d bytes", n, hdr.Size)
		}
		if err := out.Close(); err != nil {
			return ArchiveResult{}, err
		}
		moved += n
		idx++
	}
	if err := in.Close(); err != nil {
		return ArchiveResult{}, err
	}
	if err := m.Unlink(ctx, tarPath); err != nil {
		return ArchiveResult{}, err
	}
	if err := m.FlushAll(ctx); err != nil {
		return ArchiveResult{}, err
	}
	return ArchiveResult{Name: "Archiving", Files: idx, Bytes: moved, Elapsed: env.Now() - start}, nil
}

// Unarchive runs the reverse scenario: gather the categorized files back
// into a tar stream and move it to the burst buffer.
func Unarchive(env sim.Env, m fsapi.FileSystem, d *Dataset, cfg ArchiveConfig) (ArchiveResult, error) {
	ctx := context.Background()
	start := env.Now()
	root := cfg.Root
	if root == "" {
		root = "/archive"
	}
	var sink externalWriter
	sink.ext = cfg.External
	tw := tar.NewWriter(&sink)
	var moved int64
	for _, f := range d.Files {
		path := fmt.Sprintf("%s/cat-%02d/%s", root, f.Category, f.Name)
		in, err := m.Open(ctx, path, types.ORdonly, 0)
		if err != nil {
			return ArchiveResult{}, fmt.Errorf("workload: unarchive open: %w", err)
		}
		hdr := &tar.Header{Name: "restore/" + f.Name, Mode: 0644, Size: in.Size()}
		if err := tw.WriteHeader(hdr); err != nil {
			return ArchiveResult{}, err
		}
		n, err := io.CopyBuffer(tw, io.LimitReader(in, in.Size()), make([]byte, 1<<20))
		if err != nil {
			return ArchiveResult{}, fmt.Errorf("workload: unarchive copy: %w", err)
		}
		moved += n
		if err := in.Close(); err != nil {
			return ArchiveResult{}, err
		}
	}
	if err := tw.Close(); err != nil {
		return ArchiveResult{}, err
	}
	return ArchiveResult{Name: "Unarchiving", Files: len(d.Files), Bytes: moved, Elapsed: env.Now() - start}, nil
}

// externalWriter streams the outgoing tar to the burst buffer, charging its
// bandwidth.
type externalWriter struct {
	ext *ExternalStore
	n   int64
}

func (w *externalWriter) Write(p []byte) (int, error) {
	w.ext.Transfer(int64(len(p)))
	w.n += int64(len(p))
	return len(p), nil
}
